// Package heuristic implements the paper's resource-provisioning procedure
// (Section 3.4): with the simulation settings fixed by the user, sweep the
// number of cores assigned to the analyses, find the allocations that
// satisfy Equation 4 (the analysis never throttles the simulation, so the
// makespan is minimized), and among those pick the one that maximizes the
// computational efficiency E. This regenerates Figure 7.
package heuristic

import (
	"errors"
	"fmt"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/core"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/runtime"
)

// SweepPoint is one measurement of the core sweep: the member's
// steady-state behaviour with the analysis on a given core count.
type SweepPoint struct {
	// Cores assigned to the analysis.
	Cores int
	// SimBusy is S_* + W_*.
	SimBusy float64
	// AnaBusy is R_* + A_*.
	AnaBusy float64
	// Sigma is the non-overlapped in situ step σ̄* (Equation 1).
	Sigma float64
	// Efficiency is E (Equation 3).
	Efficiency float64
	// SatisfiesEq4 reports whether R_* + A_* <= S_* + W_*.
	SatisfiesEq4 bool
}

// SweepOptions configures the sweep execution.
type SweepOptions struct {
	// Steps is the number of in situ steps per probe run (default 12 —
	// enough for a stable steady state).
	Steps int
	// Sim overrides the simulated-backend options (jitter, seed, tier).
	Sim runtime.SimOptions
	// SimCores is the fixed simulation allocation (default
	// placement.SimCores = 16, the paper's setting).
	SimCores int
}

func (o SweepOptions) normalized() SweepOptions {
	if o.Steps <= 0 {
		o.Steps = 12
	}
	if o.SimCores <= 0 {
		o.SimCores = placement.SimCores
	}
	return o
}

// CoreSweep measures one co-location-free member (the paper's baseline
// context: simulation on node 0, analysis on node 1) for each analysis
// core count, by running the simulated backend and extracting the steady
// state.
func CoreSweep(spec cluster.Spec, simProf, anaProf cluster.Profile, coreCounts []int, opts SweepOptions) ([]SweepPoint, error) {
	opts = opts.normalized()
	if len(coreCounts) == 0 {
		return nil, errors.New("heuristic: no core counts to sweep")
	}
	if spec.Nodes < 2 {
		return nil, errors.New("heuristic: the co-location-free probe needs at least 2 nodes")
	}
	var out []SweepPoint
	for _, c := range coreCounts {
		if c <= 0 || c > spec.CoresPerNode {
			return nil, fmt.Errorf("heuristic: analysis core count %d outside (0,%d]", c, spec.CoresPerNode)
		}
		p := placement.Placement{
			Name: fmt.Sprintf("sweep-%dcores", c),
			Members: []placement.Member{{
				Simulation: placement.Component{Nodes: []int{0}, Cores: opts.SimCores},
				Analyses:   []placement.Component{{Nodes: []int{1}, Cores: c}},
			}},
		}
		es := runtime.EnsembleSpec{
			Name:    p.Name,
			Steps:   opts.Steps,
			Members: []runtime.MemberSpec{{Sim: simProf, Analyses: []cluster.Profile{anaProf}}},
		}
		tr, err := runtime.RunSimulated(spec, p, es, opts.Sim)
		if err != nil {
			return nil, fmt.Errorf("heuristic: probing %d cores: %w", c, err)
		}
		ss, err := core.FromMemberTrace(tr.Members[0], core.ExtractOptions{})
		if err != nil {
			return nil, fmt.Errorf("heuristic: probing %d cores: %w", c, err)
		}
		e, err := ss.Efficiency()
		if err != nil {
			return nil, fmt.Errorf("heuristic: probing %d cores: %w", c, err)
		}
		out = append(out, SweepPoint{
			Cores:        c,
			SimBusy:      ss.SimBusy(),
			AnaBusy:      ss.Couplings[0].Busy(),
			Sigma:        ss.Sigma(),
			Efficiency:   e,
			SatisfiesEq4: ss.SatisfiesEq4(),
		})
	}
	return out, nil
}

// Recommend applies the paper's selection rule to a sweep: among the
// points whose σ̄* is within tolerance of the minimum (i.e., the makespan
// is minimized, Equation 4 satisfied where possible), pick the one with
// the highest computational efficiency. The paper's instance picks 8
// cores.
func Recommend(points []SweepPoint) (SweepPoint, error) {
	if len(points) == 0 {
		return SweepPoint{}, errors.New("heuristic: no sweep points")
	}
	minSigma := points[0].Sigma
	for _, p := range points[1:] {
		if p.Sigma < minSigma {
			minSigma = p.Sigma
		}
	}
	const tol = 0.01 // 1% of the optimum counts as "minimized"
	best := SweepPoint{Efficiency: -1}
	for _, p := range points {
		if p.Sigma <= minSigma*(1+tol) && p.Efficiency > best.Efficiency {
			best = p
		}
	}
	if best.Efficiency < 0 {
		return SweepPoint{}, errors.New("heuristic: no feasible sweep point")
	}
	return best, nil
}

// PaperCoreCounts is the sweep grid of Figure 7 (1 to 32 cores).
func PaperCoreCounts() []int { return []int{1, 2, 4, 8, 16, 24, 32} }

// AnalyticCoreSweep computes the sweep without the discrete-event engine:
// stage durations come directly from the performance model (alone
// assessments — the probe is co-location-free — plus the staging cost
// formulas). It is orders of magnitude faster than CoreSweep and agrees
// with it up to the DES's emergent effects (staging contention, the
// remote-reader perturbation on the producer); a consistency test bounds
// the disagreement.
func AnalyticCoreSweep(spec cluster.Spec, model *cluster.Model, simProf, anaProf cluster.Profile, coreCounts []int, simCores int) ([]SweepPoint, error) {
	if len(coreCounts) == 0 {
		return nil, errors.New("heuristic: no core counts to sweep")
	}
	if simCores <= 0 {
		simCores = placement.SimCores
	}
	if model == nil {
		model = cluster.NewModel(spec)
	}
	bytes := simProf.BytesPerStep
	s := simProf.AloneComputeTime(spec.ClockHz, simCores)
	w := model.SerializeTime(bytes) + model.LocalCopyTime(bytes)
	r := model.RemoteGetBaseTime(bytes) + model.DeserializeTime(bytes)
	var out []SweepPoint
	for _, c := range coreCounts {
		if c <= 0 || c > spec.CoresPerNode {
			return nil, fmt.Errorf("heuristic: analysis core count %d outside (0,%d]", c, spec.CoresPerNode)
		}
		ss := core.SteadyState{
			S: s, W: w,
			Couplings: []core.Coupling{{R: r, A: anaProf.AloneComputeTime(spec.ClockHz, c)}},
		}
		e, err := ss.Efficiency()
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{
			Cores:        c,
			SimBusy:      ss.SimBusy(),
			AnaBusy:      ss.Couplings[0].Busy(),
			Sigma:        ss.Sigma(),
			Efficiency:   e,
			SatisfiesEq4: ss.SatisfiesEq4(),
		})
	}
	return out, nil
}
