package heuristic

import (
	"testing"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/kernels"
	"ensemblekit/internal/runtime"
)

func runSweep(t *testing.T) []SweepPoint {
	t.Helper()
	spec := cluster.Cori(2)
	points, err := CoreSweep(spec, kernels.MDProfile(kernels.ReferenceStride),
		kernels.AnalysisProfile(), PaperCoreCounts(), SweepOptions{Steps: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(PaperCoreCounts()) {
		t.Fatalf("points = %d, want %d", len(points), len(PaperCoreCounts()))
	}
	return points
}

func TestCoreSweepFigure7Shapes(t *testing.T) {
	points := runSweep(t)
	byCores := make(map[int]SweepPoint)
	for _, p := range points {
		byCores[p.Cores] = p
	}
	// Figure 7: with 1-4 cores the analysis exceeds the simulation step
	// (sigma = R+A); with 8-32 cores Equation 4 is satisfied and sigma
	// collapses to S+W.
	for _, c := range []int{1, 2, 4} {
		if byCores[c].SatisfiesEq4 {
			t.Errorf("%d cores should violate Eq. 4", c)
		}
		if byCores[c].Sigma <= byCores[c].SimBusy {
			t.Errorf("%d cores: sigma should be the analysis side", c)
		}
	}
	for _, c := range []int{8, 16, 24, 32} {
		if !byCores[c].SatisfiesEq4 {
			t.Errorf("%d cores should satisfy Eq. 4", c)
		}
	}
	// AnaBusy decreases monotonically with cores.
	for i := 1; i < len(points); i++ {
		if points[i].AnaBusy >= points[i-1].AnaBusy {
			t.Errorf("analysis busy time should shrink with cores: %v", points)
		}
	}
	// Among feasible points, E decreases beyond 8 cores (idle analysis
	// time grows).
	if !(byCores[8].Efficiency > byCores[16].Efficiency &&
		byCores[16].Efficiency > byCores[32].Efficiency) {
		t.Errorf("E should peak at 8 cores: E8=%v E16=%v E32=%v",
			byCores[8].Efficiency, byCores[16].Efficiency, byCores[32].Efficiency)
	}
}

func TestRecommendPicks8Cores(t *testing.T) {
	points := runSweep(t)
	best, err := Recommend(points)
	if err != nil {
		t.Fatal(err)
	}
	if best.Cores != 8 {
		t.Errorf("recommended %d cores, want 8 (the paper's choice)", best.Cores)
	}
}

func TestRecommendEdgeCases(t *testing.T) {
	if _, err := Recommend(nil); err == nil {
		t.Error("empty sweep should fail")
	}
	single := []SweepPoint{{Cores: 4, Sigma: 10, Efficiency: 0.5}}
	best, err := Recommend(single)
	if err != nil || best.Cores != 4 {
		t.Errorf("single point should be recommended: %+v, %v", best, err)
	}
}

func TestCoreSweepValidation(t *testing.T) {
	spec := cluster.Cori(2)
	sim := kernels.MDProfile(0)
	ana := kernels.AnalysisProfile()
	if _, err := CoreSweep(spec, sim, ana, nil, SweepOptions{}); err == nil {
		t.Error("empty core list should fail")
	}
	if _, err := CoreSweep(spec, sim, ana, []int{0}, SweepOptions{}); err == nil {
		t.Error("zero cores should fail")
	}
	if _, err := CoreSweep(spec, sim, ana, []int{64}, SweepOptions{}); err == nil {
		t.Error("more cores than a node should fail")
	}
	if _, err := CoreSweep(cluster.Cori(1), sim, ana, []int{8}, SweepOptions{}); err == nil {
		t.Error("single-node machine cannot host the co-location-free probe")
	}
	_ = runtime.PaperSteps
}

func TestAnalyticSweepAgreesWithDES(t *testing.T) {
	spec := cluster.Cori(2)
	sim := kernels.MDProfile(kernels.ReferenceStride)
	ana := kernels.AnalysisProfile()
	des, err := CoreSweep(spec, sim, ana, PaperCoreCounts(), SweepOptions{Steps: 8})
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := AnalyticCoreSweep(spec, nil, sim, ana, PaperCoreCounts(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(des) != len(analytic) {
		t.Fatalf("length mismatch: %d vs %d", len(des), len(analytic))
	}
	for i := range des {
		d, a := des[i], analytic[i]
		if d.SatisfiesEq4 != a.SatisfiesEq4 {
			t.Errorf("%d cores: Eq.4 disagreement (DES %v, analytic %v)", d.Cores, d.SatisfiesEq4, a.SatisfiesEq4)
		}
		// The DES adds the remote-reader perturbation (~3%) and staging
		// contention; allow 10% divergence.
		rel := (d.Sigma - a.Sigma) / a.Sigma
		if rel < -0.1 || rel > 0.1 {
			t.Errorf("%d cores: sigma diverges %.1f%% (DES %v vs analytic %v)", d.Cores, 100*rel, d.Sigma, a.Sigma)
		}
	}
	// Both recommend the same allocation.
	dBest, err := Recommend(des)
	if err != nil {
		t.Fatal(err)
	}
	aBest, err := Recommend(analytic)
	if err != nil {
		t.Fatal(err)
	}
	if dBest.Cores != aBest.Cores {
		t.Errorf("recommendations diverge: DES %d vs analytic %d cores", dBest.Cores, aBest.Cores)
	}
}

func TestAnalyticSweepValidation(t *testing.T) {
	spec := cluster.Cori(2)
	sim := kernels.MDProfile(0)
	ana := kernels.AnalysisProfile()
	if _, err := AnalyticCoreSweep(spec, nil, sim, ana, nil, 16); err == nil {
		t.Error("empty core list should fail")
	}
	if _, err := AnalyticCoreSweep(spec, nil, sim, ana, []int{0}, 16); err == nil {
		t.Error("zero cores should fail")
	}
}

func TestGridSearch(t *testing.T) {
	spec := cluster.Cori(2)
	points, err := GridSearch(spec, nil, GridOptions{MakespanBudget: 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4*7 { // 4 strides x 7 core counts
		t.Fatalf("points = %d, want 28", len(points))
	}
	for _, p := range points {
		if p.Sigma <= 0 || p.Efficiency <= 0 {
			t.Fatalf("malformed point %+v", p)
		}
		if p.StepsForBudget <= 0 {
			t.Fatalf("budget steps missing in %+v", p)
		}
	}
	// Longer strides lengthen the simulation side: at fixed cores, sigma
	// is non-decreasing in stride.
	byCell := map[[2]int]GridPoint{}
	for _, p := range points {
		byCell[[2]int{p.Stride, p.Cores}] = p
	}
	if byCell[[2]int{1600, 8}].Sigma <= byCell[[2]int{800, 8}].Sigma {
		t.Error("doubling the stride should lengthen sigma at fixed cores")
	}
	// A longer stride tolerates fewer analysis cores: stride 1600 should
	// satisfy Eq. 4 already at 4 cores (S+W ~ 20s > R+A(4) ~ 15s) while
	// stride 800 does not.
	if byCell[[2]int{800, 4}].SatisfiesEq4 {
		t.Error("stride 800 with 4 cores should violate Eq. 4")
	}
	if !byCell[[2]int{1600, 4}].SatisfiesEq4 {
		t.Error("stride 1600 with 4 cores should satisfy Eq. 4")
	}

	best, err := BestThroughput(points)
	if err != nil {
		t.Fatal(err)
	}
	if !best.SatisfiesEq4 {
		t.Errorf("best point must satisfy Eq. 4: %+v", best)
	}
	// Throughput stride/sigma: under Eq. 4 sigma ~ stride-proportional
	// plus fixed staging, so the longest stride amortizes best.
	if best.Stride != 1600 {
		t.Errorf("best stride = %d, want 1600 (staging amortization)", best.Stride)
	}
}

func TestGridSearchValidation(t *testing.T) {
	spec := cluster.Cori(2)
	if _, err := GridSearch(spec, nil, GridOptions{Strides: []int{0}}); err == nil {
		t.Error("non-positive stride should fail")
	}
	if _, err := BestThroughput(nil); err == nil {
		t.Error("empty grid should fail")
	}
	// A grid where nothing satisfies Eq. 4 (1-core analyses only).
	pts, err := GridSearch(spec, nil, GridOptions{Strides: []int{200}, Cores: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BestThroughput(pts); err == nil {
		t.Error("infeasible grid should fail")
	}
}
