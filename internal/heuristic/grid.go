package heuristic

import (
	"errors"
	"fmt"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/kernels"
)

// The paper's Section 3.4 notes that the full parameter space — cores per
// component, placements, and the simulation stride — "is intractable as we
// can vary" all of them, and sidesteps it by fixing the simulation
// settings. The analytic model makes a coarse sweep of the
// (stride, analysis cores) plane cheap, so the joint question the paper
// leaves open ("which stride and which analysis allocation together
// maximize efficiency under a makespan budget?") becomes answerable.

// GridPoint is one (stride, cores) cell of the joint sweep.
type GridPoint struct {
	// Stride is the MD steps per in situ step.
	Stride int
	// Cores is the analysis core count.
	Cores int
	// Sigma is the analytic non-overlapped step σ̄*.
	Sigma float64
	// Efficiency is the analytic E.
	Efficiency float64
	// SatisfiesEq4 reports the Idle Analyzer condition.
	SatisfiesEq4 bool
	// StepsForBudget is how many in situ steps fit into the makespan
	// budget at this σ̄* (0 when no budget is set).
	StepsForBudget int
}

// GridOptions bounds the joint sweep.
type GridOptions struct {
	// Strides to evaluate (default: 200, 400, 800, 1600).
	Strides []int
	// Cores to evaluate (default: PaperCoreCounts).
	Cores []int
	// SimCores is the fixed simulation allocation (default 16).
	SimCores int
	// MakespanBudget optionally fixes a wall-clock budget in seconds;
	// StepsForBudget reports the simulated coverage achievable within it.
	MakespanBudget float64
}

func (o GridOptions) normalized() GridOptions {
	if len(o.Strides) == 0 {
		o.Strides = []int{200, 400, 800, 1600}
	}
	if len(o.Cores) == 0 {
		o.Cores = PaperCoreCounts()
	}
	if o.SimCores <= 0 {
		o.SimCores = 16
	}
	return o
}

// GridSearch evaluates the analytic model over the (stride, cores) grid.
func GridSearch(spec cluster.Spec, model *cluster.Model, opts GridOptions) ([]GridPoint, error) {
	opts = opts.normalized()
	if model == nil {
		model = cluster.NewModel(spec)
	}
	var out []GridPoint
	for _, stride := range opts.Strides {
		if stride <= 0 {
			return nil, fmt.Errorf("heuristic: non-positive stride %d", stride)
		}
		simProf := kernels.MDProfile(stride)
		points, err := AnalyticCoreSweep(spec, model, simProf, kernels.AnalysisProfile(), opts.Cores, opts.SimCores)
		if err != nil {
			return nil, err
		}
		for _, p := range points {
			g := GridPoint{
				Stride:       stride,
				Cores:        p.Cores,
				Sigma:        p.Sigma,
				Efficiency:   p.Efficiency,
				SatisfiesEq4: p.SatisfiesEq4,
			}
			if opts.MakespanBudget > 0 && g.Sigma > 0 {
				g.StepsForBudget = int(opts.MakespanBudget / g.Sigma)
			}
			out = append(out, g)
		}
	}
	return out, nil
}

// BestThroughput picks the grid point maximizing simulated MD steps per
// wall-clock second (stride / σ̄*) among the points that satisfy
// Equation 4, breaking ties by efficiency. This answers the joint
// provisioning question: a longer stride amortizes staging but delays
// analyses; Equation 4 keeps the coupling healthy.
func BestThroughput(points []GridPoint) (GridPoint, error) {
	if len(points) == 0 {
		return GridPoint{}, errors.New("heuristic: empty grid")
	}
	best := GridPoint{}
	bestRate := -1.0
	for _, p := range points {
		if !p.SatisfiesEq4 || p.Sigma <= 0 {
			continue
		}
		rate := float64(p.Stride) / p.Sigma
		if rate > bestRate+1e-12 ||
			(rate > bestRate-1e-12 && p.Efficiency > best.Efficiency) {
			best = p
			bestRate = rate
		}
	}
	if bestRate < 0 {
		return GridPoint{}, errors.New("heuristic: no grid point satisfies Equation 4")
	}
	return best, nil
}
