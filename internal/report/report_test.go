package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableText(t *testing.T) {
	tb := NewTable("Demo", "config", "makespan", "E")
	tb.AddRow("C1.5", 384.75, 0.955)
	tb.AddRow("C1.4", 475.5, 0.895)
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	var buf bytes.Buffer
	if err := tb.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"## Demo", "config", "makespan", "C1.5", "384.8", "0.9550"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("v", 1.5)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nv,1.500\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:         "0",
		0.0000012: "1.200e-06",
		0.25:      "0.2500",
		3.14159:   "3.142",
		1234.5:    "1234.5",
		2.5e7:     "2.500e+07",
		-0.25:     "-0.2500",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if got := FormatFloat(math.NaN()); got != "NaN" {
		t.Errorf("NaN = %q", got)
	}
}

func TestGantt(t *testing.T) {
	g := NewGantt("Member timeline", 40)
	sim := g.AddRow("sim")
	ana := g.AddRow("analysis")
	g.AddSpan(sim, 0, 10, 'S')
	g.AddSpan(sim, 10, 11, 'W')
	g.AddSpan(ana, 11, 12, 'R')
	g.AddSpan(ana, 12, 20, 'A')
	out := g.String()
	for _, want := range []string{"Member timeline", "sim", "analysis", "S", "W", "R", "A"} {
		if !strings.Contains(out, want) {
			t.Errorf("gantt missing %q:\n%s", want, out)
		}
	}
	// Spans outside rows or inverted are ignored without panic.
	g.AddSpan(99, 0, 1, 'x')
	g.AddSpan(sim, 5, 5, 'x')
	_ = g.String()
}

func TestGanttEmpty(t *testing.T) {
	g := NewGantt("empty", 40)
	g.AddRow("r")
	if !strings.Contains(g.String(), "empty timeline") {
		t.Error("empty gantt should say so")
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("MD", "a", "b|c")
	tb.AddRow("x", 0.5)
	var buf bytes.Buffer
	if err := tb.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"### MD", "| a |", "| --- | --- |", "| x | 0.5000 |", "b\\|c"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestBarChart(t *testing.T) {
	b := NewBarChart("F per config", 20)
	b.AddBar("C1.5", 0.02)
	b.AddBar("C1.4", 0.01)
	b.AddBar("neg", -0.5)
	out := b.String()
	for _, want := range []string{"F per config", "C1.5", "0.0200", "0.0100", "-0.5000"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The largest value gets the full width; half value gets about half.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	count := func(s string) int { return strings.Count(s, "#") }
	if count(lines[1]) != 20 {
		t.Errorf("max bar = %d hashes, want 20:\n%s", count(lines[1]), out)
	}
	if c := count(lines[2]); c < 8 || c > 12 {
		t.Errorf("half bar = %d hashes, want ~10", c)
	}
	if count(lines[3]) != 0 {
		t.Errorf("negative bar should be empty:\n%s", out)
	}
	// Zero width defaults; empty chart renders without panic.
	_ = NewBarChart("", 0).String()
}
