// Package report renders experiment results as aligned ASCII tables and
// CSV, the output formats of the benchmark harness (cmd/experiments).
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// FormatFloat renders a float compactly: scientific notation for very
// small or large magnitudes, fixed precision otherwise.
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v != v: // NaN
		return "NaN"
	case v < 0:
		return "-" + FormatFloat(-v)
	case v < 1e-3 || v >= 1e6:
		return fmt.Sprintf("%.3e", v)
	case v < 1:
		return fmt.Sprintf("%.4f", v)
	case v < 100:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteMarkdown renders the table as a GitHub-flavoured markdown table,
// the format used by EXPERIMENTS.md.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV with the headers in the first row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders the text form.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.WriteText(&b); err != nil {
		return fmt.Sprintf("report: %v", err)
	}
	return b.String()
}

// BarChart renders labelled values as horizontal ASCII bars — the form of
// the paper's Figures 3-5 and 8-9.
type BarChart struct {
	Title string
	// Width is the character length of the longest bar.
	Width int
	rows  []barRow
}

type barRow struct {
	label string
	value float64
}

// NewBarChart creates an empty chart.
func NewBarChart(title string, width int) *BarChart {
	if width <= 0 {
		width = 50
	}
	return &BarChart{Title: title, Width: width}
}

// AddBar appends one labelled bar.
func (b *BarChart) AddBar(label string, value float64) {
	b.rows = append(b.rows, barRow{label: label, value: value})
}

// String renders the chart. Bars scale to the maximum value; negative
// values render as empty bars with their numeric value still shown.
func (b *BarChart) String() string {
	var sb strings.Builder
	if b.Title != "" {
		fmt.Fprintf(&sb, "## %s\n", b.Title)
	}
	max := 0.0
	labelWidth := 0
	for _, r := range b.rows {
		if r.value > max {
			max = r.value
		}
		if len(r.label) > labelWidth {
			labelWidth = len(r.label)
		}
	}
	for _, r := range b.rows {
		n := 0
		if max > 0 && r.value > 0 {
			n = int(float64(b.Width) * r.value / max)
			if n == 0 {
				n = 1
			}
		}
		fmt.Fprintf(&sb, "%-*s |%s%s %s\n", labelWidth, r.label,
			strings.Repeat("#", n), strings.Repeat(" ", b.Width-n), FormatFloat(r.value))
	}
	return sb.String()
}

// Gantt renders a simple ASCII timeline: one row per labelled span group,
// used for the Figure 6 stage-timeline reproduction.
type Gantt struct {
	Title string
	// Width is the number of character cells the full time range maps to.
	Width int
	rows  []ganttRow
	tMin  float64
	tMax  float64
	any   bool
}

type ganttRow struct {
	label string
	spans []ganttSpan
}

type ganttSpan struct {
	start, end float64
	glyph      rune
}

// NewGantt creates an empty timeline with the given character width.
func NewGantt(title string, width int) *Gantt {
	if width <= 10 {
		width = 80
	}
	return &Gantt{Title: title, Width: width}
}

// AddRow declares a timeline row.
func (g *Gantt) AddRow(label string) int {
	g.rows = append(g.rows, ganttRow{label: label})
	return len(g.rows) - 1
}

// AddSpan draws [start, end) on row with the given glyph.
func (g *Gantt) AddSpan(row int, start, end float64, glyph rune) {
	if row < 0 || row >= len(g.rows) || end <= start {
		return
	}
	if !g.any || start < g.tMin {
		g.tMin = start
	}
	if !g.any || end > g.tMax {
		g.tMax = end
	}
	g.any = true
	g.rows[row].spans = append(g.rows[row].spans, ganttSpan{start: start, end: end, glyph: glyph})
}

// String renders the timeline.
func (g *Gantt) String() string {
	var b strings.Builder
	if g.Title != "" {
		fmt.Fprintf(&b, "## %s\n", g.Title)
	}
	if !g.any {
		b.WriteString("(empty timeline)\n")
		return b.String()
	}
	span := g.tMax - g.tMin
	if span <= 0 {
		span = 1
	}
	labelWidth := 0
	for _, r := range g.rows {
		if len(r.label) > labelWidth {
			labelWidth = len(r.label)
		}
	}
	for _, r := range g.rows {
		cells := make([]rune, g.Width)
		for i := range cells {
			cells[i] = '.'
		}
		for _, s := range r.spans {
			lo := int(float64(g.Width) * (s.start - g.tMin) / span)
			hi := int(float64(g.Width) * (s.end - g.tMin) / span)
			if hi <= lo {
				hi = lo + 1
			}
			for i := lo; i < hi && i < g.Width; i++ {
				cells[i] = s.glyph
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", labelWidth, r.label, string(cells))
	}
	fmt.Fprintf(&b, "%-*s  t=%s .. %s\n", labelWidth, "", FormatFloat(g.tMin), FormatFloat(g.tMax))
	return b.String()
}
