package indicators

import (
	"fmt"

	"ensemblekit/internal/placement"
	"ensemblekit/internal/stats"
)

// Aggregator names a way of collapsing per-member indicator values into
// one ensemble-level objective. The paper uses mean minus standard
// deviation (Equation 9); the alternatives exist for the sensitivity
// ablation (how much does the aggregation choice change the ranking?).
type Aggregator string

const (
	// AggMeanMinusStd is the paper's F (Equation 9).
	AggMeanMinusStd Aggregator = "mean-std"
	// AggMean ignores variability between members.
	AggMean Aggregator = "mean"
	// AggMin scores an ensemble by its worst member (makespan-flavoured:
	// the slowest member dominates).
	AggMin Aggregator = "min"
	// AggMedian is robust to a single outlier member.
	AggMedian Aggregator = "median"
)

// Aggregators lists all supported aggregators, the paper's first.
func Aggregators() []Aggregator {
	return []Aggregator{AggMeanMinusStd, AggMean, AggMin, AggMedian}
}

// Aggregate collapses per-member values with the chosen aggregator.
func Aggregate(values []float64, a Aggregator) (float64, error) {
	if len(values) == 0 {
		return 0, fmt.Errorf("indicators: aggregate %q needs at least one value", a)
	}
	switch a {
	case AggMeanMinusStd, "":
		return stats.MeanMinusStd(values), nil
	case AggMean:
		return stats.Mean(values), nil
	case AggMin:
		return stats.Min(values), nil
	case AggMedian:
		return stats.Median(values), nil
	default:
		return 0, fmt.Errorf("indicators: unknown aggregator %q", a)
	}
}

// Sensitivity computes ∂F/∂E_i numerically for every member: how much the
// ensemble objective moves per unit of one member's efficiency. Because F
// subtracts the member standard deviation, improving an already-fast
// member can have near-zero (or negative) payoff while lifting the
// straggler pays double — this quantifies where tuning effort belongs.
func Sensitivity(perMemberFn func(effs []float64) ([]float64, error), effs []float64) ([]float64, error) {
	if len(effs) == 0 {
		return nil, fmt.Errorf("indicators: sensitivity needs at least one member")
	}
	const h = 1e-6
	base, err := perMemberFn(effs)
	if err != nil {
		return nil, err
	}
	f0, err := Aggregate(base, AggMeanMinusStd)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(effs))
	for i := range effs {
		bumped := append([]float64(nil), effs...)
		bumped[i] += h
		values, err := perMemberFn(bumped)
		if err != nil {
			return nil, err
		}
		f1, err := Aggregate(values, AggMeanMinusStd)
		if err != nil {
			return nil, err
		}
		out[i] = (f1 - f0) / h
	}
	return out, nil
}

// ObjectiveSensitivity is the placement-aware convenience form: the
// gradient of F(P^{stage}) with respect to each member's efficiency.
func ObjectiveSensitivity(p placement.Placement, effs []float64, s StageSet) ([]float64, error) {
	return Sensitivity(func(e []float64) ([]float64, error) {
		return PerMember(p, e, s)
	}, effs)
}

// AggregateObjective computes F-like objectives over per-member indicator
// values already produced by PerMember, one per aggregator.
func AggregateObjective(values []float64, aggs []Aggregator) (map[Aggregator]float64, error) {
	out := make(map[Aggregator]float64, len(aggs))
	for _, a := range aggs {
		v, err := Aggregate(values, a)
		if err != nil {
			return nil, err
		}
		out[a] = v
	}
	return out, nil
}
