package indicators

import (
	"math"
	"math/rand"
	"testing"

	"ensemblekit/internal/placement"
)

func TestCPKnownConfigurations(t *testing.T) {
	cases := []struct {
		name   string
		member int
		want   float64
	}{
		{"C_f", 0, 0.5},  // sim and analysis on separate nodes
		{"C_c", 0, 1.0},  // fully co-located
		{"C1.1", 0, 0.5}, // s={0}, a={2}
		{"C1.3", 0, 1.0}, // co-located member
		{"C1.3", 1, 0.5}, // spread member
		{"C1.5", 0, 1.0},
		{"C2.8", 0, 1.0},        // s={0}, both analyses on 0
		{"C2.7", 0, 0.75},       // (1/1 + 1/2)/2
		{"C2.6", 0, 0.5},        // (1/2 + 1/2)/2
		{"C2.3", 0, 0.5},        // analyses on nodes 1 and 2
		{"C2.4", 0, 0.75},       // one analysis co-located, one not
		{"C2.1", 0, 0.5},        // both analyses on n2
		{"C2.5", 0, 0.5},        // both remote
		{"C2.2", 0, 0.5},        // both analyses on n1
		{"C1.4", 1, 0.5},        // second member of C1.4
		{"C2.8", 1, 1.0},        // second member fully co-located on n1
		{"C2.7", 1, 1.0 * 0.75}, // symmetric to member 0
	}
	for _, c := range cases {
		p, ok := placement.ByName(c.name)
		if !ok {
			t.Fatalf("unknown config %s", c.name)
		}
		got, err := CP(p.Members[c.member])
		if err != nil {
			t.Fatalf("%s member %d: %v", c.name, c.member, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CP(%s member %d) = %v, want %v", c.name, c.member, got, c.want)
		}
	}
}

func TestCPErrors(t *testing.T) {
	if _, err := CP(placement.Member{
		Simulation: placement.Component{Nodes: []int{0}, Cores: 16},
	}); err == nil {
		t.Error("member without couplings should fail")
	}
	if _, err := CP(placement.Member{
		Simulation: placement.Component{Cores: 16},
		Analyses:   []placement.Component{{Nodes: []int{0}, Cores: 8}},
	}); err == nil {
		t.Error("simulation without nodes should fail")
	}
}

func TestMemberStages(t *testing.T) {
	p, _ := placement.ByName("C1.5")
	m := p.Members[0] // co-located, 24 cores
	e := 0.9

	u, err := Member(e, m, p.M(), StageU)
	if err != nil {
		t.Fatal(err)
	}
	if want := e / 24; math.Abs(u-want) > 1e-15 {
		t.Errorf("P^U = %v, want %v", u, want)
	}

	ua, err := Member(e, m, p.M(), StageUA)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ua-u) > 1e-15 { // CP = 1 for co-located
		t.Errorf("P^{U,A} = %v, want %v (CP=1)", ua, u)
	}

	uap, err := Member(e, m, p.M(), StageUAP)
	if err != nil {
		t.Fatal(err)
	}
	if want := u / 2; math.Abs(uap-want) > 1e-15 { // M = 2
		t.Errorf("P^{U,A,P} = %v, want %v", uap, want)
	}
}

func TestPathEquivalence(t *testing.T) {
	// P^{U,P,A} == P^{U,A,P}: applying the layers in either order yields
	// the same final indicator (noted in Section 5.2).
	for _, cfg := range append(placement.ConfigsTable2TwoMember(), placement.ConfigsTable4()...) {
		for i, m := range cfg.Members {
			e := 0.8 + 0.05*float64(i)
			// Path 1: U -> P -> A means dividing by M then multiplying CP.
			up, err := Member(e, m, cfg.M(), StageUP)
			if err != nil {
				t.Fatal(err)
			}
			cp, err := CP(m)
			if err != nil {
				t.Fatal(err)
			}
			path1 := up * cp
			// Path 2: U -> A -> P via the full stage set.
			path2, err := Member(e, m, cfg.M(), StageUAP)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(path1-path2) > 1e-15 {
				t.Errorf("%s member %d: paths diverge: %v vs %v", cfg.Name, i, path1, path2)
			}
		}
	}
}

func TestMemberErrors(t *testing.T) {
	p, _ := placement.ByName("C1.5")
	m := p.Members[0]
	if _, err := Member(0.9, placement.Member{}, 2, StageU); err == nil {
		t.Error("zero-core member should fail")
	}
	if _, err := Member(0.9, m, 0, StageUAP); err == nil {
		t.Error("non-positive M should fail with provisioning stage")
	}
}

func TestPerMemberAndObjective(t *testing.T) {
	p, _ := placement.ByName("C1.5")
	es := []float64{0.9, 0.9}
	values, err := PerMember(p, es, StageUAP)
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 2 {
		t.Fatalf("values = %v", values)
	}
	// Symmetric members: identical values, so F = mean (std = 0).
	if values[0] != values[1] {
		t.Errorf("symmetric members differ: %v", values)
	}
	f, err := Objective(p, es, StageUAP)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-values[0]) > 1e-15 {
		t.Errorf("F = %v, want %v for zero-variance members", f, values[0])
	}
}

func TestObjectivePenalizesVariability(t *testing.T) {
	// Two configurations with the same mean indicator: the one with
	// variance between members scores lower (Equation 9's intent).
	p, _ := placement.ByName("C1.5")
	even, err := Objective(p, []float64{0.8, 0.8}, StageU)
	if err != nil {
		t.Fatal(err)
	}
	uneven, err := Objective(p, []float64{0.6, 1.0}, StageU)
	if err != nil {
		t.Fatal(err)
	}
	if uneven >= even {
		t.Errorf("uneven members (%v) should score below even members (%v)", uneven, even)
	}
}

func TestPerMemberValidation(t *testing.T) {
	p, _ := placement.ByName("C1.5")
	if _, err := PerMember(p, []float64{0.9}, StageU); err == nil {
		t.Error("mismatched efficiency count should fail")
	}
	if _, err := PerMember(placement.Placement{}, nil, StageU); err == nil {
		t.Error("empty placement should fail")
	}
	if _, err := F(nil); err == nil {
		t.Error("empty F input should fail")
	}
}

func TestStageSetString(t *testing.T) {
	cases := map[string]StageSet{
		"U":     StageU,
		"U,A":   StageUA,
		"U,P":   StageUP,
		"U,A,P": StageUAP,
	}
	for want, s := range cases {
		if got := s.String(); got != want {
			t.Errorf("StageSet = %q, want %q", got, want)
		}
	}
}

func TestFullReportAndRank(t *testing.T) {
	var reports []Report
	for _, cfg := range placement.ConfigsTable2TwoMember() {
		rep, err := FullReport(cfg, []float64{0.9, 0.9})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range AllStages() {
			if _, ok := rep.PerStage[s.String()]; !ok {
				t.Errorf("%s: missing stage %s", cfg.Name, s)
			}
		}
		reports = append(reports, rep)
	}
	ranked := Rank(reports, StageUAP)
	if len(ranked) != 5 {
		t.Fatalf("ranked %d configs", len(ranked))
	}
	// With equal efficiencies, placement structure alone decides: C1.5
	// (CP=1, M=2) must rank first.
	if ranked[0].Name != "C1.5" {
		t.Errorf("top config = %s, want C1.5", ranked[0].Name)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Value < ranked[i].Value {
			t.Error("ranking not descending")
		}
	}
}

// Property: CP lies in (0, 1], equals 1 exactly for fully co-located
// members, and shrinks when an analysis moves off the simulation's node.
func TestCPProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(4)
		simNode := rng.Intn(4)
		m := placement.Member{
			Simulation: placement.Component{Nodes: []int{simNode}, Cores: 16},
		}
		allCo := true
		for j := 0; j < k; j++ {
			n := rng.Intn(4)
			if n != simNode {
				allCo = false
			}
			m.Analyses = append(m.Analyses, placement.Component{Nodes: []int{n}, Cores: 8})
		}
		cp, err := CP(m)
		if err != nil {
			t.Fatal(err)
		}
		if cp <= 0 || cp > 1+1e-12 {
			t.Fatalf("CP = %v outside (0,1] for %+v", cp, m)
		}
		if allCo && math.Abs(cp-1) > 1e-12 {
			t.Fatalf("fully co-located member has CP = %v, want 1", cp)
		}
		if !allCo && cp >= 1 {
			t.Fatalf("spread member has CP = %v, want < 1", cp)
		}
	}
}
