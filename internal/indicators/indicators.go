// Package indicators implements the paper's multi-stage performance
// indicators (Section 4) and the ensemble-level objective function
// (Section 5.1):
//
//	P_i^U     = E_i / c_i                                  (Equation 5)
//	CP_i      = (|s_i|/K_i) Σ_j 1/|s_i ∪ a_i^j|            (Equation 6)
//	P_i^{U,A} = P_i^U × CP_i                               (Equation 7)
//	P_i^{U,A,P} = P_i^{U,A} / M                            (Equation 8)
//	F(P)      = mean(P) − stddev(P)                        (Equation 9)
//
// The three refinement layers — resource Usage, resource Allocation
// (component placement), and resource Provisioning (nodes used by the
// whole ensemble) — compose in any order; the paper's two evaluation paths
// (U → U,P → U,P,A and U → U,A → U,A,P) converge to the same final value.
package indicators

import (
	"errors"
	"fmt"
	"sort"

	"ensemblekit/internal/placement"
	"ensemblekit/internal/stats"
)

// StageSet selects which refinement layers are applied on top of the
// always-present resource-usage base.
type StageSet struct {
	// Allocation applies the placement indicator CP_i (layer A).
	Allocation bool
	// Provisioning divides by the ensemble node count M (layer P).
	Provisioning bool
}

// String renders the paper's superscript notation, e.g. "U,A,P".
func (s StageSet) String() string {
	out := "U"
	if s.Allocation {
		out += ",A"
	}
	if s.Provisioning {
		out += ",P"
	}
	return out
}

// Stages of the paper's two evaluation paths.
var (
	// StageU is resource usage only (Equation 5).
	StageU = StageSet{}
	// StageUA adds the placement layer (Equation 7).
	StageUA = StageSet{Allocation: true}
	// StageUP adds the provisioning layer to the usage base.
	StageUP = StageSet{Provisioning: true}
	// StageUAP is the full indicator (Equation 8). The paper's
	// P^{U,P,A} is the same quantity.
	StageUAP = StageSet{Allocation: true, Provisioning: true}
)

// CP returns the placement indicator CP_i of a member (Equation 6). It is
// 1 when every analysis is co-located with the simulation, and approaches
// 0 as components spread over more dedicated nodes.
func CP(m placement.Member) (float64, error) {
	k := m.K()
	if k == 0 {
		return 0, errors.New("indicators: member has no couplings")
	}
	s := len(m.Simulation.NodeSet())
	if s == 0 {
		return 0, errors.New("indicators: member simulation has no nodes")
	}
	sum := 0.0
	for j := 0; j < k; j++ {
		u, err := m.CouplingUnionSize(j)
		if err != nil {
			return 0, err
		}
		if u == 0 {
			return 0, fmt.Errorf("indicators: coupling %d has empty node union", j)
		}
		sum += 1 / float64(u)
	}
	return float64(s) / float64(k) * sum, nil
}

// Member computes the indicator of one ensemble member at the given stage
// set, from its computational efficiency E_i (Equation 3), its placement,
// and the ensemble-wide node count M.
func Member(e float64, m placement.Member, ensembleNodes int, s StageSet) (float64, error) {
	c := m.Cores()
	if c <= 0 {
		return 0, errors.New("indicators: member uses no cores")
	}
	v := e / float64(c) // Equation 5
	if s.Allocation {
		cp, err := CP(m)
		if err != nil {
			return 0, err
		}
		v *= cp // Equation 7
	}
	if s.Provisioning {
		if ensembleNodes <= 0 {
			return 0, fmt.Errorf("indicators: ensemble node count M must be positive, got %d", ensembleNodes)
		}
		v /= float64(ensembleNodes) // Equation 8
	}
	return v, nil
}

// PerMember computes the indicator of every member of a placement at the
// given stage set. efficiencies must hold E_i per member, in order.
func PerMember(p placement.Placement, efficiencies []float64, s StageSet) ([]float64, error) {
	if len(efficiencies) != len(p.Members) {
		return nil, fmt.Errorf("indicators: %d efficiencies for %d members",
			len(efficiencies), len(p.Members))
	}
	if len(p.Members) == 0 {
		return nil, errors.New("indicators: placement has no members")
	}
	m := p.M()
	out := make([]float64, len(p.Members))
	for i, member := range p.Members {
		v, err := Member(efficiencies[i], member, m, s)
		if err != nil {
			return nil, fmt.Errorf("indicators: member %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// F aggregates per-member indicator values into the ensemble-level
// objective (Equation 9): mean minus population standard deviation, which
// penalizes variability between members (stragglers dominate the ensemble
// makespan).
func F(values []float64) (float64, error) {
	if len(values) == 0 {
		return 0, errors.New("indicators: F needs at least one value")
	}
	return stats.MeanMinusStd(values), nil
}

// Objective computes F over the per-member indicators of a placement at
// the given stage set — the quantity plotted in the paper's Figures 8
// and 9.
func Objective(p placement.Placement, efficiencies []float64, s StageSet) (float64, error) {
	values, err := PerMember(p, efficiencies, s)
	if err != nil {
		return 0, err
	}
	return F(values)
}

// Report holds the objective at every stage of both evaluation paths for
// one configuration.
type Report struct {
	// Name is the configuration name.
	Name string
	// PerStage maps a stage-set notation ("U", "U,A", "U,P", "U,A,P") to
	// the objective value F.
	PerStage map[string]float64
	// PerMember maps the same notations to the per-member indicator
	// values.
	PerMember map[string][]float64
}

// AllStages lists the stage sets evaluated in a Report, in the paper's
// presentation order.
func AllStages() []StageSet {
	return []StageSet{StageU, StageUP, StageUA, StageUAP}
}

// FullReport evaluates a configuration at every stage.
func FullReport(p placement.Placement, efficiencies []float64) (Report, error) {
	rep := Report{
		Name:      p.Name,
		PerStage:  make(map[string]float64),
		PerMember: make(map[string][]float64),
	}
	for _, s := range AllStages() {
		values, err := PerMember(p, efficiencies, s)
		if err != nil {
			return Report{}, err
		}
		f, err := F(values)
		if err != nil {
			return Report{}, err
		}
		rep.PerStage[s.String()] = f
		rep.PerMember[s.String()] = values
	}
	return rep, nil
}

// Ranked pairs a configuration name with its objective value.
type Ranked struct {
	Name  string
	Value float64
}

// Rank orders configurations by descending objective at the given stage
// (the higher the better, per the paper).
func Rank(reports []Report, s StageSet) []Ranked {
	key := s.String()
	out := make([]Ranked, 0, len(reports))
	for _, r := range reports {
		out = append(out, Ranked{Name: r.Name, Value: r.PerStage[key]})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Value > out[j].Value })
	return out
}
