package indicators

import (
	"math"
	"testing"

	"ensemblekit/internal/placement"
)

func TestAggregate(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := map[Aggregator]float64{
		AggMean:         2.5,
		AggMin:          1,
		AggMedian:       2.5,
		AggMeanMinusStd: 2.5 - math.Sqrt(1.25),
	}
	for agg, want := range cases {
		got, err := Aggregate(xs, agg)
		if err != nil {
			t.Fatalf("%s: %v", agg, err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("Aggregate(%s) = %v, want %v", agg, got, want)
		}
	}
	// Empty aggregator string defaults to the paper's form.
	got, err := Aggregate(xs, "")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-cases[AggMeanMinusStd]) > 1e-12 {
		t.Errorf("default aggregator = %v, want mean-std", got)
	}
}

func TestAggregateErrors(t *testing.T) {
	if _, err := Aggregate(nil, AggMean); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Aggregate([]float64{1}, "bogus"); err == nil {
		t.Error("unknown aggregator should fail")
	}
}

func TestAggregateObjective(t *testing.T) {
	out, err := AggregateObjective([]float64{2, 4}, Aggregators())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("got %d aggregators", len(out))
	}
	if out[AggMin] != 2 || out[AggMean] != 3 {
		t.Errorf("unexpected values: %v", out)
	}
	// For two members mean-std equals the minimum.
	if math.Abs(out[AggMeanMinusStd]-out[AggMin]) > 1e-12 {
		t.Errorf("two-member mean-std (%v) should equal min (%v)",
			out[AggMeanMinusStd], out[AggMin])
	}
	if _, err := AggregateObjective([]float64{1}, []Aggregator{"nope"}); err == nil {
		t.Error("unknown aggregator should fail")
	}
}

func TestObjectiveSensitivity(t *testing.T) {
	p, _ := placement.ByName("C1.5")
	// Symmetric members, asymmetric efficiencies: lifting the slow member
	// must pay more than lifting the fast one (F = min for two members).
	effs := []float64{0.7, 0.95}
	grad, err := ObjectiveSensitivity(p, effs, StageUAP)
	if err != nil {
		t.Fatal(err)
	}
	if len(grad) != 2 {
		t.Fatalf("gradient = %v", grad)
	}
	if grad[0] <= grad[1] {
		t.Errorf("lifting the straggler (%v) should beat lifting the leader (%v)", grad[0], grad[1])
	}
	if grad[0] <= 0 {
		t.Errorf("straggler gradient should be positive: %v", grad[0])
	}
	// For two members F = min(P_1, P_2): the leader's gradient is ~0.
	if math.Abs(grad[1]) > 1e-3 {
		t.Errorf("leader gradient should be ~0, got %v", grad[1])
	}
	if _, err := ObjectiveSensitivity(p, nil, StageUAP); err == nil {
		t.Error("empty efficiencies should fail")
	}
}
