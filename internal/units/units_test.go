package units

import "testing"

func TestFormatSeconds(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0s"},
		{2.5e-9, "2.5ns"},
		{3.2e-6, "3.2µs"},
		{4.5e-3, "4.50ms"},
		{1.25, "1.25s"},
		{600, "10.0min"},
		{-1.25, "-1.25s"},
	}
	for _, c := range cases {
		if got := FormatSeconds(c.in); got != c.want {
			t.Errorf("FormatSeconds(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{2 * KiB, "2.00KiB"},
		{3 * MiB, "3.00MiB"},
		{5 * GiB, "5.00GiB"},
		{-2 * KiB, "-2.00KiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatRate(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{500, "500B/s"},
		{2e3, "2.00KB/s"},
		{3e6, "3.00MB/s"},
		{120e9, "120.00GB/s"},
	}
	for _, c := range cases {
		if got := FormatRate(c.in); got != c.want {
			t.Errorf("FormatRate(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
