// Package units provides small helpers for the physical quantities used
// throughout ensemblekit: simulated time (seconds as float64), byte sizes,
// and rates. Simulated time is kept as float64 seconds rather than
// time.Duration because the analytical model (Equations 1-9 of the paper)
// is expressed in real-valued seconds and benefits from exact arithmetic on
// fractional quantities.
package units

import "fmt"

// Common byte sizes.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
)

// Seconds is a simulated duration or instant expressed in seconds.
type Seconds = float64

// FormatSeconds renders a duration with a unit chosen for readability
// (ns, µs, ms, s). Negative durations are rendered with a leading minus.
func FormatSeconds(s float64) string {
	neg := ""
	if s < 0 {
		neg = "-"
		s = -s
	}
	switch {
	case s == 0:
		return "0s"
	case s < 1e-6:
		return fmt.Sprintf("%s%.1fns", neg, s*1e9)
	case s < 1e-3:
		return fmt.Sprintf("%s%.1fµs", neg, s*1e6)
	case s < 1:
		return fmt.Sprintf("%s%.2fms", neg, s*1e3)
	case s < 120:
		return fmt.Sprintf("%s%.2fs", neg, s)
	default:
		return fmt.Sprintf("%s%.1fmin", neg, s/60)
	}
}

// FormatBytes renders a byte count using binary prefixes.
func FormatBytes(n int64) string {
	neg := ""
	if n < 0 {
		neg = "-"
		n = -n
	}
	switch {
	case n >= GiB:
		return fmt.Sprintf("%s%.2fGiB", neg, float64(n)/float64(GiB))
	case n >= MiB:
		return fmt.Sprintf("%s%.2fMiB", neg, float64(n)/float64(MiB))
	case n >= KiB:
		return fmt.Sprintf("%s%.2fKiB", neg, float64(n)/float64(KiB))
	default:
		return fmt.Sprintf("%s%dB", neg, n)
	}
}

// FormatRate renders a bandwidth in bytes/second using decimal prefixes,
// matching how interconnect and memory bandwidths are usually quoted.
func FormatRate(bytesPerSecond float64) string {
	switch {
	case bytesPerSecond >= 1e9:
		return fmt.Sprintf("%.2fGB/s", bytesPerSecond/1e9)
	case bytesPerSecond >= 1e6:
		return fmt.Sprintf("%.2fMB/s", bytesPerSecond/1e6)
	case bytesPerSecond >= 1e3:
		return fmt.Sprintf("%.2fKB/s", bytesPerSecond/1e3)
	default:
		return fmt.Sprintf("%.0fB/s", bytesPerSecond)
	}
}
