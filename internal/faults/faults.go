// Package faults defines the declarative fault model of the reproduction:
// a seeded, fully deterministic description of everything that can go
// wrong during an ensemble run. The paper's ensembles ran for hours on
// Cori, where staging hiccups, slow nodes, and component crashes are
// routine; SIM-SITU-style faithful simulation treats such degraded
// execution scenarios as first-class inputs rather than afterthoughts.
//
// A Plan lists four kinds of faults:
//
//   - StagingFault: per-tier staging-operation failures, either a random
//     per-operation rate inside a virtual-time window or a deterministic
//     "fail the n-th operation" trigger (the back-compat equivalent of the
//     old dtl.Flaky wrapper);
//   - NetworkWindow: a transient network-degradation window scaling every
//     link capacity (and the per-flow protocol cap) by a factor;
//   - NodeCrash: a node crash at a virtual time, killing every component
//     placed on that node;
//   - Straggler: a slowdown window dilating the compute stages of matching
//     components (slow-node behaviour without killing anything).
//
// Plans serialize to JSON (strict: unknown fields are rejected) so fault
// scenarios are reviewable artifacts, and the Injector derived from a plan
// consumes randomness only from the plan's seed: the same plan and seed
// yield the same faults on every run, which is what makes failure
// experiments reproducible and traces byte-identical across runs.
package faults

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
)

// ErrInjected is the root cause of every staging failure produced by a
// fault plan. Resilience policies treat it (and stage timeouts) as
// transient: retryable with backoff.
var ErrInjected = errors.New("faults: injected staging failure")

// StagingFault describes staging-operation failures on one DTL tier.
// Exactly one trigger should be set: Rate for random per-operation
// failures, FailAtOp for a deterministic n-th-operation failure.
type StagingFault struct {
	// Tier names the DTL tier the rule applies to ("dimes", "burstbuffer",
	// "pfs", "mem" for the real backend); "" or "*" matches every tier.
	Tier string `json:"tier,omitempty"`
	// Rate is the per-operation failure probability in [0,1], drawn
	// deterministically from the plan seed.
	Rate float64 `json:"rate,omitempty"`
	// FailAtOp fails the n-th matching operation (1-based); 0 disables the
	// deterministic trigger. This reproduces the legacy dtl.Flaky hook.
	FailAtOp int `json:"failAtOp,omitempty"`
	// Start and End bound the window (virtual seconds) in which the rule
	// is active; End 0 means open-ended.
	Start float64 `json:"start,omitempty"`
	End   float64 `json:"end,omitempty"`
}

// NetworkWindow is a transient network-degradation window: between Start
// and End (virtual seconds) every fabric link capacity and the per-flow
// protocol cap are multiplied by Factor.
type NetworkWindow struct {
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	Factor float64 `json:"factor"` // in (0,1]: 0.25 = quarter bandwidth
}

// Active reports whether the window covers virtual time t.
func (w NetworkWindow) Active(t float64) bool { return t >= w.Start && t < w.End }

// NodeCrash kills every component placed on Node at virtual time At.
// What happens next is the resilience policy's decision: fail fast,
// restart the components from the last completed in situ step, or drop
// the affected members and continue.
type NodeCrash struct {
	Node int     `json:"node"`
	At   float64 `json:"at"`
}

// Straggler dilates the compute stages of matching components by Factor
// while the window is active — a slow node or noisy neighbour that
// degrades progress without killing anything.
type Straggler struct {
	// Component matches trace component names ("m0.sim", "m1.ana0");
	// "" or "*" matches everything, a trailing "*" matches a prefix
	// ("m0.*" matches every component of member 0).
	Component string  `json:"component,omitempty"`
	Start     float64 `json:"start,omitempty"`
	End       float64 `json:"end,omitempty"` // 0 = open-ended
	Factor    float64 `json:"factor"`        // >= 1: 2 = twice as slow
}

// Plan is a complete declarative fault scenario. The zero value is a
// valid empty plan (no faults).
type Plan struct {
	// Name labels the scenario in reports and traces.
	Name string `json:"name,omitempty"`
	// Seed drives every random draw of the plan. Two runs with the same
	// plan (seed included) inject identical faults.
	Seed int64 `json:"seed,omitempty"`

	Staging    []StagingFault  `json:"staging,omitempty"`
	Network    []NetworkWindow `json:"network,omitempty"`
	Crashes    []NodeCrash     `json:"crashes,omitempty"`
	Stragglers []Straggler     `json:"stragglers,omitempty"`
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Staging) == 0 && len(p.Network) == 0 &&
		len(p.Crashes) == 0 && len(p.Stragglers) == 0)
}

// Validate checks every rule of the plan.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, s := range p.Staging {
		if s.Rate < 0 || s.Rate > 1 {
			return fmt.Errorf("faults: staging[%d]: rate %v outside [0,1]", i, s.Rate)
		}
		if s.FailAtOp < 0 {
			return fmt.Errorf("faults: staging[%d]: negative failAtOp %d", i, s.FailAtOp)
		}
		if s.Rate == 0 && s.FailAtOp == 0 {
			return fmt.Errorf("faults: staging[%d]: needs a rate or a failAtOp trigger", i)
		}
		if s.Rate > 0 && s.FailAtOp > 0 {
			return fmt.Errorf("faults: staging[%d]: rate and failAtOp are mutually exclusive", i)
		}
		if err := window(s.Start, s.End); err != nil {
			return fmt.Errorf("faults: staging[%d]: %w", i, err)
		}
	}
	for i, w := range p.Network {
		if w.Factor <= 0 || w.Factor > 1 {
			return fmt.Errorf("faults: network[%d]: factor %v outside (0,1]", i, w.Factor)
		}
		if w.End <= w.Start {
			return fmt.Errorf("faults: network[%d]: window [%v,%v) is empty", i, w.Start, w.End)
		}
		if w.Start < 0 {
			return fmt.Errorf("faults: network[%d]: negative start %v", i, w.Start)
		}
	}
	for i, c := range p.Crashes {
		if c.Node < 0 {
			return fmt.Errorf("faults: crashes[%d]: negative node %d", i, c.Node)
		}
		if c.At < 0 {
			return fmt.Errorf("faults: crashes[%d]: negative time %v", i, c.At)
		}
	}
	for i, s := range p.Stragglers {
		if s.Factor < 1 {
			return fmt.Errorf("faults: stragglers[%d]: factor %v must be >= 1", i, s.Factor)
		}
		if err := window(s.Start, s.End); err != nil {
			return fmt.Errorf("faults: stragglers[%d]: %w", i, err)
		}
	}
	return nil
}

func window(start, end float64) error {
	if start < 0 {
		return fmt.Errorf("negative start %v", start)
	}
	if end != 0 && end <= start {
		return fmt.Errorf("window [%v,%v) is empty", start, end)
	}
	return nil
}

// inWindow reports whether t falls in [start, end) with end 0 open-ended.
func inWindow(t, start, end float64) bool {
	return t >= start && (end == 0 || t < end)
}

// MatchComponent reports whether a plan component pattern matches a trace
// component name: "" and "*" match everything, a trailing "*" matches the
// prefix, anything else matches exactly.
func MatchComponent(pattern, name string) bool {
	switch {
	case pattern == "" || pattern == "*":
		return true
	case strings.HasSuffix(pattern, "*"):
		return strings.HasPrefix(name, strings.TrimSuffix(pattern, "*"))
	default:
		return pattern == name
	}
}

// matchTier reports whether a staging rule applies to the tier.
func matchTier(pattern, tier string) bool {
	return pattern == "" || pattern == "*" || pattern == tier
}

// WriteJSON serializes the plan as indented JSON.
func (p *Plan) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadJSON parses and validates a plan. Decoding is strict: unknown
// fields are rejected, so a typo in a scenario file fails loudly at the
// boundary instead of silently injecting nothing.
func ReadJSON(r io.Reader) (*Plan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faults: decoding plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}
