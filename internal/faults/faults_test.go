package faults

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func validPlan() *Plan {
	return &Plan{
		Name: "test",
		Seed: 42,
		Staging: []StagingFault{
			{Tier: "dimes", Rate: 0.1},
			{Tier: "*", FailAtOp: 7},
		},
		Network:    []NetworkWindow{{Start: 10, End: 20, Factor: 0.25}},
		Crashes:    []NodeCrash{{Node: 1, At: 30}},
		Stragglers: []Straggler{{Component: "m0.*", Start: 5, End: 15, Factor: 2}},
	}
}

func TestPlanValidate(t *testing.T) {
	if err := validPlan().Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan should validate: %v", err)
	}
	if !nilPlan.Empty() {
		t.Error("nil plan should be empty")
	}
	cases := []struct {
		name string
		mut  func(*Plan)
	}{
		{"rate above 1", func(p *Plan) { p.Staging[0].Rate = 1.5 }},
		{"negative rate", func(p *Plan) { p.Staging[0].Rate = -0.1 }},
		{"no trigger", func(p *Plan) { p.Staging[0].Rate = 0 }},
		{"both triggers", func(p *Plan) { p.Staging[0].FailAtOp = 3 }},
		{"staging window empty", func(p *Plan) { p.Staging[0].Start = 5; p.Staging[0].End = 5 }},
		{"network factor zero", func(p *Plan) { p.Network[0].Factor = 0 }},
		{"network factor above 1", func(p *Plan) { p.Network[0].Factor = 1.5 }},
		{"network window empty", func(p *Plan) { p.Network[0].End = p.Network[0].Start }},
		{"negative crash node", func(p *Plan) { p.Crashes[0].Node = -1 }},
		{"negative crash time", func(p *Plan) { p.Crashes[0].At = -1 }},
		{"straggler factor below 1", func(p *Plan) { p.Stragglers[0].Factor = 0.5 }},
		{"straggler window empty", func(p *Plan) { p.Stragglers[0].End = p.Stragglers[0].Start }},
	}
	for _, tc := range cases {
		p := validPlan()
		tc.mut(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p := validPlan()
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || q.Seed != p.Seed || len(q.Staging) != 2 ||
		len(q.Network) != 1 || len(q.Crashes) != 1 || len(q.Stragglers) != 1 {
		t.Errorf("round trip mangled the plan: %+v", q)
	}
}

func TestReadJSONStrict(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"seed": 1, "stagging": []}`)); err == nil {
		t.Error("unknown field should be rejected")
	}
	if _, err := ReadJSON(strings.NewReader(`{"staging": [{"tier": "dimes"}]}`)); err == nil {
		t.Error("invalid plan should be rejected at the boundary")
	}
	if _, err := ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage should be rejected")
	}
}

func TestInjectorDeterminism(t *testing.T) {
	// The same plan must yield the same fault sequence across injectors.
	record := func() []bool {
		in := NewInjector(validPlan())
		out := make([]bool, 0, 200)
		for i := 0; i < 200; i++ {
			out = append(out, in.StagingOp("dimes", float64(i)) != nil)
		}
		return out
	}
	a, b := record(), record()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: injectors diverge", i)
		}
	}
	// A different seed must (eventually) yield a different sequence.
	p := validPlan()
	p.Seed = 43
	in := NewInjector(p)
	same := true
	for i := 0; i < 200; i++ {
		if (in.StagingOp("dimes", float64(i)) != nil) != a[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should perturb the fault sequence")
	}
}

func TestInjectorFailAtOp(t *testing.T) {
	in := NewInjector(&Plan{Staging: []StagingFault{{FailAtOp: 3}}})
	for i := 1; i <= 5; i++ {
		err := in.StagingOp("pfs", 0)
		if (err != nil) != (i == 3) {
			t.Errorf("op %d: err = %v", i, err)
		}
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Errorf("injected error should wrap ErrInjected: %v", err)
		}
	}
}

func TestInjectorRateAndWindow(t *testing.T) {
	// Rate 1 inside the window fails every op; outside it never fails.
	in := NewInjector(&Plan{Staging: []StagingFault{{Rate: 1, Start: 10, End: 20}}})
	if err := in.StagingOp("dimes", 5); err != nil {
		t.Errorf("before window: %v", err)
	}
	if err := in.StagingOp("dimes", 15); err == nil {
		t.Error("inside window: rate 1 should always fail")
	}
	if err := in.StagingOp("dimes", 25); err != nil {
		t.Errorf("after window: %v", err)
	}
	// Tier matching.
	in2 := NewInjector(&Plan{Staging: []StagingFault{{Tier: "pfs", Rate: 1}}})
	if err := in2.StagingOp("dimes", 0); err != nil {
		t.Errorf("other tier should not fail: %v", err)
	}
	if err := in2.StagingOp("pfs", 0); err == nil {
		t.Error("matching tier should fail")
	}
	// A rate close to r should fail roughly r of the time.
	rate := 0.3
	in3 := NewInjector(&Plan{Seed: 7, Staging: []StagingFault{{Rate: rate}}})
	fails := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if in3.StagingOp("dimes", 0) != nil {
			fails++
		}
	}
	got := float64(fails) / n
	if got < rate-0.05 || got > rate+0.05 {
		t.Errorf("empirical failure rate %v far from %v", got, rate)
	}
}

func TestSlowdown(t *testing.T) {
	in := NewInjector(&Plan{Stragglers: []Straggler{
		{Component: "m0.*", Start: 10, End: 20, Factor: 2},
		{Component: "m0.sim", Start: 10, End: 20, Factor: 3},
	}})
	if f := in.Slowdown("m0.sim", 15); f != 6 {
		t.Errorf("overlapping windows should multiply: got %v", f)
	}
	if f := in.Slowdown("m0.ana0", 15); f != 2 {
		t.Errorf("prefix match: got %v", f)
	}
	if f := in.Slowdown("m1.sim", 15); f != 1 {
		t.Errorf("non-matching component: got %v", f)
	}
	if f := in.Slowdown("m0.sim", 25); f != 1 {
		t.Errorf("outside window: got %v", f)
	}
	// Open-ended window.
	in2 := NewInjector(&Plan{Stragglers: []Straggler{{Start: 10, Factor: 2}}})
	if f := in2.Slowdown("anything", 1e9); f != 2 {
		t.Errorf("open-ended window should stay active: got %v", f)
	}
}

func TestNilInjector(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Error("nil injector should be disabled")
	}
	if err := in.StagingOp("dimes", 0); err != nil {
		t.Errorf("nil injector should never fail: %v", err)
	}
	if f := in.Slowdown("m0.sim", 0); f != 1 {
		t.Errorf("nil injector slowdown = %v", f)
	}
	if in.Crashes() != nil || in.NetworkWindows() != nil || in.Plan() != nil {
		t.Error("nil injector schedules should be nil")
	}
	if NewInjector(nil) != nil {
		t.Error("nil plan should yield nil injector")
	}
	if NewInjector(&Plan{Seed: 5}) != nil {
		t.Error("empty plan should yield nil injector")
	}
}

func TestMatchComponent(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"", "m0.sim", true},
		{"*", "m0.sim", true},
		{"m0.*", "m0.sim", true},
		{"m0.*", "m0.ana1", true},
		{"m0.*", "m1.sim", false},
		{"m0.sim", "m0.sim", true},
		{"m0.sim", "m0.sim2", false},
	}
	for _, tc := range cases {
		if got := MatchComponent(tc.pattern, tc.name); got != tc.want {
			t.Errorf("MatchComponent(%q, %q) = %v, want %v", tc.pattern, tc.name, got, tc.want)
		}
	}
}

// TestRandomizedPlansDeterministic is a property test: arbitrary seeded
// plans always produce identical decision sequences across injectors.
func TestRandomizedPlansDeterministic(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		p := &Plan{Seed: rng.Int63()}
		for i := 0; i < 1+rng.Intn(3); i++ {
			p.Staging = append(p.Staging, StagingFault{Rate: rng.Float64()})
		}
		seq := func() string {
			in := NewInjector(p)
			var sb strings.Builder
			for i := 0; i < 100; i++ {
				if in.StagingOp("dimes", float64(i)) != nil {
					sb.WriteByte('F')
				} else {
					sb.WriteByte('.')
				}
			}
			return sb.String()
		}
		if a, b := seq(), seq(); a != b {
			t.Fatalf("trial %d: sequences diverge:\n%s\n%s", trial, a, b)
		}
	}
}
