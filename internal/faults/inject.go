package faults

import (
	"fmt"
	"math/rand"
	"sync"
)

// stagingRule is the live state of one StagingFault: its own RNG stream
// (so rules do not perturb each other's draws) and the count of matching
// operations seen so far.
type stagingRule struct {
	StagingFault
	rng *rand.Rand
	ops int
}

// Injector is the runtime face of a plan: the runtime consults it before
// every staging operation and compute stage, and reads its crash and
// degradation schedules at startup. A nil *Injector is a valid no-op (no
// faults), mirroring the obs.Recorder convention, so the runtime threads
// it unconditionally.
//
// Determinism: each rate rule draws from its own rand.Rand seeded from
// (plan seed, rule index). Because the discrete-event engine dispatches
// operations in a deterministic order, the draw sequence — and therefore
// the injected fault set — is identical on every run of the same plan.
// An Injector is single-run state: build a fresh one per execution.
type Injector struct {
	plan    *Plan
	staging []*stagingRule
	// mu guards the mutable rule state. The simulated backend is
	// single-threaded so the lock is uncontended; the real backend calls
	// StagingOp from one goroutine per component.
	mu sync.Mutex
}

// NewInjector builds the live injector for one run of the plan. A nil or
// empty plan yields a nil injector.
func NewInjector(p *Plan) *Injector {
	if p.Empty() {
		return nil
	}
	in := &Injector{plan: p}
	for i, s := range p.Staging {
		r := &stagingRule{StagingFault: s}
		if s.Rate > 0 {
			// Distinct, seed-stable stream per rule: mixing with a large
			// odd constant decorrelates neighbouring seeds.
			r.rng = rand.New(rand.NewSource(p.Seed*0x9E3779B1 + int64(i) + 1))
		}
		in.staging = append(in.staging, r)
	}
	return in
}

// Enabled reports whether the injector injects anything.
func (in *Injector) Enabled() bool { return in != nil }

// Plan returns the plan behind the injector (nil for a no-op injector).
func (in *Injector) Plan() *Plan {
	if in == nil {
		return nil
	}
	return in.plan
}

// StagingOp accounts one staging operation (a DTL write or read) on the
// named tier at virtual time now, and returns a non-nil error wrapping
// ErrInjected if a rule fires. Every retry attempt is a fresh operation:
// it is counted and drawn again, so a retried operation can fail again —
// exactly the behaviour a real flaky staging service exhibits.
func (in *Injector) StagingOp(tier string, now float64) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, r := range in.staging {
		if !matchTier(r.Tier, tier) {
			continue
		}
		r.ops++
		if r.FailAtOp > 0 && r.ops == r.FailAtOp {
			return fmt.Errorf("tier %s op %d (rule %d): %w", tier, r.ops, i, ErrInjected)
		}
		if r.rng != nil {
			draw := r.rng.Float64()
			if inWindow(now, r.Start, r.End) && draw < r.Rate {
				return fmt.Errorf("tier %s op %d (rule %d, rate %v): %w", tier, r.ops, i, r.Rate, ErrInjected)
			}
		}
	}
	return nil
}

// Slowdown returns the compute-dilation factor for the named component at
// virtual time now: the product of every active matching straggler window
// (1 when none match). The runtime samples it at each compute stage start.
func (in *Injector) Slowdown(component string, now float64) float64 {
	if in == nil {
		return 1
	}
	f := 1.0
	for _, s := range in.plan.Stragglers {
		if MatchComponent(s.Component, component) && inWindow(now, s.Start, s.End) {
			f *= s.Factor
		}
	}
	return f
}

// Crashes returns the node-crash schedule.
func (in *Injector) Crashes() []NodeCrash {
	if in == nil {
		return nil
	}
	return in.plan.Crashes
}

// NetworkWindows returns the network-degradation schedule.
func (in *Injector) NetworkWindows() []NetworkWindow {
	if in == nil {
		return nil
	}
	return in.plan.Network
}
