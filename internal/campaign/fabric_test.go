package campaign

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ensemblekit/internal/campaign/pool"
)

// This file is the in-process fabric suite: several Services wired into
// one pool (each mounted on a loopback httptest server), exercising ring
// routing, the fleet cache tier, drain handoff, and the keystone
// invariant — a sharded campaign fingerprints identically to a
// single-node run, even when a peer is killed mid-campaign. The
// subprocess variant (real processes, real SIGKILL) lives behind
// `ensembled -smoke-pool`.

type fabricNode struct {
	id   string
	svc  *Service
	pool *pool.Pool
	ts   *httptest.Server
	runs atomic.Int64 // local executions (runFn invocations)

	closeOnce sync.Once
}

// kill simulates a SIGKILL: stop accepting connections, sever the live
// ones, and tear the node down. In-flight forwards to this node fail
// with transport errors, exactly as with a dead process.
func (n *fabricNode) kill() {
	n.closeOnce.Do(func() {
		n.ts.Listener.Close()
		n.ts.CloseClientConnections()
		n.pool.Close()
		n.svc.Close()
	})
}

func (n *fabricNode) shutdown() {
	n.closeOnce.Do(func() {
		n.pool.Close()
		n.svc.Close()
		n.ts.Close()
	})
}

// startFabric brings up n Services joined into one pool. mutate, when
// non-nil, adjusts each node's service config before construction.
func startFabric(t *testing.T, n int, mutate func(i int, cfg *Config)) []*fabricNode {
	t.Helper()
	nodes := make([]*fabricNode, n)
	for i := 0; i < n; i++ {
		node := &fabricNode{id: fmt.Sprintf("n%d", i+1)}
		cfg := Config{Workers: 2}
		if mutate != nil {
			mutate(i, &cfg)
		}
		inner := cfg.runFn
		if inner == nil {
			inner = func(_ context.Context, spec JobSpec) (*Result, error) {
				return Execute(spec)
			}
		}
		cfg.runFn = func(ctx context.Context, spec JobSpec) (*Result, error) {
			node.runs.Add(1)
			return inner(ctx, spec)
		}
		svc, err := NewService(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var h atomic.Pointer[http.Handler]
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if hp := h.Load(); hp != nil {
				(*hp).ServeHTTP(w, r)
				return
			}
			http.NotFound(w, r)
		}))
		pcfg := pool.Config{
			SelfID:    node.id,
			Advertise: ts.URL,
			Heartbeat: 10 * time.Millisecond,
			Local:     svc,
			Permanent: IsPermanent,
		}
		if i > 0 {
			pcfg.Join = []string{nodes[0].ts.URL}
		}
		p, err := pool.New(pcfg)
		if err != nil {
			t.Fatal(err)
		}
		handler := p.Handler()
		h.Store(&handler)
		svc.SetFabric(p)
		p.Start()
		node.svc, node.pool, node.ts = svc, p, ts
		nodes[i] = node
		t.Cleanup(node.shutdown)
	}
	waitFabricConverged(t, nodes)
	return nodes
}

// waitFabricConverged blocks until every node sees every other alive.
func waitFabricConverged(t *testing.T, nodes []*fabricNode) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok := true
		for _, n := range nodes {
			alive := 0
			for _, pi := range n.pool.Peers() {
				if pi.State == pool.StateAlive {
					alive++
				}
			}
			if alive != len(nodes) {
				ok = false
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("fabric never converged")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// specOwnedBy scans seeds for a spec whose hash the fabric routes to
// the wanted node.
func specOwnedBy(t *testing.T, n *fabricNode, want string) JobSpec {
	t.Helper()
	for seed := int64(1); seed < 1000; seed++ {
		spec := jobFor(t, seed)
		hash, err := spec.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if owner, _ := n.pool.Owner(hash); owner == want {
			return spec
		}
	}
	t.Fatalf("no seed < 1000 routes to %s", want)
	return JobSpec{}
}

// The keystone invariant: a campaign sharded across three nodes must
// fingerprint byte-identically to a single-node run, and the work must
// actually shard (peers execute a share of the jobs).
func TestFabricShardedCampaignMatchesSingleNode(t *testing.T) {
	refFP := chaosFingerprint(t)
	nodes := startFabric(t, 3, nil)

	res, err := RunCampaign(context.Background(), nodes[0].svc, chaosSweep())
	if err != nil {
		t.Fatal(err)
	}
	fp, err := res.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp != refFP {
		t.Errorf("sharded campaign fingerprint %s != single-node %s", fp, refFP)
	}
	remote := nodes[1].runs.Load() + nodes[2].runs.Load()
	if remote == 0 {
		t.Error("no job executed on a peer; the campaign did not shard")
	}
	t.Logf("executions: n1=%d n2=%d n3=%d",
		nodes[0].runs.Load(), nodes[1].runs.Load(), nodes[2].runs.Load())
}

// A result cached on its owner must answer a peer's submission through
// the fleet cache tier without executing anywhere.
func TestFabricPeerCacheHit(t *testing.T) {
	nodes := startFabric(t, 2, nil)
	spec := specOwnedBy(t, nodes[0], "n2")

	// Prime the owner's cache with a local run.
	j2, err := nodes[1].svc.Submit(context.Background(), spec, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := j2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	runsBefore := nodes[0].runs.Load()
	j1, err := nodes[0].svc.Submit(context.Background(), spec, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := j1.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.Objective != want.Objective || got.Hash != want.Hash {
		t.Fatalf("peer-cache result %+v != owner result %+v", got.Objective, want.Objective)
	}
	if nodes[0].runs.Load() != runsBefore {
		t.Error("requester executed locally despite the peer-cache hit")
	}
	if node := j1.Node(); node != "n2" {
		t.Errorf("job node %q, want n2", node)
	}
	if hits := nodes[0].svc.Stats().CacheHits; hits == 0 {
		t.Error("fleet cache hit not accounted in service stats")
	}
}

// Killing a peer mid-campaign must not change the campaign's science:
// its jobs re-route to the survivors (via the retry policy on the
// rebalanced ring) and the fingerprint still matches the single-node
// reference.
func TestFabricPeerLossMidCampaignStillMatches(t *testing.T) {
	refFP := chaosFingerprint(t)
	nodes := startFabric(t, 3, func(i int, cfg *Config) {
		if i == 0 {
			cfg.Retry = RetryPolicy{
				MaxAttempts: 4,
				BaseBackoff: 5 * time.Millisecond,
				MaxBackoff:  50 * time.Millisecond,
			}
			// Slow the jobs slightly so the kill lands mid-campaign.
			cfg.runFn = func(_ context.Context, spec JobSpec) (*Result, error) {
				time.Sleep(3 * time.Millisecond)
				return Execute(spec)
			}
		}
	})

	type out struct {
		res *CampaignResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := RunCampaign(context.Background(), nodes[0].svc, chaosSweep())
		done <- out{res, err}
	}()

	// Kill n3 once the campaign is demonstrably in flight.
	deadline := time.Now().Add(20 * time.Second)
	for nodes[0].svc.Stats().Completed < 2 {
		if time.Now().After(deadline) {
			t.Fatal("campaign never got under way")
		}
		time.Sleep(time.Millisecond)
	}
	nodes[2].kill()

	o := <-done
	if o.err != nil {
		t.Fatal(o.err)
	}
	fp, err := o.res.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp != refFP {
		t.Errorf("fingerprint after peer loss %s != single-node %s", fp, refFP)
	}
	// The failure detector declares the kill — via a failed forward (data
	// plane) or missed beats (sweep) — within a few beat intervals.
	deadline = time.Now().Add(10 * time.Second)
	for nodes[0].pool.Membership().State("n3") != pool.StateDead {
		if time.Now().After(deadline) {
			t.Fatalf("killed peer state %s, want dead",
				nodes[0].pool.Membership().State("n3"))
		}
		time.Sleep(time.Millisecond)
	}
}

// SIGTERM with peers: pending jobs leave through the ring instead of
// waiting for a local resume — each drained job finishes cancelled with
// a journaled terminal record, and the accepting peer runs it.
func TestServiceDrainQueuedToPeers(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	var gateHash atomic.Value // hash of the spec that blocks on gate
	gateHash.Store("")
	var once sync.Once
	nodes := startFabric(t, 2, func(i int, cfg *Config) {
		if i == 0 {
			cfg.Workers = 1
			cfg.JournalPath = filepath.Join(dir, "journal.wal")
			cfg.CacheDir = filepath.Join(dir, "cache")
			cfg.runFn = func(_ context.Context, spec JobSpec) (*Result, error) {
				if h, _ := spec.Hash(); h == gateHash.Load() {
					<-gate // the blocker occupies the only worker
				}
				return Execute(spec)
			}
		}
	})
	defer once.Do(func() { close(gate) })

	// The blocker must execute locally (not forward), so pick a spec the
	// ring assigns to n1 and gate exactly that hash.
	blockSpec := specOwnedBy(t, nodes[0], "n1")
	blockHash, err := blockSpec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	gateHash.Store(blockHash)
	blocker, err := nodes[0].svc.Submit(context.Background(), blockSpec, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The drain must only see queued jobs, so wait until the blocker has
	// entered runFn (runs counts the entry) and therefore holds the worker.
	deadlineRun := time.Now().Add(10 * time.Second)
	for nodes[0].runs.Load() == 0 {
		if time.Now().After(deadlineRun) {
			t.Fatal("blocker never started running")
		}
		time.Sleep(time.Millisecond)
	}
	var queued []*Job
	for seed := int64(2); len(queued) < 3; seed++ {
		spec := jobFor(t, seed)
		if h, _ := spec.Hash(); h == blockHash {
			continue
		}
		j, err := nodes[0].svc.Submit(context.Background(), spec, SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j)
	}

	handed := nodes[0].svc.DrainQueuedToPeers(context.Background())
	if handed != len(queued) {
		t.Fatalf("handed %d jobs, want %d", handed, len(queued))
	}
	for _, j := range queued {
		if got := j.Status(); got != StatusCancelled {
			t.Errorf("drained job %s status %s, want cancelled", j.ID, got)
		}
		if reason := j.Reason(); !strings.HasPrefix(reason, "drained to peer ") {
			t.Errorf("drained job %s reason %q", j.ID, reason)
		}
		if node := j.Node(); node != "n2" {
			t.Errorf("drained job %s node %q, want n2", j.ID, node)
		}
	}

	// The peer actually runs the drained work.
	deadline := time.Now().Add(20 * time.Second)
	for nodes[1].svc.Stats().Completed < int64(len(queued)) {
		if time.Now().After(deadline) {
			nodes[1].svc.mu.Lock()
			for _, j := range nodes[1].svc.jobs {
				t.Logf("n2 job %s label=%q status=%s reason=%q node=%q attempts=%d",
					j.ID, j.Label, j.Status(), j.Reason(), j.Node(), j.attempts)
			}
			st := nodes[1].svc.stats
			nodes[1].svc.mu.Unlock()
			t.Logf("n2 stats: %+v", st)
			t.Fatalf("peer completed %d of %d drained jobs",
				nodes[1].svc.Stats().Completed, len(queued))
		}
		time.Sleep(time.Millisecond)
	}

	// Let the blocker finish, close the first node, and reopen its
	// journal: the drained jobs were journaled terminal, so nothing is
	// pending for local resume.
	once.Do(func() { close(gate) })
	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	nodes[0].shutdown()
	svc, err := NewService(Config{
		Workers:     1,
		JournalPath: filepath.Join(dir, "journal.wal"),
		CacheDir:    filepath.Join(dir, "cache"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if got := svc.Stats().JournalReplayed; got != 0 {
		t.Errorf("restart replayed %d drained jobs, want 0", got)
	}
}

// With retries disabled, a forward to a lost peer falls back to local
// execution instead of failing the job.
func TestFabricLocalFallbackWithoutRetries(t *testing.T) {
	nodes := startFabric(t, 2, nil)
	spec := specOwnedBy(t, nodes[0], "n2")
	nodes[1].kill()

	j, err := nodes[0].svc.Submit(context.Background(), spec, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatalf("job failed instead of falling back locally: %v", err)
	}
	if res == nil {
		t.Fatal("nil result from local fallback")
	}
	if node := j.Node(); node != "n1" {
		t.Errorf("fallback job node %q, want n1", node)
	}
}
