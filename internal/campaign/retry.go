package campaign

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/fnv"
	"time"
)

// RetryPolicy is the service's per-job retry behaviour for transient
// failures: a job that fails with a transient error (worker panic,
// deadline, injected infrastructure fault) is re-enqueued after an
// exponential backoff until it succeeds or exhausts MaxAttempts, at
// which point it is quarantined — failed terminally with an explicit
// reason — so a poison job can never occupy the pool forever.
//
// The backoff jitter is deterministic: it is seeded from the job's spec
// hash, so the same job retries on the same schedule in every run. That
// keeps the service's end-to-end behaviour reproducible (the golden
// determinism pins extend through the retry path) while still
// de-synchronizing distinct jobs that fail together.
type RetryPolicy struct {
	// MaxAttempts bounds total executions per job (first run included).
	// 0 or 1 disables retries.
	MaxAttempts int `json:"maxAttempts,omitempty"`
	// BaseBackoff is the delay before the first retry; each subsequent
	// retry doubles it (default 100ms).
	BaseBackoff time.Duration `json:"baseBackoff,omitempty"`
	// MaxBackoff caps the exponential growth (default 5s).
	MaxBackoff time.Duration `json:"maxBackoff,omitempty"`
	// Jitter spreads each delay multiplicatively over
	// [1-Jitter, 1+Jitter), deterministically per (spec hash, attempt).
	// Clamped to [0, 1].
	Jitter float64 `json:"jitter,omitempty"`
}

// normalized fills defaults and clamps the jitter fraction.
func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Second
	}
	if p.MaxBackoff < p.BaseBackoff {
		p.MaxBackoff = p.BaseBackoff
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Backoff returns the delay before retry number attempt (1 = the first
// retry) of the job addressed by hash: BaseBackoff doubled per attempt,
// capped at MaxBackoff, then jittered deterministically from
// (hash, attempt). Same hash, same attempt, same policy — same delay,
// in every process, forever.
func (p RetryPolicy) Backoff(hash string, attempt int) time.Duration {
	p = p.normalized()
	if attempt < 1 {
		attempt = 1
	}
	d := p.BaseBackoff
	for i := 1; i < attempt && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.Jitter > 0 {
		f := 1 - p.Jitter + 2*p.Jitter*jitterUnit(hash, attempt)
		d = time.Duration(float64(d) * f)
		if d > p.MaxBackoff {
			d = p.MaxBackoff
		}
	}
	if d < 0 {
		d = 0
	}
	return d
}

// jitterUnit maps (hash, attempt) to a uniform value in [0, 1) via
// FNV-1a — cheap, stateless, and identical across processes.
func jitterUnit(hash string, attempt int) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(hash))
	var a [8]byte
	binary.LittleEndian.PutUint64(a[:], uint64(attempt))
	_, _ = h.Write(a[:])
	// 53 high bits give a full-precision float in [0, 1).
	return float64(h.Sum64()>>11) / (1 << 53)
}

// permanentError marks an error as non-retryable without changing its
// message; Unwrap keeps errors.Is/As working through it.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent marks err as permanent: the retry policy will never re-run
// a job that fails with it. The service wraps simulation errors this
// way — a DES run is a pure function of its spec, so an identical
// re-run fails identically and a retry only burns a worker.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// with Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// isTransient decides retryability: permanent errors, submitter
// cancellations, and service shutdown never retry; everything else —
// worker panics, deadlines, injected faults, infrastructure errors —
// is assumed transient and retried under the policy.
func isTransient(err error) bool {
	switch {
	case err == nil:
		return false
	case IsPermanent(err):
		return false
	case errors.Is(err, context.Canceled):
		return false
	case errors.Is(err, ErrClosed):
		return false
	}
	return true
}
