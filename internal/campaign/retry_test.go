package campaign

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ensemblekit/internal/telemetry"
	"ensemblekit/internal/telemetry/tracing"
)

// retryConfig builds a service whose runFn is under test control and
// whose retry policy uses backoffs short enough for tests.
func retryConfig(attempts int, runFn func(context.Context, JobSpec) (*Result, error)) Config {
	return Config{
		Workers: 1,
		Metrics: telemetry.NewRegistry(),
		Retry: RetryPolicy{
			MaxAttempts: attempts,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  4 * time.Millisecond,
			Jitter:      0.2,
		},
		runFn: runFn,
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{
		MaxAttempts: 6,
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  2 * time.Second,
		Jitter:      0.5,
	}
	const hash = "sha256:deadbeef"
	for attempt := 1; attempt <= 6; attempt++ {
		got := p.Backoff(hash, attempt)
		if again := p.Backoff(hash, attempt); again != got {
			t.Fatalf("attempt %d: backoff not deterministic: %v then %v", attempt, got, again)
		}
		// Exponential schedule with multiplicative jitter: the delay must
		// sit within +/- Jitter of base*2^(attempt-1), clamped to max.
		ideal := p.BaseBackoff << (attempt - 1)
		if ideal > p.MaxBackoff {
			ideal = p.MaxBackoff
		}
		lo := time.Duration(float64(ideal) * (1 - p.Jitter))
		hi := time.Duration(float64(ideal) * (1 + p.Jitter))
		if got < lo || got > hi {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, got, lo, hi)
		}
	}

	// Different jobs must not thunder in lockstep: the jitter is seeded
	// from the job hash, so at least one attempt's delay differs.
	same := true
	for attempt := 1; attempt <= 6 && same; attempt++ {
		same = p.Backoff("sha256:cafe", attempt) == p.Backoff(hash, attempt)
	}
	if same {
		t.Error("two distinct hashes produced identical jitter sequences")
	}

	// Zero jitter collapses to the exact exponential schedule.
	exact := RetryPolicy{MaxAttempts: 4, BaseBackoff: 10 * time.Millisecond, MaxBackoff: time.Second}
	for attempt, want := range map[int]time.Duration{
		1: 10 * time.Millisecond,
		2: 20 * time.Millisecond,
		3: 40 * time.Millisecond,
	} {
		if got := exact.Backoff(hash, attempt); got != want {
			t.Errorf("zero jitter, attempt %d: %v, want %v", attempt, got, want)
		}
	}
}

func TestTransientFailureSucceedsOnRetry(t *testing.T) {
	var calls atomic.Int64
	cfg := retryConfig(3, func(_ context.Context, spec JobSpec) (*Result, error) {
		if calls.Add(1) <= 2 {
			return nil, fmt.Errorf("simulated transient fault %d", calls.Load())
		}
		return Execute(spec)
	})
	cfg.Tracer = tracing.NewTracer(tracing.NewStore(0, 0))
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	_, events, cancel := svc.Events().Subscribe()
	defer cancel()

	j, err := svc.Submit(context.Background(), jobFor(t, 1), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatalf("job failed despite retry budget: %v", err)
	}
	if res == nil || calls.Load() != 3 {
		t.Fatalf("res=%v after %d executions, want a result on the 3rd", res, calls.Load())
	}

	st := svc.Stats()
	if st.Retries != 2 || st.Completed != 1 || st.Failed != 0 || st.Quarantined != 0 {
		t.Errorf("stats retries=%d completed=%d failed=%d quarantined=%d, want 2/1/0/0",
			st.Retries, st.Completed, st.Failed, st.Quarantined)
	}
	if got := svc.metrics.retries.Value(); got != 2 {
		t.Errorf("campaign_job_retries_total = %v, want 2", got)
	}

	// The event stream narrates both retries with attempt numbers, the
	// causing error, and the backoff being waited out.
	var retrying []JobEvent
	for ev := range events {
		if ev.Status == EventRetrying {
			retrying = append(retrying, ev)
		}
		if ev.Terminal() {
			if ev.Attempt != 2 {
				t.Errorf("terminal event attempt = %d, want 2", ev.Attempt)
			}
			break
		}
	}
	if len(retrying) != 2 {
		t.Fatalf("saw %d retrying events, want 2", len(retrying))
	}
	for i, ev := range retrying {
		if ev.Attempt != i+1 {
			t.Errorf("retrying event %d: attempt = %d, want %d", i, ev.Attempt, i+1)
		}
		if ev.BackoffSec <= 0 {
			t.Errorf("retrying event %d: backoffSec = %v, want > 0", i, ev.BackoffSec)
		}
		if !strings.Contains(ev.Error, "simulated transient fault") {
			t.Errorf("retrying event %d: error %q lacks the cause", i, ev.Error)
		}
		// The denominator is the retry budget (attempts beyond the first).
		if want := fmt.Sprintf("retry %d/2", i+1); ev.Reason != want {
			t.Errorf("retrying event %d: reason %q, want %q", i, ev.Reason, want)
		}
	}

	// Every attempt is visible in the trace: one backoff span per retry
	// and execute spans stamped with the attempt number.
	spans := svc.Tracer().Store().Spans(j.span.Context().TraceID)
	backoffs := map[string]bool{}
	attempts := map[int64]bool{}
	for _, d := range spans {
		if d.Kind == "queue" && strings.HasPrefix(d.Name, "retry-backoff") {
			backoffs[d.Name] = true
		}
		for _, a := range d.Attrs {
			if a.Key == "retry.attempt" {
				if n, ok := a.Value.(int64); ok {
					attempts[n] = true
				}
			}
		}
	}
	if !backoffs["retry-backoff 1"] || !backoffs["retry-backoff 2"] {
		t.Errorf("backoff spans missing: %v", backoffs)
	}
	if !attempts[1] || !attempts[2] {
		t.Errorf("retry.attempt attributes missing: %v", attempts)
	}
}

func TestPermanentFailureNeverRetries(t *testing.T) {
	var calls atomic.Int64
	svc, err := NewService(retryConfig(5, func(_ context.Context, _ JobSpec) (*Result, error) {
		calls.Add(1)
		return nil, Permanent(errors.New("invalid placement geometry"))
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	j, err := svc.Submit(context.Background(), jobFor(t, 1), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err == nil || !strings.Contains(err.Error(), "invalid placement geometry") {
		t.Fatalf("got %v, want the permanent error", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("permanent failure executed %d times, want 1", got)
	}
	if st := svc.Stats(); st.Retries != 0 || st.Failed != 1 {
		t.Errorf("stats retries=%d failed=%d, want 0/1", st.Retries, st.Failed)
	}
}

func TestQuarantineAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	svc, err := NewService(retryConfig(3, func(_ context.Context, _ JobSpec) (*Result, error) {
		calls.Add(1)
		return nil, errors.New("flaky backend")
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	j, err := svc.Submit(context.Background(), jobFor(t, 1), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, werr := j.Wait(context.Background())
	if werr == nil || !strings.Contains(werr.Error(), "quarantined after 3 attempts") {
		t.Fatalf("got %v, want quarantine error", werr)
	}
	if !strings.Contains(werr.Error(), "flaky backend") {
		t.Errorf("quarantine error %v does not wrap the last cause", werr)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("executed %d times, want 3 (the full budget)", got)
	}
	st := svc.Stats()
	if st.Retries != 2 || st.Quarantined != 1 || st.Failed != 1 {
		t.Errorf("stats retries=%d quarantined=%d failed=%d, want 2/1/1", st.Retries, st.Quarantined, st.Failed)
	}
	if got := svc.metrics.quarantined.Value(); got != 1 {
		t.Errorf("campaign_jobs_quarantined_total = %v, want 1", got)
	}
}

func TestWorkerPanicBecomesFailedJob(t *testing.T) {
	var calls atomic.Int64
	svc, err := NewService(Config{
		Workers: 1,
		Metrics: telemetry.NewRegistry(),
		runFn: func(_ context.Context, spec JobSpec) (*Result, error) {
			if calls.Add(1) == 1 {
				panic("index out of range in stage solver")
			}
			return Execute(spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	j, err := svc.Submit(context.Background(), jobFor(t, 1), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, werr := j.Wait(context.Background())
	if werr == nil || !strings.Contains(werr.Error(), "worker panic: index out of range in stage solver") {
		t.Fatalf("got %v, want the recovered panic as an error", werr)
	}
	if got := j.Status(); got != StatusFailed {
		t.Errorf("status = %s, want failed", got)
	}
	if st := svc.Stats(); st.WorkerPanics != 1 {
		t.Errorf("worker panics = %d, want 1", st.WorkerPanics)
	}
	if got := svc.metrics.workerPanics.Value(); got != 1 {
		t.Errorf("campaign_worker_panics_total = %v, want 1", got)
	}

	// The worker survived the panic: the next job runs to completion.
	j2, err := svc.Submit(context.Background(), jobFor(t, 2), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := j2.Wait(context.Background()); err != nil || res == nil {
		t.Fatalf("worker dead after panic: res=%v err=%v", res, err)
	}
}

func TestPanicConsumesRetryBudget(t *testing.T) {
	var calls atomic.Int64
	svc, err := NewService(retryConfig(2, func(_ context.Context, spec JobSpec) (*Result, error) {
		if calls.Add(1) == 1 {
			panic("transient corruption")
		}
		return Execute(spec)
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// A recovered panic is indistinguishable from any other transient
	// failure: with budget left, the job retries and succeeds.
	j, err := svc.Submit(context.Background(), jobFor(t, 1), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := j.Wait(context.Background()); err != nil || res == nil {
		t.Fatalf("panicking job did not recover on retry: res=%v err=%v", res, err)
	}
	if st := svc.Stats(); st.Retries != 1 || st.WorkerPanics != 1 {
		t.Errorf("stats retries=%d panics=%d, want 1/1", st.Retries, st.WorkerPanics)
	}
}

func TestCancelDuringRetryBackoff(t *testing.T) {
	svc, err := NewService(Config{
		Workers: 1,
		Retry: RetryPolicy{
			MaxAttempts: 3,
			BaseBackoff: time.Hour, // park the retry so the test can race-free cancel it
			MaxBackoff:  time.Hour,
		},
		runFn: func(_ context.Context, _ JobSpec) (*Result, error) {
			return nil, errors.New("transient")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	_, events, cancelSub := svc.Events().Subscribe()
	defer cancelSub()
	j, err := svc.Submit(context.Background(), jobFor(t, 1), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for ev := range events {
		if ev.Status == EventRetrying {
			break
		}
	}
	j.Cancel()
	if _, err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel during backoff: got %v, want context.Canceled", err)
	}
	if got := j.Status(); got != StatusCancelled {
		t.Errorf("status = %s, want cancelled", got)
	}
}

func TestCloseDuringRetryBackoff(t *testing.T) {
	svc, err := NewService(Config{
		Workers: 1,
		Retry: RetryPolicy{
			MaxAttempts: 3,
			BaseBackoff: time.Hour,
			MaxBackoff:  time.Hour,
		},
		runFn: func(_ context.Context, _ JobSpec) (*Result, error) {
			return nil, errors.New("transient")
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	_, events, cancelSub := svc.Events().Subscribe()
	j, err := svc.Submit(context.Background(), jobFor(t, 1), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for ev := range events {
		if ev.Status == EventRetrying {
			break
		}
	}
	cancelSub()
	svc.Close() // must not wait out the hour-long timer
	if _, err := j.Wait(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("close during backoff: got %v, want ErrClosed", err)
	}
}
