package campaign

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBroadcasterReplayAndLive(t *testing.T) {
	b := NewBroadcaster(16, 8)
	for i := 0; i < 3; i++ {
		b.Publish(JobEvent{Job: "j", Status: "queued"})
	}
	replay, ch, cancel := b.Subscribe()
	defer cancel()
	if len(replay) != 3 || replay[0].Seq != 1 || replay[2].Seq != 3 {
		t.Fatalf("replay %+v", replay)
	}
	b.Publish(JobEvent{Job: "j", Status: "running"})
	select {
	case ev := <-ch:
		if ev.Seq != 4 || ev.Status != "running" {
			t.Errorf("live event %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("live event never arrived")
	}
	cancel()
	cancel() // idempotent
	b.Publish(JobEvent{Job: "j", Status: "done"})
	if _, ok := <-ch; ok {
		t.Error("cancelled subscriber's channel should be closed")
	}
}

func TestBroadcasterRingEviction(t *testing.T) {
	b := NewBroadcaster(2, 1)
	for i := 0; i < 5; i++ {
		b.Publish(JobEvent{Status: "queued"})
	}
	replay, _, cancel := b.Subscribe()
	defer cancel()
	if len(replay) != 2 || replay[0].Seq != 4 || replay[1].Seq != 5 {
		t.Fatalf("replay after eviction %+v", replay)
	}
	if _, _, evicted := b.Stats(); evicted != 3 {
		t.Errorf("evicted = %d, want 3", evicted)
	}
}

func TestBroadcasterDropsStalledSubscriber(t *testing.T) {
	b := NewBroadcaster(0, 1)
	drops := 0
	b.OnDrop = func() { drops++ }
	_, stalled, cancel := b.Subscribe()
	defer cancel()

	// The subscriber never reads: its 1-slot buffer fills on the first
	// event and the second must drop it without blocking the publisher.
	done := make(chan struct{})
	go func() {
		b.Publish(JobEvent{Status: "queued"})
		b.Publish(JobEvent{Status: "running"})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Publish blocked on a stalled subscriber")
	}

	ev, ok := <-stalled
	if !ok || ev.Status != "queued" {
		t.Fatalf("buffered event %+v ok=%v", ev, ok)
	}
	if _, ok := <-stalled; ok {
		t.Error("stalled subscriber's channel should be closed after the drop")
	}
	if subs, dropped, _ := b.Stats(); subs != 0 || dropped != 1 {
		t.Errorf("stats subs=%d dropped=%d, want 0 and 1", subs, dropped)
	}
	if drops != 1 {
		t.Errorf("OnDrop fired %d times, want 1", drops)
	}
}

// collect drains the event channel until n terminal events arrived or the
// timeout hits.
func collect(t *testing.T, ch <-chan JobEvent, terminal int) []JobEvent {
	t.Helper()
	var evs []JobEvent
	seen := 0
	deadline := time.After(5 * time.Second)
	for seen < terminal {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("event channel closed after %d/%d terminal events", seen, terminal)
			}
			evs = append(evs, ev)
			if ev.Terminal() {
				seen++
			}
		case <-deadline:
			t.Fatalf("timed out with %d/%d terminal events: %+v", seen, terminal, evs)
		}
	}
	return evs
}

func TestServiceEventLifecycle(t *testing.T) {
	boom := errors.New("boom")
	svc, err := NewService(Config{
		Workers: 1,
		runFn: func(_ context.Context, spec JobSpec) (*Result, error) {
			if spec.Sim.Seed == 2 {
				return nil, boom
			}
			return Execute(spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	_, ch, cancel := svc.Events().Subscribe()
	defer cancel()

	ok1, err := svc.Submit(context.Background(), jobFor(t, 1), SubmitOptions{Campaign: "c-test"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ok1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	bad, err := svc.Submit(context.Background(), jobFor(t, 2), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("failing job returned %v", err)
	}
	// Resubmitting the finished spec is a cache hit: one "cached" event.
	hit, err := svc.Submit(context.Background(), jobFor(t, 1), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Fatal("resubmission missed the cache")
	}

	evs := collect(t, ch, 3)
	perJob := map[string][]string{}
	terminals := map[string]int{}
	for _, ev := range evs {
		perJob[ev.Job] = append(perJob[ev.Job], ev.Status)
		if ev.Terminal() {
			terminals[ev.Job]++
		}
	}
	for job, n := range terminals {
		if n != 1 {
			t.Errorf("job %s got %d terminal events: %v", job, n, perJob[job])
		}
	}
	assertLadder := func(job *Job, want ...string) {
		t.Helper()
		got := perJob[job.ID]
		if len(got) != len(want) {
			t.Errorf("job %s ladder %v, want %v", job.ID, got, want)
			return
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("job %s ladder %v, want %v", job.ID, got, want)
				return
			}
		}
	}
	assertLadder(ok1, "queued", "running", "done")
	assertLadder(bad, "queued", "running", "failed")
	assertLadder(hit, "cached")

	for _, ev := range evs {
		if ev.Job == ok1.ID {
			if ev.Campaign != "c-test" {
				t.Errorf("campaign tag %q on %+v", ev.Campaign, ev)
			}
			if ev.Status == "done" && (ev.Objective == 0 || ev.ExecSec <= 0) {
				t.Errorf("done event missing objective/latency: %+v", ev)
			}
		}
		if ev.Job == bad.ID && ev.Status == "failed" && ev.Error != "boom" {
			t.Errorf("failed event error %q", ev.Error)
		}
		if ev.Job == hit.ID && !ev.CacheHit {
			t.Errorf("cached event not marked CacheHit: %+v", ev)
		}
	}
}

func TestServiceEventCancelled(t *testing.T) {
	release := make(chan struct{})
	svc, err := NewService(Config{
		Workers: 1,
		runFn: func(_ context.Context, spec JobSpec) (*Result, error) {
			<-release
			return Execute(spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	_, ch, cancel := svc.Events().Subscribe()
	defer cancel()

	blocker, err := svc.Submit(context.Background(), jobFor(t, 1), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := svc.Submit(context.Background(), jobFor(t, 2), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	queued.Cancel()
	if _, err := queued.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}
	close(release)
	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	evs := collect(t, ch, 2)
	var cancelledEvents int
	for _, ev := range evs {
		if ev.Job == queued.ID && ev.Terminal() {
			cancelledEvents++
			if ev.Status != string(StatusCancelled) {
				t.Errorf("terminal status %q, want cancelled", ev.Status)
			}
		}
	}
	if cancelledEvents != 1 {
		t.Errorf("cancelled job emitted %d terminal events, want 1", cancelledEvents)
	}
}
