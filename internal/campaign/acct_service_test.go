package campaign

import (
	"context"
	"encoding/json"
	"testing"

	"ensemblekit/internal/campaign/accounting"
	"ensemblekit/internal/placement"
)

// runTaggedCampaign runs the two-member Table 2 sweep on a fresh service
// under the given config and returns the campaign's accounting snapshot.
func runTaggedCampaign(t *testing.T, cfg Config) accounting.Snapshot {
	t.Helper()
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := RunCampaign(context.Background(), svc, Sweep{
		Name:       "acct",
		Placements: placement.ConfigsTable2TwoMember(),
		Steps:      4,
		Campaign:   "acct",
	}); err != nil {
		t.Fatal(err)
	}
	snap, ok := svc.CampaignAccounting("acct")
	if !ok {
		t.Fatal("campaign ledger missing after the run")
	}
	return snap
}

// TestCampaignLedgerByteIdentical runs the same campaign on two fresh
// services — different worker interleavings, same submissions — and
// requires byte-identical simulated sections. Wall-clock seconds are
// measured, not simulated, so they are excluded from the identity.
func TestCampaignLedgerByteIdentical(t *testing.T) {
	a := runTaggedCampaign(t, Config{Workers: 4})
	b := runTaggedCampaign(t, Config{Workers: 2})

	aj, err := json.Marshal(a.Simulated)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b.Simulated)
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("simulated ledgers differ across runs:\n%s\n%s", aj, bj)
	}
	if a.Jobs != b.Jobs || a.Executed != b.Executed {
		t.Fatalf("counts differ: %d/%d vs %d/%d", a.Jobs, a.Executed, b.Jobs, b.Executed)
	}
	if a.Simulated.SpentTotal <= 0 {
		t.Fatal("campaign spent nothing; the ledger recorded no executions")
	}
}

// TestFastPathLedgerParity pins the accounting contract of the steady-
// state fast path: it changes what the campaign *paid*, never what the
// ledger *says the jobs cost*. Spent is bit-identical with the fast
// path on or off; the avoided DES runs surface as fastpath-tier credit
// on the enabled service only.
func TestFastPathLedgerParity(t *testing.T) {
	off := runTaggedCampaign(t, Config{Workers: 2})
	on := runTaggedCampaign(t, Config{Workers: 2, FastPath: true})

	if on.Simulated.SpentTotal != off.Simulated.SpentTotal {
		t.Fatalf("SpentTotal with fast path %v != without %v",
			on.Simulated.SpentTotal, off.Simulated.SpentTotal)
	}
	if on.Simulated.Spent != off.Simulated.Spent {
		t.Fatalf("spent ledger differs: %+v vs %+v", on.Simulated.Spent, off.Simulated.Spent)
	}
	if off.Simulated.Saved.FastPath != 0 {
		t.Fatalf("fast-path credit without the fast path: %v", off.Simulated.Saved.FastPath)
	}
	if on.Simulated.Saved.FastPath <= 0 {
		t.Fatal("fast path served no job; parity test exercised nothing")
	}
	// Overlapping credit: fastpath does not count as cache-served.
	if on.Simulated.SavedCacheTotal != off.Simulated.SavedCacheTotal {
		t.Fatalf("cache-saved changed with the fast path: %v vs %v",
			on.Simulated.SavedCacheTotal, off.Simulated.SavedCacheTotal)
	}
}

// TestCacheHitCreditsSavedTier submits the same spec twice: the second
// submission is a memory-tier hit whose avoided cost must equal the
// first execution's spent cost exactly.
func TestCacheHitCreditsSavedTier(t *testing.T) {
	svc, err := NewService(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	spec := jobFor(t, 1)
	for i := 0; i < 2; i++ {
		j, err := svc.SubmitWait(context.Background(), spec, SubmitOptions{Campaign: "c"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	snap, ok := svc.CampaignAccounting("c")
	if !ok {
		t.Fatal("campaign ledger missing")
	}
	if snap.Jobs != 1 || snap.Executed != 1 || snap.CacheServed != 1 {
		t.Fatalf("counts = %d jobs / %d executed / %d served, want 1/1/1",
			snap.Jobs, snap.Executed, snap.CacheServed)
	}
	if snap.Simulated.Saved.Memory != snap.Simulated.SpentTotal {
		t.Fatalf("memory-tier credit %v != spent %v",
			snap.Simulated.Saved.Memory, snap.Simulated.SpentTotal)
	}
	if snap.Simulated.SpentTotal <= 0 {
		t.Fatal("nothing spent; cache test exercised nothing")
	}
}

// TestStatsJSONShape pins the exact wire shape of GET /v1/stats — field
// order and names — including the per-tier cache hit split
// (cacheHits/diskHits/fleetHits). A marshal-layout change is an API
// break and must show up here.
func TestStatsJSONShape(t *testing.T) {
	b, err := json.Marshal(statsResponse{})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"submitted":0,"completed":0,"failed":0,"cancelled":0,` +
		`"cacheHits":0,"diskHits":0,"fleetHits":0,"cacheMisses":0,` +
		`"dedups":0,"rejected":0,"retries":0,"quarantined":0,` +
		`"workerPanics":0,"cacheCorrupt":0,"journalReplayed":0,` +
		`"fastPathHits":0,"fastPathVerified":0,` +
		`"queueDepth":0,"queueCapacity":0,"running":0,"workers":0,` +
		`"cacheEntries":0,"cacheBytes":0,"hitRate":0}`
	if string(b) != want {
		t.Fatalf("stats wire shape changed:\n got %s\nwant %s", b, want)
	}
}

// TestCampaignAccountingJSONShape pins the wire shape of
// GET /v1/campaigns/{id}/accounting at the top and simulated levels.
func TestCampaignAccountingJSONShape(t *testing.T) {
	b, err := json.Marshal(campaignAccounting{Campaign: "c"})
	if err != nil {
		t.Fatal(err)
	}
	zeroSplit := `{"busy":0,"idle":0}`
	zeroLedger := `{"simulation":` + zeroSplit + `,"analysis":` + zeroSplit +
		`,"staging":` + zeroSplit + `,"network":` + zeroSplit + `}`
	want := `{"campaign":"c","jobs":0,"executed":0,"cacheServed":0,` +
		`"simulated":{"spent":` + zeroLedger + `,"spentTotal":0,` +
		`"saved":{"memory":0,"disk":0,"fleet":0,"plancache":0,"fastpath":0},` +
		`"savedCacheTotal":0},` +
		`"wallClock":{"workerSeconds":0,"queueWaitSeconds":0,"retryWastedSeconds":0}}`
	if string(b) != want {
		t.Fatalf("accounting wire shape changed:\n got %s\nwant %s", b, want)
	}
}
