package pool

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"ensemblekit/internal/campaign/accounting"
)

// Federation: the pool-wide observability rollup. Every node serves its
// own registry and resource ledger on node-local routes
// (/v1/pool/metrics/node, /v1/pool/accounting/node); any node answers
// the fleet views (/v1/pool/metrics, /v1/pool/accounting) by scraping
// every known peer over those routes and merging.
//
// The merged exposition is byte-stable: families in name order, nodes
// in ID order within a family, each sample line stamped with a leading
// node="<id>" label. Peers that fail to answer are skipped and counted
// on pool_federation_errors_total — a dead peer shows up as a counter
// increment, never as a partial parse.

// scrapedFamily is one metric family lifted out of a peer's exposition
// text: the headers plus its raw sample lines, untouched.
type scrapedFamily struct {
	name    string
	help    string // raw "# HELP <name> <text>" line, "" when absent
	typ     string // raw "# TYPE <name> <type>" line
	samples []string
}

// parseExposition splits Prometheus text format (version 0.0.4) into
// family blocks. The format our registry emits — and the only one peers
// send — always announces a family with `# TYPE` before its samples, so
// a block parse is sufficient; unattributed lines are dropped.
func parseExposition(text string) []scrapedFamily {
	var fams []scrapedFamily
	help := map[string]string{}
	var cur *scrapedFamily
	for _, line := range strings.Split(text, "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			rest := line[len("# HELP "):]
			if i := strings.IndexByte(rest, ' '); i > 0 {
				help[rest[:i]] = line
			}
		case strings.HasPrefix(line, "# TYPE "):
			rest := line[len("# TYPE "):]
			name := rest
			if i := strings.IndexByte(rest, ' '); i > 0 {
				name = rest[:i]
			}
			fams = append(fams, scrapedFamily{name: name, help: help[name], typ: line})
			cur = &fams[len(fams)-1]
		case strings.HasPrefix(line, "#"):
		case cur != nil:
			cur.samples = append(cur.samples, line)
		}
	}
	return fams
}

// injectNodeLabel stamps node="<id>" as the first label of one sample
// line, preserving any labels already present.
func injectNodeLabel(line, node string) string {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return line
	}
	if line[i] == '{' {
		return line[:i] + `{node="` + node + `",` + line[i+1:]
	}
	return line[:i] + `{node="` + node + `"}` + line[i:]
}

// fedSource is one node's contribution to a federated view.
type fedSource struct {
	node string
	body []byte
	err  error
}

// gatherPeers fetches path from every known peer concurrently (dead
// ones included — their failure is the signal), plus a slot for self
// filled by localFn. Sources come back sorted by node ID; failures keep
// their err and increment pool_federation_errors_total.
func (p *Pool) gatherPeers(ctx context.Context, path string, localFn func() []byte) []fedSource {
	peers := p.mem.beatTargets()
	out := make([]fedSource, 0, len(peers)+1)
	out = append(out, fedSource{node: p.cfg.SelfID})
	for _, pi := range peers {
		out = append(out, fedSource{node: pi.ID, err: fmt.Errorf("pool: peer %s has no address", pi.ID)})
	}
	var wg sync.WaitGroup
	for i := range out {
		if out[i].node == p.cfg.SelfID {
			continue
		}
		addr := p.mem.Addr(out[i].node)
		if addr == "" {
			continue
		}
		wg.Add(1)
		go func(src *fedSource) {
			defer wg.Done()
			src.body, src.err = p.scrapePeer(ctx, addr, path)
		}(&out[i])
	}
	wg.Wait()
	// Self renders locally, after the peer round-trips, so failures
	// counted this pass are already visible in the self slice.
	for i := range out {
		if out[i].err != nil {
			p.m.federationErrs.Inc()
			p.log.Warn("pool: federation fetch failed",
				"peer", out[i].node, "path", path, "err", out[i].err.Error())
		}
	}
	for i := range out {
		if out[i].node == p.cfg.SelfID {
			out[i].body = localFn()
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].node < out[k].node })
	return out
}

// scrapePeer GETs addr+path within the control-plane timeout.
func (p *Pool) scrapePeer(ctx context.Context, addr, path string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, p.controlTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("pool: %s%s: status %d", addr, path, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// renderSelfMetrics is the node-local registry render.
func (p *Pool) renderSelfMetrics() []byte {
	var buf bytes.Buffer
	_ = p.cfg.Metrics.WritePrometheus(&buf)
	return buf.Bytes()
}

// handleMetricsNode serves this node's own registry — the scrape target
// federation reads, mounted on the pool mux so it is reachable wherever
// the peer protocol is.
func (p *Pool) handleMetricsNode(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(p.renderSelfMetrics())
}

// handleMetricsFleet serves the federated exposition: every reachable
// node's families merged by name, each sample carrying a node label.
func (p *Pool) handleMetricsFleet(w http.ResponseWriter, r *http.Request) {
	sources := p.gatherPeers(r.Context(), "/v1/pool/metrics/node", p.renderSelfMetrics)

	type mergedFamily struct {
		help, typ string
		nodes     []string // node IDs holding the family, in merge order
		byNode    map[string][]string
	}
	merged := map[string]*mergedFamily{}
	for _, src := range sources {
		if src.err != nil {
			continue
		}
		for _, f := range parseExposition(string(src.body)) {
			m, ok := merged[f.name]
			if !ok {
				m = &mergedFamily{help: f.help, typ: f.typ, byNode: map[string][]string{}}
				merged[f.name] = m
			}
			if m.help == "" {
				m.help = f.help
			}
			if _, seen := m.byNode[src.node]; !seen {
				m.nodes = append(m.nodes, src.node)
			}
			m.byNode[src.node] = append(m.byNode[src.node], f.samples...)
		}
	}

	names := make([]string, 0, len(merged))
	for name := range merged {
		names = append(names, name)
	}
	sort.Strings(names)

	var buf bytes.Buffer
	for _, name := range names {
		m := merged[name]
		if m.help != "" {
			buf.WriteString(m.help)
			buf.WriteByte('\n')
		}
		buf.WriteString(m.typ)
		buf.WriteByte('\n')
		// Sources arrive node-sorted, so m.nodes is already ordered.
		for _, node := range m.nodes {
			for _, line := range m.byNode[node] {
				buf.WriteString(injectNodeLabel(line, node))
				buf.WriteByte('\n')
			}
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = buf.WriteTo(w)
}

// handleAccountingNode serves this node's resource-ledger snapshot.
func (p *Pool) handleAccountingNode(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(p.cfg.Local.NodeAccountingJSON())
}

// poolAccountingResponse is the fleet rollup: every reachable node's
// snapshot keyed by ID, plus their sum. encoding/json emits map keys
// sorted, and Merge runs in sorted node order, so the body is
// byte-stable for a fixed fleet state.
type poolAccountingResponse struct {
	Nodes map[string]accounting.Snapshot `json:"nodes"`
	Fleet accounting.Snapshot            `json:"fleet"`
}

// handleAccountingFleet sums the per-node ledgers into the fleet view.
func (p *Pool) handleAccountingFleet(w http.ResponseWriter, r *http.Request) {
	sources := p.gatherPeers(r.Context(), "/v1/pool/accounting/node",
		func() []byte { return p.cfg.Local.NodeAccountingJSON() })
	resp := poolAccountingResponse{Nodes: map[string]accounting.Snapshot{}}
	snaps := make([]accounting.Snapshot, 0, len(sources))
	for _, src := range sources {
		if src.err != nil {
			continue
		}
		var s accounting.Snapshot
		if err := json.Unmarshal(src.body, &s); err != nil {
			p.m.federationErrs.Inc()
			p.log.Warn("pool: federation accounting decode failed",
				"peer", src.node, "err", err.Error())
			continue
		}
		resp.Nodes[src.node] = s
		snaps = append(snaps, s)
	}
	resp.Fleet = accounting.Merge(snaps)
	p.writeJSON(w, http.StatusOK, resp)
}
