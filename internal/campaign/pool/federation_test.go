package pool

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ensemblekit/internal/campaign/accounting"
	"ensemblekit/internal/telemetry"
)

// quietNode builds a pool node that never heartbeats (Start is not
// called): membership is driven by hand, so federated responses are
// byte-stable between calls.
type quietNode struct {
	id    string
	pool  *Pool
	local *testLocal
	reg   *telemetry.Registry
	ts    *httptest.Server
}

func startQuietNode(t *testing.T, id string) *quietNode {
	t.Helper()
	var h atomic.Pointer[http.Handler]
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hp := h.Load(); hp != nil {
			(*hp).ServeHTTP(w, r)
			return
		}
		http.NotFound(w, r)
	}))
	local := newTestLocal()
	reg := telemetry.NewRegistry()
	p, err := New(Config{
		SelfID: id, Advertise: ts.URL, Local: local, Metrics: reg,
		Heartbeat: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	handler := p.Handler()
	h.Store(&handler)
	t.Cleanup(func() { p.Close(); ts.Close() })
	return &quietNode{id: id, pool: p, local: local, reg: reg, ts: ts}
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestFederatedMetricsMergeAndStability(t *testing.T) {
	n1 := startQuietNode(t, "n1")
	n2 := startQuietNode(t, "n2")
	n1.pool.Membership().Upsert("n2", n2.ts.URL)
	n1.reg.Counter("demo_shared_total", "Shared family.").Add(1)
	n2.reg.Counter("demo_shared_total", "Shared family.").Add(2)
	n2.reg.GaugeVec("demo_only_n2", "Only on n2.", "kind").With("x").Set(7)

	code, body := httpGet(t, n1.ts.URL+"/v1/pool/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	text := string(body)
	for _, want := range []string{
		`demo_shared_total{node="n1"} 1`,
		`demo_shared_total{node="n2"} 2`,
		`demo_only_n2{node="n2",kind="x"} 7`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("federated exposition missing %q:\n%s", want, text)
		}
	}
	// Shared family: one header block, n1's line before n2's.
	if strings.Count(text, "# TYPE demo_shared_total") != 1 {
		t.Fatalf("duplicate family header:\n%s", text)
	}
	if strings.Index(text, `node="n1"} 1`) > strings.Index(text, `node="n2"} 2`) {
		t.Fatalf("node order not stable:\n%s", text)
	}
	// Byte-stable across scrapes of a quiet fleet.
	_, body2 := httpGet(t, n1.ts.URL+"/v1/pool/metrics")
	if string(body) != string(body2) {
		t.Fatalf("federated exposition not byte-stable:\n--- first\n%s\n--- second\n%s", body, body2)
	}
}

func TestFederatedMetricsDeadPeerCountsErrors(t *testing.T) {
	n1 := startQuietNode(t, "n1")
	// A peer that is registered but unreachable: its server is closed.
	dead := httptest.NewServer(http.NotFoundHandler())
	addr := dead.URL
	dead.Close()
	n1.pool.Membership().Upsert("n9", addr)

	code, body := httpGet(t, n1.ts.URL+"/v1/pool/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if got := n1.pool.m.federationErrs.Value(); got != 1 {
		t.Fatalf("pool_federation_errors_total = %v, want 1", got)
	}
	// The failure is already visible in the same response's self slice.
	if !strings.Contains(string(body), `pool_federation_errors_total{node="n1"} 1`) {
		t.Fatalf("merged exposition does not carry the error counter:\n%s", body)
	}
	if strings.Contains(string(body), `node="n9"`) {
		t.Fatalf("dead peer leaked samples into the merge:\n%s", body)
	}
}

func TestFederatedAccountingRollup(t *testing.T) {
	mkSnap := func(spent float64, jobs int) []byte {
		var s accounting.Snapshot
		s.Jobs = jobs
		s.Executed = int64(jobs)
		s.Simulated.Spent.Simulation.Busy = spent
		s.Simulated.SpentTotal = spent
		b, err := json.Marshal(s)
		if err != nil {
			panic(err)
		}
		return b
	}
	n1 := startQuietNode(t, "n1")
	n2 := startQuietNode(t, "n2")
	n1.local.acctJSON = mkSnap(10, 2)
	n2.local.acctJSON = mkSnap(5, 1)
	n1.pool.Membership().Upsert("n2", n2.ts.URL)

	code, body := httpGet(t, n1.ts.URL+"/v1/pool/accounting")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var resp poolAccountingResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if len(resp.Nodes) != 2 {
		t.Fatalf("nodes = %v", resp.Nodes)
	}
	if resp.Nodes["n1"].Simulated.SpentTotal != 10 || resp.Nodes["n2"].Simulated.SpentTotal != 5 {
		t.Fatalf("per-node totals wrong: %+v", resp.Nodes)
	}
	if resp.Fleet.Simulated.SpentTotal != 15 || resp.Fleet.Jobs != 3 || resp.Fleet.Executed != 3 {
		t.Fatalf("fleet rollup wrong: %+v", resp.Fleet)
	}
	// The node-local route serves the raw ledger unchanged.
	code, nb := httpGet(t, n2.ts.URL+"/v1/pool/accounting/node")
	if code != http.StatusOK || string(nb) != string(n2.local.acctJSON) {
		t.Fatalf("node accounting = %d %s", code, nb)
	}
}

func TestInjectNodeLabel(t *testing.T) {
	cases := [][3]string{
		{`up 1`, "n1", `up{node="n1"} 1`},
		{`jobs{state="busy"} 2.5`, "n2", `jobs{node="n2",state="busy"} 2.5`},
		{`lat_bucket{le="+Inf"} 4`, "n1", `lat_bucket{node="n1",le="+Inf"} 4`},
	}
	for _, c := range cases {
		if got := injectNodeLabel(c[0], c[1]); got != c[2] {
			t.Fatalf("injectNodeLabel(%q) = %q, want %q", c[0], got, c[2])
		}
	}
}
