package pool

import (
	"sort"
	"sync"
	"time"
)

// PeerState is a peer's liveness as observed locally. Every node keeps
// its own view; views converge through heartbeat gossip rather than
// consensus — routing only needs agreement in the steady state, and the
// retry policy absorbs the routing misses during churn.
type PeerState string

const (
	// StateAlive marks a peer whose beats arrive on schedule.
	StateAlive PeerState = "alive"
	// StateSuspect marks a peer that missed beats but is still routable:
	// it stays in the ring so a transient stall does not reshuffle jobs.
	StateSuspect PeerState = "suspect"
	// StateDead marks a peer removed from the ring; its hash range is
	// rebalanced onto the survivors. A dead peer that beats again is
	// resurrected.
	StateDead PeerState = "dead"
)

// PeerInfo is one peer as reported by /v1/pool/peers and gossiped in
// heartbeats.
type PeerInfo struct {
	// ID is the peer's advertised identity ("n1").
	ID string `json:"id"`
	// Addr is the base URL peers use to reach it ("http://10.0.0.7:8080").
	Addr string `json:"addr"`
	// State is the local view of the peer's liveness.
	State PeerState `json:"state"`
	// Self marks the reporting node's own entry.
	Self bool `json:"self,omitempty"`
	// SinceBeatSec is the age of the last beat observed from the peer.
	SinceBeatSec float64 `json:"sinceBeatSec"`
}

type peerEntry struct {
	id       string
	addr     string
	state    PeerState
	lastBeat time.Time
}

// Membership is one node's view of the pool: itself plus every peer it
// has heard of, each with a liveness state driven by beat timestamps.
// It is the bookkeeping half of the fabric — transport lives in Pool.
// All methods are safe for concurrent use.
type Membership struct {
	selfID   string
	selfAddr string

	// now is the clock; tests inject a fake one to step peers through
	// suspect and dead deterministically.
	now func() time.Time

	// suspectAfter and deadAfter are the silence thresholds.
	suspectAfter time.Duration
	deadAfter    time.Duration

	// onChange, if set, observes every routable-set change (peer added,
	// died, or resurrected) — the pool rebuilds its ring there. Called
	// without the membership lock held.
	onChange func()

	mu    sync.Mutex
	peers map[string]*peerEntry // excludes self
}

// NewMembership builds the view for a node identifying as (id, addr).
// suspectAfter/deadAfter bound how long a silent peer stays routable;
// now is the clock (nil = time.Now).
func NewMembership(id, addr string, suspectAfter, deadAfter time.Duration, now func() time.Time) *Membership {
	if now == nil {
		now = time.Now
	}
	if suspectAfter <= 0 {
		suspectAfter = 2 * time.Second
	}
	if deadAfter <= suspectAfter {
		deadAfter = 2 * suspectAfter
	}
	return &Membership{
		selfID:       id,
		selfAddr:     addr,
		now:          now,
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
		peers:        make(map[string]*peerEntry),
	}
}

// SelfID returns the node's own advertised ID.
func (m *Membership) SelfID() string { return m.selfID }

// SelfAddr returns the node's own advertised base URL.
func (m *Membership) SelfAddr() string { return m.selfAddr }

// SetOnChange registers the routable-set observer (the ring rebuild).
func (m *Membership) SetOnChange(fn func()) { m.onChange = fn }

// Upsert records a peer (id, addr) as alive with a fresh beat. It is
// called for join requests, gossiped member lists, and received beats.
// Self-references are ignored. Returns true when the routable set
// changed (new peer, resurrected peer, or address change).
func (m *Membership) Upsert(id, addr string) bool {
	if id == "" || id == m.selfID {
		return false
	}
	m.mu.Lock()
	e, ok := m.peers[id]
	changed := false
	if !ok {
		m.peers[id] = &peerEntry{id: id, addr: addr, state: StateAlive, lastBeat: m.now()}
		changed = true
	} else {
		if e.state == StateDead {
			changed = true // resurrection re-enters the ring
		}
		if addr != "" && addr != e.addr {
			e.addr = addr
			changed = true
		}
		e.state = StateAlive
		e.lastBeat = m.now()
	}
	m.mu.Unlock()
	if changed {
		m.fireChange()
	}
	return changed
}

// UpsertIfUnknown records a peer only when it has never been seen — the
// gossip merge path. Gossiped entries are second-hand: they may discover
// new peers, but must never refresh the beat of a known one (that would
// let two nodes keep a dead peer alive by gossiping their stale views at
// each other; beats only count from direct contact). Returns true when
// the peer was added.
func (m *Membership) UpsertIfUnknown(id, addr string) bool {
	if id == "" || id == m.selfID {
		return false
	}
	m.mu.Lock()
	if _, ok := m.peers[id]; ok {
		m.mu.Unlock()
		return false
	}
	m.peers[id] = &peerEntry{id: id, addr: addr, state: StateAlive, lastBeat: m.now()}
	m.mu.Unlock()
	m.fireChange()
	return true
}

// MarkDead forces a peer dead immediately — the fail-fast path when a
// forward or beat hits a hard transport error (connection refused means
// the process is gone; waiting out deadAfter would stall every retry).
// A later beat from the peer resurrects it. Returns true if the peer
// was routable before.
func (m *Membership) MarkDead(id string) bool {
	m.mu.Lock()
	e, ok := m.peers[id]
	changed := ok && e.state != StateDead
	if ok {
		e.state = StateDead
	}
	m.mu.Unlock()
	if changed {
		m.fireChange()
	}
	return changed
}

// Sweep re-derives every peer's state from its beat age: silent past
// suspectAfter → suspect, past deadAfter → dead. The heartbeat loop
// calls it once per interval. Returns true when the routable set
// changed (some peer crossed into or out of dead).
//
// Dead is sticky: a peer already dead (by threshold or by MarkDead's
// fail-fast) is skipped, never resurrected from beat age — otherwise a
// peer MarkDead'd on a hard transport error would flap back alive on
// every sweep until its last beat aged past deadAfter, re-routing
// retries at a corpse. Only direct contact (Upsert) resurrects.
func (m *Membership) Sweep() bool {
	now := m.now()
	m.mu.Lock()
	changed := false
	for _, e := range m.peers {
		if e.state == StateDead {
			continue
		}
		silent := now.Sub(e.lastBeat)
		var next PeerState
		switch {
		case silent >= m.deadAfter:
			next = StateDead
		case silent >= m.suspectAfter:
			next = StateSuspect
		default:
			next = StateAlive
		}
		if next != e.state {
			if next == StateDead || e.state == StateDead {
				changed = true
			}
			e.state = next
		}
	}
	m.mu.Unlock()
	if changed {
		m.fireChange()
	}
	return changed
}

// Routable returns the IDs the ring is built over: self plus every peer
// not currently dead (suspects stay routable so a transient stall does
// not reshuffle the whole key space).
func (m *Membership) Routable() []string {
	m.mu.Lock()
	ids := make([]string, 0, len(m.peers)+1)
	ids = append(ids, m.selfID)
	for id, e := range m.peers {
		if e.state != StateDead {
			ids = append(ids, id)
		}
	}
	m.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// Addr returns a peer's base URL ("" when unknown).
func (m *Membership) Addr(id string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id == m.selfID {
		return m.selfAddr
	}
	if e, ok := m.peers[id]; ok {
		return e.addr
	}
	return ""
}

// State returns the local view of a peer's liveness (self is always
// alive; unknown peers are dead).
func (m *Membership) State(id string) PeerState {
	if id == m.selfID {
		return StateAlive
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.peers[id]; ok {
		return e.state
	}
	return StateDead
}

// Peers snapshots the full view, self first then peers sorted by ID.
func (m *Membership) Peers() []PeerInfo {
	now := m.now()
	m.mu.Lock()
	out := make([]PeerInfo, 0, len(m.peers)+1)
	out = append(out, PeerInfo{ID: m.selfID, Addr: m.selfAddr, State: StateAlive, Self: true})
	for _, e := range m.peers {
		out = append(out, PeerInfo{
			ID: e.id, Addr: e.addr, State: e.state,
			SinceBeatSec: now.Sub(e.lastBeat).Seconds(),
		})
	}
	m.mu.Unlock()
	sort.Slice(out[1:], func(i, k int) bool { return out[i+1].ID < out[k+1].ID })
	return out
}

// beatTargets snapshots the (id, addr) pairs the heartbeat loop should
// beat: every known peer, including dead ones — beating a dead peer is
// how resurrection is discovered.
func (m *Membership) beatTargets() []PeerInfo {
	m.mu.Lock()
	out := make([]PeerInfo, 0, len(m.peers))
	for _, e := range m.peers {
		out = append(out, PeerInfo{ID: e.id, Addr: e.addr, State: e.state})
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

func (m *Membership) fireChange() {
	if m.onChange != nil {
		m.onChange()
	}
}
