package pool

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testLocal is a map-backed Local for exercising the wire protocol
// without a campaign service behind it.
type testLocal struct {
	mu       sync.Mutex
	cache    map[string][]byte
	execFn   func(ctx context.Context, specJSON []byte, label string) ([]byte, error)
	submits  int
	submitOK bool
	acctJSON []byte
}

func newTestLocal() *testLocal {
	return &testLocal{cache: map[string][]byte{}, submitOK: true}
}

func (l *testLocal) put(hash string, res []byte) {
	l.mu.Lock()
	l.cache[hash] = res
	l.mu.Unlock()
}

func (l *testLocal) CachedResultJSON(hash string) ([]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	res, ok := l.cache[hash]
	return res, ok
}

func (l *testLocal) ExecuteForwardedJSON(ctx context.Context, specJSON []byte, label string) ([]byte, error) {
	l.mu.Lock()
	fn := l.execFn
	l.mu.Unlock()
	if fn != nil {
		return fn(ctx, specJSON, label)
	}
	return []byte(`{"echo":` + string(specJSON) + `}`), nil
}

func (l *testLocal) SubmitJSON(specJSON []byte, label string, priority int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.submitOK {
		return errors.New("queue full")
	}
	l.submits++
	return nil
}

func (l *testLocal) NodeAccountingJSON() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.acctJSON != nil {
		return l.acctJSON
	}
	return []byte(`{}`)
}

// testNode is one in-process pool node: a Pool mounted on an httptest
// server whose URL is its advertised address.
type testNode struct {
	id    string
	pool  *Pool
	local *testLocal
	ts    *httptest.Server
}

// startNodes brings up n nodes; nodes after the first join the first.
// The handler indirection lets the server URL exist before the pool
// that advertises it.
func startNodes(t *testing.T, n int, heartbeat time.Duration) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	for i := 0; i < n; i++ {
		var h atomic.Pointer[http.Handler]
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if hp := h.Load(); hp != nil {
				(*hp).ServeHTTP(w, r)
				return
			}
			http.NotFound(w, r)
		}))
		local := newTestLocal()
		cfg := Config{
			SelfID:    fmt.Sprintf("n%d", i+1),
			Advertise: ts.URL,
			Heartbeat: heartbeat,
			Local:     local,
		}
		if i > 0 {
			cfg.Join = []string{nodes[0].ts.URL}
		}
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		handler := p.Handler()
		h.Store(&handler)
		p.Start()
		nodes[i] = &testNode{id: cfg.SelfID, pool: p, local: local, ts: ts}
		t.Cleanup(func() { p.Close(); ts.Close() })
	}
	return nodes
}

// waitConverged blocks until every node's ring spans want members.
func waitConverged(t *testing.T, nodes []*testNode, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok := true
		for _, n := range nodes {
			if n.pool.ringSnapshot().Len() != want {
				ok = false
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			for _, n := range nodes {
				t.Logf("%s ring: %v", n.id, n.pool.ringSnapshot().Members())
			}
			t.Fatal("pool never converged")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Three nodes joining through one seed must converge on the same ring
// and route every hash to the same owner.
func TestPoolConvergesAndRoutesConsistently(t *testing.T) {
	nodes := startNodes(t, 3, 10*time.Millisecond)
	waitConverged(t, nodes, 3)
	for i := 0; i < 100; i++ {
		hash := fmt.Sprintf("%064x", i)
		owner, _ := nodes[0].pool.Owner(hash)
		for _, n := range nodes[1:] {
			got, _ := n.pool.Owner(hash)
			if got != owner {
				t.Fatalf("hash %s: %s says %s, %s says %s",
					hash, nodes[0].id, owner, n.id, got)
			}
		}
	}
	// Owner's self bit agrees with the ID.
	hash := fmt.Sprintf("%064x", 7)
	owner, _ := nodes[0].pool.Owner(hash)
	for _, n := range nodes {
		_, self := n.pool.Owner(hash)
		if self != (n.id == owner) {
			t.Fatalf("node %s self=%v for owner %s", n.id, self, owner)
		}
	}
}

// Lookup serves the fleet cache tier: hits return the peer's bytes,
// misses are clean (no error).
func TestPoolCacheLookup(t *testing.T) {
	nodes := startNodes(t, 2, 10*time.Millisecond)
	waitConverged(t, nodes, 2)
	nodes[1].local.put("abc", []byte(`{"objective":1.5}`))

	res, found, err := nodes[0].pool.Lookup(context.Background(), "n2", "abc")
	if err != nil || !found {
		t.Fatalf("lookup: found=%v err=%v", found, err)
	}
	if string(res) != `{"objective":1.5}` {
		t.Fatalf("lookup body %s", res)
	}
	_, found, err = nodes[0].pool.Lookup(context.Background(), "n2", "missing")
	if err != nil || found {
		t.Fatalf("miss: found=%v err=%v", found, err)
	}
}

// Execute round-trips spec JSON to the peer's Local and returns its
// result; peer-side failures come back as RemoteError with the
// permanence bit carried over the wire.
func TestPoolExecuteForwardAndRemoteError(t *testing.T) {
	nodes := startNodes(t, 2, 10*time.Millisecond)
	waitConverged(t, nodes, 2)

	res, err := nodes[0].pool.Execute(context.Background(), "n2", "h1", []byte(`{"a":1}`), "job")
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != `{"echo":{"a":1}}` {
		t.Fatalf("forwarded result %s", res)
	}

	nodes[1].local.execFn = func(context.Context, []byte, string) ([]byte, error) {
		return nil, errors.New("boom")
	}
	// Without a Permanent classifier the failure is transient.
	_, err = nodes[0].pool.Execute(context.Background(), "n2", "h1", []byte(`{}`), "")
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("error %v, want RemoteError", err)
	}
	if re.Permanent || !strings.Contains(re.Msg, "boom") {
		t.Fatalf("remote error %+v", re)
	}
}

// A Permanent classifier on the serving node must surface as
// RemoteError.Permanent on the requesting node.
func TestPoolExecuteCarriesPermanenceBit(t *testing.T) {
	nodes := startNodes(t, 2, 10*time.Millisecond)
	waitConverged(t, nodes, 2)
	nodes[1].pool.cfg.Permanent = func(error) bool { return true }
	nodes[1].local.execFn = func(context.Context, []byte, string) ([]byte, error) {
		return nil, errors.New("bad spec")
	}
	_, err := nodes[0].pool.Execute(context.Background(), "n2", "h", []byte(`{}`), "")
	var re *RemoteError
	if !errors.As(err, &re) || !re.Permanent || !re.IsPermanentRemote() {
		t.Fatalf("error %v, want permanent RemoteError", err)
	}
	if re.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", re.StatusCode)
	}
}

// A hard transport failure must declare the peer dead immediately and
// rebalance the ring, so retries route elsewhere.
func TestPoolExecuteTransportFailureKillsPeer(t *testing.T) {
	nodes := startNodes(t, 3, time.Hour) // no beats: the data plane detects
	// Without heartbeats, gossip never reaches n2; only n1 (the seed) and
	// n3 (which merged the seed's view) see all three members — and only
	// n1 acts in this test.
	waitConverged(t, nodes[:1], 3)
	nodes[2].ts.Close()

	_, err := nodes[0].pool.Execute(context.Background(), "n3", "h", []byte(`{}`), "")
	if err == nil {
		t.Fatal("execute against a closed peer succeeded")
	}
	var re *RemoteError
	if errors.As(err, &re) {
		t.Fatalf("transport failure classified as RemoteError: %v", err)
	}
	if got := nodes[0].pool.Membership().State("n3"); got != StateDead {
		t.Fatalf("peer state %s after transport failure, want dead", got)
	}
	if nodes[0].pool.ringSnapshot().Len() != 2 {
		t.Fatalf("ring still spans %v", nodes[0].pool.ringSnapshot().Members())
	}
	// The hash now routes to a survivor.
	owner, _ := nodes[0].pool.Owner("h")
	if owner == "n3" {
		t.Fatal("hash still routed to the dead peer")
	}
}

// Handoff walks the ring successors, skipping refusals, and reports
// the accepting peer.
func TestPoolHandoffSkipsRefusals(t *testing.T) {
	nodes := startNodes(t, 3, 10*time.Millisecond)
	waitConverged(t, nodes, 3)

	// Find a hash owned by a non-self peer, then make that peer refuse.
	var hash, owner string
	for i := 0; ; i++ {
		hash = fmt.Sprintf("%064x", i)
		owner, _ = nodes[0].pool.Owner(hash)
		if owner != "n1" {
			break
		}
	}
	ownerNode := nodes[int(owner[1]-'1')]
	ownerNode.local.submitOK = false

	peer, err := nodes[0].pool.Handoff(context.Background(), hash, []byte(`{}`), "drained", 0)
	if err != nil {
		t.Fatal(err)
	}
	if peer == owner || peer == "n1" {
		t.Fatalf("handoff accepted by %s (owner %s refused, self excluded)", peer, owner)
	}

	// With every peer refusing, the handoff must fail.
	for _, n := range nodes {
		n.local.submitOK = false
	}
	if _, err := nodes[0].pool.Handoff(context.Background(), hash, []byte(`{}`), "", 0); err == nil {
		t.Fatal("handoff succeeded with every peer refusing")
	}
}

// Ready gates on first seed contact: a joining node is unready until it
// reaches a seed.
func TestPoolReadyGatesOnJoin(t *testing.T) {
	local := newTestLocal()
	p, err := New(Config{
		SelfID:    "n9",
		Advertise: "http://127.0.0.1:1",
		Join:      []string{"http://127.0.0.1:9"}, // unreachable
		Heartbeat: 10 * time.Millisecond,
		Local:     local,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if got := p.Ready(); len(got) == 0 {
		t.Fatal("unjoined pool reports ready")
	}
	var nilPool *Pool
	if got := nilPool.Ready(); got != nil {
		t.Fatalf("nil pool Ready() = %v", got)
	}

	solo, err := New(Config{SelfID: "n1", Advertise: "http://127.0.0.1:1", Local: local})
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()
	if got := solo.Ready(); got != nil {
		t.Fatalf("seedless pool Ready() = %v", got)
	}
}

// Node-ID collisions are rejected at join time.
func TestPoolJoinRejectsIDCollision(t *testing.T) {
	nodes := startNodes(t, 1, time.Hour)
	body := strings.NewReader(`{"id":"n1","addr":"http://elsewhere"}`)
	resp, err := http.Post(nodes[0].ts.URL+"/v1/pool/join", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d, want 409", resp.StatusCode)
	}
}
