// Package pool is the distributed campaign fabric: it lets N ensembled
// processes serve one logical campaign service. Three layers compose it:
//
//   - a membership view (join over HTTP, periodic heartbeats with state
//     gossip, suspect→dead transitions on missed beats),
//   - a consistent-hash ring (seeded, deterministic virtual nodes) that
//     assigns every content-addressed job hash to exactly one owner peer,
//   - a peer protocol (cache lookup, forwarded execution, drain handoff)
//     over plain JSON HTTP with W3C traceparent propagation on every hop.
//
// The package deliberately knows nothing about the campaign service: it
// moves opaque spec/result JSON between peers and delegates local cache
// reads and executions to a Local interface. internal/campaign defines
// the mirror-image Fabric interface that *Pool satisfies, so neither
// package imports the other and cmd/ensembled wires the two together.
//
// The keystone invariant the fabric preserves: a campaign sharded across
// the pool produces a result Fingerprint byte-identical to a single-node
// run, because a job's result is a pure function of its spec no matter
// which peer executes it — routing only decides where the work (and its
// cache entry) lands, never what it computes.
package pool

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over peer IDs: each peer contributes a
// fixed number of virtual nodes (points on a 64-bit circle, derived
// deterministically from the peer ID alone), and a key is owned by the
// peer whose point follows the key's hash clockwise. Determinism is the
// contract: every peer that knows the same member set builds the same
// ring and routes every hash identically, with no coordination.
//
// A Ring is immutable after construction; membership changes build a new
// one (they are rare — peer joins and deaths — while routing is per-job).
type Ring struct {
	points []ringPoint // sorted by position
	ids    []string    // distinct member IDs, sorted
}

type ringPoint struct {
	pos uint64
	id  string
}

// DefaultVirtualNodes is the per-peer virtual-node count used when a
// caller passes vnodes <= 0: enough to keep the per-peer load share
// within a few percent of uniform for small pools, cheap to rebuild.
const DefaultVirtualNodes = 64

// NewRing builds a ring over ids with vnodes virtual nodes per peer
// (vnodes <= 0 uses DefaultVirtualNodes). Duplicate IDs are collapsed.
// An empty id set yields a ring that owns nothing.
func NewRing(ids []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(ids))
	r := &Ring{}
	for _, id := range ids {
		if id == "" || seen[id] {
			continue
		}
		seen[id] = true
		r.ids = append(r.ids, id)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				pos: ringHash(id + "#" + strconv.Itoa(v)),
				id:  id,
			})
		}
	}
	sort.Strings(r.ids)
	sort.Slice(r.points, func(i, k int) bool {
		if r.points[i].pos != r.points[k].pos {
			return r.points[i].pos < r.points[k].pos
		}
		// Position collisions (astronomically rare) break ties on ID so
		// every peer still agrees on the ordering.
		return r.points[i].id < r.points[k].id
	})
	return r
}

// ringHash maps a string to a point on the circle: FNV-1a folded through
// a 64-bit avalanche finalizer (the murmur3 fmix). Plain FNV-1a is not
// enough here — short, similar vnode labels ("n1#0", "n2#0") land badly
// clustered and one peer ends up owning most of the circle; the
// finalizer spreads them uniformly.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Members returns the ring's member IDs, sorted.
func (r *Ring) Members() []string {
	return append([]string(nil), r.ids...)
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.ids) }

// Owner returns the peer that owns key ("" when the ring is empty).
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].id
}

// Owners returns up to n distinct peers in preference order for key: the
// owner first, then the successors walking clockwise. It is the
// fail-over order — when the owner is unreachable, the next entry is
// the deterministic second choice everyone agrees on.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.ids) {
		n = len(r.ids)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	start := r.search(key)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.id] {
			continue
		}
		seen[p.id] = true
		out = append(out, p.id)
	}
	return out
}

// search returns the index of the first point at or after key's position
// (wrapping to 0 past the last point).
func (r *Ring) search(key string) int {
	pos := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Distribution counts, for each member, how many of the given keys it
// owns — the load-share diagnostic the ring tests pin.
func (r *Ring) Distribution(keys []string) map[string]int {
	out := make(map[string]int, len(r.ids))
	for _, id := range r.ids {
		out[id] = 0
	}
	for _, k := range keys {
		if id := r.Owner(k); id != "" {
			out[id]++
		}
	}
	return out
}
