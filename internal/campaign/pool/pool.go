package pool

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	gort "runtime"
	"sync"
	"sync/atomic"
	"time"

	"ensemblekit/internal/telemetry"
	"ensemblekit/internal/telemetry/tracing"
)

// Local is the pool's view of the node's own campaign service. The pool
// moves opaque spec/result JSON between peers; everything
// campaign-shaped happens behind this interface, which keeps the import
// graph acyclic (campaign imports nothing from pool either — it defines
// a mirror Fabric interface that *Pool satisfies).
type Local interface {
	// CachedResultJSON returns the locally cached result for a job hash
	// as JSON, or ok=false on a miss. It must not trigger execution.
	CachedResultJSON(hash string) (res []byte, ok bool)
	// ExecuteForwardedJSON runs a forwarded spec to completion and
	// returns the result JSON. It owns dedup against local in-flight
	// work and admission to the local cache.
	ExecuteForwardedJSON(ctx context.Context, specJSON []byte, label string) ([]byte, error)
	// SubmitJSON enqueues a drained spec for asynchronous local
	// execution (non-blocking admission; an error bounces the handoff).
	SubmitJSON(specJSON []byte, label string, priority int) error
	// NodeAccountingJSON returns the node's resource-ledger snapshot
	// (an accounting.Snapshot) as JSON — the per-node input to the
	// /v1/pool/accounting fleet rollup.
	NodeAccountingJSON() []byte
}

// RemoteError is a failure reported by a peer over the wire (as opposed
// to a transport failure reaching it). Permanent mirrors the executing
// node's classification so the requester's retry policy treats a
// deterministic simulation error the same as a local one.
type RemoteError struct {
	// Peer is the node that reported the failure.
	Peer string
	// StatusCode is the HTTP status the peer answered with.
	StatusCode int
	// Permanent reports that retrying the job cannot succeed.
	Permanent bool
	// Msg is the peer's error message.
	Msg string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("pool: peer %s: %s", e.Peer, e.Msg)
}

// IsPermanentRemote lets callers classify the error without importing
// this package (errors.As against a local interface).
func (e *RemoteError) IsPermanentRemote() bool { return e.Permanent }

// Config wires a Pool.
type Config struct {
	// SelfID is the node's advertised identity ("n1"). Required.
	SelfID string
	// Advertise is the base URL peers reach this node at
	// ("http://127.0.0.1:8080"). Required.
	Advertise string
	// Join lists seed peer base URLs to register with at startup.
	// Unreachable seeds are retried every heartbeat until first contact.
	Join []string
	// Heartbeat is the beat interval (default 1s).
	Heartbeat time.Duration
	// SuspectAfter marks a silent peer suspect (default 3×Heartbeat);
	// DeadAfter removes it from the ring (default 3×SuspectAfter).
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// VNodes is the per-peer virtual-node count (default
	// DefaultVirtualNodes).
	VNodes int
	// ForwardConcurrency bounds concurrently served forwarded
	// executions (default GOMAXPROCS). Forwarded work runs in handler
	// goroutines behind this semaphore, NOT through the local worker
	// queue: two nodes forwarding to each other through full queues
	// would deadlock their worker pools.
	ForwardConcurrency int
	// Local is the node's campaign service. Required.
	Local Local
	// Permanent classifies an execution error as non-retryable so the
	// wire protocol can carry the distinction (nil = all transient).
	Permanent func(error) bool
	// Metrics, Logger, Tracer instrument the pool (all optional,
	// nil-safe).
	Metrics *telemetry.Registry
	Logger  *telemetry.Logger
	Tracer  *tracing.Tracer
	// Client is the HTTP client for peer calls (default: no global
	// timeout; per-call contexts bound the control-plane calls).
	Client *http.Client
	// Now is the membership clock (tests inject a fake one).
	Now func() time.Time
}

func (c Config) normalized() Config {
	if c.Heartbeat <= 0 {
		c.Heartbeat = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * c.Heartbeat
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3 * c.SuspectAfter
	}
	if c.ForwardConcurrency <= 0 {
		c.ForwardConcurrency = gort.GOMAXPROCS(0)
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Pool is one node's handle on the fabric: the membership view, the
// ring built over it, the peer HTTP client, and the handlers peers call.
// All methods are safe for concurrent use.
type Pool struct {
	cfg    Config
	mem    *Membership
	client *http.Client
	log    *telemetry.Logger
	tracer *tracing.Tracer
	m      poolMetrics

	// sem bounds concurrently served forwarded executions.
	sem chan struct{}

	ringMu sync.Mutex
	ring   *Ring

	// joinedOnce latches after the first successful contact with any
	// seed; Ready gates on it so a node configured to join reports
	// unready until it actually has.
	joinedOnce atomic.Bool

	// seedMu guards seeds still awaiting first contact.
	seedMu sync.Mutex
	seeds  []string

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// poolMetrics bundles the pool_* Prometheus handles (all nil no-ops
// when Config.Metrics is nil).
type poolMetrics struct {
	peers          *telemetry.GaugeVec // by state
	ringMembers    *telemetry.Gauge
	ringRebuilds   *telemetry.Counter
	beatsSent      *telemetry.Counter
	beatErrors     *telemetry.Counter
	beatsRecv      *telemetry.Counter
	joinsRecv      *telemetry.Counter
	lookups        *telemetry.Counter
	lookupHits     *telemetry.Counter
	lookupErrors   *telemetry.Counter
	cacheServed    *telemetry.CounterVec // by result
	forwards       *telemetry.Counter
	forwardErrs    *telemetry.Counter
	served         *telemetry.Counter
	serveErrs      *telemetry.Counter
	handoffs       *telemetry.Counter
	handoffErrs    *telemetry.Counter
	handoffsRecv   *telemetry.Counter
	deaths         *telemetry.Counter
	federationErrs *telemetry.Counter
}

func newPoolMetrics(r *telemetry.Registry) poolMetrics {
	if r == nil {
		return poolMetrics{}
	}
	return poolMetrics{
		peers: r.GaugeVec("pool_peers",
			"Known pool peers by liveness state (self counts as alive).", "state"),
		ringMembers: r.Gauge("pool_ring_members",
			"Peers currently owning ranges of the consistent-hash ring."),
		ringRebuilds: r.Counter("pool_ring_rebuilds_total",
			"Ring rebuilds triggered by membership changes."),
		beatsSent: r.Counter("pool_heartbeats_sent_total",
			"Heartbeats sent to peers."),
		beatErrors: r.Counter("pool_heartbeat_errors_total",
			"Heartbeats that failed to reach their peer."),
		beatsRecv: r.Counter("pool_heartbeats_received_total",
			"Heartbeats received from peers."),
		joinsRecv: r.Counter("pool_joins_received_total",
			"Join registrations received from peers."),
		lookups: r.Counter("pool_cache_lookups_total",
			"Remote peer-cache lookups issued before local execution."),
		lookupHits: r.Counter("pool_cache_hits_total",
			"Remote peer-cache lookups answered with a result (fleet-tier hits)."),
		lookupErrors: r.Counter("pool_cache_lookup_errors_total",
			"Remote peer-cache lookups that failed (peer unreachable or error)."),
		cacheServed: r.CounterVec("pool_cache_served_total",
			"Peer-cache requests served to other nodes, by result.", "result"),
		forwards: r.Counter("pool_forwards_total",
			"Jobs forwarded to their ring owner for execution."),
		forwardErrs: r.Counter("pool_forward_errors_total",
			"Forwarded executions that failed (transport or peer error)."),
		served: r.Counter("pool_executes_served_total",
			"Forwarded executions served for other nodes."),
		serveErrs: r.Counter("pool_execute_errors_total",
			"Forwarded executions served that ended in error."),
		handoffs: r.Counter("pool_handoffs_total",
			"Queued jobs handed off to ring successors during drain."),
		handoffErrs: r.Counter("pool_handoff_errors_total",
			"Drain handoffs no peer accepted."),
		handoffsRecv: r.Counter("pool_handoffs_received_total",
			"Drained jobs accepted from departing peers."),
		deaths: r.Counter("pool_peer_deaths_total",
			"Peers declared dead (missed beats or hard transport failure)."),
		federationErrs: r.Counter("pool_federation_errors_total",
			"Peer fetches that failed while federating pool metrics or accounting."),
	}
}

// New builds a Pool; call Start to join seeds and begin heartbeating,
// and mount Handler on the node's HTTP server.
func New(cfg Config) (*Pool, error) {
	cfg = cfg.normalized()
	if cfg.SelfID == "" {
		return nil, errors.New("pool: Config.SelfID is required")
	}
	if cfg.Advertise == "" {
		return nil, errors.New("pool: Config.Advertise is required")
	}
	if cfg.Local == nil {
		return nil, errors.New("pool: Config.Local is required")
	}
	p := &Pool{
		cfg:    cfg,
		client: cfg.Client,
		log:    cfg.Logger,
		tracer: cfg.Tracer,
		m:      newPoolMetrics(cfg.Metrics),
		sem:    make(chan struct{}, cfg.ForwardConcurrency),
		seeds:  append([]string(nil), cfg.Join...),
		stop:   make(chan struct{}),
	}
	p.mem = NewMembership(cfg.SelfID, cfg.Advertise, cfg.SuspectAfter, cfg.DeadAfter, cfg.Now)
	p.mem.SetOnChange(p.rebuildRing)
	p.rebuildRing()
	return p, nil
}

// NodeID returns the node's advertised identity.
func (p *Pool) NodeID() string { return p.cfg.SelfID }

// Membership exposes the membership view (tests drive it directly).
func (p *Pool) Membership() *Membership { return p.mem }

// Start contacts the join seeds and launches the heartbeat loop.
// Unreachable seeds are retried every beat until first contact.
func (p *Pool) Start() {
	p.retryJoins()
	p.setPeerGauges()
	p.wg.Add(1)
	go p.loop()
}

// Close stops the heartbeat loop. It does not notify peers — their
// failure detectors handle the disappearance; a draining node hands its
// queue off explicitly (Handoff) before closing.
func (p *Pool) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// Ready reports the conditions blocking pool readiness — non-empty
// while a node configured with join seeds has not reached any of them.
// /readyz surfaces it next to the service's own checks.
func (p *Pool) Ready() []string {
	if p == nil {
		return nil
	}
	if len(p.cfg.Join) > 0 && !p.joinedOnce.Load() {
		return []string{"pool: not joined to any seed yet"}
	}
	return nil
}

// Peers snapshots the membership view.
func (p *Pool) Peers() []PeerInfo { return p.mem.Peers() }

// ringSnapshot returns the current ring (rebuilt on membership change).
func (p *Pool) ringSnapshot() *Ring {
	p.ringMu.Lock()
	defer p.ringMu.Unlock()
	return p.ring
}

// Owner resolves the ring owner of a job hash; self reports whether
// this node owns it (an empty pool always owns its own work).
func (p *Pool) Owner(hash string) (peer string, self bool) {
	id := p.ringSnapshot().Owner(hash)
	return id, id == "" || id == p.cfg.SelfID
}

// rebuildRing derives a fresh ring from the routable member set; the
// membership layer calls it on every routable-set change.
func (p *Pool) rebuildRing() {
	ids := p.mem.Routable()
	p.ringMu.Lock()
	p.ring = NewRing(ids, p.cfg.VNodes)
	p.ringMu.Unlock()
	p.m.ringMembers.Set(float64(len(ids)))
	p.m.ringRebuilds.Inc()
}

// loop is the heartbeat driver: retry unjoined seeds, beat every known
// peer (gossiping the local view), then sweep liveness states.
func (p *Pool) loop() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.retryJoins()
			p.beatAll()
			p.mem.Sweep()
			p.setPeerGauges()
		}
	}
}

// retryJoins contacts every seed still awaiting first contact.
func (p *Pool) retryJoins() {
	p.seedMu.Lock()
	pending := append([]string(nil), p.seeds...)
	p.seedMu.Unlock()
	if len(pending) == 0 {
		return
	}
	var remaining []string
	for _, seed := range pending {
		if seed == p.cfg.Advertise {
			continue // self-reference in a shared config
		}
		if err := p.join(seed); err != nil {
			p.log.Warn("pool: join failed, will retry",
				"seed", seed, "err", err.Error())
			remaining = append(remaining, seed)
			continue
		}
		p.joinedOnce.Store(true)
	}
	p.seedMu.Lock()
	p.seeds = remaining
	p.seedMu.Unlock()
}

// join registers with one seed and merges the member list it returns.
func (p *Pool) join(seed string) error {
	ctx, cancel := context.WithTimeout(context.Background(), p.controlTimeout())
	defer cancel()
	var view viewResponse
	err := p.postJSON(ctx, seed, "/v1/pool/join",
		joinRequest{ID: p.cfg.SelfID, Addr: p.cfg.Advertise}, &view)
	if err != nil {
		return err
	}
	// The seed itself answered directly: full upsert. Its member list is
	// second-hand: discovery only.
	p.mem.Upsert(view.Self, seed)
	p.mergeView(view.Members)
	p.log.Info("pool: joined", "seed", seed, "self", view.Self,
		"members", len(view.Members))
	return nil
}

// beatAll heartbeats every known peer concurrently (dead ones too —
// that is how resurrection is discovered).
func (p *Pool) beatAll() {
	targets := p.mem.beatTargets()
	if len(targets) == 0 {
		return
	}
	body := heartbeatRequest{
		ID:      p.cfg.SelfID,
		Addr:    p.cfg.Advertise,
		Members: p.mem.Peers(),
	}
	var wg sync.WaitGroup
	for _, t := range targets {
		if t.Addr == "" {
			continue
		}
		wg.Add(1)
		go func(t PeerInfo) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), p.controlTimeout())
			defer cancel()
			p.m.beatsSent.Inc()
			var view viewResponse
			if err := p.postJSON(ctx, t.Addr, "/v1/pool/heartbeat", body, &view); err != nil {
				p.m.beatErrors.Inc()
				if p.log.Enabled(telemetry.LevelDebug) {
					p.log.Debug("pool: heartbeat failed",
						"peer", t.ID, "err", err.Error())
				}
				return
			}
			// A responding peer is directly confirmed alive; its member
			// list is gossip.
			p.mem.Upsert(t.ID, t.Addr)
			p.mergeView(view.Members)
		}(t)
	}
	wg.Wait()
}

// mergeView folds a gossiped member list into the local view: unknown,
// not-dead entries are discovered; known entries are untouched (their
// liveness only moves on direct contact).
func (p *Pool) mergeView(members []PeerInfo) {
	for _, m := range members {
		if m.State == StateDead {
			continue
		}
		p.mem.UpsertIfUnknown(m.ID, m.Addr)
	}
}

// setPeerGauges mirrors the membership view onto pool_peers.
func (p *Pool) setPeerGauges() {
	counts := map[PeerState]int{StateAlive: 0, StateSuspect: 0, StateDead: 0}
	for _, pi := range p.mem.Peers() {
		counts[pi.State]++
	}
	p.m.peers.With(string(StateAlive)).Set(float64(counts[StateAlive]))
	p.m.peers.With(string(StateSuspect)).Set(float64(counts[StateSuspect]))
	p.m.peers.With(string(StateDead)).Set(float64(counts[StateDead]))
}

// peerUnreachable handles a hard transport failure on the data plane:
// the peer is declared dead now (its process is gone or unreachable —
// waiting out DeadAfter would stall every retry), the ring rebalances,
// and a later beat resurrects it if it returns.
func (p *Pool) peerUnreachable(peer string, err error) {
	if p.mem.MarkDead(peer) {
		p.m.deaths.Inc()
		p.setPeerGauges()
		p.log.Warn("pool: peer unreachable, declared dead",
			"peer", peer, "err", err.Error())
	}
}

// controlTimeout bounds control-plane calls (join, heartbeat, cache
// lookup): generous multiples of the beat so a slow peer is not
// declared unreachable by an aggressive client timeout.
func (p *Pool) controlTimeout() time.Duration {
	return 5 * p.cfg.Heartbeat
}

// Lookup consults a peer's cache for a job hash: the fleet tier of the
// result cache. found=false with a nil error is a clean miss; a
// transport failure declares the peer dead and returns the error.
func (p *Pool) Lookup(ctx context.Context, peer, hash string) (res []byte, found bool, err error) {
	addr := p.mem.Addr(peer)
	if addr == "" {
		return nil, false, fmt.Errorf("pool: unknown peer %q", peer)
	}
	p.m.lookups.Inc()
	ctx, cancel := context.WithTimeout(ctx, p.controlTimeout())
	defer cancel()
	ctx, span := p.tracer.StartSpan(ctx, "pool.cache-lookup", "client",
		tracing.String("pool.peer", peer),
		tracing.String("job.hash", hash))
	defer span.End()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		addr+"/v1/pool/cache/"+hash, nil)
	if err != nil {
		return nil, false, err
	}
	p.injectTrace(ctx, req)
	resp, err := p.client.Do(req)
	if err != nil {
		p.m.lookupErrors.Inc()
		span.SetError(err)
		p.peerUnreachable(peer, err)
		return nil, false, fmt.Errorf("pool: cache lookup on %s: %w", peer, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			p.m.lookupErrors.Inc()
			span.SetError(err)
			return nil, false, err
		}
		p.m.lookupHits.Inc()
		span.SetAttr(tracing.Bool("pool.cacheHit", true))
		return b, true, nil
	case http.StatusNotFound:
		span.SetAttr(tracing.Bool("pool.cacheHit", false))
		return nil, false, nil
	default:
		p.m.lookupErrors.Inc()
		err := fmt.Errorf("pool: cache lookup on %s: status %d", peer, resp.StatusCode)
		span.SetError(err)
		return nil, false, err
	}
}

// Execute forwards a job to its ring owner and blocks until the peer
// returns the result. Transport failures declare the peer dead (the
// caller's retry then reroutes on the rebalanced ring); peer-reported
// failures come back as *RemoteError carrying the permanence bit.
func (p *Pool) Execute(ctx context.Context, peer, hash string, specJSON []byte, label string) ([]byte, error) {
	addr := p.mem.Addr(peer)
	if addr == "" {
		return nil, fmt.Errorf("pool: unknown peer %q", peer)
	}
	p.m.forwards.Inc()
	ctx, span := p.tracer.StartSpan(ctx, "pool.forward", "client",
		tracing.String("pool.peer", peer),
		tracing.String("job.hash", hash))
	defer span.End()
	body, err := json.Marshal(executeRequest{Hash: hash, Label: label, Spec: specJSON})
	if err != nil {
		return nil, err
	}
	// No client timeout here: executions legitimately take long; the job
	// context (cancel, shutdown) bounds the wait.
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		addr+"/v1/pool/execute", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	p.injectTrace(ctx, req)
	resp, err := p.client.Do(req)
	if err != nil {
		p.m.forwardErrs.Inc()
		span.SetError(err)
		p.peerUnreachable(peer, err)
		return nil, fmt.Errorf("pool: forward to %s: %w", peer, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return io.ReadAll(resp.Body)
	}
	p.m.forwardErrs.Inc()
	var we wireError
	msg := fmt.Sprintf("status %d", resp.StatusCode)
	if b, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<10)); rerr == nil {
		if jerr := json.Unmarshal(b, &we); jerr == nil && we.Error != "" {
			msg = we.Error
		}
	}
	re := &RemoteError{Peer: peer, StatusCode: resp.StatusCode,
		Permanent: we.Permanent, Msg: msg}
	span.SetError(re)
	return nil, re
}

// Handoff offers a queued job to the ring successors of its hash (first
// alive non-self peer in preference order) for asynchronous execution —
// the drain path. Returns the accepting peer's ID.
func (p *Pool) Handoff(ctx context.Context, hash string, specJSON []byte, label string, priority int) (string, error) {
	ring := p.ringSnapshot()
	order := ring.Owners(hash, ring.Len())
	body, err := json.Marshal(submitRequest{
		Hash: hash, Label: label, Priority: priority, Spec: specJSON,
	})
	if err != nil {
		return "", err
	}
	var lastErr error
	for _, peer := range order {
		if peer == p.cfg.SelfID || p.mem.State(peer) != StateAlive {
			continue
		}
		addr := p.mem.Addr(peer)
		if addr == "" {
			continue
		}
		callCtx, cancel := context.WithTimeout(ctx, p.controlTimeout())
		req, rerr := http.NewRequestWithContext(callCtx, http.MethodPost,
			addr+"/v1/pool/submit", bytes.NewReader(body))
		if rerr != nil {
			cancel()
			return "", rerr
		}
		req.Header.Set("Content-Type", "application/json")
		p.injectTrace(ctx, req)
		resp, derr := p.client.Do(req)
		cancel()
		if derr != nil {
			lastErr = derr
			p.peerUnreachable(peer, derr)
			continue
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusAccepted {
			p.m.handoffs.Inc()
			return peer, nil
		}
		// A peer that answered but refused (its own queue full, itself
		// draining) is healthy; try the next successor.
		lastErr = fmt.Errorf("pool: peer %s refused handoff: status %d", peer, code)
	}
	p.m.handoffErrs.Inc()
	if lastErr == nil {
		lastErr = errors.New("pool: no live peer to hand off to")
	}
	return "", lastErr
}

// injectTrace stamps the current span's W3C traceparent on an outgoing
// peer request so cross-node spans stitch into one trace.
func (p *Pool) injectTrace(ctx context.Context, req *http.Request) {
	if sp := tracing.SpanFromContext(ctx); sp.Recording() {
		req.Header.Set("traceparent", sp.Context().Traceparent())
	}
}

// postJSON POSTs a JSON body to addr+path and decodes the JSON response
// into out (out may be nil).
func (p *Pool) postJSON(ctx context.Context, addr, path string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+path, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	p.injectTrace(ctx, req)
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("pool: %s%s: status %d", addr, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
