package pool

import (
	"reflect"
	"testing"
	"time"
)

// fakeClock steps membership through liveness transitions without
// sleeping.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// A silent peer must walk alive → suspect → dead on the configured
// thresholds, staying routable as a suspect (transient stalls must not
// reshuffle the ring) and leaving the ring only when dead.
func TestMembershipSuspectThenDeadUnderFakeClock(t *testing.T) {
	clk := newFakeClock()
	m := NewMembership("n1", "http://n1", 2*time.Second, 6*time.Second, clk.now)
	changes := 0
	m.SetOnChange(func() { changes++ })

	m.Upsert("n2", "http://n2")
	if changes != 1 {
		t.Fatalf("%d changes after first upsert, want 1", changes)
	}
	if got := m.State("n2"); got != StateAlive {
		t.Fatalf("state %s, want alive", got)
	}

	clk.advance(3 * time.Second) // past suspectAfter, before deadAfter
	if m.Sweep() {
		t.Fatal("suspect transition reported a routable-set change")
	}
	if got := m.State("n2"); got != StateSuspect {
		t.Fatalf("state %s, want suspect", got)
	}
	if got := m.Routable(); !reflect.DeepEqual(got, []string{"n1", "n2"}) {
		t.Fatalf("suspect peer left the routable set: %v", got)
	}

	clk.advance(4 * time.Second) // now 7s of silence, past deadAfter
	if !m.Sweep() {
		t.Fatal("dead transition did not report a routable-set change")
	}
	if got := m.State("n2"); got != StateDead {
		t.Fatalf("state %s, want dead", got)
	}
	if got := m.Routable(); !reflect.DeepEqual(got, []string{"n1"}) {
		t.Fatalf("dead peer still routable: %v", got)
	}

	// A direct beat resurrects it.
	if !m.Upsert("n2", "http://n2") {
		t.Fatal("resurrection did not report a change")
	}
	if got := m.State("n2"); got != StateAlive {
		t.Fatalf("state %s after resurrection, want alive", got)
	}
}

func TestMembershipMarkDeadIsImmediate(t *testing.T) {
	clk := newFakeClock()
	m := NewMembership("n1", "http://n1", 2*time.Second, 6*time.Second, clk.now)
	m.Upsert("n2", "http://n2")
	if !m.MarkDead("n2") {
		t.Fatal("MarkDead on a live peer reported no change")
	}
	if m.MarkDead("n2") {
		t.Fatal("MarkDead twice reported a second change")
	}
	if got := m.Routable(); !reflect.DeepEqual(got, []string{"n1"}) {
		t.Fatalf("routable after MarkDead: %v", got)
	}
}

// Dead is sticky: a sweep must never resurrect a MarkDead'd peer just
// because its last beat is still fresh — otherwise the peer flaps back
// into the ring on every sweep until deadAfter, re-routing retries at a
// corpse. Only direct contact resurrects.
func TestMembershipSweepDoesNotResurrectDead(t *testing.T) {
	clk := newFakeClock()
	m := NewMembership("n1", "http://n1", 2*time.Second, 6*time.Second, clk.now)
	m.Upsert("n2", "http://n2")
	m.MarkDead("n2") // fail-fast kill while the last beat is 0s old

	clk.advance(100 * time.Millisecond)
	if m.Sweep() {
		t.Fatal("sweep over a fresh-beat corpse reported a change")
	}
	if got := m.State("n2"); got != StateDead {
		t.Fatalf("state %s after sweep, want dead (sticky)", got)
	}

	// Direct contact still resurrects.
	if !m.Upsert("n2", "http://n2") {
		t.Fatal("direct beat did not resurrect the peer")
	}
	if got := m.State("n2"); got != StateAlive {
		t.Fatalf("state %s after direct beat, want alive", got)
	}
}

// Gossip must only discover new peers, never refresh known ones: two
// nodes trading stale member lists must not keep a dead peer alive.
func TestMembershipGossipDoesNotRefreshBeats(t *testing.T) {
	clk := newFakeClock()
	m := NewMembership("n1", "http://n1", 2*time.Second, 6*time.Second, clk.now)
	m.Upsert("n2", "http://n2")

	clk.advance(7 * time.Second)
	// Gossip about n2 arrives just before the sweep; it must not count
	// as a beat.
	if m.UpsertIfUnknown("n2", "http://n2") {
		t.Fatal("gossip refreshed a known peer")
	}
	m.Sweep()
	if got := m.State("n2"); got != StateDead {
		t.Fatalf("state %s after stale gossip, want dead", got)
	}

	// But gossip does discover genuinely new peers.
	if !m.UpsertIfUnknown("n3", "http://n3") {
		t.Fatal("gossip failed to add an unknown peer")
	}
	if got := m.State("n3"); got != StateAlive {
		t.Fatalf("state %s for discovered peer, want alive", got)
	}
}

func TestMembershipIgnoresSelf(t *testing.T) {
	m := NewMembership("n1", "http://n1", 0, 0, nil)
	if m.Upsert("n1", "http://elsewhere") {
		t.Fatal("self upsert reported a change")
	}
	if m.UpsertIfUnknown("n1", "http://elsewhere") {
		t.Fatal("self gossip reported a change")
	}
	if got := m.Addr("n1"); got != "http://n1" {
		t.Fatalf("self addr %q", got)
	}
	if got := m.State("n1"); got != StateAlive {
		t.Fatalf("self state %s", got)
	}
}

// Peers reports self first, then peers sorted by ID, with beat ages.
func TestMembershipPeersSnapshot(t *testing.T) {
	clk := newFakeClock()
	m := NewMembership("n2", "http://n2", 2*time.Second, 6*time.Second, clk.now)
	m.Upsert("n3", "http://n3")
	m.Upsert("n1", "http://n1")
	clk.advance(time.Second)
	ps := m.Peers()
	if len(ps) != 3 || !ps[0].Self || ps[0].ID != "n2" {
		t.Fatalf("snapshot %+v", ps)
	}
	if ps[1].ID != "n1" || ps[2].ID != "n3" {
		t.Fatalf("peer order %s, %s", ps[1].ID, ps[2].ID)
	}
	if ps[1].SinceBeatSec != 1 {
		t.Fatalf("beat age %v, want 1s", ps[1].SinceBeatSec)
	}
}
