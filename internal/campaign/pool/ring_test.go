package pool

import (
	"fmt"
	"reflect"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i) // hex, like job hashes
	}
	return keys
}

// Every peer that knows the same member set must route every key
// identically — the ring is deterministic in the member set, regardless
// of the order members were learned in.
func TestRingDeterministicAcrossMemberOrder(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"}, 0)
	b := NewRing([]string{"n3", "n1", "n2"}, 0)
	for _, k := range ringKeys(1000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %s: owner %s vs %s under different member order",
				k, a.Owner(k), b.Owner(k))
		}
	}
	if !reflect.DeepEqual(a.Members(), b.Members()) {
		t.Fatalf("members %v vs %v", a.Members(), b.Members())
	}
}

// Duplicate and empty IDs must not add ring points.
func TestRingCollapsesDuplicates(t *testing.T) {
	r := NewRing([]string{"n1", "n1", "", "n2"}, 8)
	if got := r.Members(); !reflect.DeepEqual(got, []string{"n1", "n2"}) {
		t.Fatalf("members %v", got)
	}
	if len(r.points) != 16 {
		t.Fatalf("%d points, want 16", len(r.points))
	}
}

// With the default virtual-node count, a 3-peer ring should spread a
// large uniform key population within a reasonable band of the 1/3
// ideal — the property that makes ring routing a load balancer.
func TestRingDistributionBalanced(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"}, DefaultVirtualNodes)
	keys := ringKeys(30000)
	dist := r.Distribution(keys)
	for id, n := range dist {
		share := float64(n) / float64(len(keys))
		if share < 0.15 || share > 0.55 {
			t.Errorf("peer %s owns %.1f%% of keys; want a rough third (%v)",
				id, 100*share, dist)
		}
	}
}

// Removing one member must only move the keys that member owned:
// every key owned by a survivor keeps its owner. This is the property
// that makes peer loss cheap — only the dead peer's range reshuffles.
func TestRingRebalanceMovesOnlyLostRange(t *testing.T) {
	before := NewRing([]string{"n1", "n2", "n3"}, 0)
	after := NewRing([]string{"n1", "n2"}, 0)
	moved := 0
	for _, k := range ringKeys(5000) {
		was, is := before.Owner(k), after.Owner(k)
		if was != "n3" {
			if is != was {
				t.Fatalf("key %s moved %s -> %s though %s survived", k, was, is, was)
			}
			continue
		}
		moved++
		if is == "n3" {
			t.Fatalf("key %s still owned by removed peer", k)
		}
	}
	if moved == 0 {
		t.Fatal("no keys were owned by n3; distribution is broken")
	}
}

// Owners returns the deterministic fail-over order: distinct peers,
// the owner first, never more than the member count.
func TestRingOwnersPreferenceOrder(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"}, 0)
	for _, k := range ringKeys(200) {
		order := r.Owners(k, 5)
		if len(order) != 3 {
			t.Fatalf("key %s: %d owners, want 3", k, len(order))
		}
		if order[0] != r.Owner(k) {
			t.Fatalf("key %s: preference order %v does not start at owner %s",
				k, order, r.Owner(k))
		}
		seen := map[string]bool{}
		for _, id := range order {
			if seen[id] {
				t.Fatalf("key %s: duplicate peer in %v", k, order)
			}
			seen[id] = true
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Owner("abc"); got != "" {
		t.Fatalf("empty ring owner %q", got)
	}
	if got := r.Owners("abc", 2); got != nil {
		t.Fatalf("empty ring owners %v", got)
	}
	if r.Len() != 0 {
		t.Fatalf("empty ring len %d", r.Len())
	}
}
