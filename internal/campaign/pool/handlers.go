package pool

import (
	"encoding/json"
	"fmt"
	"net/http"

	"ensemblekit/internal/telemetry/tracing"
)

// Wire types of the peer protocol. Spec and result payloads travel as
// raw JSON — the pool never interprets them.

// joinRequest registers a peer: POST /v1/pool/join.
type joinRequest struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// heartbeatRequest is one beat: the sender's identity plus its member
// view for gossip. POST /v1/pool/heartbeat.
type heartbeatRequest struct {
	ID      string     `json:"id"`
	Addr    string     `json:"addr"`
	Members []PeerInfo `json:"members,omitempty"`
}

// viewResponse is the receiver's view, returned from join, heartbeat,
// and GET /v1/pool/peers.
type viewResponse struct {
	Self    string     `json:"self"`
	Members []PeerInfo `json:"members"`
}

// executeRequest forwards one job for synchronous execution:
// POST /v1/pool/execute. The response body is the raw result JSON.
type executeRequest struct {
	Hash  string          `json:"hash"`
	Label string          `json:"label,omitempty"`
	Spec  json.RawMessage `json:"spec"`
}

// submitRequest hands one drained job off for asynchronous execution:
// POST /v1/pool/submit (202 on acceptance).
type submitRequest struct {
	Hash     string          `json:"hash"`
	Label    string          `json:"label,omitempty"`
	Priority int             `json:"priority,omitempty"`
	Spec     json.RawMessage `json:"spec"`
}

// wireError is the JSON error body of the peer protocol; Permanent
// carries the executing node's retryability classification across the
// wire.
type wireError struct {
	Error     string `json:"error"`
	Permanent bool   `json:"permanent,omitempty"`
}

// Handler returns the peer-protocol route table, mounted by the node's
// HTTP server under /v1/pool/:
//
//	POST /v1/pool/join         register a peer, returns the local view
//	POST /v1/pool/heartbeat    record a beat + gossip, returns the view
//	GET  /v1/pool/peers        the local membership view
//	GET  /v1/pool/cache/{hash} serve a cached result to a peer (404 miss)
//	POST /v1/pool/execute      execute a forwarded job synchronously
//	POST /v1/pool/submit       accept a drained job for async execution
//	GET  /v1/pool/metrics/node     this node's registry (federation's scrape target)
//	GET  /v1/pool/metrics          federated exposition, node-labeled
//	GET  /v1/pool/accounting/node  this node's resource-ledger snapshot
//	GET  /v1/pool/accounting       fleet rollup of the per-node ledgers
func (p *Pool) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/pool/join", p.handleJoin)
	mux.HandleFunc("POST /v1/pool/heartbeat", p.handleHeartbeat)
	mux.HandleFunc("GET /v1/pool/peers", p.handlePeers)
	mux.HandleFunc("GET /v1/pool/cache/{hash}", p.handleCache)
	mux.HandleFunc("POST /v1/pool/execute", p.handleExecute)
	mux.HandleFunc("POST /v1/pool/submit", p.handleSubmit)
	mux.HandleFunc("GET /v1/pool/metrics/node", p.handleMetricsNode)
	mux.HandleFunc("GET /v1/pool/metrics", p.handleMetricsFleet)
	mux.HandleFunc("GET /v1/pool/accounting/node", p.handleAccountingNode)
	mux.HandleFunc("GET /v1/pool/accounting", p.handleAccountingFleet)
	return mux
}

func (p *Pool) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		p.writeError(w, http.StatusBadRequest, err, false)
		return
	}
	if req.ID == "" || req.Addr == "" {
		p.writeError(w, http.StatusBadRequest,
			fmt.Errorf("pool: join requires id and addr"), false)
		return
	}
	if req.ID == p.cfg.SelfID && req.Addr != p.cfg.Advertise {
		p.writeError(w, http.StatusConflict,
			fmt.Errorf("pool: node ID %q already taken by %s", req.ID, p.cfg.Advertise), false)
		return
	}
	p.m.joinsRecv.Inc()
	p.mem.Upsert(req.ID, req.Addr)
	p.setPeerGauges()
	p.log.Info("pool: peer joined", "peer", req.ID, "addr", req.Addr)
	p.writeJSON(w, http.StatusOK, p.view())
}

func (p *Pool) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		p.writeError(w, http.StatusBadRequest, err, false)
		return
	}
	p.m.beatsRecv.Inc()
	p.mem.Upsert(req.ID, req.Addr)
	p.mergeView(req.Members)
	p.writeJSON(w, http.StatusOK, p.view())
}

func (p *Pool) handlePeers(w http.ResponseWriter, _ *http.Request) {
	p.writeJSON(w, http.StatusOK, p.view())
}

// handleCache serves the fleet cache tier: the raw result JSON when the
// local cache holds the hash, 404 otherwise.
func (p *Pool) handleCache(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	res, ok := p.cfg.Local.CachedResultJSON(hash)
	if !ok {
		p.m.cacheServed.With("miss").Inc()
		p.writeError(w, http.StatusNotFound,
			fmt.Errorf("pool: no cached result for %s", hash), false)
		return
	}
	p.m.cacheServed.With("hit").Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(res)
}

// handleExecute runs a forwarded job to completion in this handler
// goroutine, bounded by the forward semaphore — deliberately NOT through
// the local worker queue, so two nodes forwarding to each other through
// saturated queues can never deadlock their worker pools. The incoming
// traceparent parents the execution's spans, stitching the cross-node
// trace together.
func (p *Pool) handleExecute(w http.ResponseWriter, r *http.Request) {
	var req executeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		p.writeError(w, http.StatusBadRequest, err, false)
		return
	}
	ctx := r.Context()
	if remote, err := tracing.ParseTraceparent(r.Header.Get("traceparent")); err == nil {
		ctx = tracing.ContextWithRemote(ctx, remote)
	}
	ctx, span := p.tracer.StartSpan(ctx, "pool.serve-execute", "server",
		tracing.String("job.hash", req.Hash),
		tracing.String("pool.self", p.cfg.SelfID))
	defer span.End()

	select {
	case p.sem <- struct{}{}:
		defer func() { <-p.sem }()
	case <-ctx.Done():
		err := ctx.Err()
		span.SetError(err)
		p.writeError(w, http.StatusServiceUnavailable, err, false)
		return
	}

	p.m.served.Inc()
	res, err := p.cfg.Local.ExecuteForwardedJSON(ctx, req.Spec, req.Label)
	if err != nil {
		p.m.serveErrs.Inc()
		span.SetError(err)
		permanent := p.cfg.Permanent != nil && p.cfg.Permanent(err)
		code := http.StatusInternalServerError
		if permanent {
			code = http.StatusUnprocessableEntity
		}
		p.writeError(w, code, err, permanent)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(res)
}

// handleSubmit accepts a drained job for asynchronous execution.
func (p *Pool) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		p.writeError(w, http.StatusBadRequest, err, false)
		return
	}
	if err := p.cfg.Local.SubmitJSON(req.Spec, req.Label, req.Priority); err != nil {
		p.writeError(w, http.StatusServiceUnavailable, err, false)
		return
	}
	p.m.handoffsRecv.Inc()
	p.log.Info("pool: accepted drained job", "hash", req.Hash, "label", req.Label)
	p.writeJSON(w, http.StatusAccepted, map[string]string{"status": "accepted"})
}

func (p *Pool) view() viewResponse {
	return viewResponse{Self: p.cfg.SelfID, Members: p.mem.Peers()}
}

func (p *Pool) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (p *Pool) writeError(w http.ResponseWriter, code int, err error, permanent bool) {
	p.writeJSON(w, code, wireError{Error: err.Error(), Permanent: permanent})
}
