package pool

import (
	"testing"
	"time"

	"ensemblekit/internal/telemetry"
)

// TestPoolRegistryLint audits the pool_* families against the
// exposition conventions (see telemetry.Lint).
func TestPoolRegistryLint(t *testing.T) {
	reg := telemetry.NewRegistry()
	p, err := New(Config{
		SelfID: "n1", Advertise: "http://127.0.0.1:1",
		Local: newTestLocal(), Metrics: reg, Heartbeat: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if findings := reg.Lint(); len(findings) != 0 {
		t.Fatalf("pool registry lint findings:\n%v", findings)
	}
	if len(reg.Families()) == 0 {
		t.Fatal("no families registered; lint audited nothing")
	}
}
