package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/faults"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/runtime"
)

func TestSweepExpansion(t *testing.T) {
	sw := Sweep{
		Placements: placement.ConfigsTable2TwoMember(), // 5
		FaultPlans: []*faults.Plan{
			nil,
			{Name: "flaky", Staging: []faults.StagingFault{{Tier: runtime.TierDimes, Rate: 0.01}}},
		},
		NodeCounts: []int{0, 4},
		Seeds:      []int64{1, 2, 3},
		Steps:      4,
	}
	cands, err := sw.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if want := 5 * 2 * 2; len(cands) != want {
		t.Fatalf("expanded to %d candidates, want %d", len(cands), want)
	}
	for _, c := range cands {
		if len(c.Specs) != 3 {
			t.Fatalf("%s: %d seed jobs, want 3", c.Label, len(c.Specs))
		}
	}
	// Deterministic order: the first candidate is the first placement,
	// fault-free, fitted machine; labels encode the other dimensions.
	if cands[0].Label != "C1.1" {
		t.Errorf("first candidate %q", cands[0].Label)
	}
	if cands[1].Label != "C1.1/nodes=4" {
		t.Errorf("second candidate %q", cands[1].Label)
	}
	if cands[2].Label != "C1.1/faults=flaky" {
		t.Errorf("third candidate %q", cands[2].Label)
	}

	// Expansion is a pure function: same sweep, same jobs, same hashes.
	again, err := sw.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	for i := range cands {
		for k := range cands[i].Specs {
			h1, _ := cands[i].Specs[k].Hash()
			h2, _ := again[i].Specs[k].Hash()
			if h1 != h2 {
				t.Fatalf("candidate %d seed %d: hash differs across expansions", i, k)
			}
		}
	}
}

func TestReplicateMembers(t *testing.T) {
	p := ReplicateMembers(placement.C15(), 4)
	if len(p.Members) != 4 {
		t.Fatalf("%d members, want 4", len(p.Members))
	}
	// C1.5 co-locates each member's coupling; replicas must keep that
	// structure on fresh node blocks.
	for i, m := range p.Members {
		sim := m.Simulation.NodeSet()
		ana := m.Analyses[0].NodeSet()
		if len(sim) != 1 || len(ana) != 1 || sim[0] != ana[0] {
			t.Errorf("member %d lost co-location: sim=%v ana=%v", i, sim, ana)
		}
	}
	used := p.UsedNodes()
	if len(used) != 4 {
		t.Errorf("4 co-located members should use 4 nodes, got %v", used)
	}
}

// TestCampaignMatchesSerial is the acceptance check: a Table 2 campaign
// through the pooled service yields byte-identical per-job traces and the
// identical F(P) ranking to serial RunSimulated evaluation.
func TestCampaignMatchesSerial(t *testing.T) {
	svc, err := NewService(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	sw := Sweep{
		Name:       "table2",
		Placements: placement.ConfigsTable2(),
		Steps:      6,
		Sim:        SimConfig{Jitter: 0.02, Seed: 3},
	}
	res, err := RunCampaign(context.Background(), svc, sw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || len(res.Candidates) != 7 {
		t.Fatalf("campaign: %d candidates, %d failed", len(res.Candidates), res.Failed)
	}

	// Serial reference: the exact RunSimulated calls the jobs replay.
	for _, c := range res.Candidates {
		spec := c.Specs[0]
		opts := spec.Sim.Options()
		opts.Faults = spec.Faults
		tr, err := runtime.RunSimulated(spec.Cluster, spec.Placement, spec.Ensemble, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(tr)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(c.Results[0].Trace)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: pooled trace differs from serial RunSimulated", c.Label)
		}
	}

	// Ranking must match a serial evaluation pass over the same traces.
	serialSvc, err := NewService(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer serialSvc.Close()
	serial, err := RunCampaign(context.Background(), serialSvc, sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Ranking) != len(res.Ranking) {
		t.Fatalf("ranking lengths differ: %d vs %d", len(serial.Ranking), len(res.Ranking))
	}
	for i := range res.Ranking {
		if res.Ranking[i] != serial.Ranking[i] {
			t.Errorf("rank %d: pooled %+v vs serial %+v", i, res.Ranking[i], serial.Ranking[i])
		}
	}
}

func TestCampaignWarmRerunIsAllHits(t *testing.T) {
	svc, err := NewService(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	sw := Sweep{Placements: placement.ConfigsTable2(), Steps: 4}
	if _, err := RunCampaign(context.Background(), svc, sw); err != nil {
		t.Fatal(err)
	}
	cold := svc.Stats()
	if cold.CacheHits != 0 {
		t.Fatalf("cold run should not hit: %+v", cold)
	}

	res, err := RunCampaign(context.Background(), svc, sw)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != res.Jobs {
		t.Errorf("warm re-run: %d/%d cache hits, want all", res.CacheHits, res.Jobs)
	}
	warm := svc.Stats()
	if warm.CacheHits != int64(res.Jobs) || warm.CacheMisses != cold.CacheMisses {
		t.Errorf("stats after warm run: %+v", warm)
	}
}

func TestCampaignAveragesSeedsPerCandidate(t *testing.T) {
	svc, err := NewService(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	sw := Sweep{
		Placements: []placement.Placement{placement.C15()},
		Seeds:      []int64{1, 2, 3},
		Steps:      4,
		Sim:        SimConfig{Jitter: 0.05},
	}
	res, err := RunCampaign(context.Background(), svc, sw)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Candidates[0]
	if len(c.Results) != 3 || len(c.Hashes) != 3 {
		t.Fatalf("candidate has %d results / %d hashes, want 3", len(c.Results), len(c.Hashes))
	}
	if c.Hashes[0] == c.Hashes[1] {
		t.Error("different seeds should hash differently")
	}
	// The averaged efficiency is the mean of the per-seed efficiencies.
	for m := range c.Efficiencies {
		sum := 0.0
		for _, r := range c.Results {
			sum += r.Efficiencies[m]
		}
		if diff := c.Efficiencies[m] - sum/3; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("member %d: averaged efficiency off by %g", m, diff)
		}
	}
}

func TestCampaignCancellation(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	svc, err := NewService(Config{
		Workers: 1,
		runFn: func(ctx context.Context, spec JobSpec) (*Result, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return Execute(spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunCampaign(ctx, svc, Sweep{Placements: placement.ConfigsTable2(), Steps: 4})
		done <- err
	}()
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("cancelled campaign returned %v", err)
	}
}

func TestSweepRejectsEmpty(t *testing.T) {
	if _, err := (Sweep{}).Jobs(); err == nil {
		t.Error("empty sweep should fail expansion")
	}
	if _, err := (Sweep{
		Placements: []placement.Placement{placement.C15()},
		Cluster:    cluster.Spec{Nodes: 1, CoresPerNode: 1}, // too small for 16-core sims
	}).Jobs(); err == nil {
		t.Error("infeasible sweep should fail validation at expansion")
	}
}
