package campaign

import (
	"testing"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/kernels"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/runtime"
)

// These constants pin the canonical hash of one simulated and one real
// reference spec. They guard the content-address across refactors: a
// hash change silently invalidates every disk cache and journal in the
// field and breaks cross-version pools (peers route by hash), so it must
// always be a deliberate, reviewed decision. If this test fails, either
// revert the encoding change or update the pins in the same change that
// documents the cache-format break.
const (
	pinnedSimHash  = "70de0aae8492db02ff64a6713806c8f0f21dbe321dbdad4a2b289522222b61b3"
	pinnedRealHash = "bdaf16a50ec6007e5c08e2ad6ac01f3c5b8931970a492898211483d4e6c7b057"
)

func pinnedSimSpec(t *testing.T) JobSpec {
	t.Helper()
	p := placement.C15()
	es := runtime.SpecForPlacement(p, 4)
	spec, err := NewJob(cluster.Cori(2), p, es, runtime.SimOptions{Seed: 42, Jitter: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func pinnedRealSpec(t *testing.T) JobSpec {
	t.Helper()
	lj := kernels.DefaultLJConfig()
	eigen := kernels.DefaultEigenConfig()
	spec := NewRealJob(cluster.Cori(2), placement.C15(), RealConfig{
		Steps:          2,
		Stride:         4,
		FramesPerChunk: 2,
		LJ:             &lj,
		Eigen:          &eigen,
		MaxCores:       2,
		TimeoutSec:     30,
	})
	return spec
}

func TestJobSpecHashStabilityPins(t *testing.T) {
	sim := pinnedSimSpec(t)
	if got, err := sim.Hash(); err != nil || got != pinnedSimHash {
		t.Errorf("simulated spec hash %s (err %v), pinned %s", got, err, pinnedSimHash)
	}
	real := pinnedRealSpec(t)
	if err := real.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, err := real.Hash(); err != nil || got != pinnedRealHash {
		t.Errorf("real spec hash %s (err %v), pinned %s", got, err, pinnedRealHash)
	}
}

// Every RealConfig field participates in the content address, and the
// Real section cleanly separates real from simulated specs.
func TestRealConfigCoveredByHash(t *testing.T) {
	base := pinnedRealSpec(t)
	baseHash, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}

	mutations := map[string]func(*RealConfig){
		"steps":          func(c *RealConfig) { c.Steps++ },
		"stride":         func(c *RealConfig) { c.Stride++ },
		"framesPerChunk": func(c *RealConfig) { c.FramesPerChunk++ },
		"lj":             func(c *RealConfig) { c.LJ.Atoms += 10 },
		"eigen":          func(c *RealConfig) { c.Eigen.Iterations += 10 },
		"maxCores":       func(c *RealConfig) { c.MaxCores++ },
		"timeoutSec":     func(c *RealConfig) { c.TimeoutSec++ },
	}
	for name, mutate := range mutations {
		spec := pinnedRealSpec(t)
		rc := *spec.Real
		lj, eigen := *rc.LJ, *rc.Eigen
		rc.LJ, rc.Eigen = &lj, &eigen
		mutate(&rc)
		spec.Real = &rc
		got, err := spec.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got == baseHash {
			t.Errorf("mutating %s did not change the hash", name)
		}
	}

	// A real spec never collides with its simulated sibling.
	simLike := pinnedRealSpec(t)
	simLike.Real = nil
	simLike.Ensemble = runtime.SpecForPlacement(simLike.Placement, 4)
	simHash, err := simLike.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if simHash == baseHash {
		t.Error("real and simulated specs collide")
	}
}
