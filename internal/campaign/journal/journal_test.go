package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func open(t *testing.T, path string, compactEvery int) (*Journal, State) {
	t.Helper()
	j, st, err := Open(path, compactEvery)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, st
}

func enq(hash string) Record {
	return Record{Type: TypeEnqueue, Hash: hash, Label: "l-" + hash, Spec: json.RawMessage(`{"k":1}`)}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, st := open(t, path, -1)
	if len(st.Jobs) != 0 || len(st.Campaigns) != 0 {
		t.Fatalf("fresh journal replayed state %+v", st)
	}
	for _, rec := range []Record{
		enq("aaa"),
		enq("bbb"),
		{Type: TypeCampaign, ID: "c-1", Name: "t2", Request: json.RawMessage(`{"configs":["table2"]}`)},
		{Type: TypeTerminal, Hash: "aaa", Status: "done"},
		{Type: TypeCampaign, ID: "c-2", Name: "x"},
		{Type: TypeCampaignDone, ID: "c-2", Status: "done"},
	} {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j2, st2 := open(t, path, -1)
	if len(st2.Jobs) != 1 || st2.Jobs[0].Hash != "bbb" {
		t.Fatalf("pending jobs after replay: %+v", st2.Jobs)
	}
	if st2.Jobs[0].Label != "l-bbb" || string(st2.Jobs[0].Spec) != `{"k":1}` {
		t.Errorf("replayed record lost fields: %+v", st2.Jobs[0])
	}
	if len(st2.Campaigns) != 1 || st2.Campaigns[0].ID != "c-1" {
		t.Fatalf("open campaigns after replay: %+v", st2.Campaigns)
	}
	if !j2.Pending("bbb") || j2.Pending("aaa") {
		t.Error("Pending disagrees with replayed state")
	}
	if !j2.OpenCampaign("c-1") || j2.OpenCampaign("c-2") {
		t.Error("OpenCampaign disagrees with replayed state")
	}
	if got := j2.Stats().Replayed; got != 6 {
		t.Errorf("replayed %d records, want 6", got)
	}
}

func TestTornTailTruncatedAndTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _ := open(t, path, -1)
	if err := j.Append(enq("aaa")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(enq("bbb")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate a crash mid-write: append half a record (no newline, bad
	// checksum — both torn-tail shapes in one).
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"type":"termi`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(path)

	j2, st := open(t, path, -1)
	if len(st.Jobs) != 2 {
		t.Fatalf("torn tail lost intact records: %+v", st.Jobs)
	}
	if j2.Stats().TruncatedBytes == 0 {
		t.Error("torn tail not reported as truncated")
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
	// Appends after recovery extend a clean log.
	if err := j2.Append(Record{Type: TypeTerminal, Hash: "aaa", Status: "done"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, st3 := open(t, path, -1)
	if len(st3.Jobs) != 1 || st3.Jobs[0].Hash != "bbb" {
		t.Fatalf("post-recovery append lost: %+v", st3.Jobs)
	}
}

func TestCorruptLineStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _ := open(t, path, -1)
	for _, h := range []string{"aaa", "bbb", "ccc"} {
		if err := j.Append(enq(h)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Flip one byte in the middle record's payload: its CRC fails, and
	// everything from there on is dropped (suffix records are suspect
	// once the log's integrity breaks).
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(b), "\n")
	mid := []byte(lines[1])
	mid[len(mid)/2] ^= 0x40
	if err := os.WriteFile(path, []byte(lines[0]+string(mid)+lines[2]), 0o644); err != nil {
		t.Fatal(err)
	}

	_, st := open(t, path, -1)
	if len(st.Jobs) != 1 || st.Jobs[0].Hash != "aaa" {
		t.Fatalf("replay past corrupt record: %+v", st.Jobs)
	}
}

func TestCompactionBoundsLogAndPreservesState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _ := open(t, path, -1)
	// Churn: many jobs enqueue and resolve; two stay pending.
	for i := 0; i < 200; i++ {
		h := string(rune('a'+i%26)) + "-churn"
		if err := j.Append(enq(h)); err != nil {
			t.Fatal(err)
		}
		if err := j.Append(Record{Type: TypeTerminal, Hash: h, Status: "done"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append(enq("keep-1")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: TypeCampaign, ID: "c-9", Name: "open"}); err != nil {
		t.Fatal(err)
	}
	big, _ := os.Stat(path)
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	small, _ := os.Stat(path)
	if small.Size() >= big.Size() {
		t.Errorf("compaction did not shrink the log: %d -> %d", big.Size(), small.Size())
	}
	if j.Stats().Compactions != 1 {
		t.Errorf("compactions = %d, want 1", j.Stats().Compactions)
	}
	// Appends continue on the compacted log.
	if err := j.Append(enq("keep-2")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, st := open(t, path, -1)
	if len(st.Jobs) != 2 || st.Jobs[0].Hash != "keep-1" || st.Jobs[1].Hash != "keep-2" {
		t.Fatalf("state after compaction+replay: %+v", st.Jobs)
	}
	if len(st.Campaigns) != 1 || st.Campaigns[0].ID != "c-9" {
		t.Fatalf("campaigns after compaction+replay: %+v", st.Campaigns)
	}
}

func TestAutoCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _ := open(t, path, 8)
	var compactions int
	j.OnCompact = func() { compactions++ }
	for i := 0; i < 20; i++ {
		h := enq("h")
		h.Hash = string(rune('a' + i))
		if err := j.Append(h); err != nil {
			t.Fatal(err)
		}
		if err := j.Append(Record{Type: TypeTerminal, Hash: h.Hash, Status: "done"}); err != nil {
			t.Fatal(err)
		}
	}
	if compactions < 4 {
		t.Errorf("auto-compactions = %d, want >= 4 over 40 appends at compactEvery=8", compactions)
	}
}

func TestDuplicateEnqueueKeepsAdmissionOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _ := open(t, path, -1)
	for _, h := range []string{"first", "second"} {
		if err := j.Append(enq(h)); err != nil {
			t.Fatal(err)
		}
	}
	// Replay re-submission re-appends "first" after "second"; its
	// original admission order must survive.
	if err := j.Append(enq("first")); err != nil {
		t.Fatal(err)
	}
	st := j.State()
	if len(st.Jobs) != 2 || st.Jobs[0].Hash != "first" || st.Jobs[1].Hash != "second" {
		t.Fatalf("duplicate enqueue reordered pending jobs: %+v", st.Jobs)
	}
}

func TestNilJournalIsNoop(t *testing.T) {
	var j *Journal
	if err := j.Append(enq("x")); err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if j.Pending("x") || j.OpenCampaign("c") || j.Healthy() != nil {
		t.Error("nil journal not inert")
	}
	if st := j.State(); len(st.Jobs) != 0 {
		t.Error("nil journal has state")
	}
}

func TestSnapshotIsSingleIntactRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _ := open(t, path, -1)
	if err := j.Append(enq("aaa")); err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	j.Close()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("compacted log has %d lines, want 1", len(lines))
	}
	rec, ok := decodeLine([]byte(lines[0]))
	if !ok || rec.Type != TypeSnapshot || len(rec.Pending) != 1 {
		t.Fatalf("compacted record: ok=%v %+v", ok, rec)
	}
}
