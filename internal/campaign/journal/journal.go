// Package journal is the campaign service's write-ahead log: an
// append-only, fsync'd, checksummed record of every durable state
// transition — job enqueues, terminal job states, campaign submissions
// and resolutions — that lets a SIGKILL'd service resume its campaigns
// exactly where it stopped.
//
// The format is deliberately primitive: one JSON record per line,
// prefixed with the CRC-32C of the record bytes ("crc32hex payload\n").
// Primitive buys two properties a binary log would have to earn:
// torn-tail tolerance (a crash mid-write leaves a line that fails its
// checksum; Open truncates the file back to the last intact record and
// replay continues from there) and operability (the log is greppable,
// and a human can reconstruct what the service was doing when it died).
//
// The journal also maintains its own reduced state — the set of pending
// (enqueued, not yet terminal) jobs and open (submitted, not yet
// resolved) campaigns — by applying every record as it is appended or
// replayed. Periodic compaction rewrites the log as a single snapshot
// record of that state (write-temp, fsync, rename), so the log stays
// bounded by the live working set rather than the campaign history.
package journal

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Record types. A record carries only the fields its type needs; the
// rest stay at their zero values and are omitted from the encoding.
const (
	// TypeEnqueue records a job admitted to the queue: its content hash,
	// full spec, and submission options. A pending enqueue with no
	// matching terminal record is re-enqueued on replay.
	TypeEnqueue = "enqueue"
	// TypeTerminal records a job reaching a terminal state (done,
	// failed, cancelled). Shutdown cancellations are deliberately NOT
	// journaled — an interrupted job must stay pending so a restart
	// resumes it.
	TypeTerminal = "terminal"
	// TypeCampaign records a campaign submission: its server ID and the
	// resolved request, enough to re-run it against the cache on resume.
	TypeCampaign = "campaign"
	// TypeCampaignDone records a campaign resolving (done or failed).
	TypeCampaignDone = "campaign-done"
	// TypeSnapshot is the compaction record: the complete pending state
	// at compaction time. It is always the first record of a compacted
	// log and resets the reducer when replayed.
	TypeSnapshot = "snapshot"
)

// Record is one journal entry. Exactly one Type-dependent field subset
// is populated; see the Type constants.
type Record struct {
	// Type discriminates the record (Type* constants).
	Type string `json:"type"`
	// Seq is the journal-assigned monotonic sequence number.
	Seq uint64 `json:"seq,omitempty"`
	// TS is the wall-clock append time (operational; replay ignores it).
	TS time.Time `json:"ts,omitempty"`

	// Job fields (enqueue, terminal).
	Hash     string          `json:"hash,omitempty"`
	Label    string          `json:"label,omitempty"`
	Campaign string          `json:"campaign,omitempty"`
	Priority int             `json:"priority,omitempty"`
	Spec     json.RawMessage `json:"spec,omitempty"`
	Status   string          `json:"status,omitempty"`
	Reason   string          `json:"reason,omitempty"`

	// Campaign fields (campaign, campaign-done).
	ID      string          `json:"id,omitempty"`
	Name    string          `json:"name,omitempty"`
	Request json.RawMessage `json:"request,omitempty"`

	// Snapshot payload: the pending records at compaction time.
	Pending []Record `json:"pending,omitempty"`
}

// State is the journal's reduced view: what a restarted service must
// pick back up. Slices are ordered by original sequence number, so
// replayed work re-enters the queue in its original admission order.
type State struct {
	// Jobs holds one pending enqueue record per non-terminal job hash.
	Jobs []Record
	// Campaigns holds one record per submitted-but-unresolved campaign.
	Campaigns []Record
}

// Stats counts the journal's lifetime activity.
type Stats struct {
	// Appended counts records appended this process lifetime.
	Appended int64
	// Replayed counts records recovered from disk at Open.
	Replayed int64
	// Compactions counts snapshot rewrites.
	Compactions int64
	// TruncatedBytes is the torn tail dropped at Open (0 = clean log).
	TruncatedBytes int64
	// PendingJobs and OpenCampaigns describe the live reduced state.
	PendingJobs   int
	OpenCampaigns int
}

// Journal is an open write-ahead log. All methods are safe for
// concurrent use and nil-safe: a nil *Journal is a no-op log, so
// callers thread an optional journal without nil checks.
type Journal struct {
	// OnAppend, if set, observes every durable append (telemetry).
	OnAppend func()
	// OnCompact, if set, observes every compaction.
	OnCompact func()

	mu           sync.Mutex
	path         string
	f            *os.File
	seq          uint64
	compactEvery int
	sinceCompact int
	writeErr     error // sticky: first append/sync failure (readiness check)
	stats        Stats

	// Reduced state, maintained incrementally.
	jobs  map[string]Record
	camps map[string]Record
}

// defaultCompactEvery bounds the log to roughly this many records past
// the live working set before an automatic snapshot rewrite.
const defaultCompactEvery = 4096

// Open opens (creating if absent) the journal at path, replays every
// intact record into the reduced state, and truncates any torn tail so
// subsequent appends extend a clean log. The returned State is the
// work a restarted service must resume. compactEvery bounds appends
// between automatic compactions (0 = default 4096, negative disables
// automatic compaction).
func Open(path string, compactEvery int) (*Journal, State, error) {
	if compactEvery == 0 {
		compactEvery = defaultCompactEvery
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, State{}, fmt.Errorf("journal: open: %w", err)
	}
	j := &Journal{
		path:         path,
		f:            f,
		compactEvery: compactEvery,
		jobs:         make(map[string]Record),
		camps:        make(map[string]Record),
	}
	b, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, State{}, fmt.Errorf("journal: read: %w", err)
	}
	recs, validOff := decodeAll(b)
	if int64(validOff) < int64(len(b)) {
		// Torn or corrupt tail: everything at and past the first bad
		// line is suspect; drop it so appends never interleave with
		// garbage. This is the crash-mid-write recovery path.
		j.stats.TruncatedBytes = int64(len(b) - validOff)
		if err := f.Truncate(int64(validOff)); err != nil {
			f.Close()
			return nil, State{}, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, State{}, fmt.Errorf("journal: seek: %w", err)
	}
	for _, r := range recs {
		j.apply(r)
		if r.Seq > j.seq {
			j.seq = r.Seq
		}
	}
	j.stats.Replayed = int64(len(recs))
	return j, j.stateLocked(), nil
}

// crcTable is the Castagnoli polynomial, the checksum used by most
// storage systems (iSCSI, ext4, Btrfs) for its hardware support.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// decodeAll parses records until the first bad line, returning the
// intact records and the byte offset they end at.
func decodeAll(b []byte) ([]Record, int) {
	var recs []Record
	off := 0
	for off < len(b) {
		nl := -1
		for i := off; i < len(b); i++ {
			if b[i] == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			break // torn final line (no terminator)
		}
		line := b[off:nl]
		rec, ok := decodeLine(line)
		if !ok {
			break // checksum or encoding failure: stop, truncate here
		}
		recs = append(recs, rec)
		off = nl + 1
	}
	return recs, off
}

// decodeLine parses "crc32hex payload" and verifies the checksum.
func decodeLine(line []byte) (Record, bool) {
	if len(line) < 10 || line[8] != ' ' {
		return Record{}, false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return Record{}, false
	}
	payload := line[9:]
	if crc32.Checksum(payload, crcTable) != want {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, false
	}
	return rec, true
}

// encodeLine renders a record as its checksummed journal line.
func encodeLine(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encoding record: %w", err)
	}
	line := make([]byte, 0, len(payload)+10)
	line = append(line, fmt.Sprintf("%08x ", crc32.Checksum(payload, crcTable))...)
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// apply folds one record into the reduced state. Idempotent under the
// duplicates replay re-submission produces: a second enqueue for a
// pending hash overwrites it, a terminal for an unknown hash is a no-op.
func (j *Journal) apply(rec Record) {
	switch rec.Type {
	case TypeEnqueue:
		if rec.Hash != "" {
			if old, ok := j.jobs[rec.Hash]; ok && old.Seq < rec.Seq {
				rec.Seq = old.Seq // keep original admission order
			}
			j.jobs[rec.Hash] = rec
		}
	case TypeTerminal:
		delete(j.jobs, rec.Hash)
	case TypeCampaign:
		if rec.ID != "" {
			j.camps[rec.ID] = rec
		}
	case TypeCampaignDone:
		delete(j.camps, rec.ID)
	case TypeSnapshot:
		j.jobs = make(map[string]Record)
		j.camps = make(map[string]Record)
		for _, p := range rec.Pending {
			j.apply(p)
		}
	}
}

// stateLocked snapshots the reduced state, ordered by sequence number.
func (j *Journal) stateLocked() State {
	st := State{
		Jobs:      make([]Record, 0, len(j.jobs)),
		Campaigns: make([]Record, 0, len(j.camps)),
	}
	for _, r := range j.jobs {
		st.Jobs = append(st.Jobs, r)
	}
	for _, r := range j.camps {
		st.Campaigns = append(st.Campaigns, r)
	}
	sort.Slice(st.Jobs, func(a, b int) bool { return st.Jobs[a].Seq < st.Jobs[b].Seq })
	sort.Slice(st.Campaigns, func(a, b int) bool { return st.Campaigns[a].Seq < st.Campaigns[b].Seq })
	return st
}

// State returns the current reduced state (pending jobs, open
// campaigns) in admission order.
func (j *Journal) State() State {
	if j == nil {
		return State{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stateLocked()
}

// Append stamps rec with the next sequence number and wall time, writes
// it, and fsyncs before returning: once Append returns nil the record
// survives a crash. A failed append poisons Healthy (readiness) but the
// journal keeps accepting writes — availability over durability.
func (j *Journal) Append(rec Record) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	if j.f == nil {
		j.mu.Unlock()
		return fmt.Errorf("journal: closed")
	}
	j.seq++
	rec.Seq = j.seq
	rec.TS = time.Now().UTC()
	line, err := encodeLine(rec)
	if err != nil {
		j.mu.Unlock()
		return err
	}
	if _, err := j.f.Write(line); err != nil {
		j.writeErr = fmt.Errorf("journal: append: %w", err)
		j.mu.Unlock()
		return j.writeErr
	}
	if err := j.f.Sync(); err != nil {
		j.writeErr = fmt.Errorf("journal: fsync: %w", err)
		j.mu.Unlock()
		return j.writeErr
	}
	j.apply(rec)
	j.stats.Appended++
	j.sinceCompact++
	onAppend := j.OnAppend
	var compactErr error
	if j.compactEvery > 0 && j.sinceCompact >= j.compactEvery {
		compactErr = j.compactLocked()
	}
	j.mu.Unlock()
	if onAppend != nil {
		onAppend()
	}
	return compactErr
}

// Pending reports whether hash has an enqueue record with no terminal
// record — i.e. the journal would re-enqueue it on replay. The service
// uses it to journal terminal records for cache-answered replays
// without paying an fsync on every ordinary cache hit.
func (j *Journal) Pending(hash string) bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.jobs[hash]
	return ok
}

// OpenCampaign reports whether campaign id is submitted but unresolved.
func (j *Journal) OpenCampaign(id string) bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.camps[id]
	return ok
}

// Compact rewrites the log as a single snapshot of the reduced state:
// write to a temp file, fsync, atomically rename over the log, fsync
// the directory. A crash at any point leaves either the old log or the
// new one, never a mix.
func (j *Journal) Compact() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.compactLocked()
}

func (j *Journal) compactLocked() error {
	if j.f == nil {
		return fmt.Errorf("journal: closed")
	}
	st := j.stateLocked()
	snap := Record{Type: TypeSnapshot, TS: time.Now().UTC()}
	snap.Pending = append(snap.Pending, st.Jobs...)
	snap.Pending = append(snap.Pending, st.Campaigns...)
	j.seq++
	snap.Seq = j.seq
	line, err := encodeLine(snap)
	if err != nil {
		return err
	}
	tmp := j.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	if _, err := f.Write(line); err != nil {
		f.Close()
		return fmt.Errorf("journal: compact write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: compact fsync: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		f.Close()
		return fmt.Errorf("journal: compact rename: %w", err)
	}
	syncDir(filepath.Dir(j.path))
	j.f.Close()
	j.f = f
	j.sinceCompact = 0
	j.stats.Compactions++
	j.writeErr = nil // a successful rewrite proves the disk is healthy again
	if j.OnCompact != nil {
		// Callback without the lock would race Close; compaction is rare
		// enough that holding it is fine (the callback is a counter bump).
		j.OnCompact()
	}
	return nil
}

// syncDir fsyncs a directory so a rename within it is durable; best
// effort (some filesystems refuse directory fsync).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// Healthy returns the sticky error of the first failed append since the
// last successful compaction, or nil. The readiness probe surfaces it.
func (j *Journal) Healthy() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.writeErr
}

// Stats snapshots the journal's counters.
func (j *Journal) Stats() Stats {
	if j == nil {
		return Stats{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.stats
	st.PendingJobs = len(j.jobs)
	st.OpenCampaigns = len(j.camps)
	return st
}

// Close closes the underlying file. Records appended before Close are
// durable; Append after Close fails.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
