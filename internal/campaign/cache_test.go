package campaign

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"ensemblekit/internal/telemetry"
)

// corruptEntry flips one bit inside the stored payload of a disk-cache
// entry, simulating bit rot that survives the write-then-rename path.
func corruptEntry(t *testing.T, dir, hash string) {
	t.Helper()
	path := filepath.Join(dir, hash+".json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit well inside the entry so both the envelope and the
	// payload region are plausible victims; the checksum catches either.
	b[len(b)/2] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDiskCacheBitFlipEvictsAndReExecutes(t *testing.T) {
	dir := t.TempDir()
	spec := jobFor(t, 1)
	hash, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}

	svc1, err := NewService(Config{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	j, err := svc1.Submit(context.Background(), spec, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	svc1.Close()

	corruptEntry(t, dir, hash)

	// A fresh service must detect the flip on read, evict the entry, and
	// re-execute instead of serving (or erroring on) the corrupt result.
	svc2, err := NewService(Config{Workers: 1, CacheDir: dir, Metrics: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	j2, err := svc2.Submit(context.Background(), spec, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if j2.CacheHit {
		t.Fatal("corrupt entry served as a cache hit")
	}
	res2, err := j2.Wait(context.Background())
	if err != nil {
		t.Fatalf("re-execution after corruption failed: %v", err)
	}
	if res2.Objective != res1.Objective || res2.Makespan != res1.Makespan {
		t.Errorf("re-executed result diverged: %+v vs %+v", res2, res1)
	}
	st := svc2.Stats()
	if st.CacheCorrupt != 1 {
		t.Errorf("stats.CacheCorrupt = %d, want 1", st.CacheCorrupt)
	}
	if got := svc2.metrics.cacheCorrupt.Value(); got != 1 {
		t.Errorf("campaign_cache_corrupt_total = %v, want 1", got)
	}
	if st.DiskHits != 0 {
		t.Errorf("disk hits = %d, want 0 (the only entry was corrupt)", st.DiskHits)
	}

	// The re-execution healed the disk tier: a third service gets a
	// verified disk hit again.
	svc3, err := NewService(Config{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc3.Close()
	j3, err := svc3.Submit(context.Background(), spec, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !j3.CacheHit {
		t.Error("healed entry not served from disk")
	}
}

func TestDiskCacheLegacyEntryTreatedAsMiss(t *testing.T) {
	dir := t.TempDir()
	spec := jobFor(t, 1)
	hash, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	// A pre-envelope entry: a bare Result with no checksum wrapper.
	if err := os.WriteFile(filepath.Join(dir, hash+".json"),
		[]byte(`{"hash":"`+hash+`","objective":0.5}`), 0o644); err != nil {
		t.Fatal(err)
	}

	svc, err := NewService(Config{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	j, err := svc.Submit(context.Background(), spec, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if j.CacheHit {
		t.Fatal("unchecksummed entry served as a cache hit")
	}
	if res, err := j.Wait(context.Background()); err != nil || res == nil {
		t.Fatalf("re-execution: res=%v err=%v", res, err)
	}
	if st := svc.Stats(); st.CacheCorrupt != 1 {
		t.Errorf("stats.CacheCorrupt = %d, want 1", st.CacheCorrupt)
	}
	if _, err := os.Stat(filepath.Join(dir, hash+".json")); err != nil {
		t.Errorf("healed entry missing: %v", err)
	}
}

func TestDecodeDiskEntryRejectsTamperedChecksum(t *testing.T) {
	res, _, err := decodeDiskEntry([]byte(`{"sha256":"0000","result":{"hash":"x"}}`))
	if err == nil || res != nil {
		t.Fatalf("tampered checksum accepted: res=%v err=%v", res, err)
	}
	if _, _, err := decodeDiskEntry([]byte(`not json`)); err == nil {
		t.Fatal("undecodable envelope accepted")
	}
	if _, _, err := decodeDiskEntry([]byte(`{"result":{"hash":"x"}}`)); err == nil {
		t.Fatal("entry without checksum accepted")
	}
}
