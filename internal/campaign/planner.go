package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/faults"
	"ensemblekit/internal/indicators"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/runtime"
	"ensemblekit/internal/stats"
)

// Sweep describes a campaign: the cartesian expansion of placements ×
// member counts × fault plans × node counts, each point repeated once per
// seed (the paper's trials). The zero values of every dimension collapse
// it, so Sweep{Placements: placement.ConfigsTable2()} is exactly the
// paper's Table 2 study.
type Sweep struct {
	// Name labels the campaign in reports.
	Name string `json:"name,omitempty"`
	// Placements are the base configurations to evaluate.
	Placements []placement.Placement `json:"placements"`
	// MemberCounts optionally scales each base placement to n members via
	// ReplicateMembers (empty = use the placements as given).
	MemberCounts []int `json:"memberCounts,omitempty"`
	// FaultPlans optionally evaluates every point under each fault plan
	// (empty = one fault-free evaluation). A nil entry means "no faults".
	FaultPlans []*faults.Plan `json:"faultPlans,omitempty"`
	// NodeCounts optionally sizes the machine per point; 0 or an empty
	// list fits the machine to the placement.
	NodeCounts []int `json:"nodeCounts,omitempty"`
	// Seeds are the RNG seeds run per point and averaged (empty =
	// the single seed in Sim.Seed).
	Seeds []int64 `json:"seeds,omitempty"`
	// Steps is the in situ step count (0 = runtime.PaperSteps).
	Steps int `json:"steps,omitempty"`
	// Cluster is the base machine (zero = Cori sized to the placement).
	Cluster cluster.Spec `json:"cluster,omitempty"`
	// Sim configures the simulated backend for every job.
	Sim SimConfig `json:"sim,omitempty"`
	// Stage is the indicator stage the ranking uses (nil = P^{U,A,P}).
	Stage *indicators.StageSet `json:"stage,omitempty"`
	// Priority orders this campaign's jobs in the service queue.
	Priority int `json:"priority,omitempty"`

	// Progress, when non-nil, observes completion: it is called after
	// each job resolves with the number resolved so far and the total.
	Progress func(done, total int) `json:"-"`

	// Campaign tags every job's events with a campaign ID for the
	// service's event stream; the HTTP server assigns the campaign's ID
	// here so SSE subscribers can filter one campaign's transitions.
	Campaign string `json:"-"`
}

// ReplicateMembers returns a placement with n members: the base members
// cycled, each replica's components shifted onto a fresh block of nodes
// (preserving the base's intra-member co-location structure). It is the
// member-count dimension of a sweep.
func ReplicateMembers(base placement.Placement, n int) placement.Placement {
	span := len(base.UsedNodes())
	out := placement.Placement{Name: fmt.Sprintf("%s-x%d", base.Name, n)}
	for i := 0; i < n; i++ {
		m := base.Members[i%len(base.Members)]
		block := (i / len(base.Members)) * span
		shift := func(c placement.Component) placement.Component {
			nodes := make([]int, 0, len(c.Nodes))
			for _, nd := range c.NodeSet() {
				nodes = append(nodes, nd+block)
			}
			return placement.Component{Nodes: nodes, Cores: c.Cores}
		}
		nm := placement.Member{Simulation: shift(m.Simulation)}
		for _, a := range m.Analyses {
			nm.Analyses = append(nm.Analyses, shift(a))
		}
		out.Members = append(out.Members, nm)
	}
	return out
}

// Candidate identifies one expansion point of a sweep (everything except
// the seed dimension, which is averaged into the candidate's report).
type Candidate struct {
	// Label names the point ("C1.5", "C1.5/faults=flaky/nodes=4").
	Label string `json:"label"`
	// Placement is the evaluated configuration.
	Placement placement.Placement `json:"placement"`
	// Nodes is the machine size (0 = fitted).
	Nodes int `json:"nodes,omitempty"`
	// Fault names the fault plan ("" = none).
	Fault string `json:"fault,omitempty"`
	// Specs holds one job per seed.
	Specs []JobSpec `json:"-"`
}

// Jobs expands the sweep into its candidates, deterministically ordered
// (placements outermost, then member counts, fault plans, node counts;
// seeds innermost within each candidate).
func (sw Sweep) Jobs() ([]Candidate, error) {
	if len(sw.Placements) == 0 {
		return nil, errors.New("campaign: sweep has no placements")
	}
	steps := sw.Steps
	if steps <= 0 {
		steps = runtime.PaperSteps
	}
	memberCounts := sw.MemberCounts
	if len(memberCounts) == 0 {
		memberCounts = []int{0} // identity
	}
	plans := sw.FaultPlans
	if len(plans) == 0 {
		plans = []*faults.Plan{nil}
	}
	nodeCounts := sw.NodeCounts
	if len(nodeCounts) == 0 {
		nodeCounts = []int{0} // fit the placement
	}
	seeds := sw.Seeds
	if len(seeds) == 0 {
		seeds = []int64{sw.Sim.Seed}
	}

	var out []Candidate
	for _, base := range sw.Placements {
		for _, mc := range memberCounts {
			p := base
			if mc > 0 {
				p = ReplicateMembers(base, mc)
			}
			for _, plan := range plans {
				for _, nodes := range nodeCounts {
					label := p.Name
					if plan != nil && plan.Name != "" {
						label += "/faults=" + plan.Name
					}
					if nodes > 0 {
						label += fmt.Sprintf("/nodes=%d", nodes)
					}
					cand := Candidate{Label: label, Placement: p, Nodes: nodes}
					if plan != nil {
						cand.Fault = plan.Name
					}
					spec := sw.Cluster
					if spec.Nodes == 0 {
						spec = cluster.Cori(1)
					}
					if nodes > 0 {
						spec.Nodes = nodes
					}
					es := runtime.SpecForPlacement(p, steps)
					for _, seed := range seeds {
						sim := sw.Sim
						sim.Seed = seed
						opts := sim.Options()
						opts.Faults = plan
						js, err := NewJob(spec, p, es, opts)
						if err != nil {
							return nil, err
						}
						if err := js.Validate(); err != nil {
							return nil, fmt.Errorf("campaign: %s: %w", label, err)
						}
						cand.Specs = append(cand.Specs, js)
					}
					out = append(out, cand)
				}
			}
		}
	}
	return out, nil
}

// CandidateResult is one evaluated sweep point: its per-seed jobs, the
// trial-averaged efficiencies, and the indicator report.
type CandidateResult struct {
	Candidate
	// JobIDs holds the service job IDs, one per seed.
	JobIDs []string `json:"jobIds"`
	// Hashes holds the content addresses, one per seed.
	Hashes []string `json:"hashes"`
	// CacheHits counts the seeds answered from the cache.
	CacheHits int `json:"cacheHits"`
	// Results holds the per-seed results (nil entries for failed seeds).
	Results []*Result `json:"-"`
	// Efficiencies are the per-member efficiencies averaged over seeds.
	Efficiencies []float64 `json:"efficiencies,omitempty"`
	// Report is the indicator report over the averaged efficiencies.
	Report indicators.Report `json:"report"`
	// Objective is F at the sweep's ranking stage.
	Objective float64 `json:"objective"`
	// Makespan is the mean ensemble makespan over seeds.
	Makespan float64 `json:"makespan"`
	// Err carries the first failure among the candidate's seeds.
	Err string `json:"err,omitempty"`
}

// CampaignResult aggregates a finished campaign.
type CampaignResult struct {
	// Name echoes the sweep name.
	Name string `json:"name"`
	// Stage is the indicator stage of the ranking.
	Stage string `json:"stage"`
	// Candidates holds every sweep point in expansion order.
	Candidates []CandidateResult `json:"candidates"`
	// Ranking orders candidate labels by descending objective (failed
	// candidates excluded) — the paper's F(P) ranking, Eq. 9.
	Ranking []indicators.Ranked `json:"ranking"`
	// Jobs counts the jobs submitted; CacheHits the ones served from the
	// cache; Failed the ones that errored.
	Jobs      int `json:"jobs"`
	CacheHits int `json:"cacheHits"`
	Failed    int `json:"failed"`
}

// Fingerprint hashes the campaign's science — per-candidate labels, job
// hashes, objectives, efficiencies, makespans, failure states, and the
// ranking — into a hex SHA-256. Two runs of the same sweep produce the
// same fingerprint regardless of how they executed: job IDs, cache hits,
// and interleavings differ between a cold run, a warm run, and a
// crash-resumed run, but the results must not. The chaos harness pins a
// resumed campaign against an uninterrupted one with it.
func (r *CampaignResult) Fingerprint() (string, error) {
	type candKey struct {
		Label        string            `json:"label"`
		Hashes       []string          `json:"hashes"`
		Objective    float64           `json:"objective"`
		Efficiencies []float64         `json:"efficiencies"`
		Makespan     float64           `json:"makespan"`
		Report       indicators.Report `json:"report"`
		Err          string            `json:"err,omitempty"`
	}
	key := struct {
		Name       string              `json:"name"`
		Stage      string              `json:"stage"`
		Jobs       int                 `json:"jobs"`
		Failed     int                 `json:"failed"`
		Candidates []candKey           `json:"candidates"`
		Ranking    []indicators.Ranked `json:"ranking"`
	}{Name: r.Name, Stage: r.Stage, Jobs: r.Jobs, Failed: r.Failed, Ranking: r.Ranking}
	for _, c := range r.Candidates {
		key.Candidates = append(key.Candidates, candKey{
			Label:        c.Label,
			Hashes:       c.Hashes,
			Objective:    c.Objective,
			Efficiencies: c.Efficiencies,
			Makespan:     c.Makespan,
			Report:       c.Report,
			Err:          c.Err,
		})
	}
	b, err := json.Marshal(key)
	if err != nil {
		return "", fmt.Errorf("campaign: fingerprinting result: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Best returns the top-ranked candidate.
func (r *CampaignResult) Best() (CandidateResult, bool) {
	if len(r.Ranking) == 0 {
		return CandidateResult{}, false
	}
	for _, c := range r.Candidates {
		if c.Label == r.Ranking[0].Name {
			return c, true
		}
	}
	return CandidateResult{}, false
}

// RunCampaign expands the sweep, fans every job out over the service
// (blocking backpressure against the bounded queue), and aggregates
// results into the paper's indicator report types as they stream in.
// Job-level failures are recorded per candidate rather than aborting the
// campaign; RunCampaign itself fails only on expansion errors, submission
// errors, or ctx expiry.
func RunCampaign(ctx context.Context, svc *Service, sw Sweep) (*CampaignResult, error) {
	cands, err := sw.Jobs()
	if err != nil {
		return nil, err
	}
	stage := indicators.StageUAP
	if sw.Stage != nil {
		stage = *sw.Stage
	}

	total := 0
	for _, c := range cands {
		total += len(c.Specs)
	}
	out := &CampaignResult{Name: sw.Name, Stage: stage.String(), Jobs: total}

	// Fan out everything first — the queue applies backpressure — so the
	// worker pool sees the whole campaign at once.
	jobs := make([][]*Job, len(cands))
	for i, c := range cands {
		jobs[i] = make([]*Job, len(c.Specs))
		for k, spec := range c.Specs {
			j, err := svc.SubmitWait(ctx, spec, SubmitOptions{Priority: sw.Priority, Label: c.Label, Campaign: sw.Campaign})
			if err != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				return nil, fmt.Errorf("campaign: submitting %s: %w", c.Label, err)
			}
			jobs[i][k] = j
		}
	}

	// Aggregate in expansion order as results stream in.
	done := 0
	var reports []indicators.Report
	for i, c := range cands {
		cr := CandidateResult{Candidate: c}
		for _, j := range jobs[i] {
			cr.JobIDs = append(cr.JobIDs, j.ID)
			cr.Hashes = append(cr.Hashes, j.Hash)
			if j.CacheHit {
				cr.CacheHits++
				out.CacheHits++
			}
			res, err := j.Wait(ctx)
			done++
			if sw.Progress != nil {
				sw.Progress(done, total)
			}
			if err != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				out.Failed++
				if cr.Err == "" {
					cr.Err = err.Error()
				}
				cr.Results = append(cr.Results, nil)
				continue
			}
			cr.Results = append(cr.Results, res)
		}
		if cr.Err == "" {
			if err := cr.aggregate(stage); err != nil {
				cr.Err = err.Error()
			} else {
				rep := cr.Report
				rep.Name = cr.Label
				reports = append(reports, rep)
			}
		}
		out.Candidates = append(out.Candidates, cr)
	}
	out.Ranking = indicators.Rank(reports, stage)
	return out, nil
}

// aggregate averages the candidate's per-seed results into one report:
// per-member efficiencies are meaned across seeds (the paper's trial
// averaging), then pushed through the indicator arithmetic.
func (cr *CandidateResult) aggregate(stage indicators.StageSet) error {
	perMember := make([][]float64, 0)
	var makespans []float64
	for _, res := range cr.Results {
		if res == nil {
			continue
		}
		if len(perMember) == 0 {
			perMember = make([][]float64, len(res.Efficiencies))
		}
		if len(res.Efficiencies) != len(perMember) {
			return fmt.Errorf("campaign: %s: surviving-member count varies across seeds", cr.Label)
		}
		for i, e := range res.Efficiencies {
			perMember[i] = append(perMember[i], e)
		}
		makespans = append(makespans, res.Makespan)
	}
	if len(perMember) == 0 {
		return fmt.Errorf("campaign: %s: no results", cr.Label)
	}
	effs := make([]float64, len(perMember))
	for i := range effs {
		effs[i] = stats.Mean(perMember[i])
	}
	// Indicator arithmetic needs the surviving placement; without drops
	// this is the full placement. Derive it from the first result's drop
	// count to stay consistent with Eq. 9 over survivors.
	p := cr.Placement
	if cr.Results[0] != nil && cr.Results[0].Dropped > 0 {
		p = placement.Placement{Name: cr.Placement.Name}
		for i, m := range cr.Results[0].Trace.Members {
			if !m.Dropped() {
				p.Members = append(p.Members, cr.Placement.Members[i])
			}
		}
	}
	rep, err := indicators.FullReport(p, effs)
	if err != nil {
		return err
	}
	cr.Efficiencies = effs
	cr.Report = rep
	cr.Objective = rep.PerStage[stage.String()]
	cr.Makespan = stats.Mean(makespans)
	return nil
}
