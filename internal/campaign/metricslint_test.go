package campaign

import (
	"testing"

	"ensemblekit/internal/telemetry"
)

// TestServiceRegistryLint audits every family the service and HTTP
// server register — help text present, snake_case names and labels,
// counters (and only counters) ending in _total. Wired into `make
// check` so a new metric cannot land off-convention.
func TestServiceRegistryLint(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc, err := NewService(Config{Workers: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	_ = NewServer(svc) // registers the http_* families on the same registry
	if findings := reg.Lint(); len(findings) != 0 {
		t.Fatalf("campaign registry lint findings:\n%v", findings)
	}
	if len(reg.Families()) == 0 {
		t.Fatal("no families registered; lint audited nothing")
	}
}
