package campaign

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"ensemblekit/internal/placement"
)

// This file is the in-process chaos suite for the durability layer: a
// service is interrupted mid-campaign (its unfinished jobs still pending
// in the write-ahead log), a second service is opened on the same state
// directory, and the resumed work must complete with results identical
// to a run that was never interrupted. The subprocess variant — a real
// SIGKILL against a live ensembled server — lives behind
// `ensembled -smoke-chaos` and runs in CI.

func chaosSweep() Sweep {
	return Sweep{Name: "chaos", Placements: placement.ConfigsTable2(), Steps: 8}
}

// chaosFingerprint runs the chaos sweep uninterrupted on a throwaway
// service and fingerprints the result.
func chaosFingerprint(t *testing.T) string {
	t.Helper()
	svc, err := NewService(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	res, err := RunCampaign(context.Background(), svc, chaosSweep())
	if err != nil {
		t.Fatal(err)
	}
	fp, err := res.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func TestServiceResumesJournaledJobsAfterShutdown(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.wal")
	cacheDir := filepath.Join(dir, "cache")

	// First life: one worker, and only the seed-1 job is allowed to
	// finish — the others park until shutdown cancels them.
	svc1, err := NewService(Config{
		Workers:     1,
		JournalPath: journalPath,
		CacheDir:    cacheDir,
		runFn: func(ctx context.Context, spec JobSpec) (*Result, error) {
			if spec.Sim.Seed != 1 {
				<-ctx.Done()
				return nil, ctx.Err()
			}
			return Execute(spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	specs := []JobSpec{jobFor(t, 1), jobFor(t, 2), jobFor(t, 3)}
	j1, err := svc1.Submit(context.Background(), specs[0], SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs[1:] {
		if _, err := svc1.Submit(context.Background(), spec, SubmitOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	svc1.Close() // the two unfinished jobs stay pending in the journal

	// Second life: a plain service on the same state dir must replay the
	// two unfinished jobs and execute them without being asked.
	svc2, err := NewService(Config{Workers: 2, JournalPath: journalPath, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if got := svc2.Stats().JournalReplayed; got != 2 {
		t.Fatalf("replayed %d jobs, want 2", got)
	}
	deadline := time.Now().Add(30 * time.Second)
	for svc2.Stats().Completed < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("replayed jobs never completed: %+v", svc2.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// Every spec is now answered from the cache: seed 1 from the first
	// life's disk entry, seeds 2 and 3 from the replayed executions.
	for i, spec := range specs {
		j, err := svc2.Submit(context.Background(), spec, SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !j.CacheHit {
			t.Errorf("spec %d not cached after resume", i)
		}
	}

	// The terminal records drained the journal: nothing is pending, so a
	// third life would replay nothing.
	if st := svc2.Journal().Stats(); st.PendingJobs != 0 {
		t.Errorf("journal still holds %d pending jobs", st.PendingJobs)
	}
}

func TestCampaignResumeMatchesUninterruptedRun(t *testing.T) {
	refFP := chaosFingerprint(t)
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.wal")
	cacheDir := filepath.Join(dir, "cache")

	// First life: accept the campaign over HTTP, let exactly two jobs
	// finish, then shut down with the rest queued or parked.
	var ran atomic.Int64
	svc1, err := NewService(Config{
		Workers:     1,
		JournalPath: journalPath,
		CacheDir:    cacheDir,
		runFn: func(ctx context.Context, spec JobSpec) (*Result, error) {
			if ran.Add(1) > 2 {
				<-ctx.Done()
				return nil, ctx.Err()
			}
			return Execute(spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(NewServer(svc1).Handler())
	st := postCampaign(t, ts1, `{"name":"chaos","configs":["table2"],"steps":8}`)
	if st.ID != "c-1" {
		t.Fatalf("campaign id %q, want c-1", st.ID)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp := pollCampaignOnce(t, ts1, st.ID)
		if resp.Done >= 2 && resp.Done < resp.Total {
			break
		}
		if resp.Status != "running" || time.Now().After(deadline) {
			t.Fatalf("never caught the campaign mid-flight: %+v", resp)
		}
		time.Sleep(time.Millisecond)
	}
	ts1.Close()
	svc1.Close() // interrupt: no campaign-done record is written

	// Second life: Resume must find the interrupted campaign in the
	// journal, relaunch it under its original ID, and finish it with a
	// result indistinguishable from the uninterrupted run.
	svc2, err := NewService(Config{Workers: 2, JournalPath: journalPath, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if got := svc2.Stats().JournalReplayed; got == 0 {
		t.Fatal("restart replayed no jobs from the journal")
	}
	srv2 := NewServer(svc2)
	if n := srv2.Resume(); n != 1 {
		t.Fatalf("Resume relaunched %d campaigns, want 1", n)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	final := pollCampaign(t, ts2, "c-1")
	if final.Status != "done" || final.Result == nil {
		t.Fatalf("resumed campaign: %+v", final)
	}
	gotFP, err := final.Result.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if gotFP != refFP {
		t.Errorf("resumed campaign fingerprint %s != uninterrupted %s", gotFP, refFP)
	}

	// A fresh campaign after the resumed one must not collide with the
	// preserved ID sequence.
	st2 := postCampaign(t, ts2, `{"configs":["C1.5"],"steps":4}`)
	if st2.ID == "c-1" {
		t.Errorf("new campaign reused the resumed campaign's ID")
	}
}

// pollCampaignOnce reads a campaign's status once (pollCampaign loops
// until terminal, which would wait out the whole run).
func pollCampaignOnce(t *testing.T, ts *httptest.Server, id string) CampaignStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st CampaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestJournaledCampaignMatchesUnjournaled(t *testing.T) {
	refFP := chaosFingerprint(t)
	dir := t.TempDir()
	svc, err := NewService(Config{
		Workers:     2,
		JournalPath: filepath.Join(dir, "journal.wal"),
		CacheDir:    filepath.Join(dir, "cache"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	res, err := RunCampaign(context.Background(), svc, chaosSweep())
	if err != nil {
		t.Fatal(err)
	}
	fp, err := res.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp != refFP {
		t.Errorf("journaled campaign fingerprint %s != unjournaled %s", fp, refFP)
	}
}
