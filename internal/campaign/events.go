package campaign

import (
	"sync"
	"time"
)

// Event statuses beyond the job lifecycle Status values.
const (
	// EventCached marks a submission answered from the result cache: the
	// job is born terminal, so "cached" is both its first and last event.
	EventCached = "cached"
	// EventRetrying marks a transiently-failed job re-entering the queue
	// under the retry policy: non-terminal, carries the failure, the
	// attempt number, and the backoff it is waiting out.
	EventRetrying = "retrying"
)

// JobEvent is one job state transition, as published on the service's
// event stream and pushed over the SSE endpoint. The transition ladder is
// queued → running → done|failed|cancelled, with cache hits collapsing to
// a single "cached" terminal event.
type JobEvent struct {
	// Seq is the broadcaster's monotonic sequence number (1-based);
	// subscribers use it to detect history they missed.
	Seq int64 `json:"seq"`
	// Time is the wall-clock time of the transition.
	Time time.Time `json:"ts"`
	// Campaign tags the owning campaign ("c-1"); empty for jobs submitted
	// outside a campaign.
	Campaign string `json:"campaign,omitempty"`
	// Job and Hash identify the job; Label is its display label.
	Job   string `json:"job"`
	Hash  string `json:"hash"`
	Label string `json:"label,omitempty"`
	// Status is the state entered: "queued", "running", "done", "cached",
	// "retrying", "failed", or "cancelled".
	Status string `json:"status"`
	// Error carries the failure of a failed or cancelled job; Reason is
	// its human-readable cause ("cancelled by submitter", "service
	// shutdown", "job deadline exceeded", or the worker error).
	Error  string `json:"error,omitempty"`
	Reason string `json:"reason,omitempty"`
	// Objective is F(P^{U,A,P}) on completion ("done"/"cached").
	Objective float64 `json:"objective,omitempty"`
	// WaitSec is the queued → running wall time (on "running" and terminal
	// events of executed jobs); ExecSec is the running → terminal wall time
	// (terminal events only).
	WaitSec float64 `json:"waitSec,omitempty"`
	ExecSec float64 `json:"execSec,omitempty"`
	// CacheHit marks jobs answered without execution.
	CacheHit bool `json:"cacheHit,omitempty"`
	// Attempt counts completed retries of the job so far (0 on a first
	// run); on a "retrying" event it numbers the retry being scheduled.
	Attempt int `json:"attempt,omitempty"`
	// BackoffSec is the delay before the retry re-enters the queue
	// ("retrying" events only).
	BackoffSec float64 `json:"backoffSec,omitempty"`
	// Node is the advertised ID of the pool node executing the job;
	// empty on a fabric-less (single-node) service.
	Node string `json:"node,omitempty"`
}

// Terminal reports whether the event ends its job's lifecycle.
func (e JobEvent) Terminal() bool {
	switch e.Status {
	case string(StatusDone), string(StatusFailed), string(StatusCancelled), EventCached:
		return true
	}
	return false
}

// Broadcaster fans JobEvents out to subscribers with strictly bounded
// memory and zero blocking on the publish path: each subscriber owns a
// fixed-size buffered channel, and a subscriber whose buffer is full when
// an event arrives is dropped (its channel closed) rather than stalling
// the worker that published the event. A bounded history ring lets late
// subscribers replay recent transitions — the SSE handler uses it to
// close the race between POSTing a campaign and connecting its stream.
type Broadcaster struct {
	// OnDrop, if set, observes each subscriber dropped for falling behind.
	OnDrop func()
	// OnSubscribers, if set, observes the subscriber count after every
	// subscribe/unsubscribe/drop.
	OnSubscribers func(n int)

	subBuf int

	mu      sync.Mutex
	seq     int64
	ring    []JobEvent // capacity-bounded history, oldest first
	start   int        // ring read index
	count   int        // live entries in ring
	subs    map[chan JobEvent]struct{}
	dropped int64 // subscribers dropped for falling behind
	evicted int64 // events evicted from history
	closed  bool
}

// NewBroadcaster sizes the fan-out: histCap bounds the replay history
// (<= 0 disables replay), subBuf is each subscriber's channel buffer
// (minimum 1).
func NewBroadcaster(histCap, subBuf int) *Broadcaster {
	if subBuf < 1 {
		subBuf = 1
	}
	b := &Broadcaster{subs: make(map[chan JobEvent]struct{}), subBuf: subBuf}
	if histCap > 0 {
		b.ring = make([]JobEvent, histCap)
	}
	return b
}

// Publish stamps ev with the next sequence number, appends it to the
// history ring, and offers it to every subscriber without blocking.
func (b *Broadcaster) Publish(ev JobEvent) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.seq++
	ev.Seq = b.seq
	if len(b.ring) > 0 {
		if b.count == len(b.ring) {
			b.start = (b.start + 1) % len(b.ring)
			b.count--
			b.evicted++
		}
		b.ring[(b.start+b.count)%len(b.ring)] = ev
		b.count++
	}
	var dropped int
	for ch := range b.subs {
		select {
		case ch <- ev:
		default:
			// Slow consumer: dropping it is the bounded-memory contract.
			delete(b.subs, ch)
			close(ch)
			b.dropped++
			dropped++
		}
	}
	n := len(b.subs)
	b.mu.Unlock()
	for i := 0; i < dropped; i++ {
		if b.OnDrop != nil {
			b.OnDrop()
		}
	}
	if dropped > 0 && b.OnSubscribers != nil {
		b.OnSubscribers(n)
	}
}

// Subscribe registers a consumer: replay holds the retained history (in
// order, already sequence-stamped) and ch delivers every event published
// after the snapshot — the two never overlap and never gap. The channel
// is closed when the subscriber is dropped for falling behind or the
// broadcaster closes; cancel unsubscribes (idempotent, safe after drop).
func (b *Broadcaster) Subscribe() (replay []JobEvent, ch <-chan JobEvent, cancel func()) {
	c := make(chan JobEvent, b.subBuf)
	b.mu.Lock()
	replay = make([]JobEvent, 0, b.count)
	for i := 0; i < b.count; i++ {
		replay = append(replay, b.ring[(b.start+i)%len(b.ring)])
	}
	if b.closed {
		close(c)
		b.mu.Unlock()
		return replay, c, func() {}
	}
	b.subs[c] = struct{}{}
	n := len(b.subs)
	b.mu.Unlock()
	if b.OnSubscribers != nil {
		b.OnSubscribers(n)
	}
	cancel = func() {
		b.mu.Lock()
		_, ok := b.subs[c]
		if ok {
			delete(b.subs, c)
			close(c)
		}
		n := len(b.subs)
		closed := b.closed
		b.mu.Unlock()
		if ok && !closed && b.OnSubscribers != nil {
			b.OnSubscribers(n)
		}
	}
	return replay, c, cancel
}

// Close ends the stream: every subscriber's channel is closed and later
// Publish calls are dropped.
func (b *Broadcaster) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	for ch := range b.subs {
		delete(b.subs, ch)
		close(ch)
	}
	b.mu.Unlock()
	if b.OnSubscribers != nil {
		b.OnSubscribers(0)
	}
}

// Stats reports the broadcaster's lifetime counters: current subscriber
// count, subscribers dropped for falling behind, and history evictions.
func (b *Broadcaster) Stats() (subscribers int, dropped, evicted int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs), b.dropped, b.evicted
}
