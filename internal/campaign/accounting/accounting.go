// Package accounting attributes the resources a campaign consumed — and
// the resources it avoided consuming — in simulated core-seconds and
// wall-clock worker-seconds. It is the paper's Eq. 5-9 assessment turned
// into a ledger: every evaluated job is charged for the core-seconds its
// components held (split busy vs idle per component class), every cache
// hit is credited to the tier that served it, and the totals roll up per
// campaign, per node, and — via Merge — per fleet.
//
// The package is dependency-free (stdlib plus the obs and trace layers it
// accounts for) and deterministic: a job ledger is a pure function of the
// execution trace, and snapshot rollups sum entries in sorted-hash order
// so float accumulation order is independent of job completion order.
// Ledgers derived from simulated time are therefore byte-identical
// run-to-run.
package accounting

import (
	"sort"
	"sync"

	"ensemblekit/internal/obs"
	"ensemblekit/internal/trace"
)

// Component classes a job's simulated core-seconds are attributed to.
const (
	// ClassSimulation covers the simulation executables: stage S (busy)
	// and I^S (idle — cores held while blocked on the in situ coupling).
	ClassSimulation = "simulation"
	// ClassAnalysis covers the analysis executables: stage A (busy) and
	// I^A (idle).
	ClassAnalysis = "analysis"
	// ClassStaging is the producer-side data movement into the data
	// transport layer: stage W, charged to the simulation's cores.
	ClassStaging = "staging"
	// ClassNetwork is the consumer-side read over the interconnect:
	// stage R, charged to the analysis's cores.
	ClassNetwork = "network"
)

// Tiers core-seconds can be credited to instead of spent.
const (
	// TierMemory is the in-process LRU result cache.
	TierMemory = "memory"
	// TierDisk is the on-disk content-addressed store.
	TierDisk = "disk"
	// TierFleet is a peer's cache reached through the pool fabric.
	TierFleet = "fleet"
	// TierPlanCache is the campaign World's frozen-plan reuse. Unlike the
	// cache tiers it is an overlapping credit: the job still executed (its
	// core-seconds are in the spent ledger), but planning was skipped.
	TierPlanCache = "plancache"
	// TierFastPath is the steady-state closed form replacing the DES.
	// Also an overlapping credit: the job's simulated core-seconds are
	// identical to a full DES run and stay in the spent ledger; what was
	// avoided is dispatching the event loop.
	TierFastPath = "fastpath"
)

// CacheTiers are the tiers whose credits substitute for execution: each
// submission contributes its core-seconds to exactly one of spent or a
// cache tier, so spent + saved(CacheTiers) equals the cost of the same
// submissions with caching disabled.
var CacheTiers = []string{TierMemory, TierDisk, TierFleet}

// Split is busy vs idle core-seconds of one component class.
type Split struct {
	Busy float64 `json:"busy"`
	Idle float64 `json:"idle"`
}

// add accumulates o scaled by k.
func (s *Split) add(o Split, k float64) {
	s.Busy += o.Busy * k
	s.Idle += o.Idle * k
}

// JobLedger attributes one job's simulated core-seconds by component
// class. Staging and network are pure transfer stages, so their idle
// halves are structurally zero; the fields are kept for a uniform shape.
type JobLedger struct {
	Simulation Split `json:"simulation"`
	Analysis   Split `json:"analysis"`
	Staging    Split `json:"staging"`
	Network    Split `json:"network"`
}

// classes iterates the ledger's splits in declaration order.
func (l *JobLedger) classes() [4]*Split {
	return [4]*Split{&l.Simulation, &l.Analysis, &l.Staging, &l.Network}
}

// Classes returns the class names in the ledger's field order.
func Classes() [4]string {
	return [4]string{ClassSimulation, ClassAnalysis, ClassStaging, ClassNetwork}
}

// Splits returns the ledger's splits in the same order as Classes.
func (l JobLedger) Splits() [4]Split {
	return [4]Split{l.Simulation, l.Analysis, l.Staging, l.Network}
}

// Busy returns the total busy core-seconds across classes.
func (l JobLedger) Busy() float64 {
	return l.Simulation.Busy + l.Analysis.Busy + l.Staging.Busy + l.Network.Busy
}

// Idle returns the total idle core-seconds across classes.
func (l JobLedger) Idle() float64 {
	return l.Simulation.Idle + l.Analysis.Idle + l.Staging.Idle + l.Network.Idle
}

// Total returns busy + idle core-seconds across classes.
func (l JobLedger) Total() float64 { return l.Busy() + l.Idle() }

// addScaled accumulates o scaled by k, class by class.
func (l *JobLedger) addScaled(o JobLedger, k float64) {
	dst, src := l.classes(), o.classes()
	for i := range dst {
		dst[i].add(*src[i], k)
	}
}

// Class indexes into Classes()/classes() order.
const (
	idxSimulation = iota
	idxAnalysis
	idxStaging
	idxNetwork
)

// classState maps a trace stage name (obs StageBegin/StageEnd Detail) to
// the ledger class it charges and whether the time is busy. The mapping
// follows the paper's six-stage cycle: S and I^S are the simulation's
// compute and coupling-idle time, W is the producer-side put into the
// DTL, R is the consumer-side get, A and I^A are the analysis's compute
// and idle time.
func classState(stage string) (class int, busy bool, ok bool) {
	switch stage {
	case trace.StageS.String():
		return idxSimulation, true, true
	case trace.StageIS.String():
		return idxSimulation, false, true
	case trace.StageW.String():
		return idxStaging, true, true
	case trace.StageR.String():
		return idxNetwork, true, true
	case trace.StageA.String():
		return idxAnalysis, true, true
	case trace.StageIA.String():
		return idxAnalysis, false, true
	}
	return 0, false, false
}

// Collector folds an obs event stream into a JobLedger using
// obs.Utilization accumulators: each (class, state) pair keeps a
// concurrency timeline in cores, raised on StageBegin and lowered on
// StageEnd, and the accumulated area is the class's core-seconds. It is
// built for post-hoc streams reconstructed with obs.FromTrace, whose
// stable ordering guarantees a component's ResourceAcquire (carrying its
// core count) immediately precedes its ProcStart at the same timestamp.
type Collector struct {
	pendingCores float64
	cores        map[string]float64 // component name -> cores
	acc          [4][2]obs.Utilization
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{cores: make(map[string]float64)}
}

// accFor returns the accumulator for a stage name, or nil for stages the
// ledger does not account (none exist today).
func (c *Collector) accFor(stage string) *obs.Utilization {
	class, busy, ok := classState(stage)
	if !ok {
		return nil
	}
	state := 1 // idle
	if busy {
		state = 0
	}
	return &c.acc[class][state]
}

// Observe folds one event into the collector.
func (c *Collector) Observe(e obs.Event) {
	switch e.Kind {
	case obs.ResourceAcquire:
		c.pendingCores = e.Value
	case obs.ProcStart:
		c.cores[e.Subject] = c.pendingCores
		c.pendingCores = 0
	case obs.StageBegin:
		if u := c.accFor(e.Detail); u != nil {
			u.Add(e.T, c.cores[e.Subject])
		}
	case obs.StageEnd:
		if u := c.accFor(e.Detail); u != nil {
			u.Add(e.T, -c.cores[e.Subject])
		}
	}
}

// Ledger returns the accumulated core-seconds. Every StageEnd advances
// its accumulator, so the areas are complete without a closing step.
func (c *Collector) Ledger() JobLedger {
	var l JobLedger
	dst := l.classes()
	for i := range c.acc {
		dst[i].Busy = c.acc[i][0].Area()
		dst[i].Idle = c.acc[i][1].Area()
	}
	return l
}

// FromEvents builds a job ledger from an obs event stream.
func FromEvents(events []obs.Event) JobLedger {
	c := NewCollector()
	for _, e := range events {
		c.Observe(e)
	}
	return c.Ledger()
}

// FromTrace builds a job ledger from an execution trace. The result is a
// pure function of the trace: byte-identical traces (the engine's
// determinism guarantee) yield bit-identical ledgers.
func FromTrace(tr *trace.EnsembleTrace) JobLedger {
	if tr == nil {
		return JobLedger{}
	}
	return FromEvents(obs.FromTrace(tr))
}

// WallClock accumulates the real-time cost of running a scope's jobs.
// Unlike the simulated sections it is not deterministic and is excluded
// from byte-identity comparisons.
type WallClock struct {
	// WorkerSeconds is wall time workers spent executing (or waiting on a
	// forwarded peer for) this scope's jobs.
	WorkerSeconds float64 `json:"workerSeconds"`
	// QueueWaitSeconds is wall time jobs spent enqueued before pickup.
	QueueWaitSeconds float64 `json:"queueWaitSeconds"`
	// RetryWastedSeconds is wall time spent on attempts that failed and
	// were retried — work the ledger charged but no result came from.
	RetryWastedSeconds float64 `json:"retryWastedSeconds"`
}

func (w *WallClock) add(o WallClock) {
	w.WorkerSeconds += o.WorkerSeconds
	w.QueueWaitSeconds += o.QueueWaitSeconds
	w.RetryWastedSeconds += o.RetryWastedSeconds
}

// Saved is core-seconds avoided, by tier. Memory, disk, and fleet are
// substituting credits (the submission did not execute); plancache and
// fastpath are overlapping credits on executed jobs (see the tier
// constants).
type Saved struct {
	Memory    float64 `json:"memory"`
	Disk      float64 `json:"disk"`
	Fleet     float64 `json:"fleet"`
	PlanCache float64 `json:"plancache"`
	FastPath  float64 `json:"fastpath"`
}

// CacheTotal returns the substituting credits: memory + disk + fleet.
func (s Saved) CacheTotal() float64 { return s.Memory + s.Disk + s.Fleet }

func (s *Saved) add(o Saved) {
	s.Memory += o.Memory
	s.Disk += o.Disk
	s.Fleet += o.Fleet
	s.PlanCache += o.PlanCache
	s.FastPath += o.FastPath
}

// tierField returns the addressed tier bucket, or nil for unknown tiers.
func (s *Saved) tierField(tier string) *float64 {
	switch tier {
	case TierMemory:
		return &s.Memory
	case TierDisk:
		return &s.Disk
	case TierFleet:
		return &s.Fleet
	case TierPlanCache:
		return &s.PlanCache
	case TierFastPath:
		return &s.FastPath
	}
	return nil
}

// Simulated is the deterministic section of a snapshot: core-seconds in
// simulated time, spent and saved. Field order is fixed; byte-identity
// tests pin this section's JSON.
type Simulated struct {
	// Spent is the per-class ledger of executed submissions.
	Spent JobLedger `json:"spent"`
	// SpentTotal is Spent summed over classes and states.
	SpentTotal float64 `json:"spentTotal"`
	// Saved is core-seconds avoided per tier.
	Saved Saved `json:"saved"`
	// SavedCacheTotal is the substituting credits (memory+disk+fleet).
	// SpentTotal + SavedCacheTotal equals the cost of the same
	// submissions run uncached.
	SavedCacheTotal float64 `json:"savedCacheTotal"`
}

func (s *Simulated) add(o Simulated) {
	s.Spent.addScaled(o.Spent, 1)
	s.SpentTotal += o.SpentTotal
	s.Saved.add(o.Saved)
	s.SavedCacheTotal += o.SavedCacheTotal
}

// Snapshot is one scope's rollup at a point in time: a campaign, a node,
// or (after Merge) the fleet. JSON field order is fixed by declaration
// order and must stay stable — clients and goldens depend on it.
type Snapshot struct {
	// Jobs is the number of distinct job hashes the scope has seen.
	Jobs int `json:"jobs"`
	// Executed counts submissions whose core-seconds were spent.
	Executed int64 `json:"executed"`
	// CacheServed counts submissions served by a cache tier instead.
	CacheServed int64 `json:"cacheServed"`
	// Simulated is the deterministic core-second ledger.
	Simulated Simulated `json:"simulated"`
	// WallClock is the real-time cost (not deterministic).
	WallClock WallClock `json:"wallClock"`
}

// Merge sums per-node snapshots into a fleet rollup, in the given order.
// Callers pass nodes sorted by ID so the float accumulation order — and
// therefore the rollup bytes — are reproducible.
func Merge(snaps []Snapshot) Snapshot {
	var out Snapshot
	for _, s := range snaps {
		out.Jobs += s.Jobs
		out.Executed += s.Executed
		out.CacheServed += s.CacheServed
		out.Simulated.add(s.Simulated)
		out.WallClock.add(s.WallClock)
	}
	return out
}

// entry is the per-hash record inside a Ledger. A hash identifies a
// job's content, so every submission of it shares one JobLedger; the
// counts record how many submissions executed vs were served per tier.
type entry struct {
	ledger JobLedger
	spent  int64
	saved  map[string]int64
}

// Ledger is a thread-safe rollup of job outcomes for one scope. Records
// arrive in completion order (nondeterministic under concurrency);
// Snapshot re-sums them in sorted-hash order so the rollup is
// deterministic anyway.
type Ledger struct {
	mu      sync.Mutex
	entries map[string]*entry
	wall    WallClock
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{entries: make(map[string]*entry)}
}

func (l *Ledger) entryLocked(hash string, jl JobLedger) *entry {
	e, ok := l.entries[hash]
	if !ok {
		e = &entry{ledger: jl, saved: make(map[string]int64)}
		l.entries[hash] = e
	}
	return e
}

// RecordSpent charges one executed submission of hash with its ledger.
func (l *Ledger) RecordSpent(hash string, jl JobLedger) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entryLocked(hash, jl).spent++
}

// RecordSaved credits one submission of hash to tier. Unknown tiers are
// ignored.
func (l *Ledger) RecordSaved(hash string, jl JobLedger, tier string) {
	if (&Saved{}).tierField(tier) == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entryLocked(hash, jl).saved[tier]++
}

// RecordWall accumulates worker execution and queue-wait wall seconds.
func (l *Ledger) RecordWall(workerSec, queueWaitSec float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.wall.WorkerSeconds += workerSec
	l.wall.QueueWaitSeconds += queueWaitSec
}

// RecordRetryWaste accumulates wall seconds burned on failed attempts.
func (l *Ledger) RecordRetryWaste(sec float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.wall.RetryWastedSeconds += sec
}

// Snapshot rolls the ledger up. Entries are summed in sorted-hash order,
// each scaled by its multiplicity, so identical histories produce
// bit-identical simulated sections regardless of completion order.
func (l *Ledger) Snapshot() Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	hashes := make([]string, 0, len(l.entries))
	for h := range l.entries {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	snap := Snapshot{Jobs: len(hashes), WallClock: l.wall}
	for _, h := range hashes {
		e := l.entries[h]
		if e.spent > 0 {
			snap.Executed += e.spent
			snap.Simulated.Spent.addScaled(e.ledger, float64(e.spent))
		}
		total := e.ledger.Total()
		for _, tier := range [5]string{TierMemory, TierDisk, TierFleet, TierPlanCache, TierFastPath} {
			n := e.saved[tier]
			if n == 0 {
				continue
			}
			*snap.Simulated.Saved.tierField(tier) += total * float64(n)
		}
		for _, tier := range CacheTiers {
			snap.CacheServed += e.saved[tier]
		}
	}
	snap.Simulated.SpentTotal = snap.Simulated.Spent.Total()
	snap.Simulated.SavedCacheTotal = snap.Simulated.Saved.CacheTotal()
	return snap
}
