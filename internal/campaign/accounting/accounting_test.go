package accounting

import (
	"encoding/json"
	"math"
	"testing"

	"ensemblekit/internal/trace"
)

// syntheticTrace builds one member with known stage durations and core
// counts: a 2-core simulation running S=10, W=2, I^S=3 per step and a
// 1-core analysis running R=1, A=5, I^A=0.5 per step, for two steps.
func syntheticTrace() *trace.EnsembleTrace {
	mkSteps := func(stages []trace.Stage, durs []float64, origin float64) []trace.StepRecord {
		var steps []trace.StepRecord
		t := origin
		for i := 0; i < 2; i++ {
			var recs []trace.StageRecord
			for j, s := range stages {
				recs = append(recs, trace.StageRecord{Stage: s, Start: t, Duration: durs[j]})
				t += durs[j]
			}
			steps = append(steps, trace.StepRecord{Index: i, Stages: recs})
		}
		return steps
	}
	sim := &trace.ComponentTrace{
		Name: "m0.sim", Kind: trace.KindSimulation, Nodes: []int{0}, Cores: 2,
		Start: 0, End: 30,
		Steps: mkSteps([]trace.Stage{trace.StageS, trace.StageW, trace.StageIS}, []float64{10, 2, 3}, 0),
	}
	an := &trace.ComponentTrace{
		Name: "m0.a0", Kind: trace.KindAnalysis, Nodes: []int{1}, Cores: 1,
		Start: 0, End: 13,
		Steps: mkSteps([]trace.Stage{trace.StageR, trace.StageA, trace.StageIA}, []float64{1, 5, 0.5}, 0),
	}
	return &trace.EnsembleTrace{Members: []*trace.MemberTrace{{
		Index: 0, Simulation: sim, Analyses: []*trace.ComponentTrace{an},
	}}}
}

func TestFromTraceClassAttribution(t *testing.T) {
	l := FromTrace(syntheticTrace())
	// Two steps, durations scaled by component cores.
	want := JobLedger{
		Simulation: Split{Busy: 2 * 10 * 2, Idle: 2 * 3 * 2},
		Analysis:   Split{Busy: 2 * 5 * 1, Idle: 2 * 0.5 * 1},
		Staging:    Split{Busy: 2 * 2 * 2},
		Network:    Split{Busy: 2 * 1 * 1},
	}
	if l != want {
		t.Fatalf("ledger = %+v, want %+v", l, want)
	}
	if got, wantTotal := l.Total(), 40.0+12+10+1+8+2; got != wantTotal {
		t.Fatalf("Total() = %v, want %v", got, wantTotal)
	}
	if l.Busy()+l.Idle() != l.Total() {
		t.Fatalf("Busy+Idle = %v, want %v", l.Busy()+l.Idle(), l.Total())
	}
}

func TestFromTraceNilAndEmpty(t *testing.T) {
	if l := FromTrace(nil); l != (JobLedger{}) {
		t.Fatalf("nil trace ledger = %+v, want zero", l)
	}
	if l := FromTrace(&trace.EnsembleTrace{}); l != (JobLedger{}) {
		t.Fatalf("empty trace ledger = %+v, want zero", l)
	}
}

// TestSnapshotOrderIndependence records the same outcomes in two
// different completion orders and requires bit-identical snapshots —
// the property the per-campaign ledgers rely on for byte-identical JSON.
func TestSnapshotOrderIndependence(t *testing.T) {
	jl1 := FromTrace(syntheticTrace())
	jl2 := jl1
	jl2.Simulation.Busy *= 1.7 // a second, different job

	a := NewLedger()
	a.RecordSpent("h1", jl1)
	a.RecordSpent("h2", jl2)
	a.RecordSaved("h1", jl1, TierMemory)
	a.RecordSaved("h2", jl2, TierFleet)

	b := NewLedger()
	b.RecordSaved("h2", jl2, TierFleet)
	b.RecordSpent("h2", jl2)
	b.RecordSaved("h1", jl1, TierMemory)
	b.RecordSpent("h1", jl1)

	aj, err := json.Marshal(a.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("snapshots differ:\n%s\n%s", aj, bj)
	}
}

func TestSnapshotCountsAndIdentity(t *testing.T) {
	jl := FromTrace(syntheticTrace())
	l := NewLedger()
	l.RecordSpent("h1", jl)
	l.RecordSaved("h1", jl, TierMemory)
	l.RecordSaved("h1", jl, TierMemory)
	l.RecordSaved("h1", jl, TierDisk)
	l.RecordSaved("h1", jl, TierFastPath) // overlapping credit, not cache-served
	l.RecordWall(2.5, 0.5)
	l.RecordRetryWaste(0.25)

	s := l.Snapshot()
	if s.Jobs != 1 || s.Executed != 1 || s.CacheServed != 3 {
		t.Fatalf("counts = jobs %d executed %d cacheServed %d, want 1/1/3", s.Jobs, s.Executed, s.CacheServed)
	}
	if s.Simulated.SpentTotal != jl.Total() {
		t.Fatalf("SpentTotal = %v, want %v", s.Simulated.SpentTotal, jl.Total())
	}
	wantSaved := 3 * jl.Total()
	if s.Simulated.SavedCacheTotal != wantSaved {
		t.Fatalf("SavedCacheTotal = %v, want %v", s.Simulated.SavedCacheTotal, wantSaved)
	}
	if s.Simulated.Saved.FastPath != jl.Total() {
		t.Fatalf("Saved.FastPath = %v, want %v", s.Simulated.Saved.FastPath, jl.Total())
	}
	// spent + cache-saved == cost of the 4 cache-relevant submissions uncached.
	if got, want := s.Simulated.SpentTotal+s.Simulated.SavedCacheTotal, 4*jl.Total(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("spent+savedCache = %v, want %v", got, want)
	}
	if s.WallClock.WorkerSeconds != 2.5 || s.WallClock.QueueWaitSeconds != 0.5 || s.WallClock.RetryWastedSeconds != 0.25 {
		t.Fatalf("wall clock = %+v", s.WallClock)
	}
}

func TestMergeSumsSnapshots(t *testing.T) {
	jl := FromTrace(syntheticTrace())
	l1, l2 := NewLedger(), NewLedger()
	l1.RecordSpent("h1", jl)
	l1.RecordWall(1, 0.5)
	l2.RecordSpent("h2", jl)
	l2.RecordSaved("h1", jl, TierFleet)
	s1, s2 := l1.Snapshot(), l2.Snapshot()
	m := Merge([]Snapshot{s1, s2})
	if m.Jobs != 3 || m.Executed != 2 || m.CacheServed != 1 {
		t.Fatalf("merged counts = %d/%d/%d", m.Jobs, m.Executed, m.CacheServed)
	}
	if m.Simulated.SpentTotal != s1.Simulated.SpentTotal+s2.Simulated.SpentTotal {
		t.Fatalf("merged SpentTotal = %v", m.Simulated.SpentTotal)
	}
	if m.Simulated.Saved.Fleet != jl.Total() {
		t.Fatalf("merged Saved.Fleet = %v, want %v", m.Simulated.Saved.Fleet, jl.Total())
	}
	if m.WallClock.WorkerSeconds != 1 || m.WallClock.QueueWaitSeconds != 0.5 {
		t.Fatalf("merged wall = %+v", m.WallClock)
	}
}

func TestRecordSavedUnknownTierIgnored(t *testing.T) {
	l := NewLedger()
	l.RecordSaved("h1", JobLedger{}, "warp-drive")
	if s := l.Snapshot(); s.Jobs != 0 || s.CacheServed != 0 {
		t.Fatalf("unknown tier recorded: %+v", s)
	}
}
