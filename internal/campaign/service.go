package campaign

import (
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	gort "runtime"
	"runtime/debug"
	"sync"
	"time"

	"ensemblekit/internal/campaign/accounting"
	"ensemblekit/internal/campaign/journal"
	"ensemblekit/internal/obs"
	"ensemblekit/internal/runtime"
	"ensemblekit/internal/telemetry"
	"ensemblekit/internal/telemetry/tracing"
)

// Service errors.
var (
	// ErrQueueFull is returned by Submit when the job queue is at capacity:
	// backpressure is explicit rather than blocking the caller forever.
	ErrQueueFull = errors.New("campaign: job queue full")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("campaign: service closed")
)

// Config sizes the service.
type Config struct {
	// Workers is the number of concurrent simulation workers
	// (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// Submit returns ErrQueueFull beyond it (default 256).
	QueueDepth int
	// CacheBytes is the in-memory result-cache budget (default 256 MiB;
	// negative disables the memory tier).
	CacheBytes int64
	// CacheDir optionally persists results on disk, content-addressed by
	// job hash, so campaigns survive process restarts.
	CacheDir string
	// Recorder optionally receives service telemetry as obs events
	// (queue depth, counters for submissions/hits/misses/dedups). The
	// service snapshots the counters under its own lock but emits after
	// releasing it, serialized on a dedicated recorder mutex, so a slow
	// recorder (or sink) can never stall Submit or job completion.
	Recorder *obs.Recorder
	// Metrics optionally registers the service's Prometheus metrics
	// (queue depth and capacity, worker busy-time, per-status job
	// counts, queue-wait and execute-latency histograms, cache hit/miss/
	// dedup counters, cached bytes). Nil disables instrumentation at the
	// cost of one nil check per operation.
	Metrics *telemetry.Registry
	// Logger optionally receives structured service logs (job lifecycle
	// at debug, drops and rejects at warn).
	Logger *telemetry.Logger
	// Tracer optionally propagates distributed-trace spans through the
	// job lifecycle: every submission opens a job span (parented from the
	// submit context, so an HTTP request or campaign span becomes its
	// ancestor), with queue and execute child spans, and the DES run's
	// obs events bridged in as stage-level grandchildren. Nil disables
	// tracing at the cost of one nil check per site.
	Tracer *tracing.Tracer
	// EventHistory bounds the job-event replay ring of the service's
	// broadcaster (default 4096; negative disables replay).
	EventHistory int
	// EventBuffer is each event subscriber's channel buffer; a
	// subscriber that falls this far behind is dropped (default 256).
	EventBuffer int

	// JournalPath enables the write-ahead log: every job enqueue and
	// terminal state (and, via the HTTP server, every campaign) is
	// fsync'd there before the service acknowledges it, and NewService
	// replays the log — re-enqueueing every non-terminal job — so a
	// killed process resumes exactly where it stopped. Empty disables
	// journaling. Pair it with CacheDir so finished work replays as
	// cache hits instead of re-executing.
	JournalPath string
	// JournalCompactEvery bounds appends between automatic snapshot
	// compactions (0 = default 4096, negative disables).
	JournalCompactEvery int
	// Retry is the transient-failure retry policy applied to every job
	// (zero value = no retries).
	Retry RetryPolicy
	// ExecDelay artificially stretches every execution by this duration
	// (cancellable). It exists for the chaos harness and load tests —
	// real jobs finish too fast to kill a process "mid-flight"
	// reliably — and is a no-op in production configurations.
	ExecDelay time.Duration

	// MemberParallelism simulates eligible jobs' independent ensemble
	// members on separate cores, up to this degree per job (composes
	// with Workers). 0 keeps the joint single-environment path. The
	// trace — and the campaign fingerprint — is bit-identical at every
	// degree (see TestMemberParallelDeterminism).
	MemberParallelism int
	// FastPath answers fault-free steady-state-eligible jobs from the
	// Eq. 1-9 closed forms instead of the DES, bit-identically (see
	// TestFastPathBitIdentical). Ineligible jobs fall through to the
	// DES untouched. Counted by campaign_fastpath_hits_total.
	FastPath bool
	// VerifyFastPath additionally re-runs every fast-path hit through
	// the DES and fails the job if the derived quantities disagree
	// beyond float tolerance (implies FastPath; the cross-check mode
	// for validating the closed forms, not a production setting).
	// Counted by campaign_fastpath_verified_total.
	VerifyFastPath bool

	// runFn overrides job execution (tests count real simulations with
	// it). Nil runs Execute.
	runFn func(context.Context, JobSpec) (*Result, error)
}

func (c Config) normalized() Config {
	if c.Workers <= 0 {
		c.Workers = gort.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.EventHistory == 0 {
		c.EventHistory = 4096
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 256
	}
	c.Retry = c.Retry.normalized()
	if c.VerifyFastPath {
		c.FastPath = true
	}
	// runFn's default is installed by NewService (Service.defaultRun): it
	// needs the service's World and metrics, which don't exist yet here.
	return c
}

// Status is a job's lifecycle state.
type Status string

const (
	// StatusQueued marks a job waiting for a worker.
	StatusQueued Status = "queued"
	// StatusRunning marks a job occupying a worker.
	StatusRunning Status = "running"
	// StatusDone marks a completed job with a result.
	StatusDone Status = "done"
	// StatusFailed marks a job whose execution returned an error.
	StatusFailed Status = "failed"
	// StatusCancelled marks a job cancelled before completion.
	StatusCancelled Status = "cancelled"
)

// Job is a submitted evaluation. Wait for its result, Cancel to abandon
// it. Jobs returned for cache hits are already done; jobs returned for
// duplicate submissions are shared with the first submitter.
type Job struct {
	// ID identifies the job within the service ("j-17").
	ID string
	// Hash is the content address of the spec.
	Hash string
	// Label is the submitter's display label.
	Label string
	// Priority orders the queue (higher runs first).
	Priority int
	// CacheHit reports that the job was answered from the cache without
	// queueing.
	CacheHit bool

	spec     JobSpec
	campaign string // campaign tag for the event stream
	seq      int64
	ctx      context.Context
	cancel   context.CancelFunc
	done     chan struct{}

	svc        *Service
	mu         sync.Mutex
	status     Status
	started    bool // a worker ever popped it (latency fields are valid)
	running    bool // currently occupying a worker (Running gauge owed a decrement)
	attempts   int  // completed retries under the retry policy
	enqueuedAt time.Time
	startedAt  time.Time
	result     *Result
	err        error
	reason     string // human cause for failed/cancelled jobs
	node       string // pool node that executed the job ("" before routing)
	servedVia  string // how the result arrived (servedLocal/servedFleet/servedForward)

	// Trace spans (nil when the service has no tracer). span is the root
	// of the job's subtree; queueSpan covers enqueue → pickup, execSpan
	// pickup → completion. span and queueSpan are set before the job is
	// published; execSpan is set by the worker under j.mu.
	span      *tracing.Span
	queueSpan *tracing.Span
	execSpan  *tracing.Span
}

// Status returns the job's current state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Result returns the result and error of a finished job (nil, nil while
// the job is still pending).
func (j *Job) Result() (*Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Wait blocks until the job finishes or ctx is done. A ctx expiry leaves
// the job running (other waiters may still want it); use Cancel to
// abandon the work itself.
func (j *Job) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-j.done:
		return j.Result()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Cancel abandons the job: a queued job is removed from the queue, a
// running job's result is discarded when the worker returns (the
// cooperative simulation itself is not interruptible mid-run). Cancelled
// jobs never enter the cache. Cancelling a shared (deduplicated) job
// cancels it for every submitter.
func (j *Job) Cancel() {
	j.cancel()
	j.svc.dropQueued(j)
}

// Spec returns the job's spec.
func (j *Job) Spec() JobSpec { return j.spec }

// TraceID returns the hex trace ID of the trace the job belongs to, or
// "" when the service runs untraced.
func (j *Job) TraceID() string { return j.span.TraceID() }

// SpanID returns the hex span ID of the job's root span, or "".
func (j *Job) SpanID() string { return j.span.SpanID() }

// Reason returns the human-readable cause of a failed or cancelled
// job ("cancelled by submitter", "service shutdown", the worker error,
// ...); empty while pending and on success.
func (j *Job) Reason() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.reason
}

// Node returns the ID of the pool node the job ran on (or is running
// on); "" on a fabric-less service or before routing resolved.
func (j *Job) Node() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.node
}

func (j *Job) setNode(id string) {
	j.mu.Lock()
	j.node = id
	j.mu.Unlock()
}

func (j *Job) setServed(via string) {
	j.mu.Lock()
	j.servedVia = via
	j.mu.Unlock()
}

// Stats is a snapshot of the service's counters.
type Stats struct {
	// Submitted counts Submit calls that were admitted (including cache
	// hits and deduplicated attaches).
	Submitted int64 `json:"submitted"`
	// Completed, Failed and Cancelled count finished executions.
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	// CacheHits counts submissions answered from the cache; DiskHits and
	// FleetHits are the subsets served by the on-disk tier and by a
	// peer's cache over the pool fabric (the remainder is the in-memory
	// tier). CacheMisses counts submissions that enqueued a new
	// execution.
	CacheHits   int64 `json:"cacheHits"`
	DiskHits    int64 `json:"diskHits"`
	FleetHits   int64 `json:"fleetHits"`
	CacheMisses int64 `json:"cacheMisses"`
	// Dedups counts submissions attached to an identical in-flight job
	// (singleflight).
	Dedups int64 `json:"dedups"`
	// Rejected counts Submit calls bounced with ErrQueueFull.
	Rejected int64 `json:"rejected"`
	// Retries counts re-enqueues of transiently-failed jobs; Quarantined
	// counts jobs failed terminally after exhausting retry attempts.
	Retries     int64 `json:"retries"`
	Quarantined int64 `json:"quarantined"`
	// WorkerPanics counts job panics recovered by the worker pool.
	WorkerPanics int64 `json:"workerPanics"`
	// CacheCorrupt counts disk-cache entries evicted on checksum mismatch.
	CacheCorrupt int64 `json:"cacheCorrupt"`
	// JournalReplayed counts jobs re-enqueued from the journal at startup.
	JournalReplayed int64 `json:"journalReplayed"`
	// FastPathHits counts jobs answered by the closed-form steady-state
	// fast path; FastPathVerified is the subset that additionally passed
	// the DES cross-check (Config.VerifyFastPath).
	FastPathHits     int64 `json:"fastPathHits"`
	FastPathVerified int64 `json:"fastPathVerified"`
	// QueueDepth and Running describe the pool right now; QueueCapacity
	// is the configured bound the depth saturates at.
	QueueDepth    int `json:"queueDepth"`
	QueueCapacity int `json:"queueCapacity"`
	Running       int `json:"running"`
	Workers       int `json:"workers"`
	// CacheEntries and CacheBytes describe the in-memory cache tier.
	CacheEntries int   `json:"cacheEntries"`
	CacheBytes   int64 `json:"cacheBytes"`
}

// HitRate returns the fraction of cache-answerable submissions served
// from the cache (hits / (hits + misses)); 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Service is the concurrent ensemble-evaluation engine: a bounded
// priority queue feeding a worker pool, fronted by a content-addressed
// result cache with singleflight deduplication. All methods are safe for
// concurrent use.
type Service struct {
	cfg     Config
	metrics serviceMetrics
	events  *Broadcaster
	log     *telemetry.Logger

	// world is the campaign's shared immutable simulation state: frozen
	// plans plus the recycled-environment arena. Every worker borrows
	// from it; it is created once in NewService and never replaced.
	world *runtime.World

	// journal is the write-ahead log (nil when Config.JournalPath is
	// empty); replayedCamps holds the campaigns that were open in it at
	// startup, for the HTTP server to resume.
	journal       *journal.Journal
	replayedCamps []journal.Record

	mu          sync.Mutex
	space       *sync.Cond // signalled when queue slots free up
	work        *sync.Cond // signalled when work arrives
	queue       jobQueue
	inflight    map[string]*Job      // hash -> queued or running job
	jobs        map[string]*Job      // id -> every job ever returned
	retryTimers map[*Job]*time.Timer // jobs waiting out a retry backoff
	cache       *resultCache
	stats       Stats
	closed      bool
	seq         int64

	// fabric routes executions across the pool when set (see SetFabric);
	// nodeID is this node's advertised pool identity. remoteFlights is
	// the owner-side singleflight for forwarded executions, keyed by
	// spec hash.
	fabric        Fabric
	nodeID        string
	remoteFlights map[string]*remoteFlight

	// acct holds the per-campaign and node resource ledgers (always
	// present; has its own locking).
	acct *accountant

	// recMu serializes obs recorder emissions; it is never held together
	// with s.mu, so a slow recorder cannot stall the hot paths.
	recMu sync.Mutex

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
}

// serviceMetrics bundles the Prometheus handles the hot paths touch.
// Every handle is nil (a no-op) when Config.Metrics is nil.
type serviceMetrics struct {
	submitted      *telemetry.Counter
	rejected       *telemetry.Counter
	dedups         *telemetry.Counter
	cacheHits      *telemetry.Counter
	diskHits       *telemetry.Counter
	fleetHits      *telemetry.Counter
	cacheMisses    *telemetry.Counter
	finished       *telemetry.CounterVec // by terminal status
	queueDepth     *telemetry.Gauge
	queueCap       *telemetry.Gauge
	running        *telemetry.Gauge
	workers        *telemetry.Gauge
	cacheItems     *telemetry.Gauge
	cacheBytes     *telemetry.Gauge
	busySeconds    *telemetry.Counter
	queueWait      *telemetry.Histogram
	execLatency    *telemetry.Histogram
	events         *telemetry.Counter
	subscribers    *telemetry.Gauge
	subsDropped    *telemetry.Counter
	retries        *telemetry.Counter
	quarantined    *telemetry.Counter
	workerPanics   *telemetry.Counter
	cacheCorrupt   *telemetry.Counter
	journalAppends *telemetry.Counter
	journalReplays *telemetry.Counter
	journalCompact *telemetry.Counter
	fastpathHits   *telemetry.Counter
	fastpathVerify *telemetry.Counter
	coreSeconds    *telemetry.CounterVec // by component class and busy/idle state
	coreSaved      *telemetry.CounterVec // by serving tier
}

func newServiceMetrics(r *telemetry.Registry) serviceMetrics {
	if r == nil {
		return serviceMetrics{}
	}
	return serviceMetrics{
		submitted: r.Counter("campaign_submitted_total",
			"Admitted submissions, including cache hits and dedup attaches."),
		rejected: r.Counter("campaign_queue_rejected_total",
			"Submissions bounced with ErrQueueFull (non-blocking backpressure)."),
		dedups: r.Counter("campaign_dedup_total",
			"Submissions attached to an identical in-flight job (singleflight)."),
		cacheHits: r.Counter("campaign_cache_hits_total",
			"Submissions answered from the result cache."),
		diskHits: r.Counter("campaign_cache_disk_hits_total",
			"Cache hits served by the on-disk tier."),
		fleetHits: r.Counter("campaign_cache_fleet_hits_total",
			"Cache hits served by a peer's cache over the pool fabric."),
		cacheMisses: r.Counter("campaign_cache_misses_total",
			"Submissions that enqueued a new execution."),
		finished: r.CounterVec("campaign_jobs_finished_total",
			"Executed jobs by terminal status.", "status"),
		queueDepth: r.Gauge("campaign_queue_depth",
			"Jobs waiting for a worker."),
		queueCap: r.Gauge("campaign_queue_capacity",
			"Configured queue bound (Submit rejects beyond it)."),
		running: r.Gauge("campaign_running_jobs",
			"Jobs occupying a worker right now."),
		workers: r.Gauge("campaign_workers",
			"Size of the worker pool."),
		cacheItems: r.Gauge("campaign_cache_entries",
			"Entries in the in-memory result-cache tier."),
		cacheBytes: r.Gauge("campaign_cache_bytes",
			"Bytes held by the in-memory result-cache tier."),
		busySeconds: r.Counter("campaign_worker_busy_seconds_total",
			"Cumulative wall time workers spent executing jobs."),
		queueWait: r.Histogram("campaign_queue_wait_seconds",
			"Wall time from enqueue to worker pickup.", nil),
		execLatency: r.Histogram("campaign_execute_seconds",
			"Wall time from worker pickup to job completion.", nil),
		events: r.Counter("campaign_events_published_total",
			"Job state-transition events published on the event stream."),
		subscribers: r.Gauge("campaign_event_subscribers",
			"Live event-stream subscribers."),
		subsDropped: r.Counter("campaign_event_subscribers_dropped_total",
			"Event subscribers dropped for falling behind their buffer."),
		retries: r.Counter("campaign_job_retries_total",
			"Transiently-failed jobs re-enqueued under the retry policy."),
		quarantined: r.Counter("campaign_jobs_quarantined_total",
			"Jobs failed terminally after exhausting retry attempts."),
		workerPanics: r.Counter("campaign_worker_panics_total",
			"Job panics recovered by the worker pool."),
		cacheCorrupt: r.Counter("campaign_cache_corrupt_total",
			"Disk-cache entries evicted on checksum mismatch."),
		journalAppends: r.Counter("campaign_journal_appends_total",
			"Records fsync'd to the write-ahead log."),
		journalReplays: r.Counter("campaign_journal_replayed_total",
			"Jobs re-enqueued from the journal at startup."),
		journalCompact: r.Counter("campaign_journal_compactions_total",
			"Snapshot compactions of the write-ahead log."),
		fastpathHits: r.Counter("campaign_fastpath_hits_total",
			"Jobs answered by the closed-form steady-state fast path."),
		fastpathVerify: r.Counter("campaign_fastpath_verified_total",
			"Fast-path hits that passed the DES cross-check."),
		coreSeconds: r.CounterVec("campaign_core_seconds_total",
			"Simulated core-seconds of jobs executed on this node, by component class and busy/idle state.",
			"class", "state"),
		coreSaved: r.CounterVec("campaign_core_seconds_saved_total",
			"Simulated core-seconds avoided on this node, by serving tier (cache tiers substitute for execution; plancache and fastpath are overlapping credits).",
			"tier"),
	}
}

// setCacheLocked mirrors the memory tier's occupancy; called under s.mu.
func (m *serviceMetrics) setCacheLocked(entries int, bytes int64) {
	m.cacheItems.Set(float64(entries))
	m.cacheBytes.Set(float64(bytes))
}

// NewService starts the worker pool. When Config.JournalPath is set it
// also opens (or recovers) the write-ahead log and synchronously replays
// it: every non-terminal job re-enters the queue — as a disk-cache hit
// when its result survived, as a fresh execution otherwise — before
// NewService returns. Callers must Close it.
func NewService(cfg Config) (*Service, error) {
	cfg = cfg.normalized()
	cache, err := newResultCache(cfg.CacheBytes, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	var jnl *journal.Journal
	var replay journal.State
	if cfg.JournalPath != "" {
		jnl, replay, err = journal.Open(cfg.JournalPath, cfg.JournalCompactEvery)
		if err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:           cfg,
		journal:       jnl,
		inflight:      make(map[string]*Job),
		jobs:          make(map[string]*Job),
		retryTimers:   make(map[*Job]*time.Timer),
		remoteFlights: make(map[string]*remoteFlight),
		acct:          newAccountant(),
		cache:         cache,
		baseCtx:       ctx,
		baseCancel:    cancel,
	}
	s.space = sync.NewCond(&s.mu)
	s.work = sync.NewCond(&s.mu)
	s.stats.Workers = cfg.Workers
	s.stats.QueueCapacity = cfg.QueueDepth
	s.log = cfg.Logger
	s.metrics = newServiceMetrics(cfg.Metrics)
	s.world = runtime.NewWorld()
	if s.cfg.runFn == nil {
		s.cfg.runFn = s.defaultRun
	}
	s.metrics.workers.Set(float64(cfg.Workers))
	s.metrics.queueCap.Set(float64(cfg.QueueDepth))
	if jnl != nil {
		jnl.OnAppend = func() { s.metrics.journalAppends.Inc() }
		jnl.OnCompact = func() { s.metrics.journalCompact.Inc() }
	}
	// The cache calls this under s.mu (its methods are guarded by it), so
	// it must not retake the service lock.
	cache.onCorrupt = func(hash string, err error) {
		s.stats.CacheCorrupt++
		s.metrics.cacheCorrupt.Inc()
		s.log.Warn("evicted corrupt disk-cache entry",
			"hash", hash, "err", err.Error())
	}
	s.events = NewBroadcaster(cfg.EventHistory, cfg.EventBuffer)
	s.events.OnDrop = func() {
		s.metrics.subsDropped.Inc()
		s.log.Warn("event subscriber dropped for falling behind",
			"buffer", cfg.EventBuffer)
	}
	s.events.OnSubscribers = func(n int) { s.metrics.subscribers.Set(float64(n)) }
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	if jnl != nil {
		s.replayedCamps = replay.Campaigns
		s.replayJournal(replay.Jobs)
		// Replay re-appended an enqueue record per pending job; fold the
		// log back to one snapshot so it never grows across restarts.
		if err := jnl.Compact(); err != nil {
			s.log.Warn("journal: post-replay compaction failed", "err", err.Error())
		}
		if st := jnl.Stats(); s.log.Enabled(telemetry.LevelInfo) &&
			(st.Replayed > 0 || st.TruncatedBytes > 0) {
			s.log.Info("journal replayed",
				"records", st.Replayed,
				"pendingJobs", len(replay.Jobs),
				"openCampaigns", len(replay.Campaigns),
				"truncatedBytes", st.TruncatedBytes)
		}
	}
	return s, nil
}

// defaultRun is the production runFn: the hinted serial execution — the
// shared World, the configured member parallelism, and the steady-state
// fast path with its optional DES cross-check — traced when the worker's
// execute span is recording.
func (s *Service) defaultRun(ctx context.Context, spec JobSpec) (*Result, error) {
	if d := s.cfg.ExecDelay; d > 0 {
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
	h := execHints{
		world:    s.world,
		members:  s.cfg.MemberParallelism,
		fastPath: s.cfg.FastPath,
		verify:   s.cfg.VerifyFastPath,
	}
	res, info, err := executeTracedHinted(ctx, s.cfg.Tracer, spec, h)
	if err != nil {
		if ctx.Err() == nil {
			// A simulated run is a pure function of its spec: an identical
			// re-run fails identically, so simulation errors never retry.
			return res, Permanent(err)
		}
		return res, err
	}
	// Stash how the run was served for the ledger: finish (or the
	// forward handler) claims it by result hash and credits the
	// plan-cache and fast-path tiers.
	s.acct.noteRunInfo(res.Hash, info)
	if !info.FastPath {
		return res, nil
	}
	s.metrics.fastpathHits.Inc()
	s.mu.Lock()
	s.stats.FastPathHits++
	s.mu.Unlock()
	if h.verify {
		if verr := verifyFastPath(spec, res, h); verr != nil {
			// A cross-check failure is a model bug: deterministic, never
			// retryable.
			return nil, Permanent(verr)
		}
		s.metrics.fastpathVerify.Inc()
		s.mu.Lock()
		s.stats.FastPathVerified++
		s.mu.Unlock()
	}
	return res, nil
}

// replayJournal re-submits every non-terminal job recorded in the
// journal, in original admission order. Jobs whose results survived in
// the disk cache resolve instantly as cache hits (and get their terminal
// record); the rest re-execute. A job whose recorded spec no longer
// decodes or validates is failed in the journal rather than replayed
// forever.
func (s *Service) replayJournal(pending []journal.Record) {
	for _, rec := range pending {
		var spec JobSpec
		err := json.Unmarshal(rec.Spec, &spec)
		if err == nil {
			_, err = s.submit(context.Background(), spec, SubmitOptions{
				Priority: rec.Priority,
				Label:    rec.Label,
				Campaign: rec.Campaign,
			}, true)
		}
		if err != nil {
			s.log.Warn("journal: dropping unreplayable job",
				"hash", rec.Hash, "err", err.Error())
			if jerr := s.journal.Append(journal.Record{
				Type: journal.TypeTerminal, Hash: rec.Hash,
				Status: string(StatusFailed), Reason: "replay: " + err.Error(),
			}); jerr != nil {
				s.log.Warn("journal: terminal append failed",
					"hash", rec.Hash, "err", jerr.Error())
			}
			continue
		}
		s.mu.Lock()
		s.stats.JournalReplayed++
		s.mu.Unlock()
		s.metrics.journalReplays.Inc()
	}
}

// Events returns the service's job-event broadcaster: every submission,
// worker pickup, and completion publishes a JobEvent on it. The SSE
// endpoint subscribes here.
func (s *Service) Events() *Broadcaster { return s.events }

// Metrics returns the registry the service instruments (nil when
// telemetry is off); the HTTP server shares it for per-route metrics.
func (s *Service) Metrics() *telemetry.Registry { return s.cfg.Metrics }

// Logger returns the service's structured logger (nil when logging is
// off).
func (s *Service) Logger() *telemetry.Logger { return s.log }

// Tracer returns the service's tracer (nil when tracing is off); the
// HTTP server shares it for request spans and the span endpoints.
func (s *Service) Tracer() *tracing.Tracer { return s.cfg.Tracer }

// Journal returns the service's write-ahead log (nil when journaling is
// off); the HTTP server appends campaign records to it.
func (s *Service) Journal() *journal.Journal { return s.journal }

// ReplayedCampaigns returns the campaigns that were open in the journal
// when the service started, in admission order; the HTTP server resumes
// them. Empty without a journal or after a clean shutdown with no open
// campaigns.
func (s *Service) ReplayedCampaigns() []journal.Record {
	return append([]journal.Record(nil), s.replayedCamps...)
}

// Ready reports the conditions currently blocking readiness — empty when
// the service can accept new campaigns. GET /readyz surfaces it.
func (s *Service) Ready() []string {
	s.mu.Lock()
	closed := s.closed
	saturated := len(s.queue.items) >= s.cfg.QueueDepth
	s.mu.Unlock()
	var blocked []string
	if closed {
		blocked = append(blocked, "service closed")
	}
	if saturated {
		blocked = append(blocked, "job queue saturated")
	}
	if err := s.journal.Healthy(); err != nil {
		blocked = append(blocked, "journal unwritable: "+err.Error())
	}
	return blocked
}

// Close stops accepting submissions, cancels queued and running jobs, and
// waits for the workers to exit.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	// Fail the queue: every queued job reports ErrClosed to its waiters.
	// Jobs waiting out a retry backoff are queued jobs too — stop their
	// timers so they fail now instead of resurrecting mid-shutdown. (A
	// timer that already fired loses the s.mu race here and finds its
	// map entry gone; enqueueRetry then does nothing.)
	queued := append([]*Job(nil), s.queue.items...)
	s.queue.items = nil
	for j, t := range s.retryTimers {
		t.Stop()
		queued = append(queued, j)
	}
	s.retryTimers = make(map[*Job]*time.Timer)
	s.work.Broadcast()
	s.space.Broadcast()
	s.mu.Unlock()

	for _, j := range queued {
		s.finish(j, nil, ErrClosed, StatusCancelled)
	}
	s.baseCancel()
	s.wg.Wait()
	s.events.Close()
	// Shutdown cancellations deliberately skipped their terminal journal
	// records (see finish), so everything unfinished stays pending in the
	// log and the next process resumes it.
	if err := s.journal.Close(); err != nil {
		s.log.Warn("journal: close failed", "err", err.Error())
	}
	if s.log.Enabled(telemetry.LevelInfo) {
		st := s.Stats()
		s.log.Info("campaign service closed",
			"completed", st.Completed, "failed", st.Failed,
			"cancelled", st.Cancelled)
	}
}

// SubmitOptions label and order a submission.
type SubmitOptions struct {
	// Priority orders the queue: higher-priority jobs run first; ties run
	// in submission order.
	Priority int
	// Label names the job in listings (defaults to the placement name).
	Label string
	// Campaign tags the job's events with a campaign ID so event-stream
	// subscribers can follow one campaign; RunCampaign sets it from
	// Sweep.Campaign.
	Campaign string
}

// Submit admits a job: served from the cache if its hash is known,
// attached to an identical in-flight job if one exists (singleflight),
// queued otherwise. Returns ErrQueueFull when the queue is at capacity —
// callers own their backpressure policy — and ErrClosed after Close.
func (s *Service) Submit(ctx context.Context, spec JobSpec, opts SubmitOptions) (*Job, error) {
	return s.submit(ctx, spec, opts, false)
}

// SubmitWait is Submit with blocking backpressure: instead of returning
// ErrQueueFull it waits for a queue slot (or ctx expiry). The campaign
// planner and the batch sweeps use it to fan out arbitrarily large
// expansions over the bounded queue.
func (s *Service) SubmitWait(ctx context.Context, spec JobSpec, opts SubmitOptions) (*Job, error) {
	return s.submit(ctx, spec, opts, true)
}

func (s *Service) submit(ctx context.Context, spec JobSpec, opts SubmitOptions, wait bool) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	hash, err := spec.Hash()
	if err != nil {
		return nil, err
	}
	label := opts.Label
	if label == "" {
		label = spec.Placement.Name
	}

	// ctx cancellation must break SubmitWait out of its cond wait; a
	// watcher goroutine broadcasting on expiry keeps the wait honest.
	if wait {
		stop := context.AfterFunc(ctx, func() {
			s.mu.Lock()
			s.space.Broadcast()
			s.mu.Unlock()
		})
		defer stop()
	}

	// The obs snapshot is captured under s.mu but emitted after it is
	// released (this deferred emitter was registered before the unlock
	// defer, so it runs after it): a slow recorder cannot stall submits.
	var snap *obsSnapshot
	defer func() { s.emitObs(snap) }()
	// Ledger credits for cache hits are likewise recorded after the
	// unlock: the trace walk is pure and needs no service state.
	var acctHit func()
	defer func() {
		if acctHit != nil {
			acctHit()
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil, ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s.stats.Submitted++
		// Cache tier first: a known hash never queues.
		res, fromDisk, err := s.cache.get(hash)
		if err != nil {
			return nil, err
		}
		if res != nil {
			s.stats.CacheHits++
			s.metrics.submitted.Inc()
			s.metrics.cacheHits.Inc()
			tier := accounting.TierMemory
			if fromDisk {
				s.stats.DiskHits++
				s.metrics.diskHits.Inc()
				tier = accounting.TierDisk
				// A disk hit admits into the memory tier.
				s.metrics.setCacheLocked(s.cache.stats())
			}
			hitRes, hitCamp := res, opts.Campaign
			acctHit = func() {
				s.acctSaved(hitCamp, hash, accounting.FromTrace(hitRes.Trace), tier)
			}
			snap = s.obsSnapshotLocked()
			return s.completedJobLocked(ctx, hash, label, opts.Campaign, res), nil
		}
		// Singleflight: identical concurrent submissions share one run.
		if j, ok := s.inflight[hash]; ok {
			s.stats.Dedups++
			s.metrics.submitted.Inc()
			s.metrics.dedups.Inc()
			snap = s.obsSnapshotLocked()
			return j, nil
		}
		s.stats.CacheMisses++
		if len(s.queue.items) < s.cfg.QueueDepth {
			break
		}
		s.stats.Submitted--
		s.stats.CacheMisses--
		if !wait {
			// The undo above reverses the optimistic miss accounting:
			// nothing was admitted.
			s.stats.Rejected++
			s.metrics.rejected.Inc()
			return nil, ErrQueueFull
		}
		s.space.Wait()
	}

	s.seq++
	s.metrics.submitted.Inc()
	s.metrics.cacheMisses.Inc()
	jctx, cancel := context.WithCancel(s.baseCtx)
	j := &Job{
		ID:         fmt.Sprintf("j-%d", s.seq),
		Hash:       hash,
		Label:      label,
		Priority:   opts.Priority,
		spec:       spec,
		campaign:   opts.Campaign,
		seq:        s.seq,
		ctx:        jctx,
		cancel:     cancel,
		done:       make(chan struct{}),
		svc:        s,
		status:     StatusQueued,
		enqueuedAt: time.Now(),
	}
	// The job span parents from the submit context (an HTTP request or
	// campaign span, in-process or remote via traceparent); the queue
	// span opens immediately and is ended by the worker at pickup. Both
	// are nil no-ops on an untraced service.
	_, j.span = s.cfg.Tracer.StartSpan(ctx, "job "+j.ID, "job",
		tracing.String("job.id", j.ID),
		tracing.String("job.hash", hash),
		tracing.String("job.label", label),
		tracing.Int("job.priority", opts.Priority))
	_, j.queueSpan = s.cfg.Tracer.StartSpan(
		tracing.ContextWithSpan(context.Background(), j.span), "queue", "queue")
	heap.Push(&s.queue, j)
	s.inflight[hash] = j
	s.jobs[j.ID] = j
	// Journal the admission before acknowledging it (the fsync happens
	// here, under s.mu, which serializes cold-path submits — cache hits
	// never pay it). A failed append degrades to non-durable operation
	// rather than rejecting the job.
	if s.journal != nil {
		specJSON, jerr := spec.CanonicalJSON()
		if jerr == nil {
			jerr = s.journal.Append(journal.Record{
				Type:     journal.TypeEnqueue,
				Hash:     hash,
				Label:    label,
				Campaign: opts.Campaign,
				Priority: opts.Priority,
				Spec:     specJSON,
			})
		}
		if jerr != nil {
			s.log.Warn("journal: enqueue append failed",
				"hash", hash, "err", jerr.Error())
		}
	}
	s.metrics.queueDepth.Set(float64(len(s.queue.items)))
	snap = s.obsSnapshotLocked()
	s.publish(j, string(StatusQueued), JobEvent{Time: j.enqueuedAt})
	s.work.Signal()
	return j, nil
}

// completedJobLocked wraps a cached result as an already-finished job so
// cache hits and real runs share one call shape. submitCtx carries the
// submitter's trace parent; a cache hit still leaves a (zero-queue,
// zero-execute) job span in the trace so campaigns with warm caches
// remain fully accounted for.
func (s *Service) completedJobLocked(submitCtx context.Context, hash, label, campaign string, res *Result) *Job {
	s.seq++
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	j := &Job{
		ID:       fmt.Sprintf("j-%d", s.seq),
		Hash:     hash,
		Label:    label,
		CacheHit: true,
		campaign: campaign,
		ctx:      ctx,
		cancel:   func() {},
		done:     make(chan struct{}),
		svc:      s,
		status:   StatusDone,
		result:   res,
	}
	_, j.span = s.cfg.Tracer.StartSpan(submitCtx, "job "+j.ID, "job",
		tracing.String("job.id", j.ID),
		tracing.String("job.hash", hash),
		tracing.String("job.label", label),
		tracing.Bool("job.cacheHit", true),
		tracing.Float("job.objective", res.Objective))
	j.span.End()
	close(j.done)
	s.jobs[j.ID] = j
	// A journal-pending job resolving from the cache (the replay path,
	// or a hit racing a restart) is terminal work: record it so the next
	// replay skips it. Ordinary cache hits were never pending and pay no
	// fsync here.
	if s.journal != nil && s.journal.Pending(hash) {
		if err := s.journal.Append(journal.Record{
			Type: journal.TypeTerminal, Hash: hash,
			Status: string(StatusDone), Reason: "cache",
		}); err != nil {
			s.log.Warn("journal: terminal append failed",
				"hash", hash, "err", err.Error())
		}
	}
	s.publish(j, EventCached, JobEvent{Objective: res.Objective, CacheHit: true})
	return j
}

// publish fills the job identity fields into base and hands it to the
// broadcaster. Callers may hold s.mu: Publish never blocks.
func (s *Service) publish(j *Job, status string, base JobEvent) {
	base.Job = j.ID
	base.Hash = j.Hash
	base.Label = j.Label
	base.Campaign = j.campaign
	base.Status = status
	if base.Node == "" {
		base.Node = j.Node()
	}
	if base.Time.IsZero() {
		base.Time = time.Now()
	}
	s.metrics.events.Inc()
	s.events.Publish(base)
}

// Job looks up a job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Stats snapshots the counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.QueueDepth = len(s.queue.items)
	st.CacheEntries, st.CacheBytes = s.cache.stats()
	return st
}

// obsSnapshot carries the counter values mirrored onto the obs recorder:
// captured under s.mu, emitted after it is released.
type obsSnapshot struct {
	queueDepth                                         int
	submitted, cacheHits, cacheMisses, dedups, running int64
}

// obsSnapshotLocked captures the recorder-bound counters; nil when no
// recorder is configured. Called under s.mu.
func (s *Service) obsSnapshotLocked() *obsSnapshot {
	if s.cfg.Recorder == nil {
		return nil
	}
	return &obsSnapshot{
		queueDepth:  len(s.queue.items),
		submitted:   s.stats.Submitted,
		cacheHits:   s.stats.CacheHits,
		cacheMisses: s.stats.CacheMisses,
		dedups:      s.stats.Dedups,
		running:     int64(s.stats.Running),
	}
}

// emitObs mirrors a snapshot onto the obs recorder, serialized on recMu
// (the recorder is not itself safe for concurrent use). Never called
// with s.mu held, so a slow recorder or sink cannot stall the service.
func (s *Service) emitObs(sn *obsSnapshot) {
	if sn == nil {
		return
	}
	s.recMu.Lock()
	defer s.recMu.Unlock()
	rec := s.cfg.Recorder
	rec.QueueDepth("campaign.queue", sn.queueDepth)
	rec.Count("campaign.submitted", float64(sn.submitted))
	rec.Count("campaign.cache.hits", float64(sn.cacheHits))
	rec.Count("campaign.cache.misses", float64(sn.cacheMisses))
	rec.Count("campaign.dedups", float64(sn.dedups))
	rec.Gauge("campaign", "running", obs.NoNode, float64(sn.running))
}

// worker runs queued jobs until the service closes.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue.items) == 0 && !s.closed {
			s.work.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.queue).(*Job)
		s.stats.Running++
		now := time.Now()
		j.mu.Lock()
		j.status = StatusRunning
		j.started = true
		j.running = true
		j.startedAt = now
		enqueued := j.enqueuedAt
		attempt := j.attempts
		j.queueSpan.SetAttr(tracing.Float("waitSec", now.Sub(enqueued).Seconds()))
		j.queueSpan.EndAt(now)
		_, j.execSpan = s.cfg.Tracer.StartSpan(
			tracing.ContextWithSpan(context.Background(), j.span), "execute", "execute")
		if attempt > 0 {
			j.execSpan.SetAttr(tracing.Int("retry.attempt", attempt))
		}
		j.mu.Unlock()
		s.metrics.queueDepth.Set(float64(len(s.queue.items)))
		s.metrics.running.Set(float64(s.stats.Running))
		s.metrics.queueWait.Observe(now.Sub(enqueued).Seconds())
		snap := s.obsSnapshotLocked()
		s.publish(j, string(StatusRunning), JobEvent{
			Time:    now,
			WaitSec: now.Sub(enqueued).Seconds(),
			Attempt: attempt,
		})
		s.space.Signal()
		s.mu.Unlock()
		s.emitObs(snap)

		s.execute(j)
	}
}

// execute runs one job and publishes its outcome — terminal, or back to
// the queue when the retry policy covers the failure.
func (s *Service) execute(j *Job) {
	if err := j.ctx.Err(); err != nil {
		s.finish(j, nil, err, StatusCancelled)
		return
	}
	// The run context carries the execute span so the runner (and its DES
	// obs bridge) parents under it; j.execSpan is stable once the worker
	// sets it, and execute is only ever entered afterwards.
	j.mu.Lock()
	runCtx := tracing.ContextWithSpan(j.ctx, j.execSpan)
	attempt := j.attempts + 1
	j.mu.Unlock()
	res, err := s.runRouted(runCtx, j)
	switch {
	case j.ctx.Err() != nil:
		// Cancelled mid-run: discard whatever the worker produced so a
		// torn or unwanted result never poisons the cache.
		s.finish(j, nil, j.ctx.Err(), StatusCancelled)
	case err != nil:
		s.resolveFailure(j, err, attempt)
	default:
		// A cache-store failure degrades to uncached operation; the
		// result itself is still good.
		s.mu.Lock()
		_ = s.cache.put(j.Hash, res)
		s.metrics.setCacheLocked(s.cache.stats())
		s.mu.Unlock()
		s.finish(j, res, nil, StatusDone)
	}
}

// runShielded invokes the runner behind a recover() shield: a panicking
// job becomes a transient "worker panic" failure (retryable under the
// policy) instead of killing the process, and the worker stays alive.
func (s *Service) runShielded(ctx context.Context, j *Job) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("worker panic: %v", r)
			s.mu.Lock()
			s.stats.WorkerPanics++
			s.mu.Unlock()
			s.metrics.workerPanics.Inc()
			s.log.Error("worker recovered from job panic",
				"job", j.ID, "hash", j.Hash, "panic", fmt.Sprint(r),
				"stack", string(debug.Stack()))
		}
	}()
	return s.cfg.runFn(ctx, j.spec)
}

// resolveFailure decides a failed execution's fate under the retry
// policy: permanent errors fail immediately, transient ones re-enqueue
// after a deterministic backoff, and a job that exhausts MaxAttempts is
// quarantined — failed terminally with an explicit reason — so a poison
// job can never occupy the pool forever.
func (s *Service) resolveFailure(j *Job, err error, attempt int) {
	if !isTransient(err) || s.cfg.Retry.MaxAttempts <= 1 {
		s.finish(j, nil, err, StatusFailed)
		return
	}
	if attempt >= s.cfg.Retry.MaxAttempts {
		s.mu.Lock()
		s.stats.Quarantined++
		s.mu.Unlock()
		s.metrics.quarantined.Inc()
		s.finish(j, nil,
			fmt.Errorf("quarantined after %d attempts: %w", attempt, err),
			StatusFailed)
		return
	}
	s.requeueAfter(j, err, attempt)
}

// requeueAfter schedules retry number attempt of a transiently-failed
// job. The backoff runs on a timer rather than a sleeping worker, so a
// waiting retry never occupies pool capacity; the delay is deterministic
// per (spec hash, attempt), keeping end-to-end behaviour reproducible.
func (s *Service) requeueAfter(j *Job, cause error, attempt int) {
	delay := s.cfg.Retry.Backoff(j.Hash, attempt)
	now := time.Now()
	j.mu.Lock()
	wasted := now.Sub(j.startedAt).Seconds()
	j.attempts = attempt
	j.status = StatusQueued
	j.running = false
	j.enqueuedAt = now
	j.execSpan.SetError(cause)
	j.execSpan.EndAt(now)
	// The backoff wait gets its own queue-kind span so retries read as
	// attempt → backoff → attempt chains in the trace.
	_, j.queueSpan = s.cfg.Tracer.StartSpan(
		tracing.ContextWithSpan(context.Background(), j.span),
		fmt.Sprintf("retry-backoff %d", attempt), "queue",
		tracing.Int("retry.attempt", attempt),
		tracing.Float("backoffSec", delay.Seconds()))
	j.mu.Unlock()
	s.acctRetryWaste(j.campaign, wasted)

	s.mu.Lock()
	s.stats.Running--
	s.metrics.running.Set(float64(s.stats.Running))
	if s.closed {
		s.mu.Unlock()
		s.finish(j, nil, ErrClosed, StatusCancelled)
		return
	}
	s.stats.Retries++
	s.metrics.retries.Inc()
	s.retryTimers[j] = time.AfterFunc(delay, func() { s.enqueueRetry(j) })
	snap := s.obsSnapshotLocked()
	s.publish(j, EventRetrying, JobEvent{
		Time:       now,
		Error:      cause.Error(),
		Reason:     fmt.Sprintf("retry %d/%d", attempt, s.cfg.Retry.MaxAttempts-1),
		Attempt:    attempt,
		BackoffSec: delay.Seconds(),
	})
	s.mu.Unlock()
	s.emitObs(snap)
	if s.log.Enabled(telemetry.LevelDebug) {
		s.log.Debug("job retrying",
			"job", j.ID, "attempt", attempt,
			"backoff", delay.String(), "err", cause.Error())
	}
}

// enqueueRetry returns a backed-off job to the queue when its timer
// fires. Retries bypass queue-capacity admission — the job was admitted
// once and never left the service.
func (s *Service) enqueueRetry(j *Job) {
	s.mu.Lock()
	if _, ok := s.retryTimers[j]; !ok {
		// Cancelled or shut down while the firing timer raced for s.mu;
		// whoever removed the entry owns the job's fate.
		s.mu.Unlock()
		return
	}
	delete(s.retryTimers, j)
	if s.closed {
		s.mu.Unlock()
		s.finish(j, nil, ErrClosed, StatusCancelled)
		return
	}
	now := time.Now()
	j.mu.Lock()
	j.enqueuedAt = now // waitSec measures queue time, not the backoff
	attempt := j.attempts
	j.mu.Unlock()
	heap.Push(&s.queue, j)
	s.metrics.queueDepth.Set(float64(len(s.queue.items)))
	snap := s.obsSnapshotLocked()
	s.publish(j, string(StatusQueued), JobEvent{Time: now, Attempt: attempt})
	s.work.Signal()
	s.mu.Unlock()
	s.emitObs(snap)
}

// finish publishes a job outcome exactly once.
func (s *Service) finish(j *Job, res *Result, err error, status Status) {
	now := time.Now()
	reason := s.reasonFor(err, status)
	j.mu.Lock()
	if j.status == StatusDone || j.status == StatusFailed || j.status == StatusCancelled {
		j.mu.Unlock()
		return
	}
	started := j.started
	wasRunning := j.running
	served := j.servedVia
	j.running = false
	j.status = status
	j.result = res
	j.err = err
	j.reason = reason
	ev := JobEvent{Time: now, Attempt: j.attempts}
	if started {
		ev.WaitSec = j.startedAt.Sub(j.enqueuedAt).Seconds()
		ev.ExecSec = now.Sub(j.startedAt).Seconds()
	}
	// Close the job's span subtree. A never-picked-up job still holds an
	// open queue span; an abandoned run holds an open execute span. The
	// root job span absorbs the terminal status and objective.
	if err != nil {
		j.execSpan.SetError(err)
		j.span.SetStatus(true, reason)
	}
	j.execSpan.EndAt(now)
	j.queueSpan.EndAt(now)
	j.span.SetAttr(tracing.String("job.status", string(status)))
	if res != nil {
		j.span.SetAttr(tracing.Float("job.objective", res.Objective))
	}
	j.span.EndAt(now)
	j.mu.Unlock()

	if err != nil {
		ev.Error = err.Error()
		ev.Reason = reason
	}
	if res != nil {
		ev.Objective = res.Objective
	}
	if started {
		s.metrics.execLatency.Observe(ev.ExecSec)
		s.metrics.busySeconds.Add(ev.ExecSec)
	}
	s.metrics.finished.With(string(status)).Inc()
	s.acctFinish(j, res, status, started, served, ev.ExecSec, ev.WaitSec)

	// Journal the terminal state — except shutdown cancellations: those
	// jobs are not abandoned, they are exactly what the next process must
	// resume, so they stay pending in the log.
	if s.journal != nil && reason != reasonShutdown {
		if jerr := s.journal.Append(journal.Record{
			Type: journal.TypeTerminal, Hash: j.Hash,
			Status: string(status), Reason: reason,
		}); jerr != nil {
			s.log.Warn("journal: terminal append failed",
				"job", j.ID, "err", jerr.Error())
		}
	}

	s.mu.Lock()
	if s.inflight[j.Hash] == j {
		delete(s.inflight, j.Hash)
	}
	if wasRunning {
		s.stats.Running--
		s.metrics.running.Set(float64(s.stats.Running))
	}
	switch status {
	case StatusDone:
		s.stats.Completed++
	case StatusFailed:
		s.stats.Failed++
	case StatusCancelled:
		s.stats.Cancelled++
	}
	snap := s.obsSnapshotLocked()
	s.publish(j, string(status), ev)
	s.mu.Unlock()
	s.emitObs(snap)
	if s.log.Enabled(telemetry.LevelDebug) {
		s.log.WithTrace(j.span.TraceID(), j.span.SpanID()).Debug("job finished",
			"job", j.ID, "label", j.Label, "status", string(status),
			"execSec", ev.ExecSec, "err", ev.Error, "reason", reason)
	}
	close(j.done)
}

// reasonShutdown marks jobs cancelled because the process is stopping.
// finish treats it specially: such jobs keep their pending journal
// records so the next process resumes them.
const reasonShutdown = "service shutdown"

// reasonFor maps a terminal (status, error) pair to the human-readable
// cause surfaced on job status JSON, the SSE terminal event, and the
// job span. Successful jobs have no reason.
func (s *Service) reasonFor(err error, status Status) string {
	switch status {
	case StatusFailed:
		if err != nil {
			return err.Error()
		}
		return "execution failed"
	case StatusCancelled:
		switch {
		case errors.Is(err, ErrClosed):
			return reasonShutdown
		case errors.Is(err, context.DeadlineExceeded):
			return "job deadline exceeded"
		case errors.Is(err, context.Canceled):
			// A submitter's Cancel and a service Close both surface
			// context.Canceled on the job context; disambiguate on the
			// service's own state.
			if s.isClosed() {
				return reasonShutdown
			}
			return "cancelled by submitter"
		case err != nil:
			return err.Error()
		}
		return "cancelled"
	}
	return ""
}

// isClosed reports whether Close has begun.
func (s *Service) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// queueSaturated reports whether the queue is at capacity right now — the
// HTTP layer's admission check for whole-campaign submissions.
func (s *Service) queueSaturated() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue.items) >= s.cfg.QueueDepth
}

// rejectQueueFull records a queue-full rejection made on the service's
// behalf by a front end (the HTTP server bounces whole campaigns with
// 503 when the queue is saturated).
func (s *Service) rejectQueueFull() {
	s.mu.Lock()
	s.stats.Rejected++
	s.mu.Unlock()
	s.metrics.rejected.Inc()
}

// dropQueued removes a cancelled job from the queue — or from its retry
// backoff — if it has not started.
func (s *Service) dropQueued(j *Job) {
	s.mu.Lock()
	removed := false
	for i, q := range s.queue.items {
		if q == j {
			heap.Remove(&s.queue, i)
			removed = true
			break
		}
	}
	if removed {
		s.metrics.queueDepth.Set(float64(len(s.queue.items)))
		s.space.Signal()
	} else if t, ok := s.retryTimers[j]; ok {
		// Waiting out a backoff: claim the map entry so a concurrently
		// firing timer backs off (enqueueRetry finds it gone and yields).
		t.Stop()
		delete(s.retryTimers, j)
		removed = true
	}
	s.mu.Unlock()
	if removed {
		s.finish(j, nil, context.Canceled, StatusCancelled)
	}
}

// jobQueue is a max-heap on (priority, -seq): higher priority first, FIFO
// within a priority level.
type jobQueue struct{ items []*Job }

func (q jobQueue) Len() int { return len(q.items) }
func (q jobQueue) Less(i, k int) bool {
	if q.items[i].Priority != q.items[k].Priority {
		return q.items[i].Priority > q.items[k].Priority
	}
	return q.items[i].seq < q.items[k].seq
}
func (q jobQueue) Swap(i, k int) { q.items[i], q.items[k] = q.items[k], q.items[i] }
func (q *jobQueue) Push(x any)   { q.items = append(q.items, x.(*Job)) }
func (q *jobQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return it
}
