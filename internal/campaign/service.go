package campaign

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	gort "runtime"
	"sync"

	"ensemblekit/internal/obs"
)

// Service errors.
var (
	// ErrQueueFull is returned by Submit when the job queue is at capacity:
	// backpressure is explicit rather than blocking the caller forever.
	ErrQueueFull = errors.New("campaign: job queue full")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("campaign: service closed")
)

// Config sizes the service.
type Config struct {
	// Workers is the number of concurrent simulation workers
	// (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// Submit returns ErrQueueFull beyond it (default 256).
	QueueDepth int
	// CacheBytes is the in-memory result-cache budget (default 256 MiB;
	// negative disables the memory tier).
	CacheBytes int64
	// CacheDir optionally persists results on disk, content-addressed by
	// job hash, so campaigns survive process restarts.
	CacheDir string
	// Recorder optionally receives service telemetry as obs events
	// (queue depth, counters for submissions/hits/misses/dedups). The
	// service serializes its emissions under the service mutex.
	Recorder *obs.Recorder

	// runFn overrides job execution (tests count real simulations with
	// it). Nil runs Execute.
	runFn func(context.Context, JobSpec) (*Result, error)
}

func (c Config) normalized() Config {
	if c.Workers <= 0 {
		c.Workers = gort.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.runFn == nil {
		c.runFn = func(_ context.Context, spec JobSpec) (*Result, error) {
			return Execute(spec)
		}
	}
	return c
}

// Status is a job's lifecycle state.
type Status string

const (
	// StatusQueued marks a job waiting for a worker.
	StatusQueued Status = "queued"
	// StatusRunning marks a job occupying a worker.
	StatusRunning Status = "running"
	// StatusDone marks a completed job with a result.
	StatusDone Status = "done"
	// StatusFailed marks a job whose execution returned an error.
	StatusFailed Status = "failed"
	// StatusCancelled marks a job cancelled before completion.
	StatusCancelled Status = "cancelled"
)

// Job is a submitted evaluation. Wait for its result, Cancel to abandon
// it. Jobs returned for cache hits are already done; jobs returned for
// duplicate submissions are shared with the first submitter.
type Job struct {
	// ID identifies the job within the service ("j-17").
	ID string
	// Hash is the content address of the spec.
	Hash string
	// Label is the submitter's display label.
	Label string
	// Priority orders the queue (higher runs first).
	Priority int
	// CacheHit reports that the job was answered from the cache without
	// queueing.
	CacheHit bool

	spec   JobSpec
	seq    int64
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	svc     *Service
	mu      sync.Mutex
	status  Status
	started bool // a worker popped it (Running was incremented)
	result  *Result
	err     error
}

// Status returns the job's current state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Result returns the result and error of a finished job (nil, nil while
// the job is still pending).
func (j *Job) Result() (*Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Wait blocks until the job finishes or ctx is done. A ctx expiry leaves
// the job running (other waiters may still want it); use Cancel to
// abandon the work itself.
func (j *Job) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-j.done:
		return j.Result()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Cancel abandons the job: a queued job is removed from the queue, a
// running job's result is discarded when the worker returns (the
// cooperative simulation itself is not interruptible mid-run). Cancelled
// jobs never enter the cache. Cancelling a shared (deduplicated) job
// cancels it for every submitter.
func (j *Job) Cancel() {
	j.cancel()
	j.svc.dropQueued(j)
}

// Spec returns the job's spec.
func (j *Job) Spec() JobSpec { return j.spec }

// Stats is a snapshot of the service's counters.
type Stats struct {
	// Submitted counts Submit calls that were admitted (including cache
	// hits and deduplicated attaches).
	Submitted int64 `json:"submitted"`
	// Completed, Failed and Cancelled count finished executions.
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	// CacheHits counts submissions answered from the cache; DiskHits is
	// the subset served by the on-disk tier. CacheMisses counts
	// submissions that enqueued a new execution.
	CacheHits   int64 `json:"cacheHits"`
	DiskHits    int64 `json:"diskHits"`
	CacheMisses int64 `json:"cacheMisses"`
	// Dedups counts submissions attached to an identical in-flight job
	// (singleflight).
	Dedups int64 `json:"dedups"`
	// QueueDepth and Running describe the pool right now.
	QueueDepth int `json:"queueDepth"`
	Running    int `json:"running"`
	Workers    int `json:"workers"`
	// CacheEntries and CacheBytes describe the in-memory cache tier.
	CacheEntries int   `json:"cacheEntries"`
	CacheBytes   int64 `json:"cacheBytes"`
}

// HitRate returns the fraction of cache-answerable submissions served
// from the cache (hits / (hits + misses)); 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Service is the concurrent ensemble-evaluation engine: a bounded
// priority queue feeding a worker pool, fronted by a content-addressed
// result cache with singleflight deduplication. All methods are safe for
// concurrent use.
type Service struct {
	cfg Config

	mu       sync.Mutex
	space    *sync.Cond // signalled when queue slots free up
	work     *sync.Cond // signalled when work arrives
	queue    jobQueue
	inflight map[string]*Job // hash -> queued or running job
	jobs     map[string]*Job // id -> every job ever returned
	cache    *resultCache
	stats    Stats
	closed   bool
	seq      int64

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
}

// NewService starts the worker pool. Callers must Close it.
func NewService(cfg Config) (*Service, error) {
	cfg = cfg.normalized()
	cache, err := newResultCache(cfg.CacheBytes, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		inflight:   make(map[string]*Job),
		jobs:       make(map[string]*Job),
		cache:      cache,
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.space = sync.NewCond(&s.mu)
	s.work = sync.NewCond(&s.mu)
	s.stats.Workers = cfg.Workers
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Close stops accepting submissions, cancels queued and running jobs, and
// waits for the workers to exit.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	// Fail the queue: every queued job reports ErrClosed to its waiters.
	queued := append([]*Job(nil), s.queue.items...)
	s.queue.items = nil
	s.work.Broadcast()
	s.space.Broadcast()
	s.mu.Unlock()

	for _, j := range queued {
		s.finish(j, nil, ErrClosed, StatusCancelled)
	}
	s.baseCancel()
	s.wg.Wait()
}

// SubmitOptions label and order a submission.
type SubmitOptions struct {
	// Priority orders the queue: higher-priority jobs run first; ties run
	// in submission order.
	Priority int
	// Label names the job in listings (defaults to the placement name).
	Label string
}

// Submit admits a job: served from the cache if its hash is known,
// attached to an identical in-flight job if one exists (singleflight),
// queued otherwise. Returns ErrQueueFull when the queue is at capacity —
// callers own their backpressure policy — and ErrClosed after Close.
func (s *Service) Submit(ctx context.Context, spec JobSpec, opts SubmitOptions) (*Job, error) {
	return s.submit(ctx, spec, opts, false)
}

// SubmitWait is Submit with blocking backpressure: instead of returning
// ErrQueueFull it waits for a queue slot (or ctx expiry). The campaign
// planner and the batch sweeps use it to fan out arbitrarily large
// expansions over the bounded queue.
func (s *Service) SubmitWait(ctx context.Context, spec JobSpec, opts SubmitOptions) (*Job, error) {
	return s.submit(ctx, spec, opts, true)
}

func (s *Service) submit(ctx context.Context, spec JobSpec, opts SubmitOptions, wait bool) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	hash, err := spec.Hash()
	if err != nil {
		return nil, err
	}
	label := opts.Label
	if label == "" {
		label = spec.Placement.Name
	}

	// ctx cancellation must break SubmitWait out of its cond wait; a
	// watcher goroutine broadcasting on expiry keeps the wait honest.
	if wait {
		stop := context.AfterFunc(ctx, func() {
			s.mu.Lock()
			s.space.Broadcast()
			s.mu.Unlock()
		})
		defer stop()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil, ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s.stats.Submitted++
		// Cache tier first: a known hash never queues.
		res, fromDisk, err := s.cache.get(hash)
		if err != nil {
			return nil, err
		}
		if res != nil {
			s.stats.CacheHits++
			if fromDisk {
				s.stats.DiskHits++
			}
			s.emitTelemetry()
			return s.completedJobLocked(hash, label, res), nil
		}
		// Singleflight: identical concurrent submissions share one run.
		if j, ok := s.inflight[hash]; ok {
			s.stats.Dedups++
			s.emitTelemetry()
			return j, nil
		}
		s.stats.CacheMisses++
		if len(s.queue.items) < s.cfg.QueueDepth {
			break
		}
		if !wait {
			// Undo the optimistic miss accounting: nothing was admitted.
			s.stats.Submitted--
			s.stats.CacheMisses--
			return nil, ErrQueueFull
		}
		s.stats.Submitted--
		s.stats.CacheMisses--
		s.space.Wait()
	}

	s.seq++
	jctx, cancel := context.WithCancel(s.baseCtx)
	j := &Job{
		ID:       fmt.Sprintf("j-%d", s.seq),
		Hash:     hash,
		Label:    label,
		Priority: opts.Priority,
		spec:     spec,
		seq:      s.seq,
		ctx:      jctx,
		cancel:   cancel,
		done:     make(chan struct{}),
		svc:      s,
		status:   StatusQueued,
	}
	heap.Push(&s.queue, j)
	s.inflight[hash] = j
	s.jobs[j.ID] = j
	s.emitTelemetry()
	s.work.Signal()
	return j, nil
}

// completedJobLocked wraps a cached result as an already-finished job so
// cache hits and real runs share one call shape.
func (s *Service) completedJobLocked(hash, label string, res *Result) *Job {
	s.seq++
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	j := &Job{
		ID:       fmt.Sprintf("j-%d", s.seq),
		Hash:     hash,
		Label:    label,
		CacheHit: true,
		ctx:      ctx,
		cancel:   func() {},
		done:     make(chan struct{}),
		svc:      s,
		status:   StatusDone,
		result:   res,
	}
	close(j.done)
	s.jobs[j.ID] = j
	return j
}

// Job looks up a job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Stats snapshots the counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.QueueDepth = len(s.queue.items)
	st.CacheEntries, st.CacheBytes = s.cache.stats()
	return st
}

// worker runs queued jobs until the service closes.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue.items) == 0 && !s.closed {
			s.work.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.queue).(*Job)
		s.stats.Running++
		j.mu.Lock()
		j.status = StatusRunning
		j.started = true
		j.mu.Unlock()
		s.emitTelemetry()
		s.space.Signal()
		s.mu.Unlock()

		s.execute(j)
	}
}

// execute runs one job and publishes its outcome.
func (s *Service) execute(j *Job) {
	if err := j.ctx.Err(); err != nil {
		s.finish(j, nil, err, StatusCancelled)
		return
	}
	res, err := s.cfg.runFn(j.ctx, j.spec)
	switch {
	case j.ctx.Err() != nil:
		// Cancelled mid-run: discard whatever the worker produced so a
		// torn or unwanted result never poisons the cache.
		s.finish(j, nil, j.ctx.Err(), StatusCancelled)
	case err != nil:
		s.finish(j, nil, err, StatusFailed)
	default:
		// A cache-store failure degrades to uncached operation; the
		// result itself is still good.
		s.mu.Lock()
		_ = s.cache.put(j.Hash, res)
		s.mu.Unlock()
		s.finish(j, res, nil, StatusDone)
	}
}

// finish publishes a job outcome exactly once.
func (s *Service) finish(j *Job, res *Result, err error, status Status) {
	j.mu.Lock()
	if j.status == StatusDone || j.status == StatusFailed || j.status == StatusCancelled {
		j.mu.Unlock()
		return
	}
	started := j.started
	j.status = status
	j.result = res
	j.err = err
	j.mu.Unlock()

	s.mu.Lock()
	if s.inflight[j.Hash] == j {
		delete(s.inflight, j.Hash)
	}
	if started {
		s.stats.Running--
	}
	switch status {
	case StatusDone:
		s.stats.Completed++
	case StatusFailed:
		s.stats.Failed++
	case StatusCancelled:
		s.stats.Cancelled++
	}
	s.emitTelemetry()
	s.mu.Unlock()
	close(j.done)
}

// dropQueued removes a cancelled job from the queue if it has not started.
func (s *Service) dropQueued(j *Job) {
	s.mu.Lock()
	removed := false
	for i, q := range s.queue.items {
		if q == j {
			heap.Remove(&s.queue, i)
			removed = true
			break
		}
	}
	if removed {
		s.space.Signal()
	}
	s.mu.Unlock()
	if removed {
		s.finish(j, nil, context.Canceled, StatusCancelled)
	}
}

// emitTelemetry mirrors the counters onto the obs recorder (if any).
// Called under s.mu, which also serializes the recorder.
func (s *Service) emitTelemetry() {
	rec := s.cfg.Recorder
	if rec == nil {
		return
	}
	rec.QueueDepth("campaign.queue", len(s.queue.items))
	rec.Count("campaign.submitted", float64(s.stats.Submitted))
	rec.Count("campaign.cache.hits", float64(s.stats.CacheHits))
	rec.Count("campaign.cache.misses", float64(s.stats.CacheMisses))
	rec.Count("campaign.dedups", float64(s.stats.Dedups))
	rec.Gauge("campaign", "running", obs.NoNode, float64(s.stats.Running))
}

// jobQueue is a max-heap on (priority, -seq): higher priority first, FIFO
// within a priority level.
type jobQueue struct{ items []*Job }

func (q jobQueue) Len() int { return len(q.items) }
func (q jobQueue) Less(i, k int) bool {
	if q.items[i].Priority != q.items[k].Priority {
		return q.items[i].Priority > q.items[k].Priority
	}
	return q.items[i].seq < q.items[k].seq
}
func (q jobQueue) Swap(i, k int) { q.items[i], q.items[k] = q.items[k], q.items[i] }
func (q *jobQueue) Push(x any)   { q.items = append(q.items, x.(*Job)) }
func (q *jobQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return it
}
