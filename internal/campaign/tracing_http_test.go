package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ensemblekit/internal/telemetry/tracing"
)

// newTracedServer builds a service with tracing on and mounts its HTTP
// handler.
func newTracedServer(t *testing.T, cfg Config) (*httptest.Server, *Service) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	cfg.Tracer = tracing.NewTracer(tracing.NewStore(0, 0))
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(NewServer(svc).Handler())
	t.Cleanup(ts.Close)
	return ts, svc
}

// getSpans fetches and decodes a job's OTLP span export, retrying while
// late spans (the async campaign span) finish.
func getSpans(t *testing.T, ts *httptest.Server, jobID string, wantKind string) []tracing.SpanData {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + jobID + "/spans")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("GET /spans: HTTP %d", resp.StatusCode)
		}
		spans, err := tracing.ReadOTLP(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		kinds := map[string]bool{}
		for _, d := range spans {
			kinds[d.Kind] = true
		}
		if wantKind == "" || kinds[wantKind] {
			return spans
		}
		if time.Now().After(deadline) {
			t.Fatalf("span kind %q never appeared (have %v)", wantKind, kinds)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHTTPTracingEndToEnd(t *testing.T) {
	ts, _ := newTracedServer(t, Config{})

	final := pollCampaign(t, ts, postCampaign(t, ts, `{"configs":["C1.5"],"steps":4}`).ID)
	if final.Status != "done" {
		t.Fatalf("campaign: %+v", final)
	}
	jobID := final.Result.Candidates[0].JobIDs[0]

	// The job status carries its trace ID.
	jr, err := http.Get(ts.URL + "/v1/jobs/" + jobID)
	if err != nil {
		t.Fatal(err)
	}
	if tp := jr.Header.Get("traceparent"); tp == "" {
		t.Error("response missing traceparent header")
	} else if _, err := tracing.ParseTraceparent(tp); err != nil {
		t.Errorf("response traceparent %q: %v", tp, err)
	}
	var js jobStatus
	if err := json.NewDecoder(jr.Body).Decode(&js); err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if js.TraceID == "" {
		t.Fatal("job status has no traceId")
	}

	// The campaign span closes asynchronously right after the poll sees
	// "done"; wait for it so the full chain is in the store.
	spans := getSpans(t, ts, jobID, "campaign")
	kinds := map[string]int{}
	for _, d := range spans {
		kinds[d.Kind]++
		if d.TraceID.String() != js.TraceID {
			t.Fatalf("span %s from foreign trace %s", d.Name, d.TraceID)
		}
	}
	for _, want := range []string{"server", "campaign", "job", "queue", "execute", "component"} {
		if kinds[want] == 0 {
			t.Errorf("no %q span in trace (kinds %v)", want, kinds)
		}
	}
	hasStage := false
	for k := range kinds {
		if strings.HasPrefix(k, "stage:") {
			hasStage = true
		}
	}
	if !hasStage {
		t.Errorf("no stage spans in trace (kinds %v)", kinds)
	}
	// The acceptance bar: request → campaign → job → execute → component
	// → stage is at least 4 levels deep.
	if got := tracing.Depth(spans); got < 4 {
		t.Errorf("span tree depth %d, want >= 4", got)
	}
}

func TestHTTPCriticalPathSumsToJobLatency(t *testing.T) {
	ts, _ := newTracedServer(t, Config{})

	final := pollCampaign(t, ts, postCampaign(t, ts, `{"configs":["C1.5"],"steps":4}`).ID)
	if final.Status != "done" {
		t.Fatalf("campaign: %+v", final)
	}
	jobID := final.Result.Candidates[0].JobIDs[0]

	resp, err := http.Get(ts.URL + "/v1/jobs/" + jobID + "/critical-path")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /critical-path: HTTP %d", resp.StatusCode)
	}
	var cp tracing.CriticalPath
	if err := json.NewDecoder(resp.Body).Decode(&cp); err != nil {
		t.Fatal(err)
	}
	if cp.TotalSec <= 0 || len(cp.Segments) == 0 || len(cp.ByKind) == 0 {
		t.Fatalf("degenerate critical path: %+v", cp)
	}
	sum := 0.0
	for _, seg := range cp.Segments {
		sum += seg.Sec
	}
	// The acceptance criterion is 1%; the construction makes it exact up
	// to float rounding.
	if math.Abs(sum-cp.TotalSec) > 0.01*cp.TotalSec {
		t.Errorf("segments sum %.9fs vs job latency %.9fs", sum, cp.TotalSec)
	}
	fracs := 0.0
	for _, k := range cp.ByKind {
		fracs += k.Frac
	}
	if math.Abs(fracs-1) > 0.01 {
		t.Errorf("ByKind fractions sum to %.4f, want 1", fracs)
	}
}

func TestHTTPTraceparentJoinsIncomingTrace(t *testing.T) {
	ts, _ := newTracedServer(t, Config{})

	const parent = "00-11111111111111111111111111111111-2222222222222222-01"
	req, err := http.NewRequest("POST", ts.URL+"/v1/campaigns",
		strings.NewReader(`{"configs":["C1.5"],"steps":4}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: HTTP %d", resp.StatusCode)
	}
	if tp := resp.Header.Get("traceparent"); !strings.Contains(tp, "11111111111111111111111111111111") {
		t.Errorf("response traceparent %q not in the caller's trace", tp)
	}
	var st CampaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	final := pollCampaign(t, ts, st.ID)
	if final.Status != "done" {
		t.Fatalf("campaign: %+v", final)
	}
	jobID := final.Result.Candidates[0].JobIDs[0]
	jr, err := http.Get(ts.URL + "/v1/jobs/" + jobID)
	if err != nil {
		t.Fatal(err)
	}
	var js jobStatus
	err = json.NewDecoder(jr.Body).Decode(&js)
	jr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if js.TraceID != "11111111111111111111111111111111" {
		t.Errorf("job traceId %q, want the propagated trace", js.TraceID)
	}
}

func TestHTTPSpanEndpointsWithoutTracer(t *testing.T) {
	ts, _ := newTestServer(t) // no tracer

	final := pollCampaign(t, ts, postCampaign(t, ts, `{"configs":["C1.5"],"steps":4}`).ID)
	jobID := final.Result.Candidates[0].JobIDs[0]
	for _, path := range []string{"/spans", "/critical-path"} {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + jobID + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s on untraced service: HTTP %d, want 404", path, resp.StatusCode)
		}
	}
	// The job status degrades to no traceId rather than erroring.
	jr, err := http.Get(ts.URL + "/v1/jobs/" + jobID)
	if err != nil {
		t.Fatal(err)
	}
	var js jobStatus
	err = json.NewDecoder(jr.Body).Decode(&js)
	jr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if js.TraceID != "" {
		t.Errorf("untraced job reports traceId %q", js.TraceID)
	}
}

func TestHTTPTraceMergesServiceSpans(t *testing.T) {
	ts, _ := newTracedServer(t, Config{})

	final := pollCampaign(t, ts, postCampaign(t, ts, `{"configs":["C1.5"],"steps":4}`).ID)
	if final.Status != "done" {
		t.Fatalf("campaign: %+v", final)
	}
	jobID := final.Result.Candidates[0].JobIDs[0]
	resp, err := http.Get(ts.URL + "/v1/jobs/" + jobID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace download: HTTP %d", resp.StatusCode)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range chrome.TraceEvents {
		if ev.Ph == "M" && strings.Contains(string(ev.Args), `"service"`) {
			found = true
		}
	}
	if !found {
		t.Error("Perfetto export has no merged service process")
	}
}

func TestHTTPSSEResumeWithLastEventID(t *testing.T) {
	ts, _ := newTracedServer(t, Config{})

	st := postCampaign(t, ts, `{"name":"resume","configs":["table2"],"steps":4}`)
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events, summary := readSSE(t, resp.Body)
	resp.Body.Close()
	if summary == nil || len(events) < 3 {
		t.Fatalf("first stream: %d events, summary %v", len(events), summary)
	}
	for _, ev := range events {
		if ev.Seq == 0 {
			t.Fatalf("event without sequence number: %+v", ev)
		}
	}

	// Reconnect claiming we saw everything up to the third event; the
	// replay must skip what we already have and repeat nothing.
	lastID := events[2].Seq
	req, err := http.NewRequest("GET", ts.URL+"/v1/campaigns/"+st.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", fmt.Sprint(lastID))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resumed, summary2 := readSSE(t, resp2.Body)
	resp2.Body.Close()
	if summary2 == nil {
		t.Fatal("resumed stream ended without a summary")
	}
	if want := len(events) - 3; len(resumed) != want {
		t.Fatalf("resumed %d events, want %d", len(resumed), want)
	}
	for _, ev := range resumed {
		if ev.Seq <= lastID {
			t.Errorf("resumed stream repeated event seq %d (<= %d)", ev.Seq, lastID)
		}
	}
}

func TestHTTPFailureReasonsSurface(t *testing.T) {
	boom := errors.New("solver diverged")
	ts, svc := newTracedServer(t, Config{
		runFn: func(context.Context, JobSpec) (*Result, error) { return nil, boom },
	})

	st := postCampaign(t, ts, `{"configs":["C1.5"],"steps":4}`)
	final := pollCampaign(t, ts, st.ID)
	if final.Status != "done" {
		t.Fatalf("campaign: %+v", final)
	}
	jobID := final.Result.Candidates[0].JobIDs[0]

	// Job status JSON carries the reason.
	jr, err := http.Get(ts.URL + "/v1/jobs/" + jobID)
	if err != nil {
		t.Fatal(err)
	}
	var js jobStatus
	err = json.NewDecoder(jr.Body).Decode(&js)
	jr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if js.Status != StatusFailed || js.Reason != "solver diverged" {
		t.Errorf("job status %+v, want failed with reason", js)
	}

	// The SSE terminal summary lists the failure with its reason, and the
	// terminal job event carries it too.
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events, summary := readSSE(t, resp.Body)
	resp.Body.Close()
	if summary == nil || len(summary.Failures) != 1 {
		t.Fatalf("summary %+v, want one failure", summary)
	}
	f := summary.Failures[0]
	if f.Job != jobID || f.Status != string(StatusFailed) || f.Reason != "solver diverged" {
		t.Errorf("failure entry %+v", f)
	}
	sawTerminal := false
	for _, ev := range events {
		if ev.Job == jobID && ev.Terminal() {
			sawTerminal = true
			if ev.Reason != "solver diverged" {
				t.Errorf("terminal event reason %q", ev.Reason)
			}
		}
	}
	if !sawTerminal {
		t.Error("no terminal event for the failed job")
	}

	// The failed job's span is marked errored.
	j, ok := svc.Job(jobID)
	if !ok {
		t.Fatal("job vanished")
	}
	spans := svc.Tracer().Store().Spans(j.span.Context().TraceID)
	jobErrored := false
	for _, d := range spans {
		if d.Kind == "job" && d.IsError && d.Status == "solver diverged" {
			jobErrored = true
		}
	}
	if !jobErrored {
		t.Error("failed job's span not marked errored")
	}
}

func TestJobReasonCancellation(t *testing.T) {
	release := make(chan struct{})
	svc, err := NewService(Config{
		Workers: 1,
		runFn: func(ctx context.Context, spec JobSpec) (*Result, error) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return Execute(spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer close(release)

	// Occupy the worker, then cancel a queued job: "cancelled by
	// submitter".
	blocker, err := svc.Submit(context.Background(), jobFor(t, 301), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_ = blocker
	queued, err := svc.Submit(context.Background(), jobFor(t, 302), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	queued.Cancel()
	if _, err := queued.Wait(context.Background()); err == nil {
		t.Fatal("cancelled job returned no error")
	}
	if got := queued.Reason(); got != "cancelled by submitter" {
		t.Errorf("cancel reason %q, want %q", got, "cancelled by submitter")
	}

	// Jobs still queued at Close report "service shutdown".
	shutdownVictim, err := svc.Submit(context.Background(), jobFor(t, 303), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	if got := shutdownVictim.Reason(); got != "service shutdown" {
		t.Errorf("shutdown reason %q, want %q", got, "service shutdown")
	}
	if got := queued.Status(); got != StatusCancelled {
		t.Errorf("cancelled job status %s", got)
	}
}
