package campaign

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"ensemblekit/internal/indicators"
	"ensemblekit/internal/trace"
)

// Result is the outcome of one evaluated job: the execution trace plus the
// paper's derived quantities (efficiencies over the surviving members,
// the full indicator report, the objective F(P^{U,A,P})). Results are
// shared between cache readers and must be treated as immutable.
type Result struct {
	// Hash is the content address of the job that produced the result.
	Hash string `json:"hash"`
	// Trace is the execution record (byte-identical to a serial
	// RunSimulated of the same spec).
	Trace *trace.EnsembleTrace `json:"trace"`
	// Efficiencies holds E_i (Eq. 3) for the surviving members, in member
	// order. Without faults this is every member.
	Efficiencies []float64 `json:"efficiencies"`
	// Report is the indicator report (Eq. 5-9) over the survivors.
	Report indicators.Report `json:"report"`
	// Objective is F(P^{U,A,P}), the paper's headline score.
	Objective float64 `json:"objective"`
	// Makespan is the ensemble makespan in virtual seconds.
	Makespan float64 `json:"makespan"`
	// Dropped counts members removed by the drop-member policy.
	Dropped int `json:"dropped,omitempty"`
}

// resultCache is a content-addressed cache: an in-memory LRU bounded by a
// byte budget, optionally backed by an on-disk store so results survive
// process restarts. It is not locked internally; the service serializes
// access under its own mutex.
type resultCache struct {
	budget  int64 // in-memory byte budget (<= 0 disables the memory tier)
	dir     string
	order   *list.List // front = most recent; values are *cacheEntry
	entries map[string]*list.Element
	bytes   int64

	// onCorrupt, if set, observes each disk entry evicted for failing its
	// integrity check. Called under the same lock as get/put (the
	// service's mutex), so it must not retake it.
	onCorrupt func(hash string, err error)
}

// diskEnvelope wraps each on-disk entry with a SHA-256 of its payload so
// bit rot, torn writes that survived rename, or hand-edited files are
// detected on read instead of silently poisoning campaign results. An
// entry that fails verification is evicted and treated as a miss — the
// job simply re-executes.
type diskEnvelope struct {
	Sum    string          `json:"sha256"`
	Result json.RawMessage `json:"result"`
}

// decodeDiskEntry verifies and unwraps one on-disk entry, returning the
// result and its payload size. Entries from before the envelope format
// (or with a missing checksum) fail verification and re-execute once.
func decodeDiskEntry(b []byte) (*Result, int64, error) {
	var env diskEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, 0, fmt.Errorf("undecodable envelope: %w", err)
	}
	if env.Sum == "" || len(env.Result) == 0 {
		return nil, 0, errors.New("missing checksum envelope")
	}
	sum := sha256.Sum256(env.Result)
	if got := hex.EncodeToString(sum[:]); got != env.Sum {
		return nil, 0, fmt.Errorf("checksum mismatch: entry says %s, payload is %s", env.Sum, got)
	}
	var res Result
	if err := json.Unmarshal(env.Result, &res); err != nil {
		return nil, 0, fmt.Errorf("undecodable payload: %w", err)
	}
	return &res, int64(len(env.Result)), nil
}

type cacheEntry struct {
	hash string
	res  *Result
	size int64
}

// newResultCache builds the cache, creating the disk directory on demand.
func newResultCache(budget int64, dir string) (*resultCache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("campaign: cache dir: %w", err)
		}
	}
	return &resultCache{
		budget:  budget,
		dir:     dir,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}, nil
}

// get returns the cached result for hash. The second return distinguishes
// a memory hit from a disk hit (false when served from the memory tier or
// not found at all).
func (c *resultCache) get(hash string) (*Result, bool, error) {
	if c == nil {
		return nil, false, nil
	}
	if el, ok := c.entries[hash]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*cacheEntry).res, false, nil
	}
	if c.dir == "" {
		return nil, false, nil
	}
	b, err := os.ReadFile(c.path(hash))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("campaign: cache read: %w", err)
	}
	res, size, err := decodeDiskEntry(b)
	if err != nil {
		// Integrity failure: evict and miss rather than serve (or error
		// on) a corrupt result — a re-execution is always correct.
		_ = os.Remove(c.path(hash))
		if c.onCorrupt != nil {
			c.onCorrupt(hash, err)
		}
		return nil, false, nil
	}
	c.admit(hash, res, size)
	return res, true, nil
}

// put stores a result under its hash in both tiers. The memory tier is
// budgeted on a structural size estimate: serializing every result just
// to measure it dominated the cold path at paper-scale step counts
// (json.Marshal was 80%+ of a deep sweep's CPU profile). Only the disk
// tier — which must produce the bytes anyway — still marshals, and it
// keeps the exact size.
func (c *resultCache) put(hash string, res *Result) error {
	if c == nil {
		return nil
	}
	if c.dir == "" {
		c.admit(hash, res, estimateResultSize(res))
		return nil
	}
	b, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("campaign: encoding result: %w", err)
	}
	{
		sum := sha256.Sum256(b)
		env, err := json.Marshal(diskEnvelope{
			Sum:    hex.EncodeToString(sum[:]),
			Result: b,
		})
		if err != nil {
			return fmt.Errorf("campaign: encoding cache entry: %w", err)
		}
		// Write-then-rename so a crashed writer never leaves a torn entry
		// that a later get would reject as corrupt.
		tmp := c.path(hash) + ".tmp"
		if err := os.WriteFile(tmp, env, 0o644); err != nil {
			return fmt.Errorf("campaign: cache write: %w", err)
		}
		if err := os.Rename(tmp, c.path(hash)); err != nil {
			return fmt.Errorf("campaign: cache write: %w", err)
		}
	}
	c.admit(hash, res, int64(len(b)))
	return nil
}

// estimateResultSize approximates a result's JSON-encoded size without
// serializing it: a structural walk counting stage records at their
// average encoded width. The LRU budget only needs a consistent
// approximation (each entry is debited with the same number it was
// credited with), not exact bytes; the estimate tracks the real encoding
// within a few tens of percent across step counts.
func estimateResultSize(res *Result) int64 {
	const (
		resultOverhead = 256 // fixed keys + scalar fields
		perEfficiency  = 24
		perReportStage = 48
		perMember      = 64
		perComponent   = 176 // keys + scalars outside the step array
		perStep        = 24
		perStageRecord = 220 // stage/start/duration/counters object
		perNode        = 8
		perOutput      = 24
	)
	n := int64(resultOverhead + len(res.Hash))
	n += int64(perEfficiency * len(res.Efficiencies))
	n += int64(perReportStage * len(res.Report.PerStage))
	tr := res.Trace
	if tr == nil {
		return n
	}
	n += int64(len(tr.Backend) + len(tr.Config))
	comp := func(c *trace.ComponentTrace) {
		if c == nil {
			return
		}
		n += int64(perComponent + len(c.Name) + len(c.Err))
		n += int64(perNode*len(c.Nodes) + perOutput*len(c.Outputs))
		for _, st := range c.Steps {
			n += int64(perStep + perStageRecord*len(st.Stages))
		}
	}
	for _, m := range tr.Members {
		n += perMember
		comp(m.Simulation)
		for _, a := range m.Analyses {
			comp(a)
		}
	}
	return n
}

// admit inserts into the memory tier and evicts LRU entries past budget.
func (c *resultCache) admit(hash string, res *Result, size int64) {
	if c.budget <= 0 {
		return
	}
	if el, ok := c.entries[hash]; ok {
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(&cacheEntry{hash: hash, res: res, size: size})
	c.entries[hash] = el
	c.bytes += size
	for c.bytes > c.budget && c.order.Len() > 1 {
		oldest := c.order.Back()
		e := oldest.Value.(*cacheEntry)
		c.order.Remove(oldest)
		delete(c.entries, e.hash)
		c.bytes -= e.size
	}
}

// stats reports the memory tier's occupancy.
func (c *resultCache) stats() (entries int, bytes int64) {
	if c == nil {
		return 0, 0
	}
	return c.order.Len(), c.bytes
}

func (c *resultCache) path(hash string) string {
	return filepath.Join(c.dir, hash+".json")
}
