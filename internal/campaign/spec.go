// Package campaign is the ensemble-evaluation service of the reproduction:
// a concurrent engine that runs many placement configurations — the batch
// workload behind the paper's Tables 2 and 4 and the scheduler's candidate
// evaluations — through a bounded worker pool with a content-addressed
// result cache.
//
// The design exploits one property relentlessly: a simulated ensemble run
// is a pure function of its inputs. A JobSpec captures those inputs
// completely (cluster, placement, workload, simulation options, fault
// plan), canonicalizes them, and hashes them; the hash keys a cache of
// results, and singleflight deduplication collapses concurrent identical
// submissions into one execution. Everything downstream — the campaign
// planner, the scheduler's placement search, the experiments sweeps, the
// HTTP API of cmd/ensembled — submits JobSpecs and shares the same cache,
// so a placement evaluated by the annealer yesterday costs nothing when a
// Table 2 campaign asks for it today.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/faults"
	"ensemblekit/internal/kernels"
	"ensemblekit/internal/network"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/runtime"
)

// SimConfig is the serializable subset of runtime.SimOptions: every field
// that changes a simulated run's result, and nothing that does not (live
// recorders) or cannot be serialized (model overrides). It is the part of
// a JobSpec that makes runs content-addressable.
type SimConfig struct {
	// Tier selects the DTL implementation ("" = DIMES).
	Tier string `json:"tier,omitempty"`
	// TierBandwidth overrides the burst-buffer/PFS bandwidth in bytes/s.
	TierBandwidth float64 `json:"tierBandwidth,omitempty"`
	// Jitter is the multiplicative compute-stage noise amplitude.
	Jitter float64 `json:"jitter,omitempty"`
	// Seed drives the jitter and the fault plan's fallback seed.
	Seed int64 `json:"seed,omitempty"`
	// StagingSlots is the per-member staging buffer depth (0 = 1 slot).
	StagingSlots int `json:"stagingSlots,omitempty"`
	// Topology optionally adds dragonfly structure to the interconnect.
	Topology *network.Dragonfly `json:"topology,omitempty"`
	// Resilience is the recovery policy applied around the fault plan.
	Resilience runtime.Resilience `json:"resilience,omitempty"`
}

// Options expands the config into runtime.SimOptions for execution.
func (c SimConfig) Options() runtime.SimOptions {
	return runtime.SimOptions{
		Tier:          c.Tier,
		TierBandwidth: c.TierBandwidth,
		Jitter:        c.Jitter,
		Seed:          c.Seed,
		StagingSlots:  c.StagingSlots,
		Topology:      c.Topology,
		Resilience:    c.Resilience,
	}
}

// RealConfig is the serializable subset of runtime.RealOptions: every
// field that shapes a real (kernel-executing) run. A JobSpec carrying a
// RealConfig runs through runtime.RunReal instead of the simulator; the
// fault plan and resilience policy come from the spec's Faults and
// Sim.Resilience fields, shared with the simulated backend.
//
// Real runs are wall-clock measurements, not pure functions: two
// executions of one spec produce equal trace shapes but different stage
// timings. Content-addressing still applies — the cache then has
// first-result-wins semantics, which is exactly what campaign sweeps
// want (measure each configuration once, reuse everywhere) — but
// callers comparing runs should submit distinct specs (e.g. different
// Sim.Seed values) when they need independent measurements.
type RealConfig struct {
	// Steps is the number of in situ steps (0: backend default).
	Steps int `json:"steps,omitempty"`
	// Stride is the number of MD steps per in situ step (0: default).
	Stride int `json:"stride,omitempty"`
	// FramesPerChunk batches frames within each stride window (0: 1).
	FramesPerChunk int `json:"framesPerChunk,omitempty"`
	// LJ configures the molecular-dynamics kernel (nil: defaults).
	LJ *kernels.LJConfig `json:"lj,omitempty"`
	// Eigen configures the analysis kernel (nil: defaults).
	Eigen *kernels.EigenConfig `json:"eigen,omitempty"`
	// MaxCores caps worker goroutines per component (0: GOMAXPROCS).
	MaxCores int `json:"maxCores,omitempty"`
	// TimeoutSec bounds the whole execution (0: unbounded).
	TimeoutSec float64 `json:"timeoutSec,omitempty"`
}

// Options expands the config into runtime.RealOptions (fault plan,
// resilience, and recorder are attached by the executor from the
// enclosing spec).
func (c *RealConfig) Options() runtime.RealOptions {
	o := runtime.RealOptions{
		Steps:          c.Steps,
		Stride:         c.Stride,
		FramesPerChunk: c.FramesPerChunk,
		MaxCores:       c.MaxCores,
		Timeout:        time.Duration(c.TimeoutSec * float64(time.Second)),
	}
	if c.LJ != nil {
		o.LJ = *c.LJ
	}
	if c.Eigen != nil {
		o.Eigen = *c.Eigen
	}
	return o
}

// Validate checks the config the way RunReal will, so malformed real
// jobs fail at submission instead of occupying a worker.
func (c *RealConfig) Validate(p placement.Placement) error {
	if len(p.Members) == 0 {
		return fmt.Errorf("campaign: real job placement %q has no members", p.Name)
	}
	for i, m := range p.Members {
		if len(m.Analyses) == 0 {
			return fmt.Errorf("campaign: real job member %d has no analyses", i)
		}
	}
	if c.Steps < 0 || c.Stride < 0 || c.FramesPerChunk < 0 || c.MaxCores < 0 {
		return fmt.Errorf("campaign: real job counts must be non-negative")
	}
	if c.TimeoutSec < 0 {
		return fmt.Errorf("campaign: real job timeout must be non-negative")
	}
	// Zero-valued kernel configs mean "use defaults" (as in RealOptions),
	// so only explicit settings are validated.
	if c.LJ != nil && *c.LJ != (kernels.LJConfig{}) {
		if err := c.LJ.Validate(); err != nil {
			return err
		}
	}
	if c.Eigen != nil && *c.Eigen != (kernels.EigenConfig{}) {
		if err := c.Eigen.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// ErrNotCacheable marks runtime.SimOptions that cannot be captured in a
// JobSpec: a *cluster.Model override changes results but has no canonical
// serialization, so caching it would alias distinct runs.
var ErrNotCacheable = errors.New("campaign: SimOptions.Model overrides are not content-addressable")

// SimConfigOf captures runtime.SimOptions as a serializable SimConfig and
// the effective fault plan (the legacy FailStagingAt hook folded in, as
// RunSimulated does). Recorders are dropped — instrumentation never
// changes results — while model overrides are rejected with
// ErrNotCacheable.
func SimConfigOf(o runtime.SimOptions) (SimConfig, *faults.Plan, error) {
	if o.Model != nil {
		return SimConfig{}, nil, ErrNotCacheable
	}
	plan, err := o.EffectivePlan()
	if err != nil {
		return SimConfig{}, nil, err
	}
	return SimConfig{
		Tier:          o.Tier,
		TierBandwidth: o.TierBandwidth,
		Jitter:        o.Jitter,
		Seed:          o.Seed,
		StagingSlots:  o.StagingSlots,
		Topology:      o.Topology,
		Resilience:    o.Resilience,
	}, plan, nil
}

// JobSpec is the canonical description of one simulated ensemble run: the
// complete, serializable input set of runtime.RunSimulated. Two JobSpecs
// with the same Hash produce byte-identical traces; the service relies on
// this to cache and deduplicate.
type JobSpec struct {
	// Cluster is the simulated machine.
	Cluster cluster.Spec `json:"cluster"`
	// Placement maps every component to nodes (Tables 2 and 4).
	Placement placement.Placement `json:"placement"`
	// Ensemble is the workload (what every component computes).
	Ensemble runtime.EnsembleSpec `json:"ensemble"`
	// Sim configures the simulated backend. Its Resilience policy also
	// governs real runs.
	Sim SimConfig `json:"sim,omitempty"`
	// Faults optionally injects a declarative fault plan.
	Faults *faults.Plan `json:"faults,omitempty"`
	// Real, when set, switches the job to the real-execution backend
	// (runtime.RunReal): genuine kernels, wall-clock timings. Ensemble is
	// ignored for real jobs — the workload is the kernels themselves. The
	// omitempty tag keeps every simulated spec's hash unchanged.
	Real *RealConfig `json:"real,omitempty"`
}

// NewJob assembles a JobSpec from the public run parameters, growing the
// cluster to fit the placement (as the scheduler's evaluators do) and
// folding the legacy FailStagingAt hook into the fault plan.
func NewJob(spec cluster.Spec, p placement.Placement, es runtime.EnsembleSpec, opts runtime.SimOptions) (JobSpec, error) {
	cfg, plan, err := SimConfigOf(opts)
	if err != nil {
		return JobSpec{}, err
	}
	for _, n := range p.UsedNodes() {
		if n+1 > spec.Nodes {
			spec.Nodes = n + 1
		}
	}
	return JobSpec{Cluster: spec, Placement: p, Ensemble: es, Sim: cfg, Faults: plan}, nil
}

// NewRealJob assembles a JobSpec for the real-execution backend, growing
// the cluster to fit the placement as NewJob does. Attach a fault plan
// or resilience policy via the Faults and Sim.Resilience fields.
func NewRealJob(spec cluster.Spec, p placement.Placement, rc RealConfig) JobSpec {
	for _, n := range p.UsedNodes() {
		if n+1 > spec.Nodes {
			spec.Nodes = n + 1
		}
	}
	return JobSpec{Cluster: spec, Placement: p, Real: &rc}
}

// Validate checks the spec the same way RunSimulated will, so malformed
// jobs fail at submission instead of occupying a worker.
func (s JobSpec) Validate() error {
	if err := s.Cluster.Validate(); err != nil {
		return err
	}
	if err := s.Placement.Validate(s.Cluster); err != nil {
		return err
	}
	if s.Real != nil {
		if err := s.Real.Validate(s.Placement); err != nil {
			return err
		}
	} else if err := s.Ensemble.Validate(s.Placement); err != nil {
		return err
	}
	if err := s.Sim.Resilience.Validate(); err != nil {
		return err
	}
	return s.Faults.Validate()
}

// canonical returns a semantically equal copy in normal form: component
// node sets deduplicated and sorted (order and duplicates never change a
// run), empty fault plans erased, and empty fault-rule slices nil, so the
// encoding — and therefore the hash — is invariant under representation
// choices and JSON round-trips.
func (s JobSpec) canonical() JobSpec {
	p := placement.Placement{Name: s.Placement.Name, Members: make([]placement.Member, len(s.Placement.Members))}
	for i, m := range s.Placement.Members {
		nm := placement.Member{Simulation: placement.Component{
			Nodes: m.Simulation.NodeSet(), Cores: m.Simulation.Cores,
		}}
		for _, a := range m.Analyses {
			nm.Analyses = append(nm.Analyses, placement.Component{Nodes: a.NodeSet(), Cores: a.Cores})
		}
		p.Members[i] = nm
	}
	s.Placement = p
	if s.Faults.Empty() {
		s.Faults = nil
	} else {
		plan := *s.Faults
		if len(plan.Staging) == 0 {
			plan.Staging = nil
		}
		if len(plan.Network) == 0 {
			plan.Network = nil
		}
		if len(plan.Crashes) == 0 {
			plan.Crashes = nil
		}
		if len(plan.Stragglers) == 0 {
			plan.Stragglers = nil
		}
		s.Faults = &plan
	}
	return s
}

// CanonicalJSON encodes the spec in normal form. encoding/json emits
// struct fields in declaration order and sorts map keys, so the encoding
// is deterministic; the canonicalization above removes every remaining
// representational degree of freedom.
func (s JobSpec) CanonicalJSON() ([]byte, error) {
	return json.Marshal(s.canonical())
}

// Hash returns the content address of the job: the hex SHA-256 of its
// canonical encoding. Every field that changes the run's result changes
// the hash (placement structure, workload, steps, seed, jitter, tier,
// fault plan, resilience policy, machine shape); representational noise
// (node-list order, empty-vs-nil fault slices, JSON round-trips) does
// not.
func (s JobSpec) Hash() (string, error) {
	b, err := s.CanonicalJSON()
	if err != nil {
		return "", fmt.Errorf("campaign: hashing job spec: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
