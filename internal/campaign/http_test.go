package campaign

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ensemblekit/internal/telemetry"
)

func newTestServer(t *testing.T) (*httptest.Server, *Service) {
	t.Helper()
	svc, err := NewService(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(NewServer(svc).Handler())
	t.Cleanup(ts.Close)
	return ts, svc
}

func postCampaign(t *testing.T, ts *httptest.Server, body string) CampaignStatus {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/campaigns: HTTP %d", resp.StatusCode)
	}
	var st CampaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func pollCampaign(t *testing.T, ts *httptest.Server, id string) CampaignStatus {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for {
		resp, err := http.Get(ts.URL + "/v1/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st CampaignStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Status != "running" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck at %d/%d", id, st.Done, st.Total)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHTTPCampaignLifecycle(t *testing.T) {
	ts, _ := newTestServer(t)

	st := postCampaign(t, ts, `{"name":"t2","configs":["table2"],"steps":4}`)
	if st.ID == "" || st.Total != 7 {
		t.Fatalf("accepted status %+v", st)
	}
	final := pollCampaign(t, ts, st.ID)
	if final.Status != "done" || final.Result == nil {
		t.Fatalf("final status %+v", final)
	}
	if len(final.Result.Ranking) != 7 || final.Done != 7 {
		t.Errorf("ranking %d entries, done %d", len(final.Result.Ranking), final.Done)
	}

	// The listing shows the campaign without the heavy result payload.
	resp, err := http.Get(ts.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var list []CampaignStatus
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID || list[0].Result != nil {
		t.Errorf("listing %+v", list)
	}
}

func TestHTTPStatsReportWarmRerun(t *testing.T) {
	ts, _ := newTestServer(t)

	body := `{"configs":["C1.5","C1.4"],"steps":4}`
	first := pollCampaign(t, ts, postCampaign(t, ts, body).ID)
	if first.Status != "done" {
		t.Fatalf("cold run: %+v", first)
	}
	second := pollCampaign(t, ts, postCampaign(t, ts, body).ID)
	if second.Status != "done" {
		t.Fatalf("warm run: %+v", second)
	}
	if second.Result.CacheHits != second.Result.Jobs {
		t.Errorf("warm run hit %d/%d", second.Result.CacheHits, second.Result.Jobs)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Stats
		HitRate float64 `json:"hitRate"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 2 || stats.CacheMisses != 2 || stats.HitRate != 0.5 {
		t.Errorf("stats %+v", stats)
	}
}

func TestHTTPJobTraceDownload(t *testing.T) {
	ts, _ := newTestServer(t)

	final := pollCampaign(t, ts, postCampaign(t, ts, `{"configs":["C1.5"],"steps":4}`).ID)
	if final.Status != "done" {
		t.Fatalf("campaign: %+v", final)
	}
	jobID := final.Result.Candidates[0].JobIDs[0]

	resp, err := http.Get(ts.URL + "/v1/jobs/" + jobID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace download: HTTP %d", resp.StatusCode)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatal(err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Error("empty Perfetto trace")
	}

	// The job endpoint itself reports the finished state.
	jr, err := http.Get(ts.URL + "/v1/jobs/" + jobID)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	var js struct {
		Status Status `json:"status"`
	}
	if err := json.NewDecoder(jr.Body).Decode(&js); err != nil {
		t.Fatal(err)
	}
	if js.Status != StatusDone {
		t.Errorf("job status %s", js.Status)
	}
}

func TestHTTPErrors(t *testing.T) {
	ts, _ := newTestServer(t)

	cases := []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/v1/campaigns", `{"configs":["C9.9"]}`, http.StatusBadRequest},
		{"POST", "/v1/campaigns", `{"bogus":true}`, http.StatusBadRequest},
		{"POST", "/v1/campaigns", `{}`, http.StatusBadRequest}, // no placements
		{"GET", "/v1/campaigns/c-404", "", http.StatusNotFound},
		{"GET", "/v1/jobs/j-404", "", http.StatusNotFound},
		{"GET", "/v1/jobs/j-404/trace", "", http.StatusNotFound},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s %s: HTTP %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
	}
}

// readSSE consumes a text/event-stream body until the summary event (or
// EOF), returning the job events and the summary.
func readSSE(t *testing.T, body io.Reader) ([]JobEvent, *CampaignSummary) {
	t.Helper()
	var (
		events  []JobEvent
		summary *CampaignSummary
		event   string
	)
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := []byte(strings.TrimPrefix(line, "data: "))
			switch event {
			case "job":
				var ev JobEvent
				if err := json.Unmarshal(data, &ev); err != nil {
					t.Fatalf("job event %s: %v", data, err)
				}
				events = append(events, ev)
			case "summary":
				summary = &CampaignSummary{}
				if err := json.Unmarshal(data, summary); err != nil {
					t.Fatalf("summary event %s: %v", data, err)
				}
				return events, summary
			case "error":
				t.Fatalf("stream error event: %s", data)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events, summary
}

func TestHTTPSSEStreamsCampaign(t *testing.T) {
	ts, _ := newTestServer(t)

	st := postCampaign(t, ts, `{"name":"sse","configs":["table2"],"steps":4}`)
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	events, summary := readSSE(t, resp.Body)
	if summary == nil {
		t.Fatal("stream ended without a summary event")
	}
	if summary.Status != "done" || summary.Jobs != 7 || summary.Campaign != st.ID {
		t.Errorf("summary %+v", summary)
	}
	if summary.Best == "" || summary.Objective == 0 {
		t.Errorf("summary missing ranking head: %+v", summary)
	}

	terminals := map[string]int{}
	for _, ev := range events {
		if ev.Campaign != st.ID {
			t.Fatalf("event from foreign campaign: %+v", ev)
		}
		if ev.Terminal() {
			terminals[ev.Job]++
		}
	}
	if len(terminals) != 7 {
		t.Fatalf("saw %d jobs, want 7 (events %+v)", len(terminals), events)
	}
	for job, n := range terminals {
		if n != 1 {
			t.Errorf("job %s: %d terminal events", job, n)
		}
	}
}

func TestHTTPSSEUnknownCampaign(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/campaigns/c-404/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("HTTP %d, want 404", resp.StatusCode)
	}
}

func TestHTTPQueueFullRejectsCampaign(t *testing.T) {
	release := make(chan struct{})
	svc, err := NewService(Config{
		Workers:    1,
		QueueDepth: 1,
		Metrics:    telemetry.NewRegistry(),
		runFn: func(_ context.Context, spec JobSpec) (*Result, error) {
			<-release
			return Execute(spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	defer close(release)
	ts := httptest.NewServer(NewServer(svc).Handler())
	defer ts.Close()

	// Saturate: one job running, one filling the single queue slot.
	if _, err := svc.Submit(context.Background(), jobFor(t, 101), SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := svc.Submit(context.Background(), jobFor(t, 102), SubmitOptions{}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json",
		strings.NewReader(`{"configs":["C1.5"],"steps":4}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("HTTP %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 without Retry-After header")
	}
	if got := svc.metrics.rejected.Value(); got != 1 {
		t.Errorf("campaign_queue_rejected_total = %v, want 1", got)
	}
	if got := svc.Stats().Rejected; got != 1 {
		t.Errorf("stats.Rejected = %d, want 1", got)
	}
}

func TestHTTPMetricsAfterTraffic(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc, err := NewService(Config{Workers: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	mux := http.NewServeMux()
	mux.Handle("/v1/", NewServer(svc).Handler())
	mux.Handle("GET /metrics", reg.Handler())
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	final := pollCampaign(t, ts, postCampaign(t, ts, `{"configs":["C1.5"],"steps":4}`).ID)
	if final.Status != "done" {
		t.Fatalf("campaign %+v", final)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		`campaign_jobs_finished_total{status="done"} 1`,
		"campaign_submitted_total 1",
		"campaign_execute_seconds_count 1",
		`http_requests_total{route="POST /v1/campaigns",code="202"} 1`,
		"http_request_duration_seconds_bucket",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestHTTPMetricsConcurrentScrape hammers /metrics from many goroutines
// while campaigns mutate every metric family underneath — the scrape
// path must stay race-free (run with -race) and each exposition must be
// well-formed.
func TestHTTPMetricsConcurrentScrape(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc, err := NewService(Config{Workers: 4, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	mux := http.NewServeMux()
	mux.Handle("/v1/", NewServer(svc).Handler())
	mux.Handle("GET /metrics", reg.Handler())
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	// Scrapers run in goroutines; the campaigns (and t.Fatal-bearing
	// helpers) stay on the test goroutine.
	done := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					errs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("/metrics HTTP %d", resp.StatusCode)
					return
				}
				if len(body) > 0 && !strings.HasPrefix(string(body), "#") {
					errs <- fmt.Errorf("exposition does not start with a comment: %.40s", body)
					return
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		pollCampaign(t, ts, postCampaign(t, ts, `{"configs":["C1.5","C2.1"],"steps":4}`).ID)
	}
	close(done)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
