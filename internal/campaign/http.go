package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ensemblekit/internal/campaign/accounting"
	"ensemblekit/internal/campaign/journal"
	"ensemblekit/internal/obs"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/telemetry"
	"ensemblekit/internal/telemetry/tracing"
)

// CampaignRequest is the body of POST /v1/campaigns: a Sweep, with the
// option of naming built-in placements instead of (or in addition to)
// inlining them. Configs accepts paper names ("C1.5") and the shortcuts
// "table2", "table2x2", "table4" for whole tables.
type CampaignRequest struct {
	Sweep
	Configs []string `json:"configs,omitempty"`
}

// resolve expands Configs into Sweep.Placements (built-ins first, inline
// placements after, matching the order the request lists them).
func (r CampaignRequest) resolve() (Sweep, error) {
	sw := r.Sweep
	var resolved []placement.Placement
	for _, name := range r.Configs {
		switch name {
		case "table2":
			resolved = append(resolved, placement.ConfigsTable2()...)
		case "table2x2":
			resolved = append(resolved, placement.ConfigsTable2TwoMember()...)
		case "table4":
			resolved = append(resolved, placement.ConfigsTable4()...)
		default:
			p, ok := placement.ByName(name)
			if !ok {
				return Sweep{}, fmt.Errorf("campaign: unknown config %q", name)
			}
			resolved = append(resolved, p)
		}
	}
	sw.Placements = append(resolved, sw.Placements...)
	return sw, nil
}

// CampaignStatus is the wire form of a campaign's state, returned by the
// campaign endpoints.
type CampaignStatus struct {
	// ID identifies the campaign within the server ("c-1").
	ID string `json:"id"`
	// Name echoes the request name.
	Name string `json:"name,omitempty"`
	// Status is "running", "done" or "failed".
	Status string `json:"status"`
	// Done and Total report job-level progress.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Error carries the failure of a failed campaign.
	Error string `json:"error,omitempty"`
	// Result is present once the campaign is done.
	Result *CampaignResult `json:"result,omitempty"`
}

// campaignRun tracks one asynchronous RunCampaign.
type campaignRun struct {
	id   string
	name string
	done chan struct{}

	mu     sync.Mutex
	nDone  int
	nTotal int
	result *CampaignResult
	err    error
}

func (c *campaignRun) status() CampaignStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CampaignStatus{ID: c.id, Name: c.name, Status: "running", Done: c.nDone, Total: c.nTotal}
	select {
	case <-c.done:
		if c.err != nil {
			st.Status = "failed"
			st.Error = c.err.Error()
		} else {
			st.Status = "done"
			st.Result = c.result
		}
	default:
	}
	return st
}

// Server exposes a Service over HTTP: campaign submission and polling,
// per-job Perfetto trace download, and the service's cache/queue counters.
// Build one with NewServer and mount its Handler.
type Server struct {
	svc *Service
	log *telemetry.Logger

	// Per-route request counters and latency histograms, registered on
	// the service's registry (no-ops when telemetry is off).
	requests *telemetry.CounterVec
	latency  *telemetry.HistogramVec

	// draining fails readiness (and new campaign POSTs) while in-flight
	// work finishes — set on SIGTERM for graceful rollouts.
	draining atomic.Bool

	mu        sync.Mutex
	seq       int64
	campaigns map[string]*campaignRun

	// readyChecks are extra readiness gates (e.g. the pool's join state)
	// consulted by /readyz; each returns the reasons it is blocking.
	readyChecks []func() []string
}

// NewServer wraps a service. The server does not own the service; closing
// is the caller's job. It shares the service's metrics registry and
// logger, so one scrape covers both tiers.
func NewServer(svc *Service) *Server {
	reg := svc.Metrics()
	return &Server{
		svc: svc,
		log: svc.Logger(),
		requests: reg.CounterVec("http_requests_total",
			"HTTP requests served, by route pattern and status code.",
			"route", "code"),
		latency: reg.HistogramVec("http_request_duration_seconds",
			"HTTP request latency, by route pattern.", nil, "route"),
		campaigns: make(map[string]*campaignRun),
	}
}

// Handler returns the route table:
//
//	POST /v1/campaigns             submit a sweep, returns 202 + campaign status
//	GET  /v1/campaigns             list campaigns
//	GET  /v1/campaigns/{id}        poll one campaign (result once done)
//	GET  /v1/campaigns/{id}/events live SSE stream of job transitions
//	GET  /v1/campaigns/{id}/accounting the campaign's resource ledger
//	GET  /v1/jobs/{id}               one job's status
//	GET  /v1/jobs/{id}/trace         Perfetto (Chrome JSON) trace of a done job
//	GET  /v1/jobs/{id}/spans         the job's distributed-trace spans (OTLP JSON)
//	GET  /v1/jobs/{id}/critical-path the job's trace critical path
//	GET  /v1/stats                   service counters incl. cache hit rate
//
// Every route is instrumented with per-route request counts and latency
// histograms on the service's metrics registry, and — when the service
// has a tracer — a server span per request, continuing an incoming W3C
// traceparent when the client sends one.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	handle("POST /v1/campaigns", s.postCampaign)
	handle("GET /v1/campaigns", s.listCampaigns)
	handle("GET /v1/campaigns/{id}", s.getCampaign)
	handle("GET /v1/campaigns/{id}/events", s.streamCampaign)
	handle("GET /v1/campaigns/{id}/accounting", s.getCampaignAccounting)
	handle("GET /v1/jobs/{id}", s.getJob)
	handle("GET /v1/jobs/{id}/trace", s.getJobTrace)
	handle("GET /v1/jobs/{id}/spans", s.getJobSpans)
	handle("GET /v1/jobs/{id}/critical-path", s.getJobCriticalPath)
	handle("GET /v1/stats", s.getStats)
	handle("GET /healthz", s.getHealthz)
	handle("GET /readyz", s.getReadyz)
	return mux
}

// getHealthz serves liveness: 200 whenever the process is up and able to
// answer HTTP at all.
func (s *Server) getHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// getReadyz serves readiness: 200 when the service can accept new
// campaigns, 503 with the blocking reasons otherwise (draining for
// shutdown, saturated queue, closed service, unwritable journal).
func (s *Server) getReadyz(w http.ResponseWriter, _ *http.Request) {
	var blocked []string
	if s.draining.Load() {
		blocked = append(blocked, "draining")
	}
	blocked = append(blocked, s.svc.Ready()...)
	s.mu.Lock()
	checks := append([]func() []string(nil), s.readyChecks...)
	s.mu.Unlock()
	for _, check := range checks {
		blocked = append(blocked, check()...)
	}
	if len(blocked) > 0 {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"status": "unavailable", "reasons": blocked})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// SetDraining marks the server as draining (or not): readiness fails so
// load balancers stop routing new work, and campaign POSTs are rejected,
// while everything already admitted keeps running to completion.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// AddReadyCheck registers an extra readiness gate consulted by /readyz
// (e.g. "pool: join pending" while a node has not reached its seeds).
// The check returns the reasons it is blocking, or nil when ready.
func (s *Server) AddReadyCheck(check func() []string) {
	s.mu.Lock()
	s.readyChecks = append(s.readyChecks, check)
	s.mu.Unlock()
}

// instrument wraps a handler with per-route telemetry and a server span.
// The wrapper preserves http.Flusher so the SSE route still streams. An
// incoming `traceparent` header joins the request to the caller's trace;
// the response carries the server span's own traceparent so clients can
// fetch the spans they just caused.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		if tr := s.svc.Tracer(); tr != nil {
			ctx := r.Context()
			if remote, err := tracing.ParseTraceparent(r.Header.Get("traceparent")); err == nil {
				ctx = tracing.ContextWithRemote(ctx, remote)
			}
			ctx, span := tr.StartSpan(ctx, r.Method+" "+r.URL.Path, "server",
				tracing.String("http.method", r.Method),
				tracing.String("http.route", pattern),
				tracing.String("http.target", r.URL.Path))
			w.Header().Set("traceparent", span.Context().Traceparent())
			r = r.WithContext(ctx)
			defer func() {
				span.SetAttr(tracing.Int("http.status_code", sw.code))
				if sw.code >= 500 {
					span.SetStatus(true, http.StatusText(sw.code))
				}
				span.End()
			}()
		}
		h(sw, r)
		s.requests.With(pattern, strconv.Itoa(sw.code)).Inc()
		s.latency.With(pattern).Observe(time.Since(start).Seconds())
	}
}

// statusWriter captures the response code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer when it streams; SSE needs it.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) postCampaign(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable,
			errors.New("campaign: server draining for shutdown"))
		return
	}
	var req CampaignRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	sw, err := req.resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// Expand eagerly so malformed sweeps fail the POST, not the poll.
	cands, err := sw.Jobs()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	total := 0
	for _, c := range cands {
		total += len(c.Specs)
	}

	// Admission control: a saturated queue means the campaign would only
	// sit in SubmitWait; shed the load instead so the client can back off
	// and retry, and account the rejection.
	if s.svc.queueSaturated() {
		s.svc.rejectQueueFull()
		s.log.Warn("campaign rejected: queue full", "jobs", total)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, ErrQueueFull)
		return
	}

	s.mu.Lock()
	s.seq++
	run := &campaignRun{
		id:     fmt.Sprintf("c-%d", s.seq),
		name:   sw.Name,
		done:   make(chan struct{}),
		nTotal: total,
	}
	s.campaigns[run.id] = run
	s.mu.Unlock()

	// Journal the campaign (with its original request, so a restart can
	// re-expand it) before acknowledging the POST.
	if jnl := s.svc.Journal(); jnl != nil {
		reqJSON, jerr := json.Marshal(req)
		if jerr == nil {
			jerr = jnl.Append(journal.Record{
				Type: journal.TypeCampaign, ID: run.id,
				Name: sw.Name, Request: reqJSON,
			})
		}
		if jerr != nil {
			s.log.Warn("journal: campaign append failed",
				"campaign", run.id, "err", jerr.Error())
		}
	}

	s.launch(run, sw, total, r.Context())
	writeJSON(w, http.StatusAccepted, run.status())
}

// launch starts the campaign runner goroutine shared by postCampaign and
// Resume. The campaign span is a child of parent (the POST's server span,
// or a root span on resume) but outlives it: it rides a detached context
// into the runner and closes when the campaign resolves, parenting every
// job span the sweep submits. When the campaign resolves it is retired
// from the journal — unless the service is shutting down, in which case
// it stays open in the log so the next process resumes it.
func (s *Server) launch(run *campaignRun, sw Sweep, total int, parent context.Context) {
	sw.Campaign = run.id // tag every job's events for the SSE stream
	sw.Progress = func(done, total int) {
		run.mu.Lock()
		run.nDone, run.nTotal = done, total
		run.mu.Unlock()
	}
	_, campSpan := s.svc.Tracer().StartSpan(parent,
		"campaign "+run.id, "campaign",
		tracing.String("campaign.id", run.id),
		tracing.String("campaign.name", sw.Name),
		tracing.Int("campaign.jobs", total))
	runCtx := tracing.ContextWithSpan(context.Background(), campSpan)
	clog := s.log.WithTrace(campSpan.TraceID(), campSpan.SpanID())
	clog.Info("campaign accepted", "campaign", run.id, "name", sw.Name, "jobs", total)
	go func() {
		start := time.Now()
		res, err := RunCampaign(runCtx, s.svc, sw)
		run.mu.Lock()
		run.result, run.err = res, err
		run.mu.Unlock()
		close(run.done)
		campSpan.SetError(err)
		campSpan.End()
		if jnl := s.svc.Journal(); jnl != nil && !s.svc.isClosed() {
			status := "done"
			if err != nil {
				status = "failed"
			}
			if jerr := jnl.Append(journal.Record{
				Type: journal.TypeCampaignDone, ID: run.id, Status: status,
			}); jerr != nil {
				s.log.Warn("journal: campaign-done append failed",
					"campaign", run.id, "err", jerr.Error())
			}
		}
		if err != nil {
			clog.Error("campaign failed", "campaign", run.id, "err", err.Error(),
				"elapsedSec", time.Since(start).Seconds())
		} else {
			clog.Info("campaign done", "campaign", run.id, "jobs", res.Jobs,
				"cacheHits", res.CacheHits, "failedJobs", res.Failed,
				"elapsedSec", time.Since(start).Seconds())
		}
	}()
}

// Resume relaunches every campaign that was open in the service's
// journal at startup, returning how many it restarted. Job-level resume
// already happened inside NewService — pending jobs are back in the
// queue, finished ones are disk-cache hits — so a resumed campaign's
// re-submitted sweep coalesces onto that work through the cache and
// singleflight instead of re-executing it. Campaign IDs are preserved
// across the restart (clients polling /v1/campaigns/{id} keep working),
// and the server's ID sequence advances past them so new campaigns never
// collide. A recorded campaign that no longer expands (renamed config,
// undecodable request) is retired from the journal as failed rather than
// replayed forever.
func (s *Server) Resume() int {
	resumed := 0
	for _, rec := range s.svc.ReplayedCampaigns() {
		var req CampaignRequest
		err := json.Unmarshal(rec.Request, &req)
		var sw Sweep
		if err == nil {
			sw, err = req.resolve()
		}
		var cands []Candidate
		if err == nil {
			cands, err = sw.Jobs()
		}
		if err != nil {
			s.log.Warn("journal: dropping unreplayable campaign",
				"campaign", rec.ID, "err", err.Error())
			if jerr := s.svc.Journal().Append(journal.Record{
				Type: journal.TypeCampaignDone, ID: rec.ID, Status: "failed",
			}); jerr != nil {
				s.log.Warn("journal: campaign-done append failed",
					"campaign", rec.ID, "err", jerr.Error())
			}
			continue
		}
		total := 0
		for _, c := range cands {
			total += len(c.Specs)
		}
		s.mu.Lock()
		if _, exists := s.campaigns[rec.ID]; exists {
			s.mu.Unlock()
			continue
		}
		if n := campaignIDNum(rec.ID); n > s.seq {
			s.seq = n
		}
		run := &campaignRun{
			id:     rec.ID,
			name:   sw.Name,
			done:   make(chan struct{}),
			nTotal: total,
		}
		s.campaigns[rec.ID] = run
		s.mu.Unlock()
		s.launch(run, sw, total, context.Background())
		resumed++
	}
	if resumed > 0 {
		s.log.Info("campaigns resumed from journal", "campaigns", resumed)
	}
	return resumed
}

// campaignIDNum extracts the numeric suffix of a "c-N" campaign ID
// (0 when the ID has another shape).
func campaignIDNum(id string) int64 {
	var n int64
	if _, err := fmt.Sscanf(id, "c-%d", &n); err != nil {
		return 0
	}
	return n
}

// CampaignSummary is the terminal event of an SSE stream: the campaign's
// final state plus its headline result.
type CampaignSummary struct {
	// Campaign identifies the run ("c-1"); Name echoes the sweep name.
	Campaign string `json:"campaign"`
	Name     string `json:"name,omitempty"`
	// Status is "done" or "failed".
	Status string `json:"status"`
	// Jobs counts submitted jobs; CacheHits and FailedJobs partition the
	// interesting outcomes.
	Jobs       int `json:"jobs"`
	CacheHits  int `json:"cacheHits"`
	FailedJobs int `json:"failedJobs"`
	// Best is the top-ranked candidate label and Objective its
	// F(P^{U,A,P}) — the paper's Eq. 9 winner — when any candidate
	// survived.
	Best      string  `json:"best,omitempty"`
	Objective float64 `json:"objective,omitempty"`
	// Failures lists the campaign's failed or cancelled jobs with their
	// human-readable reasons.
	Failures []JobFailure `json:"failures,omitempty"`
	// Error carries the failure of a failed campaign.
	Error string `json:"error,omitempty"`
}

// JobFailure names one failed or cancelled job in a campaign summary.
type JobFailure struct {
	Job    string `json:"job"`
	Label  string `json:"label,omitempty"`
	Status string `json:"status"`
	Reason string `json:"reason,omitempty"`
}

// summary builds the terminal SSE event from a finished run; svc
// resolves the failed jobs' reasons (nil skips them).
func (c *campaignRun) summary(svc *Service) CampaignSummary {
	st := c.status()
	out := CampaignSummary{
		Campaign: c.id,
		Name:     c.name,
		Status:   st.Status,
		Error:    st.Error,
	}
	if st.Result != nil {
		out.Jobs = st.Result.Jobs
		out.CacheHits = st.Result.CacheHits
		out.FailedJobs = st.Result.Failed
		if len(st.Result.Ranking) > 0 {
			out.Best = st.Result.Ranking[0].Name
			out.Objective = st.Result.Ranking[0].Value
		}
		if svc != nil {
			for _, cand := range st.Result.Candidates {
				for _, id := range cand.JobIDs {
					j, ok := svc.Job(id)
					if !ok {
						continue
					}
					switch status := j.Status(); status {
					case StatusFailed, StatusCancelled:
						out.Failures = append(out.Failures, JobFailure{
							Job: id, Label: j.Label, Status: string(status), Reason: j.Reason(),
						})
					}
				}
			}
		}
	}
	return out
}

// streamCampaign serves GET /v1/campaigns/{id}/events: a server-sent-
// events stream pushing one `job` event per job state transition (queued,
// running, done/cached/failed/cancelled) and a terminal `summary` event
// once the campaign resolves. The stream replays the broadcaster's
// retained history first, so connecting right after the POST loses
// nothing; a subscriber that cannot keep up is dropped (`error` event)
// rather than ever blocking the workers. Every job event carries its
// broadcaster sequence number as the SSE `id:`, and a reconnecting
// client's `Last-Event-ID` header filters the replay to events it has
// not yet seen — the standard SSE resume handshake, bounded by the
// broadcaster's history ring (events evicted before the reconnect are
// gone; the client detects the gap from the sequence numbers).
func (s *Server) streamCampaign(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	run, ok := s.campaigns[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("campaign: no campaign %q", id))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("campaign: streaming unsupported"))
		return
	}
	var lastID int64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			lastID = n
		}
	}

	replay, ch, cancel := s.svc.Events().Subscribe()
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	send := func(event string, v any) bool {
		b, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	// sendJob forwards one job event (skipping other campaigns' events and
	// events the client already saw); false means the client went away.
	sendJob := func(ev JobEvent) bool {
		if ev.Campaign != id || ev.Seq <= lastID {
			return true
		}
		b, err := json.Marshal(ev)
		if err != nil {
			return true
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: job\ndata: %s\n\n", ev.Seq, b); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	for _, ev := range replay {
		if !sendJob(ev) {
			return
		}
	}
	for {
		select {
		case ev, open := <-ch:
			if !open {
				// Dropped for falling behind, or the service closed; the
				// client reconnects and replays from history.
				send("error", map[string]string{
					"error": "event stream dropped (subscriber too slow or service closing)",
				})
				return
			}
			if !sendJob(ev) {
				return
			}
		case <-run.done:
			// Every job event was published before the campaign resolved;
			// drain whatever is still buffered, then summarize.
		drain:
			for {
				select {
				case ev, open := <-ch:
					if !open {
						break drain
					}
					if !sendJob(ev) {
						return
					}
				default:
					break drain
				}
			}
			send("summary", run.summary(s.svc))
			return
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) listCampaigns(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	runs := make([]*campaignRun, 0, len(s.campaigns))
	for _, c := range s.campaigns {
		runs = append(runs, c)
	}
	s.mu.Unlock()
	out := make([]CampaignStatus, 0, len(runs))
	for _, c := range runs {
		st := c.status()
		st.Result = nil // listings stay light; poll the campaign for the result
		out = append(out, st)
	}
	// Deterministic order: by numeric suffix via the id's natural length
	// then lexicographic ("c-2" < "c-10").
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && idLess(out[k].ID, out[k-1].ID); k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// idLess orders "c-2" before "c-10" (shorter numeric suffix first).
func idLess(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

func (s *Server) getCampaign(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	run, ok := s.campaigns[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("campaign: no campaign %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, run.status())
}

// campaignAccounting is the wire form of GET /v1/campaigns/{id}/
// accounting: the campaign's ledger snapshot. Field order (campaign,
// then the snapshot's declaration order) is stable; the simulated
// section is byte-identical across identical runs.
type campaignAccounting struct {
	Campaign string `json:"campaign"`
	accounting.Snapshot
}

// getCampaignAccounting serves the campaign's resource ledger: simulated
// core-seconds spent (busy/idle per component class) and avoided (per
// serving tier), plus the wall-clock cost. Available while the campaign
// is still running — the ledger grows as jobs resolve.
func (s *Server) getCampaignAccounting(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, known := s.campaigns[id]
	s.mu.Unlock()
	snap, has := s.svc.CampaignAccounting(id)
	if !known && !has {
		httpError(w, http.StatusNotFound, fmt.Errorf("campaign: no campaign %q", id))
		return
	}
	writeJSON(w, http.StatusOK, campaignAccounting{Campaign: id, Snapshot: snap})
}

// jobStatus is the wire form of a job.
type jobStatus struct {
	ID       string `json:"id"`
	Hash     string `json:"hash"`
	Label    string `json:"label,omitempty"`
	Status   Status `json:"status"`
	CacheHit bool   `json:"cacheHit,omitempty"`
	Error    string `json:"error,omitempty"`
	// Reason is the human-readable cause of a failed or cancelled job.
	Reason string `json:"reason,omitempty"`
	// TraceID is the job's distributed-trace ID (hex); clients feed it to
	// the /spans and /critical-path endpoints or an external trace UI.
	TraceID string `json:"traceId,omitempty"`
	// Node is the pool node that executed (or is executing) the job;
	// empty on a single-node service.
	Node   string  `json:"node,omitempty"`
	Result *Result `json:"result,omitempty"`
}

func (s *Server) getJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.svc.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("campaign: no job %q", r.PathValue("id")))
		return
	}
	st := jobStatus{ID: j.ID, Hash: j.Hash, Label: j.Label, Status: j.Status(),
		CacheHit: j.CacheHit, Reason: j.Reason(), TraceID: j.TraceID(), Node: j.Node()}
	if res, err := j.Result(); err != nil {
		st.Error = err.Error()
	} else if res != nil {
		st.Result = res
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) getJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.svc.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("campaign: no job %q", r.PathValue("id")))
		return
	}
	res, err := j.Result()
	if err != nil {
		httpError(w, http.StatusConflict, fmt.Errorf("campaign: job %s failed: %w", j.ID, err))
		return
	}
	if res == nil || res.Trace == nil {
		httpError(w, http.StatusConflict, fmt.Errorf("campaign: job %s has no trace yet", j.ID))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", j.ID+"-trace.json"))
	// The stored trace replays into obs events post hoc, so traces cost
	// nothing unless somebody downloads one. When the job was traced, the
	// service-level spans (request, campaign, job, queue, execute) merge
	// into the export as their own process, mapped back onto the virtual
	// clock via the affine parameters the execute span recorded.
	events := obs.FromTrace(res.Trace)
	if tr := s.svc.Tracer(); tr != nil && j.span != nil {
		spans := tr.Store().Spans(j.span.Context().TraceID)
		if toVirtual := desInverseMap(spans, j.span.Context().SpanID); toVirtual != nil {
			_ = obs.WriteChromeTraceWithSpans(w, events, spans, toVirtual)
			return
		}
	}
	if err := obs.WriteChromeTrace(w, events); err != nil {
		// Headers are gone; all we can do is drop the connection.
		return
	}
}

// desInverseMap builds the wall→virtual mapping recorded on the job's
// execute span (the inverse of the obs bridge's wall = anchor + scale·t
// map), or nil when the job has no completed traced execution — cached
// jobs and still-running jobs degrade to the plain event export.
func desInverseMap(spans []tracing.SpanData, jobSpan tracing.SpanID) func(time.Time) float64 {
	for _, d := range spans {
		if d.Kind != "execute" || d.Parent != jobSpan {
			continue
		}
		var anchorNano int64
		scale := 0.0
		for _, a := range d.Attrs {
			switch a.Key {
			case "des.anchorUnixNano":
				if v, ok := a.Value.(int64); ok {
					anchorNano = v
				}
			case "des.scale":
				if v, ok := a.Value.(float64); ok {
					scale = v
				}
			}
		}
		if anchorNano == 0 || scale <= 0 {
			continue
		}
		anchor := time.Unix(0, anchorNano)
		return func(wt time.Time) float64 { return wt.Sub(anchor).Seconds() / scale }
	}
	return nil
}

// jobTraceSpans resolves a job and its trace's recorded spans, writing
// the error response when either is missing; ok reports success. The
// returned spans cover the whole trace — for a campaign-submitted job
// that includes the originating request and campaign spans and any
// sibling jobs sharing the trace.
func (s *Server) jobTraceSpans(w http.ResponseWriter, r *http.Request) (*Job, []tracing.SpanData, bool) {
	j, ok := s.svc.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("campaign: no job %q", r.PathValue("id")))
		return nil, nil, false
	}
	tr := s.svc.Tracer()
	if tr == nil || j.span == nil {
		httpError(w, http.StatusNotFound,
			fmt.Errorf("campaign: job %s has no trace (tracing disabled)", j.ID))
		return nil, nil, false
	}
	spans := tr.Store().Spans(j.span.Context().TraceID)
	if len(spans) == 0 {
		httpError(w, http.StatusConflict,
			fmt.Errorf("campaign: job %s has no completed spans yet", j.ID))
		return nil, nil, false
	}
	return j, spans, true
}

// getJobSpans serves GET /v1/jobs/{id}/spans: every completed span of
// the job's trace as OTLP-shaped JSON (resourceSpans → scopeSpans →
// spans), importable by any OTLP-aware trace viewer.
func (s *Server) getJobSpans(w http.ResponseWriter, r *http.Request) {
	_, spans, ok := s.jobTraceSpans(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = tracing.WriteOTLP(w, "ensemblekit", spans)
}

// getJobCriticalPath serves GET /v1/jobs/{id}/critical-path: the
// longest causal chain through the job's span subtree, with per-kind
// totals — the runtime analogue of the paper's per-stage time
// decomposition. The segment durations sum exactly to the job's
// end-to-end latency (gaps are attributed to the span they occur in).
func (s *Server) getJobCriticalPath(w http.ResponseWriter, r *http.Request) {
	j, spans, ok := s.jobTraceSpans(w, r)
	if !ok {
		return
	}
	switch j.Status() {
	case StatusDone, StatusFailed, StatusCancelled:
	default:
		httpError(w, http.StatusConflict,
			fmt.Errorf("campaign: job %s is %s; critical path needs a finished job", j.ID, j.Status()))
		return
	}
	cp, err := tracing.ComputeCriticalPath(spans, j.span.Context().SpanID)
	if err != nil {
		httpError(w, http.StatusConflict, fmt.Errorf("campaign: job %s: %w", j.ID, err))
		return
	}
	// Pair the wall-clock decomposition with the job's simulated
	// core-second ledger so one response answers both "where did the
	// latency go" and "what did it cost".
	resp := criticalPathResponse{CriticalPath: cp}
	if res, rerr := j.Result(); rerr == nil && res != nil && res.Trace != nil {
		jl := accounting.FromTrace(res.Trace)
		resp.Accounting = &jl
	}
	writeJSON(w, http.StatusOK, resp)
}

// criticalPathResponse decorates the critical path with the job's
// resource ledger (absent for failed jobs without a trace).
type criticalPathResponse struct {
	*tracing.CriticalPath
	Accounting *accounting.JobLedger `json:"accounting,omitempty"`
}

// statsResponse decorates Stats with the derived hit rate.
type statsResponse struct {
	Stats
	HitRate float64 `json:"hitRate"`
}

func (s *Server) getStats(w http.ResponseWriter, _ *http.Request) {
	st := s.svc.Stats()
	writeJSON(w, http.StatusOK, statsResponse{Stats: st, HitRate: st.HitRate()})
}
