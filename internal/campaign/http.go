package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"ensemblekit/internal/obs"
	"ensemblekit/internal/placement"
)

// CampaignRequest is the body of POST /v1/campaigns: a Sweep, with the
// option of naming built-in placements instead of (or in addition to)
// inlining them. Configs accepts paper names ("C1.5") and the shortcuts
// "table2", "table2x2", "table4" for whole tables.
type CampaignRequest struct {
	Sweep
	Configs []string `json:"configs,omitempty"`
}

// resolve expands Configs into Sweep.Placements (built-ins first, inline
// placements after, matching the order the request lists them).
func (r CampaignRequest) resolve() (Sweep, error) {
	sw := r.Sweep
	var resolved []placement.Placement
	for _, name := range r.Configs {
		switch name {
		case "table2":
			resolved = append(resolved, placement.ConfigsTable2()...)
		case "table2x2":
			resolved = append(resolved, placement.ConfigsTable2TwoMember()...)
		case "table4":
			resolved = append(resolved, placement.ConfigsTable4()...)
		default:
			p, ok := placement.ByName(name)
			if !ok {
				return Sweep{}, fmt.Errorf("campaign: unknown config %q", name)
			}
			resolved = append(resolved, p)
		}
	}
	sw.Placements = append(resolved, sw.Placements...)
	return sw, nil
}

// CampaignStatus is the wire form of a campaign's state, returned by the
// campaign endpoints.
type CampaignStatus struct {
	// ID identifies the campaign within the server ("c-1").
	ID string `json:"id"`
	// Name echoes the request name.
	Name string `json:"name,omitempty"`
	// Status is "running", "done" or "failed".
	Status string `json:"status"`
	// Done and Total report job-level progress.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Error carries the failure of a failed campaign.
	Error string `json:"error,omitempty"`
	// Result is present once the campaign is done.
	Result *CampaignResult `json:"result,omitempty"`
}

// campaignRun tracks one asynchronous RunCampaign.
type campaignRun struct {
	id   string
	name string
	done chan struct{}

	mu     sync.Mutex
	nDone  int
	nTotal int
	result *CampaignResult
	err    error
}

func (c *campaignRun) status() CampaignStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CampaignStatus{ID: c.id, Name: c.name, Status: "running", Done: c.nDone, Total: c.nTotal}
	select {
	case <-c.done:
		if c.err != nil {
			st.Status = "failed"
			st.Error = c.err.Error()
		} else {
			st.Status = "done"
			st.Result = c.result
		}
	default:
	}
	return st
}

// Server exposes a Service over HTTP: campaign submission and polling,
// per-job Perfetto trace download, and the service's cache/queue counters.
// Build one with NewServer and mount its Handler.
type Server struct {
	svc *Service

	mu        sync.Mutex
	seq       int64
	campaigns map[string]*campaignRun
}

// NewServer wraps a service. The server does not own the service; closing
// is the caller's job.
func NewServer(svc *Service) *Server {
	return &Server{svc: svc, campaigns: make(map[string]*campaignRun)}
}

// Handler returns the route table:
//
//	POST /v1/campaigns        submit a sweep, returns 202 + campaign status
//	GET  /v1/campaigns        list campaigns
//	GET  /v1/campaigns/{id}   poll one campaign (result once done)
//	GET  /v1/jobs/{id}        one job's status
//	GET  /v1/jobs/{id}/trace  Perfetto (Chrome JSON) trace of a done job
//	GET  /v1/stats            service counters incl. cache hit rate
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.postCampaign)
	mux.HandleFunc("GET /v1/campaigns", s.listCampaigns)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.getCampaign)
	mux.HandleFunc("GET /v1/jobs/{id}", s.getJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.getJobTrace)
	mux.HandleFunc("GET /v1/stats", s.getStats)
	return mux
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) postCampaign(w http.ResponseWriter, r *http.Request) {
	var req CampaignRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	sw, err := req.resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// Expand eagerly so malformed sweeps fail the POST, not the poll.
	cands, err := sw.Jobs()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	total := 0
	for _, c := range cands {
		total += len(c.Specs)
	}

	s.mu.Lock()
	s.seq++
	run := &campaignRun{
		id:     fmt.Sprintf("c-%d", s.seq),
		name:   sw.Name,
		done:   make(chan struct{}),
		nTotal: total,
	}
	s.campaigns[run.id] = run
	s.mu.Unlock()

	sw.Progress = func(done, total int) {
		run.mu.Lock()
		run.nDone, run.nTotal = done, total
		run.mu.Unlock()
	}
	go func() {
		res, err := RunCampaign(context.Background(), s.svc, sw)
		run.mu.Lock()
		run.result, run.err = res, err
		run.mu.Unlock()
		close(run.done)
	}()

	writeJSON(w, http.StatusAccepted, run.status())
}

func (s *Server) listCampaigns(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	runs := make([]*campaignRun, 0, len(s.campaigns))
	for _, c := range s.campaigns {
		runs = append(runs, c)
	}
	s.mu.Unlock()
	out := make([]CampaignStatus, 0, len(runs))
	for _, c := range runs {
		st := c.status()
		st.Result = nil // listings stay light; poll the campaign for the result
		out = append(out, st)
	}
	// Deterministic order: by numeric suffix via the id's natural length
	// then lexicographic ("c-2" < "c-10").
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && idLess(out[k].ID, out[k-1].ID); k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// idLess orders "c-2" before "c-10" (shorter numeric suffix first).
func idLess(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

func (s *Server) getCampaign(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	run, ok := s.campaigns[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("campaign: no campaign %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, run.status())
}

// jobStatus is the wire form of a job.
type jobStatus struct {
	ID       string  `json:"id"`
	Hash     string  `json:"hash"`
	Label    string  `json:"label,omitempty"`
	Status   Status  `json:"status"`
	CacheHit bool    `json:"cacheHit,omitempty"`
	Error    string  `json:"error,omitempty"`
	Result   *Result `json:"result,omitempty"`
}

func (s *Server) getJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.svc.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("campaign: no job %q", r.PathValue("id")))
		return
	}
	st := jobStatus{ID: j.ID, Hash: j.Hash, Label: j.Label, Status: j.Status(), CacheHit: j.CacheHit}
	if res, err := j.Result(); err != nil {
		st.Error = err.Error()
	} else if res != nil {
		st.Result = res
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) getJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.svc.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("campaign: no job %q", r.PathValue("id")))
		return
	}
	res, err := j.Result()
	if err != nil {
		httpError(w, http.StatusConflict, fmt.Errorf("campaign: job %s failed: %w", j.ID, err))
		return
	}
	if res == nil || res.Trace == nil {
		httpError(w, http.StatusConflict, fmt.Errorf("campaign: job %s has no trace yet", j.ID))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", j.ID+"-trace.json"))
	// The stored trace replays into obs events post hoc, so traces cost
	// nothing unless somebody downloads one.
	if err := obs.WriteChromeTrace(w, obs.FromTrace(res.Trace)); err != nil {
		// Headers are gone; all we can do is drop the connection.
		return
	}
}

// statsResponse decorates Stats with the derived hit rate.
type statsResponse struct {
	Stats
	HitRate float64 `json:"hitRate"`
}

func (s *Server) getStats(w http.ResponseWriter, _ *http.Request) {
	st := s.svc.Stats()
	writeJSON(w, http.StatusOK, statsResponse{Stats: st, HitRate: st.HitRate()})
}
