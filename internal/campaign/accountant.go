package campaign

import (
	"sync"

	"ensemblekit/internal/campaign/accounting"
	"ensemblekit/internal/runtime"
)

// How a finished job's result reached this service, recorded on the job
// by runRouted and consulted by finish for ledger attribution.
const (
	// servedLocal: executed by this node's own worker (also the
	// fabric-less default).
	servedLocal = ""
	// servedFleet: answered by the owning peer's cache — the fleet tier.
	servedFleet = "fleet"
	// servedForward: executed by the owning peer on our behalf. The
	// campaign is charged here; the cores are accounted on the owner.
	servedForward = "forward"
)

// accountant owns the service's resource ledgers: one per campaign
// (attributing every submission of the campaign, wherever it resolved)
// and one for the node (attributing executions and cache serves that
// happened here — the scope pool federation sums). It also carries the
// RunInfo side channel from defaultRun to finish, keyed by result hash,
// because the runFn signature cannot grow an extra return.
type accountant struct {
	node *accounting.Ledger

	mu        sync.Mutex
	campaigns map[string]*accounting.Ledger
	runInfo   map[string]runtime.RunInfo
}

func newAccountant() *accountant {
	return &accountant{
		node:      accounting.NewLedger(),
		campaigns: make(map[string]*accounting.Ledger),
		runInfo:   make(map[string]runtime.RunInfo),
	}
}

// campaign returns the ledger for a campaign ID, creating it on first
// use; nil for untagged submissions (tracked on the node ledger only).
func (a *accountant) campaign(id string) *accounting.Ledger {
	if id == "" {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	l, ok := a.campaigns[id]
	if !ok {
		l = accounting.NewLedger()
		a.campaigns[id] = l
	}
	return l
}

// lookup returns the ledger for an existing campaign without creating it.
func (a *accountant) lookup(id string) (*accounting.Ledger, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	l, ok := a.campaigns[id]
	return l, ok
}

// noteRunInfo stashes how an execution was served (fast path, plan
// reuse) until the job's finish — or the forward handler — claims it.
func (a *accountant) noteRunInfo(hash string, info runtime.RunInfo) {
	a.mu.Lock()
	a.runInfo[hash] = info
	a.mu.Unlock()
}

// takeRunInfo claims (and removes) the stashed RunInfo for a hash.
func (a *accountant) takeRunInfo(hash string) (runtime.RunInfo, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	info, ok := a.runInfo[hash]
	if ok {
		delete(a.runInfo, hash)
	}
	return info, ok
}

// acctSpent charges one executed submission: always to the campaign
// ledger; and — when the cores burned on this node (onNode) — to the
// node ledger and the campaign_core_seconds_total metric family. A
// forwarded execution passes onNode=false: the owner accounts the cores
// through its own ExecuteForwardedJSON.
func (s *Service) acctSpent(campaignID, hash string, jl accounting.JobLedger, onNode bool) {
	if l := s.acct.campaign(campaignID); l != nil {
		l.RecordSpent(hash, jl)
	}
	if !onNode {
		return
	}
	s.acct.node.RecordSpent(hash, jl)
	classes := accounting.Classes()
	for i, sp := range jl.Splits() {
		s.metrics.coreSeconds.With(classes[i], "busy").Add(sp.Busy)
		s.metrics.coreSeconds.With(classes[i], "idle").Add(sp.Idle)
	}
}

// acctSaved credits one avoided submission to tier, on the campaign and
// node ledgers and the campaign_core_seconds_saved_total family. The
// node scope is the node the submission resolved on — the one whose
// cache (or closed form) did the avoiding.
func (s *Service) acctSaved(campaignID, hash string, jl accounting.JobLedger, tier string) {
	if l := s.acct.campaign(campaignID); l != nil {
		l.RecordSaved(hash, jl, tier)
	}
	s.acct.node.RecordSaved(hash, jl, tier)
	s.metrics.coreSaved.With(tier).Add(jl.Total())
}

// acctWall accumulates worker-execution and queue-wait wall seconds.
func (s *Service) acctWall(campaignID string, workerSec, waitSec float64) {
	if l := s.acct.campaign(campaignID); l != nil {
		l.RecordWall(workerSec, waitSec)
	}
	s.acct.node.RecordWall(workerSec, waitSec)
}

// acctRetryWaste accumulates wall seconds burned by a failed attempt
// that the retry policy re-enqueued.
func (s *Service) acctRetryWaste(campaignID string, sec float64) {
	if l := s.acct.campaign(campaignID); l != nil {
		l.RecordRetryWaste(sec)
	}
	s.acct.node.RecordRetryWaste(sec)
}

// acctFinish attributes a terminal job. Called by finish after the job
// mutex is released and before the service lock is taken; the ledgers
// have their own locks and the snapshot summation is order-independent,
// so concurrent completions need no extra serialization.
func (s *Service) acctFinish(j *Job, res *Result, status Status, started bool, served string, execSec, waitSec float64) {
	if started {
		s.acctWall(j.campaign, execSec, waitSec)
	}
	// Claim the RunInfo stash regardless of outcome so a cancelled-
	// mid-run completion cannot leak its entry.
	info, hasInfo := s.acct.takeRunInfo(j.Hash)
	if status != StatusDone || res == nil {
		return
	}
	jl := accounting.FromTrace(res.Trace)
	switch served {
	case servedFleet:
		s.acctSaved(j.campaign, j.Hash, jl, accounting.TierFleet)
	case servedForward:
		s.acctSpent(j.campaign, j.Hash, jl, false)
	default:
		s.acctSpent(j.campaign, j.Hash, jl, true)
		if hasInfo {
			if info.FastPath {
				s.acctSaved(j.campaign, j.Hash, jl, accounting.TierFastPath)
			}
			if info.PlanReused {
				s.acctSaved(j.campaign, j.Hash, jl, accounting.TierPlanCache)
			}
		}
	}
}

// CampaignAccounting returns the resource-ledger snapshot of one
// campaign: every submission carrying that campaign tag, attributed as
// spent (executed, locally or via a peer) or saved (served by a cache
// tier), plus overlapping plan-cache and fast-path credits and the
// wall-clock cost. ok is false for a campaign the ledger has never seen.
func (s *Service) CampaignAccounting(id string) (accounting.Snapshot, bool) {
	l, ok := s.acct.lookup(id)
	if !ok {
		return accounting.Snapshot{}, false
	}
	return l.Snapshot(), true
}

// NodeAccounting returns this node's resource-ledger snapshot: the
// core-seconds executed on this node's workers (including forwarded
// work it performed for peers) and the core-seconds its tiers avoided.
// Pool federation sums these per-node snapshots into the fleet rollup.
func (s *Service) NodeAccounting() accounting.Snapshot {
	return s.acct.node.Snapshot()
}
