package campaign

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/runtime"
)

// jobFor builds a distinct valid spec per seed.
func jobFor(t *testing.T, seed int64) JobSpec {
	t.Helper()
	p := placement.C15()
	es := runtime.SpecForPlacement(p, 4)
	js, err := NewJob(cluster.Cori(2), p, es, runtime.SimOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return js
}

func TestConcurrentIdenticalSubmissionsRunOnce(t *testing.T) {
	var executions atomic.Int64
	release := make(chan struct{})
	svc, err := NewService(Config{
		Workers: 4,
		runFn: func(_ context.Context, spec JobSpec) (*Result, error) {
			executions.Add(1)
			<-release // hold the run so every submission sees it in flight
			return Execute(spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const n = 16
	spec := jobFor(t, 1)
	jobs := make([]*Job, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := svc.Submit(context.Background(), spec, SubmitOptions{})
			if err != nil {
				t.Error(err)
				return
			}
			jobs[i] = j
		}(i)
	}
	wg.Wait()
	close(release)

	var first *Result
	for i, j := range jobs {
		res, err := j.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
		} else if res != first {
			t.Errorf("submission %d got a different result object", i)
		}
	}
	if got := executions.Load(); got != 1 {
		t.Errorf("identical submissions executed %d times, want 1", got)
	}
	st := svc.Stats()
	if st.Dedups != n-1 {
		t.Errorf("dedups = %d, want %d", st.Dedups, n-1)
	}
}

func TestDistinctSpecsNeverShare(t *testing.T) {
	var executions atomic.Int64
	svc, err := NewService(Config{
		Workers: 4,
		runFn: func(_ context.Context, spec JobSpec) (*Result, error) {
			executions.Add(1)
			return Execute(spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const n = 6
	hashes := make(map[string]bool)
	results := make(map[*Result]bool)
	for i := 0; i < n; i++ {
		j, err := svc.SubmitWait(context.Background(), jobFor(t, int64(i+1)), SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := j.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		hashes[j.Hash] = true
		results[res] = true
	}
	if len(hashes) != n || len(results) != n {
		t.Errorf("got %d hashes / %d results for %d distinct specs", len(hashes), len(results), n)
	}
	if got := executions.Load(); got != n {
		t.Errorf("distinct specs executed %d times, want %d", got, n)
	}
}

func TestCacheHitOnResubmit(t *testing.T) {
	svc, err := NewService(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	spec := jobFor(t, 1)
	j1, err := svc.Submit(context.Background(), spec, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := j1.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	j2, err := svc.Submit(context.Background(), spec, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !j2.CacheHit {
		t.Error("resubmission of a completed spec was not a cache hit")
	}
	res2, err := j2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res2 != res1 {
		t.Error("cache hit returned a different result object")
	}
	if st := svc.Stats(); st.CacheHits != 1 || st.HitRate() != 0.5 {
		t.Errorf("stats: hits=%d rate=%.2f, want 1 and 0.50", st.CacheHits, st.HitRate())
	}
}

func TestCancelledJobsDoNotPoisonCache(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	svc, err := NewService(Config{
		Workers: 1,
		runFn: func(ctx context.Context, spec JobSpec) (*Result, error) {
			once.Do(func() { close(started) }) // the post-cancel re-run enters here too
			<-release
			return Execute(spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	spec := jobFor(t, 1)
	j, err := svc.Submit(context.Background(), spec, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the worker is inside runFn
	j.Cancel()
	close(release)
	if _, err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled job returned %v, want context.Canceled", err)
	}

	// The next submission must re-execute: nothing was cached.
	j2, err := svc.Submit(context.Background(), spec, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if j2.CacheHit {
		t.Error("cancelled job's result leaked into the cache")
	}
	if res, err := j2.Wait(context.Background()); err != nil || res == nil {
		t.Fatalf("re-run after cancel: res=%v err=%v", res, err)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	svc, err := NewService(Config{
		Workers: 1,
		runFn: func(_ context.Context, spec JobSpec) (*Result, error) {
			<-release
			return Execute(spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Occupy the only worker, then queue a second job and cancel it.
	blocker, err := svc.Submit(context.Background(), jobFor(t, 1), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := svc.Submit(context.Background(), jobFor(t, 2), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	queued.Cancel()
	if _, err := queued.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued cancel: got %v, want context.Canceled", err)
	}
	if got := queued.Status(); got != StatusCancelled {
		t.Errorf("status = %s, want cancelled", got)
	}
	close(release)
	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.Cancelled != 1 {
		t.Errorf("cancelled counter = %d, want 1", st.Cancelled)
	}
}

func TestSubmitBackpressure(t *testing.T) {
	release := make(chan struct{})
	svc, err := NewService(Config{
		Workers:    1,
		QueueDepth: 1,
		runFn: func(_ context.Context, spec JobSpec) (*Result, error) {
			<-release
			return Execute(spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// First job occupies the worker (it may briefly sit in the queue);
	// second fills the queue; third must bounce.
	if _, err := svc.Submit(context.Background(), jobFor(t, 1), SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the first job")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := svc.Submit(context.Background(), jobFor(t, 2), SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(context.Background(), jobFor(t, 3), SubmitOptions{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: got %v, want ErrQueueFull", err)
	}

	// SubmitWait blocks instead, and completes once the queue drains.
	done := make(chan error, 1)
	go func() {
		j, err := svc.SubmitWait(context.Background(), jobFor(t, 3), SubmitOptions{})
		if err == nil {
			_, err = j.Wait(context.Background())
		}
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("SubmitWait returned before a slot freed: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestPriorityOrdersQueue(t *testing.T) {
	var mu sync.Mutex
	var order []int64
	release := make(chan struct{})
	svc, err := NewService(Config{
		Workers: 1,
		runFn: func(_ context.Context, spec JobSpec) (*Result, error) {
			mu.Lock()
			order = append(order, spec.Sim.Seed)
			mu.Unlock()
			<-release
			return Execute(spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Occupy the worker so subsequent submissions queue up.
	first, err := svc.Submit(context.Background(), jobFor(t, 1), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started")
		}
		time.Sleep(time.Millisecond)
	}
	var jobs []*Job
	for seed, prio := range map[int64]int{2: 0, 3: 5, 4: 5, 5: 10} {
		j, err := svc.Submit(context.Background(), jobFor(t, seed), SubmitOptions{Priority: prio})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	close(release)
	if _, err := first.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if len(order) != 5 || order[0] != 1 {
		t.Fatalf("execution order %v", order)
	}
	// Highest priority first; the two priority-5 jobs keep submission
	// order relative to each other; priority 0 runs last.
	if order[1] != 5 {
		t.Errorf("priority 10 ran at position %v, want right after the blocker: %v", order[1], order)
	}
	if order[4] != 2 {
		t.Errorf("priority 0 should run last: %v", order)
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	svc, err := NewService(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	if _, err := svc.Submit(context.Background(), jobFor(t, 1), SubmitOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	spec := jobFor(t, 1)

	svc1, err := NewService(Config{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	j, err := svc1.Submit(context.Background(), spec, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	svc1.Close()

	svc2, err := NewService(Config{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	j2, err := svc2.Submit(context.Background(), spec, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !j2.CacheHit {
		t.Fatal("restarted service missed the disk cache")
	}
	res2, err := j2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Makespan != res1.Makespan || res2.Objective != res1.Objective {
		t.Errorf("disk round-trip changed the result: %+v vs %+v", res2, res1)
	}
	if st := svc2.Stats(); st.DiskHits != 1 {
		t.Errorf("disk hits = %d, want 1", st.DiskHits)
	}
}
