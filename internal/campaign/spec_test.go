package campaign

import (
	"encoding/json"
	"errors"
	"testing"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/faults"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/runtime"
)

// testJob builds a valid baseline spec (C1.5 on two Cori nodes).
func testJob(t *testing.T) JobSpec {
	t.Helper()
	p := placement.C15()
	es := runtime.SpecForPlacement(p, 4)
	js, err := NewJob(cluster.Cori(2), p, es, runtime.SimOptions{Seed: 1, Jitter: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if err := js.Validate(); err != nil {
		t.Fatal(err)
	}
	return js
}

func hashOf(t *testing.T, js JobSpec) string {
	t.Helper()
	h, err := js.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHashInvariantUnderNodeListRepresentation(t *testing.T) {
	base := testJob(t)
	want := hashOf(t, base)

	// Reorder and duplicate component node lists: same node set, same run.
	messy := base
	messy.Placement.Members = append([]placement.Member(nil), base.Placement.Members...)
	m := messy.Placement.Members[1]
	m.Simulation.Nodes = []int{1, 1, 1}
	m.Analyses = append([]placement.Component(nil), m.Analyses...)
	m.Analyses[0].Nodes = []int{1, 1}
	messy.Placement.Members[1] = m
	if got := hashOf(t, messy); got != want {
		t.Errorf("node-list order/duplication changed the hash: %s vs %s", got, want)
	}
}

func TestHashInvariantUnderJSONRoundTrip(t *testing.T) {
	specs := []JobSpec{testJob(t)}
	// Also round-trip a spec with a fault plan, the pointer-heavy case.
	withFaults := testJob(t)
	withFaults.Faults = &faults.Plan{
		Name: "flaky",
		Seed: 9,
		Staging: []faults.StagingFault{
			{Tier: runtime.TierDimes, Rate: 0.05},
		},
	}
	specs = append(specs, withFaults)

	for i, js := range specs {
		want := hashOf(t, js)
		b, err := json.Marshal(js)
		if err != nil {
			t.Fatal(err)
		}
		var back JobSpec
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if got := hashOf(t, back); got != want {
			t.Errorf("spec %d: JSON round-trip changed the hash: %s vs %s", i, got, want)
		}
	}
}

func TestHashInvariantUnderEmptyVsNilFaultSlices(t *testing.T) {
	base := testJob(t)
	want := hashOf(t, base)

	// A present-but-empty plan is semantically no plan at all.
	withEmpty := base
	withEmpty.Faults = &faults.Plan{}
	if got := hashOf(t, withEmpty); got != want {
		t.Errorf("empty fault plan changed the hash: %s vs %s", got, want)
	}

	// Empty vs nil rule slices inside a non-empty plan.
	a := base
	a.Faults = &faults.Plan{Staging: []faults.StagingFault{{Tier: runtime.TierDimes, Rate: 0.1}}}
	b := base
	b.Faults = &faults.Plan{
		Staging:    []faults.StagingFault{{Tier: runtime.TierDimes, Rate: 0.1}},
		Network:    []faults.NetworkWindow{},
		Crashes:    []faults.NodeCrash{},
		Stragglers: []faults.Straggler{},
	}
	if hashOf(t, a) != hashOf(t, b) {
		t.Error("empty vs nil fault-rule slices changed the hash")
	}
}

func TestHashChangesForEverySemanticField(t *testing.T) {
	base := testJob(t)
	want := hashOf(t, base)

	mutations := map[string]func(*JobSpec){
		"placement": func(js *JobSpec) {
			p := placement.C11() // different node assignment, same workload shape
			js.Placement = p
			js.Ensemble = runtime.SpecForPlacement(p, 4)
			js.Cluster.Nodes = 3
		},
		"steps": func(js *JobSpec) {
			js.Ensemble = runtime.SpecForPlacement(placement.C15(), 8)
		},
		"seed":   func(js *JobSpec) { js.Sim.Seed = 2 },
		"jitter": func(js *JobSpec) { js.Sim.Jitter = 0.1 },
		"tier":   func(js *JobSpec) { js.Sim.Tier = runtime.TierBurstBuffer },
		"fault plan": func(js *JobSpec) {
			js.Faults = &faults.Plan{Staging: []faults.StagingFault{{Tier: runtime.TierDimes, Rate: 0.2}}}
		},
		"fault seed": func(js *JobSpec) {
			js.Faults = &faults.Plan{Seed: 7, Staging: []faults.StagingFault{{Tier: runtime.TierDimes, Rate: 0.2}}}
		},
		"resilience": func(js *JobSpec) {
			js.Sim.Resilience = runtime.Resilience{StagingRetries: 3, Mode: runtime.DropMember}
		},
		"cluster size":  func(js *JobSpec) { js.Cluster.Nodes = 5 },
		"staging slots": func(js *JobSpec) { js.Sim.StagingSlots = 4 },
	}
	for name, mutate := range mutations {
		js := base
		mutate(&js)
		if got := hashOf(t, js); got == want {
			t.Errorf("mutating %s did not change the hash", name)
		}
	}
}

func TestHashIgnoresRecorderButRejectsModel(t *testing.T) {
	p := placement.C15()
	es := runtime.SpecForPlacement(p, 4)
	spec := cluster.Cori(2)

	plain, err := NewJob(spec, p, es, runtime.SimOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	instrumented, err := NewJob(spec, p, es, runtime.SimOptions{Seed: 1, Recorder: nil})
	if err != nil {
		t.Fatal(err)
	}
	if hashOf(t, plain) != hashOf(t, instrumented) {
		t.Error("recorder presence changed the hash")
	}

	_, err = NewJob(spec, p, es, runtime.SimOptions{Model: cluster.NewModel(spec)})
	if !errors.Is(err, ErrNotCacheable) {
		t.Errorf("model override: got %v, want ErrNotCacheable", err)
	}
}

func TestNewJobFoldsLegacyFailStagingAt(t *testing.T) {
	p := placement.C15()
	es := runtime.SpecForPlacement(p, 4)
	js, err := NewJob(cluster.Cori(2), p, es, runtime.SimOptions{FailStagingAt: 3})
	if err != nil {
		t.Fatal(err)
	}
	if js.Faults == nil || len(js.Faults.Staging) != 1 || js.Faults.Staging[0].FailAtOp != 3 {
		t.Fatalf("FailStagingAt not folded into the fault plan: %+v", js.Faults)
	}

	// The folded form hashes identically to the explicit plan.
	explicit, err := NewJob(cluster.Cori(2), p, es, runtime.SimOptions{
		Faults: &faults.Plan{Staging: []faults.StagingFault{{FailAtOp: 3}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if hashOf(t, js) != hashOf(t, explicit) {
		t.Error("legacy FailStagingAt and explicit plan hash differently")
	}
}

func TestNewJobGrowsClusterToPlacement(t *testing.T) {
	p := placement.C15() // uses nodes 0 and 1
	es := runtime.SpecForPlacement(p, 4)
	js, err := NewJob(cluster.Cori(1), p, es, runtime.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if js.Cluster.Nodes != 2 {
		t.Errorf("cluster not grown: %d nodes, want 2", js.Cluster.Nodes)
	}
	if err := js.Validate(); err != nil {
		t.Errorf("grown spec should validate: %v", err)
	}
}
