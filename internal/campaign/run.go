package campaign

import (
	"context"
	"fmt"
	"time"

	"ensemblekit/internal/core"
	"ensemblekit/internal/indicators"
	"ensemblekit/internal/obs"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/runtime"
	"ensemblekit/internal/telemetry/tracing"
	"ensemblekit/internal/trace"
)

// Execute runs one job to completion in the calling goroutine — the serial
// path the service parallelizes. The returned result is exactly what a
// direct runtime.RunSimulated of the same inputs produces (the trace is
// byte-identical), plus the derived indicator quantities.
func Execute(spec JobSpec) (*Result, error) {
	hash, err := spec.Hash()
	if err != nil {
		return nil, err
	}
	tr, err := runSpec(spec, nil)
	if err != nil {
		return nil, err
	}
	return derive(hash, spec.Placement, tr)
}

// runSpec dispatches the spec to its backend: runtime.RunReal when the
// spec carries a RealConfig, runtime.RunSimulated otherwise. The fault
// plan and resilience policy are shared between backends; rec, when
// non-nil, attaches the live obs recorder.
func runSpec(spec JobSpec, rec *obs.Recorder) (*trace.EnsembleTrace, error) {
	if spec.Real != nil {
		ro := spec.Real.Options()
		ro.Faults = spec.Faults
		ro.Resilience = spec.Sim.Resilience
		ro.Recorder = rec
		return runtime.RunReal(spec.Placement, ro)
	}
	opts := spec.Sim.Options()
	opts.Faults = spec.Faults
	opts.Recorder = rec
	return runtime.RunSimulated(spec.Cluster, spec.Placement, spec.Ensemble, opts)
}

// executeTraced is Execute with the DES run observed: when ctx carries a
// recording span (the worker's execute span), the run attaches a live
// obs recorder and replays its event stream as child spans — component,
// stage, DTL, flow, and fault — under that span. The affine map
// wall = anchor + scale·virtual with scale = wallDuration/makespan
// tiles the simulated timeline onto the measured execution window, so
// the critical path's stage durations sum to the job's real latency.
// The map's parameters are recorded on the execute span
// (des.anchorUnixNano, des.scale, des.makespanSec) so exporters can
// invert it. Untraced calls (nil tracer, no span) fall through to
// Execute; the recorder never alters the simulation itself — the trace
// stays byte-identical (see TestSimulatedRecorderBitIdentical).
func executeTraced(ctx context.Context, tracer *tracing.Tracer, spec JobSpec) (*Result, error) {
	span := tracing.SpanFromContext(ctx)
	if tracer == nil || !span.Recording() {
		return Execute(spec)
	}
	hash, err := spec.Hash()
	if err != nil {
		return nil, err
	}
	rec := obs.NewRecorder(nil)
	anchor := time.Now()
	tr, err := runSpec(spec, rec)
	wallSec := time.Since(anchor).Seconds()
	if err != nil {
		span.SetAttr(tracing.Float("des.makespanSec", 0))
		return nil, err
	}
	makespan := tr.Makespan()
	scale := 1.0
	if makespan > 0 && wallSec > 0 {
		scale = wallSec / makespan
	}
	span.SetAttr(
		tracing.Int64("des.anchorUnixNano", anchor.UnixNano()),
		tracing.Float("des.scale", scale),
		tracing.Float("des.makespanSec", makespan))
	obs.BridgeSpans(tracer, span.Context(), rec.Events(), anchor, scale)
	return derive(hash, spec.Placement, tr)
}

// derive computes the paper's quantities from a finished trace: surviving
// efficiencies (Eq. 3), the full indicator report, and F(P^{U,A,P}).
func derive(hash string, p placement.Placement, tr *trace.EnsembleTrace) (*Result, error) {
	surviving := placement.Placement{Name: p.Name}
	var effs []float64
	dropped := 0
	for i, m := range tr.Members {
		if m.Dropped() {
			dropped++
			continue
		}
		ss, err := core.FromMemberTrace(m, core.ExtractOptions{})
		if err != nil {
			return nil, fmt.Errorf("campaign: member %d: %w", i, err)
		}
		e, err := ss.Efficiency()
		if err != nil {
			return nil, fmt.Errorf("campaign: member %d: %w", i, err)
		}
		surviving.Members = append(surviving.Members, p.Members[i])
		effs = append(effs, e)
	}
	res := &Result{
		Hash:     hash,
		Trace:    tr,
		Makespan: tr.Makespan(),
		Dropped:  dropped,
	}
	if len(effs) == 0 {
		return nil, fmt.Errorf("campaign: no surviving members in %q", p.Name)
	}
	rep, err := indicators.FullReport(surviving, effs)
	if err != nil {
		return nil, err
	}
	res.Efficiencies = effs
	res.Report = rep
	res.Objective = rep.PerStage[indicators.StageUAP.String()]
	return res, nil
}
