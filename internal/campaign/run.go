package campaign

import (
	"context"
	"fmt"
	"math"
	"time"

	"ensemblekit/internal/core"
	"ensemblekit/internal/indicators"
	"ensemblekit/internal/obs"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/runtime"
	"ensemblekit/internal/telemetry/tracing"
	"ensemblekit/internal/trace"
)

// execHints carries the service's execution tuning into a single run:
// the campaign-shared World, the member-parallelism degree, and the
// steady-state fast path with its optional cross-check. Hints never
// change results — they are deliberately excluded from JobSpec and its
// hash (see runtime.SimOptions) — so hinted and unhinted executions of
// the same spec are interchangeable, cache-compatible, and produce the
// same campaign fingerprint.
type execHints struct {
	world    *runtime.World
	members  int
	fastPath bool
	verify   bool
}

// Execute runs one job to completion in the calling goroutine — the serial
// path the service parallelizes. The returned result is exactly what a
// direct runtime.RunSimulated of the same inputs produces (the trace is
// byte-identical), plus the derived indicator quantities.
func Execute(spec JobSpec) (*Result, error) {
	res, _, err := executeHinted(spec, execHints{})
	return res, err
}

// executeHinted is Execute with execution hints applied, reporting how
// the run was served.
func executeHinted(spec JobSpec, h execHints) (*Result, runtime.RunInfo, error) {
	hash, err := spec.Hash()
	if err != nil {
		return nil, runtime.RunInfo{}, err
	}
	tr, info, err := runSpec(spec, nil, h)
	if err != nil {
		return nil, info, err
	}
	res, err := derive(hash, spec.Placement, tr)
	return res, info, err
}

// runSpec dispatches the spec to its backend: runtime.RunReal when the
// spec carries a RealConfig, runtime.RunSimulated otherwise. The fault
// plan and resilience policy are shared between backends; rec, when
// non-nil, attaches the live obs recorder. Hints apply only to the
// simulated backend.
func runSpec(spec JobSpec, rec *obs.Recorder, h execHints) (*trace.EnsembleTrace, runtime.RunInfo, error) {
	if spec.Real != nil {
		ro := spec.Real.Options()
		ro.Faults = spec.Faults
		ro.Resilience = spec.Sim.Resilience
		ro.Recorder = rec
		tr, err := runtime.RunReal(spec.Placement, ro)
		return tr, runtime.RunInfo{}, err
	}
	opts := spec.Sim.Options()
	opts.Faults = spec.Faults
	opts.Recorder = rec
	opts.World = h.world
	opts.MemberParallelism = h.members
	opts.FastPath = h.fastPath
	return runtime.RunSimulatedInfo(spec.Cluster, spec.Placement, spec.Ensemble, opts)
}

// executeTraced is Execute with the DES run observed: when ctx carries a
// recording span (the worker's execute span), the run attaches a live
// obs recorder and replays its event stream as child spans — component,
// stage, DTL, flow, and fault — under that span. The affine map
// wall = anchor + scale·virtual with scale = wallDuration/makespan
// tiles the simulated timeline onto the measured execution window, so
// the critical path's stage durations sum to the job's real latency.
// The map's parameters are recorded on the execute span
// (des.anchorUnixNano, des.scale, des.makespanSec) so exporters can
// invert it. Untraced calls (nil tracer, no span) fall through to
// Execute; the recorder never alters the simulation itself — the trace
// stays byte-identical (see TestSimulatedRecorderBitIdentical).
func executeTraced(ctx context.Context, tracer *tracing.Tracer, spec JobSpec) (*Result, error) {
	res, _, err := executeTracedHinted(ctx, tracer, spec, execHints{})
	return res, err
}

// executeTracedHinted is executeTraced with execution hints applied. The
// execute span additionally records members.parallelism (the effective
// degree, 0 = joint path) and des.fastpath; fast-path runs dispatch no
// DES events, so there is no obs stream to bridge into child spans.
func executeTracedHinted(ctx context.Context, tracer *tracing.Tracer, spec JobSpec, h execHints) (*Result, runtime.RunInfo, error) {
	span := tracing.SpanFromContext(ctx)
	if tracer == nil || !span.Recording() {
		return executeHinted(spec, h)
	}
	hash, err := spec.Hash()
	if err != nil {
		return nil, runtime.RunInfo{}, err
	}
	rec := obs.NewRecorder(nil)
	anchor := time.Now()
	tr, info, err := runSpec(spec, rec, h)
	wallSec := time.Since(anchor).Seconds()
	if err != nil {
		span.SetAttr(tracing.Float("des.makespanSec", 0))
		return nil, info, err
	}
	makespan := tr.Makespan()
	scale := 1.0
	if makespan > 0 && wallSec > 0 {
		scale = wallSec / makespan
	}
	span.SetAttr(
		tracing.Int64("des.anchorUnixNano", anchor.UnixNano()),
		tracing.Float("des.scale", scale),
		tracing.Float("des.makespanSec", makespan),
		tracing.Int("members.parallelism", info.MemberParallelism),
		tracing.Bool("des.fastpath", info.FastPath))
	if !info.FastPath {
		obs.BridgeSpans(tracer, span.Context(), rec.Events(), anchor, scale)
	}
	res, err := derive(hash, spec.Placement, tr)
	return res, info, err
}

// fpVerifyTol is the relative tolerance of the fast-path cross-check.
// The closed form replicates the engine's float arithmetic, so agreement
// is in practice bit-exact; the tolerance absorbs only the derived
// quantities' reduction order.
const fpVerifyTol = 1e-9

// verifyFastPath cross-checks a fast-path result against the DES: it
// re-runs the spec with the fast path disabled (same hints otherwise)
// and asserts that the derived Eq. 5-9 quantities — makespan, member
// efficiencies, the full indicator report, the objective — and every
// member's extracted steady state (Eq. 1-3 inputs) agree within
// fpVerifyTol. A disagreement is a model bug, never a transient.
func verifyFastPath(spec JobSpec, fast *Result, h execHints) error {
	h.fastPath = false
	h.verify = false
	ref, _, err := executeHinted(spec, h)
	if err != nil {
		return fmt.Errorf("campaign: fast-path verify: DES re-run: %w", err)
	}
	if !relEq(fast.Makespan, ref.Makespan) {
		return fmt.Errorf("campaign: fast-path verify: makespan %v != DES %v", fast.Makespan, ref.Makespan)
	}
	if !relEq(fast.Objective, ref.Objective) {
		return fmt.Errorf("campaign: fast-path verify: objective %v != DES %v", fast.Objective, ref.Objective)
	}
	if len(fast.Efficiencies) != len(ref.Efficiencies) {
		return fmt.Errorf("campaign: fast-path verify: %d efficiencies != DES %d",
			len(fast.Efficiencies), len(ref.Efficiencies))
	}
	for i, e := range fast.Efficiencies {
		if !relEq(e, ref.Efficiencies[i]) {
			return fmt.Errorf("campaign: fast-path verify: member %d efficiency %v != DES %v",
				i, e, ref.Efficiencies[i])
		}
	}
	if len(fast.Report.PerStage) != len(ref.Report.PerStage) {
		return fmt.Errorf("campaign: fast-path verify: report has %d stages, DES %d",
			len(fast.Report.PerStage), len(ref.Report.PerStage))
	}
	for stage, v := range fast.Report.PerStage {
		rv, ok := ref.Report.PerStage[stage]
		if !ok || !relEq(v, rv) {
			return fmt.Errorf("campaign: fast-path verify: indicator %s %v != DES %v", stage, v, rv)
		}
	}
	for i := range fast.Trace.Members {
		fss, err := core.FromMemberTrace(fast.Trace.Members[i], core.ExtractOptions{})
		if err != nil {
			return fmt.Errorf("campaign: fast-path verify: member %d: %w", i, err)
		}
		rss, err := core.FromMemberTrace(ref.Trace.Members[i], core.ExtractOptions{})
		if err != nil {
			return fmt.Errorf("campaign: fast-path verify: member %d (DES): %w", i, err)
		}
		if !fss.ApproxEqual(rss, fpVerifyTol) {
			return fmt.Errorf("campaign: fast-path verify: member %d steady state %+v != DES %+v", i, fss, rss)
		}
	}
	return nil
}

// relEq compares two derived quantities at fpVerifyTol relative
// tolerance.
func relEq(a, b float64) bool {
	return math.Abs(a-b) <= fpVerifyTol*math.Max(math.Abs(a), math.Abs(b))
}

// derive computes the paper's quantities from a finished trace: surviving
// efficiencies (Eq. 3), the full indicator report, and F(P^{U,A,P}).
func derive(hash string, p placement.Placement, tr *trace.EnsembleTrace) (*Result, error) {
	surviving := placement.Placement{Name: p.Name}
	var effs []float64
	dropped := 0
	for i, m := range tr.Members {
		if m.Dropped() {
			dropped++
			continue
		}
		ss, err := core.FromMemberTrace(m, core.ExtractOptions{})
		if err != nil {
			return nil, fmt.Errorf("campaign: member %d: %w", i, err)
		}
		e, err := ss.Efficiency()
		if err != nil {
			return nil, fmt.Errorf("campaign: member %d: %w", i, err)
		}
		surviving.Members = append(surviving.Members, p.Members[i])
		effs = append(effs, e)
	}
	res := &Result{
		Hash:     hash,
		Trace:    tr,
		Makespan: tr.Makespan(),
		Dropped:  dropped,
	}
	if len(effs) == 0 {
		return nil, fmt.Errorf("campaign: no surviving members in %q", p.Name)
	}
	rep, err := indicators.FullReport(surviving, effs)
	if err != nil {
		return nil, err
	}
	res.Efficiencies = effs
	res.Report = rep
	res.Objective = rep.PerStage[indicators.StageUAP.String()]
	return res, nil
}
