package campaign

import (
	"fmt"

	"ensemblekit/internal/core"
	"ensemblekit/internal/indicators"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/runtime"
	"ensemblekit/internal/trace"
)

// Execute runs one job to completion in the calling goroutine — the serial
// path the service parallelizes. The returned result is exactly what a
// direct runtime.RunSimulated of the same inputs produces (the trace is
// byte-identical), plus the derived indicator quantities.
func Execute(spec JobSpec) (*Result, error) {
	hash, err := spec.Hash()
	if err != nil {
		return nil, err
	}
	opts := spec.Sim.Options()
	opts.Faults = spec.Faults
	tr, err := runtime.RunSimulated(spec.Cluster, spec.Placement, spec.Ensemble, opts)
	if err != nil {
		return nil, err
	}
	return derive(hash, spec.Placement, tr)
}

// derive computes the paper's quantities from a finished trace: surviving
// efficiencies (Eq. 3), the full indicator report, and F(P^{U,A,P}).
func derive(hash string, p placement.Placement, tr *trace.EnsembleTrace) (*Result, error) {
	surviving := placement.Placement{Name: p.Name}
	var effs []float64
	dropped := 0
	for i, m := range tr.Members {
		if m.Dropped() {
			dropped++
			continue
		}
		ss, err := core.FromMemberTrace(m, core.ExtractOptions{})
		if err != nil {
			return nil, fmt.Errorf("campaign: member %d: %w", i, err)
		}
		e, err := ss.Efficiency()
		if err != nil {
			return nil, fmt.Errorf("campaign: member %d: %w", i, err)
		}
		surviving.Members = append(surviving.Members, p.Members[i])
		effs = append(effs, e)
	}
	res := &Result{
		Hash:     hash,
		Trace:    tr,
		Makespan: tr.Makespan(),
		Dropped:  dropped,
	}
	if len(effs) == 0 {
		return nil, fmt.Errorf("campaign: no surviving members in %q", p.Name)
	}
	rep, err := indicators.FullReport(surviving, effs)
	if err != nil {
		return nil, err
	}
	res.Efficiencies = effs
	res.Report = rep
	res.Objective = rep.PerStage[indicators.StageUAP.String()]
	return res, nil
}
