package campaign

import (
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"ensemblekit/internal/campaign/accounting"
)

// Fabric is the service's view of the distributed pool (implemented by
// *pool.Pool; the interfaces mirror each other so neither package
// imports the other — cmd/ensembled wires them together). All payloads
// are opaque JSON: the pool routes and transports, the service decides
// what the bytes mean.
type Fabric interface {
	// NodeID is this node's advertised identity in the pool.
	NodeID() string
	// Owner resolves the consistent-hash ring owner of a job hash; self
	// reports whether this node owns it.
	Owner(hash string) (peer string, self bool)
	// Lookup consults a peer's result cache (the fleet cache tier).
	// found=false with nil error is a clean miss.
	Lookup(ctx context.Context, peer, hash string) (res []byte, found bool, err error)
	// Execute forwards a job to its owner and blocks for the result.
	Execute(ctx context.Context, peer, hash string, specJSON []byte, label string) ([]byte, error)
	// Handoff offers a queued job to the hash's ring successors for
	// asynchronous execution (the drain path), returning the acceptor.
	Handoff(ctx context.Context, hash string, specJSON []byte, label string, priority int) (string, error)
}

// SetFabric attaches the node to a pool: job executions route by ring
// ownership (local when this node owns the hash, peer cache lookup then
// forwarded execution otherwise), and job events carry the executing
// node's ID. Call it before serving traffic; a nil fabric (the default)
// keeps every execution local.
func (s *Service) SetFabric(f Fabric) {
	s.mu.Lock()
	s.fabric = f
	if f != nil {
		s.nodeID = f.NodeID()
	}
	s.mu.Unlock()
}

// fabricSnapshot reads the fabric under the service lock.
func (s *Service) fabricSnapshot() Fabric {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fabric
}

// runRouted executes one job according to ring ownership. Self-owned
// hashes (and the solo, fabric-less configuration) run locally through
// the shielded runner. Peer-owned hashes first consult the owner's
// cache — the fleet tier, making every node's results reachable from
// every other — then forward the execution to the owner, which dedups
// them against its own in-flight work. Failure handling leans on the
// existing retry machinery: a transport failure marks the peer dead
// (the pool rebalances the ring) and surfaces as a transient error, so
// the retry re-routes to the new owner; with retries disabled the job
// falls back to local execution instead, so a peer loss can never fail
// a job outright.
func (s *Service) runRouted(ctx context.Context, j *Job) (*Result, error) {
	fab := s.fabricSnapshot()
	if fab == nil {
		return s.runShielded(ctx, j)
	}
	owner, self := fab.Owner(j.Hash)
	if self {
		j.setNode(fab.NodeID())
		return s.runShielded(ctx, j)
	}
	j.setNode(owner)
	// Fleet cache tier: the owner may already hold this result. Lookup
	// errors are not fatal — the forward (or its retry) decides the
	// job's fate.
	if b, found, err := fab.Lookup(ctx, owner, j.Hash); err == nil && found {
		res, derr := decodeResult(b)
		if derr == nil {
			s.notePeerCacheHit()
			j.setServed(servedFleet)
			return res, nil
		}
		s.log.Warn("pool: undecodable peer cache entry; forwarding",
			"peer", owner, "hash", j.Hash, "err", derr.Error())
	}
	specJSON, err := j.spec.CanonicalJSON()
	if err != nil {
		return nil, Permanent(err)
	}
	b, err := fab.Execute(ctx, owner, j.Hash, specJSON, j.Label)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// The peer executed the job and failed deterministically: that
		// verdict is as permanent here as it would be locally.
		var pe interface{ IsPermanentRemote() bool }
		if errors.As(err, &pe) && pe.IsPermanentRemote() {
			return nil, Permanent(err)
		}
		if s.cfg.Retry.MaxAttempts > 1 {
			// Transient (peer died or refused): let the retry policy
			// re-enqueue; by then the ring has rebalanced and the retry
			// routes to the hash's new owner.
			return nil, err
		}
		// No retry budget: a lost peer must not lose the job.
		s.log.Warn("pool: forward failed; executing locally",
			"peer", owner, "hash", j.Hash, "err", err.Error())
		j.setNode(fab.NodeID())
		return s.runShielded(ctx, j)
	}
	res, err := decodeResult(b)
	if err != nil {
		return nil, fmt.Errorf("campaign: undecodable result from peer %s: %w", owner, err)
	}
	j.setServed(servedForward)
	return res, nil
}

// notePeerCacheHit accounts a submission-side fleet-cache hit in the
// service counters (the pool's pool_cache_hits_total counts the wire
// side).
func (s *Service) notePeerCacheHit() {
	s.mu.Lock()
	s.stats.CacheHits++
	s.stats.FleetHits++
	s.mu.Unlock()
	s.metrics.cacheHits.Inc()
	s.metrics.fleetHits.Inc()
}

// decodeResult parses a result payload received from a peer.
func decodeResult(b []byte) (*Result, error) {
	var res Result
	if err := json.Unmarshal(b, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// CachedResultJSON serves this node's tier of the fleet cache: the
// cached result for hash as JSON, without ever triggering execution.
// It satisfies the pool's Local interface.
func (s *Service) CachedResultJSON(hash string) ([]byte, bool) {
	s.mu.Lock()
	res, fromDisk, err := s.cache.get(hash)
	if fromDisk && err == nil {
		s.metrics.setCacheLocked(s.cache.stats())
	}
	s.mu.Unlock()
	if err != nil || res == nil {
		return nil, false
	}
	b, err := json.Marshal(res)
	if err != nil {
		return nil, false
	}
	return b, true
}

// NodeAccountingJSON returns this node's resource-ledger snapshot as
// JSON; the pool's federation endpoints fetch it from every peer and sum
// the snapshots into the fleet rollup. It satisfies the pool's Local
// interface.
func (s *Service) NodeAccountingJSON() []byte {
	b, err := json.Marshal(s.NodeAccounting())
	if err != nil {
		return []byte("{}")
	}
	return b
}

// remoteFlight is the owner-side singleflight for forwarded executions:
// concurrent forwards of one hash (from different requesters) share one
// run. Waiters read res/err only after done closes.
type remoteFlight struct {
	done chan struct{}
	res  []byte
	err  error
}

// ExecuteForwardedJSON runs a forwarded spec to completion on this node
// — the owner side of the pool's Execute. It satisfies the pool's Local
// interface.
//
// Forwarded work deliberately bypasses the local job queue: it runs in
// the calling (handler) goroutine, bounded by the pool's forward
// semaphore. Routing it through the queue would let two nodes that
// forward to each other fill both worker pools with jobs waiting on
// each other — a distributed deadlock. Dedup still holds fleet-wide:
// the cache answers known hashes, a hash the local queue already owns
// attaches to that job, and concurrent forwards of one hash share a
// single run via the remote-flight table.
func (s *Service) ExecuteForwardedJSON(ctx context.Context, specJSON []byte, label string) ([]byte, error) {
	var spec JobSpec
	if err := json.Unmarshal(specJSON, &spec); err != nil {
		return nil, Permanent(fmt.Errorf("campaign: undecodable forwarded spec: %w", err))
	}
	if err := spec.Validate(); err != nil {
		return nil, Permanent(err)
	}
	hash, err := spec.Hash()
	if err != nil {
		return nil, Permanent(err)
	}

	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, ErrClosed
		}
		res, fromDisk, cerr := s.cache.get(hash)
		if cerr != nil {
			s.mu.Unlock()
			return nil, cerr
		}
		if res != nil {
			if fromDisk {
				s.metrics.setCacheLocked(s.cache.stats())
			}
			s.mu.Unlock()
			return json.Marshal(res)
		}
		if j, ok := s.inflight[hash]; ok {
			// The local queue already owns this hash; attach to it.
			s.stats.Dedups++
			s.metrics.dedups.Inc()
			s.mu.Unlock()
			jres, jerr := j.Wait(ctx)
			if jerr != nil {
				return nil, jerr
			}
			return json.Marshal(jres)
		}
		if fl, ok := s.remoteFlights[hash]; ok {
			s.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if fl.err != nil {
				return nil, fl.err
			}
			return fl.res, nil
		}
		fl := &remoteFlight{done: make(chan struct{})}
		s.remoteFlights[hash] = fl
		s.mu.Unlock()

		runStart := time.Now()
		res2, rerr := s.cfg.runFn(ctx, spec)
		var b []byte
		if rerr == nil {
			s.mu.Lock()
			// A cache-store failure degrades to uncached operation.
			_ = s.cache.put(hash, res2)
			s.metrics.setCacheLocked(s.cache.stats())
			s.mu.Unlock()
			// The cores burned here: charge the node ledger (the
			// requester charges its campaign; see acctFinish). The fast-
			// path and plan-cache credits land on this node too — the
			// requester has no RunInfo for a forwarded run.
			jl := accounting.FromTrace(res2.Trace)
			s.acctSpent("", hash, jl, true)
			s.acctWall("", time.Since(runStart).Seconds(), 0)
			if info, ok := s.acct.takeRunInfo(hash); ok {
				if info.FastPath {
					s.acctSaved("", hash, jl, accounting.TierFastPath)
				}
				if info.PlanReused {
					s.acctSaved("", hash, jl, accounting.TierPlanCache)
				}
			}
			b, rerr = json.Marshal(res2)
		}
		fl.res, fl.err = b, rerr
		s.mu.Lock()
		delete(s.remoteFlights, hash)
		s.mu.Unlock()
		close(fl.done)
		_ = label // labels are requester-side display metadata; the owner keys on the hash
		return b, rerr
	}
}

// SubmitJSON admits a drained spec from a departing peer for
// asynchronous local execution (non-blocking: a full queue bounces the
// handoff so the drainer tries the next ring successor). It satisfies
// the pool's Local interface.
func (s *Service) SubmitJSON(specJSON []byte, label string, priority int) error {
	var spec JobSpec
	if err := json.Unmarshal(specJSON, &spec); err != nil {
		return fmt.Errorf("campaign: undecodable drained spec: %w", err)
	}
	_, err := s.Submit(context.Background(), spec, SubmitOptions{
		Label:    label,
		Priority: priority,
	})
	return err
}

// DrainQueuedToPeers forwards this node's pending (queued and
// retry-parked, not executing) jobs to their ring successors — the
// SIGTERM drain path when peers are available. A handed-off job
// finishes locally as cancelled with a journaled "drained to peer"
// terminal record, so the next local process does NOT also resume it:
// exactly one node owns the work afterwards. Jobs no peer accepts go
// back to the queue and take the journal-resume path on the next start.
// Returns how many jobs were handed off.
func (s *Service) DrainQueuedToPeers(ctx context.Context) int {
	fab := s.fabricSnapshot()
	if fab == nil {
		return 0
	}
	s.mu.Lock()
	jobs := append([]*Job(nil), s.queue.items...)
	s.queue.items = nil
	for j, t := range s.retryTimers {
		t.Stop()
		delete(s.retryTimers, j)
		jobs = append(jobs, j)
	}
	s.metrics.queueDepth.Set(float64(len(s.queue.items)))
	s.mu.Unlock()
	// Admission order keeps the handoff deterministic and fair.
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq })

	handed := 0
	for _, j := range jobs {
		specJSON, err := j.spec.CanonicalJSON()
		var peer string
		if err == nil {
			peer, err = fab.Handoff(ctx, j.Hash, specJSON, j.Label, j.Priority)
		}
		if err != nil {
			// Back to the queue: Close will cancel it with the shutdown
			// reason, leaving it pending in the journal for local resume.
			s.mu.Lock()
			if !s.closed {
				heap.Push(&s.queue, j)
				s.metrics.queueDepth.Set(float64(len(s.queue.items)))
				s.work.Signal()
			}
			closed := s.closed
			s.mu.Unlock()
			s.log.Warn("pool: drain handoff failed; keeping job for resume",
				"job", j.ID, "hash", j.Hash, "err", err.Error())
			if closed {
				s.finish(j, nil, ErrClosed, StatusCancelled)
			}
			continue
		}
		handed++
		j.setNode(peer)
		s.finish(j, nil, fmt.Errorf("drained to peer %s", peer), StatusCancelled)
	}
	if handed > 0 {
		s.log.Info("pool: drained queued jobs to peers",
			"handed", handed, "kept", len(jobs)-handed)
	}
	return handed
}
