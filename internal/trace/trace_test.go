package trace

import (
	"bytes"
	"strings"
	"testing"
)

// buildComponent creates a component trace with n steps, each consisting of
// the given stages with fixed durations.
func buildComponent(name string, kind Kind, start float64, n int, stages []Stage, durs []float64) *ComponentTrace {
	c := &ComponentTrace{Name: name, Kind: kind, Cores: 8, Nodes: []int{0}, Start: start}
	t := start
	for i := 0; i < n; i++ {
		step := StepRecord{Index: i}
		for j, s := range stages {
			rec := StageRecord{Stage: s, Start: t, Duration: durs[j]}
			rec.Counters = Counters{Instructions: 100, Cycles: 200, LLCRefs: 10, LLCMisses: 2}
			t += durs[j]
			step.Stages = append(step.Stages, rec)
		}
		c.Steps = append(c.Steps, step)
	}
	c.End = t
	return c
}

func sampleTrace() *EnsembleTrace {
	sim := buildComponent("m0.sim", KindSimulation, 0, 3, SimulationStages(), []float64{10, 1, 0.5})
	ana := buildComponent("m0.ana0", KindAnalysis, 0.5, 3, AnalysisStages(), []float64{0.5, 8, 2.5})
	sim2 := buildComponent("m1.sim", KindSimulation, 0, 3, SimulationStages(), []float64{10, 0, 0.5})
	ana2 := buildComponent("m1.ana0", KindAnalysis, 1.0, 3, AnalysisStages(), []float64{0.5, 9, 2.0})
	return &EnsembleTrace{
		Backend: "simulated",
		Config:  "test",
		Members: []*MemberTrace{
			{Index: 0, Simulation: sim, Analyses: []*ComponentTrace{ana}},
			{Index: 1, Simulation: sim2, Analyses: []*ComponentTrace{ana2}},
		},
	}
}

func TestStageString(t *testing.T) {
	cases := map[Stage]string{
		StageS: "S", StageIS: "I^S", StageW: "W",
		StageR: "R", StageA: "A", StageIA: "I^A",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Stage(%d).String() = %q, want %q", s, got, want)
		}
	}
	if got := Stage(99).String(); !strings.Contains(got, "99") {
		t.Errorf("invalid stage string = %q", got)
	}
	if Stage(99).Valid() {
		t.Error("Stage(99) should be invalid")
	}
}

func TestStepRecordAccessors(t *testing.T) {
	c := buildComponent("x", KindSimulation, 5, 1, SimulationStages(), []float64{10, 1, 0.5})
	step := c.Steps[0]
	if got := step.StageDuration(StageS); got != 10 {
		t.Errorf("StageDuration(S) = %v, want 10", got)
	}
	if got := step.StageDuration(StageR); got != 0 {
		t.Errorf("StageDuration(R) = %v, want 0 (absent)", got)
	}
	if step.Start() != 5 {
		t.Errorf("Start = %v, want 5", step.Start())
	}
	if step.End() != 16.5 {
		t.Errorf("End = %v, want 16.5", step.End())
	}
	empty := StepRecord{}
	if empty.Start() != 0 || empty.End() != 0 {
		t.Error("empty step should have zero Start/End")
	}
}

func TestMemberMakespan(t *testing.T) {
	tr := sampleTrace()
	m := tr.Members[0]
	// Simulation starts at 0; analysis ends at 0.5 + 3*11 = 33.5.
	if got, want := m.Makespan(), 33.5; got != want {
		t.Errorf("member makespan = %v, want %v", got, want)
	}
	if k := m.K(); k != 1 {
		t.Errorf("K = %d, want 1", k)
	}
}

func TestEnsembleMakespan(t *testing.T) {
	tr := sampleTrace()
	// Member 1 analysis ends at 1.0 + 3*11.5 = 35.5 -> ensemble makespan 35.5.
	if got, want := tr.Makespan(), 35.5; got != want {
		t.Errorf("ensemble makespan = %v, want %v", got, want)
	}
}

func TestExecutionTimeAndCounters(t *testing.T) {
	tr := sampleTrace()
	sim := tr.Members[0].Simulation
	if got, want := sim.ExecutionTime(), 34.5; got != want {
		t.Errorf("execution time = %v, want %v", got, want)
	}
	total := sim.TotalCounters()
	// 3 steps x 3 stages x 100 instructions.
	if total.Instructions != 900 || total.Cycles != 1800 || total.LLCRefs != 90 || total.LLCMisses != 18 {
		t.Errorf("unexpected counter totals: %+v", total)
	}
}

func TestStageDurations(t *testing.T) {
	tr := sampleTrace()
	ds := tr.Members[0].Simulation.StageDurations(StageS)
	if len(ds) != 3 {
		t.Fatalf("len = %d, want 3", len(ds))
	}
	for _, d := range ds {
		if d != 10 {
			t.Errorf("StageDurations(S) = %v, want all 10", ds)
		}
	}
}

func TestComponentsOrder(t *testing.T) {
	tr := sampleTrace()
	comps := tr.Components()
	if len(comps) != 4 {
		t.Fatalf("len = %d, want 4", len(comps))
	}
	wantNames := []string{"m0.sim", "m0.ana0", "m1.sim", "m1.ana0"}
	for i, w := range wantNames {
		if comps[i].Name != w {
			t.Errorf("comps[%d] = %q, want %q", i, comps[i].Name, w)
		}
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := sampleTrace().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestValidateRejectsMissingSimulation(t *testing.T) {
	tr := sampleTrace()
	tr.Members[0].Simulation = nil
	if err := tr.Validate(); err == nil {
		t.Fatal("trace without simulation should be rejected")
	}
}

func TestValidateRejectsNegativeDuration(t *testing.T) {
	tr := sampleTrace()
	tr.Members[0].Simulation.Steps[0].Stages[0].Duration = -1
	if err := tr.Validate(); err == nil {
		t.Fatal("negative duration should be rejected")
	}
}

func TestValidateRejectsOverlappingStages(t *testing.T) {
	tr := sampleTrace()
	// Make the second stage start before the first ends.
	tr.Members[0].Simulation.Steps[0].Stages[1].Start = 1
	if err := tr.Validate(); err == nil {
		t.Fatal("overlapping stages should be rejected")
	}
}

func TestValidateRejectsInvalidStage(t *testing.T) {
	tr := sampleTrace()
	tr.Members[0].Simulation.Steps[0].Stages[0].Stage = Stage(42)
	if err := tr.Validate(); err == nil {
		t.Fatal("invalid stage id should be rejected")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan() != tr.Makespan() {
		t.Errorf("makespan after round trip = %v, want %v", got.Makespan(), tr.Makespan())
	}
	if len(got.Members) != len(tr.Members) {
		t.Errorf("members after round trip = %d, want %d", len(got.Members), len(tr.Members))
	}
	if err := got.Validate(); err != nil {
		t.Errorf("round-tripped trace invalid: %v", err)
	}
	if got.Config != "test" || got.Backend != "simulated" {
		t.Errorf("metadata lost in round trip: %+v", got)
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("malformed JSON should error")
	}
}

func TestReadJSONRejectsCorruptedStage(t *testing.T) {
	// A structurally corrupted file — a stage id outside the S..I^A
	// taxonomy — must be rejected at the read boundary, not surface as
	// nonsense downstream.
	tr := sampleTrace()
	tr.Members[0].Simulation.Steps[0].Stages[0].Stage = Stage(42)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(&buf); err == nil {
		t.Fatal("corrupted trace (stage 42) should be rejected by ReadJSON")
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{Instructions: 1, Cycles: 2, LLCRefs: 3, LLCMisses: 4, Bytes: 5}
	b := Counters{Instructions: 10, Cycles: 20, LLCRefs: 30, LLCMisses: 40, Bytes: 50}
	a.Add(b)
	want := Counters{Instructions: 11, Cycles: 22, LLCRefs: 33, LLCMisses: 44, Bytes: 55}
	if a != want {
		t.Errorf("Add = %+v, want %+v", a, want)
	}
}

func TestKindString(t *testing.T) {
	if KindSimulation.String() != "simulation" || KindAnalysis.String() != "analysis" {
		t.Error("unexpected kind strings")
	}
	if !strings.Contains(Kind(7).String(), "7") {
		t.Error("unknown kind should include its number")
	}
}

func TestWriteStepsCSV(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteStepsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + 4 components x 3 steps x 3 stages.
	want := 1 + 4*3*3
	if len(lines) != want {
		t.Fatalf("CSV lines = %d, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[0], "component,kind,member,step,stage") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(buf.String(), "m0.sim,simulation,0,0,S,") {
		t.Error("missing expected first stage row")
	}
	// The full counter set is exported, not just bytes.
	wantHeader := "component,kind,member,step,stage,start,duration,bytes,instructions,cycles,llcRefs,llcMisses"
	if lines[0] != wantHeader {
		t.Errorf("header = %q, want %q", lines[0], wantHeader)
	}
	cols := strings.Split(lines[0], ",")
	for i, line := range lines[1:] {
		if got := len(strings.Split(line, ",")); got != len(cols) {
			t.Fatalf("row %d has %d columns, want %d: %q", i+1, got, len(cols), line)
		}
	}
}
