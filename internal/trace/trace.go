// Package trace defines the execution record produced by the ensemble
// runtime and consumed by the metrics layer (Table 1 of the paper) and the
// efficiency model (Section 3). It plays the role TAU plays in the paper:
// per-stage timings plus hardware counters for every ensemble component.
//
// A trace is organized exactly like the paper's application model: a
// workflow ensemble contains members; a member contains one simulation and
// K analyses; each component executes in situ steps; each step is divided
// into fine-grained stages (S, I^S, W for simulations; R, A, I^A for
// analyses).
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Stage identifies one of the six fine-grained stages of Section 3.1.
type Stage int

const (
	// StageS is the simulation compute stage.
	StageS Stage = iota
	// StageIS is the simulation idle stage (waiting for the analyses to
	// consume the previous chunk).
	StageIS
	// StageW is the simulation write stage (staging data out via the DTL).
	StageW
	// StageR is the analysis read stage (staging data in via the DTL).
	StageR
	// StageA is the analysis compute stage.
	StageA
	// StageIA is the analysis idle stage (waiting for the next chunk).
	StageIA
	numStages
)

var stageNames = [numStages]string{"S", "I^S", "W", "R", "A", "I^A"}

// String returns the paper's notation for the stage.
func (s Stage) String() string {
	if s < 0 || s >= numStages {
		return fmt.Sprintf("Stage(%d)", int(s))
	}
	return stageNames[s]
}

// Valid reports whether s is one of the defined stages.
func (s Stage) Valid() bool { return s >= 0 && s < numStages }

// SimulationStages lists the stages a simulation component records per in
// situ step, in execution order (Section 3.1: S before I^S before W).
func SimulationStages() []Stage { return []Stage{StageS, StageIS, StageW} }

// AnalysisStages lists the stages an analysis component records per in situ
// step, in execution order (R before A before I^A).
func AnalysisStages() []Stage { return []Stage{StageR, StageA, StageIA} }

// Counters holds the hardware-counter readings associated with a stage.
// In the simulated backend these are synthesized consistently with modeled
// durations; in the real backend they are zero (real hardware counters are
// not portable, which is documented behaviour).
type Counters struct {
	Instructions float64 `json:"instructions"`
	Cycles       float64 `json:"cycles"`
	LLCRefs      float64 `json:"llcRefs"`
	LLCMisses    float64 `json:"llcMisses"`
	Bytes        int64   `json:"bytes"` // bytes moved during I/O stages
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Instructions += other.Instructions
	c.Cycles += other.Cycles
	c.LLCRefs += other.LLCRefs
	c.LLCMisses += other.LLCMisses
	c.Bytes += other.Bytes
}

// StageRecord is one executed stage within an in situ step.
type StageRecord struct {
	Stage    Stage    `json:"stage"`
	Start    float64  `json:"start"`
	Duration float64  `json:"duration"`
	Counters Counters `json:"counters"`
	// Retries counts recovered attempts folded into Duration: transient
	// staging faults and stage timeouts the resilience policy absorbed
	// (0 for a clean stage).
	Retries int `json:"retries,omitempty"`
}

// End returns the completion time of the stage.
func (r StageRecord) End() float64 { return r.Start + r.Duration }

// StepRecord is one in situ step of a component: the ordered stages it
// executed.
type StepRecord struct {
	Index  int           `json:"index"`
	Stages []StageRecord `json:"stages"`
}

// StageDuration returns the duration of stage s within the step
// (0 if the step did not record that stage).
func (sr StepRecord) StageDuration(s Stage) float64 {
	for _, rec := range sr.Stages {
		if rec.Stage == s {
			return rec.Duration
		}
	}
	return 0
}

// Start returns the start time of the step (start of its first stage).
func (sr StepRecord) Start() float64 {
	if len(sr.Stages) == 0 {
		return 0
	}
	return sr.Stages[0].Start
}

// End returns the completion time of the step (end of its last stage).
func (sr StepRecord) End() float64 {
	if len(sr.Stages) == 0 {
		return 0
	}
	return sr.Stages[len(sr.Stages)-1].End()
}

// Kind distinguishes simulations from analyses.
type Kind int

const (
	// KindSimulation marks the (single) simulation of an ensemble member.
	KindSimulation Kind = iota
	// KindAnalysis marks an analysis component.
	KindAnalysis
)

// String returns a human-readable component kind.
func (k Kind) String() string {
	switch k {
	case KindSimulation:
		return "simulation"
	case KindAnalysis:
		return "analysis"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ComponentTrace records the full execution of one ensemble component.
type ComponentTrace struct {
	Name     string       `json:"name"`
	Kind     Kind         `json:"kind"`
	Member   int          `json:"member"`   // member index within the ensemble
	Analysis int          `json:"analysis"` // analysis index j (K_i analyses); 0 for the simulation
	Nodes    []int        `json:"nodes"`    // node indexes occupied
	Cores    int          `json:"cores"`    // cores used
	Start    float64      `json:"start"`
	End      float64      `json:"end"`
	Steps    []StepRecord `json:"steps"`
	// Outputs holds the per-step analysis results (the collective
	// variable) for analysis components of the real backend; empty
	// otherwise.
	Outputs []float64 `json:"outputs,omitempty"`
	Err     string    `json:"err,omitempty"` // non-empty if the component failed
	// Restarts counts crash-restarts the component performed (resilience
	// policy: resume from the interrupted stage after a node crash).
	Restarts int `json:"restarts,omitempty"`
	// Dropped carries the failure cause when the component's member was
	// removed by the drop-member degradation policy; empty otherwise.
	// Dropped members are excluded from ensemble-level aggregation
	// (Eq. 9) by SurvivingMembers.
	Dropped string `json:"dropped,omitempty"`
}

// ExecutionTime returns the component's total wall time (Table 1:
// "time spent in one component").
func (c *ComponentTrace) ExecutionTime() float64 { return c.End - c.Start }

// TotalCounters sums the counters over all stages of all steps.
func (c *ComponentTrace) TotalCounters() Counters {
	var total Counters
	for _, step := range c.Steps {
		for _, st := range step.Stages {
			total.Add(st.Counters)
		}
	}
	return total
}

// StageDurations returns the per-step durations of stage s, one entry per
// recorded step.
func (c *ComponentTrace) StageDurations(s Stage) []float64 {
	out := make([]float64, 0, len(c.Steps))
	for _, step := range c.Steps {
		out = append(out, step.StageDuration(s))
	}
	return out
}

// MemberTrace groups the traces of one ensemble member: one simulation and
// K analyses (the paper's EM_i).
type MemberTrace struct {
	Index      int               `json:"index"`
	Simulation *ComponentTrace   `json:"simulation"`
	Analyses   []*ComponentTrace `json:"analyses"`
}

// K returns the number of couplings (analyses) in the member.
func (m *MemberTrace) K() int { return len(m.Analyses) }

// Makespan returns the member makespan per Table 1: the timespan between
// the simulation start time and the latest analysis end time. Members with
// no analyses fall back to the simulation end.
func (m *MemberTrace) Makespan() float64 {
	if m.Simulation == nil {
		return 0
	}
	if len(m.Analyses) == 0 {
		return m.Simulation.End - m.Simulation.Start
	}
	end := m.Analyses[0].End
	for _, a := range m.Analyses[1:] {
		if a.End > end {
			end = a.End
		}
	}
	return end - m.Simulation.Start
}

// Dropped reports whether the member was removed by the drop-member
// degradation policy (any of its components carries a drop annotation).
func (m *MemberTrace) Dropped() bool {
	for _, c := range m.Components() {
		if c.Dropped != "" {
			return true
		}
	}
	return false
}

// Components returns the simulation followed by the analyses.
func (m *MemberTrace) Components() []*ComponentTrace {
	out := make([]*ComponentTrace, 0, 1+len(m.Analyses))
	if m.Simulation != nil {
		out = append(out, m.Simulation)
	}
	out = append(out, m.Analyses...)
	return out
}

// EnsembleTrace is the complete record of one workflow ensemble execution.
type EnsembleTrace struct {
	Backend string         `json:"backend"` // "simulated" or "real"
	Config  string         `json:"config"`  // configuration name (e.g. "C1.5")
	Members []*MemberTrace `json:"members"`
}

// Makespan returns the workflow ensemble makespan per Table 1: the maximum
// makespan among all ensemble members.
func (t *EnsembleTrace) Makespan() float64 {
	max := 0.0
	for _, m := range t.Members {
		if ms := m.Makespan(); ms > max {
			max = ms
		}
	}
	return max
}

// DroppedMembers returns the indexes of members removed by the
// drop-member degradation policy, in order.
func (t *EnsembleTrace) DroppedMembers() []int {
	var out []int
	for _, m := range t.Members {
		if m.Dropped() {
			out = append(out, m.Index)
		}
	}
	return out
}

// SurvivingMembers returns the members that were not dropped. Ensemble
// aggregation (Eq. 9) runs over these: a dropped member contributes
// neither efficiency nor makespan to the objective.
func (t *EnsembleTrace) SurvivingMembers() []*MemberTrace {
	out := make([]*MemberTrace, 0, len(t.Members))
	for _, m := range t.Members {
		if !m.Dropped() {
			out = append(out, m)
		}
	}
	return out
}

// Components returns every component trace in the ensemble, members in
// order, simulation before analyses.
func (t *EnsembleTrace) Components() []*ComponentTrace {
	var out []*ComponentTrace
	for _, m := range t.Members {
		out = append(out, m.Components()...)
	}
	return out
}

// Validate checks structural invariants: stages within each step are
// contiguous and ordered, steps are ordered, and every member has a
// simulation.
func (t *EnsembleTrace) Validate() error {
	for mi, m := range t.Members {
		if m.Simulation == nil {
			return fmt.Errorf("trace: member %d has no simulation", mi)
		}
		for _, c := range m.Components() {
			prevEnd := c.Start
			for si, step := range c.Steps {
				for _, st := range step.Stages {
					if !st.Stage.Valid() {
						return fmt.Errorf("trace: %s step %d: invalid stage %d", c.Name, si, st.Stage)
					}
					if st.Duration < 0 {
						return fmt.Errorf("trace: %s step %d: negative duration for %v", c.Name, si, st.Stage)
					}
					if st.Start < prevEnd-1e-9 {
						return fmt.Errorf("trace: %s step %d: stage %v starts at %v before previous end %v",
							c.Name, si, st.Stage, st.Start, prevEnd)
					}
					prevEnd = st.End()
				}
			}
			if len(c.Steps) > 0 && c.End < prevEnd-1e-9 {
				return fmt.Errorf("trace: %s ends at %v before its last stage at %v", c.Name, c.End, prevEnd)
			}
		}
	}
	return nil
}

// WriteJSON serializes the trace as indented JSON.
func (t *EnsembleTrace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadJSON deserializes a trace produced by WriteJSON, rejecting
// structurally invalid traces (out-of-range stages, negative durations,
// overlapping stages) so corrupted files fail at the boundary instead of
// surfacing as nonsense downstream.
func ReadJSON(r io.Reader) (*EnsembleTrace, error) {
	var t EnsembleTrace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decoding JSON: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: invalid trace: %w", err)
	}
	return &t, nil
}

// WriteStepsCSV exports every stage of every component as flat CSV rows
// (component, kind, member, step, stage, start, duration, and the full
// counter set: bytes, instructions, cycles, llcRefs, llcMisses) for
// external analysis tools.
func (t *EnsembleTrace) WriteStepsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"component", "kind", "member", "step", "stage", "start", "duration",
		"bytes", "instructions", "cycles", "llcRefs", "llcMisses"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, c := range t.Components() {
		for _, step := range c.Steps {
			for _, st := range step.Stages {
				row := []string{
					c.Name,
					c.Kind.String(),
					strconv.Itoa(c.Member),
					strconv.Itoa(step.Index),
					st.Stage.String(),
					strconv.FormatFloat(st.Start, 'g', -1, 64),
					strconv.FormatFloat(st.Duration, 'g', -1, 64),
					strconv.FormatInt(st.Counters.Bytes, 10),
					strconv.FormatFloat(st.Counters.Instructions, 'g', -1, 64),
					strconv.FormatFloat(st.Counters.Cycles, 'g', -1, 64),
					strconv.FormatFloat(st.Counters.LLCRefs, 'g', -1, 64),
					strconv.FormatFloat(st.Counters.LLCMisses, 'g', -1, 64),
				}
				if err := cw.Write(row); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
