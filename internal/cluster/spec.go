// Package cluster models the execution platform of the paper: a cluster of
// multi-core compute nodes in the style of Cori (Cray XC40 at NERSC), with
// shared last-level caches, finite memory bandwidth, and a calibrated
// co-location interference model.
//
// The model is deliberately phenomenological where the paper's own citations
// are: per-pair co-location degradation follows the approach of Dauwe et al.
// (memory-interference modeling of co-located applications, cited as [12])
// and Zacarias et al. (learned pairwise degradation, cited as [29]). The
// interference matrix is calibrated so that the qualitative behaviours the
// paper measures on real hardware hold in simulation: analyses are more
// memory intensive than simulations, analysis-analysis co-location degrades
// performance most, heterogeneous co-location inflates LLC miss ratios most,
// and remote staging perturbs the data-producing node.
package cluster

import (
	"errors"
	"fmt"

	"ensemblekit/internal/units"
)

// Spec describes the hardware of a homogeneous cluster.
type Spec struct {
	// Nodes is the number of compute nodes.
	Nodes int
	// CoresPerNode is the number of physical cores per node
	// (Cori: 2 x 16-core Intel Xeon E5-2698 v3).
	CoresPerNode int
	// SocketsPerNode optionally enables socket-level fidelity: tenants
	// are assigned to sockets first-fit, and co-location interference
	// between tenants on disjoint sockets is scaled by
	// Interference.CrossSocketFactor (the LLC is per-socket; DRAM
	// bandwidth stays shared). Zero or one keeps the node-level model the
	// interference matrix was calibrated for.
	SocketsPerNode int
	// ClockHz is the nominal core frequency.
	ClockHz float64
	// LLCBytesPerNode is the aggregate last-level cache per node
	// (Cori: 2 sockets x 40 MB).
	LLCBytesPerNode int64
	// MemBytesPerNode is the DRAM capacity per node (Cori: 128 GB).
	MemBytesPerNode int64
	// MemBWPerNode is the aggregate DRAM bandwidth per node in bytes/s.
	MemBWPerNode float64
	// MemCopyBW is the effective bandwidth of an intra-node staging copy
	// (local DIMES put/get) in bytes/s.
	MemCopyBW float64
	// NICBandwidth is the injection bandwidth of a node's network interface
	// in bytes/s (shared by all concurrent remote transfers of the node).
	NICBandwidth float64
	// NICLatency is the one-way latency of a remote transfer in seconds.
	NICLatency float64
}

// Cori returns a specification modeled after the Cori supercomputer used
// in the paper (Section 2.2): 32-core Haswell nodes with 128 GB of DRAM on
// a Cray Aries interconnect.
func Cori(nodes int) Spec {
	return Spec{
		Nodes:           nodes,
		CoresPerNode:    32,
		ClockHz:         2.3e9,
		LLCBytesPerNode: 80 * units.MiB, // 2 sockets x 40 MB L3
		MemBytesPerNode: 128 * units.GiB,
		MemBWPerNode:    120e9,
		MemCopyBW:       10e9, // effective single-stream staging copy
		NICBandwidth:    8e9,  // Aries effective injection bandwidth
		NICLatency:      2e-6,
	}
}

// Validate checks the specification for positive, physically meaningful
// values.
func (s Spec) Validate() error {
	switch {
	case s.Nodes <= 0:
		return errors.New("cluster: Nodes must be positive")
	case s.CoresPerNode <= 0:
		return errors.New("cluster: CoresPerNode must be positive")
	case s.ClockHz <= 0:
		return errors.New("cluster: ClockHz must be positive")
	case s.LLCBytesPerNode <= 0:
		return errors.New("cluster: LLCBytesPerNode must be positive")
	case s.MemBytesPerNode <= 0:
		return errors.New("cluster: MemBytesPerNode must be positive")
	case s.MemBWPerNode <= 0:
		return errors.New("cluster: MemBWPerNode must be positive")
	case s.MemCopyBW <= 0:
		return errors.New("cluster: MemCopyBW must be positive")
	case s.NICBandwidth <= 0:
		return errors.New("cluster: NICBandwidth must be positive")
	case s.NICLatency < 0:
		return errors.New("cluster: NICLatency must be non-negative")
	case s.SocketsPerNode < 0:
		return errors.New("cluster: SocketsPerNode must be non-negative")
	case s.SocketsPerNode > 1 && s.CoresPerNode%s.SocketsPerNode != 0:
		return fmt.Errorf("cluster: %d cores not divisible into %d sockets", s.CoresPerNode, s.SocketsPerNode)
	}
	return nil
}

// coresPerSocket returns the per-socket core capacity (the whole node when
// socket fidelity is off).
func (s Spec) coresPerSocket() int {
	if s.SocketsPerNode <= 1 {
		return s.CoresPerNode
	}
	return s.CoresPerNode / s.SocketsPerNode
}

// TotalCores returns the core count of the whole cluster.
func (s Spec) TotalCores() int { return s.Nodes * s.CoresPerNode }

// String summarizes the specification.
func (s Spec) String() string {
	return fmt.Sprintf("cluster{%d nodes x %d cores @ %.2fGHz, LLC %s/node, DRAM %s/node}",
		s.Nodes, s.CoresPerNode, s.ClockHz/1e9,
		units.FormatBytes(s.LLCBytesPerNode), units.FormatBytes(s.MemBytesPerNode))
}
