package cluster

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"ensemblekit/internal/units"
)

func computeProfile() Profile {
	return Profile{
		Name:             "sim",
		Class:            ClassCompute,
		InstrPerStep:     6.4e11,
		CPIBase:          0.5,
		ParallelFraction: 0.99,
		WorkingSetBytes:  60 * units.MiB,
		LLCRefsPerInstr:  0.002,
		BaseMissRatio:    0.05,
		BytesPerStep:     768 * units.MiB,
	}
}

func memoryProfile() Profile {
	return Profile{
		Name:             "ana",
		Class:            ClassMemory,
		InstrPerStep:     1.0e11,
		CPIBase:          1.0,
		ParallelFraction: 0.9,
		WorkingSetBytes:  50 * units.MiB,
		LLCRefsPerInstr:  0.02,
		BaseMissRatio:    0.15,
		BytesPerStep:     768 * units.MiB,
	}
}

func TestSpecValidate(t *testing.T) {
	if err := Cori(4).Validate(); err != nil {
		t.Fatalf("Cori spec invalid: %v", err)
	}
	bad := Cori(4)
	bad.Nodes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero nodes should be invalid")
	}
	bad = Cori(4)
	bad.ClockHz = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative clock should be invalid")
	}
	if got := Cori(4).TotalCores(); got != 128 {
		t.Errorf("TotalCores = %d, want 128", got)
	}
	if !strings.Contains(Cori(2).String(), "2 nodes") {
		t.Errorf("String() = %q", Cori(2).String())
	}
}

func TestProfileValidate(t *testing.T) {
	if err := computeProfile().Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.Class = "weird" },
		func(p *Profile) { p.InstrPerStep = 0 },
		func(p *Profile) { p.CPIBase = 0 },
		func(p *Profile) { p.ParallelFraction = 1 },
		func(p *Profile) { p.ParallelFraction = -0.1 },
		func(p *Profile) { p.BaseMissRatio = 1.5 },
		func(p *Profile) { p.BytesPerStep = -1 },
	}
	for i, mutate := range cases {
		p := computeProfile()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
}

func TestAmdahlSpeedup(t *testing.T) {
	p := computeProfile() // f = 0.99
	if got := p.Speedup(1); got != 1 {
		t.Errorf("Speedup(1) = %v, want 1", got)
	}
	want16 := 1 / (0.01 + 0.99/16)
	if got := p.Speedup(16); math.Abs(got-want16) > 1e-9 {
		t.Errorf("Speedup(16) = %v, want %v", got, want16)
	}
	// Monotone non-decreasing, bounded by 1/(1-f).
	prev := 0.0
	for c := 1; c <= 64; c++ {
		s := p.Speedup(c)
		if s < prev {
			t.Fatalf("speedup not monotone at %d cores: %v < %v", c, s, prev)
		}
		if s > 1/(1-p.ParallelFraction)+1e-9 {
			t.Fatalf("speedup exceeds Amdahl bound at %d cores: %v", c, s)
		}
		prev = s
	}
}

func TestAloneComputeTimeCalibration(t *testing.T) {
	spec := Cori(1)
	// The MD proxy profile is calibrated so a 16-core simulation step takes
	// about 10 s (Section 2.2 scale).
	simT := computeProfile().AloneComputeTime(spec.ClockHz, 16)
	if simT < 8 || simT > 12 {
		t.Errorf("16-core simulation step = %vs, want ~10s", simT)
	}
	// More cores, less time.
	if t32 := computeProfile().AloneComputeTime(spec.ClockHz, 32); t32 >= simT {
		t.Errorf("32-core step (%v) should be faster than 16-core (%v)", t32, simT)
	}
	if zero := computeProfile().AloneComputeTime(spec.ClockHz, 0); zero != 0 {
		t.Errorf("0 cores should give 0 time, got %v", zero)
	}
}

func TestMachineAllocation(t *testing.T) {
	m, err := NewMachine(Cori(2))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := m.Allocate("sim0", 0, 16, computeProfile())
	if err != nil {
		t.Fatal(err)
	}
	if sim.Node != 0 || sim.Cores != 16 {
		t.Errorf("unexpected tenant: %+v", sim)
	}
	n0, _ := m.Node(0)
	if n0.UsedCores() != 16 || n0.FreeCores() != 16 {
		t.Errorf("node 0 used=%d free=%d, want 16/16", n0.UsedCores(), n0.FreeCores())
	}
	if _, err := m.Allocate("ana0", 0, 8, memoryProfile()); err != nil {
		t.Fatal(err)
	}
	if n0.UsedCores() != 24 {
		t.Errorf("used = %d, want 24", n0.UsedCores())
	}
	// Oversubscription rejected.
	if _, err := m.Allocate("big", 0, 9, memoryProfile()); err == nil {
		t.Error("allocating 9 cores with 8 free should fail")
	}
	// Duplicate ID rejected.
	if _, err := m.Allocate("sim0", 1, 1, computeProfile()); err == nil {
		t.Error("duplicate tenant ID should fail")
	}
	// Bad node index rejected.
	if _, err := m.Allocate("x", 5, 1, computeProfile()); err == nil {
		t.Error("out-of-range node should fail")
	}
	// Free and reallocate.
	if err := m.Free("ana0"); err != nil {
		t.Fatal(err)
	}
	if n0.UsedCores() != 16 {
		t.Errorf("after free used = %d, want 16", n0.UsedCores())
	}
	if err := m.Free("ana0"); err == nil {
		t.Error("double free should fail")
	}
	if _, ok := m.Tenant("sim0"); !ok {
		t.Error("sim0 should be retrievable")
	}
	used := m.UsedNodes()
	if len(used) != 1 || used[0] != 0 {
		t.Errorf("UsedNodes = %v, want [0]", used)
	}
}

func TestMachineMemoryAdmission(t *testing.T) {
	spec := Cori(1)
	spec.MemBytesPerNode = 100 * units.MiB
	m, err := NewMachine(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Allocate("a", 0, 8, memoryProfile()); err != nil { // 50 MiB
		t.Fatal(err)
	}
	if _, err := m.Allocate("b", 0, 8, memoryProfile()); err != nil { // 100 MiB total
		t.Fatal(err)
	}
	if _, err := m.Allocate("c", 0, 8, memoryProfile()); err == nil {
		t.Error("working sets beyond node memory should be rejected")
	}
}

func TestAssessAlone(t *testing.T) {
	spec := Cori(1)
	m, err := NewMachine(spec)
	if err != nil {
		t.Fatal(err)
	}
	model := NewModel(spec)
	sim, err := m.Allocate("sim", 0, 16, computeProfile())
	if err != nil {
		t.Fatal(err)
	}
	n0, _ := m.Node(0)
	a, err := model.Assess(n0, sim)
	if err != nil {
		t.Fatal(err)
	}
	if a.Dilation != 1 {
		t.Errorf("alone dilation = %v, want 1", a.Dilation)
	}
	if a.MissRatio != computeProfile().BaseMissRatio {
		t.Errorf("alone miss ratio = %v, want base %v", a.MissRatio, computeProfile().BaseMissRatio)
	}
	alone := computeProfile().AloneComputeTime(spec.ClockHz, 16)
	if math.Abs(a.ComputeTime-alone) > 1e-9 {
		t.Errorf("alone compute time = %v, want %v", a.ComputeTime, alone)
	}
}

func TestAssessCoLocationShapes(t *testing.T) {
	// The calibrated matrix must reproduce the paper's Figure 3 orderings.
	spec := Cori(4)
	model := NewModel(spec)

	assess := func(build func(m *Machine)) map[string]Assessment {
		m, err := NewMachine(spec)
		if err != nil {
			t.Fatal(err)
		}
		build(m)
		out := make(map[string]Assessment)
		for _, n := range m.Nodes() {
			for _, tn := range n.Tenants() {
				a, err := model.Assess(n, tn)
				if err != nil {
					t.Fatal(err)
				}
				out[tn.ID] = a
			}
		}
		return out
	}

	mustAlloc := func(m *Machine, id string, node, cores int, p Profile) {
		t.Helper()
		if _, err := m.Allocate(id, node, cores, p); err != nil {
			t.Fatal(err)
		}
	}

	// Homogeneous analysis co-location (the C1.1/C1.4 pattern).
	anaPair := assess(func(m *Machine) {
		mustAlloc(m, "a1", 0, 8, memoryProfile())
		mustAlloc(m, "a2", 0, 8, memoryProfile())
	})
	// Homogeneous simulation co-location (the C1.2 pattern).
	simPair := assess(func(m *Machine) {
		mustAlloc(m, "s1", 0, 16, computeProfile())
		mustAlloc(m, "s2", 0, 16, computeProfile())
	})
	// Heterogeneous co-location (the C_c/C1.5 pattern).
	hetero := assess(func(m *Machine) {
		mustAlloc(m, "s", 0, 16, computeProfile())
		mustAlloc(m, "a", 0, 8, memoryProfile())
	})

	baseA := memoryProfile().BaseMissRatio
	baseS := computeProfile().BaseMissRatio

	// Fig. 3: all co-locations raise miss ratios above the alone baseline.
	if anaPair["a1"].MissRatio <= baseA {
		t.Error("co-located analyses should have elevated miss ratio")
	}
	if simPair["s1"].MissRatio <= baseS {
		t.Error("co-located simulations should have elevated miss ratio")
	}
	// Fig. 3: heterogeneous co-location inflates miss ratios more than
	// homogeneous co-location does (C1.3/C1.5 vs C1.1/C1.2/C1.4).
	if hetero["a"].MissRatio <= anaPair["a1"].MissRatio {
		t.Errorf("analysis miss ratio: hetero %v should exceed homo %v",
			hetero["a"].MissRatio, anaPair["a1"].MissRatio)
	}
	if hetero["s"].MissRatio <= baseS {
		t.Error("simulation miss ratio should rise under heterogeneous co-location")
	}
	// Fig. 4 mechanism: analysis-analysis dilation dominates all other
	// pairings; heterogeneous dilation is mild.
	if anaPair["a1"].Dilation <= hetero["a"].Dilation {
		t.Errorf("analysis dilation: homo %v should exceed hetero %v",
			anaPair["a1"].Dilation, hetero["a"].Dilation)
	}
	if hetero["s"].Dilation >= simPair["s1"].Dilation {
		t.Errorf("simulation dilation: hetero %v should be below homo %v",
			hetero["s"].Dilation, simPair["s1"].Dilation)
	}
}

func TestRemoteReaderPerturbation(t *testing.T) {
	spec := Cori(2)
	m, err := NewMachine(spec)
	if err != nil {
		t.Fatal(err)
	}
	model := NewModel(spec)
	sim, err := m.Allocate("sim", 0, 16, computeProfile())
	if err != nil {
		t.Fatal(err)
	}
	n0, _ := m.Node(0)
	alone, err := model.Assess(n0, sim)
	if err != nil {
		t.Fatal(err)
	}
	sim.RemoteReaders = 2
	perturbed, err := model.Assess(n0, sim)
	if err != nil {
		t.Fatal(err)
	}
	wantDil := 1 + 2*model.Inter.RemoteReaderDilation
	if math.Abs(perturbed.Dilation-wantDil) > 1e-9 {
		t.Errorf("dilation with 2 remote readers = %v, want %v", perturbed.Dilation, wantDil)
	}
	if perturbed.ComputeTime <= alone.ComputeTime {
		t.Error("remote readers must slow the producer's compute stage")
	}
}

func TestAssessWrongNode(t *testing.T) {
	spec := Cori(2)
	m, _ := NewMachine(spec)
	model := NewModel(spec)
	sim, err := m.Allocate("sim", 0, 16, computeProfile())
	if err != nil {
		t.Fatal(err)
	}
	n1, _ := m.Node(1)
	if _, err := model.Assess(n1, sim); err == nil {
		t.Error("assessing a tenant against the wrong node should fail")
	}
}

func TestCountersConsistency(t *testing.T) {
	spec := Cori(1)
	m, _ := NewMachine(spec)
	model := NewModel(spec)
	sim, err := m.Allocate("sim", 0, 16, computeProfile())
	if err != nil {
		t.Fatal(err)
	}
	n0, _ := m.Node(0)
	a, err := model.Assess(n0, sim)
	if err != nil {
		t.Fatal(err)
	}
	c := model.ComputeCounters(sim, a)
	if c.Instructions != computeProfile().InstrPerStep {
		t.Errorf("instructions = %v, want profile value", c.Instructions)
	}
	// IPC = instr/cycles must drop when dilation rises.
	ipcAlone := c.Instructions / c.Cycles
	sim.RemoteReaders = 3
	a2, _ := model.Assess(n0, sim)
	c2 := model.ComputeCounters(sim, a2)
	ipcPerturbed := c2.Instructions / c2.Cycles
	if ipcPerturbed >= ipcAlone {
		t.Errorf("IPC should drop under perturbation: %v -> %v", ipcAlone, ipcPerturbed)
	}
	// Misses follow the assessed ratio.
	if math.Abs(c.LLCMisses/c.LLCRefs-a.MissRatio) > 1e-9 {
		t.Errorf("miss ratio from counters = %v, want %v", c.LLCMisses/c.LLCRefs, a.MissRatio)
	}
}

func TestIOCounters(t *testing.T) {
	model := NewModel(Cori(1))
	tn := &Tenant{ID: "x", Cores: 8, Profile: memoryProfile()}
	c := model.IOCounters(tn, 64*1024, 0.01)
	if c.Bytes != 64*1024 {
		t.Errorf("bytes = %d, want 65536", c.Bytes)
	}
	if c.LLCRefs != 1024 {
		t.Errorf("refs = %v, want 1024 (one per 64B line)", c.LLCRefs)
	}
	if c.LLCMisses <= 0 || c.LLCMisses > c.LLCRefs {
		t.Errorf("misses = %v out of range", c.LLCMisses)
	}
}

func TestStagingTimes(t *testing.T) {
	model := NewModel(Cori(1))
	bytes := int64(768 * units.MiB)
	w := model.SerializeTime(bytes) + model.LocalCopyTime(bytes)
	rLocal := model.LocalCopyTime(bytes) + model.DeserializeTime(bytes)
	rRemote := model.RemoteGetBaseTime(bytes) + model.DeserializeTime(bytes)
	if w <= 0 || rLocal <= 0 {
		t.Fatal("staging times must be positive")
	}
	// DIMES locality: a remote get is substantially more expensive than a
	// local one.
	if rRemote < 2*rLocal {
		t.Errorf("remote read (%v) should cost at least 2x local read (%v)", rRemote, rLocal)
	}
	// And all staging is small relative to a ~10 s compute stage.
	if w > 2 || rRemote > 2 {
		t.Errorf("staging times unexpectedly large: W=%v Rremote=%v", w, rRemote)
	}
}

// Property: dilation and miss ratio never fall below the alone baseline,
// and miss ratio never exceeds 1, regardless of the co-runner mix.
func TestAssessmentBoundsProperty(t *testing.T) {
	spec := Cori(1)
	model := NewModel(spec)
	prop := func(nAna, nSim uint8, remote uint8) bool {
		m, err := NewMachine(spec)
		if err != nil {
			return false
		}
		sim, err := m.Allocate("subject", 0, 4, computeProfile())
		if err != nil {
			return false
		}
		sim.RemoteReaders = int(remote % 8)
		for i := 0; i < int(nAna%3); i++ {
			if _, err := m.Allocate(fmt2("a", i), 0, 2, memoryProfile()); err != nil {
				return true // node full: nothing to check
			}
		}
		for i := 0; i < int(nSim%3); i++ {
			if _, err := m.Allocate(fmt2("s", i), 0, 2, computeProfile()); err != nil {
				return true
			}
		}
		n0, _ := m.Node(0)
		for _, tn := range n0.Tenants() {
			a, err := model.Assess(n0, tn)
			if err != nil {
				return false
			}
			if a.Dilation < 1 || a.MissRatio < tn.Profile.BaseMissRatio-1e-12 || a.MissRatio > 1 {
				return false
			}
			if a.ComputeTime < tn.Profile.AloneComputeTime(spec.ClockHz, tn.Cores)-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func fmt2(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}

func TestReserveStaging(t *testing.T) {
	spec := Cori(1)
	spec.MemBytesPerNode = 200 * units.MiB
	m, err := NewMachine(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Allocate("sim", 0, 16, computeProfile()); err != nil { // 60 MiB ws
		t.Fatal(err)
	}
	if err := m.ReserveStaging("sim", 100*units.MiB); err != nil {
		t.Fatalf("160 MiB total should fit in 200 MiB: %v", err)
	}
	if err := m.ReserveStaging("sim", 150*units.MiB); err == nil {
		t.Error("210 MiB total should overflow 200 MiB")
	}
	// The accepted reservation counts against later allocations.
	if _, err := m.Allocate("ana", 0, 8, memoryProfile()); err == nil { // +50 MiB
		t.Error("allocation on top of the reservation should overflow")
	}
	if err := m.ReserveStaging("ghost", 1); err == nil {
		t.Error("unknown tenant should fail")
	}
	if err := m.ReserveStaging("sim", -1); err == nil {
		t.Error("negative reservation should fail")
	}
}

func dualSocketSpec() Spec {
	spec := Cori(1)
	spec.SocketsPerNode = 2 // opt-in socket fidelity
	return spec
}

func TestSocketValidation(t *testing.T) {
	spec := dualSocketSpec()
	if err := spec.Validate(); err != nil {
		t.Fatalf("dual-socket spec invalid: %v", err)
	}
	spec.SocketsPerNode = 3 // 32 not divisible by 3
	if err := spec.Validate(); err == nil {
		t.Error("indivisible socket split should be rejected")
	}
	spec.SocketsPerNode = -1
	if err := spec.Validate(); err == nil {
		t.Error("negative sockets should be rejected")
	}
}

func TestSocketAssignment(t *testing.T) {
	m, err := NewMachine(dualSocketSpec())
	if err != nil {
		t.Fatal(err)
	}
	// A 16-core simulation fills one socket exactly.
	sim, err := m.Allocate("sim", 0, 16, computeProfile())
	if err != nil {
		t.Fatal(err)
	}
	if len(sim.Sockets) != 1 {
		t.Fatalf("16-core tenant should sit on one socket, got %v", sim.Sockets)
	}
	// An 8-core analysis lands on the other socket (tightest fit is the
	// empty one since socket 0 is full).
	ana, err := m.Allocate("ana", 0, 8, memoryProfile())
	if err != nil {
		t.Fatal(err)
	}
	if len(ana.Sockets) != 1 || ana.Sockets[0] == sim.Sockets[0] {
		t.Fatalf("analysis should take the free socket: sim %v ana %v", sim.Sockets, ana.Sockets)
	}
	if sim.sharesSocket(ana) {
		t.Error("disjoint sockets should not count as sharing")
	}
	// A 12-core tenant must span: 8 free on ana's socket only -> spans.
	span, err := m.Allocate("span", 0, 8, memoryProfile())
	if err != nil {
		t.Fatal(err)
	}
	if !span.sharesSocket(ana) {
		t.Error("tenants on the same socket should share")
	}
	// Release restores the books: freeing everything permits a full-node
	// reallocation.
	for _, id := range []string{"sim", "ana", "span"} {
		if err := m.Free(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Allocate("big1", 0, 16, computeProfile()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Allocate("big2", 0, 16, computeProfile()); err != nil {
		t.Fatal(err)
	}
}

func TestSocketSpanning(t *testing.T) {
	m, err := NewMachine(dualSocketSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Allocate("a", 0, 8, memoryProfile()); err != nil {
		t.Fatal(err)
	}
	// 24 cores left: 8 on one socket, 16 on the other — a 20-core tenant
	// must span both.
	sp, err := m.Allocate("span", 0, 20, computeProfile())
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Sockets) != 2 {
		t.Fatalf("20-core tenant should span 2 sockets, got %v", sp.Sockets)
	}
	total := 0
	for _, take := range sp.socketTakes {
		total += take
	}
	if total != 20 {
		t.Errorf("socket takes sum to %d, want 20", total)
	}
}

func TestCrossSocketInterferenceReduced(t *testing.T) {
	// The same sim+ana pairing interferes less across sockets than within
	// a node-level (socket-blind) model.
	assess := func(spec Spec) (simA, anaA Assessment) {
		m, err := NewMachine(spec)
		if err != nil {
			t.Fatal(err)
		}
		model := NewModel(spec)
		sim, err := m.Allocate("sim", 0, 16, computeProfile())
		if err != nil {
			t.Fatal(err)
		}
		ana, err := m.Allocate("ana", 0, 8, memoryProfile())
		if err != nil {
			t.Fatal(err)
		}
		n0, _ := m.Node(0)
		simA, err = model.Assess(n0, sim)
		if err != nil {
			t.Fatal(err)
		}
		anaA, err = model.Assess(n0, ana)
		if err != nil {
			t.Fatal(err)
		}
		return simA, anaA
	}
	simFlat, anaFlat := assess(Cori(1))
	simSock, anaSock := assess(dualSocketSpec())
	if !(simSock.Dilation < simFlat.Dilation && anaSock.Dilation < anaFlat.Dilation) {
		t.Errorf("cross-socket placement should reduce dilation: sim %v->%v ana %v->%v",
			simFlat.Dilation, simSock.Dilation, anaFlat.Dilation, anaSock.Dilation)
	}
	if !(anaSock.MissRatio < anaFlat.MissRatio) {
		t.Errorf("cross-socket placement should reduce miss inflation: %v vs %v",
			anaSock.MissRatio, anaFlat.MissRatio)
	}
	// But the interference does not vanish: DRAM bandwidth stays shared.
	if anaSock.Dilation <= 1 {
		t.Error("cross-socket interference should remain above 1")
	}
}
