package cluster

import (
	"errors"
	"fmt"
)

// Class labels a component's resource-usage character for the pairwise
// interference model. Components of the same class interfere with
// co-runners according to the calibrated interference matrix.
type Class string

const (
	// ClassCompute marks compute-bound components (MD simulations:
	// high IPC, small streaming footprint).
	ClassCompute Class = "compute"
	// ClassMemory marks memory-intensive components (trajectory analyses:
	// low IPC, heavy LLC and DRAM usage).
	ClassMemory Class = "memory"
)

// Profile describes the resource usage of one ensemble component per in
// situ step. Profiles drive the performance model: compute time, hardware
// counters, and interference with co-located components.
type Profile struct {
	// Name identifies the profile in reports.
	Name string
	// Class selects the row/column of the interference matrix.
	Class Class
	// InstrPerStep is the number of instructions retired per in situ step
	// (across all cores of the component).
	InstrPerStep float64
	// CPIBase is the cycles-per-instruction when running alone with a warm
	// cache.
	CPIBase float64
	// ParallelFraction is the Amdahl parallel fraction governing strong
	// scaling over the component's cores.
	ParallelFraction float64
	// WorkingSetBytes is the resident working set (reported, and used for
	// memory-capacity admission).
	WorkingSetBytes int64
	// LLCRefsPerInstr is the rate of last-level cache references.
	LLCRefsPerInstr float64
	// BaseMissRatio is the LLC miss ratio when running alone.
	BaseMissRatio float64
	// BytesPerStep is the data volume staged per in situ step: produced by
	// a simulation's write stage or consumed by an analysis's read stage.
	BytesPerStep int64
}

// Validate checks the profile for meaningful values.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return errors.New("cluster: profile needs a name")
	case p.Class != ClassCompute && p.Class != ClassMemory:
		return fmt.Errorf("cluster: profile %q: unknown class %q", p.Name, p.Class)
	case p.InstrPerStep <= 0:
		return fmt.Errorf("cluster: profile %q: InstrPerStep must be positive", p.Name)
	case p.CPIBase <= 0:
		return fmt.Errorf("cluster: profile %q: CPIBase must be positive", p.Name)
	case p.ParallelFraction < 0 || p.ParallelFraction >= 1:
		return fmt.Errorf("cluster: profile %q: ParallelFraction must be in [0,1)", p.Name)
	case p.WorkingSetBytes < 0:
		return fmt.Errorf("cluster: profile %q: WorkingSetBytes must be non-negative", p.Name)
	case p.LLCRefsPerInstr < 0:
		return fmt.Errorf("cluster: profile %q: LLCRefsPerInstr must be non-negative", p.Name)
	case p.BaseMissRatio < 0 || p.BaseMissRatio > 1:
		return fmt.Errorf("cluster: profile %q: BaseMissRatio must be in [0,1]", p.Name)
	case p.BytesPerStep < 0:
		return fmt.Errorf("cluster: profile %q: BytesPerStep must be non-negative", p.Name)
	}
	return nil
}

// Speedup returns the Amdahl speedup of the profile on c cores.
func (p Profile) Speedup(c int) float64 {
	if c <= 1 {
		return 1
	}
	f := p.ParallelFraction
	return 1 / ((1 - f) + f/float64(c))
}

// AloneComputeTime returns the compute-stage duration per in situ step when
// running alone on c cores of a node with the given clock.
func (p Profile) AloneComputeTime(clockHz float64, c int) float64 {
	if c <= 0 || clockHz <= 0 {
		return 0
	}
	serial := p.InstrPerStep * p.CPIBase / clockHz
	return serial / p.Speedup(c)
}
