package cluster

import (
	"fmt"
	"sort"
)

// Tenant is a component allocated on one or more nodes. The performance
// model evaluates each tenant against its co-located tenants.
type Tenant struct {
	// ID uniquely identifies the tenant within the machine.
	ID string
	// Cores is the number of cores held (on Node).
	Cores int
	// Node is the index of the node holding the allocation. ensemblekit
	// components are single-node (as in the paper: every component fits in
	// one node).
	Node int
	// Profile describes the tenant's resource usage.
	Profile Profile
	// RemoteReaders is the number of remote components that pull staged
	// data out of this tenant's node memory (DIMES keeps data local to the
	// producer; remote gets perturb the producer node).
	RemoteReaders int
	// StagingBytes is node memory reserved for the tenant's staged chunks
	// (DIMES keeps data in the producer's DRAM). Counted against node
	// memory alongside the working set.
	StagingBytes int64
	// Sockets lists the socket indexes the tenant's cores occupy (empty
	// when socket fidelity is off).
	Sockets []int
	// socketTakes records how many cores the tenant holds on each entry
	// of Sockets, for exact release bookkeeping.
	socketTakes []int
}

// sharesSocket reports whether two tenants overlap on any socket. With
// socket fidelity off (empty socket sets) every pair counts as sharing.
func (t *Tenant) sharesSocket(other *Tenant) bool {
	if len(t.Sockets) == 0 || len(other.Sockets) == 0 {
		return true
	}
	for _, a := range t.Sockets {
		for _, b := range other.Sockets {
			if a == b {
				return true
			}
		}
	}
	return false
}

// memoryFootprint is the tenant's total node-memory demand.
func (t *Tenant) memoryFootprint() int64 {
	return t.Profile.WorkingSetBytes + t.StagingBytes
}

// Node is a compute node with a fixed core capacity and a tenant list.
type Node struct {
	Index   int
	spec    Spec
	tenants []*Tenant
	used    int
	// socketFree tracks per-socket free cores when socket fidelity is on.
	socketFree []int
}

// assignSockets places `cores` onto sockets (preferring the single socket
// with the tightest fit to reduce fragmentation, spanning in index order
// otherwise) and returns the socket set and the per-socket core counts.
func (n *Node) assignSockets(cores int) (sockets, takes []int) {
	if len(n.socketFree) == 0 {
		return nil, nil
	}
	// Prefer a single socket with the least leftover space that fits.
	best, bestFree := -1, int(^uint(0)>>1)
	for s, free := range n.socketFree {
		if free >= cores && free < bestFree {
			best, bestFree = s, free
		}
	}
	if best >= 0 {
		n.socketFree[best] -= cores
		return []int{best}, []int{cores}
	}
	// Span sockets: drain in index order.
	left := cores
	for s := range n.socketFree {
		if left == 0 {
			break
		}
		if n.socketFree[s] == 0 {
			continue
		}
		take := n.socketFree[s]
		if take > left {
			take = left
		}
		n.socketFree[s] -= take
		left -= take
		sockets = append(sockets, s)
		takes = append(takes, take)
	}
	return sockets, takes
}

// releaseSockets returns exactly the cores the tenant took per socket.
func (n *Node) releaseSockets(t *Tenant) {
	if len(n.socketFree) == 0 {
		return
	}
	for i, s := range t.Sockets {
		n.socketFree[s] += t.socketTakes[i]
	}
}

// FreeCores returns the number of unallocated cores.
func (n *Node) FreeCores() int { return n.spec.CoresPerNode - n.used }

// UsedCores returns the number of allocated cores.
func (n *Node) UsedCores() int { return n.used }

// Tenants returns the tenants currently allocated on the node.
func (n *Node) Tenants() []*Tenant { return n.tenants }

// Machine tracks allocations on a cluster. It is the admission layer: a
// placement that oversubscribes a node's cores or memory is rejected, which
// is how invalid configurations are surfaced before simulation.
type Machine struct {
	spec  Spec
	nodes []*Node
	byID  map[string]*Tenant
}

// NewMachine builds a machine from a validated spec.
func NewMachine(spec Spec) (*Machine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{spec: spec, byID: make(map[string]*Tenant)}
	m.nodes = make([]*Node, spec.Nodes)
	for i := range m.nodes {
		n := &Node{Index: i, spec: spec}
		if spec.SocketsPerNode > 1 {
			n.socketFree = make([]int, spec.SocketsPerNode)
			for s := range n.socketFree {
				n.socketFree[s] = spec.coresPerSocket()
			}
		}
		m.nodes[i] = n
	}
	return m, nil
}

// Spec returns the machine's hardware specification.
func (m *Machine) Spec() Spec { return m.spec }

// Node returns the node with the given index.
func (m *Machine) Node(i int) (*Node, error) {
	if i < 0 || i >= len(m.nodes) {
		return nil, fmt.Errorf("cluster: node index %d out of range [0,%d)", i, len(m.nodes))
	}
	return m.nodes[i], nil
}

// Nodes returns all nodes in index order.
func (m *Machine) Nodes() []*Node { return m.nodes }

// Allocate places a tenant with the given core count and profile on a node.
// It fails if the node lacks cores, the working set plus existing tenants
// exceed node memory, or the ID is already in use.
func (m *Machine) Allocate(id string, node, cores int, prof Profile) (*Tenant, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if cores <= 0 {
		return nil, fmt.Errorf("cluster: tenant %q: cores must be positive, got %d", id, cores)
	}
	if _, dup := m.byID[id]; dup {
		return nil, fmt.Errorf("cluster: tenant %q already allocated", id)
	}
	n, err := m.Node(node)
	if err != nil {
		return nil, err
	}
	if cores > n.FreeCores() {
		return nil, fmt.Errorf("cluster: tenant %q needs %d cores on node %d but only %d free",
			id, cores, node, n.FreeCores())
	}
	var memUsed int64
	for _, t := range n.tenants {
		memUsed += t.memoryFootprint()
	}
	if memUsed+prof.WorkingSetBytes > m.spec.MemBytesPerNode {
		return nil, fmt.Errorf("cluster: tenant %q working set overflows node %d memory", id, node)
	}
	t := &Tenant{ID: id, Cores: cores, Node: node, Profile: prof}
	t.Sockets, t.socketTakes = n.assignSockets(cores)
	n.tenants = append(n.tenants, t)
	n.used += cores
	m.byID[id] = t
	return t, nil
}

// Free releases a tenant's allocation.
func (m *Machine) Free(id string) error {
	t, ok := m.byID[id]
	if !ok {
		return fmt.Errorf("cluster: tenant %q not allocated", id)
	}
	n := m.nodes[t.Node]
	for i, q := range n.tenants {
		if q == t {
			n.tenants = append(n.tenants[:i], n.tenants[i+1:]...)
			break
		}
	}
	n.releaseSockets(t)
	n.used -= t.Cores
	delete(m.byID, id)
	return nil
}

// Tenant looks up a tenant by ID.
func (m *Machine) Tenant(id string) (*Tenant, bool) {
	t, ok := m.byID[id]
	return t, ok
}

// ReserveStaging reserves node memory for a tenant's staged chunks
// (DIMES double-buffers: the chunk being read plus the chunk being
// written). It fails if the node's memory cannot hold the reservation on
// top of all resident working sets.
func (m *Machine) ReserveStaging(id string, bytes int64) error {
	t, ok := m.byID[id]
	if !ok {
		return fmt.Errorf("cluster: tenant %q not allocated", id)
	}
	if bytes < 0 {
		return fmt.Errorf("cluster: negative staging reservation for %q", id)
	}
	n := m.nodes[t.Node]
	var memUsed int64
	for _, q := range n.tenants {
		if q != t {
			memUsed += q.memoryFootprint()
		}
	}
	memUsed += t.Profile.WorkingSetBytes
	if memUsed+bytes > m.spec.MemBytesPerNode {
		return fmt.Errorf("cluster: staging %d bytes for %q overflows node %d memory", bytes, id, t.Node)
	}
	t.StagingBytes = bytes
	return nil
}

// UsedNodes returns the sorted indexes of nodes with at least one tenant —
// the quantity M of the paper's resource-provisioning indicator.
func (m *Machine) UsedNodes() []int {
	var out []int
	for _, n := range m.nodes {
		if len(n.tenants) > 0 {
			out = append(out, n.Index)
		}
	}
	sort.Ints(out)
	return out
}
