package cluster

import (
	"fmt"

	"ensemblekit/internal/trace"
)

// Interference is the calibrated pairwise co-location degradation model.
// Following the approach of the paper's citations [12] (Dauwe et al.) and
// [29] (Zacarias et al.), interference is captured as a per-pair matrix
// rather than derived from first principles: Dilation[a][b] is the
// fractional compute-time dilation a tenant of class a suffers for each
// co-located tenant of class b, and MissInflation[a][b] is the additive
// LLC miss-ratio increase. Effects accumulate over co-runners and are
// calibrated at the component sizes of the paper (16-core simulations,
// 8-core analyses on 32-core nodes).
type Interference struct {
	Dilation      map[Class]map[Class]float64
	MissInflation map[Class]map[Class]float64
	// RemoteReaderDilation is the fractional compute-time dilation every
	// tenant of a node suffers per remote staging stream served from the
	// node's memory. It models the cost of DIMES serving RDMA gets from
	// the producer's node (data locality is what makes co-location win in
	// the paper's Section 5.2 analysis).
	RemoteReaderDilation float64
	// CrossSocketFactor scales the interference between tenants on
	// disjoint sockets when the spec enables socket fidelity
	// (SocketsPerNode > 1): the last-level cache is per-socket, so only
	// the DRAM-bandwidth share of the interference remains. 1 reproduces
	// the node-level calibration; 0 makes disjoint sockets independent.
	CrossSocketFactor float64
}

// DefaultInterference returns the interference matrix calibrated to
// reproduce the qualitative shapes of the paper's Figures 3-5:
//   - analysis-analysis co-location degrades analyses most (Fig. 3-4: C1.1
//     and C1.4 slow down, miss ratios rise);
//   - simulation-simulation co-location degrades simulations (C1.2);
//   - heterogeneous co-location inflates miss ratios the most (C1.3, C1.5)
//     while costing relatively little time, so C1.5 stays fastest;
//   - remote readers perturb the producing node, which is why full
//     co-location (C1.5, C2.8) beats the co-location-free baseline.
func DefaultInterference() *Interference {
	return &Interference{
		Dilation: map[Class]map[Class]float64{
			ClassCompute: {ClassCompute: 0.07, ClassMemory: 0.02},
			ClassMemory:  {ClassCompute: 0.035, ClassMemory: 0.18},
		},
		MissInflation: map[Class]map[Class]float64{
			ClassCompute: {ClassCompute: 0.16, ClassMemory: 0.18},
			ClassMemory:  {ClassCompute: 0.25, ClassMemory: 0.17},
		},
		RemoteReaderDilation: 0.03,
		CrossSocketFactor:    0.35,
	}
}

// Model combines a hardware spec with the interference matrix and staging
// cost parameters. It produces per-stage durations and synthesized hardware
// counters for the simulated backend.
type Model struct {
	Spec Spec
	// Inter is the co-location interference matrix.
	Inter *Interference
	// SerializeBW is the chunk (de)serialization throughput in bytes/s
	// (the DTL plugin's marshaling cost, Figure 2 of the paper).
	SerializeBW float64
	// RemoteStageBW is the effective per-flow throughput of a remote
	// staging get (DIMES RDMA through the DataSpaces protocol), before
	// sharing with concurrent flows.
	RemoteStageBW float64
	// IOInstrPerByte synthesizes marshaling instructions for I/O stages so
	// that counters remain defined during W and R.
	IOInstrPerByte float64
}

// NewModel returns a model with default staging parameters for the spec.
func NewModel(spec Spec) *Model {
	return &Model{
		Spec:           spec,
		Inter:          DefaultInterference(),
		SerializeBW:    6e9,
		RemoteStageBW:  1.5e9,
		IOInstrPerByte: 0.5,
	}
}

// Assessment is the model's verdict for one tenant in its placement
// context: how much co-location dilates its compute stage, its effective
// LLC miss ratio, and the resulting per-step compute duration.
type Assessment struct {
	// Dilation is the compute-time multiplier (>= 1).
	Dilation float64
	// MissRatio is the effective LLC miss ratio under co-location.
	MissRatio float64
	// ComputeTime is the dilated per-step compute-stage duration.
	ComputeTime float64
}

// Assess evaluates tenant t against its co-runners on node n. It is the
// single place where co-location turns into performance: callers use the
// result to time S and A stages and to synthesize counters.
func (m *Model) Assess(n *Node, t *Tenant) (Assessment, error) {
	if t.Node != n.Index {
		return Assessment{}, fmt.Errorf("cluster: tenant %q is on node %d, not node %d", t.ID, t.Node, n.Index)
	}
	dilation := 1.0
	miss := t.Profile.BaseMissRatio
	remoteStreams := 0
	for _, other := range n.Tenants() {
		remoteStreams += other.RemoteReaders
		if other == t {
			continue
		}
		// With socket fidelity on, co-runners on disjoint sockets only
		// contend for DRAM bandwidth, not the per-socket LLC.
		weight := 1.0
		if !t.sharesSocket(other) {
			weight = m.Inter.CrossSocketFactor
		}
		dilation += weight * m.Inter.Dilation[t.Profile.Class][other.Profile.Class]
		miss += weight * m.Inter.MissInflation[t.Profile.Class][other.Profile.Class]
	}
	dilation += float64(remoteStreams) * m.Inter.RemoteReaderDilation
	if miss > 1 {
		miss = 1
	}
	alone := t.Profile.AloneComputeTime(m.Spec.ClockHz, t.Cores)
	return Assessment{
		Dilation:    dilation,
		MissRatio:   miss,
		ComputeTime: alone * dilation,
	}, nil
}

// ComputeCounters synthesizes the hardware counters of a compute stage
// consistently with the assessed duration: instructions come from the
// profile, cycles cover all allocated cores for the dilated duration
// (so dilation lowers IPC), references follow the profile rate, and misses
// follow the assessed miss ratio.
func (m *Model) ComputeCounters(t *Tenant, a Assessment) trace.Counters {
	refs := t.Profile.InstrPerStep * t.Profile.LLCRefsPerInstr
	return trace.Counters{
		Instructions: t.Profile.InstrPerStep,
		Cycles:       a.ComputeTime * m.Spec.ClockHz * float64(t.Cores),
		LLCRefs:      refs,
		LLCMisses:    refs * a.MissRatio,
	}
}

// IOCounters synthesizes counters for an I/O stage (W or R) moving the
// given number of bytes over the given duration on one core. Staged data
// streams through the cache, so references are charged per cache line with
// a high miss ratio.
func (m *Model) IOCounters(t *Tenant, bytes int64, duration float64) trace.Counters {
	const lineSize = 64
	instr := float64(bytes) * m.IOInstrPerByte
	refs := float64(bytes) / lineSize
	return trace.Counters{
		Instructions: instr,
		Cycles:       duration * m.Spec.ClockHz,
		LLCRefs:      refs,
		LLCMisses:    refs * 0.9, // streaming access: almost every line misses
		Bytes:        bytes,
	}
}

// SerializeTime returns the chunk marshaling duration for the write stage.
func (m *Model) SerializeTime(bytes int64) float64 {
	return float64(bytes) / m.SerializeBW
}

// DeserializeTime returns the chunk unmarshaling duration for the read
// stage.
func (m *Model) DeserializeTime(bytes int64) float64 {
	return float64(bytes) / m.SerializeBW
}

// LocalCopyTime returns the duration of an intra-node staging copy
// (DIMES put, or get when producer and consumer share a node).
func (m *Model) LocalCopyTime(bytes int64) float64 {
	return float64(bytes) / m.Spec.MemCopyBW
}

// RemoteGetBaseTime returns the analytic duration of an uncontended remote
// staging get: protocol latency plus transfer at the effective per-flow
// throughput. The discrete-event network fabric refines this with max-min
// fair sharing when flows overlap.
func (m *Model) RemoteGetBaseTime(bytes int64) float64 {
	bw := m.RemoteStageBW
	if bw > m.Spec.NICBandwidth {
		bw = m.Spec.NICBandwidth
	}
	return m.Spec.NICLatency + float64(bytes)/bw
}
