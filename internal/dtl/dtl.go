// Package dtl implements the paper's Data Transport Layer (Figure 2): the
// staging substrate between simulations and analyses. Three tiers are
// provided, mirroring the storage options the paper lists — in-memory
// staging in the style of DIMES (data kept in the producer node's memory,
// served over the network to remote readers), burst buffers, and a parallel
// file system. All tiers implement the same interface, which is the point
// of the DTL plugin architecture: ensemble components are tier-agnostic.
//
// The tiers in this file price staging operations for the simulated
// backend (durations elapse on the simulation clock). The real-execution
// in-memory store lives in mem.go.
package dtl

import (
	"errors"
	"fmt"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/network"
	"ensemblekit/internal/sim"
)

// putSpan opens a put-begin event on the caller's recorder and returns the
// closer. The closer is invoked on error paths too, so every PutBegin has a
// matching PutEnd stamped at the time the operation actually stopped.
func putSpan(p *sim.Proc, tier string, node int, bytes int64) func() {
	r := p.Env().Recorder()
	if !r.Enabled() {
		return func() {}
	}
	r.PutBegin(tier, node, bytes)
	return func() { r.PutEnd(tier, node, bytes) }
}

// getSpan is the read-side counterpart of putSpan.
func getSpan(p *sim.Proc, tier string, producerNode, consumerNode int, bytes int64) func() {
	r := p.Env().Recorder()
	if !r.Enabled() {
		return func() {}
	}
	r.GetBegin(tier, producerNode, consumerNode, bytes)
	return func() { r.GetEnd(tier, producerNode, consumerNode, bytes) }
}

// Tier prices staging operations for the simulated backend. Write and Read
// block the calling simulation process for the duration of the staging
// operation, including any contention with concurrent staging traffic.
type Tier interface {
	// Name identifies the tier in traces and reports.
	Name() string
	// Write stages an encoded chunk of the given size out of a producer on
	// the given node (the W stage cost, excluding synchronization waits).
	Write(p *sim.Proc, producerNode int, bytes int64) error
	// Read stages an encoded chunk of the given size into a consumer on
	// consumerNode from a producer on producerNode (the R stage cost,
	// excluding waits for data availability).
	Read(p *sim.Proc, producerNode, consumerNode int, bytes int64) error
}

// Dimes is the in-memory staging tier modeled after DIMES: a put is a local
// serialize-and-copy on the producer node; a get is a local copy when the
// consumer shares the node, and a fabric transfer (latency plus shared
// bandwidth) otherwise. This asymmetry is the data-locality property the
// paper's Section 5.2 credits for the win of co-located placements.
type Dimes struct {
	model  *cluster.Model
	fabric *network.Fabric
}

// NewDimes builds the DIMES tier over a cluster model and a network fabric.
func NewDimes(model *cluster.Model, fabric *network.Fabric) *Dimes {
	return &Dimes{model: model, fabric: fabric}
}

// Name implements Tier.
func (d *Dimes) Name() string { return "dimes" }

// Write implements Tier: serialize plus an intra-node staging copy.
func (d *Dimes) Write(p *sim.Proc, producerNode int, bytes int64) error {
	defer putSpan(p, d.Name(), producerNode, bytes)()
	dur := d.model.SerializeTime(bytes) + d.model.LocalCopyTime(bytes)
	return p.Wait(dur)
}

// Read implements Tier: local copy when co-located, fabric transfer when
// remote, plus deserialization either way.
func (d *Dimes) Read(p *sim.Proc, producerNode, consumerNode int, bytes int64) error {
	defer getSpan(p, d.Name(), producerNode, consumerNode, bytes)()
	if producerNode == consumerNode {
		// Copy and deserialize are consecutive model delays with nothing
		// observable between them, so they elapse as a single event — the
		// same coalescing Write applies to serialize+copy. Same end time,
		// one fewer goroutine crossing per co-located read.
		return p.Wait(d.model.LocalCopyTime(bytes) + d.model.DeserializeTime(bytes))
	}
	if err := d.fabric.Transfer(p, producerNode, consumerNode, bytes); err != nil {
		return fmt.Errorf("dtl: dimes remote get: %w", err)
	}
	return p.Wait(d.model.DeserializeTime(bytes))
}

// BurstBuffer is an intermediate storage tier: all puts and gets traverse
// the burst buffer's aggregate bandwidth regardless of placement, so
// co-location yields no locality benefit (the trade-off the paper's DTL
// abstraction exists to explore).
type BurstBuffer struct {
	model  *cluster.Model
	fabric *network.Fabric
	// bbNode is the index of the virtual fabric endpoint representing the
	// burst buffer.
	bbNode int
}

// NewBurstBuffer builds a burst-buffer tier. The fabric must have been
// created with one extra endpoint (index = cluster nodes) whose bandwidth
// is the burst buffer's aggregate throughput; BurstBufferFabricConfig
// prepares such a configuration.
func NewBurstBuffer(model *cluster.Model, fabric *network.Fabric, bbNode int) *BurstBuffer {
	return &BurstBuffer{model: model, fabric: fabric, bbNode: bbNode}
}

// BurstBufferFabricConfig returns a fabric configuration with an extra
// endpoint for the burst buffer with the given aggregate bandwidth.
func BurstBufferFabricConfig(spec cluster.Spec, bbBandwidth float64) network.Config {
	nb := make([]float64, spec.Nodes+1)
	nb[spec.Nodes] = bbBandwidth
	return network.Config{
		Nodes:         spec.Nodes + 1,
		NICBandwidth:  spec.NICBandwidth,
		Latency:       spec.NICLatency,
		NodeBandwidth: nb,
	}
}

// Name implements Tier.
func (b *BurstBuffer) Name() string { return "burstbuffer" }

// Write implements Tier: serialize, then push to the burst buffer.
func (b *BurstBuffer) Write(p *sim.Proc, producerNode int, bytes int64) error {
	defer putSpan(p, b.Name(), producerNode, bytes)()
	if err := p.Wait(b.model.SerializeTime(bytes)); err != nil {
		return err
	}
	if err := b.fabric.Transfer(p, producerNode, b.bbNode, bytes); err != nil {
		return fmt.Errorf("dtl: burst buffer put: %w", err)
	}
	return nil
}

// Read implements Tier: pull from the burst buffer, then deserialize.
func (b *BurstBuffer) Read(p *sim.Proc, producerNode, consumerNode int, bytes int64) error {
	defer getSpan(p, b.Name(), producerNode, consumerNode, bytes)()
	if err := b.fabric.Transfer(p, b.bbNode, consumerNode, bytes); err != nil {
		return fmt.Errorf("dtl: burst buffer get: %w", err)
	}
	return p.Wait(b.model.DeserializeTime(bytes))
}

// PFS is the parallel-file-system tier: like the burst buffer but with a
// (typically much lower) aggregate bandwidth shared by everyone, plus a
// fixed metadata latency per operation — the I/O bottleneck in situ
// processing exists to avoid (paper Section 1).
type PFS struct {
	model     *cluster.Model
	fabric    *network.Fabric
	fsNode    int
	mdLatency float64
}

// NewPFS builds a PFS tier over a fabric with an extra endpoint for the
// file system (use PFSFabricConfig).
func NewPFS(model *cluster.Model, fabric *network.Fabric, fsNode int, metadataLatency float64) *PFS {
	return &PFS{model: model, fabric: fabric, fsNode: fsNode, mdLatency: metadataLatency}
}

// PFSFabricConfig returns a fabric configuration with an extra endpoint
// for the parallel file system with the given aggregate bandwidth.
func PFSFabricConfig(spec cluster.Spec, fsBandwidth float64) network.Config {
	nb := make([]float64, spec.Nodes+1)
	nb[spec.Nodes] = fsBandwidth
	return network.Config{
		Nodes:         spec.Nodes + 1,
		NICBandwidth:  spec.NICBandwidth,
		Latency:       spec.NICLatency,
		NodeBandwidth: nb,
	}
}

// Name implements Tier.
func (f *PFS) Name() string { return "pfs" }

// Write implements Tier.
func (f *PFS) Write(p *sim.Proc, producerNode int, bytes int64) error {
	defer putSpan(p, f.Name(), producerNode, bytes)()
	if err := p.Wait(f.model.SerializeTime(bytes) + f.mdLatency); err != nil {
		return err
	}
	if err := f.fabric.Transfer(p, producerNode, f.fsNode, bytes); err != nil {
		return fmt.Errorf("dtl: pfs write: %w", err)
	}
	return nil
}

// Read implements Tier.
func (f *PFS) Read(p *sim.Proc, producerNode, consumerNode int, bytes int64) error {
	defer getSpan(p, f.Name(), producerNode, consumerNode, bytes)()
	if err := p.Wait(f.mdLatency); err != nil {
		return err
	}
	if err := f.fabric.Transfer(p, f.fsNode, consumerNode, bytes); err != nil {
		return fmt.Errorf("dtl: pfs read: %w", err)
	}
	return p.Wait(f.model.DeserializeTime(bytes))
}

// Flaky wraps a tier and injects failures: the n-th operation (1-based,
// counting writes and reads together) returns an error. It exists for
// failure-injection tests of the runtime's error handling.
//
// Deprecated: use a faults.Plan with a StagingFault{FailAtOp: n} rule
// (runtime.SimOptions.Faults), which subsumes this wrapper with windows,
// rates, and seeded determinism. Flaky is kept for back-compat with
// existing tests and specs; the runtime itself no longer uses it.
type Flaky struct {
	Tier
	// FailAt is the 1-based index of the operation that fails; 0 disables
	// injection.
	FailAt int
	ops    int
}

// ErrInjected is the failure produced by Flaky.
var ErrInjected = errors.New("dtl: injected failure")

// Write implements Tier with failure injection.
func (f *Flaky) Write(p *sim.Proc, producerNode int, bytes int64) error {
	f.ops++
	if f.FailAt > 0 && f.ops == f.FailAt {
		return fmt.Errorf("write op %d: %w", f.ops, ErrInjected)
	}
	return f.Tier.Write(p, producerNode, bytes)
}

// Read implements Tier with failure injection.
func (f *Flaky) Read(p *sim.Proc, producerNode, consumerNode int, bytes int64) error {
	f.ops++
	if f.FailAt > 0 && f.ops == f.FailAt {
		return fmt.Errorf("read op %d: %w", f.ops, ErrInjected)
	}
	return f.Tier.Read(p, producerNode, consumerNode, bytes)
}
