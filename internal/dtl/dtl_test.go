package dtl

import (
	"errors"
	"math"
	"testing"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/network"
	"ensemblekit/internal/sim"
	"ensemblekit/internal/units"
)

func simSetup(t *testing.T, nodes int) (*sim.Env, *cluster.Model, *network.Fabric) {
	t.Helper()
	spec := cluster.Cori(nodes)
	env := sim.NewEnv()
	fab, err := network.NewFabric(env, network.Config{
		Nodes:        spec.Nodes,
		NICBandwidth: spec.NICBandwidth,
		Latency:      spec.NICLatency,
		PerFlowCap:   1.5e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env, cluster.NewModel(spec), fab
}

func runOp(t *testing.T, env *sim.Env, op func(p *sim.Proc) error) (float64, error) {
	t.Helper()
	var dur float64
	var opErr error
	env.Go("op", func(p *sim.Proc) error {
		start := p.Now()
		opErr = op(p)
		dur = p.Now() - start
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return dur, opErr
}

func TestDimesWriteCost(t *testing.T) {
	env, model, fab := simSetup(t, 2)
	d := NewDimes(model, fab)
	bytes := int64(768 * units.MiB)
	want := model.SerializeTime(bytes) + model.LocalCopyTime(bytes)
	dur, err := runOp(t, env, func(p *sim.Proc) error { return d.Write(p, 0, bytes) })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dur-want) > 1e-9 {
		t.Errorf("write duration = %v, want %v", dur, want)
	}
}

func TestDimesLocalReadIsCheaperThanRemote(t *testing.T) {
	bytes := int64(768 * units.MiB)

	env1, model1, fab1 := simSetup(t, 2)
	d1 := NewDimes(model1, fab1)
	local, err := runOp(t, env1, func(p *sim.Proc) error { return d1.Read(p, 0, 0, bytes) })
	if err != nil {
		t.Fatal(err)
	}

	env2, model2, fab2 := simSetup(t, 2)
	d2 := NewDimes(model2, fab2)
	remote, err := runOp(t, env2, func(p *sim.Proc) error { return d2.Read(p, 0, 1, bytes) })
	if err != nil {
		t.Fatal(err)
	}

	if remote <= local {
		t.Errorf("remote read (%v) must exceed local read (%v): DIMES locality", remote, local)
	}
	// Locality gap should be substantial (calibration: >= 2x).
	if remote < 2*local {
		t.Errorf("remote/local = %v, want >= 2", remote/local)
	}
}

func TestDimesConcurrentRemoteReadsShareBandwidth(t *testing.T) {
	// Two analyses pulling from the same producer node at once (the C1.4
	// read pattern): each remote get must take longer than an uncontended
	// one.
	bytes := int64(768 * units.MiB)

	env1, model1, fab1 := simSetup(t, 3)
	d1 := NewDimes(model1, fab1)
	aloneDur, err := runOp(t, env1, func(p *sim.Proc) error { return d1.Read(p, 0, 1, bytes) })
	if err != nil {
		t.Fatal(err)
	}

	env2, model2, fab2 := simSetup(t, 3)
	// Drop the per-flow cap so the shared NIC is the bottleneck.
	fab2b, err := network.NewFabric(env2, network.Config{
		Nodes:        3,
		NICBandwidth: 2e9,
		Latency:      model2.Spec.NICLatency,
	})
	if err != nil {
		t.Fatal(err)
	}
	d2 := NewDimes(model2, fab2b)
	_ = fab2
	durs := make([]float64, 2)
	for i := 0; i < 2; i++ {
		i := i
		env2.Go("reader", func(p *sim.Proc) error {
			start := p.Now()
			if err := d2.Read(p, 0, 1+i, bytes); err != nil {
				return err
			}
			durs[i] = p.Now() - start
			return nil
		})
	}
	if err := env2.Run(); err != nil {
		t.Fatal(err)
	}
	aloneNoCap := float64(bytes)/2e9 + model2.Spec.NICLatency + model2.DeserializeTime(bytes)
	_ = aloneDur
	for i, d := range durs {
		if d <= aloneNoCap*1.2 {
			t.Errorf("contended read %d = %v, want well above uncontended %v", i, d, aloneNoCap)
		}
	}
}

func TestBurstBufferIsPlacementAgnostic(t *testing.T) {
	bytes := int64(256 * units.MiB)
	mk := func() (*sim.Env, *BurstBuffer) {
		spec := cluster.Cori(3)
		env := sim.NewEnv()
		fab, err := network.NewFabric(env, BurstBufferFabricConfig(spec, 20e9))
		if err != nil {
			t.Fatal(err)
		}
		return env, NewBurstBuffer(cluster.NewModel(spec), fab, spec.Nodes)
	}
	env1, bb1 := mk()
	local, err := runOp(t, env1, func(p *sim.Proc) error { return bb1.Read(p, 0, 0, bytes) })
	if err != nil {
		t.Fatal(err)
	}
	env2, bb2 := mk()
	remote, err := runOp(t, env2, func(p *sim.Proc) error { return bb2.Read(p, 0, 1, bytes) })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(local-remote) > 1e-9 {
		t.Errorf("burst buffer reads should not depend on placement: local %v vs remote %v", local, remote)
	}
}

func TestPFSSlowerThanDimes(t *testing.T) {
	bytes := int64(768 * units.MiB)

	env1, model1, fab1 := simSetup(t, 2)
	d := NewDimes(model1, fab1)
	var dimesTotal float64
	{
		dur, err := runOp(t, env1, func(p *sim.Proc) error {
			if err := d.Write(p, 0, bytes); err != nil {
				return err
			}
			return d.Read(p, 0, 1, bytes)
		})
		if err != nil {
			t.Fatal(err)
		}
		dimesTotal = dur
	}

	spec := cluster.Cori(2)
	env2 := sim.NewEnv()
	fabPFS, err := network.NewFabric(env2, PFSFabricConfig(spec, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	pfs := NewPFS(cluster.NewModel(spec), fabPFS, spec.Nodes, 0.01)
	pfsTotal, err := runOp(t, env2, func(p *sim.Proc) error {
		if err := pfs.Write(p, 0, bytes); err != nil {
			return err
		}
		return pfs.Read(p, 0, 1, bytes)
	})
	if err != nil {
		t.Fatal(err)
	}
	if pfsTotal <= dimesTotal {
		t.Errorf("PFS staging (%v) should be slower than DIMES (%v): the in situ motivation", pfsTotal, dimesTotal)
	}
}

func TestTierNames(t *testing.T) {
	env, model, fab := simSetup(t, 2)
	_ = env
	if NewDimes(model, fab).Name() != "dimes" {
		t.Error("dimes name")
	}
	if NewBurstBuffer(model, fab, 2).Name() != "burstbuffer" {
		t.Error("burstbuffer name")
	}
	if NewPFS(model, fab, 2, 0).Name() != "pfs" {
		t.Error("pfs name")
	}
}

func TestFlakyInjection(t *testing.T) {
	env, model, fab := simSetup(t, 2)
	flaky := &Flaky{Tier: NewDimes(model, fab), FailAt: 2}
	var e1, e2, e3 error
	env.Go("x", func(p *sim.Proc) error {
		e1 = flaky.Write(p, 0, 1024)
		e2 = flaky.Read(p, 0, 1, 1024)
		e3 = flaky.Write(p, 0, 1024)
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if e1 != nil {
		t.Errorf("op 1 should succeed: %v", e1)
	}
	if !errors.Is(e2, ErrInjected) {
		t.Errorf("op 2 should fail with ErrInjected: %v", e2)
	}
	if e3 != nil {
		t.Errorf("op 3 should succeed: %v", e3)
	}
}
