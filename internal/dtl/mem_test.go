package dtl

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ensemblekit/internal/chunk"
)

func TestMemRegisterValidation(t *testing.T) {
	m := NewMem()
	if err := m.Register(0, 0); err == nil {
		t.Error("zero readers should be rejected")
	}
	if err := m.Register(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(0, 1); err == nil {
		t.Error("duplicate registration should be rejected")
	}
}

func TestMemUnregisteredMember(t *testing.T) {
	m := NewMem()
	ctx := context.Background()
	if err := m.Put(ctx, chunk.ID{Member: 5, Step: 0}, nil); err == nil {
		t.Error("put to unregistered member should fail")
	}
	if _, err := m.Get(ctx, chunk.ID{Member: 5, Step: 0}); err == nil {
		t.Error("get from unregistered member should fail")
	}
	if m.Staged(5) {
		t.Error("unregistered member should not report staged data")
	}
}

func TestMemPutGetSingleReader(t *testing.T) {
	m := NewMem()
	if err := m.Register(0, 1); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	data := []byte("hello")
	if err := m.Put(ctx, chunk.ID{Member: 0, Step: 0}, data); err != nil {
		t.Fatal(err)
	}
	if !m.Staged(0) {
		t.Error("chunk should be staged after put")
	}
	got, err := m.Get(ctx, chunk.ID{Member: 0, Step: 0})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Errorf("got %q", got)
	}
	if m.Staged(0) {
		t.Error("chunk should be released after the last get")
	}
}

func TestMemNoBufferingProtocol(t *testing.T) {
	// Put of step 1 must not complete before step 0 is consumed: the
	// paper's W_i -> R_i -> W_{i+1} ordering.
	m := NewMem()
	if err := m.Register(0, 1); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := m.Put(ctx, chunk.ID{Member: 0, Step: 0}, []byte("a")); err != nil {
		t.Fatal(err)
	}
	putDone := make(chan error, 1)
	go func() {
		putDone <- m.Put(ctx, chunk.ID{Member: 0, Step: 1}, []byte("b"))
	}()
	select {
	case err := <-putDone:
		t.Fatalf("second put completed before first get (err=%v)", err)
	case <-time.After(30 * time.Millisecond):
	}
	if _, err := m.Get(ctx, chunk.ID{Member: 0, Step: 0}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-putDone:
		if err != nil {
			t.Fatalf("second put failed: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("second put did not complete after first get")
	}
}

func TestMemMultipleReadersShareOneChunk(t *testing.T) {
	const readers = 3
	m := NewMem()
	if err := m.Register(0, readers); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := m.Put(ctx, chunk.ID{Member: 0, Step: 0}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = m.Get(ctx, chunk.ID{Member: 0, Step: 0})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("reader %d: %v", i, err)
		}
	}
	if m.Staged(0) {
		t.Error("chunk should be released after all readers consumed it")
	}
	// Chunk for step 0 must be gone: a late get for step 0 while step 1 is
	// staged reports a missed chunk.
	if err := m.Put(ctx, chunk.ID{Member: 0, Step: 1}, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(ctx, chunk.ID{Member: 0, Step: 0}); err == nil {
		t.Error("get for a consumed step should fail once a newer chunk is staged")
	}
}

func TestMemGetBlocksUntilPut(t *testing.T) {
	m := NewMem()
	if err := m.Register(0, 1); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	got := make(chan []byte, 1)
	go func() {
		data, err := m.Get(ctx, chunk.ID{Member: 0, Step: 0})
		if err != nil {
			got <- nil
			return
		}
		got <- data
	}()
	time.Sleep(20 * time.Millisecond)
	if err := m.Put(ctx, chunk.ID{Member: 0, Step: 0}, []byte("late")); err != nil {
		t.Fatal(err)
	}
	select {
	case data := <-got:
		if string(data) != "late" {
			t.Errorf("got %q", data)
		}
	case <-time.After(time.Second):
		t.Fatal("get did not observe the put")
	}
}

func TestMemContextCancellation(t *testing.T) {
	m := NewMem()
	if err := m.Register(0, 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := m.Get(ctx, chunk.ID{Member: 0, Step: 0})
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled get did not return")
	}
	// A blocked put is cancellable too.
	ctx2, cancel2 := context.WithCancel(context.Background())
	if err := m.Put(context.Background(), chunk.ID{Member: 0, Step: 0}, []byte("a")); err != nil {
		t.Fatal(err)
	}
	go func() {
		errCh <- m.Put(ctx2, chunk.ID{Member: 0, Step: 1}, []byte("b"))
	}()
	time.Sleep(10 * time.Millisecond)
	cancel2()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled put did not return")
	}
}

func TestMemDuplicatePutRejected(t *testing.T) {
	m := NewMem()
	if err := m.Register(0, 1); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := m.Put(ctx, chunk.ID{Member: 0, Step: 3}, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(ctx, chunk.ID{Member: 0, Step: 3}, []byte("a")); err == nil {
		t.Error("re-putting the staged step should fail fast")
	}
}

func TestMemFullPipelineManySteps(t *testing.T) {
	// Producer/consumer across 50 steps with 2 readers: everything arrives
	// in order with no deadlock.
	const steps = 50
	const readers = 2
	m := NewMem()
	if err := m.Register(1, readers); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1 + readers)
	var prodErr error
	go func() {
		defer wg.Done()
		for s := 0; s < steps; s++ {
			payload := []byte(fmt.Sprintf("step-%d", s))
			if err := m.Put(ctx, chunk.ID{Member: 1, Step: s}, payload); err != nil {
				prodErr = err
				return
			}
		}
	}()
	readErrs := make([]error, readers)
	for r := 0; r < readers; r++ {
		go func(r int) {
			defer wg.Done()
			for s := 0; s < steps; s++ {
				data, err := m.Get(ctx, chunk.ID{Member: 1, Step: s})
				if err != nil {
					readErrs[r] = err
					return
				}
				if want := fmt.Sprintf("step-%d", s); string(data) != want {
					readErrs[r] = fmt.Errorf("step %d: got %q want %q", s, data, want)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if prodErr != nil {
		t.Errorf("producer: %v", prodErr)
	}
	for r, err := range readErrs {
		if err != nil {
			t.Errorf("reader %d: %v", r, err)
		}
	}
}
