package dtl

import (
	"context"
	"fmt"
	"sync"

	"ensemblekit/internal/chunk"
)

// Mem is the real-execution in-memory staging area: a DIMES-like store for
// encoded chunks with the paper's synchronous no-buffering protocol baked
// in. For each producer (ensemble member), at most one chunk is staged at a
// time; Put for step i+1 blocks until every registered reader has consumed
// step i, which enforces W_i -> R_i -> W_{i+1} (Section 3.1).
//
// Mem is safe for concurrent use: one producer and K consumers per member
// pipe, any number of pipes.
type Mem struct {
	mu    sync.Mutex
	pipes map[int]*memPipe // keyed by member index
}

type memPipe struct {
	mu      sync.Mutex
	readers int // registered consumers per chunk
	cur     *stagedChunk
	// changed is closed and replaced whenever pipe state changes, waking
	// all waiters to re-check their condition.
	changed chan struct{}
}

type stagedChunk struct {
	id        chunk.ID
	data      []byte
	remaining int
}

// NewMem returns an empty staging area.
func NewMem() *Mem {
	return &Mem{pipes: make(map[int]*memPipe)}
}

// Register declares that the member's chunks will be consumed by `readers`
// analyses. It must be called before the first Put for the member.
func (m *Mem) Register(member, readers int) error {
	if readers <= 0 {
		return fmt.Errorf("dtl: member %d needs at least one reader, got %d", member, readers)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.pipes[member]; dup {
		return fmt.Errorf("dtl: member %d already registered", member)
	}
	m.pipes[member] = &memPipe{readers: readers, changed: make(chan struct{})}
	return nil
}

func (m *Mem) pipe(member int) (*memPipe, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.pipes[member]
	if !ok {
		return nil, fmt.Errorf("dtl: member %d not registered", member)
	}
	return p, nil
}

// Put stages an encoded chunk. It blocks until the previous chunk of the
// same member has been fully consumed (no buffering), or ctx is cancelled.
func (m *Mem) Put(ctx context.Context, id chunk.ID, data []byte) error {
	p, err := m.pipe(id.Member)
	if err != nil {
		return err
	}
	for {
		p.mu.Lock()
		if p.cur == nil {
			p.cur = &stagedChunk{id: id, data: data, remaining: p.readers}
			p.signal()
			p.mu.Unlock()
			return nil
		}
		if p.cur.id.Step >= id.Step {
			p.mu.Unlock()
			return fmt.Errorf("dtl: put %v but step %d is still staged", id, p.cur.id.Step)
		}
		ch := p.changed
		p.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return fmt.Errorf("dtl: put %v: %w", id, ctx.Err())
		}
	}
}

// Get retrieves the encoded chunk with the given ID, blocking until it is
// staged or ctx is cancelled. Each registered reader must call Get exactly
// once per step; the chunk is released once all readers have consumed it.
func (m *Mem) Get(ctx context.Context, id chunk.ID) ([]byte, error) {
	p, err := m.pipe(id.Member)
	if err != nil {
		return nil, err
	}
	for {
		p.mu.Lock()
		if p.cur != nil && p.cur.id == id {
			data := p.cur.data
			p.cur.remaining--
			if p.cur.remaining <= 0 {
				p.cur = nil
			}
			p.signal()
			p.mu.Unlock()
			return data, nil
		}
		if p.cur != nil && p.cur.id.Step > id.Step {
			p.mu.Unlock()
			return nil, fmt.Errorf("dtl: get %v but step %d already staged (missed chunk)", id, p.cur.id.Step)
		}
		ch := p.changed
		p.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, fmt.Errorf("dtl: get %v: %w", id, ctx.Err())
		}
	}
}

// Await blocks until the chunk with the given ID is staged (without
// consuming it) or ctx is cancelled. It lets the real runtime separate the
// idle stage I^A (waiting for data) from the read stage R (consuming it),
// matching the paper's stage decomposition.
func (m *Mem) Await(ctx context.Context, id chunk.ID) error {
	p, err := m.pipe(id.Member)
	if err != nil {
		return err
	}
	for {
		p.mu.Lock()
		if p.cur != nil && p.cur.id == id {
			p.mu.Unlock()
			return nil
		}
		if p.cur != nil && p.cur.id.Step > id.Step {
			p.mu.Unlock()
			return fmt.Errorf("dtl: await %v but step %d already staged (missed chunk)", id, p.cur.id.Step)
		}
		ch := p.changed
		p.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return fmt.Errorf("dtl: await %v: %w", id, ctx.Err())
		}
	}
}

// AwaitWritable blocks until the member's staging slot is free (the
// previous chunk fully consumed) or ctx is cancelled. It lets the real
// runtime separate the idle stage I^S from the write stage W: after
// AwaitWritable returns, a Put for the next step will not block on the
// protocol.
func (m *Mem) AwaitWritable(ctx context.Context, member int) error {
	p, err := m.pipe(member)
	if err != nil {
		return err
	}
	for {
		p.mu.Lock()
		if p.cur == nil {
			p.mu.Unlock()
			return nil
		}
		ch := p.changed
		p.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return fmt.Errorf("dtl: await writable member %d: %w", member, ctx.Err())
		}
	}
}

// signal wakes all waiters; the caller must hold p.mu.
func (p *memPipe) signal() {
	close(p.changed)
	p.changed = make(chan struct{})
}

// Staged reports whether a chunk is currently staged for the member.
func (m *Mem) Staged(member int) bool {
	p, err := m.pipe(member)
	if err != nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cur != nil
}
