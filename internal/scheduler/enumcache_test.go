package scheduler

import (
	"testing"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/runtime"
)

// collectCandidates snapshots one enumeration: names and canonical keys
// in visit order.
func collectCandidates(spec cluster.Spec, shape [][]int, maxNodes int) []string {
	var out []string
	enumeratePlacements(spec, shape, maxNodes, func(p placement.Placement) {
		out = append(out, p.Name+" "+p.Key())
	})
	return out
}

// TestEnumerationCacheReplay pins the shared-enumeration fix: repeated
// searches over the same (spec, shape, maxNodes) must replay the memoized
// candidate list — identical placements, names, and order — without
// re-running the exponential enumeration.
func TestEnumerationCacheReplay(t *testing.T) {
	spec := cluster.Cori(2)
	// A spec tweak keys this test away from enumerations cached by other
	// tests in the package, so the build count below is deterministic.
	spec.NICLatency += 1e-12
	shape, err := shapeOf(runtime.PaperEnsemble("enumcache", 2, 1, 4))
	if err != nil {
		t.Fatal(err)
	}

	builds0 := enumBuilds.Load()
	first := collectCandidates(spec, shape, 2)
	if len(first) == 0 {
		t.Fatal("enumeration produced no candidates")
	}
	if got := enumBuilds.Load() - builds0; got != 1 {
		t.Fatalf("first enumeration ran %d builds, want 1", got)
	}

	hits0 := enumHits.Load()
	second := collectCandidates(spec, shape, 2)
	if got := enumBuilds.Load() - builds0; got != 1 {
		t.Fatalf("second enumeration re-built (%d builds total, want 1)", got)
	}
	if enumHits.Load() == hits0 {
		t.Fatal("second enumeration missed the cache")
	}
	if len(second) != len(first) {
		t.Fatalf("replay yielded %d candidates, first run %d", len(second), len(first))
	}
	for i := range first {
		if second[i] != first[i] {
			t.Fatalf("candidate %d: replay %q != first %q", i, second[i], first[i])
		}
	}

	// A different node budget is a different key, never a stale replay.
	builds1 := enumBuilds.Load()
	wider := collectCandidates(spec, shape, 1)
	if got := enumBuilds.Load() - builds1; got != 1 {
		t.Fatalf("changed maxNodes ran %d builds, want 1", got)
	}
	if len(wider) >= len(first) {
		t.Fatalf("maxNodes=1 yielded %d candidates, want fewer than %d", len(wider), len(first))
	}

	// Renaming a served candidate (what the searches do to the winner)
	// must not leak into the cache.
	var renamed placement.Placement
	enumeratePlacements(spec, shape, 2, func(p placement.Placement) {
		if renamed.Name == "" {
			renamed = p
			renamed.Name = "exhaustive-best"
		}
	})
	replay := collectCandidates(spec, shape, 2)
	if replay[0] != first[0] {
		t.Fatalf("rename leaked into the cache: %q != %q", replay[0], first[0])
	}
}
