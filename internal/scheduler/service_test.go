package scheduler

import (
	"context"
	"testing"

	"ensemblekit/internal/campaign"
	"ensemblekit/internal/cluster"
	"ensemblekit/internal/indicators"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/runtime"
)

func newTestService(t *testing.T, workers int) *campaign.Service {
	t.Helper()
	svc, err := campaign.NewService(campaign.Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

// TestExhaustiveServiceMatchesSerial is the drop-in guarantee: the
// parallel fan-out returns the same placement, score and evaluation count
// as the serial search for a fixed seed.
func TestExhaustiveServiceMatchesSerial(t *testing.T) {
	spec := cluster.Cori(2)
	es := runtime.PaperEnsemble("search", 1, 1, 4)
	opts := runtime.SimOptions{Seed: 5, Jitter: 0.02}

	serial, err := Exhaustive(spec, es, 2, SimulatedObjective(spec, es, opts, indicators.StageUAP))
	if err != nil {
		t.Fatal(err)
	}
	svc := newTestService(t, 4)
	pooled, err := ExhaustiveService(context.Background(), svc, spec, es, 2, opts, indicators.StageUAP)
	if err != nil {
		t.Fatal(err)
	}

	if pooled.Score != serial.Score {
		t.Errorf("score: pooled %v vs serial %v", pooled.Score, serial.Score)
	}
	if pooled.Evaluated != serial.Evaluated {
		t.Errorf("evaluated: pooled %d vs serial %d", pooled.Evaluated, serial.Evaluated)
	}
	if pooled.Placement.Key() != serial.Placement.Key() {
		t.Errorf("placement: pooled %s vs serial %s",
			pooled.Placement.String(), serial.Placement.String())
	}
	if pooled.Placement.Name != "exhaustive-best" {
		t.Errorf("winner name %q", pooled.Placement.Name)
	}
}

// TestServiceObjectiveMatchesSimulated checks score equality candidate by
// candidate, and that search revisits come from the cache.
func TestServiceObjectiveMatchesSimulated(t *testing.T) {
	spec := cluster.Cori(2)
	es := runtime.PaperEnsemble("search", 1, 1, 4)
	opts := runtime.SimOptions{Seed: 2}
	svc := newTestService(t, 2)

	direct := SimulatedObjective(spec, es, opts, indicators.StageUAP)
	viaService := ServiceObjective(svc, spec, es, opts, indicators.StageUAP)

	shape, err := shapeOf(es)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	enumeratePlacements(spec, shape, 2, func(p placement.Placement) {
		n++
		want, err1 := direct(p)
		got, err2 := viaService(p)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: error mismatch: %v vs %v", p.Name, err1, err2)
		}
		if err1 == nil && got != want {
			t.Errorf("%s: score %v vs %v", p.Name, got, want)
		}
	})
	if n == 0 {
		t.Fatal("no candidates enumerated")
	}

	// Re-scoring every candidate again must be answered from the cache.
	before := svc.Stats()
	enumeratePlacements(spec, shape, 2, func(p placement.Placement) {
		if _, err := viaService(p); err != nil {
			t.Fatal(err)
		}
	})
	after := svc.Stats()
	if after.CacheHits != before.CacheHits+int64(n) {
		t.Errorf("revisits hit %d times, want %d", after.CacheHits-before.CacheHits, n)
	}
	if after.Completed != before.Completed {
		t.Errorf("revisits ran %d extra simulations", after.Completed-before.Completed)
	}
}

// TestSearchServiceStrategies covers the dispatch wrapper.
func TestSearchServiceStrategies(t *testing.T) {
	spec := cluster.Cori(2)
	es := runtime.PaperEnsemble("search", 1, 1, 4)
	opts := runtime.SimOptions{Seed: 1}
	svc := newTestService(t, 2)

	ex, err := SearchService(context.Background(), StrategyExhaustive, svc, spec, es, 2, opts, indicators.StageUAP, nil, AnnealOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Placement.Name != "exhaustive-best" {
		t.Errorf("exhaustive winner %q", ex.Placement.Name)
	}

	gr, err := SearchService(context.Background(), StrategyGreedy, svc, spec, es, 2, opts, indicators.StageUAP, nil, AnnealOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if gr.Score <= 0 {
		t.Errorf("greedy score %v", gr.Score)
	}
}
