// Package scheduler implements the paper's stated future work (Section 7):
// using the performance indicators to schedule the in situ components of a
// workflow ensemble under resource constraints. A placement's quality is
// the objective F(P^{U,A,P}) (Equations 8-9); the scheduler searches the
// placement space for the maximum, either exhaustively (small instances,
// deduplicated up to node relabeling) or by greedy construction plus
// hill-climbing local search (larger instances).
//
// Two objective evaluators are provided: an analytic one that predicts
// each member's efficiency from the interference model without running the
// discrete-event simulation (fast, slightly optimistic about staging
// contention), and a simulated one that executes the ensemble per
// candidate (slower, exact within the model).
package scheduler

import (
	"errors"
	"fmt"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/core"
	"ensemblekit/internal/indicators"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/runtime"
	"ensemblekit/internal/trace"
)

// Objective scores a placement; higher is better. Implementations return
// an error for placements they cannot evaluate.
type Objective func(p placement.Placement) (float64, error)

// AnalyticObjective predicts F at the given indicator stage from the
// interference model alone: component stage durations are assessed
// statically (remote staging priced without flow sharing), efficiencies
// follow Equation 3, and the indicator arithmetic is exact.
func AnalyticObjective(spec cluster.Spec, model *cluster.Model, es runtime.EnsembleSpec, stage indicators.StageSet) Objective {
	if model == nil {
		model = cluster.NewModel(spec)
	}
	return func(p placement.Placement) (float64, error) {
		states, err := PredictSteadyStates(spec, model, es, p)
		if err != nil {
			return 0, err
		}
		effs := make([]float64, len(states))
		for i, ss := range states {
			e, err := ss.Efficiency()
			if err != nil {
				return 0, err
			}
			effs[i] = e
		}
		return indicators.Objective(p, effs, stage)
	}
}

// SimulatedObjective scores placements by running the simulated backend
// and extracting efficiencies from the trace.
func SimulatedObjective(spec cluster.Spec, es runtime.EnsembleSpec, opts runtime.SimOptions, stage indicators.StageSet) Objective {
	return func(p placement.Placement) (float64, error) {
		spec := specFor(spec, p)
		tr, err := runtime.RunSimulated(spec, p, es, opts)
		if err != nil {
			return 0, err
		}
		effs, err := Efficiencies(tr)
		if err != nil {
			return 0, err
		}
		return indicators.Objective(p, effs, stage)
	}
}

// specFor grows the machine if the placement names nodes beyond it.
func specFor(spec cluster.Spec, p placement.Placement) cluster.Spec {
	max := 0
	for _, n := range p.UsedNodes() {
		if n+1 > max {
			max = n + 1
		}
	}
	if max > spec.Nodes {
		spec.Nodes = max
	}
	return spec
}

// Efficiencies extracts the per-member computational efficiencies
// (Equation 3) from an ensemble trace.
func Efficiencies(tr *trace.EnsembleTrace) ([]float64, error) {
	if tr == nil || len(tr.Members) == 0 {
		return nil, errors.New("scheduler: empty trace")
	}
	out := make([]float64, len(tr.Members))
	for i, m := range tr.Members {
		ss, err := core.FromMemberTrace(m, core.ExtractOptions{})
		if err != nil {
			return nil, fmt.Errorf("scheduler: member %d: %w", i, err)
		}
		e, err := ss.Efficiency()
		if err != nil {
			return nil, fmt.Errorf("scheduler: member %d: %w", i, err)
		}
		out[i] = e
	}
	return out, nil
}

// PredictSteadyStates computes each member's analytic steady state for a
// placement: compute stages from the interference assessment, staging
// stages from the model's cost formulas (DIMES semantics: local copies
// when co-located, uncontended remote gets otherwise).
func PredictSteadyStates(spec cluster.Spec, model *cluster.Model, es runtime.EnsembleSpec, p placement.Placement) ([]core.SteadyState, error) {
	spec = specFor(spec, p)
	if err := p.Validate(spec); err != nil {
		return nil, err
	}
	if err := es.Validate(p); err != nil {
		return nil, err
	}
	machine, err := cluster.NewMachine(spec)
	if err != nil {
		return nil, err
	}
	type alloc struct {
		tenant *cluster.Tenant
		node   int
	}
	sims := make([]alloc, len(p.Members))
	anas := make([][]alloc, len(p.Members))
	for i, m := range p.Members {
		ns := m.Simulation.NodeSet()
		if len(ns) != 1 {
			return nil, fmt.Errorf("scheduler: member %d simulation spans %d nodes", i, len(ns))
		}
		t, err := machine.Allocate(fmt.Sprintf("m%d.sim", i), ns[0], m.Simulation.Cores, es.Members[i].Sim)
		if err != nil {
			return nil, err
		}
		sims[i] = alloc{tenant: t, node: ns[0]}
		anas[i] = make([]alloc, len(m.Analyses))
		for j, a := range m.Analyses {
			ans := a.NodeSet()
			if len(ans) != 1 {
				return nil, fmt.Errorf("scheduler: member %d analysis %d spans %d nodes", i, j, len(ans))
			}
			at, err := machine.Allocate(fmt.Sprintf("m%d.ana%d", i, j), ans[0], a.Cores, es.Members[i].Analyses[j])
			if err != nil {
				return nil, err
			}
			anas[i][j] = alloc{tenant: at, node: ans[0]}
			if ans[0] != ns[0] {
				t.RemoteReaders++
			}
		}
	}
	out := make([]core.SteadyState, len(p.Members))
	for i := range p.Members {
		node, _ := machine.Node(sims[i].node)
		sa, err := model.Assess(node, sims[i].tenant)
		if err != nil {
			return nil, err
		}
		bytes := es.Members[i].Sim.BytesPerStep
		ss := core.SteadyState{
			S: sa.ComputeTime,
			W: model.SerializeTime(bytes) + model.LocalCopyTime(bytes),
		}
		for j := range anas[i] {
			anode, _ := machine.Node(anas[i][j].node)
			aa, err := model.Assess(anode, anas[i][j].tenant)
			if err != nil {
				return nil, err
			}
			var r float64
			if anas[i][j].node == sims[i].node {
				r = model.LocalCopyTime(bytes) + model.DeserializeTime(bytes)
			} else {
				r = model.RemoteGetBaseTime(bytes) + model.DeserializeTime(bytes)
			}
			ss.Couplings = append(ss.Couplings, core.Coupling{R: r, A: aa.ComputeTime})
		}
		out[i] = ss
	}
	return out, nil
}
