package scheduler

import (
	"math"
	"testing"

	"ensemblekit/internal/indicators"
)

func TestSearchUnifiesStrategies(t *testing.T) {
	spec, es := paperSetup()
	obj := AnalyticObjective(spec, nil, es, indicators.StageUAP)
	for _, strategy := range []Strategy{StrategyExhaustive, StrategyGreedy, StrategyAnneal} {
		res, err := Search(strategy, spec, es, 3, obj, nil, AnnealOptions{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		if res.Evaluated == 0 || math.IsInf(res.Score, -1) {
			t.Errorf("%s: empty result %+v", strategy, res)
		}
	}
	if _, err := Search("bogus", spec, es, 3, obj, nil, AnnealOptions{}); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestMonitorReportsProgress(t *testing.T) {
	spec, es := paperSetup()
	obj := AnalyticObjective(spec, nil, es, indicators.StageUAP)
	var snaps []Progress
	mon := &Monitor{Every: 10, OnProgress: func(p Progress) { snaps = append(snaps, p) }}
	res, err := Search(StrategyExhaustive, spec, es, 3, obj, mon, AnnealOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("got %d snapshots, want periodic plus final", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if !last.Final {
		t.Error("last snapshot not marked Final")
	}
	if last.Evaluated != res.Evaluated || last.BestScore != res.Score {
		t.Errorf("final snapshot %+v does not match result %+v", last, res)
	}
	// Periodic snapshots count monotonically and never exceed the total.
	prev := 0
	for _, s := range snaps[:len(snaps)-1] {
		if s.Final {
			t.Error("non-last snapshot marked Final")
		}
		if s.Evaluated <= prev || s.Evaluated > res.Evaluated {
			t.Errorf("snapshot evaluations %d out of order (prev %d, total %d)",
				s.Evaluated, prev, res.Evaluated)
		}
		if s.Strategy != StrategyExhaustive {
			t.Errorf("snapshot strategy %q", s.Strategy)
		}
		prev = s.Evaluated
	}
}

func TestMonitorDoesNotPerturbSearch(t *testing.T) {
	spec, es := paperSetup()
	obj := AnalyticObjective(spec, nil, es, indicators.StageUAP)
	opts := AnnealOptions{Iterations: 300, Seed: 7}
	plain, err := Search(StrategyAnneal, spec, es, 3, obj, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	mon := &Monitor{Every: 5, OnProgress: func(Progress) {}}
	watched, err := Search(StrategyAnneal, spec, es, 3, obj, mon, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Score != watched.Score || plain.Evaluated != watched.Evaluated {
		t.Errorf("monitor perturbed the search: %+v vs %+v", plain, watched)
	}
	if plain.Placement.Key() != watched.Placement.Key() {
		t.Error("monitor changed the winning placement")
	}
}

func TestAnnealProgressCallback(t *testing.T) {
	spec, es := paperSetup()
	obj := AnalyticObjective(spec, nil, es, indicators.StageUAP)
	var iters []int
	var lastBest float64 = math.Inf(-1)
	opts := AnnealOptions{
		Iterations:    250,
		Seed:          3,
		ProgressEvery: 50,
		Progress: func(it int, temp, cur, best float64) {
			iters = append(iters, it)
			if temp < 0 {
				t.Errorf("negative temperature %v at iteration %d", temp, it)
			}
			if best < lastBest {
				t.Errorf("best score regressed at iteration %d: %v < %v", it, best, lastBest)
			}
			lastBest = best
		},
	}
	res, err := Anneal(spec, es, 3, obj, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{50, 100, 150, 200, 250}
	if len(iters) != len(want) {
		t.Fatalf("progress fired at %v, want %v", iters, want)
	}
	for i := range want {
		if iters[i] != want[i] {
			t.Fatalf("progress fired at %v, want %v", iters, want)
		}
	}
	// The callback-free run lands in the same place.
	plain, err := Anneal(spec, es, 3, obj, AnnealOptions{Iterations: 250, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Score != res.Score || plain.Evaluated != res.Evaluated {
		t.Errorf("progress callback perturbed the anneal: %+v vs %+v", plain, res)
	}
}
