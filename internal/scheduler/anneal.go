package scheduler

import (
	"errors"
	"math"
	"math/rand"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/runtime"
)

// AnnealOptions tunes the simulated-annealing search.
type AnnealOptions struct {
	// Iterations is the number of proposed moves (default 2000).
	Iterations int
	// InitialTemp scales the acceptance of uphill moves relative to the
	// objective's magnitude (default 0.5: a move losing 50% of the
	// current score is accepted with probability 1/e at the start).
	InitialTemp float64
	// Seed makes the search deterministic.
	Seed int64
	// Progress, when non-nil, is called every ProgressEvery iterations
	// with the iteration count, the current temperature, the current
	// score, and the best score so far. The callback observes the walk
	// without perturbing it (RNG consumption is unchanged).
	Progress func(iteration int, temp, current, best float64)
	// ProgressEvery is the iteration cadence of Progress (default 100).
	ProgressEvery int
}

func (o AnnealOptions) normalized() AnnealOptions {
	if o.Iterations <= 0 {
		o.Iterations = 2000
	}
	if o.InitialTemp <= 0 {
		o.InitialTemp = 0.5
	}
	return o
}

// Anneal searches placements by simulated annealing: random single-
// component moves, accepted when improving or with Boltzmann probability
// otherwise, under a geometric cooling schedule. It escapes the local
// optima greedy hill-climbing can stall in, at the cost of more objective
// evaluations.
func Anneal(spec cluster.Spec, es runtime.EnsembleSpec, maxNodes int, obj Objective, opts AnnealOptions) (Result, error) {
	opts = opts.normalized()
	shape, err := shapeOf(es)
	if err != nil {
		return Result{}, err
	}
	if maxNodes <= 0 || maxNodes > spec.Nodes {
		maxNodes = spec.Nodes
	}
	total := 0
	for _, cores := range shape {
		total += len(cores)
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	// Start from the greedy construction: under the variance-penalizing
	// objective F, random starts strand the walk in basins that
	// single-component moves cannot escape (improving one member at a
	// time raises the stddev before it lowers it).
	assignment, err := greedyConstruct(shape, maxNodes, spec.CoresPerNode)
	if err != nil {
		return Result{}, err
	}
	res := Result{Score: math.Inf(-1)}
	evaluate := func(a []int) (float64, bool) {
		p := materialize(shape, a)
		if p.Validate(spec) != nil {
			return 0, false
		}
		p.Name = "anneal-candidate"
		s, err := obj(p)
		if err != nil {
			return 0, false
		}
		return s, true
	}
	cur, ok := evaluate(assignment)
	res.Evaluated++
	// If the round-robin start is infeasible, walk forward to a feasible
	// random assignment.
	for !ok {
		if res.Evaluated > 200 {
			return Result{}, errors.New("scheduler: annealing found no feasible start")
		}
		for i := range assignment {
			assignment[i] = rng.Intn(maxNodes)
		}
		cur, ok = evaluate(assignment)
		res.Evaluated++
	}
	best := append([]int(nil), assignment...)
	bestScore := cur

	temp := opts.InitialTemp * math.Abs(cur)
	if temp == 0 {
		temp = opts.InitialTemp
	}
	cooling := math.Pow(1e-3, 1/float64(opts.Iterations)) // end at 0.1% of start
	progressEvery := opts.ProgressEvery
	if progressEvery <= 0 {
		progressEvery = 100
	}
	for it := 0; it < opts.Iterations; it++ {
		i := rng.Intn(total)
		old := assignment[i]
		move := rng.Intn(maxNodes)
		if move != old {
			assignment[i] = move
			score, ok := evaluate(assignment)
			res.Evaluated++
			accept := false
			if ok {
				if score >= cur {
					accept = true
				} else if temp > 0 && rng.Float64() < math.Exp((score-cur)/temp) {
					accept = true
				}
			}
			if accept {
				cur = score
				if cur > bestScore {
					bestScore = cur
					copy(best, assignment)
				}
			} else {
				assignment[i] = old
			}
		}
		temp *= cooling
		if opts.Progress != nil && (it+1)%progressEvery == 0 {
			opts.Progress(it+1, temp, cur, bestScore)
		}
	}
	// Polish the annealed optimum with deterministic hill climbing — the
	// standard hybrid: annealing finds the basin, local search finds its
	// bottom.
	bestScore = hillClimb(best, maxNodes, bestScore, evaluate, &res.Evaluated)
	res.Score = bestScore
	res.Placement = materialize(shape, best)
	res.Placement.Name = "anneal-best"
	return res, nil
}
