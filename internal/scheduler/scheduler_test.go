package scheduler

import (
	"math"
	"testing"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/indicators"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/runtime"
)

func paperSetup() (cluster.Spec, runtime.EnsembleSpec) {
	spec := cluster.Cori(3)
	es := runtime.PaperEnsemble("sched-test", 2, 1, 8)
	return spec, es
}

func TestPredictSteadyStates(t *testing.T) {
	spec, es := paperSetup()
	model := cluster.NewModel(spec)
	states, err := PredictSteadyStates(spec, model, es, placement.C15())
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 2 {
		t.Fatalf("states = %d", len(states))
	}
	for i, ss := range states {
		if ss.S <= 0 || ss.W <= 0 || len(ss.Couplings) != 1 {
			t.Errorf("member %d: malformed steady state %+v", i, ss)
		}
		// The calibrated C1.5 member satisfies Eq. 4.
		if !ss.SatisfiesEq4() {
			t.Errorf("member %d: C1.5 should satisfy Eq. 4", i)
		}
	}
	// Co-located reads are cheaper: R(C1.5) < R(C_f).
	cf, err := PredictSteadyStates(spec, model, es2members(placement.Cf(), es), placement.Cf())
	if err != nil {
		t.Fatal(err)
	}
	if states[0].Couplings[0].R >= cf[0].Couplings[0].R {
		t.Errorf("local read %v should beat remote read %v",
			states[0].Couplings[0].R, cf[0].Couplings[0].R)
	}
}

// es2members shapes the spec to the placement's member count.
func es2members(p placement.Placement, es runtime.EnsembleSpec) runtime.EnsembleSpec {
	return runtime.SpecForPlacement(p, es.Steps)
}

func TestAnalyticObjectiveRanksC15First(t *testing.T) {
	spec, es := paperSetup()
	obj := AnalyticObjective(spec, nil, es, indicators.StageUAP)
	best, bestScore := "", math.Inf(-1)
	for _, cfg := range placement.ConfigsTable2TwoMember() {
		score, err := obj(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if score > bestScore {
			best, bestScore = cfg.Name, score
		}
	}
	if best != "C1.5" {
		t.Errorf("analytic objective picks %s, want C1.5", best)
	}
}

func TestSimulatedObjectiveAgreesOnWinner(t *testing.T) {
	spec, es := paperSetup()
	obj := SimulatedObjective(spec, es, runtime.SimOptions{}, indicators.StageUAP)
	c15, err := obj(placement.C15())
	if err != nil {
		t.Fatal(err)
	}
	c14, err := obj(placement.C14())
	if err != nil {
		t.Fatal(err)
	}
	if c15 <= c14 {
		t.Errorf("simulated objective: C1.5 (%v) should beat C1.4 (%v)", c15, c14)
	}
}

func TestExhaustiveFindsFullCoLocation(t *testing.T) {
	spec, es := paperSetup()
	obj := AnalyticObjective(spec, nil, es, indicators.StageUAP)
	res, err := Exhaustive(spec, es, 3, obj)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated == 0 {
		t.Fatal("nothing evaluated")
	}
	// The optimum of the paper's objective is the C1.5 pattern: each
	// member fully co-located on its own node.
	if res.Placement.Key() != placement.C15().Key() {
		t.Errorf("exhaustive best = %s (score %v), want the C1.5 pattern",
			res.Placement.String(), res.Score)
	}
	// Its score must match the direct evaluation of C1.5.
	want, err := obj(placement.C15())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Score-want) > 1e-12 {
		t.Errorf("score %v != direct C1.5 score %v", res.Score, want)
	}
}

func TestGreedyMatchesExhaustiveOnPaperInstance(t *testing.T) {
	spec, es := paperSetup()
	obj := AnalyticObjective(spec, nil, es, indicators.StageUAP)
	ex, err := Exhaustive(spec, es, 3, obj)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := GreedyLocalSearch(spec, es, 3, obj)
	if err != nil {
		t.Fatal(err)
	}
	if gr.Score < ex.Score-1e-12 {
		t.Errorf("greedy score %v below exhaustive %v", gr.Score, ex.Score)
	}
	if gr.Evaluated >= ex.Evaluated {
		t.Logf("note: greedy evaluated %d vs exhaustive %d (small instance)", gr.Evaluated, ex.Evaluated)
	}
}

func TestGreedyScalesToLargerEnsembles(t *testing.T) {
	spec := cluster.Cori(6)
	es := runtime.PaperEnsemble("big", 4, 2, 6)
	obj := AnalyticObjective(spec, nil, es, indicators.StageUAP)
	res, err := GreedyLocalSearch(spec, es, 6, obj)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Placement.Validate(spec); err != nil {
		t.Fatalf("greedy placement invalid: %v", err)
	}
	// Full co-location per member is feasible (16+8+8 = 32) and optimal;
	// greedy should find every member co-located.
	for i, m := range res.Placement.Members {
		cp, err := indicators.CP(m)
		if err != nil {
			t.Fatal(err)
		}
		if cp != 1 {
			t.Errorf("member %d not fully co-located (CP=%v) in %s", i, cp, res.Placement)
		}
	}
}

func TestEfficienciesErrors(t *testing.T) {
	if _, err := Efficiencies(nil); err == nil {
		t.Error("nil trace should fail")
	}
}

func TestSearchValidation(t *testing.T) {
	spec, _ := paperSetup()
	obj := func(p placement.Placement) (float64, error) { return 0, nil }
	if _, err := Exhaustive(spec, runtime.EnsembleSpec{}, 2, obj); err == nil {
		t.Error("empty ensemble should fail")
	}
	if _, err := GreedyLocalSearch(spec, runtime.EnsembleSpec{}, 2, obj); err == nil {
		t.Error("empty ensemble should fail")
	}
}

func TestAnnealMatchesExhaustiveOnPaperInstance(t *testing.T) {
	spec, es := paperSetup()
	obj := AnalyticObjective(spec, nil, es, indicators.StageUAP)
	ex, err := Exhaustive(spec, es, 3, obj)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Anneal(spec, es, 3, obj, AnnealOptions{Iterations: 800, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if an.Score < ex.Score-1e-12 {
		t.Errorf("annealing score %v below exhaustive optimum %v", an.Score, ex.Score)
	}
	if err := an.Placement.Validate(spec); err != nil {
		t.Fatalf("annealed placement invalid: %v", err)
	}
}

func TestAnnealDeterministicPerSeed(t *testing.T) {
	spec, es := paperSetup()
	obj := AnalyticObjective(spec, nil, es, indicators.StageUAP)
	a, err := Anneal(spec, es, 3, obj, AnnealOptions{Iterations: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anneal(spec, es, 3, obj, AnnealOptions{Iterations: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != b.Score {
		t.Errorf("same seed diverges: %v vs %v", a.Score, b.Score)
	}
}

func TestAnnealLargerInstance(t *testing.T) {
	spec := cluster.Cori(6)
	es := runtime.PaperEnsemble("anneal-big", 4, 2, 6)
	obj := AnalyticObjective(spec, nil, es, indicators.StageUAP)
	gr, err := GreedyLocalSearch(spec, es, 6, obj)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Anneal(spec, es, 6, obj, AnnealOptions{Iterations: 3000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Annealing should reach at least 95% of greedy's score on this
	// instance (both typically find the co-located optimum).
	if an.Score < 0.95*gr.Score {
		t.Errorf("annealing %v too far below greedy %v", an.Score, gr.Score)
	}
}

func TestAnnealValidation(t *testing.T) {
	spec, _ := paperSetup()
	obj := func(p placement.Placement) (float64, error) { return 0, nil }
	if _, err := Anneal(spec, runtime.EnsembleSpec{}, 2, obj, AnnealOptions{}); err == nil {
		t.Error("empty ensemble should fail")
	}
}
