package scheduler

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/runtime"
)

// Result is the outcome of a placement search.
type Result struct {
	// Placement is the best placement found.
	Placement placement.Placement
	// Score is its objective value.
	Score float64
	// Evaluated counts objective evaluations performed.
	Evaluated int
}

// shapeOf derives the component core structure of an ensemble spec, using
// the paper's core counts (16-core simulations, 8-core analyses).
func shapeOf(es runtime.EnsembleSpec) ([][]int, error) {
	if len(es.Members) == 0 {
		return nil, errors.New("scheduler: ensemble has no members")
	}
	shape := make([][]int, len(es.Members))
	for i, m := range es.Members {
		if len(m.Analyses) == 0 {
			return nil, fmt.Errorf("scheduler: member %d has no analyses", i)
		}
		cores := []int{placement.SimCores}
		for range m.Analyses {
			cores = append(cores, placement.AnalysisCores)
		}
		shape[i] = cores
	}
	return shape, nil
}

// materialize turns a flat node-assignment vector into a placement.
func materialize(shape [][]int, assignment []int) placement.Placement {
	p := placement.Placement{}
	pos := 0
	for _, cores := range shape {
		m := placement.Member{
			Simulation: placement.Component{Nodes: []int{assignment[pos]}, Cores: cores[0]},
		}
		pos++
		for _, c := range cores[1:] {
			m.Analyses = append(m.Analyses, placement.Component{
				Nodes: []int{assignment[pos]}, Cores: c,
			})
			pos++
		}
		p.Members = append(p.Members, m)
	}
	return p
}

// enumCache memoizes the deduplicated candidate list per
// (spec, shape, maxNodes). The enumeration is exponential in ensemble
// size, and every exhaustive search — serial or service-fanned — over
// the same machine and workload used to redo it from scratch; a sweep
// of N searches now enumerates once and replays N-1 times. Cached
// slices are immutable: visitors receive value copies (a winner's
// later rename never reaches the cache), and nothing mutates the
// shared Members backing. enumBuilds/enumHits are test observability.
var (
	enumCache  sync.Map // enumKey JSON -> []placement.Placement
	enumBuilds atomic.Int64
	enumHits   atomic.Int64
)

// enumKey derives the cache key; ok=false (unkeyable input) disables
// caching for the call rather than failing the enumeration.
func enumKey(spec cluster.Spec, shape [][]int, maxNodes int) (string, bool) {
	b, err := json.Marshal(struct {
		Spec     cluster.Spec
		Shape    [][]int
		MaxNodes int
	}{spec, shape, maxNodes})
	if err != nil {
		return "", false
	}
	return string(b), true
}

// enumeratePlacements visits every valid placement of the shape on up to
// maxNodes nodes, deduplicated up to node relabeling, in a deterministic
// canonical order. Candidates arrive named "candidate-N" with N counting
// from 1 in visit order — the naming contract the exhaustive searches and
// the campaign cache share, so a candidate hashes identically no matter
// which code path evaluates it. Enumerations are memoized per
// (spec, shape, maxNodes); a cache replay visits the identical
// placements in the identical order.
func enumeratePlacements(spec cluster.Spec, shape [][]int, maxNodes int, visit func(placement.Placement)) {
	key, keyed := enumKey(spec, shape, maxNodes)
	if keyed {
		if v, ok := enumCache.Load(key); ok {
			enumHits.Add(1)
			for _, p := range v.([]placement.Placement) {
				visit(p)
			}
			return
		}
	}
	var cands []placement.Placement
	enumerateRaw(spec, shape, maxNodes, func(p placement.Placement) {
		cands = append(cands, p)
		visit(p)
	})
	enumBuilds.Add(1)
	if keyed {
		enumCache.Store(key, cands)
	}
}

// enumerateRaw is the uncached enumeration behind enumeratePlacements.
func enumerateRaw(spec cluster.Spec, shape [][]int, maxNodes int, visit func(placement.Placement)) {
	total := 0
	for _, cores := range shape {
		total += len(cores)
	}
	assignment := make([]int, total)
	seen := make(map[string]bool)
	count := 0

	var rec func(pos int)
	rec = func(pos int) {
		if pos == total {
			p := materialize(shape, assignment)
			if p.Validate(spec) != nil {
				return
			}
			key := p.Key()
			if seen[key] {
				return
			}
			seen[key] = true
			count++
			p.Name = fmt.Sprintf("candidate-%d", count)
			visit(p)
			return
		}
		for n := 0; n < maxNodes; n++ {
			assignment[pos] = n
			rec(pos + 1)
		}
	}
	rec(0)
}

// Exhaustive evaluates every valid placement of the ensemble on up to
// maxNodes nodes (deduplicated up to node relabeling) and returns the
// best. Suitable for paper-scale instances (2 members, <= 3 nodes).
func Exhaustive(spec cluster.Spec, es runtime.EnsembleSpec, maxNodes int, obj Objective) (Result, error) {
	shape, err := shapeOf(es)
	if err != nil {
		return Result{}, err
	}
	if maxNodes <= 0 || maxNodes > spec.Nodes {
		maxNodes = spec.Nodes
	}
	best := Result{Score: math.Inf(-1)}
	var firstErr error
	enumeratePlacements(spec, shape, maxNodes, func(p placement.Placement) {
		score, err := obj(p)
		best.Evaluated++
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		if score > best.Score {
			best.Score = score
			best.Placement = p
		}
	})
	if math.IsInf(best.Score, -1) {
		if firstErr != nil {
			return Result{}, fmt.Errorf("scheduler: no placement evaluated: %w", firstErr)
		}
		return Result{}, errors.New("scheduler: no valid placement found")
	}
	best.Placement.Name = "exhaustive-best"
	return best, nil
}

// GreedyLocalSearch builds an initial placement by packing each member's
// components onto the least-loaded feasible nodes with co-location
// preference, then hill-climbs: repeatedly move single components to other
// nodes while the objective improves. Complexity is polynomial where
// Exhaustive is exponential.
func GreedyLocalSearch(spec cluster.Spec, es runtime.EnsembleSpec, maxNodes int, obj Objective) (Result, error) {
	shape, err := shapeOf(es)
	if err != nil {
		return Result{}, err
	}
	if maxNodes <= 0 || maxNodes > spec.Nodes {
		maxNodes = spec.Nodes
	}
	total := 0
	for _, cores := range shape {
		total += len(cores)
	}
	flatCores := make([]int, 0, total)
	for _, cs := range shape {
		flatCores = append(flatCores, cs...)
	}

	assignment, err := greedyConstruct(shape, maxNodes, spec.CoresPerNode)
	if err != nil {
		return Result{}, err
	}

	evaluate := func(a []int) (float64, bool) {
		p := materialize(shape, a)
		if p.Validate(spec) != nil {
			return 0, false
		}
		p.Name = "greedy-candidate"
		s, err := obj(p)
		if err != nil {
			return 0, false
		}
		return s, true
	}

	res := Result{Score: math.Inf(-1)}
	score, ok := evaluate(assignment)
	res.Evaluated++
	if !ok {
		return Result{}, errors.New("scheduler: greedy initial placement not evaluable")
	}
	res.Score = score
	res.Score = hillClimb(assignment, maxNodes, res.Score, evaluate, &res.Evaluated)
	res.Placement = materialize(shape, assignment)
	res.Placement.Name = "greedy-best"
	return res, nil
}

// greedyConstruct packs components in member order: analyses prefer their
// simulation's node (co-location), anything else goes to the least-loaded
// node with room.
func greedyConstruct(shape [][]int, maxNodes, coresPerNode int) ([]int, error) {
	total := 0
	for _, cores := range shape {
		total += len(cores)
	}
	load := make([]int, maxNodes)
	assignment := make([]int, total)
	pos := 0
	for _, cores := range shape {
		simNode := -1
		for ci, c := range cores {
			cand := -1
			if ci > 0 && simNode >= 0 && load[simNode]+c <= coresPerNode {
				cand = simNode
			} else {
				bestLoad := math.MaxInt
				for n := 0; n < maxNodes; n++ {
					if load[n]+c <= coresPerNode && load[n] < bestLoad {
						bestLoad = load[n]
						cand = n
					}
				}
			}
			if cand < 0 {
				return nil, fmt.Errorf("scheduler: greedy construction cannot place a %d-core component", c)
			}
			assignment[pos] = cand
			load[cand] += c
			if ci == 0 {
				simNode = cand
			}
			pos++
		}
	}
	return assignment, nil
}

// hillClimb improves an assignment in place with first-improvement
// single-component moves until no move helps. It returns the final score
// and counts evaluations through evals.
func hillClimb(assignment []int, maxNodes int, score float64, evaluate func([]int) (float64, bool), evals *int) float64 {
	improved := true
	for improved {
		improved = false
		for i := range assignment {
			orig := assignment[i]
			for n := 0; n < maxNodes; n++ {
				if n == orig {
					continue
				}
				assignment[i] = n
				s, ok := evaluate(assignment)
				*evals++
				if ok && s > score+1e-15 {
					score = s
					improved = true
					orig = n // keep the move
				} else {
					assignment[i] = orig
				}
			}
			assignment[i] = orig
		}
	}
	return score
}
