package scheduler

import (
	"fmt"
	"math"
	"time"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/runtime"
)

// Strategy names a placement-search algorithm for the unified Search entry
// point.
type Strategy string

const (
	// StrategyExhaustive enumerates every placement (paper-scale instances).
	StrategyExhaustive Strategy = "exhaustive"
	// StrategyGreedy is greedy construction plus hill climbing.
	StrategyGreedy Strategy = "greedy"
	// StrategyAnneal is simulated annealing with a hill-climb polish.
	StrategyAnneal Strategy = "anneal"
)

// Progress is a snapshot of an in-flight placement search, delivered to
// Monitor.OnProgress. BestScore is -Inf until a feasible candidate has been
// scored.
type Progress struct {
	// Strategy is the running search algorithm.
	Strategy Strategy
	// Evaluated counts objective evaluations so far.
	Evaluated int
	// BestScore is the best objective value seen so far.
	BestScore float64
	// Elapsed is the wall-clock time since the search started.
	Elapsed time.Duration
	// Final marks the closing snapshot emitted when the search returns.
	Final bool
}

// Monitor observes a placement search without altering it: the objective is
// wrapped so every evaluation is counted and periodic snapshots (every
// Every evaluations, default 50) reach OnProgress, plus one final snapshot
// when the search returns. A nil *Monitor disables profiling.
type Monitor struct {
	// Every is the evaluation cadence between snapshots (default 50).
	Every int
	// OnProgress receives the snapshots. Nil disables the monitor.
	OnProgress func(Progress)
}

// active reports whether the monitor will emit anything.
func (m *Monitor) active() bool { return m != nil && m.OnProgress != nil }

// wrap decorates obj so evaluations are counted and periodically reported.
func (m *Monitor) wrap(strategy Strategy, start time.Time, obj Objective) Objective {
	if !m.active() {
		return obj
	}
	every := m.Every
	if every <= 0 {
		every = 50
	}
	evaluated := 0
	best := math.Inf(-1)
	return func(p placement.Placement) (float64, error) {
		s, err := obj(p)
		evaluated++
		if err == nil && s > best {
			best = s
		}
		if evaluated%every == 0 {
			m.OnProgress(Progress{
				Strategy:  strategy,
				Evaluated: evaluated,
				BestScore: best,
				Elapsed:   time.Since(start),
			})
		}
		return s, err
	}
}

// Search runs the named strategy over the placement space with optional
// progress monitoring. opts only applies to StrategyAnneal; the zero value
// uses the annealer's defaults.
func Search(strategy Strategy, spec cluster.Spec, es runtime.EnsembleSpec, maxNodes int,
	obj Objective, mon *Monitor, opts AnnealOptions) (Result, error) {

	start := time.Now()
	wrapped := mon.wrap(strategy, start, obj)
	var res Result
	var err error
	switch strategy {
	case StrategyExhaustive:
		res, err = Exhaustive(spec, es, maxNodes, wrapped)
	case StrategyGreedy:
		res, err = GreedyLocalSearch(spec, es, maxNodes, wrapped)
	case StrategyAnneal:
		res, err = Anneal(spec, es, maxNodes, wrapped, opts)
	default:
		return Result{}, fmt.Errorf("scheduler: unknown strategy %q", strategy)
	}
	if err == nil && mon.active() {
		mon.OnProgress(Progress{
			Strategy:  strategy,
			Evaluated: res.Evaluated,
			BestScore: res.Score,
			Elapsed:   time.Since(start),
			Final:     true,
		})
	}
	return res, err
}
