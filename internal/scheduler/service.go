package scheduler

import (
	"context"
	"errors"
	"fmt"
	"math"

	"ensemblekit/internal/campaign"
	"ensemblekit/internal/cluster"
	"ensemblekit/internal/indicators"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/runtime"
)

// ServiceObjective is SimulatedObjective routed through a campaign
// service: each candidate becomes a content-addressed job, so repeated
// evaluations of the same placement — hill-climb revisits, annealing
// walks crossing old states, a search re-run after a sweep — are answered
// from the cache instead of re-simulated. Scores are identical to
// SimulatedObjective for a fixed seed: the job replays the same
// RunSimulated call and the efficiencies are extracted from the same
// trace.
//
// The options must be content-addressable (no Model override); otherwise
// every evaluation returns campaign.ErrNotCacheable.
func ServiceObjective(svc *campaign.Service, spec cluster.Spec, es runtime.EnsembleSpec, opts runtime.SimOptions, stage indicators.StageSet) Objective {
	return func(p placement.Placement) (float64, error) {
		js, err := campaign.NewJob(spec, p, es, opts)
		if err != nil {
			return 0, err
		}
		j, err := svc.SubmitWait(context.Background(), js, campaign.SubmitOptions{Label: p.Name})
		if err != nil {
			return 0, err
		}
		res, err := j.Wait(context.Background())
		if err != nil {
			return 0, err
		}
		effs, err := Efficiencies(res.Trace)
		if err != nil {
			return 0, err
		}
		return indicators.Objective(p, effs, stage)
	}
}

// ExhaustiveService is the parallel form of Exhaustive: it enumerates the
// same deduplicated candidates in the same order with the same
// "candidate-N" names, fans them all out over the service's worker pool,
// and reduces the results back in enumeration order with the same strict
// better-than rule — so the winning placement, its score, and Evaluated
// are identical to the serial search, only the wall clock differs.
func ExhaustiveService(ctx context.Context, svc *campaign.Service, spec cluster.Spec, es runtime.EnsembleSpec, maxNodes int, opts runtime.SimOptions, stage indicators.StageSet) (Result, error) {
	shape, err := shapeOf(es)
	if err != nil {
		return Result{}, err
	}
	if maxNodes <= 0 || maxNodes > spec.Nodes {
		maxNodes = spec.Nodes
	}

	var cands []fannedCandidate
	enumeratePlacements(spec, shape, maxNodes, func(p placement.Placement) {
		c := fannedCandidate{p: p}
		js, err := campaign.NewJob(spec, p, es, opts)
		if err == nil {
			c.job, err = svc.SubmitWait(ctx, js, campaign.SubmitOptions{Label: p.Name})
		}
		c.err = err
		cands = append(cands, c)
	})

	best := Result{Score: math.Inf(-1)}
	var firstErr error
	for _, c := range cands {
		best.Evaluated++
		score, err := c.score(ctx, stage)
		if err != nil {
			if ctx.Err() != nil {
				return Result{}, ctx.Err()
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if score > best.Score {
			best.Score = score
			best.Placement = c.p
		}
	}
	if math.IsInf(best.Score, -1) {
		if firstErr != nil {
			return Result{}, fmt.Errorf("scheduler: no placement evaluated: %w", firstErr)
		}
		return Result{}, errors.New("scheduler: no valid placement found")
	}
	best.Placement.Name = "exhaustive-best"
	return best, nil
}

// fannedCandidate is one enumerated placement with its in-flight job.
type fannedCandidate struct {
	p   placement.Placement
	job *campaign.Job
	err error
}

// score resolves one fanned-out candidate to its objective value.
func (c *fannedCandidate) score(ctx context.Context, stage indicators.StageSet) (float64, error) {
	if c.err != nil {
		return 0, c.err
	}
	res, err := c.job.Wait(ctx)
	if err != nil {
		return 0, err
	}
	effs, err := Efficiencies(res.Trace)
	if err != nil {
		return 0, err
	}
	return indicators.Objective(c.p, effs, stage)
}

// SearchService runs Search with a service-backed objective: exhaustive
// searches fan out over the worker pool, greedy and annealing searches
// stay sequential (each step depends on the last) but still hit the
// result cache on revisits.
func SearchService(ctx context.Context, strategy Strategy, svc *campaign.Service, spec cluster.Spec, es runtime.EnsembleSpec, maxNodes int, opts runtime.SimOptions, stage indicators.StageSet, mon *Monitor, annealOpts AnnealOptions) (Result, error) {
	if strategy == StrategyExhaustive && mon == nil {
		return ExhaustiveService(ctx, svc, spec, es, maxNodes, opts, stage)
	}
	return Search(strategy, spec, es, maxNodes, ServiceObjective(svc, spec, es, opts, stage), mon, annealOpts)
}
