package sim

import "fmt"

// waiter is a pooled record for a process blocked on a Store: a getter
// waiting to receive a value or a putter carrying one. Records live in a
// per-store free list; the blocking process owns its record and returns
// it to the pool after it resumes (the waker only ever reads or writes
// the record before scheduling the wake, never after).
type waiter[T any] struct {
	proc  *Proc
	value T
}

// waiterQ is a FIFO of waiters. Pops advance a head index instead of
// re-slicing (no backing-array churn), and removal by process — the
// interrupt/Stop path — preserves FIFO order.
type waiterQ[T any] struct {
	buf  []*waiter[T]
	head int
}

func (q *waiterQ[T]) len() int { return len(q.buf) - q.head }

func (q *waiterQ[T]) push(w *waiter[T]) {
	if q.head == len(q.buf) && q.head > 0 {
		q.buf = q.buf[:0]
		q.head = 0
	}
	q.buf = append(q.buf, w)
}

func (q *waiterQ[T]) pop() *waiter[T] {
	w := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return w
}

// removeProc drops the waiter belonging to p, preserving FIFO order, and
// returns it (nil if p is not queued).
func (q *waiterQ[T]) removeProc(p *Proc) *waiter[T] {
	for i := q.head; i < len(q.buf); i++ {
		if q.buf[i].proc == p {
			w := q.buf[i]
			copy(q.buf[i:], q.buf[i+1:])
			q.buf[len(q.buf)-1] = nil
			q.buf = q.buf[:len(q.buf)-1]
			if q.head == len(q.buf) {
				q.buf = q.buf[:0]
				q.head = 0
			}
			return w
		}
	}
	return nil
}

// itemQ is the buffered-item FIFO, with the same head-index pop scheme.
type itemQ[T any] struct {
	buf  []T
	head int
}

func (q *itemQ[T]) len() int { return len(q.buf) - q.head }

func (q *itemQ[T]) push(v T) {
	if q.head == len(q.buf) && q.head > 0 {
		q.buf = q.buf[:0]
		q.head = 0
	}
	q.buf = append(q.buf, v)
}

func (q *itemQ[T]) pop() T {
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return v
}

// Store is a FIFO buffer of items with an optional capacity, analogous to a
// Go channel inside the simulation. A capacity of zero yields rendezvous
// semantics: Put blocks until a Get is waiting and vice versa. This is the
// primitive behind the paper's synchronous, no-buffering staging protocol
// (W_i happens-before R_i happens-before W_{i+1}).
type Store[T any] struct {
	env      *Env
	capacity int // < 0 means unbounded
	items    itemQ[T]
	getters  waiterQ[T]
	putters  waiterQ[T]
	free     []*waiter[T]
	// label, when set via SetLabel, emits a queue-depth event to the
	// environment's recorder whenever the buffered count changes.
	label string
}

// SetLabel names the store for instrumentation: labeled stores sample
// their backlog depth into the recorder on every change, starting with the
// current depth (so stores whose depth never changes — e.g. pure
// rendezvous handoffs — still appear in the timeline).
func (s *Store[T]) SetLabel(label string) {
	s.label = label
	s.record()
}

// record samples the current backlog for labeled stores.
func (s *Store[T]) record() {
	if s.label == "" {
		return
	}
	s.env.rec.QueueDepth(s.label, s.items.len())
}

// NewStore returns a store with the given capacity. capacity == 0 gives a
// rendezvous store; capacity < 0 gives an unbounded store.
func NewStore[T any](env *Env, capacity int) *Store[T] {
	return &Store[T]{env: env, capacity: capacity}
}

// Len returns the number of buffered items.
func (s *Store[T]) Len() int { return s.items.len() }

// newWaiter takes a record from the free list (or allocates one).
func (s *Store[T]) newWaiter(p *Proc, v T) *waiter[T] {
	if n := len(s.free); n > 0 {
		w := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		w.proc = p
		w.value = v
		return w
	}
	return &waiter[T]{proc: p, value: v}
}

func (s *Store[T]) releaseWaiter(w *waiter[T]) {
	var zero T
	w.proc = nil
	w.value = zero
	s.free = append(s.free, w)
}

// Put delivers v into the store, blocking p while the store is full
// (or, for a rendezvous store, until a getter arrives).
func (s *Store[T]) Put(p *Proc, v T) error {
	// Direct handoff to a waiting getter keeps FIFO ordering: a getter only
	// waits when the buffer is empty, so handing to the oldest getter
	// preserves arrival order.
	if s.getters.len() > 0 {
		g := s.getters.pop()
		g.value = v
		s.env.wake(g.proc, nil)
		return nil
	}
	if s.capacity < 0 || s.items.len() < s.capacity {
		s.items.push(v)
		s.record()
		return nil
	}
	w := s.newWaiter(p, v)
	s.putters.push(w)
	err := p.blockOnQueue(s)
	s.releaseWaiter(w)
	return err
}

// Get removes and returns the oldest item, blocking p while the store is
// empty and no putter is waiting.
func (s *Store[T]) Get(p *Proc) (T, error) {
	if s.items.len() > 0 {
		v := s.items.pop()
		s.record()
		s.admitPutter()
		return v, nil
	}
	if s.putters.len() > 0 {
		// Rendezvous (capacity 0): take directly from the oldest putter.
		w := s.putters.pop()
		v := w.value
		s.env.wake(w.proc, nil)
		return v, nil
	}
	var zero T
	g := s.newWaiter(p, zero)
	s.getters.push(g)
	if err := p.blockOnQueue(s); err != nil {
		s.releaseWaiter(g)
		return zero, err
	}
	v := g.value
	s.releaseWaiter(g)
	return v, nil
}

// Offer delivers v without blocking: directly to a waiting getter if any,
// otherwise into free buffer space. It reports whether the item was
// accepted (false when a bounded store is full and nobody is waiting).
// Unlike Put it needs no process, so schedulers and callbacks can use it.
func (s *Store[T]) Offer(v T) bool {
	if s.getters.len() > 0 {
		g := s.getters.pop()
		g.value = v
		s.env.wake(g.proc, nil)
		return true
	}
	if s.capacity < 0 || s.items.len() < s.capacity {
		s.items.push(v)
		s.record()
		return true
	}
	return false
}

// TryGet removes and returns the oldest item without blocking. The boolean
// reports whether an item was available.
func (s *Store[T]) TryGet() (T, bool) {
	if s.items.len() > 0 {
		v := s.items.pop()
		s.record()
		s.admitPutter()
		return v, true
	}
	var zero T
	return zero, false
}

// admitPutter moves a blocked putter's item into freed buffer space.
func (s *Store[T]) admitPutter() {
	if s.putters.len() == 0 {
		return
	}
	if s.capacity == 0 {
		return // rendezvous: putters are only released by a direct Get
	}
	if s.capacity > 0 && s.items.len() >= s.capacity {
		return
	}
	w := s.putters.pop()
	s.items.push(w.value)
	s.record()
	s.env.wake(w.proc, nil)
}

// CancelWait removes p from whichever waiter queue it sits in (interrupt
// and Stop path; see the Waiter interface). The waiter record itself is
// returned to the pool by the blocked caller when it resumes with the
// error.
func (s *Store[T]) CancelWait(p *Proc) {
	if s.getters.removeProc(p) != nil {
		return
	}
	s.putters.removeProc(p)
}

// String describes the store state for debugging.
func (s *Store[T]) String() string {
	return fmt.Sprintf("Store{items=%d getters=%d putters=%d cap=%d}",
		s.items.len(), s.getters.len(), s.putters.len(), s.capacity)
}
