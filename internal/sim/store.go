package sim

import "fmt"

// Store is a FIFO buffer of items with an optional capacity, analogous to a
// Go channel inside the simulation. A capacity of zero yields rendezvous
// semantics: Put blocks until a Get is waiting and vice versa. This is the
// primitive behind the paper's synchronous, no-buffering staging protocol
// (W_i happens-before R_i happens-before W_{i+1}).
type Store[T any] struct {
	env      *Env
	capacity int // < 0 means unbounded
	items    []T
	getters  []*getWaiter[T]
	putters  []*putWaiter[T]
	// label, when set via SetLabel, emits a queue-depth event to the
	// environment's recorder whenever the buffered count changes.
	label string
}

// SetLabel names the store for instrumentation: labeled stores sample
// their backlog depth into the recorder on every change, starting with the
// current depth (so stores whose depth never changes — e.g. pure
// rendezvous handoffs — still appear in the timeline).
func (s *Store[T]) SetLabel(label string) {
	s.label = label
	s.record()
}

// record samples the current backlog for labeled stores.
func (s *Store[T]) record() {
	if s.label == "" {
		return
	}
	s.env.rec.QueueDepth(s.label, len(s.items))
}

type getWaiter[T any] struct {
	proc  *Proc
	value T
}

type putWaiter[T any] struct {
	proc  *Proc
	value T
}

// NewStore returns a store with the given capacity. capacity == 0 gives a
// rendezvous store; capacity < 0 gives an unbounded store.
func NewStore[T any](env *Env, capacity int) *Store[T] {
	return &Store[T]{env: env, capacity: capacity}
}

// Len returns the number of buffered items.
func (s *Store[T]) Len() int { return len(s.items) }

// Put delivers v into the store, blocking p while the store is full
// (or, for a rendezvous store, until a getter arrives).
func (s *Store[T]) Put(p *Proc, v T) error {
	// Direct handoff to a waiting getter keeps FIFO ordering: a getter only
	// waits when the buffer is empty, so handing to the oldest getter
	// preserves arrival order.
	if len(s.getters) > 0 {
		g := s.getters[0]
		s.getters = s.getters[1:]
		g.value = v
		s.env.wake(g.proc, nil)
		return nil
	}
	if s.capacity < 0 || len(s.items) < s.capacity {
		s.items = append(s.items, v)
		s.record()
		return nil
	}
	w := &putWaiter[T]{proc: p, value: v}
	s.putters = append(s.putters, w)
	return p.blockOn(func() { s.removePutter(w) })
}

// Get removes and returns the oldest item, blocking p while the store is
// empty and no putter is waiting.
func (s *Store[T]) Get(p *Proc) (T, error) {
	if len(s.items) > 0 {
		v := s.items[0]
		s.items = s.items[1:]
		s.record()
		s.admitPutter()
		return v, nil
	}
	if len(s.putters) > 0 {
		// Rendezvous (capacity 0): take directly from the oldest putter.
		w := s.putters[0]
		s.putters = s.putters[1:]
		s.env.wake(w.proc, nil)
		return w.value, nil
	}
	g := &getWaiter[T]{proc: p}
	s.getters = append(s.getters, g)
	if err := p.blockOn(func() { s.removeGetter(g) }); err != nil {
		var zero T
		return zero, err
	}
	return g.value, nil
}

// Offer delivers v without blocking: directly to a waiting getter if any,
// otherwise into free buffer space. It reports whether the item was
// accepted (false when a bounded store is full and nobody is waiting).
// Unlike Put it needs no process, so schedulers and callbacks can use it.
func (s *Store[T]) Offer(v T) bool {
	if len(s.getters) > 0 {
		g := s.getters[0]
		s.getters = s.getters[1:]
		g.value = v
		s.env.wake(g.proc, nil)
		return true
	}
	if s.capacity < 0 || len(s.items) < s.capacity {
		s.items = append(s.items, v)
		s.record()
		return true
	}
	return false
}

// TryGet removes and returns the oldest item without blocking. The boolean
// reports whether an item was available.
func (s *Store[T]) TryGet() (T, bool) {
	if len(s.items) > 0 {
		v := s.items[0]
		s.items = s.items[1:]
		s.record()
		s.admitPutter()
		return v, true
	}
	var zero T
	return zero, false
}

// admitPutter moves a blocked putter's item into freed buffer space.
func (s *Store[T]) admitPutter() {
	if len(s.putters) == 0 {
		return
	}
	if s.capacity == 0 {
		return // rendezvous: putters are only released by a direct Get
	}
	if s.capacity > 0 && len(s.items) >= s.capacity {
		return
	}
	w := s.putters[0]
	s.putters = s.putters[1:]
	s.items = append(s.items, w.value)
	s.record()
	s.env.wake(w.proc, nil)
}

func (s *Store[T]) removeGetter(g *getWaiter[T]) {
	for i, q := range s.getters {
		if q == g {
			s.getters = append(s.getters[:i], s.getters[i+1:]...)
			return
		}
	}
}

func (s *Store[T]) removePutter(w *putWaiter[T]) {
	for i, q := range s.putters {
		if q == w {
			s.putters = append(s.putters[:i], s.putters[i+1:]...)
			return
		}
	}
}

// String describes the store state for debugging.
func (s *Store[T]) String() string {
	return fmt.Sprintf("Store{items=%d getters=%d putters=%d cap=%d}",
		len(s.items), len(s.getters), len(s.putters), s.capacity)
}
