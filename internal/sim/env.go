// Package sim implements a deterministic, process-oriented discrete-event
// simulation engine. It plays the role the physical Cray XC40 testbed plays
// in the paper: the ensemble runtime executes simulations and analyses as
// sim processes over a virtual clock, and every hardware effect (compute
// time, staging transfers, contention) is expressed as timed events.
//
// The engine is process-oriented in the style of SimPy: each simulated
// activity is an ordinary Go function running in its own goroutine, blocked
// and resumed by the environment so that exactly one process executes at a
// time. Determinism is guaranteed by a single event queue ordered by
// (time, insertion sequence).
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"strings"

	"ensemblekit/internal/obs"
)

// ErrInterrupted is wrapped into the error returned from a blocking
// primitive when the waiting process is interrupted by another process.
var ErrInterrupted = errors.New("sim: interrupted")

// ErrDeadlock is returned by Run when no scheduled events remain but live
// processes are still blocked on resources.
var ErrDeadlock = errors.New("sim: deadlock")

// ErrStopped is returned from blocking primitives when the environment has
// been stopped while the process was blocked.
var ErrStopped = errors.New("sim: environment stopped")

type event struct {
	t         float64
	seq       int64
	proc      *Proc // process to resume (nil for callback events)
	err       error // error delivered to the resumed process
	fn        func()
	cancelled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (h eventHeap) Peek() *event      { return h[0] }
func (h eventHeap) isEmpty() bool     { return len(h) == 0 }
func (h eventHeap) nextTime() float64 { return h[0].t }

// Env is a discrete-event simulation environment. Create one with NewEnv,
// register processes with Go, then call Run (or RunUntil). Env is not safe
// for concurrent use from multiple user goroutines: all interaction must
// happen either before Run or from within simulated processes/callbacks.
type Env struct {
	now     float64
	queue   eventHeap
	seq     int64
	yieldCh chan struct{}
	live    int // processes started and not yet finished
	blocked []*Proc
	fatal   error
	running bool
	stopped bool
	// dispatched counts events delivered (for engine statistics).
	dispatched int64
	// rec is the optional instrumentation bus. A nil recorder is a valid
	// no-op (every obs.Recorder method nil-checks its receiver), so the
	// engine emits unconditionally.
	rec *obs.Recorder
}

// SetRecorder attaches an instrumentation recorder to the environment.
// The engine and the primitives built on it (Semaphore, Store, the
// network fabric) emit lifecycle, queue-depth, and transfer events to it.
// A nil recorder (the default) disables instrumentation at the cost of a
// single branch per emission site; attaching or detaching a recorder
// never changes event ordering, so simulation results are bit-identical
// either way.
func (e *Env) SetRecorder(r *obs.Recorder) {
	e.rec = r
	r.SetClock(e.Now)
}

// Recorder returns the attached recorder (nil when instrumentation is
// off). Components layered over the engine (DTL tiers, the fabric) reach
// the bus through this accessor.
func (e *Env) Recorder() *obs.Recorder { return e.rec }

// Stats reports engine counters: events dispatched and processes started
// minus finished (live).
type Stats struct {
	EventsDispatched int64
	LiveProcesses    int
}

// Stats returns the engine's counters.
func (e *Env) Stats() Stats {
	return Stats{EventsDispatched: e.dispatched, LiveProcesses: e.live}
}

// NewEnv returns an environment with the clock at zero.
func NewEnv() *Env {
	return &Env{yieldCh: make(chan struct{})}
}

// NewInstrumentedEnv returns an environment with a fresh recorder bound to
// its clock, ready for exporting (obs.WriteChromeTrace) after the run.
func NewInstrumentedEnv() (*Env, *obs.Recorder) {
	e := NewEnv()
	r := obs.NewRecorder(e.Now)
	e.rec = r
	return e, r
}

// Now returns the current simulated time in seconds.
func (e *Env) Now() float64 { return e.now }

// schedule inserts an event and returns it (so the caller may cancel it).
func (e *Env) schedule(t float64, ev *event) *event {
	if t < e.now {
		t = e.now
	}
	ev.t = t
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// At schedules fn to run at absolute simulated time t (clamped to now).
// Callbacks run on the scheduler goroutine; they may schedule further events
// and wake processes but must not block.
func (e *Env) At(t float64, fn func()) {
	e.schedule(t, &event{fn: fn})
}

// After schedules fn to run d seconds from now.
func (e *Env) After(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// AtCancelable schedules fn at absolute time t and returns a cancel
// function. Cancelling after the callback has fired is a no-op.
func (e *Env) AtCancelable(t float64, fn func()) (cancel func()) {
	ev := e.schedule(t, &event{fn: fn})
	return func() { ev.cancelled = true }
}

// Go starts a new simulated process executing fn. The process begins at the
// current simulated time, after already-scheduled events at this time.
// The returned Proc may be used to interrupt the process.
func (e *Env) Go(name string, fn func(p *Proc) error) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan procResume)}
	e.live++
	e.rec.ProcStart(name, obs.NoNode)
	go func() {
		r := <-p.resume // wait for the scheduler to start us
		if r.err == nil {
			func() {
				defer func() {
					if rec := recover(); rec != nil {
						p.env.fatal = fmt.Errorf("sim: process %q panicked: %v", p.name, rec)
					}
				}()
				p.err = fn(p)
			}()
		} else {
			p.err = r.err
		}
		// The scheduler goroutine is parked on yieldCh until this send, so
		// the emission below cannot race with scheduler-side emissions.
		e.rec.ProcEnd(p.name, obs.NoNode)
		p.done = true
		e.live--
		e.yieldCh <- struct{}{}
	}()
	e.schedule(e.now, &event{proc: p})
	return p
}

// wake schedules p to resume at the current time with the given error.
func (e *Env) wake(p *Proc, err error) {
	e.schedule(e.now, &event{proc: p, err: err})
}

// step dispatches a single event. It reports whether an event was
// dispatched.
func (e *Env) step() bool {
	for !e.queue.isEmpty() {
		ev := heap.Pop(&e.queue).(*event)
		if ev.cancelled {
			continue
		}
		e.now = ev.t
		e.dispatched++
		if ev.fn != nil {
			ev.fn()
			return true
		}
		p := ev.proc
		if p.done {
			continue
		}
		p.blocking = nil
		e.unblock(p)
		p.resume <- procResume{err: ev.err}
		<-e.yieldCh
		return true
	}
	return false
}

func (e *Env) block(p *Proc) { e.blocked = append(e.blocked, p) }
func (e *Env) unblock(p *Proc) {
	for i, q := range e.blocked {
		if q == p {
			e.blocked = append(e.blocked[:i], e.blocked[i+1:]...)
			return
		}
	}
}

// Run executes events until the queue drains. It returns nil on a clean
// completion, ErrDeadlock (wrapped, with the names of blocked processes) if
// live processes remain blocked with no pending events, or the panic error
// if a process panicked.
func (e *Env) Run() error {
	return e.run(-1)
}

// RunUntil executes events with timestamps <= t, then stops. The clock is
// left at the time of the last dispatched event (or t if nothing ran after
// it). Deadlock is only reported if the queue drains before t.
func (e *Env) RunUntil(t float64) error {
	return e.run(t)
}

func (e *Env) run(until float64) error {
	if e.running {
		return errors.New("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for {
		if e.fatal != nil {
			e.drain()
			return e.fatal
		}
		if e.queue.isEmpty() {
			break
		}
		if until >= 0 && e.queue.nextTime() > until {
			e.now = until
			return nil
		}
		if !e.step() {
			break
		}
	}
	if e.fatal != nil {
		e.drain()
		return e.fatal
	}
	// Deadlock is only meaningful for an unbounded Run: a RunUntil caller
	// may legitimately leave processes blocked and deliver input (or Stop)
	// afterwards.
	if until < 0 && e.live > 0 {
		return fmt.Errorf("%w: %d process(es) blocked: %s", ErrDeadlock, e.live, e.blockedNames())
	}
	if until >= 0 && e.now < until {
		e.now = until
	}
	return nil
}

// Stop aborts all blocked processes with ErrStopped and drains the event
// queue. It is intended for tearing down a simulation after RunUntil.
// Stop must be called from outside Run (i.e., not from a process).
func (e *Env) Stop() {
	e.stopped = true
	// Cancel every pending event so no process resumes normally.
	for _, ev := range e.queue {
		ev.cancelled = true
	}
	// Wake blocked processes with ErrStopped, one at a time.
	for len(e.blocked) > 0 {
		p := e.blocked[0]
		e.blocked = e.blocked[1:]
		if p.done {
			continue
		}
		if p.blocking != nil {
			p.blocking()
			p.blocking = nil
		}
		p.resume <- procResume{err: ErrStopped}
		<-e.yieldCh
	}
	e.drain()
}

func (e *Env) drain() {
	for !e.queue.isEmpty() {
		heap.Pop(&e.queue)
	}
}

func (e *Env) blockedNames() string {
	names := make([]string, 0, len(e.blocked))
	for _, p := range e.blocked {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
