// Package sim implements a deterministic, process-oriented discrete-event
// simulation engine. It plays the role the physical Cray XC40 testbed plays
// in the paper: the ensemble runtime executes simulations and analyses as
// sim processes over a virtual clock, and every hardware effect (compute
// time, staging transfers, contention) is expressed as timed events.
//
// The engine is process-oriented in the style of SimPy: each simulated
// activity is an ordinary Go function running in its own goroutine, blocked
// and resumed by the environment so that exactly one process executes at a
// time. Determinism is guaranteed by a single event queue ordered by
// (time, insertion sequence).
//
// # Scheduling internals
//
// There is no dedicated scheduler goroutine. The dispatch loop runs on
// whichever goroutine is relinquishing control — the Run caller starting
// the simulation, a process entering a blocking primitive, or a process
// whose function just returned. Timer callbacks (At/After) execute inline
// on that goroutine with zero crossings, and resuming a process is a
// single buffered-channel send straight from the yielding goroutine to
// the resumed one: one goroutine crossing per event instead of the two a
// central scheduler pays (scheduler->process, process->scheduler). Event
// structs are pooled in a per-environment free list (generation counters
// keep stale cancel handles harmless), cancelled events are deleted
// lazily (skipped at pop, compacted in bulk when they dominate the
// queue), and the blocked-process registry supports O(1) removal via an
// index stored on each Proc. None of this changes event ordering: the
// queue is still a single binary heap keyed by (time, sequence), so
// simulated timestamps and the obs event stream are bit-identical to the
// central-scheduler implementation (pinned by the golden determinism
// tests at the repository root).
package sim

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"ensemblekit/internal/obs"
)

// ErrInterrupted is wrapped into the error returned from a blocking
// primitive when the waiting process is interrupted by another process.
var ErrInterrupted = errors.New("sim: interrupted")

// ErrDeadlock is returned by Run when no scheduled events remain but live
// processes are still blocked on resources.
var ErrDeadlock = errors.New("sim: deadlock")

// ErrStopped is returned from blocking primitives when the environment has
// been stopped while the process was blocked.
var ErrStopped = errors.New("sim: environment stopped")

// event is one scheduled occurrence: either a process resume (proc set)
// or a callback (fn set). Events are pooled: gen increments every time an
// event returns to the free list, so a cancel handle captured before the
// recycle can recognize that its event already fired.
type event struct {
	t         float64
	seq       int64
	proc      *Proc // process to resume (nil for callback events)
	err       error // error delivered to the resumed process
	fn        func()
	cancelled bool
	inNow     bool // true while the event sits in nowQ, not the heap
	gen       uint64
}

// Env is a discrete-event simulation environment. Create one with NewEnv,
// register processes with Go, then call Run (or RunUntil). Env is not safe
// for concurrent use from multiple user goroutines: all interaction must
// happen either before Run or from within simulated processes/callbacks.
type Env struct {
	now float64
	// queue is a binary min-heap ordered by (t, seq). The heap is
	// maintained by hand (siftUp/siftDown below) rather than through
	// container/heap: the hot path dispatches millions of events and the
	// interface indirection is measurable.
	queue []*event
	// nowQ holds events scheduled at the current instant (wakes, process
	// starts, same-time callbacks — the majority of all events) as a
	// plain FIFO, skipping the heap entirely. This preserves exact
	// (t, seq) order: an event lands in nowQ only when scheduled at
	// t <= now, so its seq is strictly greater than that of every heap
	// event with t == now (those were inserted before the clock reached
	// t), and nowQ itself is appended in seq order. Dispatch therefore
	// drains heap events at the current time first, then nowQ in order,
	// before advancing the clock.
	nowQ    []*event
	nowHead int
	seq     int64
	// free is the event free list; dispatched and compacted events return
	// here and schedule reuses them.
	free []*event
	// cancelledCount tracks cancelled events still sitting in the queue;
	// when they outnumber the live ones the queue is compacted in one
	// O(n) pass instead of popping through them one heap operation each.
	cancelledCount int
	live           int // processes started and not yet finished
	// blocked registers processes parked in blocking primitives, in block
	// order (Stop wakes them FIFO). Removal tombstones the slot via the
	// index stored on the Proc (O(1)) and compacts when tombstones
	// dominate, preserving order.
	blocked     []*Proc
	blockedDead int
	fatal       error
	cbPanic     any // panic raised by a callback, re-thrown by run
	running     bool
	stopping    bool
	// controlCh returns the control token to the Run/Stop caller when the
	// dispatch loop quiesces (queue empty, horizon reached, fatal). It is
	// buffered so the sender never blocks on it.
	controlCh chan struct{}
	// until is the dispatch horizon of the active run (< 0: unbounded).
	until float64
	// dispatched counts events delivered (for engine statistics).
	dispatched int64
	// rec is the optional instrumentation bus. A nil recorder is a valid
	// no-op (every obs.Recorder method nil-checks its receiver), so the
	// engine emits unconditionally.
	rec *obs.Recorder
}

// SetRecorder attaches an instrumentation recorder to the environment.
// The engine and the primitives built on it (Semaphore, Store, the
// network fabric) emit lifecycle, queue-depth, and transfer events to it.
// A nil recorder (the default) disables instrumentation at the cost of a
// single branch per emission site; attaching or detaching a recorder
// never changes event ordering, so simulation results are bit-identical
// either way.
func (e *Env) SetRecorder(r *obs.Recorder) {
	e.rec = r
	r.SetClock(e.Now)
}

// Recorder returns the attached recorder (nil when instrumentation is
// off). Components layered over the engine (DTL tiers, the fabric) reach
// the bus through this accessor.
func (e *Env) Recorder() *obs.Recorder { return e.rec }

// Stats reports engine counters: events dispatched and processes started
// minus finished (live).
type Stats struct {
	EventsDispatched int64
	LiveProcesses    int
}

// Stats returns the engine's counters.
func (e *Env) Stats() Stats {
	return Stats{EventsDispatched: e.dispatched, LiveProcesses: e.live}
}

// NewEnv returns an environment with the clock at zero.
func NewEnv() *Env {
	return &Env{controlCh: make(chan struct{}, 1), until: -1}
}

// NewInstrumentedEnv returns an environment with a fresh recorder bound to
// its clock, ready for exporting (obs.WriteChromeTrace) after the run.
func NewInstrumentedEnv() (*Env, *obs.Recorder) {
	e := NewEnv()
	r := obs.NewRecorder(e.Now)
	e.rec = r
	return e, r
}

// Now returns the current simulated time in seconds.
func (e *Env) Now() float64 { return e.now }

// less orders events by (time, insertion sequence); seq is unique so the
// order is total and replays identically.
func eventLess(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// newEvent takes an event from the free list (or allocates one).
func (e *Env) newEvent() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// release returns an event to the free list, bumping its generation so
// stale cancel handles become no-ops.
func (e *Env) release(ev *event) {
	ev.gen++
	ev.proc = nil
	ev.err = nil
	ev.fn = nil
	ev.cancelled = false
	ev.inNow = false
	e.free = append(e.free, ev)
}

// schedule inserts an event and returns it (so the caller may cancel it).
// Events at the current instant go to the nowQ FIFO; only genuinely
// future events pay for heap insertion.
func (e *Env) schedule(t float64, proc *Proc, err error, fn func()) *event {
	if t < e.now {
		t = e.now
	}
	ev := e.newEvent()
	ev.t = t
	ev.seq = e.seq
	e.seq++
	ev.proc = proc
	ev.err = err
	ev.fn = fn
	if t <= e.now {
		ev.inNow = true
		if e.nowHead == len(e.nowQ) && e.nowHead > 0 {
			e.nowQ = e.nowQ[:0]
			e.nowHead = 0
		}
		e.nowQ = append(e.nowQ, ev)
	} else {
		e.heapPush(ev)
	}
	return ev
}

// cancelEvent marks an event dead. The slot is reclaimed lazily: the
// dispatch loop skips cancelled events as they surface, and when
// cancelled events outnumber live ones in the heap the whole heap is
// compacted in one pass. nowQ events are merely flagged (the FIFO drains
// within the current instant anyway).
func (e *Env) cancelEvent(ev *event) {
	if ev.cancelled {
		return
	}
	ev.cancelled = true
	if ev.inNow {
		return
	}
	e.cancelledCount++
	if e.cancelledCount > 64 && e.cancelledCount*2 > len(e.queue) {
		e.compactQueue()
	}
}

// compactQueue drops every cancelled event and re-heapifies. Heapify
// preserves the total (t, seq) order of the survivors, so dispatch order
// is unchanged.
func (e *Env) compactQueue() {
	old := e.queue
	live := old[:0]
	for _, ev := range old {
		if ev.cancelled {
			e.release(ev)
		} else {
			live = append(live, ev)
		}
	}
	for i := len(live); i < len(old); i++ {
		old[i] = nil
	}
	e.queue = live
	e.cancelledCount = 0
	for i := len(live)/2 - 1; i >= 0; i-- {
		e.siftDown(i)
	}
}

func (e *Env) heapPush(ev *event) {
	e.queue = append(e.queue, ev)
	e.siftUp(len(e.queue) - 1)
}

func (e *Env) heapPop() *event {
	q := e.queue
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	e.queue = q[:n]
	if n > 1 {
		e.siftDown(0)
	}
	return top
}

func (e *Env) siftUp(i int) {
	q := e.queue
	ev := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		pv := q[parent]
		if eventLess(pv, ev) {
			break
		}
		q[i] = pv
		i = parent
	}
	q[i] = ev
}

func (e *Env) siftDown(i int) {
	q := e.queue
	n := len(q)
	ev := q[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m, mv := l, q[l]
		if r := l + 1; r < n && eventLess(q[r], mv) {
			m, mv = r, q[r]
		}
		if eventLess(ev, mv) {
			break
		}
		q[i] = mv
		i = m
	}
	q[i] = ev
}

// At schedules fn to run at absolute simulated time t (clamped to now).
// Callbacks run inline on the dispatching goroutine; they may schedule
// further events and wake processes but must not block.
func (e *Env) At(t float64, fn func()) {
	e.schedule(t, nil, nil, fn)
}

// After schedules fn to run d seconds from now.
func (e *Env) After(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// AtCancelable schedules fn at absolute time t and returns a cancel
// function. Cancelling after the callback has fired is a no-op (the
// generation check recognizes a recycled event).
func (e *Env) AtCancelable(t float64, fn func()) (cancel func()) {
	ev := e.schedule(t, nil, nil, fn)
	g := ev.gen
	return func() {
		if ev.gen == g {
			e.cancelEvent(ev)
		}
	}
}

// Timer is a cancellable handle to a scheduled callback — the
// allocation-free alternative to AtCancelable (a value, not a closure).
// The zero Timer is valid and cancels nothing.
type Timer struct {
	env *Env
	ev  *event
	gen uint64
}

// AtTimer schedules fn at absolute time t (clamped to now) and returns a
// cancellable handle.
func (e *Env) AtTimer(t float64, fn func()) Timer {
	ev := e.schedule(t, nil, nil, fn)
	return Timer{env: e, ev: ev, gen: ev.gen}
}

// Cancel revokes the timer if it has not fired. Cancelling a fired (or
// zero) timer is a no-op: firing recycles the event and bumps its
// generation, so the handle no longer matches.
func (tm Timer) Cancel() {
	if tm.ev != nil && tm.ev.gen == tm.gen {
		tm.env.cancelEvent(tm.ev)
	}
}

// Go starts a new simulated process executing fn. The process begins at the
// current simulated time, after already-scheduled events at this time.
// The returned Proc may be used to interrupt the process.
func (e *Env) Go(name string, fn func(p *Proc) error) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan procResume, 1), blockedIdx: -1}
	e.live++
	e.rec.ProcStart(name, obs.NoNode)
	go func() {
		r := <-p.resume // wait for the dispatch loop to start us
		if r.err == nil {
			func() {
				defer func() {
					if rec := recover(); rec != nil {
						p.env.fatal = fmt.Errorf("sim: process %q panicked: %v", p.name, rec)
					}
				}()
				p.err = fn(p)
			}()
		} else {
			p.err = r.err
		}
		// This goroutine holds the control token until dispatch hands it
		// off, so the emission below cannot race with other emissions.
		e.rec.ProcEnd(p.name, obs.NoNode)
		p.done = true
		e.live--
		e.dispatch()
	}()
	e.schedule(e.now, p, nil, nil)
	return p
}

// wake schedules p to resume at the current time with the given error.
func (e *Env) wake(p *Proc, err error) {
	e.schedule(e.now, p, err, nil)
}

// dispatch runs the scheduler loop on the calling goroutine until either
// control is handed to a process (a single channel send — the resumed
// process continues the loop when it next yields) or the run quiesces, in
// which case the control token is returned to the Run/Stop caller parked
// on controlCh. Callback events execute inline with no crossing at all.
func (e *Env) dispatch() {
	if e.until >= 0 && e.now > e.until {
		// Horizon already passed: even events at the current instant must
		// stay queued for a later run.
		e.controlCh <- struct{}{}
		return
	}
	for e.fatal == nil && e.cbPanic == nil && !e.stopping {
		// Lazy deletion: cancelled events are dropped when they surface.
		for len(e.queue) > 0 && e.queue[0].cancelled {
			e.cancelledCount--
			e.release(e.heapPop())
		}
		var ev *event
		if len(e.queue) > 0 && e.queue[0].t <= e.now {
			// A heap event at the current instant was inserted before the
			// clock reached this time, so its seq precedes everything in
			// nowQ: it dispatches first.
			ev = e.heapPop()
		} else {
			for e.nowHead < len(e.nowQ) {
				cand := e.nowQ[e.nowHead]
				e.nowQ[e.nowHead] = nil
				e.nowHead++
				if cand.cancelled {
					e.release(cand)
					continue
				}
				ev = cand
				break
			}
			if ev == nil {
				e.nowQ = e.nowQ[:0]
				e.nowHead = 0
				if len(e.queue) == 0 || (e.until >= 0 && e.queue[0].t > e.until) {
					break
				}
				ev = e.heapPop()
			}
		}
		e.now = ev.t
		e.dispatched++
		if ev.fn != nil {
			fn := ev.fn
			e.release(ev)
			e.runCallback(fn)
			continue
		}
		p := ev.proc
		errv := ev.err
		if p.pending == ev {
			p.pending = nil
		}
		e.release(ev)
		if p.done {
			continue
		}
		p.blocking = nil
		p.blockingQ = nil
		e.unblock(p)
		p.resume <- procResume{err: errv}
		return
	}
	// No dispatchable work: hand the control token back to Run/Stop.
	e.controlCh <- struct{}{}
}

// runCallback executes a callback event, converting a panic into a
// deferred re-panic out of Run (the dispatching goroutine may be a
// process goroutine, which must not crash the program directly).
func (e *Env) runCallback(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			e.cbPanic = r
		}
	}()
	fn()
}

// block registers p as parked in a blocking primitive.
func (e *Env) block(p *Proc) {
	p.blockedIdx = len(e.blocked)
	e.blocked = append(e.blocked, p)
}

// unblock removes p from the blocked registry in O(1) by tombstoning the
// slot recorded on the Proc; tombstones are compacted (order-preserving)
// when they dominate the registry.
func (e *Env) unblock(p *Proc) {
	i := p.blockedIdx
	if i < 0 || i >= len(e.blocked) || e.blocked[i] != p {
		return
	}
	e.blocked[i] = nil
	p.blockedIdx = -1
	e.blockedDead++
	if e.blockedDead > 32 && e.blockedDead*2 > len(e.blocked) {
		e.compactBlocked()
	}
}

func (e *Env) compactBlocked() {
	old := e.blocked
	live := old[:0]
	for _, q := range old {
		if q != nil {
			q.blockedIdx = len(live)
			live = append(live, q)
		}
	}
	for i := len(live); i < len(old); i++ {
		old[i] = nil
	}
	e.blocked = live
	e.blockedDead = 0
}

// Run executes events until the queue drains. It returns nil on a clean
// completion, ErrDeadlock (wrapped, with the names of blocked processes) if
// live processes remain blocked with no pending events, or the panic error
// if a process panicked.
func (e *Env) Run() error {
	return e.run(-1)
}

// RunUntil executes events with timestamps <= t, then stops. The clock is
// left at the time of the last dispatched event (or t if nothing ran after
// it). Deadlock is only reported if the queue drains before t.
func (e *Env) RunUntil(t float64) error {
	return e.run(t)
}

func (e *Env) run(until float64) error {
	if e.running {
		return errors.New("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	e.until = until
	e.dispatch()
	<-e.controlCh
	if e.cbPanic != nil {
		p := e.cbPanic
		e.cbPanic = nil
		panic(p)
	}
	if e.fatal != nil {
		e.drain()
		return e.fatal
	}
	// Deadlock is only meaningful for an unbounded Run: a RunUntil caller
	// may legitimately leave processes blocked and deliver input (or Stop)
	// afterwards. blockedNames (which allocates and sorts) is reached only
	// on this error path, never on a healthy run.
	if until < 0 && e.live > 0 {
		return fmt.Errorf("%w: %d process(es) blocked: %s", ErrDeadlock, e.live, e.blockedNames())
	}
	if until >= 0 && e.now < until {
		e.now = until
	}
	return nil
}

// Stop aborts all blocked processes with ErrStopped and drains the event
// queue. It is intended for tearing down a simulation after RunUntil.
// Stop must be called from outside Run (i.e., not from a process).
func (e *Env) Stop() {
	e.stopping = true
	defer func() { e.stopping = false }()
	// Cancel every pending event so no process resumes normally.
	for _, ev := range e.queue {
		if !ev.cancelled {
			ev.cancelled = true
			e.cancelledCount++
		}
	}
	for i := e.nowHead; i < len(e.nowQ); i++ {
		e.nowQ[i].cancelled = true
	}
	// Wake blocked processes with ErrStopped, one at a time, in block
	// order (processes that block again while stopping are re-woken).
	for i := 0; i < len(e.blocked); i++ {
		p := e.blocked[i]
		if p == nil || p.done {
			continue
		}
		e.blocked[i] = nil
		e.blockedDead++
		p.blockedIdx = -1
		if p.blocking != nil {
			p.blocking()
			p.blocking = nil
		}
		if p.blockingQ != nil {
			p.blockingQ.CancelWait(p)
			p.blockingQ = nil
		}
		p.pending = nil // its timer event was cancelled above
		p.resume <- procResume{err: ErrStopped}
		// The woken process runs until it finishes or blocks again; the
		// stopping flag makes its dispatch return the token immediately.
		<-e.controlCh
	}
	e.blocked = e.blocked[:0]
	e.blockedDead = 0
	e.drain()
}

func (e *Env) drain() {
	for _, ev := range e.queue {
		e.release(ev)
	}
	e.queue = e.queue[:0]
	e.cancelledCount = 0
	for i := e.nowHead; i < len(e.nowQ); i++ {
		e.release(e.nowQ[i])
		e.nowQ[i] = nil
	}
	e.nowQ = e.nowQ[:0]
	e.nowHead = 0
}

// Reset returns a quiesced environment to its NewEnv state while keeping
// the event free list and every backing allocation (queue, nowQ, blocked
// registry). It is the arena primitive behind runtime.World's environment
// pool: a campaign reuses one Env per job instead of allocating a fresh
// heap, free list, and channel each time. Reset refuses to run while the
// dispatch loop is active or processes are still live — recycling an
// environment mid-run would corrupt the queue invariants.
func (e *Env) Reset() error {
	if e.running {
		return errors.New("sim: Reset on a running environment")
	}
	if e.live > 0 {
		return fmt.Errorf("sim: Reset with %d live processes", e.live)
	}
	e.drain()
	e.now = 0
	e.seq = 0
	e.dispatched = 0
	e.blocked = e.blocked[:0]
	e.blockedDead = 0
	e.fatal = nil
	e.cbPanic = nil
	e.stopping = false
	e.until = -1
	e.rec = nil
	return nil
}

func (e *Env) blockedNames() string {
	names := make([]string, 0, len(e.blocked))
	for _, p := range e.blocked {
		if p != nil {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
