package sim

import "fmt"

type procResume struct {
	err error
}

// Waiter is implemented by waiter containers (Store, Semaphore, Gate,
// network flows) that park processes. CancelWait must remove p from the
// container's waiter queue and make any pending wake for p a no-op; the
// engine invokes it on interrupt and Stop. Blocking through a Waiter
// instead of a cancel closure keeps the block path allocation-free (a
// closure capturing the waiter record escapes to the heap on every
// call). CancelWait is for blocking-primitive implementations only;
// application code never calls it.
type Waiter interface {
	CancelWait(p *Proc)
}

// Proc is a handle to a simulated process. All blocking methods must be
// called from within the process's own function; Interrupt may be called
// from any process or callback.
type Proc struct {
	env    *Env
	name   string
	resume chan procResume
	done   bool
	err    error

	// pending is the event scheduled to resume this process from a timed
	// wait; it is cancelled on interrupt.
	pending *event
	// blocking, when non-nil, removes the process from whatever waiter
	// queue it sits in (used by interrupts and Stop).
	blocking func()
	// blockingQ is the closure-free form of blocking: the Waiter the
	// process is parked in, if any.
	blockingQ Waiter
	// blockedIdx is this process's slot in Env.blocked (-1 when not
	// blocked), giving O(1) removal on resume.
	blockedIdx int
}

// Name returns the process name given to Env.Go.
func (p *Proc) Name() string { return p.name }

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current simulated time.
func (p *Proc) Now() float64 { return p.env.now }

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// Err returns the error the process function returned (valid once Done).
func (p *Proc) Err() error { return p.err }

// yield hands control back to the engine and blocks until resumed. The
// calling goroutine itself runs the dispatch loop until it can hand
// control to the next process (or to the Run caller), so a resume costs
// one goroutine crossing, not two.
// It returns the error delivered with the resume (nil for normal wakeups).
func (p *Proc) yield() error {
	p.env.dispatch()
	r := <-p.resume
	return r.err
}

// Wait suspends the process for d seconds of simulated time. Negative
// durations are treated as zero. It returns a non-nil error if the process
// was interrupted while waiting.
func (p *Proc) Wait(d float64) error {
	if d < 0 {
		d = 0
	}
	return p.WaitUntil(p.env.now + d)
}

// WaitUntil suspends the process until absolute simulated time t
// (clamped to now).
func (p *Proc) WaitUntil(t float64) error {
	ev := p.env.schedule(t, p, nil, nil)
	p.pending = ev
	p.env.block(p)
	err := p.yield()
	p.pending = nil
	return err
}

// Interrupt wakes the target process with an error wrapping ErrInterrupted
// and the given reason. If the target is not currently blocked (or already
// done) the interrupt is a no-op. Interrupt must be called from another
// process or a callback, never from the target itself.
func (p *Proc) Interrupt(reason string) {
	if p.done {
		return
	}
	interrupted := false
	if p.pending != nil {
		p.env.cancelEvent(p.pending)
		p.pending = nil
		interrupted = true
	}
	if p.blocking != nil {
		p.blocking()
		p.blocking = nil
		interrupted = true
	}
	if p.blockingQ != nil {
		p.blockingQ.CancelWait(p)
		p.blockingQ = nil
		interrupted = true
	}
	if !interrupted {
		return
	}
	p.env.wake(p, fmt.Errorf("%w: %s", ErrInterrupted, reason))
}

// Park blocks the process until another party calls Unpark (from a
// callback or another process). onCancel is invoked if the process is
// interrupted or the environment is stopped while parked; it must make any
// pending Unpark a no-op (e.g., by flagging the waiting record as dead) so
// the process is not woken twice.
func (p *Proc) Park(onCancel func()) error { return p.blockOn(onCancel) }

// ParkOn is the closure-free variant of Park: q.CancelWait(p) plays the
// role of onCancel.
func (p *Proc) ParkOn(q Waiter) error { return p.blockOnQueue(q) }

// Unpark wakes a process parked with Park. Calling Unpark for a process
// that is not parked corrupts the scheduler; callers must guard with their
// own bookkeeping (see Park's onCancel contract).
func (p *Proc) Unpark() { p.env.wake(p, nil) }

// blockOn registers the process as blocked on an external waiter queue.
// cancel must remove the process from that queue; it is invoked if the
// process is interrupted or the environment is stopped.
func (p *Proc) blockOn(cancel func()) error {
	p.blocking = cancel
	p.env.block(p)
	err := p.yield()
	p.blocking = nil
	return err
}

// blockOnQueue is blockOn without the closure allocation: cancellation
// goes through the Waiter interface.
func (p *Proc) blockOnQueue(q Waiter) error {
	p.blockingQ = q
	p.env.block(p)
	err := p.yield()
	p.blockingQ = nil
	return err
}
