package sim

import (
	"errors"
	"math/rand"
	"testing"
)

func TestWaitAdvancesClock(t *testing.T) {
	env := NewEnv()
	var at1, at2 float64
	env.Go("a", func(p *Proc) error {
		if err := p.Wait(1.5); err != nil {
			return err
		}
		at1 = p.Now()
		if err := p.Wait(2.5); err != nil {
			return err
		}
		at2 = p.Now()
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if at1 != 1.5 || at2 != 4.0 {
		t.Errorf("wait times = %v, %v; want 1.5, 4.0", at1, at2)
	}
	if env.Now() != 4.0 {
		t.Errorf("final clock = %v, want 4.0", env.Now())
	}
}

func TestNegativeWaitIsZero(t *testing.T) {
	env := NewEnv()
	env.Go("a", func(p *Proc) error { return p.Wait(-3) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Now() != 0 {
		t.Errorf("clock = %v, want 0", env.Now())
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	// Two processes scheduled at identical times must always run in
	// creation order (FIFO tie-breaking by sequence number).
	run := func() []string {
		env := NewEnv()
		var order []string
		for _, name := range []string{"p1", "p2", "p3"} {
			name := name
			env.Go(name, func(p *Proc) error {
				for i := 0; i < 3; i++ {
					order = append(order, name)
					if err := p.Wait(1); err != nil {
						return err
					}
				}
				return nil
			})
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	for trial := 0; trial < 10; trial++ {
		if got := run(); len(got) != len(first) {
			t.Fatalf("trial %d: different lengths", trial)
		} else {
			for i := range got {
				if got[i] != first[i] {
					t.Fatalf("trial %d: nondeterministic order %v vs %v", trial, got, first)
				}
			}
		}
	}
	want := []string{"p1", "p2", "p3", "p1", "p2", "p3", "p1", "p2", "p3"}
	for i, w := range want {
		if first[i] != w {
			t.Fatalf("order = %v, want %v", first, want)
		}
	}
}

func TestCallbacks(t *testing.T) {
	env := NewEnv()
	var times []float64
	env.At(2, func() { times = append(times, env.Now()) })
	env.After(1, func() { times = append(times, env.Now()) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Errorf("callback times = %v, want [1 2]", times)
	}
}

func TestRunUntil(t *testing.T) {
	env := NewEnv()
	ticks := 0
	env.Go("ticker", func(p *Proc) error {
		for {
			if err := p.Wait(1); err != nil {
				return nil
			}
			ticks++
		}
	})
	if err := env.RunUntil(5.5); err != nil {
		t.Fatal(err)
	}
	if ticks != 5 {
		t.Errorf("ticks = %d, want 5", ticks)
	}
	if env.Now() != 5.5 {
		t.Errorf("clock = %v, want 5.5", env.Now())
	}
	env.Stop()
}

func TestDeadlockDetected(t *testing.T) {
	env := NewEnv()
	sem := NewSemaphore(env, 1)
	env.Go("holder", func(p *Proc) error {
		if err := sem.Acquire(p, 1); err != nil {
			return err
		}
		// Never released: the second acquire below deadlocks.
		return sem.Acquire(p, 1)
	})
	err := env.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestProcessPanicIsReported(t *testing.T) {
	env := NewEnv()
	env.Go("bad", func(p *Proc) error {
		panic("boom")
	})
	err := env.Run()
	if err == nil || !contains(err.Error(), "boom") || !contains(err.Error(), "bad") {
		t.Fatalf("err = %v, want panic report naming the process", err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestSemaphoreFIFO(t *testing.T) {
	env := NewEnv()
	sem := NewSemaphore(env, 2)
	var order []string
	worker := func(name string, hold float64) {
		env.Go(name, func(p *Proc) error {
			if err := sem.Acquire(p, 1); err != nil {
				return err
			}
			order = append(order, name+"+")
			if err := p.Wait(hold); err != nil {
				return err
			}
			order = append(order, name+"-")
			sem.Release(1)
			return nil
		})
	}
	worker("a", 2)
	worker("b", 1)
	worker("c", 1) // blocks until b releases at t=1
	worker("d", 1) // blocks until a or c releases
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// At t=2 a's wait-end event (scheduled at t=0) precedes c's (scheduled
	// at t=1), and d's grant wake is scheduled at t=2, hence a-, c-, d+.
	want := []string{"a+", "b+", "b-", "c+", "a-", "c-", "d+", "d-"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if sem.InUse() != 0 {
		t.Errorf("inUse = %d, want 0", sem.InUse())
	}
}

func TestSemaphoreBulkRequestDoesNotStarve(t *testing.T) {
	// FIFO is strict: a queued request for 2 units must be granted before a
	// later request for 1 unit, even if the single unit would fit first.
	env := NewEnv()
	sem := NewSemaphore(env, 2)
	var order []string
	env.Go("hog", func(p *Proc) error {
		if err := sem.Acquire(p, 2); err != nil {
			return err
		}
		if err := p.Wait(1); err != nil {
			return err
		}
		sem.Release(1) // one unit free: not enough for the queued pair
		if err := p.Wait(1); err != nil {
			return err
		}
		sem.Release(1)
		return nil
	})
	env.Go("pair", func(p *Proc) error {
		if err := p.Wait(0.1); err != nil {
			return err
		}
		if err := sem.Acquire(p, 2); err != nil {
			return err
		}
		order = append(order, "pair")
		sem.Release(2)
		return nil
	})
	env.Go("single", func(p *Proc) error {
		if err := p.Wait(0.2); err != nil {
			return err
		}
		if err := sem.Acquire(p, 1); err != nil {
			return err
		}
		order = append(order, "single")
		sem.Release(1)
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "pair" || order[1] != "single" {
		t.Errorf("order = %v, want [pair single]", order)
	}
}

func TestSemaphoreOversizedRequestFails(t *testing.T) {
	env := NewEnv()
	sem := NewSemaphore(env, 2)
	var acqErr error
	env.Go("a", func(p *Proc) error {
		acqErr = sem.Acquire(p, 3)
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if acqErr == nil {
		t.Fatal("acquire beyond capacity should fail")
	}
}

func TestGateBroadcast(t *testing.T) {
	env := NewEnv()
	gate := NewGate(env)
	released := make(map[string]float64)
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		env.Go(name, func(p *Proc) error {
			if err := gate.Wait(p); err != nil {
				return err
			}
			released[name] = p.Now()
			return nil
		})
	}
	env.Go("opener", func(p *Proc) error {
		if err := p.Wait(3); err != nil {
			return err
		}
		gate.Open()
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for name, at := range released {
		if at != 3 {
			t.Errorf("%s released at %v, want 3", name, at)
		}
	}
	if len(released) != 3 {
		t.Errorf("released %d waiters, want 3", len(released))
	}
	// Open gate passes through without blocking.
	env2 := NewEnv()
	g2 := NewGate(env2)
	g2.Open()
	passed := false
	env2.Go("p", func(p *Proc) error {
		if err := g2.Wait(p); err != nil {
			return err
		}
		passed = true
		return nil
	})
	if err := env2.Run(); err != nil {
		t.Fatal(err)
	}
	if !passed {
		t.Error("waiter on open gate should pass immediately")
	}
}

func TestStoreFIFO(t *testing.T) {
	env := NewEnv()
	st := NewStore[int](env, -1)
	var got []int
	env.Go("producer", func(p *Proc) error {
		for i := 1; i <= 5; i++ {
			if err := st.Put(p, i); err != nil {
				return err
			}
			if err := p.Wait(1); err != nil {
				return err
			}
		}
		return nil
	})
	env.Go("consumer", func(p *Proc) error {
		for i := 0; i < 5; i++ {
			v, err := st.Get(p)
			if err != nil {
				return err
			}
			got = append(got, v)
		}
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got = %v, want 1..5 in order", got)
		}
	}
}

func TestStoreRendezvous(t *testing.T) {
	// Capacity 0: the producer cannot run ahead of the consumer — exactly
	// the paper's no-buffering constraint (W_{i+1} waits for R_i).
	env := NewEnv()
	st := NewStore[int](env, 0)
	var putDone, getDone []float64
	env.Go("producer", func(p *Proc) error {
		for i := 0; i < 3; i++ {
			if err := st.Put(p, i); err != nil {
				return err
			}
			putDone = append(putDone, p.Now())
		}
		return nil
	})
	env.Go("consumer", func(p *Proc) error {
		for i := 0; i < 3; i++ {
			if err := p.Wait(2); err != nil {
				return err
			}
			v, err := st.Get(p)
			if err != nil {
				return err
			}
			if v != i {
				t.Errorf("got %d, want %d", v, i)
			}
			getDone = append(getDone, p.Now())
		}
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Every put completes exactly when its get happens: t = 2, 4, 6.
	want := []float64{2, 4, 6}
	for i, w := range want {
		if putDone[i] != w || getDone[i] != w {
			t.Fatalf("putDone=%v getDone=%v, want both %v", putDone, getDone, want)
		}
	}
}

func TestStoreBoundedCapacityBlocksProducer(t *testing.T) {
	env := NewEnv()
	st := NewStore[int](env, 2)
	var putTimes []float64
	env.Go("producer", func(p *Proc) error {
		for i := 0; i < 4; i++ {
			if err := st.Put(p, i); err != nil {
				return err
			}
			putTimes = append(putTimes, p.Now())
		}
		return nil
	})
	env.Go("consumer", func(p *Proc) error {
		for i := 0; i < 4; i++ {
			if err := p.Wait(5); err != nil {
				return err
			}
			if _, err := st.Get(p); err != nil {
				return err
			}
		}
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// First two puts immediate; 3rd waits for first get at t=5; 4th for t=10.
	want := []float64{0, 0, 5, 10}
	for i, w := range want {
		if putTimes[i] != w {
			t.Fatalf("putTimes = %v, want %v", putTimes, want)
		}
	}
}

func TestTryGet(t *testing.T) {
	env := NewEnv()
	st := NewStore[string](env, -1)
	if _, ok := st.TryGet(); ok {
		t.Error("TryGet on empty store should report false")
	}
	env.Go("p", func(p *Proc) error { return st.Put(p, "x") })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	v, ok := st.TryGet()
	if !ok || v != "x" {
		t.Errorf("TryGet = %q, %v; want \"x\", true", v, ok)
	}
}

func TestInterruptTimedWait(t *testing.T) {
	env := NewEnv()
	var waitErr error
	target := env.Go("sleeper", func(p *Proc) error {
		waitErr = p.Wait(100)
		return nil
	})
	env.Go("killer", func(p *Proc) error {
		if err := p.Wait(1); err != nil {
			return err
		}
		target.Interrupt("test kill")
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(waitErr, ErrInterrupted) {
		t.Fatalf("waitErr = %v, want ErrInterrupted", waitErr)
	}
	if env.Now() != 1 {
		t.Errorf("clock = %v, want 1 (interrupt should cancel the long wait)", env.Now())
	}
}

func TestInterruptBlockedOnResource(t *testing.T) {
	env := NewEnv()
	sem := NewSemaphore(env, 1)
	var acqErr error
	env.Go("holder", func(p *Proc) error {
		if err := sem.Acquire(p, 1); err != nil {
			return err
		}
		return p.Wait(50)
	})
	blocked := env.Go("blocked", func(p *Proc) error {
		acqErr = sem.Acquire(p, 1)
		return nil
	})
	env.Go("killer", func(p *Proc) error {
		if err := p.Wait(2); err != nil {
			return err
		}
		blocked.Interrupt("giving up")
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(acqErr, ErrInterrupted) {
		t.Fatalf("acqErr = %v, want ErrInterrupted", acqErr)
	}
	// The interrupted waiter must have been removed from the queue:
	// releasing later should not wake a ghost (checked implicitly by clean
	// Run exit with no panic).
}

func TestInterruptDoneProcessIsNoop(t *testing.T) {
	env := NewEnv()
	target := env.Go("quick", func(p *Proc) error { return nil })
	env.Go("late", func(p *Proc) error {
		if err := p.Wait(1); err != nil {
			return err
		}
		target.Interrupt("too late")
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStopReleasesBlockedProcesses(t *testing.T) {
	env := NewEnv()
	st := NewStore[int](env, -1)
	var getErr error
	env.Go("stuck", func(p *Proc) error {
		_, getErr = st.Get(p)
		return nil
	})
	if err := env.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	env.Stop()
	if !errors.Is(getErr, ErrStopped) {
		t.Fatalf("getErr = %v, want ErrStopped", getErr)
	}
}

// Property-style test: random DAGs of waits always preserve a monotone
// non-decreasing clock and run deterministically.
func TestClockMonotonicityRandomized(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		env := NewEnv()
		var last float64
		monotone := true
		n := 5 + rng.Intn(10)
		for i := 0; i < n; i++ {
			waits := make([]float64, 1+rng.Intn(5))
			for j := range waits {
				waits[j] = rng.Float64() * 10
			}
			env.Go("p", func(p *Proc) error {
				for _, w := range waits {
					if err := p.Wait(w); err != nil {
						return err
					}
					if p.Now() < last {
						monotone = false
					}
					last = p.Now()
				}
				return nil
			})
		}
		if err := env.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !monotone {
			t.Fatalf("seed %d: clock went backwards", seed)
		}
	}
}

func TestStoreOffer(t *testing.T) {
	env := NewEnv()
	st := NewStore[int](env, 2)
	if !st.Offer(1) || !st.Offer(2) {
		t.Fatal("offers within capacity should succeed")
	}
	if st.Offer(3) {
		t.Error("offer beyond capacity should fail")
	}
	if st.Len() != 2 {
		t.Errorf("len = %d, want 2", st.Len())
	}
	// Offer hands off directly to a waiting getter.
	env2 := NewEnv()
	st2 := NewStore[int](env2, 0) // rendezvous: buffer capacity is zero
	var got int
	env2.Go("getter", func(p *Proc) error {
		v, err := st2.Get(p)
		got = v
		return err
	})
	env2.Go("offerer", func(p *Proc) error {
		if err := p.Wait(1); err != nil {
			return err
		}
		if !st2.Offer(42) {
			t.Error("offer to a waiting getter should succeed even at capacity 0")
		}
		return nil
	})
	if err := env2.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("got = %d, want 42", got)
	}
	// Offer with no getter on a rendezvous store fails.
	env3 := NewEnv()
	st3 := NewStore[int](env3, 0)
	if st3.Offer(1) {
		t.Error("rendezvous offer without a getter should fail")
	}
}

func TestAtCancelable(t *testing.T) {
	env := NewEnv()
	fired := false
	cancel := env.AtCancelable(5, func() { fired = true })
	cancel()
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled callback fired")
	}
	// Cancel after firing is a no-op.
	env2 := NewEnv()
	count := 0
	var cancel2 func()
	cancel2 = env2.AtCancelable(1, func() { count++ })
	if err := env2.Run(); err != nil {
		t.Fatal(err)
	}
	cancel2()
	if count != 1 {
		t.Errorf("callback ran %d times, want 1", count)
	}
}

func TestRunReentrancyRejected(t *testing.T) {
	env := NewEnv()
	var inner error
	env.At(1, func() { inner = env.RunUntil(5) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if inner == nil {
		t.Error("reentrant Run should be rejected")
	}
}

func TestGateCloseReopens(t *testing.T) {
	env := NewEnv()
	gate := NewGate(env)
	var passedAt []float64
	env.Go("w", func(p *Proc) error {
		for i := 0; i < 2; i++ {
			if err := gate.Wait(p); err != nil {
				return err
			}
			passedAt = append(passedAt, p.Now())
			gate.Close()
		}
		return nil
	})
	env.Go("opener", func(p *Proc) error {
		for _, at := range []float64{1, 3} {
			if err := p.WaitUntil(at); err != nil {
				return err
			}
			gate.Open()
		}
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(passedAt) != 2 || passedAt[0] != 1 || passedAt[1] != 3 {
		t.Errorf("passes at %v, want [1 3]", passedAt)
	}
}

// TestEnvReset pins the arena contract behind runtime.World's environment
// pool: a drained environment resets to a state indistinguishable from a
// fresh NewEnv, and a reset is refused while processes are still live.
func TestEnvReset(t *testing.T) {
	run := func(env *Env) float64 {
		env.Go("a", func(p *Proc) error { return p.Wait(2.5) })
		env.Go("b", func(p *Proc) error { return p.Wait(1.25) })
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return env.Now()
	}
	env := NewEnv()
	first := run(env)
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset after a drained run: %v", err)
	}
	if env.Now() != 0 {
		t.Errorf("clock after Reset = %v, want 0", env.Now())
	}
	if st := env.Stats(); st.EventsDispatched != 0 || st.LiveProcesses != 0 {
		t.Errorf("stats after Reset = %+v, want zero", st)
	}
	if second := run(env); second != first {
		t.Errorf("reused env finished at %v, fresh env at %v", second, first)
	}

	// A live (never-run) process makes the environment unresettable.
	env2 := NewEnv()
	env2.Go("stuck", func(p *Proc) error { return p.Wait(1) })
	if err := env2.Reset(); err == nil {
		t.Error("Reset with a live process succeeded, want error")
	}
}
