package sim

import (
	"fmt"

	"ensemblekit/internal/obs"
)

// Semaphore is a counted resource with FIFO granting. It models pools such
// as cores on a node or slots in a staging area.
type Semaphore struct {
	env      *Env
	capacity int
	inUse    int
	// waiters is a FIFO of (proc, n) records held by value: a record is
	// only read before its process is woken, never after, so no pointer
	// has to be shared with the blocked caller and the queue allocates
	// nothing per wait. Pops advance head instead of re-slicing.
	waiters []semWaiter
	head    int
	// label, when set via SetLabel, turns on instrumentation: acquire,
	// release, and waiter-queue-depth events are emitted to the
	// environment's recorder under this name.
	label string
}

type semWaiter struct {
	proc *Proc
	n    int
}

// NewSemaphore returns a semaphore with the given capacity (must be > 0).
func NewSemaphore(env *Env, capacity int) *Semaphore {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: semaphore capacity must be positive, got %d", capacity))
	}
	return &Semaphore{env: env, capacity: capacity}
}

// Capacity returns the total capacity.
func (s *Semaphore) Capacity() int { return s.capacity }

// InUse returns the number of currently held units.
func (s *Semaphore) InUse() int { return s.inUse }

// SetLabel names the semaphore for instrumentation. Labeled semaphores
// emit resource-acquire/release and queue-depth events to the
// environment's recorder; unlabeled ones stay silent. The current queue
// depth is sampled immediately so the timeline starts at labeling time.
func (s *Semaphore) SetLabel(label string) {
	s.label = label
	s.record(0)
}

// Waiting returns the number of queued waiters.
func (s *Semaphore) Waiting() int { return len(s.waiters) - s.head }

// record emits the current occupancy and queue depth for labeled
// semaphores; delta distinguishes acquires (>0) from releases (<0).
func (s *Semaphore) record(delta int) {
	if s.label == "" {
		return
	}
	if delta > 0 {
		s.env.rec.ResourceAcquire(s.label, obs.NoNode, float64(delta))
	} else if delta < 0 {
		s.env.rec.ResourceRelease(s.label, obs.NoNode, float64(-delta))
	}
	s.env.rec.QueueDepth(s.label+".waiters", len(s.waiters)-s.head)
}

// Acquire blocks p until n units are available, then takes them.
// Requests larger than the capacity fail immediately.
func (s *Semaphore) Acquire(p *Proc, n int) error {
	if n <= 0 {
		return nil
	}
	if n > s.capacity {
		return fmt.Errorf("sim: acquire %d exceeds semaphore capacity %d", n, s.capacity)
	}
	if len(s.waiters) == s.head && s.inUse+n <= s.capacity {
		s.inUse += n
		s.record(n)
		return nil
	}
	if s.head == len(s.waiters) && s.head > 0 {
		s.waiters = s.waiters[:0]
		s.head = 0
	}
	s.waiters = append(s.waiters, semWaiter{proc: p, n: n})
	s.record(0)
	return p.blockOnQueue(s)
}

// Release returns n units to the semaphore and grants queued waiters in
// FIFO order while they fit.
func (s *Semaphore) Release(n int) {
	if n <= 0 {
		return
	}
	s.inUse -= n
	if s.inUse < 0 {
		panic("sim: semaphore over-released")
	}
	s.record(-n)
	s.grant()
}

func (s *Semaphore) grant() {
	for s.head < len(s.waiters) {
		w := s.waiters[s.head]
		if s.inUse+w.n > s.capacity {
			return // strict FIFO: do not skip over the head waiter
		}
		s.waiters[s.head] = semWaiter{}
		s.head++
		if s.head == len(s.waiters) {
			s.waiters = s.waiters[:0]
			s.head = 0
		}
		s.inUse += w.n
		s.record(w.n)
		s.env.wake(w.proc, nil)
	}
}

// CancelWait removes p's record from the waiter queue, preserving FIFO
// order (interrupt and Stop path; see the Waiter interface).
func (s *Semaphore) CancelWait(p *Proc) {
	for i := s.head; i < len(s.waiters); i++ {
		if s.waiters[i].proc == p {
			copy(s.waiters[i:], s.waiters[i+1:])
			s.waiters[len(s.waiters)-1] = semWaiter{}
			s.waiters = s.waiters[:len(s.waiters)-1]
			if s.head == len(s.waiters) {
				s.waiters = s.waiters[:0]
				s.head = 0
			}
			return
		}
	}
}

// Gate is a broadcast condition: processes wait until it is opened.
// Opening wakes all current waiters; a gate may be closed and reopened.
// It models barriers such as "all simulations start simultaneously".
type Gate struct {
	env     *Env
	open    bool
	waiters []*Proc
}

// NewGate returns a closed gate.
func NewGate(env *Env) *Gate { return &Gate{env: env} }

// IsOpen reports whether the gate is currently open.
func (g *Gate) IsOpen() bool { return g.open }

// Wait blocks p until the gate is open. If the gate is already open it
// returns immediately.
func (g *Gate) Wait(p *Proc) error {
	if g.open {
		return nil
	}
	g.waiters = append(g.waiters, p)
	return p.blockOnQueue(g)
}

// Open opens the gate and wakes all waiters.
func (g *Gate) Open() {
	if g.open {
		return
	}
	g.open = true
	for _, p := range g.waiters {
		g.env.wake(p, nil)
	}
	g.waiters = g.waiters[:0]
}

// Close closes the gate so subsequent Wait calls block again.
func (g *Gate) Close() { g.open = false }

// CancelWait removes p from the waiter list (interrupt and Stop path;
// see the Waiter interface).
func (g *Gate) CancelWait(p *Proc) {
	for i, q := range g.waiters {
		if q == p {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			return
		}
	}
}
