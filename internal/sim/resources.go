package sim

import (
	"fmt"

	"ensemblekit/internal/obs"
)

// Semaphore is a counted resource with FIFO granting. It models pools such
// as cores on a node or slots in a staging area.
type Semaphore struct {
	env      *Env
	capacity int
	inUse    int
	waiters  []*semWaiter
	// label, when set via SetLabel, turns on instrumentation: acquire,
	// release, and waiter-queue-depth events are emitted to the
	// environment's recorder under this name.
	label string
}

type semWaiter struct {
	proc *Proc
	n    int
}

// NewSemaphore returns a semaphore with the given capacity (must be > 0).
func NewSemaphore(env *Env, capacity int) *Semaphore {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: semaphore capacity must be positive, got %d", capacity))
	}
	return &Semaphore{env: env, capacity: capacity}
}

// Capacity returns the total capacity.
func (s *Semaphore) Capacity() int { return s.capacity }

// InUse returns the number of currently held units.
func (s *Semaphore) InUse() int { return s.inUse }

// SetLabel names the semaphore for instrumentation. Labeled semaphores
// emit resource-acquire/release and queue-depth events to the
// environment's recorder; unlabeled ones stay silent. The current queue
// depth is sampled immediately so the timeline starts at labeling time.
func (s *Semaphore) SetLabel(label string) {
	s.label = label
	s.record(0)
}

// Waiting returns the number of queued waiters.
func (s *Semaphore) Waiting() int { return len(s.waiters) }

// record emits the current occupancy and queue depth for labeled
// semaphores; delta distinguishes acquires (>0) from releases (<0).
func (s *Semaphore) record(delta int) {
	if s.label == "" {
		return
	}
	if delta > 0 {
		s.env.rec.ResourceAcquire(s.label, obs.NoNode, float64(delta))
	} else if delta < 0 {
		s.env.rec.ResourceRelease(s.label, obs.NoNode, float64(-delta))
	}
	s.env.rec.QueueDepth(s.label+".waiters", len(s.waiters))
}

// Acquire blocks p until n units are available, then takes them.
// Requests larger than the capacity fail immediately.
func (s *Semaphore) Acquire(p *Proc, n int) error {
	if n <= 0 {
		return nil
	}
	if n > s.capacity {
		return fmt.Errorf("sim: acquire %d exceeds semaphore capacity %d", n, s.capacity)
	}
	if len(s.waiters) == 0 && s.inUse+n <= s.capacity {
		s.inUse += n
		s.record(n)
		return nil
	}
	w := &semWaiter{proc: p, n: n}
	s.waiters = append(s.waiters, w)
	s.record(0)
	err := p.blockOn(func() { s.removeWaiter(w) })
	if err != nil {
		return err
	}
	return nil
}

// Release returns n units to the semaphore and grants queued waiters in
// FIFO order while they fit.
func (s *Semaphore) Release(n int) {
	if n <= 0 {
		return
	}
	s.inUse -= n
	if s.inUse < 0 {
		panic("sim: semaphore over-released")
	}
	s.record(-n)
	s.grant()
}

func (s *Semaphore) grant() {
	for len(s.waiters) > 0 {
		w := s.waiters[0]
		if s.inUse+w.n > s.capacity {
			return // strict FIFO: do not skip over the head waiter
		}
		s.waiters = s.waiters[1:]
		s.inUse += w.n
		s.record(w.n)
		s.env.wake(w.proc, nil)
	}
}

func (s *Semaphore) removeWaiter(w *semWaiter) {
	for i, q := range s.waiters {
		if q == w {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}

// Gate is a broadcast condition: processes wait until it is opened.
// Opening wakes all current waiters; a gate may be closed and reopened.
// It models barriers such as "all simulations start simultaneously".
type Gate struct {
	env     *Env
	open    bool
	waiters []*Proc
}

// NewGate returns a closed gate.
func NewGate(env *Env) *Gate { return &Gate{env: env} }

// IsOpen reports whether the gate is currently open.
func (g *Gate) IsOpen() bool { return g.open }

// Wait blocks p until the gate is open. If the gate is already open it
// returns immediately.
func (g *Gate) Wait(p *Proc) error {
	if g.open {
		return nil
	}
	g.waiters = append(g.waiters, p)
	return p.blockOn(func() { g.removeWaiter(p) })
}

// Open opens the gate and wakes all waiters.
func (g *Gate) Open() {
	if g.open {
		return
	}
	g.open = true
	for _, p := range g.waiters {
		g.env.wake(p, nil)
	}
	g.waiters = nil
}

// Close closes the gate so subsequent Wait calls block again.
func (g *Gate) Close() { g.open = false }

func (g *Gate) removeWaiter(p *Proc) {
	for i, q := range g.waiters {
		if q == p {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			return
		}
	}
}
