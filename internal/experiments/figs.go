package experiments

import (
	"fmt"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/core"
	"ensemblekit/internal/heuristic"
	"ensemblekit/internal/kernels"
	"ensemblekit/internal/metrics"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/report"
	"ensemblekit/internal/runtime"
	"ensemblekit/internal/stats"
	"ensemblekit/internal/trace"
)

// Fig3Row is one bar group of Figure 3: a configuration's component-level
// metrics, averaged per component kind over trials.
type Fig3Row struct {
	Config          string
	Kind            string
	ExecutionTime   float64
	LLCMissRatio    float64
	MemoryIntensity float64
	IPC             float64
}

// Fig3 reproduces Figure 3: the Table 1 component-level metrics over every
// Table 2 configuration.
func Fig3(cfg Config) ([]Fig3Row, error) {
	cfg = cfg.Defaults()
	var rows []Fig3Row
	for _, p := range placement.ConfigsTable2() {
		traces, err := runConfig(cfg, p)
		if err != nil {
			return nil, err
		}
		for _, kind := range []trace.Kind{trace.KindSimulation, trace.KindAnalysis} {
			var execT, miss, mi, ipc []float64
			for _, tr := range traces {
				ens, err := metrics.FromTrace(tr)
				if err != nil {
					return nil, err
				}
				s := ens.ByKind(kind)
				execT = append(execT, s.ExecutionTime.Mean)
				miss = append(miss, s.LLCMissRatio.Mean)
				mi = append(mi, s.MemoryIntensity.Mean)
				ipc = append(ipc, s.IPC.Mean)
			}
			rows = append(rows, Fig3Row{
				Config:          p.Name,
				Kind:            kind.String(),
				ExecutionTime:   stats.Mean(execT),
				LLCMissRatio:    stats.Mean(miss),
				MemoryIntensity: stats.Mean(mi),
				IPC:             stats.Mean(ipc),
			})
		}
	}
	return rows, nil
}

// Fig3Table renders Figure 3 data.
func Fig3Table(rows []Fig3Row) *report.Table {
	t := report.NewTable("Figure 3 — component-level metrics (Table 1) per configuration",
		"config", "component", "exec time (s)", "LLC miss ratio", "memory intensity", "IPC")
	for _, r := range rows {
		t.AddRow(r.Config, r.Kind, r.ExecutionTime, r.LLCMissRatio, r.MemoryIntensity, r.IPC)
	}
	return t
}

// Fig4Row is one bar of Figure 4: a member's makespan in a configuration.
type Fig4Row struct {
	Config   string
	Member   int
	Makespan float64
}

// Fig4 reproduces Figure 4: member makespans over the Table 2
// configurations, averaged over trials.
func Fig4(cfg Config) ([]Fig4Row, error) {
	cfg = cfg.Defaults()
	var rows []Fig4Row
	for _, p := range placement.ConfigsTable2() {
		traces, err := runConfig(cfg, p)
		if err != nil {
			return nil, err
		}
		for i := range p.Members {
			var ms []float64
			for _, tr := range traces {
				ms = append(ms, tr.Members[i].Makespan())
			}
			rows = append(rows, Fig4Row{Config: p.Name, Member: i + 1, Makespan: stats.Mean(ms)})
		}
	}
	return rows, nil
}

// Fig4Table renders Figure 4 data.
func Fig4Table(rows []Fig4Row) *report.Table {
	t := report.NewTable("Figure 4 — ensemble member makespan", "config", "member", "makespan (s)")
	for _, r := range rows {
		t.AddRow(r.Config, r.Member, r.Makespan)
	}
	return t
}

// Fig5Row is one bar of Figure 5: a configuration's ensemble makespan.
type Fig5Row struct {
	Config   string
	Makespan float64
}

// Fig5 reproduces Figure 5: the workflow-ensemble makespan per Table 2
// configuration.
func Fig5(cfg Config) ([]Fig5Row, error) {
	cfg = cfg.Defaults()
	var rows []Fig5Row
	for _, p := range placement.ConfigsTable2() {
		traces, err := runConfig(cfg, p)
		if err != nil {
			return nil, err
		}
		var ms []float64
		for _, tr := range traces {
			ms = append(ms, tr.Makespan())
		}
		rows = append(rows, Fig5Row{Config: p.Name, Makespan: stats.Mean(ms)})
	}
	return rows, nil
}

// Fig5Table renders Figure 5 data.
func Fig5Table(rows []Fig5Row) *report.Table {
	t := report.NewTable("Figure 5 — workflow ensemble makespan", "config", "makespan (s)")
	for _, r := range rows {
		t.AddRow(r.Config, r.Makespan)
	}
	return t
}

// Fig6 reproduces the paper's Figure 6 as an executed timeline: one member
// whose simulation is coupled with two analyses, one provisioned so its
// coupling is Idle Simulation (too few cores) and one so it is Idle
// Analyzer (ample cores). It returns the rendered timeline of the first
// few steady steps.
func Fig6(cfg Config) (string, error) {
	cfg = cfg.Defaults()
	if cfg.Nodes < 3 {
		cfg.Nodes = 3
	}
	p := placement.Placement{
		Name: "fig6",
		Members: []placement.Member{{
			Simulation: placement.Component{Nodes: []int{0}, Cores: 16},
			Analyses: []placement.Component{
				{Nodes: []int{1}, Cores: 4},  // slower than the simulation: Idle Simulation
				{Nodes: []int{2}, Cores: 16}, // faster: Idle Analyzer
			},
		}},
	}
	spec := cfg.spec()
	es := runtime.EnsembleSpec{
		Name:  p.Name,
		Steps: 4,
		Members: []runtime.MemberSpec{{
			Sim: kernels.MDProfile(kernels.ReferenceStride),
			Analyses: []cluster.Profile{
				kernels.AnalysisProfile(),
				kernels.AnalysisProfile(),
			},
		}},
	}
	tr, err := cfg.simulate(spec, p, es, runtime.SimOptions{Tier: cfg.Tier})
	if err != nil {
		return "", err
	}
	m := tr.Members[0]
	g := report.NewGantt("Figure 6 — fine-grained stages of one in situ member (S/W sim, R/A analyses, idle blank)", 100)
	glyphs := map[trace.Stage]rune{
		trace.StageS: 'S', trace.StageW: 'W',
		trace.StageR: 'R', trace.StageA: 'A',
	}
	addComponent := func(label string, ct *trace.ComponentTrace) {
		row := g.AddRow(label)
		for _, step := range ct.Steps {
			for _, st := range step.Stages {
				if glyph, ok := glyphs[st.Stage]; ok {
					g.AddSpan(row, st.Start, st.End(), glyph)
				}
			}
		}
	}
	addComponent("simulation", m.Simulation)
	addComponent("analysis 1 (Idle Simulation)", m.Analyses[0])
	addComponent("analysis 2 (Idle Analyzer)", m.Analyses[1])
	// Annotate the observed coupling scenarios.
	ss, err := coreSteady(m)
	if err != nil {
		return "", err
	}
	sc0, _ := ss.CouplingScenario(0)
	sc1, _ := ss.CouplingScenario(1)
	return g.String() + fmt.Sprintf("coupling 1: %v, coupling 2: %v, sigma=%s\n",
		sc0, sc1, report.FormatFloat(ss.Sigma())), nil
}

// Fig7 reproduces Figure 7: the analysis core sweep of Section 3.4.
func Fig7(cfg Config) ([]heuristic.SweepPoint, error) {
	cfg = cfg.Defaults()
	spec := cfg.spec()
	if spec.Nodes < 2 {
		spec.Nodes = 2
	}
	return heuristic.CoreSweep(spec,
		kernels.MDProfile(kernels.ReferenceStride), kernels.AnalysisProfile(),
		heuristic.PaperCoreCounts(),
		heuristic.SweepOptions{
			Steps: minInt(cfg.Steps, 12),
			Sim:   runtime.SimOptions{Tier: cfg.Tier, Jitter: cfg.jitter(), Seed: cfg.BaseSeed},
		})
}

// Fig7Table renders Figure 7 data.
func Fig7Table(points []heuristic.SweepPoint) *report.Table {
	t := report.NewTable("Figure 7 — in situ step vs analysis cores (fixed 16-core simulation)",
		"analysis cores", "S*+W* (s)", "R*+A* (s)", "sigma (s)", "E", "Eq.4")
	for _, p := range points {
		t.AddRow(p.Cores, p.SimBusy, p.AnaBusy, p.Sigma, p.Efficiency, p.SatisfiesEq4)
	}
	return t
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// coreSteady extracts a member's steady state with default options.
func coreSteady(m *trace.MemberTrace) (core.SteadyState, error) {
	return core.FromMemberTrace(m, core.ExtractOptions{})
}
