package experiments

import (
	"fmt"

	"ensemblekit/internal/indicators"
	"ensemblekit/internal/network"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/report"
	"ensemblekit/internal/runtime"
	"ensemblekit/internal/stats"
	"ensemblekit/internal/workload"
)

// ScalingRow is one point of the ensemble-size scaling study.
type ScalingRow struct {
	Members   int
	Placement string // "co-located" or "spread"
	Nodes     int
	Makespan  float64
	F         float64
}

// coLocatedPlacement puts each member (sim + all analyses) on its own
// node.
func coLocatedPlacement(members, analyses int) placement.Placement {
	p := placement.Placement{Name: fmt.Sprintf("colocated-%d", members)}
	for i := 0; i < members; i++ {
		m := placement.Member{
			Simulation: placement.Component{Nodes: []int{i}, Cores: placement.SimCores},
		}
		for j := 0; j < analyses; j++ {
			m.Analyses = append(m.Analyses, placement.Component{
				Nodes: []int{i}, Cores: placement.AnalysisCores,
			})
		}
		p.Members = append(p.Members, m)
	}
	return p
}

// spreadPlacement gives every component a dedicated node.
func spreadPlacement(members, analyses int) placement.Placement {
	p := placement.Placement{Name: fmt.Sprintf("spread-%d", members)}
	node := 0
	for i := 0; i < members; i++ {
		m := placement.Member{
			Simulation: placement.Component{Nodes: []int{node}, Cores: placement.SimCores},
		}
		node++
		for j := 0; j < analyses; j++ {
			m.Analyses = append(m.Analyses, placement.Component{
				Nodes: []int{node}, Cores: placement.AnalysisCores,
			})
			node++
		}
		p.Members = append(p.Members, m)
	}
	return p
}

// ScalingStudy sweeps the ensemble size beyond the paper's two members:
// for N = 1, 2, 4, 8 members it compares full coupling co-location against
// one-component-per-node spreading, reporting makespans and the objective.
// The paper's conclusion — co-location wins, and the indicator says so —
// must hold at every scale.
func ScalingStudy(cfg Config) ([]ScalingRow, error) {
	cfg = cfg.Defaults()
	const analyses = 1
	var rows []ScalingRow
	for _, n := range []int{1, 2, 4, 8} {
		for _, build := range []func(int, int) placement.Placement{coLocatedPlacement, spreadPlacement} {
			p := build(n, analyses)
			c := cfg
			c.Nodes = p.M()
			traces, err := runConfig(c, p)
			if err != nil {
				return nil, err
			}
			var ms []float64
			for _, tr := range traces {
				ms = append(ms, tr.Makespan())
			}
			effs, err := memberEfficiencies(traces)
			if err != nil {
				return nil, err
			}
			f, err := indicators.Objective(p, effs, indicators.StageUAP)
			if err != nil {
				return nil, err
			}
			kind := "co-located"
			if p.M() > n {
				kind = "spread"
			}
			rows = append(rows, ScalingRow{
				Members: n, Placement: kind, Nodes: p.M(),
				Makespan: stats.Mean(ms), F: f,
			})
		}
	}
	return rows, nil
}

// ScalingTable renders the scaling study.
func ScalingTable(rows []ScalingRow) *report.Table {
	t := report.NewTable("Extension — ensemble-size scaling (co-location vs spreading)",
		"members", "placement", "nodes", "makespan (s)", "F(P^{U,A,P})")
	for _, r := range rows {
		t.AddRow(r.Members, r.Placement, r.Nodes, r.Makespan, r.F)
	}
	return t
}

// HeterogeneousRow is one placement of the heterogeneous-ensemble study.
type HeterogeneousRow struct {
	Placement string
	Makespan  float64
	F         float64
}

// HeterogeneousStudy exercises the case the paper's framework supports but
// its experiments never run (Section 3.4's second assumption): members
// with different strides coupled to analyses of different costs (the
// generalized-ensemble preset). It compares full co-location against
// spreading and reports the objective — the indicator must still pick
// co-location without the homogeneity assumption.
func HeterogeneousStudy(cfg Config) ([]HeterogeneousRow, error) {
	cfg = cfg.Defaults()
	const members = 3
	es := workload.GeneralizedEnsemble(members, cfg.Steps)
	configs := []placement.Placement{
		coLocatedPlacement(members, 2),
		spreadPlacement(members, 2),
	}
	var rows []HeterogeneousRow
	for _, p := range configs {
		spec := cfg.spec()
		if p.M() > spec.Nodes {
			spec = clusterSpecWithNodes(spec, p.M())
		}
		var ms []float64
		perMember := make([][]float64, members)
		for t := 0; t < cfg.Trials; t++ {
			tr, err := cfg.simulate(spec, p, es, runtime.SimOptions{
				Tier: cfg.Tier, Jitter: cfg.jitter(), Seed: cfg.BaseSeed + int64(t),
			})
			if err != nil {
				return nil, err
			}
			ms = append(ms, tr.Makespan())
			for i, m := range tr.Members {
				ss, err := coreSteady(m)
				if err != nil {
					return nil, err
				}
				e, err := ss.Efficiency()
				if err != nil {
					return nil, err
				}
				perMember[i] = append(perMember[i], e)
			}
		}
		effs := make([]float64, members)
		for i := range effs {
			effs[i] = stats.Mean(perMember[i])
		}
		f, err := indicators.Objective(p, effs, indicators.StageUAP)
		if err != nil {
			return nil, err
		}
		rows = append(rows, HeterogeneousRow{Placement: p.Name, Makespan: stats.Mean(ms), F: f})
	}
	return rows, nil
}

// HeterogeneousTable renders the heterogeneous-ensemble study.
func HeterogeneousTable(rows []HeterogeneousRow) *report.Table {
	t := report.NewTable("Extension — heterogeneous ensembles (generalized-ensemble workload)",
		"placement", "makespan (s)", "F(P^{U,A,P})")
	for _, r := range rows {
		t.AddRow(r.Placement, r.Makespan, r.F)
	}
	return t
}

// TopologyRow is one point of the dragonfly topology study.
type TopologyRow struct {
	Scenario string
	Makespan float64
	ReadTime float64 // steady-state R of member 1's analysis
}

// TopologyStudy quantifies the dragonfly interconnect model: the spread
// C_f member with producer and consumer in the same group, in different
// groups over a healthy global link, and in different groups over a
// starved global link. Remote staging cost — and with it the in situ
// step — degrades as the path crosses slower global links, which is why
// placement within the allocation matters beyond node counts.
func TopologyStudy(cfg Config) ([]TopologyRow, error) {
	cfg = cfg.Defaults()
	scenarios := []struct {
		name string
		topo *network.Dragonfly
	}{
		{"flat fabric", nil},
		{"same group", &network.Dragonfly{GroupSize: 2, GlobalBandwidth: 1e9, GlobalLatency: 5e-3}},
		{"cross group", &network.Dragonfly{GroupSize: 1, GlobalBandwidth: 1e9, GlobalLatency: 5e-3}},
		{"cross group, starved link", &network.Dragonfly{GroupSize: 1, GlobalBandwidth: 0.25e9, GlobalLatency: 5e-3}},
	}
	p := placement.Cf()
	es := runtime.SpecForPlacement(p, cfg.Steps)
	spec := cfg.spec()
	var rows []TopologyRow
	for _, sc := range scenarios {
		var ms, reads []float64
		for t := 0; t < cfg.Trials; t++ {
			tr, err := cfg.simulate(spec, p, es, runtime.SimOptions{
				Tier: cfg.Tier, Jitter: cfg.jitter(), Seed: cfg.BaseSeed + int64(t),
				Topology: sc.topo,
			})
			if err != nil {
				return nil, err
			}
			ms = append(ms, tr.Makespan())
			ss, err := coreSteady(tr.Members[0])
			if err != nil {
				return nil, err
			}
			reads = append(reads, ss.Couplings[0].R)
		}
		rows = append(rows, TopologyRow{
			Scenario: sc.name,
			Makespan: stats.Mean(ms),
			ReadTime: stats.Mean(reads),
		})
	}
	return rows, nil
}

// TopologyTable renders the topology study.
func TopologyTable(rows []TopologyRow) *report.Table {
	t := report.NewTable("Extension — dragonfly topology (C_f with varying producer-consumer paths)",
		"scenario", "makespan (s)", "steady R (s)")
	for _, r := range rows {
		t.AddRow(r.Scenario, r.Makespan, r.ReadTime)
	}
	return t
}

// SocketRow is one point of the socket-fidelity study.
type SocketRow struct {
	Config       string
	FlatMakespan float64
	SocketAware  float64
	Delta        float64 // (flat - socket) / flat
}

// SocketStudy compares the node-level interference model (the calibration
// target) against the opt-in dual-socket model on the Table 2
// configurations. Socket awareness reduces interference wherever the
// first-fit assignment separates co-located components onto different
// sockets — which is the hardware effect the node-level calibration
// averages over.
func SocketStudy(cfg Config) ([]SocketRow, error) {
	cfg = cfg.Defaults()
	var rows []SocketRow
	for _, p := range placement.ConfigsTable2() {
		es := runtime.SpecForPlacement(p, cfg.Steps)
		run := func(sockets int) (float64, error) {
			spec := cfg.spec()
			spec.SocketsPerNode = sockets
			var ms []float64
			for t := 0; t < cfg.Trials; t++ {
				tr, err := cfg.simulate(spec, p, es, runtime.SimOptions{
					Tier: cfg.Tier, Jitter: cfg.jitter(), Seed: cfg.BaseSeed + int64(t),
				})
				if err != nil {
					return 0, err
				}
				ms = append(ms, tr.Makespan())
			}
			return stats.Mean(ms), nil
		}
		flat, err := run(0)
		if err != nil {
			return nil, err
		}
		sock, err := run(2)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SocketRow{
			Config:       p.Name,
			FlatMakespan: flat,
			SocketAware:  sock,
			Delta:        (flat - sock) / flat,
		})
	}
	return rows, nil
}

// SocketTable renders the socket-fidelity study.
func SocketTable(rows []SocketRow) *report.Table {
	t := report.NewTable("Extension — node-level vs dual-socket interference model",
		"config", "node-level makespan (s)", "socket-aware (s)", "reduction")
	for _, r := range rows {
		t.AddRow(r.Config, r.FlatMakespan, r.SocketAware, r.Delta)
	}
	return t
}

// InTransitRow is one mode of the in situ vs in transit comparison.
type InTransitRow struct {
	Mode     string
	Makespan float64
	SimStage float64 // steady-state S of member 1 (producer perturbation)
	AnaStage float64 // steady-state A of member 1's analysis (contention)
	F        float64
}

// InTransitStudy contrasts the two analytics modes of the paper's
// citation [26] (Taufer et al.): in situ (analyses co-located with their
// simulations, the C1.5 pattern), in transit (analyses packed on a
// dedicated staging node, the C1.1 pattern), and in transit with a staging
// buffer (the asynchronous variant). In transit shields the analyses from
// the simulation's cache but pays remote staging, producer-side serving
// perturbation, and analysis-analysis contention on the staging node.
func InTransitStudy(cfg Config) ([]InTransitRow, error) {
	cfg = cfg.Defaults()
	modes := []struct {
		name  string
		p     placement.Placement
		slots int
	}{
		{"in situ (C1.5)", placement.C15(), 1},
		{"in transit (C1.1)", placement.C11(), 1},
		{"in transit, buffered", placement.C11(), 2},
	}
	var rows []InTransitRow
	for _, mode := range modes {
		es := runtime.SpecForPlacement(mode.p, cfg.Steps)
		spec := cfg.spec()
		var ms, sStage, aStage []float64
		perMember := make([][]float64, len(mode.p.Members))
		for t := 0; t < cfg.Trials; t++ {
			tr, err := cfg.simulate(spec, mode.p, es, runtime.SimOptions{
				Tier: cfg.Tier, Jitter: cfg.jitter(), Seed: cfg.BaseSeed + int64(t),
				StagingSlots: mode.slots,
			})
			if err != nil {
				return nil, err
			}
			ms = append(ms, tr.Makespan())
			for i, m := range tr.Members {
				ss, err := coreSteady(m)
				if err != nil {
					return nil, err
				}
				e, err := ss.Efficiency()
				if err != nil {
					return nil, err
				}
				perMember[i] = append(perMember[i], e)
				if i == 0 {
					sStage = append(sStage, ss.S)
					aStage = append(aStage, ss.Couplings[0].A)
				}
			}
		}
		effs := make([]float64, len(perMember))
		for i := range effs {
			effs[i] = stats.Mean(perMember[i])
		}
		f, err := indicators.Objective(mode.p, effs, indicators.StageUAP)
		if err != nil {
			return nil, err
		}
		rows = append(rows, InTransitRow{
			Mode:     mode.name,
			Makespan: stats.Mean(ms),
			SimStage: stats.Mean(sStage),
			AnaStage: stats.Mean(aStage),
			F:        f,
		})
	}
	return rows, nil
}

// InTransitTable renders the in situ vs in transit study.
func InTransitTable(rows []InTransitRow) *report.Table {
	t := report.NewTable("Extension — in situ vs in transit analytics (after the paper's ref. [26])",
		"mode", "makespan (s)", "S* (s)", "A* (s)", "F(P^{U,A,P})")
	for _, r := range rows {
		t.AddRow(r.Mode, r.Makespan, r.SimStage, r.AnaStage, r.F)
	}
	return t
}
