package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"ensemblekit/internal/campaign"
	"ensemblekit/internal/placement"
)

// TestRunConfigServiceMatchesSerial pins the acceptance guarantee: a
// sweep evaluated through the campaign service (pooled, cached) yields
// byte-identical traces to the serial path for a fixed base seed.
func TestRunConfigServiceMatchesSerial(t *testing.T) {
	svc, err := campaign.NewService(campaign.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	serialCfg := Quick()
	serialCfg.Trials = 3
	pooledCfg := serialCfg
	pooledCfg.Service = svc

	for _, p := range placement.ConfigsTable2() {
		serial, err := runConfig(serialCfg, p)
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := runConfig(pooledCfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(pooled) != len(serial) {
			t.Fatalf("%s: %d pooled traces vs %d serial", p.Name, len(pooled), len(serial))
		}
		for i := range serial {
			want, err := json.Marshal(serial[i])
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.Marshal(pooled[i])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s trial %d: pooled trace differs from serial", p.Name, i)
			}
		}
	}
	if st := svc.Stats(); st.Completed == 0 {
		t.Error("service never ran a job")
	}
}

// TestIndicatorRankingThroughService re-derives Figure 8's ranking via
// the service and checks it against the serial evaluation.
func TestIndicatorRankingThroughService(t *testing.T) {
	svc, err := campaign.NewService(campaign.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	cfg := Quick()
	pooled := cfg
	pooled.Service = svc

	_, want, err := indicatorStudy(cfg, placement.ConfigsTable2())
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := indicatorStudy(pooled, placement.ConfigsTable2())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d vs %d reports", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name {
			t.Errorf("report %d: %s vs %s", i, got[i].Name, want[i].Name)
			continue
		}
		for stage, w := range want[i].PerStage {
			if g := got[i].PerStage[stage]; g != w {
				t.Errorf("%s %s: %v vs %v", want[i].Name, stage, g, w)
			}
		}
	}
}
