package experiments

import (
	"fmt"
	"strings"

	"ensemblekit/internal/metrics"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/report"
)

// Table1 renders the paper's Table 1 — the metric definitions — together
// with sample values measured on one co-located run, demonstrating every
// metric end to end.
func Table1(cfg Config) (string, error) {
	cfg = cfg.Defaults()
	traces, err := runConfig(cfg, placement.Cc())
	if err != nil {
		return "", err
	}
	ens, err := metrics.FromTrace(traces[0])
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("## Table 1 — metrics at three levels of granularity (sampled on C_c)\n")

	comp := report.NewTable("Ensemble component",
		"component", "execution time (s)", "LLC miss ratio", "memory intensity", "IPC")
	for _, c := range ens.Components {
		comp.AddRow(c.Name, c.ExecutionTime, c.LLCMissRatio, c.MemoryIntensity, c.IPC)
	}
	b.WriteString(comp.String())

	mem := report.NewTable("Ensemble member", "member", "makespan (s)")
	for _, m := range ens.Members {
		mem.AddRow(fmt.Sprintf("EM%d", m.Index+1), m.Makespan)
	}
	b.WriteString(mem.String())

	wf := report.NewTable("Workflow ensemble", "metric", "value")
	wf.AddRow("ensemble makespan (s)", ens.Makespan)
	b.WriteString(wf.String())
	return b.String(), nil
}

// configTable renders a set of configurations in the paper's Table 2/4
// layout.
func configTable(title string, configs []placement.Placement) *report.Table {
	maxK := 0
	for _, p := range configs {
		for _, m := range p.Members {
			if m.K() > maxK {
				maxK = m.K()
			}
		}
	}
	cols := []string{"configuration", "nodes", "members"}
	maxMembers := 0
	for _, p := range configs {
		if p.N() > maxMembers {
			maxMembers = p.N()
		}
	}
	for i := 1; i <= maxMembers; i++ {
		cols = append(cols, fmt.Sprintf("sim %d", i))
		for j := 1; j <= maxK; j++ {
			cols = append(cols, fmt.Sprintf("ana %d.%d", i, j))
		}
	}
	t := report.NewTable(title, cols...)
	nodeName := func(c placement.Component) string {
		ns := c.NodeSet()
		parts := make([]string, len(ns))
		for i, n := range ns {
			parts[i] = fmt.Sprintf("n%d", n)
		}
		return strings.Join(parts, "+")
	}
	for _, p := range configs {
		cells := []any{p.Name, p.M(), p.N()}
		for i := 0; i < maxMembers; i++ {
			if i < len(p.Members) {
				m := p.Members[i]
				cells = append(cells, nodeName(m.Simulation))
				for j := 0; j < maxK; j++ {
					if j < len(m.Analyses) {
						cells = append(cells, nodeName(m.Analyses[j]))
					} else {
						cells = append(cells, "-")
					}
				}
			} else {
				cells = append(cells, "-")
				for j := 0; j < maxK; j++ {
					cells = append(cells, "-")
				}
			}
		}
		t.AddRow(cells...)
	}
	return t
}

// Table2 renders the paper's Table 2 configurations.
func Table2() *report.Table {
	return configTable("Table 2 — experimental scenario configuration settings", placement.ConfigsTable2())
}

// Table4 renders the paper's Table 4 configurations.
func Table4() *report.Table {
	return configTable("Table 4 — two members, two analyses per simulation", placement.ConfigsTable4())
}
