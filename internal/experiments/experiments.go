// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 2.3 and Section 5.2) on the simulated platform:
// Figures 3-5 (traditional metrics over the Table 2 configurations),
// Figure 6 (stage timeline), Figure 7 (analysis core sweep), Figures 8-9
// (the multi-stage indicator objective over Tables 2 and 4), plus the
// configuration tables themselves and the abstract's co-location headline.
//
// Absolute values are calibrated to the paper's scales (a ~10 s simulation
// step); the reproduction target is the shape of each result — orderings,
// groupings and crossovers — as recorded in EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"

	"ensemblekit/internal/campaign"
	"ensemblekit/internal/cluster"
	"ensemblekit/internal/core"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/runtime"
	"ensemblekit/internal/stats"
	"ensemblekit/internal/trace"
)

// Config controls an experiment run.
type Config struct {
	// Trials is the number of repetitions averaged (the paper averages
	// over 5 trials). Default 5.
	Trials int
	// Steps is the in situ step count. Default runtime.PaperSteps (37).
	Steps int
	// Jitter is the per-stage noise amplitude. Default 0.02.
	Jitter float64
	// BaseSeed seeds trial t with BaseSeed + t.
	BaseSeed int64
	// Nodes sizes the simulated machine. Default 3 (the largest Table 2/4
	// allocation).
	Nodes int
	// Tier selects the DTL (default DIMES, as in the paper).
	Tier string
	// Service optionally routes every simulation through a campaign
	// service: trials run on its worker pool and repeated configurations
	// are answered from its result cache. Results are identical to the
	// direct path for a fixed BaseSeed — jobs replay the same
	// RunSimulated calls.
	Service *campaign.Service
}

// Defaults fills zero fields with the paper's settings.
func (c Config) Defaults() Config {
	if c.Trials <= 0 {
		c.Trials = 5
	}
	if c.Steps <= 0 {
		c.Steps = runtime.PaperSteps
	}
	if c.Jitter == 0 {
		c.Jitter = 0.02
	}
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.Tier == "" {
		c.Tier = runtime.TierDimes
	}
	return c
}

// Quick returns a configuration for fast runs (tests, benches): fewer
// steps and trials, no jitter.
func Quick() Config {
	return Config{Trials: 1, Steps: 8, Jitter: -1, Nodes: 3}.Defaults()
}

func (c Config) spec() cluster.Spec { return cluster.Cori(c.Nodes) }

// clusterSpecWithNodes returns a copy of the spec resized to n nodes.
func clusterSpecWithNodes(spec cluster.Spec, n int) cluster.Spec {
	spec.Nodes = n
	return spec
}

func (c Config) jitter() float64 {
	if c.Jitter < 0 {
		return 0
	}
	return c.Jitter
}

// simulate runs one ensemble: directly, or as a campaign job when
// cfg.Service is set (worker pool + content-addressed cache).
func (c Config) simulate(spec cluster.Spec, p placement.Placement, es runtime.EnsembleSpec, opts runtime.SimOptions) (*trace.EnsembleTrace, error) {
	if c.Service == nil {
		return runtime.RunSimulated(spec, p, es, opts)
	}
	j, err := c.submit(spec, p, es, opts)
	if err != nil {
		return nil, err
	}
	res, err := j.Wait(context.Background())
	if err != nil {
		return nil, err
	}
	return res.Trace, nil
}

// submit enqueues one ensemble on the configured service.
func (c Config) submit(spec cluster.Spec, p placement.Placement, es runtime.EnsembleSpec, opts runtime.SimOptions) (*campaign.Job, error) {
	js, err := campaign.NewJob(spec, p, es, opts)
	if err != nil {
		return nil, err
	}
	return c.Service.SubmitWait(context.Background(), js, campaign.SubmitOptions{Label: p.Name})
}

// trialOptions builds the simulation options of trial t.
func (c Config) trialOptions(t int) runtime.SimOptions {
	return runtime.SimOptions{
		Tier:   c.Tier,
		Jitter: c.jitter(),
		Seed:   c.BaseSeed + int64(t),
	}
}

// runConfig executes one placement configuration Trials times. With a
// service configured, all trials are submitted up front so they run
// concurrently; traces still come back in trial order.
func runConfig(cfg Config, p placement.Placement) ([]*trace.EnsembleTrace, error) {
	spec := cfg.spec()
	es := runtime.SpecForPlacement(p, cfg.Steps)
	out := make([]*trace.EnsembleTrace, 0, cfg.Trials)
	if cfg.Service != nil {
		jobs := make([]*campaign.Job, 0, cfg.Trials)
		for t := 0; t < cfg.Trials; t++ {
			j, err := cfg.submit(spec, p, es, cfg.trialOptions(t))
			if err != nil {
				return nil, fmt.Errorf("experiments: %s trial %d: %w", p.Name, t, err)
			}
			jobs = append(jobs, j)
		}
		for t, j := range jobs {
			res, err := j.Wait(context.Background())
			if err != nil {
				return nil, fmt.Errorf("experiments: %s trial %d: %w", p.Name, t, err)
			}
			out = append(out, res.Trace)
		}
		return out, nil
	}
	for t := 0; t < cfg.Trials; t++ {
		tr, err := runtime.RunSimulated(spec, p, es, cfg.trialOptions(t))
		if err != nil {
			return nil, fmt.Errorf("experiments: %s trial %d: %w", p.Name, t, err)
		}
		out = append(out, tr)
	}
	return out, nil
}

// memberEfficiencies returns the per-member efficiency E_i of each trace,
// averaged across trials.
func memberEfficiencies(traces []*trace.EnsembleTrace) ([]float64, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("experiments: no traces")
	}
	n := len(traces[0].Members)
	perMember := make([][]float64, n)
	for _, tr := range traces {
		if len(tr.Members) != n {
			return nil, fmt.Errorf("experiments: inconsistent member counts across trials")
		}
		for i, m := range tr.Members {
			ss, err := core.FromMemberTrace(m, core.ExtractOptions{})
			if err != nil {
				return nil, err
			}
			e, err := ss.Efficiency()
			if err != nil {
				return nil, err
			}
			perMember[i] = append(perMember[i], e)
		}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = stats.Mean(perMember[i])
	}
	return out, nil
}
