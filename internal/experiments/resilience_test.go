package experiments

import (
	"testing"

	"ensemblekit/internal/placement"
)

func TestFaultStudy(t *testing.T) {
	rows, err := FaultStudy(quick())
	if err != nil {
		t.Fatal(err)
	}
	want := len(placement.ConfigsTable2()) * len(FaultRates)
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.Rate == 0 {
			if r.Retries != 0 || r.Dropped != 0 {
				t.Errorf("%s: fault-free baseline recorded retries %v / drops %v",
					r.Config, r.Retries, r.Dropped)
			}
			if r.Slowdown != 1 {
				t.Errorf("%s: baseline slowdown %v, want 1", r.Config, r.Slowdown)
			}
		}
		if r.Makespan <= 0 || r.Slowdown <= 0 {
			t.Errorf("%s rate %v: non-positive makespan/slowdown", r.Config, r.Rate)
		}
	}
	// The degradation curve: the heaviest fault rate must cost at least as
	// much makespan as the fault-free baseline on every configuration.
	base := map[string]float64{}
	worst := map[string]float64{}
	for _, r := range rows {
		if r.Rate == 0 {
			base[r.Config] = r.Makespan
		}
		if r.Rate == FaultRates[len(FaultRates)-1] {
			worst[r.Config] = r.Makespan
		}
	}
	for cfgName, b := range base {
		if worst[cfgName] < b {
			t.Errorf("%s: makespan under faults (%v) below the baseline (%v)",
				cfgName, worst[cfgName], b)
		}
	}
	if FaultTable(rows).NumRows() != want {
		t.Error("table rendering lost rows")
	}
}
