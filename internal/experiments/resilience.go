package experiments

// Resilience extension: degradation curves under injected staging
// faults. The paper's evaluation assumes fault-free runs; this study
// quantifies how the Table 2 placements degrade when the staging layer
// becomes unreliable and the runtime recovers with retries and the
// drop-member policy (ISSUE: fault-rate vs makespan/efficiency).

import (
	"fmt"

	"ensemblekit/internal/core"
	"ensemblekit/internal/faults"
	"ensemblekit/internal/indicators"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/report"
	"ensemblekit/internal/runtime"
	"ensemblekit/internal/stats"
	"ensemblekit/internal/trace"
)

// FaultRates is the staging-failure sweep of the fault study: from the
// fault-free baseline to a heavily degraded staging service.
var FaultRates = []float64{0, 0.02, 0.05, 0.1, 0.2}

// FaultRow aggregates one (configuration, fault rate) cell across trials.
type FaultRow struct {
	Config   string
	Rate     float64
	Makespan float64 // mean ensemble makespan (s)
	Slowdown float64 // makespan relative to the fault-free baseline

	// Objective is F(P) (Eq. 9) over surviving members only.
	Objective float64
	// Retries is the mean number of recovered staging attempts per run.
	Retries float64
	// Dropped is the mean number of members dropped per run.
	Dropped float64
}

// FaultStudy sweeps the staging fault rate over the Table 2 placements
// under the retry + drop-member resilience policy and reports the
// makespan/efficiency degradation curves. Every run uses a seeded fault
// plan, so the study is deterministic for a given Config.
func FaultStudy(cfg Config) ([]FaultRow, error) {
	cfg = cfg.Defaults()
	spec := cfg.spec()
	var rows []FaultRow
	for _, p := range placement.ConfigsTable2() {
		base := -1.0
		for _, rate := range FaultRates {
			row := FaultRow{Config: p.Name, Rate: rate}
			var ms, objs, retries, drops []float64
			es := runtime.SpecForPlacement(p, cfg.Steps)
			for t := 0; t < cfg.Trials; t++ {
				opts := runtime.SimOptions{
					Tier:   cfg.Tier,
					Jitter: cfg.jitter(),
					Seed:   cfg.BaseSeed + int64(t),
					Resilience: runtime.Resilience{
						StagingRetries: 3,
						RetryBackoff:   0.05,
						Mode:           runtime.DropMember,
					},
				}
				if rate > 0 {
					opts.Faults = &faults.Plan{
						Name: fmt.Sprintf("rate-%g", rate),
						Seed: cfg.BaseSeed + int64(t),
						Staging: []faults.StagingFault{
							{Tier: cfg.Tier, Rate: rate},
						},
					}
				}
				tr, err := cfg.simulate(spec, p, es, opts)
				if err != nil {
					return nil, fmt.Errorf("experiments: faults %s rate %g trial %d: %w", p.Name, rate, t, err)
				}
				obj, err := survivorObjective(p, tr)
				if err != nil {
					return nil, fmt.Errorf("experiments: faults %s rate %g trial %d: %w", p.Name, rate, t, err)
				}
				ms = append(ms, tr.Makespan())
				objs = append(objs, obj)
				retries = append(retries, float64(totalRetries(tr)))
				drops = append(drops, float64(len(tr.DroppedMembers())))
			}
			row.Makespan = stats.Mean(ms)
			row.Objective = stats.Mean(objs)
			row.Retries = stats.Mean(retries)
			row.Dropped = stats.Mean(drops)
			if base < 0 {
				base = row.Makespan
			}
			if base > 0 {
				row.Slowdown = row.Makespan / base
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// survivorObjective evaluates F(P) (Eq. 9) over the members that
// survived the run: dropped members contribute neither efficiency nor
// resource shares to the objective. An ensemble with no survivors scores
// zero.
func survivorObjective(p placement.Placement, tr *trace.EnsembleTrace) (float64, error) {
	survivors := tr.SurvivingMembers()
	if len(survivors) == 0 {
		return 0, nil
	}
	filtered := placement.Placement{Name: p.Name}
	effs := make([]float64, 0, len(survivors))
	for _, m := range survivors {
		filtered.Members = append(filtered.Members, p.Members[m.Index])
		ss, err := core.FromMemberTrace(m, core.ExtractOptions{})
		if err != nil {
			return 0, err
		}
		e, err := ss.Efficiency()
		if err != nil {
			return 0, err
		}
		effs = append(effs, e)
	}
	return indicators.Objective(filtered, effs, indicators.StageUAP)
}

// totalRetries counts the recovered staging attempts recorded in the
// trace.
func totalRetries(tr *trace.EnsembleTrace) int {
	n := 0
	for _, c := range tr.Components() {
		for _, step := range c.Steps {
			for _, st := range step.Stages {
				n += st.Retries
			}
		}
	}
	return n
}

// FaultTable renders the fault study.
func FaultTable(rows []FaultRow) *report.Table {
	t := report.NewTable("Extension — staging-fault degradation (retries + drop-member policy)",
		"config", "fault rate", "makespan (s)", "slowdown", "F(P) survivors", "retries", "dropped")
	for _, r := range rows {
		t.AddRow(r.Config, r.Rate, r.Makespan, r.Slowdown, r.Objective, r.Retries, r.Dropped)
	}
	return t
}
