package experiments

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// quick returns the fast deterministic experiment configuration used
// throughout the tests.
func quick() Config { return Quick() }

func fig3ByKey(rows []Fig3Row) map[string]Fig3Row {
	out := make(map[string]Fig3Row, len(rows))
	for _, r := range rows {
		out[r.Config+"/"+r.Kind] = r
	}
	return out
}

func TestFig3Shapes(t *testing.T) {
	rows, err := Fig3(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 { // 7 configs x 2 kinds
		t.Fatalf("rows = %d, want 14", len(rows))
	}
	m := fig3ByKey(rows)

	// Analyses are more memory-intensive than simulations (Section 2.3).
	for _, cfgName := range []string{"C_f", "C_c", "C1.1", "C1.2", "C1.3", "C1.4", "C1.5"} {
		sim := m[cfgName+"/simulation"]
		ana := m[cfgName+"/analysis"]
		if ana.MemoryIntensity <= sim.MemoryIntensity {
			t.Errorf("%s: analysis memory intensity (%v) should exceed simulation (%v)",
				cfgName, ana.MemoryIntensity, sim.MemoryIntensity)
		}
		if sim.IPC <= ana.IPC {
			t.Errorf("%s: simulation IPC (%v) should exceed analysis (%v)", cfgName, sim.IPC, ana.IPC)
		}
	}

	// Co-location raises LLC miss ratios above the co-location-free
	// baseline (Figure 3).
	for _, cfgName := range []string{"C_c", "C1.3", "C1.5"} {
		if m[cfgName+"/analysis"].LLCMissRatio <= m["C_f/analysis"].LLCMissRatio {
			t.Errorf("%s analysis miss ratio should exceed C_f's", cfgName)
		}
	}
	// Analysis co-location (C1.1, C1.4) raises analysis misses above the
	// simulation co-location case (C1.2 keeps analyses dedicated).
	if m["C1.1/analysis"].LLCMissRatio <= m["C1.2/analysis"].LLCMissRatio {
		t.Error("C1.1 analyses (co-located) should miss more than C1.2 analyses (dedicated)")
	}
	// Heterogeneous co-location yields the highest miss ratios for the
	// co-located components (paper: C1.3 and C1.5 above C1.1/C1.2/C1.4).
	// C1.5 co-locates both couplings, so its per-kind mean is a clean
	// comparison; C1.3's mean is diluted by its dedicated second member,
	// so it is excluded here (the per-component assertion lives in the
	// cluster package's co-location tests).
	for _, better := range []string{"C1.1", "C1.4"} {
		if m["C1.5/analysis"].LLCMissRatio <= m[better+"/analysis"].LLCMissRatio {
			t.Errorf("heterogeneous co-location (C1.5) should out-miss homogeneous (%s): %v vs %v",
				better, m["C1.5/analysis"].LLCMissRatio, m[better+"/analysis"].LLCMissRatio)
		}
	}
	if Fig3Table(rows).NumRows() != 14 {
		t.Error("table rendering lost rows")
	}
}

func TestFig4And5Shapes(t *testing.T) {
	rows4, err := Fig4(quick())
	if err != nil {
		t.Fatal(err)
	}
	rows5, err := Fig5(quick())
	if err != nil {
		t.Fatal(err)
	}
	byCfg := map[string]float64{}
	for _, r := range rows5 {
		byCfg[r.Config] = r.Makespan
	}
	// C1.5 has the shortest makespan among all configurations (the
	// paper's central Figure 4/5 finding); C1.4 is the worst two-member
	// configuration.
	for name, ms := range byCfg {
		if name == "C1.5" {
			continue
		}
		if byCfg["C1.5"] > ms+1e-9 {
			t.Errorf("C1.5 (%v) should not exceed %s (%v)", byCfg["C1.5"], name, ms)
		}
	}
	for _, name := range []string{"C1.1", "C1.2", "C1.3", "C1.5"} {
		if byCfg["C1.4"] < byCfg[name] {
			t.Errorf("C1.4 (%v) should be the slowest two-member config, but %s = %v",
				byCfg["C1.4"], name, byCfg[name])
		}
	}
	// Figure 4's member rows aggregate into Figure 5's maxima.
	memberMax := map[string]float64{}
	for _, r := range rows4 {
		if r.Makespan > memberMax[r.Config] {
			memberMax[r.Config] = r.Makespan
		}
	}
	for name, ms := range byCfg {
		if math.Abs(memberMax[name]-ms) > 1e-9 {
			t.Errorf("%s: ensemble makespan %v != max member makespan %v", name, ms, memberMax[name])
		}
	}
	if Fig4Table(rows4).NumRows() == 0 || Fig5Table(rows5).NumRows() != 7 {
		t.Error("table rendering lost rows")
	}
}

func TestFig6Timeline(t *testing.T) {
	out, err := Fig6(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"simulation", "analysis 1", "analysis 2", "IdleSimulation", "IdleAnalyzer"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 6 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig7Shapes(t *testing.T) {
	points, err := Fig7(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 7 {
		t.Fatalf("points = %d", len(points))
	}
	// Crossover between 4 and 8 cores; E maximized at 8.
	var at4, at8 bool
	bestE, bestCores := -1.0, 0
	for _, p := range points {
		if p.Cores == 4 {
			at4 = p.SatisfiesEq4
		}
		if p.Cores == 8 {
			at8 = p.SatisfiesEq4
		}
		if p.SatisfiesEq4 && p.Efficiency > bestE {
			bestE, bestCores = p.Efficiency, p.Cores
		}
	}
	if at4 || !at8 {
		t.Errorf("Eq. 4 crossover should fall between 4 (got %v) and 8 (got %v) cores", at4, at8)
	}
	if bestCores != 8 {
		t.Errorf("E maximized at %d cores, want 8", bestCores)
	}
	if Fig7Table(points).NumRows() != 7 {
		t.Error("table rendering lost rows")
	}
}

func TestFig8Shapes(t *testing.T) {
	rows, reports, err := Fig8(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 5 {
		t.Fatalf("reports = %d", len(reports))
	}
	f := map[string]map[string]float64{}
	for _, r := range rows {
		if f[r.Config] == nil {
			f[r.Config] = map[string]float64{}
		}
		f[r.Config][r.Stage] = r.F
	}
	// P^{U,P} cannot meaningfully separate C1.4 from C1.5 (both use two
	// nodes, Section 5.2): within 15%.
	up14, up15 := f["C1.4"]["U,P"], f["C1.5"]["U,P"]
	if math.Abs(up14-up15)/math.Max(up14, up15) > 0.15 {
		t.Errorf("F(P^{U,P}) should barely separate C1.4 (%v) from C1.5 (%v)", up14, up15)
	}
	// The allocation layer does separate them.
	ua14, ua15 := f["C1.4"]["U,A"], f["C1.5"]["U,A"]
	if ua15 <= ua14 {
		t.Errorf("F(P^{U,A}) should rank C1.5 (%v) above C1.4 (%v)", ua15, ua14)
	}
	// Final stage: C1.5 best; C1.4 below C1.5 but above C1.1-C1.3.
	final := func(name string) float64 { return f[name]["U,A,P"] }
	if !(final("C1.5") > final("C1.4")) {
		t.Errorf("final: C1.5 (%v) should beat C1.4 (%v)", final("C1.5"), final("C1.4"))
	}
	for _, name := range []string{"C1.1", "C1.2", "C1.3"} {
		if !(final("C1.4") > final(name)) {
			t.Errorf("final: C1.4 (%v) should beat %s (%v)", final("C1.4"), name, final(name))
		}
	}
	if IndicatorTable("fig8", rows).NumRows() != 5 {
		t.Error("table rendering lost rows")
	}
}

func TestFig9Shapes(t *testing.T) {
	rows, _, err := Fig9(quick())
	if err != nil {
		t.Fatal(err)
	}
	f := map[string]map[string]float64{}
	for _, r := range rows {
		if f[r.Config] == nil {
			f[r.Config] = map[string]float64{}
		}
		f[r.Config][r.Stage] = r.F
	}
	// P^{U,P} splits the two-node group (C2.6-C2.8) from the three-node
	// group (C2.1-C2.5): every two-node config scores above every
	// three-node config at that stage (Section 5.2).
	twoNode := []string{"C2.6", "C2.7", "C2.8"}
	threeNode := []string{"C2.1", "C2.2", "C2.3", "C2.4", "C2.5"}
	minTwo := math.Inf(1)
	for _, n := range twoNode {
		if v := f[n]["U,P"]; v < minTwo {
			minTwo = v
		}
	}
	for _, n := range threeNode {
		if f[n]["U,P"] >= minTwo {
			t.Errorf("F(P^{U,P}): three-node %s (%v) should score below the two-node group (min %v)",
				n, f[n]["U,P"], minTwo)
		}
	}
	// Final stage: C2.8 (full co-location) is the best configuration.
	for name := range f {
		if name == "C2.8" {
			continue
		}
		if f["C2.8"]["U,A,P"] <= f[name]["U,A,P"] {
			t.Errorf("final: C2.8 (%v) should beat %s (%v)",
				f["C2.8"]["U,A,P"], name, f[name]["U,A,P"])
		}
	}
}

func TestHeadline(t *testing.T) {
	res, err := Headline(quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio <= 1 {
		t.Errorf("co-location should improve the indicator: ratio %v", res.Ratio)
	}
	// The winner is a fully co-located configuration.
	if res.Best != "C1.5" && res.Best != "C2.8" {
		t.Errorf("best config = %s, want a fully co-located one", res.Best)
	}
	if !strings.Contains(res.String(), "orders of magnitude") {
		t.Error("summary should report orders of magnitude")
	}
}

func TestTableRenderings(t *testing.T) {
	t1, err := Table1(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Ensemble component", "Ensemble member", "ensemble makespan", "IPC"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
	if Table2().NumRows() != 7 {
		t.Error("Table 2 should have 7 rows")
	}
	if Table4().NumRows() != 8 {
		t.Error("Table 4 should have 8 rows")
	}
	if !strings.Contains(Table2().String(), "C1.5") || !strings.Contains(Table4().String(), "C2.8") {
		t.Error("config tables missing entries")
	}
}

func TestTierStudy(t *testing.T) {
	rows, err := TierStudy(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // 3 configs x 3 tiers
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	by := map[string]float64{}
	for _, r := range rows {
		by[r.Config+"/"+r.Tier] = r.Makespan
	}
	// In-memory staging wins on the co-located configs; PFS is worst
	// everywhere (the in situ motivation).
	for _, cfgName := range []string{"C_c", "C1.5"} {
		if !(by[cfgName+"/dimes"] <= by[cfgName+"/burstbuffer"] &&
			by[cfgName+"/burstbuffer"] <= by[cfgName+"/pfs"]) {
			t.Errorf("%s: tier ordering violated: %v / %v / %v", cfgName,
				by[cfgName+"/dimes"], by[cfgName+"/burstbuffer"], by[cfgName+"/pfs"])
		}
	}
	if TierTable(rows).NumRows() != 9 {
		t.Error("table rendering lost rows")
	}
}

func TestModelValidation(t *testing.T) {
	rows, err := ModelValidation(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no validation rows")
	}
	for _, r := range rows {
		// At 8 steps the one-step lead-in costs ~1/8 = 12.5%; accept 15%.
		if r.RelativeError > 0.15 {
			t.Errorf("%s member %d: Eq. 2 error %.1f%% too large (pred %v vs meas %v)",
				r.Config, r.Member, 100*r.RelativeError, r.Predicted, r.Measured)
		}
	}
	if ValidationTable(rows).NumRows() != len(rows) {
		t.Error("table rendering lost rows")
	}
}

func TestBufferStudy(t *testing.T) {
	rows, err := BufferStudy(quick())
	if err != nil {
		t.Fatal(err)
	}
	by := map[string]float64{}
	for _, r := range rows {
		by[fmt.Sprintf("%s/%d", r.Config, r.Slots)] = r.Makespan
	}
	// More slots never hurt.
	for _, cfgName := range []string{"C1.4", "C1.5"} {
		if by[cfgName+"/2"] > by[cfgName+"/1"]+1e-9 || by[cfgName+"/4"] > by[cfgName+"/2"]+1e-9 {
			t.Errorf("%s: buffering should be monotone: %v / %v / %v", cfgName,
				by[cfgName+"/1"], by[cfgName+"/2"], by[cfgName+"/4"])
		}
	}
	if BufferTable(rows).NumRows() != 6 {
		t.Error("table rendering lost rows")
	}
}

func TestAggregatorStudy(t *testing.T) {
	rows, err := AggregatorStudy(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 aggregators", len(rows))
	}
	// The paper's conclusion — C2.8 best — is robust to the aggregation
	// choice.
	for _, r := range rows {
		if len(r.Ranking) != 8 {
			t.Fatalf("%s: ranking has %d entries", r.Aggregator, len(r.Ranking))
		}
		if r.Ranking[0] != "C2.8" {
			t.Errorf("aggregator %s does not rank C2.8 first: %v", r.Aggregator, r.Ranking)
		}
	}
	if AggregatorTable(rows).NumRows() != 4 {
		t.Error("table rendering lost rows")
	}
}

func TestScalingStudy(t *testing.T) {
	rows, err := ScalingStudy(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 4 sizes x 2 placements
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	by := map[string]ScalingRow{}
	for _, r := range rows {
		by[fmt.Sprintf("%d/%s", r.Members, r.Placement)] = r
	}
	for _, n := range []int{1, 2, 4, 8} {
		co := by[fmt.Sprintf("%d/co-located", n)]
		sp := by[fmt.Sprintf("%d/spread", n)]
		// Co-location wins both makespan and objective at every scale.
		if co.Makespan >= sp.Makespan {
			t.Errorf("N=%d: co-located makespan (%v) should beat spread (%v)", n, co.Makespan, sp.Makespan)
		}
		if co.F <= sp.F {
			t.Errorf("N=%d: co-located F (%v) should beat spread (%v)", n, co.F, sp.F)
		}
		if co.Nodes != n || sp.Nodes != 2*n {
			t.Errorf("N=%d: node counts %d/%d, want %d/%d", n, co.Nodes, sp.Nodes, n, 2*n)
		}
	}
	if ScalingTable(rows).NumRows() != 8 {
		t.Error("table rendering lost rows")
	}
}

func TestHeterogeneousStudy(t *testing.T) {
	rows, err := HeterogeneousStudy(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	var co, sp HeterogeneousRow
	for _, r := range rows {
		if r.Placement == "colocated-3" {
			co = r
		} else {
			sp = r
		}
	}
	// The indicator's preference for co-location survives heterogeneity.
	if co.F <= sp.F {
		t.Errorf("heterogeneous: co-located F (%v) should beat spread (%v)", co.F, sp.F)
	}
	if HeterogeneousTable(rows).NumRows() != 2 {
		t.Error("table rendering lost rows")
	}
}

func TestTopologyStudy(t *testing.T) {
	rows, err := TopologyStudy(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	by := map[string]TopologyRow{}
	for _, r := range rows {
		by[r.Scenario] = r
	}
	// Same-group paths match the flat fabric; crossing groups costs more;
	// a starved global link costs the most.
	if by["same group"].ReadTime > by["flat fabric"].ReadTime*1.05 {
		t.Errorf("same-group read (%v) should match flat fabric (%v)",
			by["same group"].ReadTime, by["flat fabric"].ReadTime)
	}
	if by["cross group"].ReadTime <= by["same group"].ReadTime {
		t.Error("crossing groups should slow the read")
	}
	if by["cross group, starved link"].ReadTime <= by["cross group"].ReadTime {
		t.Error("a starved global link should slow the read further")
	}
	if TopologyTable(rows).NumRows() != 4 {
		t.Error("table rendering lost rows")
	}
}

func TestSocketStudy(t *testing.T) {
	rows, err := SocketStudy(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	for _, r := range rows {
		// Socket awareness can only reduce (or preserve) interference.
		if r.SocketAware > r.FlatMakespan+1e-9 {
			t.Errorf("%s: socket-aware makespan (%v) exceeds node-level (%v)",
				r.Config, r.SocketAware, r.FlatMakespan)
		}
	}
	// C_c (sim and analysis on separate sockets) must benefit; C_f (no
	// co-location) must not change.
	by := map[string]SocketRow{}
	for _, r := range rows {
		by[r.Config] = r
	}
	if by["C_c"].Delta <= 0 {
		t.Errorf("C_c should benefit from socket separation: %+v", by["C_c"])
	}
	if by["C_f"].Delta > 1e-9 {
		t.Errorf("C_f has nothing to separate: %+v", by["C_f"])
	}
	if SocketTable(rows).NumRows() != 7 {
		t.Error("table rendering lost rows")
	}
}

func TestInTransitStudy(t *testing.T) {
	rows, err := InTransitStudy(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	by := map[string]InTransitRow{}
	for _, r := range rows {
		by[r.Mode] = r
	}
	insitu := by["in situ (C1.5)"]
	transit := by["in transit (C1.1)"]
	// In transit shields analyses from the simulation's cache but packs
	// them together: the analysis stage contends more than in situ's
	// heterogeneous pairing.
	if transit.AnaStage <= insitu.AnaStage {
		t.Errorf("in-transit analyses (%v) should contend more than in situ (%v)",
			transit.AnaStage, insitu.AnaStage)
	}
	// The paper's verdict holds: in situ wins makespan and the indicator.
	if insitu.Makespan >= transit.Makespan {
		t.Errorf("in situ makespan (%v) should beat in transit (%v)", insitu.Makespan, transit.Makespan)
	}
	if insitu.F <= transit.F {
		t.Errorf("in situ F (%v) should beat in transit (%v)", insitu.F, transit.F)
	}
	// Buffering does not rescue in transit at steady state.
	if by["in transit, buffered"].Makespan < transit.Makespan*0.99 {
		t.Errorf("buffering should not materially change steady-state in transit: %v vs %v",
			by["in transit, buffered"].Makespan, transit.Makespan)
	}
	if InTransitTable(rows).NumRows() != 3 {
		t.Error("table rendering lost rows")
	}
}
