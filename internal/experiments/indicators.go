package experiments

import (
	"fmt"
	"math"

	"ensemblekit/internal/indicators"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/report"
)

// IndicatorRow is one point of Figures 8/9: the objective F of a
// configuration at one indicator stage.
type IndicatorRow struct {
	Config string
	Stage  string
	F      float64
}

// indicatorStudy evaluates F(P_i) at every stage of both evaluation paths
// for a set of configurations — the computation behind Figures 8 and 9.
func indicatorStudy(cfg Config, configs []placement.Placement) ([]IndicatorRow, []indicators.Report, error) {
	cfg = cfg.Defaults()
	var rows []IndicatorRow
	var reports []indicators.Report
	for _, p := range configs {
		traces, err := runConfig(cfg, p)
		if err != nil {
			return nil, nil, err
		}
		effs, err := memberEfficiencies(traces)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: %s: %w", p.Name, err)
		}
		rep, err := indicators.FullReport(p, effs)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: %s: %w", p.Name, err)
		}
		reports = append(reports, rep)
		for _, s := range indicators.AllStages() {
			rows = append(rows, IndicatorRow{Config: p.Name, Stage: s.String(), F: rep.PerStage[s.String()]})
		}
	}
	return rows, reports, nil
}

// Fig8 reproduces Figure 8: F(P_i) at each indicator stage over the
// one-analysis-per-simulation configurations C1.1-C1.5.
func Fig8(cfg Config) ([]IndicatorRow, []indicators.Report, error) {
	return indicatorStudy(cfg, placement.ConfigsTable2TwoMember())
}

// Fig9 reproduces Figure 9: the same study over the two-analyses-per-
// simulation configurations C2.1-C2.8.
func Fig9(cfg Config) ([]IndicatorRow, []indicators.Report, error) {
	return indicatorStudy(cfg, placement.ConfigsTable4())
}

// IndicatorTable renders Figure 8/9 data with one column per stage.
func IndicatorTable(title string, rows []IndicatorRow) *report.Table {
	stages := []string{"U", "U,P", "U,A", "U,A,P"}
	t := report.NewTable(title, append([]string{"config"},
		[]string{"F(P^U)", "F(P^{U,P})", "F(P^{U,A})", "F(P^{U,A,P})"}...)...)
	byConfig := map[string]map[string]float64{}
	var order []string
	for _, r := range rows {
		if _, ok := byConfig[r.Config]; !ok {
			byConfig[r.Config] = map[string]float64{}
			order = append(order, r.Config)
		}
		byConfig[r.Config][r.Stage] = r.F
	}
	for _, name := range order {
		cells := []any{name}
		for _, s := range stages {
			cells = append(cells, byConfig[name][s])
		}
		t.AddRow(cells...)
	}
	return t
}

// IndicatorChart renders the final-stage objective of Figure 8/9 data as
// an ASCII bar chart (the figures' visual form).
func IndicatorChart(title string, rows []IndicatorRow) *report.BarChart {
	chart := report.NewBarChart(title, 50)
	for _, r := range rows {
		if r.Stage == indicators.StageUAP.String() {
			chart.AddBar(r.Config, r.F)
		}
	}
	return chart
}

// Headline quantifies the abstract's claim — the indicator improvement of
// full coupling co-location — by comparing F(P^{U,A,P}) of the best
// co-located configuration against the worst configuration across the
// Table 2 and Table 4 sets plus a deliberately over-provisioned spread
// placement (every component on a dedicated node of a larger allocation).
type HeadlineResult struct {
	// Best and Worst are the extreme configurations.
	Best, Worst string
	// BestF and WorstF are their objective values.
	BestF, WorstF float64
	// Ratio is BestF / WorstF.
	Ratio float64
	// OrdersOfMagnitude is log10(Ratio).
	OrdersOfMagnitude float64
}

// Headline runs the headline comparison.
func Headline(cfg Config) (HeadlineResult, error) {
	cfg = cfg.Defaults()
	configs := append(placement.ConfigsTable2TwoMember(), placement.ConfigsTable4()...)
	// The over-provisioned straggler: member 1 fully co-located, member 2
	// spread across dedicated nodes of a 6-node allocation with
	// deliberately starved analyses is representable only via core counts
	// we keep fixed; spreading alone already wastes provisioned nodes.
	spread := placement.Placement{
		Name: "spread-6",
		Members: []placement.Member{
			{
				Simulation: placement.Component{Nodes: []int{0}, Cores: placement.SimCores},
				Analyses: []placement.Component{
					{Nodes: []int{1}, Cores: placement.AnalysisCores},
					{Nodes: []int{2}, Cores: placement.AnalysisCores},
				},
			},
			{
				Simulation: placement.Component{Nodes: []int{3}, Cores: placement.SimCores},
				Analyses: []placement.Component{
					{Nodes: []int{4}, Cores: placement.AnalysisCores},
					{Nodes: []int{5}, Cores: placement.AnalysisCores},
				},
			},
		},
	}
	configs = append(configs, spread)

	res := HeadlineResult{BestF: math.Inf(-1), WorstF: math.Inf(1)}
	for _, p := range configs {
		c := cfg
		if n := p.M(); n > c.Nodes {
			c.Nodes = n
		}
		traces, err := runConfig(c, p)
		if err != nil {
			return HeadlineResult{}, err
		}
		effs, err := memberEfficiencies(traces)
		if err != nil {
			return HeadlineResult{}, err
		}
		f, err := indicators.Objective(p, effs, indicators.StageUAP)
		if err != nil {
			return HeadlineResult{}, err
		}
		if f > res.BestF {
			res.BestF, res.Best = f, p.Name
		}
		if f < res.WorstF {
			res.WorstF, res.Worst = f, p.Name
		}
	}
	if res.WorstF > 0 {
		res.Ratio = res.BestF / res.WorstF
		res.OrdersOfMagnitude = math.Log10(res.Ratio)
	} else {
		res.Ratio = math.Inf(1)
		res.OrdersOfMagnitude = math.Inf(1)
	}
	return res, nil
}

// String summarizes the headline result.
func (h HeadlineResult) String() string {
	return fmt.Sprintf(
		"Headline: best F(P^{U,A,P}) = %s (%s), worst = %s (%s); improvement %.1fx (%.1f orders of magnitude)",
		report.FormatFloat(h.BestF), h.Best,
		report.FormatFloat(h.WorstF), h.Worst,
		h.Ratio, h.OrdersOfMagnitude)
}
