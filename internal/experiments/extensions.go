package experiments

// Extensions beyond the paper's evaluation: ablations of the design
// choices DESIGN.md calls out (DTL tier, staging buffer depth, objective
// aggregation) and the explicit model-validation study the paper performs
// implicitly.

import (
	"fmt"
	"sort"

	"ensemblekit/internal/core"
	"ensemblekit/internal/indicators"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/report"
	"ensemblekit/internal/runtime"
	"ensemblekit/internal/stats"
)

// TierRow compares one configuration on one DTL tier.
type TierRow struct {
	Config   string
	Tier     string
	Makespan float64
}

// TierStudy quantifies the in situ motivation: the same ensembles staged
// through in-memory DIMES, a burst buffer, and the parallel file system.
func TierStudy(cfg Config) ([]TierRow, error) {
	cfg = cfg.Defaults()
	var rows []TierRow
	for _, p := range []placement.Placement{placement.Cc(), placement.Cf(), placement.C15()} {
		for _, tier := range []string{runtime.TierDimes, runtime.TierBurstBuffer, runtime.TierPFS} {
			c := cfg
			c.Tier = tier
			traces, err := runConfig(c, p)
			if err != nil {
				return nil, err
			}
			var ms []float64
			for _, tr := range traces {
				ms = append(ms, tr.Makespan())
			}
			rows = append(rows, TierRow{Config: p.Name, Tier: tier, Makespan: stats.Mean(ms)})
		}
	}
	return rows, nil
}

// TierTable renders the tier study.
func TierTable(rows []TierRow) *report.Table {
	t := report.NewTable("Extension — DTL tier comparison (in-memory vs burst buffer vs PFS)",
		"config", "tier", "makespan (s)")
	for _, r := range rows {
		t.AddRow(r.Config, r.Tier, r.Makespan)
	}
	return t
}

// ValidationRow compares the Equation 2 makespan prediction against the
// measured member makespan.
type ValidationRow struct {
	Config        string
	Member        int
	Predicted     float64
	Measured      float64
	RelativeError float64
}

// ModelValidation runs every Table 2 and Table 4 configuration and checks
// how well the steady-state model (Equations 1-2) predicts the measured
// member makespans — the evidence that σ̄* captures member behaviour.
func ModelValidation(cfg Config) ([]ValidationRow, error) {
	cfg = cfg.Defaults()
	var rows []ValidationRow
	for _, p := range append(placement.ConfigsTable2(), placement.ConfigsTable4()...) {
		traces, err := runConfig(cfg, p)
		if err != nil {
			return nil, err
		}
		for i := range p.Members {
			var pred, meas []float64
			for _, tr := range traces {
				rep, err := core.ValidateModel(tr.Members[i], core.ExtractOptions{})
				if err != nil {
					return nil, fmt.Errorf("experiments: %s member %d: %w", p.Name, i, err)
				}
				pred = append(pred, rep.Predicted)
				meas = append(meas, rep.Measured)
			}
			row := ValidationRow{
				Config:    p.Name,
				Member:    i + 1,
				Predicted: stats.Mean(pred),
				Measured:  stats.Mean(meas),
			}
			if row.Measured > 0 {
				d := row.Predicted - row.Measured
				if d < 0 {
					d = -d
				}
				row.RelativeError = d / row.Measured
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ValidationTable renders the model-validation study.
func ValidationTable(rows []ValidationRow) *report.Table {
	t := report.NewTable("Extension — Equation 2 makespan prediction vs measurement",
		"config", "member", "predicted (s)", "measured (s)", "rel. error")
	for _, r := range rows {
		t.AddRow(r.Config, r.Member, r.Predicted, r.Measured, r.RelativeError)
	}
	return t
}

// BufferRow reports one staging-buffer depth.
type BufferRow struct {
	Config   string
	Slots    int
	Makespan float64
}

// BufferStudy relaxes the paper's no-buffering assumption (Section 3.1
// assumes one staging slot): how much does buffer depth help a
// contention-bound configuration under stage-time jitter?
func BufferStudy(cfg Config) ([]BufferRow, error) {
	cfg = cfg.Defaults()
	if cfg.Jitter <= 0 {
		cfg.Jitter = 0.05 // buffering only matters under variance
	}
	var rows []BufferRow
	for _, p := range []placement.Placement{placement.C14(), placement.C15()} {
		for _, slots := range []int{1, 2, 4} {
			spec := cfg.spec()
			es := runtime.SpecForPlacement(p, cfg.Steps)
			var ms []float64
			for t := 0; t < cfg.Trials; t++ {
				tr, err := cfg.simulate(spec, p, es, runtime.SimOptions{
					Tier:         cfg.Tier,
					Jitter:       cfg.jitter(),
					Seed:         cfg.BaseSeed + int64(t),
					StagingSlots: slots,
				})
				if err != nil {
					return nil, err
				}
				ms = append(ms, tr.Makespan())
			}
			rows = append(rows, BufferRow{Config: p.Name, Slots: slots, Makespan: stats.Mean(ms)})
		}
	}
	return rows, nil
}

// BufferTable renders the buffer study.
func BufferTable(rows []BufferRow) *report.Table {
	t := report.NewTable("Extension — staging buffer depth (paper assumes 1 slot)",
		"config", "slots", "makespan (s)")
	for _, r := range rows {
		t.AddRow(r.Config, r.Slots, r.Makespan)
	}
	return t
}

// AggregatorRow reports one configuration's rank under one aggregator.
type AggregatorRow struct {
	Aggregator string
	Ranking    []string // configuration names, best first
}

// AggregatorStudy asks how sensitive the paper's conclusions are to the
// choice of Equation 9's aggregation: it ranks the Table 4 configurations
// under mean-std (the paper), mean, min, and median.
func AggregatorStudy(cfg Config) ([]AggregatorRow, error) {
	cfg = cfg.Defaults()
	type scored struct {
		name string
		v    float64
	}
	perAgg := make(map[indicators.Aggregator][]scored)
	for _, p := range placement.ConfigsTable4() {
		traces, err := runConfig(cfg, p)
		if err != nil {
			return nil, err
		}
		effs, err := memberEfficiencies(traces)
		if err != nil {
			return nil, err
		}
		values, err := indicators.PerMember(p, effs, indicators.StageUAP)
		if err != nil {
			return nil, err
		}
		objs, err := indicators.AggregateObjective(values, indicators.Aggregators())
		if err != nil {
			return nil, err
		}
		for a, v := range objs {
			perAgg[a] = append(perAgg[a], scored{name: p.Name, v: v})
		}
	}
	var rows []AggregatorRow
	for _, a := range indicators.Aggregators() {
		s := perAgg[a]
		sort.SliceStable(s, func(i, j int) bool { return s[i].v > s[j].v })
		names := make([]string, len(s))
		for i, x := range s {
			names[i] = x.name
		}
		rows = append(rows, AggregatorRow{Aggregator: string(a), Ranking: names})
	}
	return rows, nil
}

// AggregatorTable renders the aggregator study.
func AggregatorTable(rows []AggregatorRow) *report.Table {
	t := report.NewTable("Extension — ranking sensitivity to the Equation 9 aggregator",
		"aggregator", "ranking (best first)")
	for _, r := range rows {
		rank := ""
		for i, n := range r.Ranking {
			if i > 0 {
				rank += " > "
			}
			rank += n
		}
		t.AddRow(r.Aggregator, rank)
	}
	return t
}
