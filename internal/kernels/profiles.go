package kernels

import (
	"ensemblekit/internal/cluster"
	"ensemblekit/internal/units"
)

// Calibration anchors, from the paper's experimental setup (Section 2.2)
// and the heuristic analysis (Section 3.4, Figure 7):
//
//   - a 16-core simulation step with stride 800 takes ~10 s;
//   - an 8-core analysis step takes ~9.4 s — just under the simulation
//     step, which is why the paper settles on 8 analysis cores;
//   - per in situ step the simulation stages one chunk of frames.
const (
	// ReferenceStride is the stride the calibration anchors to.
	ReferenceStride = 800
	// referenceSimSeconds is the 16-core simulation compute stage at the
	// reference stride.
	referenceSimSeconds = 10.0
	// referenceAnaSeconds is the 8-core analysis compute stage.
	referenceAnaSeconds = 9.4
	// DefaultChunkBytes is the staged data volume per in situ step.
	DefaultChunkBytes = 768 * units.MiB
)

// CalibrateInstrPerStep returns the instruction count that makes a
// component with the given CPI and parallel fraction take `target` seconds
// on `cores` cores of a clock-Hz machine when running alone.
func CalibrateInstrPerStep(target, clockHz float64, cores int, cpi, parallelFrac float64) float64 {
	p := cluster.Profile{CPIBase: cpi, ParallelFraction: parallelFrac}
	return target * clockHz * p.Speedup(cores) / cpi
}

// MDProfile returns the calibrated cost profile of the GROMACS-proxy
// simulation for a given stride (MD steps per in situ step). Compute cost
// scales linearly with the stride; the staged chunk volume is fixed at
// DefaultChunkBytes per in situ step.
func MDProfile(stride int) cluster.Profile {
	if stride <= 0 {
		stride = ReferenceStride
	}
	clock := cluster.Cori(1).ClockHz
	scale := float64(stride) / ReferenceStride
	return cluster.Profile{
		Name:             "md-gromacs-proxy",
		Class:            cluster.ClassCompute,
		InstrPerStep:     scale * CalibrateInstrPerStep(referenceSimSeconds, clock, 16, 0.5, 0.99),
		CPIBase:          0.5,
		ParallelFraction: 0.99,
		WorkingSetBytes:  60 * units.MiB,
		LLCRefsPerInstr:  0.002,
		BaseMissRatio:    0.05,
		BytesPerStep:     DefaultChunkBytes,
	}
}

// AnalysisProfile returns the calibrated cost profile of the bipartite
// eigenvalue analysis proxy: memory-intensive (high LLC reference rate and
// base miss ratio, Figure 3) with weaker strong-scaling than the
// simulation.
func AnalysisProfile() cluster.Profile {
	clock := cluster.Cori(1).ClockHz
	return cluster.Profile{
		Name:             "eigen-analysis-proxy",
		Class:            cluster.ClassMemory,
		InstrPerStep:     CalibrateInstrPerStep(referenceAnaSeconds, clock, 8, 1.0, 0.9),
		CPIBase:          1.0,
		ParallelFraction: 0.9,
		WorkingSetBytes:  50 * units.MiB,
		LLCRefsPerInstr:  0.02,
		BaseMissRatio:    0.15,
		BytesPerStep:     DefaultChunkBytes,
	}
}

// ScaledAnalysisProfile returns an analysis profile whose alone compute
// time on 8 cores is scaled by the given factor — used by workload
// generators to produce heterogeneous ensembles.
func ScaledAnalysisProfile(scale float64) cluster.Profile {
	p := AnalysisProfile()
	if scale > 0 {
		p.InstrPerStep *= scale
	}
	return p
}
