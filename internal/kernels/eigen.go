package kernels

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"ensemblekit/internal/chunk"
)

// EigenConfig parameterizes the bipartite largest-eigenvalue analysis
// (after Johnston et al., the paper's reference [16]): atoms are split
// into two partitions, a bipartite proximity matrix B is built between
// them, and the largest eigenvalue of B^T B (the squared largest singular
// value of B) is extracted by power iteration. The eigenvalue acts as a
// collective variable capturing large-scale molecular motion.
type EigenConfig struct {
	// MaxAtomsPerSide caps the partition sizes to bound the matrix.
	MaxAtomsPerSide int
	// ContactScale sets the length scale of the proximity kernel
	// exp(-d/scale).
	ContactScale float64
	// Iterations is the number of power-iteration steps.
	Iterations int
	// Tolerance stops iteration early once the eigenvalue estimate is
	// stable to this relative change.
	Tolerance float64
}

// DefaultEigenConfig returns an analysis configuration matched to the
// default LJ system sizes.
func DefaultEigenConfig() EigenConfig {
	return EigenConfig{
		MaxAtomsPerSide: 200,
		ContactScale:    1.5,
		Iterations:      60,
		Tolerance:       1e-10,
	}
}

// Validate checks the configuration.
func (c EigenConfig) Validate() error {
	switch {
	case c.MaxAtomsPerSide <= 0:
		return errors.New("kernels: eigen MaxAtomsPerSide must be positive")
	case c.ContactScale <= 0:
		return errors.New("kernels: eigen ContactScale must be positive")
	case c.Iterations <= 0:
		return errors.New("kernels: eigen Iterations must be positive")
	case c.Tolerance < 0:
		return errors.New("kernels: eigen Tolerance must be non-negative")
	}
	return nil
}

// EigenAnalyzer computes the collective variable of frames.
type EigenAnalyzer struct {
	cfg EigenConfig
}

var _ Analyzer = (*EigenAnalyzer)(nil)

// NewEigenAnalyzer validates the configuration and builds the analyzer.
func NewEigenAnalyzer(cfg EigenConfig) (*EigenAnalyzer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &EigenAnalyzer{cfg: cfg}, nil
}

// Analyze implements Analyzer: the mean largest eigenvalue of the
// per-frame bipartite matrices, computed with up to `cores` goroutines.
func (a *EigenAnalyzer) Analyze(ctx context.Context, frames []chunk.Frame, cores int) (float64, error) {
	if len(frames) == 0 {
		return 0, errors.New("kernels: eigen analysis needs at least one frame")
	}
	if cores < 1 {
		cores = 1
	}
	sum := 0.0
	for i := range frames {
		if err := ctx.Err(); err != nil {
			return 0, fmt.Errorf("kernels: eigen analysis cancelled at frame %d: %w", i, err)
		}
		ev, err := a.frameEigenvalue(&frames[i], cores)
		if err != nil {
			return 0, fmt.Errorf("kernels: frame %d: %w", i, err)
		}
		sum += ev
	}
	return sum / float64(len(frames)), nil
}

// frameEigenvalue builds the bipartite matrix of one frame and extracts
// the dominant eigenvalue of B^T B by power iteration.
func (a *EigenAnalyzer) frameEigenvalue(f *chunk.Frame, cores int) (float64, error) {
	natoms := len(f.Positions)
	if natoms < 2 {
		return 0, errors.New("frame needs at least 2 atoms")
	}
	half := natoms / 2
	n := half
	m := natoms - half
	if n > a.cfg.MaxAtomsPerSide {
		n = a.cfg.MaxAtomsPerSide
	}
	if m > a.cfg.MaxAtomsPerSide {
		m = a.cfg.MaxAtomsPerSide
	}
	left := f.Positions[:n]
	right := f.Positions[half : half+m]
	// Dense bipartite proximity matrix, row-major n x m.
	b := make([]float64, n*m)
	parallelFor(n, cores, func(i int) {
		pi := left[i]
		row := b[i*m : (i+1)*m]
		for j := 0; j < m; j++ {
			pj := right[j]
			d := 0.0
			for k := 0; k < 3; k++ {
				dd := float64(pi[k] - pj[k])
				d += dd * dd
			}
			row[j] = math.Exp(-math.Sqrt(d) / a.cfg.ContactScale)
		}
	})
	return powerIteration(b, n, m, a.cfg.Iterations, a.cfg.Tolerance, cores)
}

// powerIteration returns the dominant eigenvalue of B^T B for the n x m
// row-major matrix b. The iterate v lives in R^m; each step computes
// u = B v (length n) then v' = B^T u (length m); the Rayleigh quotient
// converges to the eigenvalue.
func powerIteration(b []float64, n, m, iters int, tol float64, cores int) (float64, error) {
	if n == 0 || m == 0 {
		return 0, errors.New("empty bipartite matrix")
	}
	v := make([]float64, m)
	for j := range v {
		v[j] = 1 / math.Sqrt(float64(m))
	}
	u := make([]float64, n)
	w := make([]float64, m)
	prev := 0.0
	for it := 0; it < iters; it++ {
		// u = B v
		parallelFor(n, cores, func(i int) {
			row := b[i*m : (i+1)*m]
			s := 0.0
			for j, x := range row {
				s += x * v[j]
			}
			u[i] = s
		})
		// w = B^T u  (parallel over columns)
		parallelFor(m, cores, func(j int) {
			s := 0.0
			for i := 0; i < n; i++ {
				s += b[i*m+j] * u[i]
			}
			w[j] = s
		})
		// lambda = ||w|| since v is unit.
		norm := 0.0
		for _, x := range w {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0, nil // zero matrix: eigenvalue 0
		}
		for j := range v {
			v[j] = w[j] / norm
		}
		if prev > 0 && math.Abs(norm-prev)/prev < tol {
			return norm, nil
		}
		prev = norm
	}
	return prev, nil
}

// parallelFor runs fn(i) for i in [0,n) over up to `cores` goroutines with
// deterministic work partitioning.
func parallelFor(n, cores int, fn func(i int)) {
	if cores <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if cores > n {
		cores = n
	}
	var wg sync.WaitGroup
	size := (n + cores - 1) / cores
	for w := 0; w < cores; w++ {
		lo := w * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
