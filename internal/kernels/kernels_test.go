package kernels

import (
	"context"
	"math"
	"reflect"
	"testing"

	"ensemblekit/internal/chunk"
	"ensemblekit/internal/cluster"
)

func TestProfilesAreValid(t *testing.T) {
	for _, p := range []cluster.Profile{MDProfile(800), MDProfile(0), AnalysisProfile(), ScaledAnalysisProfile(2)} {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %q invalid: %v", p.Name, err)
		}
	}
}

func TestProfileCalibrationAnchors(t *testing.T) {
	clock := cluster.Cori(1).ClockHz
	simT := MDProfile(800).AloneComputeTime(clock, 16)
	if math.Abs(simT-10.0) > 1e-6 {
		t.Errorf("16-core simulation step = %v, want 10.0 (calibration anchor)", simT)
	}
	anaT := AnalysisProfile().AloneComputeTime(clock, 8)
	if math.Abs(anaT-9.4) > 1e-6 {
		t.Errorf("8-core analysis step = %v, want 9.4 (calibration anchor)", anaT)
	}
	// Analysis stays under the simulation with >= 8 cores (Eq. 4
	// feasibility); exceeds it with few cores (Figure 7 crossover).
	if AnalysisProfile().AloneComputeTime(clock, 4) <= simT {
		t.Error("4-core analysis should exceed the simulation step (Fig. 7)")
	}
	if AnalysisProfile().AloneComputeTime(clock, 8) >= simT {
		t.Error("8-core analysis should be under the simulation step (Fig. 7)")
	}
}

func TestStrideScaling(t *testing.T) {
	clock := cluster.Cori(1).ClockHz
	t800 := MDProfile(800).AloneComputeTime(clock, 16)
	t400 := MDProfile(400).AloneComputeTime(clock, 16)
	if math.Abs(t400*2-t800) > 1e-9 {
		t.Errorf("halving the stride should halve the step: %v vs %v", t400, t800)
	}
}

func TestScaledAnalysisProfile(t *testing.T) {
	clock := cluster.Cori(1).ClockHz
	base := AnalysisProfile().AloneComputeTime(clock, 8)
	doubled := ScaledAnalysisProfile(2).AloneComputeTime(clock, 8)
	if math.Abs(doubled-2*base) > 1e-9 {
		t.Errorf("scale 2 should double analysis time: %v vs %v", doubled, base)
	}
	ignored := ScaledAnalysisProfile(-1).AloneComputeTime(clock, 8)
	if ignored != base {
		t.Error("non-positive scale should be ignored")
	}
}

func TestLJConfigValidate(t *testing.T) {
	if err := DefaultLJConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*LJConfig){
		func(c *LJConfig) { c.Atoms = 1 },
		func(c *LJConfig) { c.Box = 0 },
		func(c *LJConfig) { c.Cutoff = 0 },
		func(c *LJConfig) { c.Cutoff = c.Box },
		func(c *LJConfig) { c.Dt = 0 },
		func(c *LJConfig) { c.Temperature = -1 },
	}
	for i, mutate := range cases {
		c := DefaultLJConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestLJDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(cores int) chunk.Frame {
		s, err := NewLJSimulator(DefaultLJConfig())
		if err != nil {
			t.Fatal(err)
		}
		f, err := s.Advance(context.Background(), 50, cores)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	f1 := run(1)
	f4 := run(4)
	if !reflect.DeepEqual(f1, f4) {
		t.Error("LJ trajectory differs across worker counts: force evaluation is not deterministic")
	}
}

func TestLJEnergyConservation(t *testing.T) {
	cfg := DefaultLJConfig()
	s, err := NewLJSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k0, p0 := s.Energies()
	e0 := k0 + p0
	if math.IsNaN(e0) || math.IsInf(e0, 0) {
		t.Fatalf("initial energy not finite: %v", e0)
	}
	if _, err := s.Advance(context.Background(), 200, 4); err != nil {
		t.Fatal(err)
	}
	k1, p1 := s.Energies()
	e1 := k1 + p1
	// Velocity Verlet with a truncated potential drifts slowly; demand the
	// total energy stays within a few percent of the kinetic scale.
	if math.Abs(e1-e0) > 0.05*(math.Abs(e0)+k0) {
		t.Errorf("energy drift too large: %v -> %v", e0, e1)
	}
	if s.Step() != 200 {
		t.Errorf("step counter = %d, want 200", s.Step())
	}
}

func TestLJFrameSnapshot(t *testing.T) {
	s, err := NewLJSimulator(DefaultLJConfig())
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.Advance(context.Background(), 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f.Step != 10 {
		t.Errorf("frame step = %d, want 10", f.Step)
	}
	if len(f.Positions) != DefaultLJConfig().Atoms {
		t.Errorf("frame atoms = %d, want %d", len(f.Positions), DefaultLJConfig().Atoms)
	}
	box := float32(DefaultLJConfig().Box)
	for i, p := range f.Positions {
		for d := 0; d < 3; d++ {
			if p[d] < 0 || p[d] > box {
				t.Fatalf("atom %d outside the box: %v", i, p)
			}
		}
	}
	// Frames embed into chunks and survive the codec.
	c := &chunk.Chunk{ID: chunk.ID{Member: 0, Step: 0}, Producer: "lj", Frames: []chunk.Frame{f}}
	data, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chunk.Decode(data); err != nil {
		t.Fatal(err)
	}
}

func TestLJCancellation(t *testing.T) {
	s, err := NewLJSimulator(DefaultLJConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Advance(ctx, 100, 2); err == nil {
		t.Error("cancelled advance should fail")
	}
}

func TestEigenConfigValidate(t *testing.T) {
	if err := DefaultEigenConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*EigenConfig){
		func(c *EigenConfig) { c.MaxAtomsPerSide = 0 },
		func(c *EigenConfig) { c.ContactScale = 0 },
		func(c *EigenConfig) { c.Iterations = 0 },
		func(c *EigenConfig) { c.Tolerance = -1 },
	}
	for i, mutate := range cases {
		c := DefaultEigenConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := NewEigenAnalyzer(EigenConfig{}); err == nil {
		t.Error("NewEigenAnalyzer should validate")
	}
}

func TestEigenKnownMatrix(t *testing.T) {
	// For B = [[1,0],[0,2]], B^T B has eigenvalues {1,4}; power iteration
	// on B^T B as implemented returns the dominant singular-value-squared
	// quantity ||B^T B v|| -> 4.
	b := []float64{1, 0, 0, 2}
	got, err := powerIteration(b, 2, 2, 100, 1e-12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4) > 1e-6 {
		t.Errorf("dominant eigenvalue = %v, want 4", got)
	}
}

func TestEigenZeroMatrix(t *testing.T) {
	b := make([]float64, 6)
	got, err := powerIteration(b, 2, 3, 10, 1e-12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("zero matrix eigenvalue = %v, want 0", got)
	}
}

func TestEigenAnalyzeFrames(t *testing.T) {
	a, err := NewEigenAnalyzer(DefaultEigenConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := chunk.Synthetic(chunk.ID{}, 3, 120, 5)
	cv, err := a.Analyze(context.Background(), c.Frames, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cv <= 0 || math.IsNaN(cv) || math.IsInf(cv, 0) {
		t.Errorf("collective variable = %v, want positive finite", cv)
	}
	// Deterministic across worker counts.
	cv1, err := a.Analyze(context.Background(), c.Frames, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cv-cv1) > 1e-9 {
		t.Errorf("analysis differs across worker counts: %v vs %v", cv, cv1)
	}
}

func TestEigenAnalyzeErrors(t *testing.T) {
	a, err := NewEigenAnalyzer(DefaultEigenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Analyze(context.Background(), nil, 1); err == nil {
		t.Error("empty frame list should fail")
	}
	oneAtom := []chunk.Frame{{Positions: make([][3]float32, 1)}}
	if _, err := a.Analyze(context.Background(), oneAtom, 1); err == nil {
		t.Error("single-atom frame should fail")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := chunk.Synthetic(chunk.ID{}, 1, 50, 5)
	if _, err := a.Analyze(ctx, c.Frames, 1); err == nil {
		t.Error("cancelled analysis should fail")
	}
}

func TestEigenSensitivityToStructure(t *testing.T) {
	// Atoms packed together produce a larger dominant eigenvalue than
	// atoms spread apart (proximity kernel is larger): the CV responds to
	// molecular structure, which is its purpose.
	a, err := NewEigenAnalyzer(DefaultEigenConfig())
	if err != nil {
		t.Fatal(err)
	}
	tight := chunk.Frame{Positions: make([][3]float32, 100)}
	spread := chunk.Frame{Positions: make([][3]float32, 100)}
	for i := range tight.Positions {
		tight.Positions[i] = [3]float32{float32(i) * 0.01, 0, 0}
		spread.Positions[i] = [3]float32{float32(i) * 10, 0, 0}
	}
	cvTight, err := a.Analyze(context.Background(), []chunk.Frame{tight}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cvSpread, err := a.Analyze(context.Background(), []chunk.Frame{spread}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cvTight <= cvSpread {
		t.Errorf("tight structure CV (%v) should exceed spread CV (%v)", cvTight, cvSpread)
	}
}

func TestParallelForCoversAllIndexes(t *testing.T) {
	for _, cores := range []int{1, 2, 3, 7, 16} {
		n := 23
		hits := make([]int32, n)
		parallelFor(n, cores, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("cores=%d: index %d hit %d times", cores, i, h)
			}
		}
	}
	// n = 0 must be a no-op.
	parallelFor(0, 4, func(i int) { t.Fatal("should not run") })
}

// useCellsConfig returns an LJ config whose box admits a cell list
// (box/cutoff >= 3).
func useCellsConfig() LJConfig {
	c := DefaultLJConfig()
	c.Box = 9.0
	c.Cutoff = 2.5
	return c
}

func TestCellListActivation(t *testing.T) {
	s, err := NewLJSimulator(useCellsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.cells == nil {
		t.Fatal("large box should activate the cell list")
	}
	small := DefaultLJConfig()
	small.Box = 5
	small.Cutoff = 2.4
	s2, err := NewLJSimulator(small)
	if err != nil {
		t.Fatal(err)
	}
	if s2.cells != nil {
		t.Fatal("box with fewer than 3 cells per side should fall back to all-pairs")
	}
}

func TestCellListMatchesAllPairsBitExactly(t *testing.T) {
	cfg := useCellsConfig()
	withCells, err := NewLJSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	allPairs, err := NewLJSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	allPairs.cells = nil
	allPairs.computeForces(1) // recompute initial forces without cells
	ctx := context.Background()
	fa, err := withCells.Advance(ctx, 40, 4)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := allPairs.Advance(ctx, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fa, fb) {
		t.Fatal("cell-list trajectory diverges from the all-pairs trajectory")
	}
}

func TestCellListCoversAllPartners(t *testing.T) {
	// Every in-cutoff pair must appear in the neighbour stencil.
	cfg := useCellsConfig()
	s, err := NewLJSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Advance(context.Background(), 20, 2); err != nil {
		t.Fatal(err)
	}
	s.cells.rebuild(s.pos)
	rc2 := cfg.Cutoff * cfg.Cutoff
	var buf []int32
	for i := range s.pos {
		buf = buf[:0]
		buf = s.cells.neighborsInto(s.pos[i], buf)
		seen := make(map[int32]bool, len(buf))
		for _, j := range buf {
			seen[j] = true
		}
		for j := range s.pos {
			if j == i {
				continue
			}
			r2 := 0.0
			for d := 0; d < 3; d++ {
				dd := s.pos[i][d] - s.pos[j][d]
				dd -= cfg.Box * math.Round(dd/cfg.Box)
				r2 += dd * dd
			}
			if r2 < rc2 && !seen[int32(j)] {
				t.Fatalf("atom %d: in-cutoff partner %d missing from stencil", i, j)
			}
		}
	}
}

func TestCellListEnergyConservation(t *testing.T) {
	s, err := NewLJSimulator(useCellsConfig())
	if err != nil {
		t.Fatal(err)
	}
	k0, p0 := s.Energies()
	if _, err := s.Advance(context.Background(), 200, 4); err != nil {
		t.Fatal(err)
	}
	k1, p1 := s.Energies()
	if math.Abs((k1+p1)-(k0+p0)) > 0.05*(math.Abs(k0+p0)+k0) {
		t.Errorf("energy drift with cell lists: %v -> %v", k0+p0, k1+p1)
	}
}
