// Package kernels provides the computational payloads of the ensemble
// components, in two coupled forms:
//
//   - calibrated cost profiles (cluster.Profile) that drive the simulated
//     backend — an MD-simulation proxy standing in for GROMACS and a
//     memory-intensive analysis proxy standing in for the bipartite
//     eigenvalue analysis of Johnston et al. (the paper's reference [16]);
//   - real implementations for the real-execution backend — a Lennard-Jones
//     molecular-dynamics engine and a power-iteration largest-eigenvalue
//     analysis over the bipartite contact matrix of each frame.
//
// The profiles are calibrated to the scales of the paper's Section 2.2
// (simulation step ~10 s on 16 cores with stride 800; analysis step under
// the simulation step once it has 8 cores, Figure 7).
package kernels

import (
	"context"

	"ensemblekit/internal/chunk"
)

// Simulator produces frames, stride MD steps at a time — the real-backend
// counterpart of the paper's GROMACS component.
type Simulator interface {
	// Advance integrates `steps` MD steps using up to `cores` worker
	// goroutines and returns the frame at the end of the window.
	Advance(ctx context.Context, steps, cores int) (chunk.Frame, error)
}

// Analyzer consumes frames and produces a scalar collective variable —
// the real-backend counterpart of the paper's eigenvalue analysis.
type Analyzer interface {
	// Analyze computes the collective variable of the frames using up to
	// `cores` worker goroutines.
	Analyze(ctx context.Context, frames []chunk.Frame, cores int) (float64, error)
}
