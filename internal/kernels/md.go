package kernels

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"ensemblekit/internal/chunk"
)

// LJConfig parameterizes the Lennard-Jones molecular-dynamics engine used
// by the real-execution backend. Reduced units throughout (sigma = 1,
// epsilon = 1, mass = 1).
type LJConfig struct {
	// Atoms is the number of particles.
	Atoms int
	// Box is the cubic periodic box edge length.
	Box float64
	// Cutoff is the interaction cutoff radius.
	Cutoff float64
	// Dt is the integration timestep.
	Dt float64
	// Temperature sets the initial velocity distribution.
	Temperature float64
	// Seed makes initialization deterministic.
	Seed int64
}

// DefaultLJConfig returns a small liquid-like system suitable for tests
// and examples: fast enough to integrate thousands of steps in a test.
func DefaultLJConfig() LJConfig {
	return LJConfig{
		Atoms:       400,
		Box:         8.0,
		Cutoff:      2.5,
		Dt:          0.002,
		Temperature: 0.8,
		Seed:        1,
	}
}

// Validate checks the configuration.
func (c LJConfig) Validate() error {
	switch {
	case c.Atoms <= 1:
		return errors.New("kernels: LJ needs at least 2 atoms")
	case c.Box <= 0:
		return errors.New("kernels: LJ box must be positive")
	case c.Cutoff <= 0 || c.Cutoff > c.Box/2:
		return fmt.Errorf("kernels: LJ cutoff must be in (0, box/2]; got %v with box %v", c.Cutoff, c.Box)
	case c.Dt <= 0:
		return errors.New("kernels: LJ timestep must be positive")
	case c.Temperature < 0:
		return errors.New("kernels: LJ temperature must be non-negative")
	}
	return nil
}

// LJSimulator is a velocity-Verlet Lennard-Jones integrator with periodic
// boundaries. Force evaluation parallelizes over atoms; each atom
// accumulates its own force sum, so results are bit-identical regardless
// of the worker count.
type LJSimulator struct {
	cfg   LJConfig
	pos   [][3]float64
	vel   [][3]float64
	frc   [][3]float64
	cells *cellList // nil: all-pairs fallback for small boxes
	step  int64
}

var _ Simulator = (*LJSimulator)(nil)

// NewLJSimulator initializes atoms on a cubic lattice with Maxwell-ish
// velocities (deterministic for a fixed seed).
func NewLJSimulator(cfg LJConfig) (*LJSimulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &LJSimulator{
		cfg:   cfg,
		pos:   make([][3]float64, cfg.Atoms),
		vel:   make([][3]float64, cfg.Atoms),
		frc:   make([][3]float64, cfg.Atoms),
		cells: newCellList(cfg.Box, cfg.Cutoff, cfg.Atoms),
	}
	// Lattice placement avoids initial overlaps.
	perSide := int(math.Ceil(math.Cbrt(float64(cfg.Atoms))))
	spacing := cfg.Box / float64(perSide)
	rng := rand.New(rand.NewSource(cfg.Seed))
	i := 0
	for x := 0; x < perSide && i < cfg.Atoms; x++ {
		for y := 0; y < perSide && i < cfg.Atoms; y++ {
			for z := 0; z < perSide && i < cfg.Atoms; z++ {
				s.pos[i] = [3]float64{
					(float64(x) + 0.5) * spacing,
					(float64(y) + 0.5) * spacing,
					(float64(z) + 0.5) * spacing,
				}
				i++
			}
		}
	}
	scale := math.Sqrt(cfg.Temperature)
	var mean [3]float64
	for i := range s.vel {
		for d := 0; d < 3; d++ {
			s.vel[i][d] = rng.NormFloat64() * scale
			mean[d] += s.vel[i][d]
		}
	}
	// Remove center-of-mass drift.
	for d := 0; d < 3; d++ {
		mean[d] /= float64(cfg.Atoms)
	}
	for i := range s.vel {
		for d := 0; d < 3; d++ {
			s.vel[i][d] -= mean[d]
		}
	}
	s.computeForces(1)
	return s, nil
}

// Step returns the current MD step counter.
func (s *LJSimulator) Step() int64 { return s.step }

// Advance implements Simulator: velocity-Verlet for `steps` steps using up
// to `cores` goroutines for force evaluation, returning the final frame.
func (s *LJSimulator) Advance(ctx context.Context, steps, cores int) (chunk.Frame, error) {
	if steps <= 0 {
		return s.Frame(), nil
	}
	if cores < 1 {
		cores = 1
	}
	dt := s.cfg.Dt
	for k := 0; k < steps; k++ {
		if err := ctx.Err(); err != nil {
			return chunk.Frame{}, fmt.Errorf("kernels: LJ advance cancelled at step %d: %w", s.step, err)
		}
		// First half-kick and drift.
		for i := range s.pos {
			for d := 0; d < 3; d++ {
				s.vel[i][d] += 0.5 * dt * s.frc[i][d]
				s.pos[i][d] += dt * s.vel[i][d]
				// Wrap into the periodic box.
				s.pos[i][d] -= s.cfg.Box * math.Floor(s.pos[i][d]/s.cfg.Box)
			}
		}
		s.computeForces(cores)
		// Second half-kick.
		for i := range s.vel {
			for d := 0; d < 3; d++ {
				s.vel[i][d] += 0.5 * dt * s.frc[i][d]
			}
		}
		s.step++
	}
	return s.Frame(), nil
}

// Frame snapshots the current positions.
func (s *LJSimulator) Frame() chunk.Frame {
	f := chunk.Frame{
		Step: s.step,
		Time: float64(s.step) * s.cfg.Dt,
		Box: [3]float32{
			float32(s.cfg.Box), float32(s.cfg.Box), float32(s.cfg.Box),
		},
		Positions: make([][3]float32, len(s.pos)),
	}
	for i, p := range s.pos {
		f.Positions[i] = [3]float32{float32(p[0]), float32(p[1]), float32(p[2])}
	}
	return f
}

// computeForces evaluates LJ forces with minimum-image periodic
// boundaries, through the linked-cell structure when the box admits one
// and the all-pairs scan otherwise. Each worker owns a disjoint range of
// atoms and accumulates partners in ascending index order, so
// floating-point results are independent of both `cores` and the
// neighbour-search strategy.
func (s *LJSimulator) computeForces(cores int) {
	n := len(s.pos)
	if cores > n {
		cores = n
	}
	if s.cells != nil {
		s.cells.rebuild(s.pos)
	}
	var wg sync.WaitGroup
	chunkSize := (n + cores - 1) / cores
	for w := 0; w < cores; w++ {
		lo := w * chunkSize
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var buf []int32
			for i := lo; i < hi; i++ {
				if s.cells != nil {
					buf = buf[:0]
					buf = s.cells.neighborsInto(s.pos[i], buf)
					sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
					s.frc[i] = s.forceOn(i, buf)
				} else {
					s.frc[i] = s.forceOnAll(i)
				}
			}
		}(lo, hi)
	}
	wg.Wait()
}

// forceOnAll sums atom i's force over all other atoms (the O(N^2) path).
func (s *LJSimulator) forceOnAll(i int) [3]float64 {
	n := len(s.pos)
	var f [3]float64
	for j := 0; j < n; j++ {
		s.addPair(i, j, &f)
	}
	return f
}

// forceOn sums atom i's force over the sorted candidate list.
func (s *LJSimulator) forceOn(i int, candidates []int32) [3]float64 {
	var f [3]float64
	for _, j := range candidates {
		s.addPair(i, int(j), &f)
	}
	return f
}

// addPair accumulates the LJ force of partner j on atom i into f.
// Out-of-cutoff and self pairs contribute exactly nothing, which keeps
// cell-list and all-pairs summations bit-identical.
func (s *LJSimulator) addPair(i, j int, f *[3]float64) {
	if i == j {
		return
	}
	rc2 := s.cfg.Cutoff * s.cfg.Cutoff
	box := s.cfg.Box
	var dr [3]float64
	r2 := 0.0
	for d := 0; d < 3; d++ {
		dd := s.pos[i][d] - s.pos[j][d]
		dd -= box * math.Round(dd/box)
		dr[d] = dd
		r2 += dd * dd
	}
	if r2 >= rc2 || r2 == 0 {
		return
	}
	inv2 := 1 / r2
	inv6 := inv2 * inv2 * inv2
	// F = 24 eps (2 (sigma/r)^12 - (sigma/r)^6) / r^2 * dr
	coef := 24 * inv2 * inv6 * (2*inv6 - 1)
	for d := 0; d < 3; d++ {
		f[d] += coef * dr[d]
	}
}

// Energies returns the kinetic and potential energy of the current state
// (potential with the plain truncated LJ, no tail correction). Useful for
// validating the integrator.
func (s *LJSimulator) Energies() (kinetic, potential float64) {
	for i := range s.vel {
		for d := 0; d < 3; d++ {
			kinetic += 0.5 * s.vel[i][d] * s.vel[i][d]
		}
	}
	rc2 := s.cfg.Cutoff * s.cfg.Cutoff
	box := s.cfg.Box
	n := len(s.pos)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			r2 := 0.0
			for d := 0; d < 3; d++ {
				dd := s.pos[i][d] - s.pos[j][d]
				dd -= box * math.Round(dd/box)
				r2 += dd * dd
			}
			if r2 >= rc2 || r2 == 0 {
				continue
			}
			inv6 := 1 / (r2 * r2 * r2)
			potential += 4 * (inv6*inv6 - inv6)
		}
	}
	return kinetic, potential
}
