package kernels

import "math"

// cellList partitions the periodic box into cubic cells of edge >= cutoff
// so force evaluation only scans the 27 neighbouring cells of each atom:
// O(N) per step for homogeneous densities instead of the O(N^2) all-pairs
// scan. Results are bit-identical to the all-pairs path: the neighbour
// stencil covers every pair within the cutoff, the caller sorts the
// candidate list ascending before accumulating, and out-of-cutoff
// candidates contribute exactly nothing — so the floating-point summation
// order matches the all-pairs loop term for term.
type cellList struct {
	box      float64
	perSide  int     // cells per box edge
	cellEdge float64 // box / perSide
	// heads and next implement the classic linked-cell structure:
	// heads[c] is the first atom in cell c, next[i] the following atom in
	// atom i's cell (-1 terminates).
	heads []int32
	next  []int32
}

// newCellList sizes the structure for a box and cutoff. It returns nil if
// the box is too small for cells (fewer than 3 per side), in which case
// the caller falls back to the all-pairs path.
func newCellList(box, cutoff float64, atoms int) *cellList {
	perSide := int(math.Floor(box / cutoff))
	if perSide < 3 {
		return nil
	}
	c := &cellList{
		box:      box,
		perSide:  perSide,
		cellEdge: box / float64(perSide),
		heads:    make([]int32, perSide*perSide*perSide),
		next:     make([]int32, atoms),
	}
	return c
}

// cellOf maps a (wrapped) position to its cell index.
func (c *cellList) cellOf(p [3]float64) int {
	var idx [3]int
	for d := 0; d < 3; d++ {
		k := int(p[d] / c.cellEdge)
		if k >= c.perSide { // p == box edge after wrap rounding
			k = c.perSide - 1
		}
		if k < 0 {
			k = 0
		}
		idx[d] = k
	}
	return (idx[0]*c.perSide+idx[1])*c.perSide + idx[2]
}

// rebuild reassigns every atom to its cell. Atoms are inserted in reverse
// order so each cell's linked list iterates in increasing atom index —
// part of the determinism contract.
func (c *cellList) rebuild(pos [][3]float64) {
	for i := range c.heads {
		c.heads[i] = -1
	}
	for i := len(pos) - 1; i >= 0; i-- {
		cell := c.cellOf(pos[i])
		c.next[i] = c.heads[cell]
		c.heads[cell] = int32(i)
	}
}

// neighborsInto appends the partner candidates of the atom at p (all atoms
// in the 27 surrounding cells) to buf, in deterministic order.
func (c *cellList) neighborsInto(p [3]float64, buf []int32) []int32 {
	var base [3]int
	for d := 0; d < 3; d++ {
		k := int(p[d] / c.cellEdge)
		if k >= c.perSide {
			k = c.perSide - 1
		}
		if k < 0 {
			k = 0
		}
		base[d] = k
	}
	for dx := -1; dx <= 1; dx++ {
		x := (base[0] + dx + c.perSide) % c.perSide
		for dy := -1; dy <= 1; dy++ {
			y := (base[1] + dy + c.perSide) % c.perSide
			for dz := -1; dz <= 1; dz++ {
				z := (base[2] + dz + c.perSide) % c.perSide
				for j := c.heads[(x*c.perSide+y)*c.perSide+z]; j >= 0; j = c.next[j] {
					buf = append(buf, j)
				}
			}
		}
	}
	return buf
}
