package placement

import (
	"fmt"

	"ensemblekit/internal/cluster"
)

// Shape describes the structure of an ensemble whose placements are to be
// enumerated: per member, how many cores the simulation and each analysis
// use.
type Shape struct {
	// SimCores per member.
	SimCores int
	// AnalysisCores per analysis; the slice length is K.
	AnalysisCores []int
	// Members is the number of ensemble members (all with the same shape,
	// as in the paper's experiments).
	Members int
}

// Validate checks the shape.
func (s Shape) Validate() error {
	if s.Members <= 0 {
		return fmt.Errorf("placement: shape needs positive members, got %d", s.Members)
	}
	if s.SimCores <= 0 {
		return fmt.Errorf("placement: shape needs positive sim cores, got %d", s.SimCores)
	}
	if len(s.AnalysisCores) == 0 {
		return fmt.Errorf("placement: shape needs at least one analysis")
	}
	for j, c := range s.AnalysisCores {
		if c <= 0 {
			return fmt.Errorf("placement: analysis %d has non-positive cores %d", j, c)
		}
	}
	return nil
}

// Enumerate generates every valid single-node-per-component placement of
// the shape onto at most maxNodes nodes of the spec, deduplicated up to
// node relabeling. The result is deterministic (lexicographic assignment
// order).
//
// The search space is (maxNodes)^(components); callers should keep member
// and node counts small (the paper's experiments use 2 members and at most
// 3 nodes, well within range).
func Enumerate(spec cluster.Spec, shape Shape, maxNodes int) ([]Placement, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if maxNodes <= 0 || maxNodes > spec.Nodes {
		maxNodes = spec.Nodes
	}
	componentsPerMember := 1 + len(shape.AnalysisCores)
	total := shape.Members * componentsPerMember
	assignment := make([]int, total)
	var out []Placement
	seen := make(map[string]bool)

	var rec func(pos int)
	rec = func(pos int) {
		if pos == total {
			p := shapeToPlacement(shape, assignment)
			if p.Validate(spec) != nil {
				return
			}
			key := p.Key()
			if seen[key] {
				return
			}
			seen[key] = true
			c := p.Canonical()
			c.Name = fmt.Sprintf("P%d", len(out)+1)
			out = append(out, c)
			return
		}
		for n := 0; n < maxNodes; n++ {
			assignment[pos] = n
			rec(pos + 1)
		}
	}
	rec(0)
	return out, nil
}

// shapeToPlacement materializes an assignment vector into a placement.
func shapeToPlacement(shape Shape, assignment []int) Placement {
	componentsPerMember := 1 + len(shape.AnalysisCores)
	p := Placement{Members: make([]Member, shape.Members)}
	for i := 0; i < shape.Members; i++ {
		base := i * componentsPerMember
		m := Member{
			Simulation: Component{Nodes: []int{assignment[base]}, Cores: shape.SimCores},
		}
		for j, c := range shape.AnalysisCores {
			m.Analyses = append(m.Analyses, Component{
				Nodes: []int{assignment[base+1+j]},
				Cores: c,
			})
		}
		p.Members[i] = m
	}
	return p
}
