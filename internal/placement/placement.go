// Package placement represents workflow-ensemble component placements: the
// mapping of each member's simulation and analyses to node indexes within
// the allocation (Tables 2 and 4 of the paper). It provides the set
// arithmetic behind the paper's notation — s_i, a_i^j, c_i, d_i, M
// (Table 3) — plus validation against a hardware spec, canonicalization,
// and exhaustive enumeration for placement search.
package placement

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"ensemblekit/internal/cluster"
)

// Component is the placement of one ensemble component: the set of node
// indexes it occupies and its core count. In the paper's experiments every
// component fits on a single node, but the indicator definitions allow
// sets, so sets are supported throughout.
type Component struct {
	// Nodes is the set of node indexes (s_i for a simulation, a_i^j for an
	// analysis). Order and duplicates are ignored.
	Nodes []int `json:"nodes"`
	// Cores is the total number of cores used (cs_i or ca_i^j).
	Cores int `json:"cores"`
}

// NodeSet returns the deduplicated, sorted node set.
func (c Component) NodeSet() []int {
	seen := make(map[int]bool, len(c.Nodes))
	var out []int
	for _, n := range c.Nodes {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

// Member is the placement of one ensemble member EM_i: one simulation and
// K_i analyses.
type Member struct {
	Simulation Component   `json:"simulation"`
	Analyses   []Component `json:"analyses"`
}

// K returns the number of couplings (analyses) in the member.
func (m Member) K() int { return len(m.Analyses) }

// Cores returns c_i: the total number of cores used by all components of
// the member.
func (m Member) Cores() int {
	c := m.Simulation.Cores
	for _, a := range m.Analyses {
		c += a.Cores
	}
	return c
}

// Nodes returns d_i's underlying set: s_i union of all a_i^j.
func (m Member) Nodes() []int {
	seen := make(map[int]bool)
	for _, n := range m.Simulation.NodeSet() {
		seen[n] = true
	}
	for _, a := range m.Analyses {
		for _, n := range a.NodeSet() {
			seen[n] = true
		}
	}
	out := make([]int, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// NodeCount returns d_i = |s_i ∪ ⋃_j a_i^j|.
func (m Member) NodeCount() int { return len(m.Nodes()) }

// CouplingUnionSize returns |s_i ∪ a_i^j| for analysis j — the denominator
// of the paper's placement indicator (Equation 6).
func (m Member) CouplingUnionSize(j int) (int, error) {
	if j < 0 || j >= len(m.Analyses) {
		return 0, fmt.Errorf("placement: analysis index %d out of range [0,%d)", j, len(m.Analyses))
	}
	seen := make(map[int]bool)
	for _, n := range m.Simulation.NodeSet() {
		seen[n] = true
	}
	for _, n := range m.Analyses[j].NodeSet() {
		seen[n] = true
	}
	return len(seen), nil
}

// Placement is a full workflow-ensemble configuration: where every
// component of every member runs.
type Placement struct {
	// Name labels the configuration (e.g. "C1.5").
	Name    string   `json:"name"`
	Members []Member `json:"members"`
}

// N returns the number of ensemble members.
func (p Placement) N() int { return len(p.Members) }

// UsedNodes returns the set of node indexes used by the whole ensemble.
func (p Placement) UsedNodes() []int {
	seen := make(map[int]bool)
	for _, m := range p.Members {
		for _, n := range m.Nodes() {
			seen[n] = true
		}
	}
	out := make([]int, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// M returns the paper's M: the number of nodes used by the workflow
// ensemble.
func (p Placement) M() int { return len(p.UsedNodes()) }

// Validate checks the placement against a hardware spec: node indexes in
// range, positive core counts, single-node components not split beyond
// their node capacity, and per-node aggregate core demand within capacity.
func (p Placement) Validate(spec cluster.Spec) error {
	if len(p.Members) == 0 {
		return errors.New("placement: no members")
	}
	coresPerNode := make(map[int]int)
	checkComponent := func(label string, c Component) error {
		ns := c.NodeSet()
		if len(ns) == 0 {
			return fmt.Errorf("placement: %s has no nodes", label)
		}
		if c.Cores <= 0 {
			return fmt.Errorf("placement: %s has %d cores, want positive", label, c.Cores)
		}
		for _, n := range ns {
			if n < 0 || n >= spec.Nodes {
				return fmt.Errorf("placement: %s uses node %d outside [0,%d)", label, n, spec.Nodes)
			}
		}
		// Cores are spread evenly across the component's nodes.
		per := c.Cores / len(ns)
		rem := c.Cores % len(ns)
		for i, n := range ns {
			add := per
			if i < rem {
				add++
			}
			coresPerNode[n] += add
		}
		return nil
	}
	for i, m := range p.Members {
		if err := checkComponent(fmt.Sprintf("member %d simulation", i), m.Simulation); err != nil {
			return err
		}
		if len(m.Analyses) == 0 {
			return fmt.Errorf("placement: member %d has no analyses (a coupling requires at least one)", i)
		}
		for j, a := range m.Analyses {
			if err := checkComponent(fmt.Sprintf("member %d analysis %d", i, j), a); err != nil {
				return err
			}
		}
	}
	for n, c := range coresPerNode {
		if c > spec.CoresPerNode {
			return fmt.Errorf("placement %q: node %d oversubscribed: %d cores > capacity %d",
				p.Name, n, c, spec.CoresPerNode)
		}
	}
	return nil
}

// Canonical returns a copy with nodes relabeled in first-use order
// (member by member, simulation before analyses) so that placements that
// differ only by node naming compare equal.
func (p Placement) Canonical() Placement {
	relabel := make(map[int]int)
	next := 0
	mapNode := func(n int) int {
		if v, ok := relabel[n]; ok {
			return v
		}
		relabel[n] = next
		next++
		return relabel[n]
	}
	out := Placement{Name: p.Name, Members: make([]Member, len(p.Members))}
	for i, m := range p.Members {
		nm := Member{Simulation: Component{Cores: m.Simulation.Cores}}
		for _, n := range m.Simulation.NodeSet() {
			nm.Simulation.Nodes = append(nm.Simulation.Nodes, mapNode(n))
		}
		for _, a := range m.Analyses {
			na := Component{Cores: a.Cores}
			for _, n := range a.NodeSet() {
				na.Nodes = append(na.Nodes, mapNode(n))
			}
			nm.Analyses = append(nm.Analyses, na)
		}
		out.Members[i] = nm
	}
	return out
}

// Key returns a canonical string identity for deduplication.
func (p Placement) Key() string {
	c := p.Canonical()
	var b strings.Builder
	for _, m := range c.Members {
		fmt.Fprintf(&b, "s%v@%d", m.Simulation.Nodes, m.Simulation.Cores)
		for _, a := range m.Analyses {
			fmt.Fprintf(&b, "|a%v@%d", a.Nodes, a.Cores)
		}
		b.WriteByte(';')
	}
	return b.String()
}

// String renders the placement in the paper's Table 2/4 style.
func (p Placement) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (nodes=%d, members=%d):", p.Name, p.M(), p.N())
	for i, m := range p.Members {
		fmt.Fprintf(&b, " EM%d{sim@%v", i+1, m.Simulation.NodeSet())
		for j, a := range m.Analyses {
			fmt.Fprintf(&b, " ana%d@%v", j+1, a.NodeSet())
		}
		b.WriteString("}")
	}
	return b.String()
}

// WriteJSON serializes the placement.
func (p Placement) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadJSON deserializes a placement produced by WriteJSON.
func ReadJSON(r io.Reader) (Placement, error) {
	var p Placement
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return Placement{}, fmt.Errorf("placement: decoding JSON: %w", err)
	}
	return p, nil
}
