package placement

import (
	"bytes"
	"strings"
	"testing"

	"ensemblekit/internal/cluster"
)

func TestComponentNodeSet(t *testing.T) {
	c := Component{Nodes: []int{2, 0, 2, 1, 0}, Cores: 8}
	got := c.NodeSet()
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("NodeSet = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NodeSet = %v, want %v", got, want)
		}
	}
}

func TestMemberArithmetic(t *testing.T) {
	m := member2(0, 0, 2)
	if m.K() != 2 {
		t.Errorf("K = %d, want 2", m.K())
	}
	if m.Cores() != 32 {
		t.Errorf("Cores = %d, want 32 (16+8+8)", m.Cores())
	}
	if m.NodeCount() != 2 {
		t.Errorf("NodeCount = %d, want 2 (nodes 0 and 2)", m.NodeCount())
	}
	u0, err := m.CouplingUnionSize(0)
	if err != nil {
		t.Fatal(err)
	}
	if u0 != 1 {
		t.Errorf("|s ∪ a^1| = %d, want 1 (co-located)", u0)
	}
	u1, err := m.CouplingUnionSize(1)
	if err != nil {
		t.Fatal(err)
	}
	if u1 != 2 {
		t.Errorf("|s ∪ a^2| = %d, want 2", u1)
	}
	if _, err := m.CouplingUnionSize(5); err == nil {
		t.Error("out-of-range coupling index should fail")
	}
}

func TestTable2Shapes(t *testing.T) {
	spec := cluster.Cori(3)
	// Expected (nodes, members) per Table 2.
	want := map[string][2]int{
		"C_f": {2, 1}, "C_c": {1, 1},
		"C1.1": {3, 2}, "C1.2": {3, 2}, "C1.3": {3, 2},
		"C1.4": {2, 2}, "C1.5": {2, 2},
	}
	configs := ConfigsTable2()
	if len(configs) != 7 {
		t.Fatalf("Table 2 has %d configs, want 7", len(configs))
	}
	for _, p := range configs {
		w, ok := want[p.Name]
		if !ok {
			t.Fatalf("unexpected config %q", p.Name)
		}
		if p.M() != w[0] {
			t.Errorf("%s: M = %d, want %d", p.Name, p.M(), w[0])
		}
		if p.N() != w[1] {
			t.Errorf("%s: N = %d, want %d", p.Name, p.N(), w[1])
		}
		if err := p.Validate(spec); err != nil {
			t.Errorf("%s invalid: %v", p.Name, err)
		}
	}
}

func TestTable4Shapes(t *testing.T) {
	spec := cluster.Cori(3)
	want := map[string]int{
		"C2.1": 3, "C2.2": 3, "C2.3": 3, "C2.4": 3, "C2.5": 3,
		"C2.6": 2, "C2.7": 2, "C2.8": 2,
	}
	configs := ConfigsTable4()
	if len(configs) != 8 {
		t.Fatalf("Table 4 has %d configs, want 8", len(configs))
	}
	for _, p := range configs {
		if p.N() != 2 {
			t.Errorf("%s: N = %d, want 2", p.Name, p.N())
		}
		if w := want[p.Name]; p.M() != w {
			t.Errorf("%s: M = %d, want %d", p.Name, p.M(), w)
		}
		for i, m := range p.Members {
			if m.K() != 2 {
				t.Errorf("%s member %d: K = %d, want 2", p.Name, i, m.K())
			}
			if m.Cores() != 32 {
				t.Errorf("%s member %d: cores = %d, want 32", p.Name, i, m.Cores())
			}
		}
		if err := p.Validate(spec); err != nil {
			t.Errorf("%s invalid: %v", p.Name, err)
		}
	}
}

func TestPaperExampleNotation(t *testing.T) {
	// Section 4.1's worked example: C1.1 has s_1={0}, a_1^1={2}, s_2={1},
	// a_2^1={2}.
	p := C11()
	if ns := p.Members[0].Simulation.NodeSet(); len(ns) != 1 || ns[0] != 0 {
		t.Errorf("s_1 = %v, want {0}", ns)
	}
	if ns := p.Members[0].Analyses[0].NodeSet(); len(ns) != 1 || ns[0] != 2 {
		t.Errorf("a_1^1 = %v, want {2}", ns)
	}
	if ns := p.Members[1].Simulation.NodeSet(); len(ns) != 1 || ns[0] != 1 {
		t.Errorf("s_2 = %v, want {1}", ns)
	}
	if ns := p.Members[1].Analyses[0].NodeSet(); len(ns) != 1 || ns[0] != 2 {
		t.Errorf("a_2^1 = %v, want {2}", ns)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"C_f", "C_c", "C1.3", "C2.8"} {
		p, ok := ByName(name)
		if !ok || p.Name != name {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("C9.9"); ok {
		t.Error("unknown name should not resolve")
	}
}

func TestValidateRejections(t *testing.T) {
	spec := cluster.Cori(2)
	cases := []struct {
		name string
		p    Placement
	}{
		{"empty", Placement{}},
		{"no analyses", Placement{Members: []Member{{
			Simulation: Component{Nodes: []int{0}, Cores: 16},
		}}}},
		{"no nodes", Placement{Members: []Member{{
			Simulation: Component{Cores: 16},
			Analyses:   []Component{{Nodes: []int{0}, Cores: 8}},
		}}}},
		{"zero cores", Placement{Members: []Member{{
			Simulation: Component{Nodes: []int{0}, Cores: 0},
			Analyses:   []Component{{Nodes: []int{0}, Cores: 8}},
		}}}},
		{"node out of range", Placement{Members: []Member{member1(0, 7)}}},
		{"oversubscribed", Placement{Members: []Member{
			member1(0, 0), member1(0, 0), // 48 cores on node 0
		}}},
	}
	for _, c := range cases {
		if err := c.p.Validate(spec); err == nil {
			t.Errorf("%s: invalid placement accepted", c.name)
		}
	}
}

func TestMultiNodeComponentCoreSpreading(t *testing.T) {
	// A 40-core component across 2 nodes uses 20 cores per node: fits on
	// 32-core nodes even though 40 > 32.
	spec := cluster.Cori(2)
	p := Placement{Members: []Member{{
		Simulation: Component{Nodes: []int{0, 1}, Cores: 40},
		Analyses:   []Component{{Nodes: []int{0}, Cores: 8}},
	}}}
	if err := p.Validate(spec); err != nil {
		t.Errorf("spread component should fit: %v", err)
	}
	// 60 cores over 2 nodes = 30+8 on node 0: still fits; 64 does not.
	p.Members[0].Simulation.Cores = 52
	if err := p.Validate(spec); err == nil {
		t.Error("26+8 on node 0 fits, but 52 cores -> 26 per node; make sure capacity math runs")
	}
}

func TestCanonicalAndKey(t *testing.T) {
	// C1.5 with nodes relabeled (1,1),(0,0) is the same placement.
	a := Placement{Name: "x", Members: []Member{member1(0, 0), member1(1, 1)}}
	b := Placement{Name: "y", Members: []Member{member1(1, 1), member1(0, 0)}}
	if a.Key() != b.Key() {
		t.Errorf("relabeled placements should share a key:\n%s\n%s", a.Key(), b.Key())
	}
	// C1.4 and C1.5 differ.
	if C14().Key() == C15().Key() {
		t.Error("C1.4 and C1.5 must have distinct keys")
	}
}

func TestStringRendering(t *testing.T) {
	s := C15().String()
	for _, want := range []string{"C1.5", "members=2", "EM1", "sim@[0]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	orig := C13()
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key() != orig.Key() || got.Name != orig.Name {
		t.Errorf("round trip changed placement: %v vs %v", got, orig)
	}
	if _, err := ReadJSON(strings.NewReader("nope")); err == nil {
		t.Error("malformed JSON should fail")
	}
}

func TestEnumerateSmall(t *testing.T) {
	spec := cluster.Cori(2)
	shape := Shape{SimCores: 16, AnalysisCores: []int{8}, Members: 1}
	got, err := Enumerate(spec, shape, 2)
	if err != nil {
		t.Fatal(err)
	}
	// One member, sim+ana on up to 2 nodes: co-located or split — exactly
	// 2 canonical placements.
	if len(got) != 2 {
		t.Fatalf("enumerated %d placements, want 2: %v", len(got), got)
	}
	for _, p := range got {
		if err := p.Validate(spec); err != nil {
			t.Errorf("enumerated placement invalid: %v", err)
		}
	}
}

func TestEnumerateTwoMembers(t *testing.T) {
	spec := cluster.Cori(3)
	shape := Shape{SimCores: 16, AnalysisCores: []int{8}, Members: 2}
	got, err := Enumerate(spec, shape, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no placements enumerated")
	}
	// The canonical forms of C1.1-C1.5 must all appear.
	keys := make(map[string]bool, len(got))
	for _, p := range got {
		keys[p.Key()] = true
	}
	for _, want := range ConfigsTable2TwoMember() {
		if !keys[want.Key()] {
			t.Errorf("enumeration missing configuration %s", want.Name)
		}
	}
	// No duplicates up to relabeling.
	if len(keys) != len(got) {
		t.Errorf("enumeration contains duplicates: %d keys for %d placements", len(keys), len(got))
	}
	// Oversubscribed placements must be absent (two sims + two anas = 48
	// cores cannot share one node).
	for _, p := range got {
		if err := p.Validate(spec); err != nil {
			t.Errorf("invalid placement enumerated: %v", err)
		}
	}
}

func TestEnumerateValidatesShape(t *testing.T) {
	spec := cluster.Cori(2)
	bad := []Shape{
		{SimCores: 16, AnalysisCores: []int{8}, Members: 0},
		{SimCores: 0, AnalysisCores: []int{8}, Members: 1},
		{SimCores: 16, Members: 1},
		{SimCores: 16, AnalysisCores: []int{0}, Members: 1},
	}
	for i, s := range bad {
		if _, err := Enumerate(spec, s, 2); err == nil {
			t.Errorf("case %d: invalid shape accepted", i)
		}
	}
}
