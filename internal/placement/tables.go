package placement

// This file encodes the paper's experimental configurations verbatim:
// Table 2 (one analysis per simulation) and Table 4 (two analyses per
// simulation). Every simulation uses 16 cores and every analysis 8 cores,
// per Section 2.2 and the Section 3.4 heuristic.

// Core counts of the paper's components.
const (
	// SimCores is the per-simulation core count (Section 2.2).
	SimCores = 16
	// AnalysisCores is the per-analysis core count chosen by the paper's
	// heuristic (Section 3.4, Figure 7).
	AnalysisCores = 8
)

// member1 builds a member with one analysis.
func member1(simNode, anaNode int) Member {
	return Member{
		Simulation: Component{Nodes: []int{simNode}, Cores: SimCores},
		Analyses:   []Component{{Nodes: []int{anaNode}, Cores: AnalysisCores}},
	}
}

// member2 builds a member with two analyses.
func member2(simNode, ana1Node, ana2Node int) Member {
	return Member{
		Simulation: Component{Nodes: []int{simNode}, Cores: SimCores},
		Analyses: []Component{
			{Nodes: []int{ana1Node}, Cores: AnalysisCores},
			{Nodes: []int{ana2Node}, Cores: AnalysisCores},
		},
	}
}

// Cf is the co-location-free elementary configuration: one member with the
// simulation and the analysis on separate nodes (Table 2).
func Cf() Placement {
	return Placement{Name: "C_f", Members: []Member{member1(0, 1)}}
}

// Cc is the co-located elementary configuration: one member with the
// simulation and the analysis sharing a node (Table 2).
func Cc() Placement {
	return Placement{Name: "C_c", Members: []Member{member1(0, 0)}}
}

// C11 places the two analyses together and each simulation on a dedicated
// node (Table 2, C1.1).
func C11() Placement {
	return Placement{Name: "C1.1", Members: []Member{member1(0, 2), member1(1, 2)}}
}

// C12 places the two simulations together and each analysis on a dedicated
// node (Table 2, C1.2).
func C12() Placement {
	return Placement{Name: "C1.2", Members: []Member{member1(0, 1), member1(0, 2)}}
}

// C13 co-locates the first member's coupling and spreads the second
// (Table 2, C1.3).
func C13() Placement {
	return Placement{Name: "C1.3", Members: []Member{member1(0, 0), member1(1, 2)}}
}

// C14 shares one node between the simulations and another between the
// analyses (Table 2, C1.4).
func C14() Placement {
	return Placement{Name: "C1.4", Members: []Member{member1(0, 1), member1(0, 1)}}
}

// C15 co-locates each simulation with its own analysis (Table 2, C1.5) —
// the configuration the paper finds best.
func C15() Placement {
	return Placement{Name: "C1.5", Members: []Member{member1(0, 0), member1(1, 1)}}
}

// ConfigsTable2 returns the seven configurations of Table 2 in paper
// order.
func ConfigsTable2() []Placement {
	return []Placement{Cf(), Cc(), C11(), C12(), C13(), C14(), C15()}
}

// ConfigsTable2TwoMember returns only the two-member configurations
// C1.1-C1.5 (the set used for Figure 8).
func ConfigsTable2TwoMember() []Placement {
	return []Placement{C11(), C12(), C13(), C14(), C15()}
}

// ConfigsTable4 returns the eight configurations of Table 4 (two members,
// two analyses per simulation — the set used for Figure 9).
func ConfigsTable4() []Placement {
	return []Placement{
		{Name: "C2.1", Members: []Member{member2(0, 2, 2), member2(1, 2, 2)}},
		{Name: "C2.2", Members: []Member{member2(0, 1, 1), member2(0, 2, 2)}},
		{Name: "C2.3", Members: []Member{member2(0, 1, 2), member2(0, 1, 2)}},
		{Name: "C2.4", Members: []Member{member2(0, 0, 2), member2(1, 1, 2)}},
		{Name: "C2.5", Members: []Member{member2(0, 1, 2), member2(1, 0, 2)}},
		{Name: "C2.6", Members: []Member{member2(0, 1, 1), member2(0, 1, 1)}},
		{Name: "C2.7", Members: []Member{member2(0, 0, 1), member2(1, 0, 1)}},
		{Name: "C2.8", Members: []Member{member2(0, 0, 0), member2(1, 1, 1)}},
	}
}

// ByName looks up a built-in configuration (Table 2 or Table 4) by its
// paper name, e.g. "C1.5".
func ByName(name string) (Placement, bool) {
	for _, p := range ConfigsTable2() {
		if p.Name == name {
			return p, true
		}
	}
	for _, p := range ConfigsTable4() {
		if p.Name == name {
			return p, true
		}
	}
	return Placement{}, false
}
