// Package workload generates synthetic workflow-ensemble specifications
// and placements: seeded-random ensembles for property tests, scheduler
// stress tests, and benchmark sweeps beyond the paper's two-member
// experiments.
package workload

import (
	"fmt"
	"math/rand"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/kernels"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/runtime"
)

// GenOptions bounds the random generator.
type GenOptions struct {
	// Members is the number of ensemble members.
	Members int
	// MinAnalyses and MaxAnalyses bound K per member.
	MinAnalyses, MaxAnalyses int
	// StrideMin and StrideMax bound each member's simulation stride.
	StrideMin, StrideMax int
	// AnalysisScaleMin and AnalysisScaleMax bound the per-analysis cost
	// scale relative to the calibrated profile.
	AnalysisScaleMin, AnalysisScaleMax float64
	// Steps is the in situ step count.
	Steps int
	// Seed makes generation deterministic.
	Seed int64
}

// Defaults fills zero fields with paper-flavoured values.
func (o GenOptions) Defaults() GenOptions {
	if o.Members <= 0 {
		o.Members = 2
	}
	if o.MinAnalyses <= 0 {
		o.MinAnalyses = 1
	}
	if o.MaxAnalyses < o.MinAnalyses {
		o.MaxAnalyses = o.MinAnalyses
	}
	if o.StrideMin <= 0 {
		o.StrideMin = kernels.ReferenceStride
	}
	if o.StrideMax < o.StrideMin {
		o.StrideMax = o.StrideMin
	}
	if o.AnalysisScaleMin <= 0 {
		o.AnalysisScaleMin = 1
	}
	if o.AnalysisScaleMax < o.AnalysisScaleMin {
		o.AnalysisScaleMax = o.AnalysisScaleMin
	}
	if o.Steps <= 0 {
		o.Steps = 10
	}
	return o
}

// Random generates an ensemble spec within the option bounds. Members may
// differ in stride (input data differences) and analysis cost (distinct
// algorithms), matching the paper's description of workflow ensembles as
// structurally similar workflows with differing task sizes.
func Random(opts GenOptions) runtime.EnsembleSpec {
	opts = opts.Defaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	es := runtime.EnsembleSpec{
		Name:  fmt.Sprintf("random-%d", opts.Seed),
		Steps: opts.Steps,
	}
	for i := 0; i < opts.Members; i++ {
		stride := opts.StrideMin
		if opts.StrideMax > opts.StrideMin {
			stride += rng.Intn(opts.StrideMax - opts.StrideMin + 1)
		}
		m := runtime.MemberSpec{Sim: kernels.MDProfile(stride)}
		k := opts.MinAnalyses
		if opts.MaxAnalyses > opts.MinAnalyses {
			k += rng.Intn(opts.MaxAnalyses - opts.MinAnalyses + 1)
		}
		for j := 0; j < k; j++ {
			scale := opts.AnalysisScaleMin +
				rng.Float64()*(opts.AnalysisScaleMax-opts.AnalysisScaleMin)
			m.Analyses = append(m.Analyses, kernels.ScaledAnalysisProfile(scale))
		}
		es.Members = append(es.Members, m)
	}
	return es
}

// RandomPlacement produces a valid random placement for an ensemble spec
// on the given machine: every component lands on a random node with
// capacity, simulations first. It returns an error if the ensemble does
// not fit.
func RandomPlacement(spec cluster.Spec, es runtime.EnsembleSpec, seed int64) (placement.Placement, error) {
	rng := rand.New(rand.NewSource(seed))
	free := make([]int, spec.Nodes)
	for i := range free {
		free[i] = spec.CoresPerNode
	}
	pick := func(cores int) (int, error) {
		// Random start, first fit scanning forward: uniform-ish and
		// deterministic per seed.
		start := rng.Intn(spec.Nodes)
		for d := 0; d < spec.Nodes; d++ {
			n := (start + d) % spec.Nodes
			if free[n] >= cores {
				free[n] -= cores
				return n, nil
			}
		}
		return 0, fmt.Errorf("workload: no node with %d free cores", cores)
	}
	p := placement.Placement{Name: es.Name}
	for i, m := range es.Members {
		simCores := placement.SimCores
		node, err := pick(simCores)
		if err != nil {
			return placement.Placement{}, fmt.Errorf("workload: member %d simulation: %w", i, err)
		}
		pm := placement.Member{
			Simulation: placement.Component{Nodes: []int{node}, Cores: simCores},
		}
		for j := range m.Analyses {
			anode, err := pick(placement.AnalysisCores)
			if err != nil {
				return placement.Placement{}, fmt.Errorf("workload: member %d analysis %d: %w", i, j, err)
			}
			pm.Analyses = append(pm.Analyses, placement.Component{
				Nodes: []int{anode}, Cores: placement.AnalysisCores,
			})
		}
		p.Members = append(p.Members, pm)
	}
	if err := p.Validate(spec); err != nil {
		return placement.Placement{}, err
	}
	return p, nil
}
