package workload

import (
	"ensemblekit/internal/cluster"
	"ensemblekit/internal/kernels"
	"ensemblekit/internal/runtime"
)

// The paper's introduction motivates workflow ensembles with two families
// of MD ensemble methods; these presets model their workload shapes so
// examples and benchmarks can exercise realistic ensembles beyond the
// paper's 2-member experiments.

// MultiWalker models the multiple-walker free-energy methods (the paper's
// references [11, 24]): N identical replicas ("walkers") exploring the
// same landscape, each coupled with one collective-variable analysis that
// feeds the shared bias. All members are identical — the homogeneous case
// the paper's experiments restrict to.
func MultiWalker(walkers, steps int) runtime.EnsembleSpec {
	es := runtime.EnsembleSpec{Name: "multi-walker", Steps: steps}
	for i := 0; i < walkers; i++ {
		es.Members = append(es.Members, runtime.MemberSpec{
			Sim:      kernels.MDProfile(kernels.ReferenceStride),
			Analyses: []cluster.Profile{kernels.AnalysisProfile()},
		})
	}
	return es
}

// GeneralizedEnsemble models generalized-ensemble sampling (references
// [10, 22]): members simulate different states with different costs
// (temperature/weight-dependent strides) and couple to two analyses — a
// cheap state-weight estimator and the full collective-variable analysis.
// This is the heterogeneous case the paper's theoretical framework
// supports but its experiments do not exercise.
func GeneralizedEnsemble(states, steps int) runtime.EnsembleSpec {
	es := runtime.EnsembleSpec{Name: "generalized-ensemble", Steps: steps}
	for i := 0; i < states; i++ {
		// Higher states run shorter strides (cheaper) but heavier
		// reweighting analyses.
		stride := kernels.ReferenceStride - i*kernels.ReferenceStride/(2*maxI(states, 2))
		scale := 1.0 + 0.15*float64(i)
		es.Members = append(es.Members, runtime.MemberSpec{
			Sim: kernels.MDProfile(stride),
			Analyses: []cluster.Profile{
				kernels.ScaledAnalysisProfile(0.3),   // state-weight estimator
				kernels.ScaledAnalysisProfile(scale), // collective variable
			},
		})
	}
	return es
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
