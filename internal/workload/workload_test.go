package workload

import (
	"testing"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/core"
	"ensemblekit/internal/runtime"
)

func TestRandomDeterministicAndBounded(t *testing.T) {
	opts := GenOptions{
		Members: 4, MinAnalyses: 1, MaxAnalyses: 3,
		StrideMin: 400, StrideMax: 1200,
		AnalysisScaleMin: 0.5, AnalysisScaleMax: 2,
		Steps: 7, Seed: 99,
	}
	a := Random(opts)
	b := Random(opts)
	if len(a.Members) != 4 || a.Steps != 7 {
		t.Fatalf("unexpected spec: %+v", a)
	}
	for i, m := range a.Members {
		if k := len(m.Analyses); k < 1 || k > 3 {
			t.Errorf("member %d: K = %d outside [1,3]", i, k)
		}
		if err := m.Sim.Validate(); err != nil {
			t.Errorf("member %d sim profile: %v", i, err)
		}
		for j, ap := range m.Analyses {
			if err := ap.Validate(); err != nil {
				t.Errorf("member %d analysis %d: %v", i, j, err)
			}
		}
		// Determinism.
		if len(b.Members[i].Analyses) != len(m.Analyses) {
			t.Error("same seed must give the same ensemble")
		}
	}
	c := Random(GenOptions{Members: 4, Seed: 100, Steps: 7, MinAnalyses: 1, MaxAnalyses: 3})
	diff := false
	for i := range c.Members {
		if len(c.Members[i].Analyses) != len(a.Members[i].Analyses) {
			diff = true
		}
	}
	_ = diff // different seeds may coincide; no assertion beyond no panic
}

func TestDefaults(t *testing.T) {
	es := Random(GenOptions{})
	if len(es.Members) != 2 {
		t.Errorf("default members = %d, want 2", len(es.Members))
	}
	if es.Steps != 10 {
		t.Errorf("default steps = %d, want 10", es.Steps)
	}
}

func TestRandomPlacementValidAndRunnable(t *testing.T) {
	spec := cluster.Cori(4)
	es := Random(GenOptions{Members: 3, MinAnalyses: 1, MaxAnalyses: 2, Steps: 4, Seed: 5})
	p, err := RandomPlacement(spec, es, 17)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(spec); err != nil {
		t.Fatalf("generated placement invalid: %v", err)
	}
	if len(p.Members) != 3 {
		t.Fatalf("placement members = %d", len(p.Members))
	}
	// The generated pair must actually execute.
	tr, err := runtime.RunSimulated(spec, p, es, runtime.SimOptions{})
	if err != nil {
		t.Fatalf("generated workload failed to run: %v", err)
	}
	if tr.Makespan() <= 0 {
		t.Error("non-positive makespan")
	}
}

func TestRandomPlacementRejectsOversizedEnsemble(t *testing.T) {
	spec := cluster.Cori(1) // 32 cores total
	es := Random(GenOptions{Members: 4, MinAnalyses: 2, MaxAnalyses: 2, Seed: 3})
	if _, err := RandomPlacement(spec, es, 1); err == nil {
		t.Error("ensemble beyond machine capacity should fail")
	}
}

func TestMultiWalkerPreset(t *testing.T) {
	es := MultiWalker(3, 6)
	if len(es.Members) != 3 || es.Steps != 6 {
		t.Fatalf("unexpected spec: %d members, %d steps", len(es.Members), es.Steps)
	}
	// Homogeneous: all members identical.
	for i, m := range es.Members {
		if len(m.Analyses) != 1 {
			t.Errorf("member %d: K = %d, want 1", i, len(m.Analyses))
		}
		if m.Sim.InstrPerStep != es.Members[0].Sim.InstrPerStep {
			t.Error("walkers should be identical")
		}
	}
	// Runnable end to end with a fully co-located placement.
	spec := cluster.Cori(3)
	p, err := RandomPlacement(spec, es, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runtime.RunSimulated(spec, p, es, runtime.SimOptions{}); err != nil {
		t.Fatalf("multi-walker ensemble failed to run: %v", err)
	}
}

func TestGeneralizedEnsemblePreset(t *testing.T) {
	es := GeneralizedEnsemble(3, 5)
	if len(es.Members) != 3 {
		t.Fatalf("members = %d", len(es.Members))
	}
	// Heterogeneous: strides decrease with the state index, analysis
	// costs increase.
	for i := 1; i < len(es.Members); i++ {
		if es.Members[i].Sim.InstrPerStep >= es.Members[i-1].Sim.InstrPerStep {
			t.Error("higher states should have cheaper simulations")
		}
		if es.Members[i].Analyses[1].InstrPerStep <= es.Members[i-1].Analyses[1].InstrPerStep {
			t.Error("higher states should have costlier CV analyses")
		}
	}
	for i, m := range es.Members {
		if len(m.Analyses) != 2 {
			t.Errorf("member %d: K = %d, want 2", i, len(m.Analyses))
		}
		if err := m.Sim.Validate(); err != nil {
			t.Errorf("member %d: %v", i, err)
		}
	}
	// The heterogeneous ensemble is the case the paper's framework
	// supports but never runs: make sure the whole pipeline handles it.
	spec := cluster.Cori(4)
	p, err := RandomPlacement(spec, es, 5)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := runtime.RunSimulated(spec, p, es, runtime.SimOptions{})
	if err != nil {
		t.Fatalf("generalized ensemble failed to run: %v", err)
	}
	if len(tr.Members) != 3 {
		t.Fatalf("trace members = %d", len(tr.Members))
	}
}

// Randomized end-to-end property: any valid placement of any generated
// workload produces a structurally valid trace whose makespan bounds
// every member makespan, with per-member step counts intact.
func TestSimulatedRandomizedProperty(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		spec := cluster.Cori(4)
		es := Random(GenOptions{
			Members: 1 + int(seed%3), MinAnalyses: 1, MaxAnalyses: 2,
			StrideMin: 200, StrideMax: 1000,
			AnalysisScaleMin: 0.5, AnalysisScaleMax: 1.5,
			Steps: 4, Seed: seed,
		})
		p, err := RandomPlacement(spec, es, seed*31)
		if err != nil {
			continue // this seed's ensemble does not fit; that is fine
		}
		tr, err := runtime.RunSimulated(spec, p, es, runtime.SimOptions{Jitter: 0.03, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: invalid trace: %v", seed, err)
		}
		ensemble := tr.Makespan()
		for i, m := range tr.Members {
			if ms := m.Makespan(); ms > ensemble+1e-9 {
				t.Fatalf("seed %d: member %d makespan %v exceeds ensemble %v", seed, i, ms, ensemble)
			}
			if len(m.Simulation.Steps) != es.Steps {
				t.Fatalf("seed %d: member %d has %d steps, want %d", seed, i, len(m.Simulation.Steps), es.Steps)
			}
			ss, err := core.FromMemberTrace(m, core.ExtractOptions{})
			if err != nil {
				t.Fatalf("seed %d: member %d: %v", seed, i, err)
			}
			if e, err := ss.Efficiency(); err != nil || e <= -1 || e > 1 {
				t.Fatalf("seed %d: member %d: E=%v err=%v", seed, i, e, err)
			}
		}
	}
}
