package chunk

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// The wire format of a serialized chunk (all little-endian):
//
//	magic   [4]byte "EKCH"
//	version uint16
//	member  int32
//	step    int32
//	producer length-prefixed string (uint16 + bytes)
//	nframes uint32
//	frames:
//	  step      int64
//	  time      float64
//	  box       [3]float32
//	  natoms    uint32
//	  positions natoms x [3]float32
//	crc32 (IEEE) of everything before it
const (
	codecVersion uint16 = 1
	maxAtoms            = 1 << 28 // sanity bound when decoding
	maxFrames           = 1 << 24
)

var magic = [4]byte{'E', 'K', 'C', 'H'}

// ErrCorrupt is wrapped into decoding errors caused by malformed or
// damaged buffers.
var ErrCorrupt = errors.New("chunk: corrupt encoding")

// EncodedSize returns the exact number of bytes Encode will produce.
func (c *Chunk) EncodedSize() int64 {
	size := int64(4 + 2 + 4 + 4) // magic, version, member, step
	size += 2 + int64(len(c.Producer))
	size += 4 // nframes
	for i := range c.Frames {
		size += 8 + 8 + 12 + 4 // step, time, box, natoms
		size += int64(len(c.Frames[i].Positions)) * 12
	}
	size += 4 // crc
	return size
}

// Encode serializes the chunk into a byte buffer — the DTL plugin's
// marshaling step (Figure 2 of the paper).
func (c *Chunk) Encode() ([]byte, error) {
	if len(c.Frames) > maxFrames {
		return nil, fmt.Errorf("chunk: too many frames: %d", len(c.Frames))
	}
	if len(c.Producer) > math.MaxUint16 {
		return nil, fmt.Errorf("chunk: producer name too long: %d bytes", len(c.Producer))
	}
	buf := bytes.NewBuffer(make([]byte, 0, c.EncodedSize()))
	buf.Write(magic[:])
	le := binary.LittleEndian
	var scratch [12]byte
	le.PutUint16(scratch[:2], codecVersion)
	buf.Write(scratch[:2])
	le.PutUint32(scratch[:4], uint32(int32(c.ID.Member)))
	buf.Write(scratch[:4])
	le.PutUint32(scratch[:4], uint32(int32(c.ID.Step)))
	buf.Write(scratch[:4])
	le.PutUint16(scratch[:2], uint16(len(c.Producer)))
	buf.Write(scratch[:2])
	buf.WriteString(c.Producer)
	le.PutUint32(scratch[:4], uint32(len(c.Frames)))
	buf.Write(scratch[:4])
	for i := range c.Frames {
		f := &c.Frames[i]
		if len(f.Positions) > maxAtoms {
			return nil, fmt.Errorf("chunk: frame %d has too many atoms: %d", i, len(f.Positions))
		}
		le.PutUint64(scratch[:8], uint64(f.Step))
		buf.Write(scratch[:8])
		le.PutUint64(scratch[:8], math.Float64bits(f.Time))
		buf.Write(scratch[:8])
		for _, b := range f.Box {
			le.PutUint32(scratch[:4], math.Float32bits(b))
			buf.Write(scratch[:4])
		}
		le.PutUint32(scratch[:4], uint32(len(f.Positions)))
		buf.Write(scratch[:4])
		for _, p := range f.Positions {
			le.PutUint32(scratch[:4], math.Float32bits(p[0]))
			le.PutUint32(scratch[4:8], math.Float32bits(p[1]))
			le.PutUint32(scratch[8:12], math.Float32bits(p[2]))
			buf.Write(scratch[:12])
		}
	}
	sum := crc32.ChecksumIEEE(buf.Bytes())
	le.PutUint32(scratch[:4], sum)
	buf.Write(scratch[:4])
	return buf.Bytes(), nil
}

// Decode reconstructs a chunk from an encoded buffer, verifying the
// checksum and structural bounds.
func Decode(data []byte) (*Chunk, error) {
	if len(data) < 4+2+4+4+2+4+4 {
		return nil, fmt.Errorf("%w: buffer too short (%d bytes)", ErrCorrupt, len(data))
	}
	le := binary.LittleEndian
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != le.Uint32(tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	r := bytes.NewReader(body)
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, m)
	}
	var version uint16
	if err := binary.Read(r, le, &version); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if version != codecVersion {
		return nil, fmt.Errorf("chunk: unsupported version %d", version)
	}
	var member, step int32
	if err := binary.Read(r, le, &member); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if err := binary.Read(r, le, &step); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var plen uint16
	if err := binary.Read(r, le, &plen); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	pname := make([]byte, plen)
	if _, err := io.ReadFull(r, pname); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var nframes uint32
	if err := binary.Read(r, le, &nframes); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if nframes > maxFrames {
		return nil, fmt.Errorf("%w: frame count %d exceeds bound", ErrCorrupt, nframes)
	}
	c := &Chunk{
		ID:       ID{Member: int(member), Step: int(step)},
		Producer: string(pname),
		Frames:   make([]Frame, nframes),
	}
	for i := range c.Frames {
		f := &c.Frames[i]
		if err := binary.Read(r, le, &f.Step); err != nil {
			return nil, fmt.Errorf("%w: frame %d: %v", ErrCorrupt, i, err)
		}
		if err := binary.Read(r, le, &f.Time); err != nil {
			return nil, fmt.Errorf("%w: frame %d: %v", ErrCorrupt, i, err)
		}
		if err := binary.Read(r, le, &f.Box); err != nil {
			return nil, fmt.Errorf("%w: frame %d: %v", ErrCorrupt, i, err)
		}
		var natoms uint32
		if err := binary.Read(r, le, &natoms); err != nil {
			return nil, fmt.Errorf("%w: frame %d: %v", ErrCorrupt, i, err)
		}
		if natoms > maxAtoms {
			return nil, fmt.Errorf("%w: frame %d atom count %d exceeds bound", ErrCorrupt, i, natoms)
		}
		if int64(natoms)*12 > int64(r.Len()) {
			return nil, fmt.Errorf("%w: frame %d truncated", ErrCorrupt, i)
		}
		f.Positions = make([][3]float32, natoms)
		raw := make([]byte, natoms*12)
		if _, err := io.ReadFull(r, raw); err != nil {
			return nil, fmt.Errorf("%w: frame %d: %v", ErrCorrupt, i, err)
		}
		for j := range f.Positions {
			off := j * 12
			f.Positions[j][0] = math.Float32frombits(le.Uint32(raw[off:]))
			f.Positions[j][1] = math.Float32frombits(le.Uint32(raw[off+4:]))
			f.Positions[j][2] = math.Float32frombits(le.Uint32(raw[off+8:]))
		}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.Len())
	}
	return c, nil
}
