package chunk

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSyntheticShape(t *testing.T) {
	c := Synthetic(ID{Member: 2, Step: 5}, 4, 100, 7)
	if c.NumFrames() != 4 {
		t.Errorf("frames = %d, want 4", c.NumFrames())
	}
	if c.TotalAtoms() != 400 {
		t.Errorf("total atoms = %d, want 400", c.TotalAtoms())
	}
	if c.ID.Member != 2 || c.ID.Step != 5 {
		t.Errorf("id = %v", c.ID)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("synthetic chunk invalid: %v", err)
	}
	if c.Frames[0].NumAtoms() != 100 {
		t.Errorf("atoms in frame = %d, want 100", c.Frames[0].NumAtoms())
	}
	// Deterministic for the same seed.
	c2 := Synthetic(ID{Member: 2, Step: 5}, 4, 100, 7)
	if !reflect.DeepEqual(c, c2) {
		t.Error("Synthetic is not deterministic for a fixed seed")
	}
}

func TestIDString(t *testing.T) {
	if got := (ID{Member: 1, Step: 9}).String(); got != "m1/s9" {
		t.Errorf("ID.String = %q", got)
	}
}

func TestValidateRejectsOutOfOrderSteps(t *testing.T) {
	c := Synthetic(ID{}, 3, 10, 1)
	c.Frames[2].Step = c.Frames[0].Step - 1
	if err := c.Validate(); err == nil {
		t.Error("out-of-order frame steps should be rejected")
	}
}

func TestValidateRejectsNaN(t *testing.T) {
	c := Synthetic(ID{}, 1, 10, 1)
	c.Frames[0].Positions[3][1] = float32(math.NaN())
	if err := c.Validate(); err == nil {
		t.Error("NaN coordinate should be rejected")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := Synthetic(ID{Member: 3, Step: 11}, 5, 250, 42)
	data, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != c.EncodedSize() {
		t.Errorf("encoded %d bytes, EncodedSize says %d", len(data), c.EncodedSize())
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Error("round trip changed the chunk")
	}
}

func TestEncodeEmptyChunk(t *testing.T) {
	c := &Chunk{ID: ID{Member: 0, Step: 0}, Producer: "p"}
	data, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumFrames() != 0 || got.Producer != "p" {
		t.Errorf("empty chunk round trip: %+v", got)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	c := Synthetic(ID{Member: 1, Step: 2}, 2, 50, 3)
	data, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte anywhere in the body: the checksum must catch it.
	for _, pos := range []int{0, 5, len(data) / 2, len(data) - 6} {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0xFF
		if _, err := Decode(mut); !errors.Is(err, ErrCorrupt) {
			t.Errorf("corruption at byte %d not detected: %v", pos, err)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	c := Synthetic(ID{}, 2, 50, 3)
	data, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 3, 10, len(data) - 1} {
		if _, err := Decode(data[:n]); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	c := Synthetic(ID{}, 1, 10, 3)
	data, _ := c.Encode()
	data[0] = 'X'
	if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic not detected: %v", err)
	}
}

func TestDecodeRejectsTrailingGarbageWithFixedChecksum(t *testing.T) {
	c := Synthetic(ID{}, 1, 10, 3)
	data, _ := c.Encode()
	// Append garbage before the checksum and recompute it so only the
	// structural trailing-bytes check can catch the damage.
	body := data[:len(data)-4]
	body = append(body, 0xAB, 0xCD)
	withSum, err := appendChecksum(body)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(withSum); err == nil {
		t.Error("trailing bytes with valid checksum accepted")
	}
}

func TestNegativeIDsRoundTrip(t *testing.T) {
	c := Synthetic(ID{Member: -1, Step: -2}, 1, 4, 9)
	data, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID.Member != -1 || got.ID.Step != -2 {
		t.Errorf("negative IDs did not survive: %v", got.ID)
	}
}

// Property: every synthetic chunk round-trips exactly.
func TestRoundTripProperty(t *testing.T) {
	prop := func(member, step int16, frames, atoms uint8, seed int64) bool {
		c := Synthetic(ID{Member: int(member), Step: int(step)},
			int(frames%6), int(atoms), seed)
		data, err := c.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(c, got)
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: EncodedSize always matches the actual encoding length.
func TestEncodedSizeProperty(t *testing.T) {
	prop := func(frames, atoms uint8, seed int64) bool {
		c := Synthetic(ID{}, int(frames%8), int(atoms), seed)
		data, err := c.Encode()
		if err != nil {
			return false
		}
		return int64(len(data)) == c.EncodedSize()
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// appendChecksum recomputes and appends the trailing CRC for a body,
// mirroring the tail of the wire format.
func appendChecksum(body []byte) ([]byte, error) {
	sum := crc32.ChecksumIEEE(body)
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], sum)
	return append(body, b[:]...), nil
}
