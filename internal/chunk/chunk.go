// Package chunk implements the paper's base data representation (Figure 2):
// the simulation's in-memory output is abstracted into a chunk, the unit
// manipulated by the whole runtime. A chunk batches the frames (atomic
// positions) produced during one stride window; the DTL plugin serializes
// chunks to byte buffers for staging, which keeps the runtime adaptable to
// any DTL implementation.
package chunk

import (
	"fmt"
	"math"
	"math/rand"
)

// Frame is one snapshot of a molecular system: atom positions plus the
// periodic box, tagged with the MD step that produced it.
type Frame struct {
	// Step is the MD integration step of the snapshot.
	Step int64
	// Time is the physical time of the snapshot in picoseconds.
	Time float64
	// Box is the periodic box edge lengths in nanometers.
	Box [3]float32
	// Positions holds the atom coordinates in nanometers.
	Positions [][3]float32
}

// NumAtoms returns the number of atoms in the frame.
func (f *Frame) NumAtoms() int { return len(f.Positions) }

// ID identifies a chunk within a workflow ensemble execution: which
// member's simulation produced it and which in situ step it belongs to.
type ID struct {
	// Member is the producing ensemble member index.
	Member int
	// Step is the in situ step index (not the MD step).
	Step int
}

// String renders the ID as member/step.
func (id ID) String() string { return fmt.Sprintf("m%d/s%d", id.Member, id.Step) }

// Chunk is the unit of data staged through the DTL.
type Chunk struct {
	// ID identifies the chunk.
	ID ID
	// Producer names the component that wrote the chunk.
	Producer string
	// Frames are the snapshots batched into this chunk.
	Frames []Frame
}

// NumFrames returns the number of frames in the chunk.
func (c *Chunk) NumFrames() int { return len(c.Frames) }

// TotalAtoms returns the total number of atom records across frames.
func (c *Chunk) TotalAtoms() int {
	n := 0
	for i := range c.Frames {
		n += len(c.Frames[i].Positions)
	}
	return n
}

// Validate checks structural invariants: frames in increasing step order
// and finite coordinates.
func (c *Chunk) Validate() error {
	var prev int64 = math.MinInt64
	for i := range c.Frames {
		f := &c.Frames[i]
		if f.Step < prev {
			return fmt.Errorf("chunk %v: frame %d step %d out of order (previous %d)", c.ID, i, f.Step, prev)
		}
		prev = f.Step
		for _, p := range f.Positions {
			for _, x := range p {
				if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
					return fmt.Errorf("chunk %v: frame %d has non-finite coordinate", c.ID, i)
				}
			}
		}
	}
	return nil
}

// Synthetic builds a deterministic chunk with the given shape, useful for
// tests and workload generation. Positions are uniform in a 10 nm box.
func Synthetic(id ID, frames, atoms int, seed int64) *Chunk {
	rng := rand.New(rand.NewSource(seed))
	c := &Chunk{ID: id, Producer: fmt.Sprintf("sim%d", id.Member)}
	c.Frames = make([]Frame, frames)
	for i := range c.Frames {
		f := &c.Frames[i]
		f.Step = int64(id.Step*frames+i) * 100
		f.Time = float64(f.Step) * 0.002 // 2 fs timestep in ps
		f.Box = [3]float32{10, 10, 10}
		f.Positions = make([][3]float32, atoms)
		for j := range f.Positions {
			f.Positions[j] = [3]float32{
				rng.Float32() * 10,
				rng.Float32() * 10,
				rng.Float32() * 10,
			}
		}
	}
	return c
}
