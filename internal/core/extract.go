package core

import (
	"errors"
	"fmt"

	"ensemblekit/internal/stats"
	"ensemblekit/internal/trace"
)

// ExtractOptions controls steady-state extraction from traces.
type ExtractOptions struct {
	// WarmupFraction is the fraction of leading steps discarded before
	// averaging (the paper notes executions reach steady state "after a
	// few warm-up steps"). Defaults to 0.1; clamped to [0, 0.9].
	WarmupFraction float64
}

func (o ExtractOptions) warmup(nSteps int) int {
	f := o.WarmupFraction
	if f == 0 {
		f = 0.1
	}
	if f < 0 {
		f = 0
	}
	if f > 0.9 {
		f = 0.9
	}
	w := int(f * float64(nSteps))
	if w >= nSteps {
		w = nSteps - 1
	}
	if w < 0 {
		w = 0
	}
	return w
}

// FromMemberTrace extracts the steady-state stage durations of a member
// from its execution trace: per-stage means over the post-warmup steps.
// This is the bridge between measurement (TAU in the paper, the runtime's
// traces here) and the analytic model.
func FromMemberTrace(m *trace.MemberTrace, opts ExtractOptions) (SteadyState, error) {
	if m == nil || m.Simulation == nil {
		return SteadyState{}, errors.New("core: member trace has no simulation")
	}
	if len(m.Analyses) == 0 {
		return SteadyState{}, errors.New("core: member trace has no analyses")
	}
	sMean, err := steadyStageMean(m.Simulation, trace.StageS, opts)
	if err != nil {
		return SteadyState{}, fmt.Errorf("core: simulation %q: %w", m.Simulation.Name, err)
	}
	wMean, err := steadyStageMean(m.Simulation, trace.StageW, opts)
	if err != nil {
		return SteadyState{}, fmt.Errorf("core: simulation %q: %w", m.Simulation.Name, err)
	}
	ss := SteadyState{S: sMean, W: wMean}
	for _, a := range m.Analyses {
		rMean, err := steadyStageMean(a, trace.StageR, opts)
		if err != nil {
			return SteadyState{}, fmt.Errorf("core: analysis %q: %w", a.Name, err)
		}
		aMean, err := steadyStageMean(a, trace.StageA, opts)
		if err != nil {
			return SteadyState{}, fmt.Errorf("core: analysis %q: %w", a.Name, err)
		}
		ss.Couplings = append(ss.Couplings, Coupling{R: rMean, A: aMean})
	}
	return ss, ss.Validate()
}

// steadyStageMean averages the post-warmup durations of one stage.
func steadyStageMean(c *trace.ComponentTrace, s trace.Stage, opts ExtractOptions) (float64, error) {
	durs := c.StageDurations(s)
	if len(durs) == 0 {
		return 0, fmt.Errorf("no recorded steps for stage %v", s)
	}
	w := opts.warmup(len(durs))
	return stats.Mean(durs[w:]), nil
}

// MeasuredIdle extracts the mean post-warmup idle stages actually observed
// in the trace: the simulation's I^S and each analysis's I^A. Comparing
// these against the model's derived idles (IdleSim, IdleAnalysis) validates
// Equation 1.
func MeasuredIdle(m *trace.MemberTrace, opts ExtractOptions) (simIdle float64, analysisIdle []float64, err error) {
	if m == nil || m.Simulation == nil {
		return 0, nil, errors.New("core: member trace has no simulation")
	}
	simIdle, err = steadyStageMean(m.Simulation, trace.StageIS, opts)
	if err != nil {
		return 0, nil, err
	}
	for _, a := range m.Analyses {
		idle, err := steadyStageMean(a, trace.StageIA, opts)
		if err != nil {
			return 0, nil, err
		}
		analysisIdle = append(analysisIdle, idle)
	}
	return simIdle, analysisIdle, nil
}

// PredictionReport compares the model's makespan estimate (Equation 2)
// against the measured member makespan.
type PredictionReport struct {
	// Predicted is n_steps × σ̄*.
	Predicted float64
	// Measured is the trace's member makespan (Table 1 definition).
	Measured float64
	// RelativeError is |predicted − measured| / measured.
	RelativeError float64
}

// ValidateModel extracts the steady state of a member trace and reports
// how well Equation 2 predicts the measured makespan. This reproduces the
// paper's implicit validation that the non-overlapped-step model captures
// real member behaviour.
func ValidateModel(m *trace.MemberTrace, opts ExtractOptions) (PredictionReport, error) {
	ss, err := FromMemberTrace(m, opts)
	if err != nil {
		return PredictionReport{}, err
	}
	n := len(m.Simulation.Steps)
	pred := ss.Makespan(n)
	meas := m.Makespan()
	rep := PredictionReport{Predicted: pred, Measured: meas}
	if meas > 0 {
		rep.RelativeError = abs(pred-meas) / meas
	}
	return rep, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
