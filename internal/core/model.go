// Package core implements the paper's in situ execution model for a single
// ensemble member (Section 3): steady-state fine-grained stages, the
// non-overlapped in situ step σ̄* (Equation 1), the makespan estimate
// (Equation 2), the computational-efficiency indicator E (Equation 3), and
// the Idle Simulation / Idle Analyzer coupling scenarios with the Equation 4
// feasibility condition.
//
// The model is backend-agnostic: it consumes either analytic stage
// durations or steady-state values extracted from execution traces
// (extract.go).
package core

import (
	"errors"
	"fmt"
	"math"
)

// Coupling holds the steady-state read and analysis stages of one coupling
// (Sim, Ana^i): R_*^i and A_*^i.
type Coupling struct {
	// R is the steady-state read stage R_*^i.
	R float64
	// A is the steady-state analysis stage A_*^i.
	A float64
}

// Busy returns R + A: the coupling's non-idle time per in situ step.
func (c Coupling) Busy() float64 { return c.R + c.A }

// SteadyState holds the steady-state stage durations of one ensemble
// member: the simulation's compute and write stages plus the K couplings.
// Idle stages are derived, not stored — the model's Equation 1 determines
// them.
type SteadyState struct {
	// S is the steady-state simulation stage S_*.
	S float64
	// W is the steady-state write stage W_*.
	W float64
	// Couplings holds R_*^i and A_*^i for each of the K analyses.
	Couplings []Coupling
}

// Validate checks that the steady state is well-formed: non-negative
// stages and at least one coupling.
func (ss SteadyState) Validate() error {
	if ss.S < 0 || ss.W < 0 {
		return fmt.Errorf("core: negative simulation stages S=%v W=%v", ss.S, ss.W)
	}
	if len(ss.Couplings) == 0 {
		return errors.New("core: an ensemble member needs at least one coupling")
	}
	for i, c := range ss.Couplings {
		if c.R < 0 || c.A < 0 {
			return fmt.Errorf("core: coupling %d has negative stages R=%v A=%v", i, c.R, c.A)
		}
	}
	return nil
}

// K returns the number of couplings.
func (ss SteadyState) K() int { return len(ss.Couplings) }

// SimBusy returns S_* + W_*: the simulation's non-idle time per step.
func (ss SteadyState) SimBusy() float64 { return ss.S + ss.W }

// Sigma returns the non-overlapped in situ step σ̄* (Equation 1):
//
//	σ̄* = max(S_* + W_*, R_*^1 + A_*^1, ..., R_*^K + A_*^K)
func (ss SteadyState) Sigma() float64 {
	sigma := ss.SimBusy()
	for _, c := range ss.Couplings {
		if b := c.Busy(); b > sigma {
			sigma = b
		}
	}
	return sigma
}

// Makespan returns the member makespan estimate (Equation 2):
// MAKESPAN = n_steps × σ̄*.
func (ss SteadyState) Makespan(nSteps int) float64 {
	if nSteps < 0 {
		nSteps = 0
	}
	return float64(nSteps) * ss.Sigma()
}

// IdleSim returns the derived steady-state simulation idle stage
// I_*^S = σ̄* − (S_* + W_*).
func (ss SteadyState) IdleSim() float64 {
	return ss.Sigma() - ss.SimBusy()
}

// IdleAnalysis returns the derived steady-state idle stage of analysis i:
// I_*^{A_i} = σ̄* − (A_*^i + R_*^i).
func (ss SteadyState) IdleAnalysis(i int) (float64, error) {
	if i < 0 || i >= len(ss.Couplings) {
		return 0, fmt.Errorf("core: coupling index %d out of range [0,%d)", i, len(ss.Couplings))
	}
	return ss.Sigma() - ss.Couplings[i].Busy(), nil
}

// Efficiency returns the computational efficiency E (Equation 3):
//
//	E = (S_* + W_*)/σ̄* + (Σ_i A_*^i + R_*^i)/(K σ̄*) − 1
//
// which equals the mean over couplings of the non-idle fraction of the
// actual in situ step, 1/K Σ_i (1 − (I_*^S + I_*^{A_i})/σ̄*). Each term
// lies in (−1, 1], so E ∈ (−1, 1]: 1 when no component ever idles, and
// negative only for pathologically unbalanced members (K > 1 with both a
// tiny simulation side and very uneven couplings) where idle time exceeds
// the step itself on average.
func (ss SteadyState) Efficiency() (float64, error) {
	if err := ss.Validate(); err != nil {
		return 0, err
	}
	sigma := ss.Sigma()
	if sigma <= 0 {
		return 0, errors.New("core: zero-length in situ step")
	}
	sum := 0.0
	for _, c := range ss.Couplings {
		sum += c.Busy()
	}
	k := float64(len(ss.Couplings))
	return ss.SimBusy()/sigma + sum/(k*sigma) - 1, nil
}

// Scenario classifies a coupling per Section 3.2.
type Scenario int

const (
	// IdleAnalyzer marks a coupling whose analysis step is faster than the
	// simulation step: the analysis waits for data.
	IdleAnalyzer Scenario = iota
	// IdleSimulation marks a coupling whose analysis step is slower: the
	// simulation waits before writing the next chunk.
	IdleSimulation
	// Balanced marks the boundary case (equal within tolerance).
	Balanced
)

// String names the scenario.
func (s Scenario) String() string {
	switch s {
	case IdleAnalyzer:
		return "IdleAnalyzer"
	case IdleSimulation:
		return "IdleSimulation"
	case Balanced:
		return "Balanced"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// scenarioTolerance is the relative tolerance within which a coupling is
// classified as Balanced.
const scenarioTolerance = 1e-9

// CouplingScenario classifies coupling i: IdleAnalyzer when
// R_*^i + A_*^i < S_* + W_*, IdleSimulation when greater.
func (ss SteadyState) CouplingScenario(i int) (Scenario, error) {
	if i < 0 || i >= len(ss.Couplings) {
		return 0, fmt.Errorf("core: coupling index %d out of range [0,%d)", i, len(ss.Couplings))
	}
	sim := ss.SimBusy()
	ana := ss.Couplings[i].Busy()
	scale := sim
	if ana > scale {
		scale = ana
	}
	switch {
	case scale == 0 || ana < sim-scenarioTolerance*scale:
		return IdleAnalyzer, nil
	case ana > sim+scenarioTolerance*scale:
		return IdleSimulation, nil
	default:
		return Balanced, nil
	}
}

// ApproxEqual reports whether two steady states agree within relative
// tolerance tol on every stage duration (S, W, and each coupling's R and
// A). Couplings are compared positionally; differing coupling counts are
// never equal. Used by the fast-path cross-check to assert Eq. 5-9
// agreement between the closed form and the DES.
func (ss SteadyState) ApproxEqual(o SteadyState, tol float64) bool {
	if len(ss.Couplings) != len(o.Couplings) {
		return false
	}
	if !approxEq(ss.S, o.S, tol) || !approxEq(ss.W, o.W, tol) {
		return false
	}
	for i, c := range ss.Couplings {
		if !approxEq(c.R, o.Couplings[i].R, tol) || !approxEq(c.A, o.Couplings[i].A, tol) {
			return false
		}
	}
	return true
}

// approxEq compares two durations at relative tolerance tol, scaled by
// the larger magnitude (exact match required at zero scale).
func approxEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// SatisfiesEq4 reports whether every coupling satisfies the paper's
// Equation 4 feasibility condition R_*^i + A_*^i <= S_* + W_*, i.e. no
// analysis ever throttles the simulation. Under this condition
// σ̄* = S_* + W_* and the member makespan is minimized for the given
// simulation settings (Section 3.4).
func (ss SteadyState) SatisfiesEq4() bool {
	sim := ss.SimBusy()
	for _, c := range ss.Couplings {
		if c.Busy() > sim {
			return false
		}
	}
	return true
}
