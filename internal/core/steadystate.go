package core

import (
	"errors"

	"ensemblekit/internal/stats"
	"ensemblekit/internal/trace"
)

// The paper observes that "after a few warm-up steps" executions reach a
// steady state where each stage has a similar execution time over many
// steps. ExtractOptions.WarmupFraction discards a fixed prefix; this file
// detects the warm-up length from the data instead, so traces with long or
// short transients are both handled correctly.

// DetectOptions tunes warm-up detection.
type DetectOptions struct {
	// CVThreshold is the coefficient of variation (stddev/mean) below
	// which the suffix of the series counts as steady. Default 0.05.
	CVThreshold float64
	// MaxFraction bounds the detected warm-up to this fraction of the
	// series (default 0.5): at least half the steps always remain.
	MaxFraction float64
}

func (o DetectOptions) defaults() DetectOptions {
	if o.CVThreshold <= 0 {
		o.CVThreshold = 0.05
	}
	if o.MaxFraction <= 0 || o.MaxFraction > 0.9 {
		o.MaxFraction = 0.5
	}
	return o
}

// DetectWarmup returns the smallest number of leading samples whose
// removal makes the remaining series steady (coefficient of variation at
// or below the threshold). If no prefix within the bound achieves the
// threshold, the bound itself is returned — the caller still gets the most
// stable suffix available.
func DetectWarmup(series []float64, opts DetectOptions) int {
	opts = opts.defaults()
	n := len(series)
	if n < 3 {
		return 0
	}
	maxW := int(opts.MaxFraction * float64(n))
	bestW, bestCV := 0, cv(series)
	for w := 0; w <= maxW; w++ {
		c := cv(series[w:])
		if c <= opts.CVThreshold {
			return w
		}
		if c < bestCV {
			bestCV, bestW = c, w
		}
	}
	return bestW
}

// cv returns the coefficient of variation of xs (0 for a zero-mean or
// empty series, to keep idle-stage series from dividing by zero).
func cv(xs []float64) float64 {
	m := stats.Mean(xs)
	if len(xs) == 0 || m == 0 {
		return 0
	}
	return stats.StdDev(xs) / m
}

// AutoExtract extracts a member's steady state with a detected warm-up
// instead of a fixed fraction: the warm-up is measured on the simulation's
// per-step busy time (S+W, the quantity σ̄* is built from) and applied to
// every stage mean.
func AutoExtract(m *trace.MemberTrace, opts DetectOptions) (SteadyState, int, error) {
	if m == nil || m.Simulation == nil {
		return SteadyState{}, 0, errors.New("core: member trace has no simulation")
	}
	if len(m.Analyses) == 0 {
		return SteadyState{}, 0, errors.New("core: member trace has no analyses")
	}
	sDur := m.Simulation.StageDurations(trace.StageS)
	wDur := m.Simulation.StageDurations(trace.StageW)
	if len(sDur) == 0 {
		return SteadyState{}, 0, errors.New("core: simulation trace has no steps")
	}
	busy := make([]float64, len(sDur))
	for i := range busy {
		busy[i] = sDur[i]
		if i < len(wDur) {
			busy[i] += wDur[i]
		}
	}
	warm := DetectWarmup(busy, opts)
	mean := func(xs []float64) float64 {
		if warm >= len(xs) {
			return stats.Mean(xs)
		}
		return stats.Mean(xs[warm:])
	}
	ss := SteadyState{S: mean(sDur), W: mean(wDur)}
	for _, a := range m.Analyses {
		r := a.StageDurations(trace.StageR)
		aa := a.StageDurations(trace.StageA)
		if len(r) == 0 || len(aa) == 0 {
			return SteadyState{}, 0, errors.New("core: analysis trace has no steps")
		}
		ss.Couplings = append(ss.Couplings, Coupling{R: mean(r), A: mean(aa)})
	}
	return ss, warm, ss.Validate()
}
