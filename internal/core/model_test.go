package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ensemblekit/internal/trace"
)

func TestSigmaEquation1(t *testing.T) {
	// Figure 6 example: analysis 1 slower than the simulation (Idle
	// Simulation), analysis 2 faster (Idle Analyzer).
	ss := SteadyState{
		S: 10, W: 0.5,
		Couplings: []Coupling{
			{R: 0.5, A: 12}, // busy 12.5 > 10.5
			{R: 0.5, A: 6},  // busy 6.5 < 10.5
		},
	}
	if got := ss.Sigma(); got != 12.5 {
		t.Errorf("sigma = %v, want 12.5 (the slowest coupling)", got)
	}
	// With fast analyses sigma is the simulation side.
	ss2 := SteadyState{S: 10, W: 0.5, Couplings: []Coupling{{R: 0.5, A: 6}}}
	if got := ss2.Sigma(); got != 10.5 {
		t.Errorf("sigma = %v, want 10.5 (S+W)", got)
	}
}

func TestMakespanEquation2(t *testing.T) {
	ss := SteadyState{S: 10, W: 0.5, Couplings: []Coupling{{R: 0.5, A: 6}}}
	if got := ss.Makespan(37); math.Abs(got-37*10.5) > 1e-9 {
		t.Errorf("makespan = %v, want %v", got, 37*10.5)
	}
	if got := ss.Makespan(0); got != 0 {
		t.Errorf("makespan(0) = %v, want 0", got)
	}
	if got := ss.Makespan(-3); got != 0 {
		t.Errorf("makespan(-3) = %v, want 0 (clamped)", got)
	}
}

func TestDerivedIdleStages(t *testing.T) {
	ss := SteadyState{
		S: 10, W: 0.5,
		Couplings: []Coupling{{R: 0.5, A: 12}, {R: 0.5, A: 6}},
	}
	// sigma = 12.5; I^S = 12.5 - 10.5 = 2.
	if got := ss.IdleSim(); math.Abs(got-2) > 1e-9 {
		t.Errorf("I^S = %v, want 2", got)
	}
	i0, err := ss.IdleAnalysis(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(i0-0) > 1e-9 {
		t.Errorf("I^A_1 = %v, want 0 (bottleneck coupling)", i0)
	}
	i1, err := ss.IdleAnalysis(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(i1-6) > 1e-9 {
		t.Errorf("I^A_2 = %v, want 6", i1)
	}
	if _, err := ss.IdleAnalysis(5); err == nil {
		t.Error("out-of-range idle index should fail")
	}
}

func TestEfficiencyEquation3(t *testing.T) {
	// Single coupling: E = min/max of the two busy sides.
	ss := SteadyState{S: 10, W: 0.5, Couplings: []Coupling{{R: 0.5, A: 6}}}
	e, err := ss.Efficiency()
	if err != nil {
		t.Fatal(err)
	}
	want := 6.5 / 10.5 // (10.5/10.5) + (6.5/10.5) - 1
	if math.Abs(e-want) > 1e-12 {
		t.Errorf("E = %v, want %v", e, want)
	}
	// Perfectly balanced: E = 1.
	bal := SteadyState{S: 10, W: 0.5, Couplings: []Coupling{{R: 0.5, A: 10}}}
	e, err = bal.Efficiency()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-1) > 1e-12 {
		t.Errorf("balanced E = %v, want 1", e)
	}
	// Two couplings: E = (S+W)/sigma + sum(R+A)/(K sigma) - 1.
	two := SteadyState{
		S: 10, W: 0.5,
		Couplings: []Coupling{{R: 0.5, A: 12}, {R: 0.5, A: 6}},
	}
	e, err = two.Efficiency()
	if err != nil {
		t.Fatal(err)
	}
	want = 10.5/12.5 + (12.5+6.5)/(2*12.5) - 1
	if math.Abs(e-want) > 1e-12 {
		t.Errorf("two-coupling E = %v, want %v", e, want)
	}
}

func TestEfficiencyErrors(t *testing.T) {
	if _, err := (SteadyState{S: 1}).Efficiency(); err == nil {
		t.Error("no couplings should fail")
	}
	if _, err := (SteadyState{S: -1, Couplings: []Coupling{{R: 1, A: 1}}}).Efficiency(); err == nil {
		t.Error("negative stage should fail")
	}
	if _, err := (SteadyState{Couplings: []Coupling{{}}}).Efficiency(); err == nil {
		t.Error("all-zero member should fail (zero-length step)")
	}
}

func TestScenarioClassification(t *testing.T) {
	ss := SteadyState{
		S: 10, W: 0.5,
		Couplings: []Coupling{
			{R: 0.5, A: 12},   // IdleSimulation
			{R: 0.5, A: 6},    // IdleAnalyzer
			{R: 0.5, A: 10.0}, // Balanced (10.5 == 10.5)
		},
	}
	cases := []Scenario{IdleSimulation, IdleAnalyzer, Balanced}
	for i, want := range cases {
		got, err := ss.CouplingScenario(i)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("coupling %d: scenario = %v, want %v", i, got, want)
		}
	}
	if _, err := ss.CouplingScenario(9); err == nil {
		t.Error("out-of-range coupling should fail")
	}
	for _, s := range []Scenario{IdleAnalyzer, IdleSimulation, Balanced, Scenario(42)} {
		if s.String() == "" {
			t.Error("empty scenario name")
		}
	}
}

func TestEquation4(t *testing.T) {
	feasible := SteadyState{S: 10, W: 0.5, Couplings: []Coupling{{R: 0.5, A: 8}, {R: 0.5, A: 10}}}
	if !feasible.SatisfiesEq4() {
		t.Error("all couplings at or under S+W should satisfy Eq. 4")
	}
	infeasible := SteadyState{S: 10, W: 0.5, Couplings: []Coupling{{R: 0.5, A: 11}}}
	if infeasible.SatisfiesEq4() {
		t.Error("a coupling beyond S+W should violate Eq. 4")
	}
	// Under Eq. 4, sigma collapses to S+W.
	if feasible.Sigma() != feasible.SimBusy() {
		t.Errorf("under Eq. 4 sigma (%v) must equal S+W (%v)", feasible.Sigma(), feasible.SimBusy())
	}
}

// Properties of the model, over random well-formed steady states:
// sigma is the max of busy sides; E in (0, 1]; makespan scales linearly;
// maximizing E at fixed sigma never increases idle time.
func TestModelProperties(t *testing.T) {
	gen := func(r *rand.Rand) SteadyState {
		k := 1 + r.Intn(4)
		ss := SteadyState{S: r.Float64()*20 + 0.01, W: r.Float64()}
		for i := 0; i < k; i++ {
			ss.Couplings = append(ss.Couplings, Coupling{R: r.Float64(), A: r.Float64()*25 + 0.01})
		}
		return ss
	}
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		ss := gen(r)
		sigma := ss.Sigma()
		if sigma < ss.SimBusy()-1e-12 {
			t.Fatalf("sigma below S+W: %+v", ss)
		}
		for i := range ss.Couplings {
			if sigma < ss.Couplings[i].Busy()-1e-12 {
				t.Fatalf("sigma below coupling %d: %+v", i, ss)
			}
			idle, err := ss.IdleAnalysis(i)
			if err != nil || idle < -1e-12 {
				t.Fatalf("negative analysis idle: %+v", ss)
			}
		}
		if ss.IdleSim() < -1e-12 {
			t.Fatalf("negative simulation idle: %+v", ss)
		}
		e, err := ss.Efficiency()
		if err != nil {
			t.Fatalf("efficiency error: %v for %+v", err, ss)
		}
		if e <= -1 || e > 1+1e-12 {
			t.Fatalf("E = %v outside (-1,1]: %+v", e, ss)
		}
		// For a single coupling E is strictly positive (min/max of busy
		// sides); negativity requires K > 1 imbalance.
		if len(ss.Couplings) == 1 && e <= 0 {
			t.Fatalf("single-coupling E = %v should be positive: %+v", e, ss)
		}
		if m1, m2 := ss.Makespan(10), ss.Makespan(20); math.Abs(m2-2*m1) > 1e-9 {
			t.Fatalf("makespan not linear in steps: %v vs %v", m1, m2)
		}
	}
}

// Property via testing/quick: adding a coupling never decreases sigma.
func TestSigmaMonotoneInCouplings(t *testing.T) {
	prop := func(s, w, r1, a1, r2, a2 float64) bool {
		norm := func(x float64) float64 { return math.Abs(math.Mod(x, 100)) }
		base := SteadyState{S: norm(s), W: norm(w),
			Couplings: []Coupling{{R: norm(r1), A: norm(a1)}}}
		ext := base
		ext.Couplings = append([]Coupling{}, base.Couplings...)
		ext.Couplings = append(ext.Couplings, Coupling{R: norm(r2), A: norm(a2)})
		return ext.Sigma() >= base.Sigma()-1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// --- extraction from traces ---

// syntheticMemberTrace builds a member trace with constant stage durations
// after a slow warm-up step.
func syntheticMemberTrace(nSteps int, s, w, r, a float64) *trace.MemberTrace {
	simStages := []float64{s, 0, w}
	anaStages := []float64{r, a, 0}
	sigma := s + w
	if r+a > sigma {
		sigma = r + a
	}
	simStages[1] = sigma - s - w // I^S
	anaStages[2] = sigma - r - a // I^A
	build := func(kind trace.Kind, order []trace.Stage, durs []float64, warmFactor float64) *trace.ComponentTrace {
		c := &trace.ComponentTrace{Kind: kind, Cores: 8, Nodes: []int{0}}
		t := 0.0
		for i := 0; i < nSteps; i++ {
			factor := 1.0
			if i == 0 {
				factor = warmFactor
			}
			step := trace.StepRecord{Index: i}
			for j, st := range order {
				d := durs[j] * factor
				step.Stages = append(step.Stages, trace.StageRecord{Stage: st, Start: t, Duration: d})
				t += d
			}
			c.Steps = append(c.Steps, step)
		}
		c.End = t
		return c
	}
	return &trace.MemberTrace{
		Simulation: build(trace.KindSimulation, trace.SimulationStages(), simStages, 1.8),
		Analyses: []*trace.ComponentTrace{
			build(trace.KindAnalysis, trace.AnalysisStages(), anaStages, 1.8),
		},
	}
}

func TestFromMemberTraceStripsWarmup(t *testing.T) {
	m := syntheticMemberTrace(20, 10, 0.5, 0.5, 6)
	ss, err := FromMemberTrace(m, ExtractOptions{WarmupFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// Steps 2..19 have exact durations; warm-up (inflated) steps excluded.
	if math.Abs(ss.S-10) > 1e-9 || math.Abs(ss.W-0.5) > 1e-9 {
		t.Errorf("S=%v W=%v, want 10, 0.5", ss.S, ss.W)
	}
	if len(ss.Couplings) != 1 {
		t.Fatalf("couplings = %d, want 1", len(ss.Couplings))
	}
	if math.Abs(ss.Couplings[0].R-0.5) > 1e-9 || math.Abs(ss.Couplings[0].A-6) > 1e-9 {
		t.Errorf("R=%v A=%v, want 0.5, 6", ss.Couplings[0].R, ss.Couplings[0].A)
	}
}

func TestFromMemberTraceErrors(t *testing.T) {
	if _, err := FromMemberTrace(nil, ExtractOptions{}); err == nil {
		t.Error("nil member should fail")
	}
	m := syntheticMemberTrace(5, 10, 0.5, 0.5, 6)
	m.Analyses = nil
	if _, err := FromMemberTrace(m, ExtractOptions{}); err == nil {
		t.Error("member without analyses should fail")
	}
	m2 := syntheticMemberTrace(5, 10, 0.5, 0.5, 6)
	m2.Simulation.Steps = nil
	if _, err := FromMemberTrace(m2, ExtractOptions{}); err == nil {
		t.Error("empty simulation trace should fail")
	}
}

func TestMeasuredIdleMatchesDerived(t *testing.T) {
	m := syntheticMemberTrace(20, 10, 0.5, 0.5, 12) // Idle Simulation case
	ss, err := FromMemberTrace(m, ExtractOptions{})
	if err != nil {
		t.Fatal(err)
	}
	simIdle, anaIdle, err := MeasuredIdle(m, ExtractOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(simIdle-ss.IdleSim()) > 1e-9 {
		t.Errorf("measured I^S %v != derived %v (Equation 1 must hold)", simIdle, ss.IdleSim())
	}
	derived, err := ss.IdleAnalysis(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(anaIdle[0]-derived) > 1e-9 {
		t.Errorf("measured I^A %v != derived %v", anaIdle[0], derived)
	}
}

func TestValidateModelOnSyntheticTrace(t *testing.T) {
	m := syntheticMemberTrace(30, 10, 0.5, 0.5, 6)
	rep, err := ValidateModel(m, ExtractOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The warm-up step inflates the measured makespan slightly; the model
	// should still be within a few percent.
	if rep.RelativeError > 0.05 {
		t.Errorf("relative error = %v, want < 5%% (predicted %v vs measured %v)",
			rep.RelativeError, rep.Predicted, rep.Measured)
	}
}

func TestWarmupClamping(t *testing.T) {
	o := ExtractOptions{WarmupFraction: 5}
	if w := o.warmup(10); w != 9 {
		t.Errorf("warmup(10) with fraction 5 = %d, want 9 (clamped to fraction 0.9)", w)
	}
	o = ExtractOptions{WarmupFraction: -1}
	if w := o.warmup(10); w != 0 {
		t.Errorf("negative fraction should clamp to 0, got %d", w)
	}
	o = ExtractOptions{}
	if w := o.warmup(1); w != 0 {
		t.Errorf("single-step trace must keep its step, got warmup %d", w)
	}
}

func TestDetectWarmup(t *testing.T) {
	constant := []float64{5, 5, 5, 5, 5, 5, 5, 5}
	if w := DetectWarmup(constant, DetectOptions{}); w != 0 {
		t.Errorf("constant series: warmup = %d, want 0", w)
	}
	// Three inflated warm-up steps then steady.
	withWarmup := []float64{12, 9, 7, 5, 5, 5, 5, 5, 5, 5}
	if w := DetectWarmup(withWarmup, DetectOptions{}); w != 3 {
		t.Errorf("warmup = %d, want 3", w)
	}
	// A wildly unstable series falls back to the most stable suffix
	// within the bound (never more than half).
	chaos := []float64{1, 100, 2, 90, 3, 80, 4, 70}
	if w := DetectWarmup(chaos, DetectOptions{}); w > 4 {
		t.Errorf("warmup = %d, must keep at least half the series", w)
	}
	// Tiny series: nothing to trim.
	if w := DetectWarmup([]float64{1, 9}, DetectOptions{}); w != 0 {
		t.Errorf("short series warmup = %d, want 0", w)
	}
	// All-zero (idle) series: no division by zero, zero warmup.
	if w := DetectWarmup([]float64{0, 0, 0, 0}, DetectOptions{}); w != 0 {
		t.Errorf("zero series warmup = %d, want 0", w)
	}
}

func TestAutoExtract(t *testing.T) {
	m := syntheticMemberTrace(20, 10, 0.5, 0.5, 6)
	ss, warm, err := AutoExtract(m, DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The synthetic trace inflates exactly one warm-up step by 1.8x.
	if warm != 1 {
		t.Errorf("detected warmup = %d, want 1", warm)
	}
	if math.Abs(ss.S-10) > 1e-9 || math.Abs(ss.Couplings[0].A-6) > 1e-9 {
		t.Errorf("steady state off: S=%v A=%v", ss.S, ss.Couplings[0].A)
	}
	if _, _, err := AutoExtract(nil, DetectOptions{}); err == nil {
		t.Error("nil member should fail")
	}
	bad := syntheticMemberTrace(5, 10, 0.5, 0.5, 6)
	bad.Analyses = nil
	if _, _, err := AutoExtract(bad, DetectOptions{}); err == nil {
		t.Error("member without analyses should fail")
	}
}

func TestAutoExtractAgreesWithFixedFraction(t *testing.T) {
	// On a long steady trace the two extractors converge.
	m := syntheticMemberTrace(40, 10, 0.5, 0.5, 6)
	auto, _, err := AutoExtract(m, DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := FromMemberTrace(m, ExtractOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auto.Sigma()-fixed.Sigma()) > 1e-9 {
		t.Errorf("extractors disagree: auto sigma %v vs fixed %v", auto.Sigma(), fixed.Sigma())
	}
}
