package runtime

import (
	"bytes"
	"strings"
	"testing"

	"ensemblekit/internal/obs"
	"ensemblekit/internal/placement"
)

// TestSimulatedRecorderBitIdentical is the acceptance check for the
// instrumentation layer: attaching a recorder must not change simulation
// results, because the recorder only appends observations and never alters
// event scheduling.
func TestSimulatedRecorderBitIdentical(t *testing.T) {
	plain := mustRunSim(t, placement.C15(), 6, SimOptions{})
	rec := obs.NewRecorder(nil)
	observed := mustRunSim(t, placement.C15(), 6, SimOptions{Recorder: rec})

	var a, b bytes.Buffer
	if err := plain.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := observed.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("trace differs with recorder enabled: instrumentation perturbed the simulation")
	}
	if rec.Len() == 0 {
		t.Fatal("recorder attached but no events emitted")
	}
	// Jittered runs must also be unperturbed (same RNG consumption).
	j1 := mustRunSim(t, placement.C15(), 6, SimOptions{Jitter: 0.05, Seed: 42})
	j2 := mustRunSim(t, placement.C15(), 6, SimOptions{Jitter: 0.05, Seed: 42, Recorder: obs.NewRecorder(nil)})
	if j1.Makespan() != j2.Makespan() {
		t.Fatalf("jittered makespan differs with recorder: %v vs %v", j1.Makespan(), j2.Makespan())
	}
}

// TestSimulatedRecorderEventStream checks that the live event stream is
// structurally sound: the Chrome export validates, node occupancy covers
// every placed node, and DTL traffic matches the protocol's operation count.
func TestSimulatedRecorderEventStream(t *testing.T) {
	const steps = 6
	rec := obs.NewRecorder(nil)
	p := placement.C15()
	tr := mustRunSim(t, p, steps, SimOptions{Recorder: rec})

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("live-recorded chrome trace invalid: %v", err)
	}

	m := obs.Analyze(rec.Events())
	// Every node hosting a component must have an occupancy timeline with a
	// positive peak.
	want := map[int]bool{}
	for _, mem := range p.Members {
		want[mem.Simulation.NodeSet()[0]] = true
		for _, a := range mem.Analyses {
			want[a.NodeSet()[0]] = true
		}
	}
	for n := range want {
		nu, ok := m.Nodes[n]
		if !ok {
			t.Fatalf("node %d hosts components but has no occupancy timeline", n)
		}
		if nu.Cores.Peak() <= 0 {
			t.Fatalf("node %d occupancy peak = %v, want > 0", n, nu.Cores.Peak())
		}
	}
	// The synchronous protocol does one put per simulation step and one get
	// per (analysis, step).
	var members, analyses int
	for _, mem := range tr.Members {
		members++
		analyses += len(mem.Analyses)
	}
	var puts, gets int
	for _, d := range m.DTLList() {
		switch d.Op {
		case "put":
			puts += d.Count
		case "get":
			gets += d.Count
		}
	}
	if puts != members*steps {
		t.Errorf("puts = %d, want %d (members x steps)", puts, members*steps)
	}
	if gets != analyses*steps {
		t.Errorf("gets = %d, want %d (analyses x steps)", gets, analyses*steps)
	}
	// Stage events cover the full six-stage taxonomy.
	seen := map[string]bool{}
	for _, st := range m.StageList() {
		seen[st.Stage] = true
	}
	for _, stage := range []string{"S", "I^S", "W", "R", "A", "I^A"} {
		if !seen[stage] {
			t.Errorf("stage %s missing from event stream (saw %v)", stage, keys(seen))
		}
	}
	// Labeled protocol stores produced queue timelines.
	var hasTokens, hasAnnounce bool
	for _, q := range m.QueueList() {
		if strings.Contains(q, "writeTokens") {
			hasTokens = true
		}
		if strings.Contains(q, "announce") {
			hasAnnounce = true
		}
	}
	if !hasTokens || !hasAnnounce {
		t.Errorf("protocol store timelines missing: tokens=%v announce=%v (queues: %v)",
			hasTokens, hasAnnounce, m.QueueList())
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestRealBackendRecorder checks the real backend's live instrumentation:
// component lifecycle and stage events arrive serialized (the test's
// value doubles under -race) and paired, with wall-clock timestamps.
func TestRealBackendRecorder(t *testing.T) {
	rec := obs.NewRecorder(nil)
	opts := smallRealOptions()
	opts.Recorder = rec
	if _, err := RunReal(placement.C15(), opts); err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	if len(events) == 0 {
		t.Fatal("real backend recorded no events")
	}
	var procStarts, procEnds int
	stageBegins := map[string]int{}
	stageEnds := map[string]int{}
	for _, ev := range events {
		if ev.T < 0 {
			t.Fatalf("negative timestamp: %+v", ev)
		}
		switch ev.Kind {
		case obs.ProcStart:
			procStarts++
		case obs.ProcEnd:
			procEnds++
		case obs.StageBegin:
			stageBegins[ev.Detail]++
		case obs.StageEnd:
			stageEnds[ev.Detail]++
		}
	}
	// C1+5 has 2 members x (1 sim + 1 analysis) = 4 components.
	if procStarts != 4 || procEnds != 4 {
		t.Fatalf("proc starts/ends = %d/%d, want 4/4", procStarts, procEnds)
	}
	for _, stage := range []string{"S", "I^S", "W", "R", "A", "I^A"} {
		if stageBegins[stage] == 0 {
			t.Errorf("no begin events for stage %s", stage)
		}
		if stageBegins[stage] != stageEnds[stage] {
			t.Errorf("stage %s: %d begins vs %d ends", stage, stageBegins[stage], stageEnds[stage])
		}
	}
}
