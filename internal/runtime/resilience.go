package runtime

import (
	"fmt"
	"strings"
)

// DegradationMode selects what the runtime does when a component failure
// exhausts its recovery budget.
type DegradationMode int

const (
	// FailFast aborts the whole ensemble on the first unrecovered
	// component failure (the historical behaviour, and the default).
	FailFast DegradationMode = iota
	// DropMember removes the failed component's entire member (its
	// simulation and all coupled analyses) and lets the remaining members
	// run to completion. Dropped members are annotated in the trace
	// (ComponentTrace.Dropped) and excluded from ensemble aggregation
	// (Eq. 9) via EnsembleTrace.SurvivingMembers.
	DropMember
)

// String returns the flag spelling of the mode.
func (m DegradationMode) String() string {
	switch m {
	case FailFast:
		return "failfast"
	case DropMember:
		return "drop"
	default:
		return fmt.Sprintf("DegradationMode(%d)", int(m))
	}
}

// ParseDegradationMode parses a -degrade flag value.
func ParseDegradationMode(s string) (DegradationMode, error) {
	switch strings.ToLower(s) {
	case "", "failfast", "fail-fast":
		return FailFast, nil
	case "drop", "drop-member", "dropmember":
		return DropMember, nil
	default:
		return FailFast, fmt.Errorf("runtime: unknown degradation mode %q (want failfast or drop)", s)
	}
}

// Resilience configures the recovery policy both backends apply around
// the fault plan. The zero value recovers nothing: every fault is
// immediately unrecoverable and the mode is FailFast, which reproduces
// the historical behaviour exactly.
//
// Fault taxonomy: injected staging failures (faults.StagingFault) and
// stage timeouts are transient — they consume the per-stage retry budget,
// with exponential backoff elapsed on the virtual clock (the simulated
// backend) or the wall clock (the real backend). Node crashes are
// permanent for the interrupted attempt but survivable: each affected
// component may restart up to RestartLimit times, resuming from the
// interrupted stage of its current in situ step (completed steps are
// never re-executed; resuming the failed stage rather than the whole
// step keeps the no-buffering token protocol deadlock-free). When a
// budget is exhausted, Mode decides between aborting the ensemble and
// dropping the member.
type Resilience struct {
	// StagingRetries is the per-stage retry budget for transient faults
	// (injected staging failures, stage timeouts). 0 disables retries.
	StagingRetries int
	// RetryBackoff is the delay before the first retry in seconds
	// (virtual seconds on the simulated backend). 0 retries immediately.
	RetryBackoff float64
	// BackoffFactor multiplies the backoff after each retry (exponential
	// backoff). Values <= 0 default to 2.
	BackoffFactor float64
	// StageTimeout bounds each staging-stage attempt (W and R) in
	// seconds; a timed-out attempt is treated as a transient fault.
	// 0 disables timeouts.
	StageTimeout float64
	// RestartLimit is the number of crash-restarts each component may
	// perform. 0 makes every crash unrecoverable.
	RestartLimit int
	// RestartDelay is the time a restart takes (process respawn, staging
	// reconnect) in seconds.
	RestartDelay float64
	// Mode selects the degradation policy once recovery is exhausted.
	Mode DegradationMode
}

// normalized fills defaulted fields.
func (r Resilience) normalized() Resilience {
	if r.BackoffFactor <= 0 {
		r.BackoffFactor = 2
	}
	return r
}

// Validate rejects nonsensical policies.
func (r Resilience) Validate() error {
	switch {
	case r.StagingRetries < 0:
		return fmt.Errorf("runtime: negative StagingRetries %d", r.StagingRetries)
	case r.RetryBackoff < 0:
		return fmt.Errorf("runtime: negative RetryBackoff %v", r.RetryBackoff)
	case r.StageTimeout < 0:
		return fmt.Errorf("runtime: negative StageTimeout %v", r.StageTimeout)
	case r.RestartLimit < 0:
		return fmt.Errorf("runtime: negative RestartLimit %d", r.RestartLimit)
	case r.RestartDelay < 0:
		return fmt.Errorf("runtime: negative RestartDelay %v", r.RestartDelay)
	case r.Mode != FailFast && r.Mode != DropMember:
		return fmt.Errorf("runtime: unknown degradation mode %d", r.Mode)
	}
	return nil
}
