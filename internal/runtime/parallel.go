package runtime

import (
	"fmt"
	"sync"

	"ensemblekit/internal/faults"
	"ensemblekit/internal/obs"
	"ensemblekit/internal/sim"
	"ensemblekit/internal/trace"
)

// The member-parallel path simulates independent ensemble members on
// separate event loops, one goroutine-world per member, bounded by the
// requested degree. It is sound exactly when members cannot interact
// inside the simulation:
//
//   - no faults (a crash or network window is a global event; FailFast
//     failure propagation interrupts siblings across members),
//   - node-disjoint members (the contention model is node-local),
//   - the DIMES tier (burst buffer and PFS share one endpoint's bandwidth
//     across all members, coupling their timelines),
//   - at most one member with remote readers (two remote members share
//     fabric links, and overlapping flows are rescheduled against each
//     other),
//   - no stage timeouts (a timeout failure under FailFast would interrupt
//     other members in the joint path).
//
// Under those conditions each member's sub-simulation is bit-identical to
// its slice of the joint run, so the merged EnsembleTrace equals the joint
// trace exactly. Obs events are merged in canonical (time, member index,
// emission order) order — keyed by member index, never completion order —
// so the merged stream is byte-identical at every parallelism degree.
// (The joint path interleaves tied-timestamp events across members in
// engine dispatch order instead; the split stream is canonical, not a
// byte-replay of the joint stream. The traces — all science — are
// identical either way.)

// splitEligible reports whether the plan can run member-parallel.
func splitEligible(pl *simPlan, opts SimOptions, inj *faults.Injector) bool {
	if inj.Enabled() {
		return false
	}
	if len(pl.p.Members) < 2 || !pl.membersDisjoint {
		return false
	}
	if opts.tier() != TierDimes || opts.Topology != nil {
		return false
	}
	if opts.Resilience.StageTimeout > 0 {
		return false
	}
	return pl.remoteMembers <= 1
}

// runSplit executes each member on its own environment, at most degree at
// a time, and merges traces and obs streams deterministically.
func runSplit(pl *simPlan, opts SimOptions, degree int) (*trace.EnsembleTrace, int64, error) {
	m := len(pl.p.Members)
	if degree > m {
		degree = m
	}
	tr := traceSkeleton(pl)
	parent := opts.Recorder

	// Per-member result slots: goroutine i writes only index i, so the
	// whole fan-out is race-free without locks.
	childRecs := make([]*obs.Recorder, m)
	setupErrs := make([]error, m)
	engineErrs := make([]error, m)
	compErrs := make([]error, m)
	events := make([]int64, m)
	envs := make([]*sim.Env, m)
	clean := make([]bool, m)

	sem := make(chan struct{}, degree)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			env := opts.World.acquireEnv()
			envs[i] = env
			var rec *obs.Recorder
			if parent.Enabled() {
				rec = obs.NewRecorder(nil)
				childRecs[i] = rec
			}
			env.SetRecorder(rec)
			tier, _, err := buildTier(env, pl, opts)
			if err != nil {
				setupErrs[i] = err
				return
			}
			run := &simRun{
				env:     env,
				tier:    tier,
				model:   pl.model,
				spec:    pl.spec,
				es:      pl.es,
				opts:    opts,
				res:     opts.Resilience.normalized(),
				inj:     nil,
				rec:     env.Recorder(),
				members: tr.Members,
				crashed: make(map[string]bool),
				dropped: make(map[int]bool),
			}
			run.memberProcs = make([][]*sim.Proc, m)
			run.launchMember(i, pl.sims[i], pl.anas[i], pl.assessSim[i], pl.assessAna[i], tr.Members[i])
			runErr := env.Run()
			events[i] = env.Stats().EventsDispatched
			if runErr != nil {
				engineErrs[i] = runErr
				return
			}
			if run.failure != nil {
				compErrs[i] = run.failure
				return
			}
			clean[i] = true
		}(i)
	}
	wg.Wait()

	// Merge the member obs streams into the parent recorder after every
	// member has finished: a k-way merge over the per-member streams,
	// taking the earliest timestamp and breaking ties by member index.
	// The iteration order depends only on the streams' contents, never on
	// which member finished first.
	if parent.Enabled() {
		mergeObs(parent, childRecs)
	}

	var total int64
	for _, e := range events {
		total += e
	}
	// Error precedence mirrors the joint path's check order, resolved at
	// the lowest member index within each class.
	for i := 0; i < m; i++ {
		if setupErrs[i] != nil {
			return nil, total, setupErrs[i]
		}
	}
	for i := 0; i < m; i++ {
		if engineErrs[i] != nil {
			return tr, total, fmt.Errorf("runtime: simulation engine: %w", engineErrs[i])
		}
	}
	for i := 0; i < m; i++ {
		if compErrs[i] != nil {
			return tr, total, fmt.Errorf("runtime: component failed: %w", compErrs[i])
		}
	}
	if err := tr.Validate(); err != nil {
		return nil, total, fmt.Errorf("runtime: produced invalid trace: %w", err)
	}
	for i, env := range envs {
		if clean[i] {
			opts.World.releaseEnv(env)
		}
	}
	return tr, total, nil
}

// mergeObs replays the member streams into the parent in canonical
// (time, member index, emission order) order. Recorder.Emit appends the
// events verbatim — timestamps are the member environments' virtual
// times, already on the shared t=0 clock.
func mergeObs(parent *obs.Recorder, childRecs []*obs.Recorder) {
	streams := make([][]obs.Event, len(childRecs))
	for i, r := range childRecs {
		streams[i] = r.Events()
	}
	idx := make([]int, len(streams))
	for {
		best := -1
		var bt float64
		for mi, evs := range streams {
			if idx[mi] >= len(evs) {
				continue
			}
			if t := evs[idx[mi]].T; best < 0 || t < bt {
				best, bt = mi, t
			}
		}
		if best < 0 {
			return
		}
		parent.Emit(streams[best][idx[best]])
		idx[best]++
	}
}
