package runtime

import (
	"errors"
	"fmt"
	"math/rand"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/dtl"
	"ensemblekit/internal/network"
	"ensemblekit/internal/obs"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/sim"
	"ensemblekit/internal/trace"
)

// Tier names accepted by SimOptions.
const (
	TierDimes       = "dimes"
	TierBurstBuffer = "burstbuffer"
	TierPFS         = "pfs"
)

// SimOptions configures the simulated backend.
type SimOptions struct {
	// Tier selects the DTL implementation: TierDimes (default),
	// TierBurstBuffer, or TierPFS.
	Tier string
	// TierBandwidth is the aggregate bandwidth of the burst buffer or PFS
	// endpoint in bytes/s (defaults: 20 GB/s burst buffer, 5 GB/s PFS).
	TierBandwidth float64
	// Jitter adds multiplicative noise to compute stages: each stage is
	// scaled by 1 + Jitter*N(0,1), clamped. Zero means deterministic.
	Jitter float64
	// Seed drives the jitter (deterministic per seed).
	Seed int64
	// Model optionally overrides the performance model (nil uses
	// cluster.NewModel of the spec).
	Model *cluster.Model
	// FailStagingAt injects a DTL failure on the n-th staging operation
	// (1-based, counting all writes and reads); 0 disables injection.
	FailStagingAt int
	// StagingSlots is the staging buffer depth per member: the simulation
	// may run up to StagingSlots chunks ahead of the slowest analysis.
	// The paper assumes no buffering (1 slot, Section 3.1); larger values
	// explore the relaxation the paper leaves to future work. Default 1.
	StagingSlots int
	// Topology optionally adds dragonfly group structure to the
	// interconnect (nil keeps the flat fabric).
	Topology *network.Dragonfly
	// Recorder optionally attaches a live instrumentation bus: the engine,
	// the DTL, the fabric, and the stage loop emit obs events to it as the
	// run unfolds. Nil (the default) disables instrumentation; attaching a
	// recorder never changes scheduling, so results are bit-identical
	// either way.
	Recorder *obs.Recorder
}

func (o SimOptions) tier() string {
	if o.Tier == "" {
		return TierDimes
	}
	return o.Tier
}

// RunSimulated executes the ensemble on the simulated platform and returns
// its trace. Component failures (e.g. injected staging errors) abort the
// whole ensemble: sibling components are interrupted, the partial trace is
// returned alongside the error.
func RunSimulated(spec cluster.Spec, p placement.Placement, es EnsembleSpec, opts SimOptions) (*trace.EnsembleTrace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(spec); err != nil {
		return nil, err
	}
	if err := es.Validate(p); err != nil {
		return nil, err
	}

	machine, err := cluster.NewMachine(spec)
	if err != nil {
		return nil, err
	}
	model := opts.Model
	if model == nil {
		model = cluster.NewModel(spec)
	}

	// Allocate every component on its node; reject multi-node components
	// (the paper's experiments are single-node per component, and the
	// contention model is node-local).
	sims := make([]compAlloc, len(p.Members))
	anas := make([][]compAlloc, len(p.Members))
	singleNode := func(c placement.Component, label string) (int, error) {
		ns := c.NodeSet()
		if len(ns) != 1 {
			return 0, fmt.Errorf("runtime: %s spans %d nodes; the simulated backend requires single-node components", label, len(ns))
		}
		return ns[0], nil
	}
	for i, m := range p.Members {
		node, err := singleNode(m.Simulation, fmt.Sprintf("member %d simulation", i))
		if err != nil {
			return nil, err
		}
		t, err := machine.Allocate(fmt.Sprintf("m%d.sim", i), node, m.Simulation.Cores, es.Members[i].Sim)
		if err != nil {
			return nil, err
		}
		sims[i] = compAlloc{tenant: t, node: node}
		anas[i] = make([]compAlloc, len(m.Analyses))
		for j, a := range m.Analyses {
			anode, err := singleNode(a, fmt.Sprintf("member %d analysis %d", i, j))
			if err != nil {
				return nil, err
			}
			at, err := machine.Allocate(fmt.Sprintf("m%d.ana%d", i, j), anode, a.Cores, es.Members[i].Analyses[j])
			if err != nil {
				return nil, err
			}
			anas[i][j] = compAlloc{tenant: at, node: anode}
		}
	}
	// DIMES keeps staged data in the producer's node memory, so remote
	// readers perturb the producer node and the staged chunks (double
	// buffered: the slot being read plus the one being written, times the
	// configured slot depth) must fit in the producer's DRAM. Intermediate
	// tiers (burst buffer, PFS) hold the data off-node: neither applies.
	if opts.tier() == TierDimes {
		slots := opts.StagingSlots
		if slots <= 0 {
			slots = 1
		}
		for i, m := range p.Members {
			for _, a := range m.Analyses {
				if a.NodeSet()[0] != sims[i].node {
					sims[i].tenant.RemoteReaders++
				}
			}
			reserve := es.Members[i].Sim.BytesPerStep * int64(slots+1)
			if err := machine.ReserveStaging(sims[i].tenant.ID, reserve); err != nil {
				return nil, err
			}
		}
	}

	// Simulation environment, fabric, and DTL tier.
	env := sim.NewEnv()
	env.SetRecorder(opts.Recorder)
	var tier dtl.Tier
	switch opts.tier() {
	case TierDimes:
		fab, err := network.NewFabric(env, network.Config{
			Nodes:        spec.Nodes,
			NICBandwidth: spec.NICBandwidth,
			Latency:      spec.NICLatency,
			PerFlowCap:   model.RemoteStageBW,
			Topology:     opts.Topology,
		})
		if err != nil {
			return nil, err
		}
		tier = dtl.NewDimes(model, fab)
	case TierBurstBuffer:
		bw := opts.TierBandwidth
		if bw <= 0 {
			bw = 6e9 // aggregate SSD-tier throughput
		}
		cfg := dtl.BurstBufferFabricConfig(spec, bw)
		cfg.Latency = 1e-3 // device + software-stack latency
		fab, err := network.NewFabric(env, cfg)
		if err != nil {
			return nil, err
		}
		tier = dtl.NewBurstBuffer(model, fab, spec.Nodes)
	case TierPFS:
		bw := opts.TierBandwidth
		if bw <= 0 {
			bw = 2e9 // effective per-job share of the shared file system
		}
		fab, err := network.NewFabric(env, dtl.PFSFabricConfig(spec, bw))
		if err != nil {
			return nil, err
		}
		tier = dtl.NewPFS(model, fab, spec.Nodes, 0.01)
	default:
		return nil, fmt.Errorf("runtime: unknown DTL tier %q", opts.Tier)
	}
	if opts.FailStagingAt > 0 {
		tier = &dtl.Flaky{Tier: tier, FailAt: opts.FailStagingAt}
	}

	// Pre-assess every component against its co-location context (static
	// contention; the DES adds the emergent synchronization and staging
	// dynamics on top).
	assessSim := make([]cluster.Assessment, len(p.Members))
	assessAna := make([][]cluster.Assessment, len(p.Members))
	for i := range p.Members {
		node, _ := machine.Node(sims[i].node)
		a, err := model.Assess(node, sims[i].tenant)
		if err != nil {
			return nil, err
		}
		assessSim[i] = a
		assessAna[i] = make([]cluster.Assessment, len(anas[i]))
		for j := range anas[i] {
			anode, _ := machine.Node(anas[i][j].node)
			aa, err := model.Assess(anode, anas[i][j].tenant)
			if err != nil {
				return nil, err
			}
			assessAna[i][j] = aa
		}
	}

	// Trace skeleton.
	tr := &trace.EnsembleTrace{Backend: "simulated", Config: p.Name}
	for i := range p.Members {
		mt := &trace.MemberTrace{Index: i}
		mt.Simulation = &trace.ComponentTrace{
			Name: sims[i].tenant.ID, Kind: trace.KindSimulation, Member: i,
			Nodes: []int{sims[i].node}, Cores: sims[i].tenant.Cores,
		}
		for j := range anas[i] {
			mt.Analyses = append(mt.Analyses, &trace.ComponentTrace{
				Name: anas[i][j].tenant.ID, Kind: trace.KindAnalysis, Member: i, Analysis: j,
				Nodes: []int{anas[i][j].node}, Cores: anas[i][j].tenant.Cores,
			})
		}
		tr.Members = append(tr.Members, mt)
	}

	run := &simRun{
		env:   env,
		tier:  tier,
		model: model,
		spec:  spec,
		es:    es,
		opts:  opts,
		rec:   env.Recorder(),
	}
	// Launch all processes; they all start at t=0 (the paper's concurrent
	// members starting simultaneously).
	for i := range p.Members {
		run.launchMember(i, sims[i], anas[i], assessSim[i], assessAna[i], tr.Members[i])
	}
	runErr := env.Run()
	// A component failure interrupts siblings, so the run drains cleanly;
	// any deadlock or panic is a runtime bug surfaced to the caller.
	if runErr != nil {
		return tr, fmt.Errorf("runtime: simulation engine: %w", runErr)
	}
	if run.failure != nil {
		return tr, fmt.Errorf("runtime: component failed: %w", run.failure)
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("runtime: produced invalid trace: %w", err)
	}
	return tr, nil
}

// simRun carries the shared state of one simulated execution.
type simRun struct {
	env     *sim.Env
	tier    dtl.Tier
	model   *cluster.Model
	spec    cluster.Spec
	es      EnsembleSpec
	opts    SimOptions
	rec     *obs.Recorder // nil when instrumentation is off
	procs   []*sim.Proc
	failure error
}

// Stage taxonomy names shared with the obs event stream; precomputed so an
// emission with a nil recorder costs only the branch inside the method.
var (
	stageNameS  = trace.StageS.String()
	stageNameIS = trace.StageIS.String()
	stageNameW  = trace.StageW.String()
	stageNameR  = trace.StageR.String()
	stageNameA  = trace.StageA.String()
	stageNameIA = trace.StageIA.String()
)

// coreLabel names a node's core pool in resource events.
func coreLabel(node int) string { return fmt.Sprintf("n%d.cores", node) }

// fail records the first component failure and interrupts every other
// process so the run winds down instead of deadlocking.
func (r *simRun) fail(err error) {
	if r.failure == nil {
		r.failure = err
	}
	for _, p := range r.procs {
		if !p.Done() {
			p.Interrupt("sibling component failed")
		}
	}
}

// jitterFn returns a per-component noise source. With zero jitter it
// always returns 1.
func (r *simRun) jitterFn(componentIndex int64) func() float64 {
	if r.opts.Jitter <= 0 {
		return func() float64 { return 1 }
	}
	rng := rand.New(rand.NewSource(r.opts.Seed*7919 + componentIndex))
	j := r.opts.Jitter
	lo := 1 - 3*j
	if lo < 0.5 {
		lo = 0.5
	}
	hi := 1 + 3*j
	return func() float64 {
		f := 1 + j*rng.NormFloat64()
		if f < lo {
			f = lo
		}
		if f > hi {
			f = hi
		}
		return f
	}
}

// compAlloc pairs a component's machine tenant with its node index.
type compAlloc struct {
	tenant *cluster.Tenant
	node   int
}

// launchMember starts the simulation process and the K analysis processes
// of member i, wired together with the synchronous no-buffering protocol.
func (r *simRun) launchMember(i int, simA compAlloc, anaA []compAlloc,
	simAssess cluster.Assessment, anaAssess []cluster.Assessment, mt *trace.MemberTrace) {

	k := len(anaA)
	n := r.es.Steps
	// writeTokens carries read-completion permits: the simulation needs K
	// permits before each write; readers deposit one permit per completed
	// read. Priming with K x slots lets the simulation run `slots` chunks
	// ahead; slots = 1 is the paper's synchronous no-buffering protocol.
	slots := r.opts.StagingSlots
	if slots <= 0 {
		slots = 1
	}
	writeTokens := sim.NewStore[struct{}](r.env, -1)
	rec := r.env.Recorder()
	if rec.Enabled() {
		writeTokens.SetLabel(fmt.Sprintf("m%d.writeTokens", i))
	}
	for t := 0; t < k*slots; t++ {
		writeTokens.Offer(struct{}{})
	}
	// announce[j] tells analysis j that a chunk is staged.
	announce := make([]*sim.Store[int], k)
	for j := range announce {
		announce[j] = sim.NewStore[int](r.env, -1)
		if rec.Enabled() {
			announce[j].SetLabel(fmt.Sprintf("m%d.announce%d", i, j))
		}
	}

	bytes := r.es.Members[i].Sim.BytesPerStep
	clock := r.spec.ClockHz

	// Simulation process.
	simTrace := mt.Simulation
	simJitter := r.jitterFn(int64(i) * 131)
	simCores := coreLabel(simA.node)
	simProc := r.env.Go(simTrace.Name, func(p *sim.Proc) error {
		simTrace.Start = p.Now()
		r.rec.ResourceAcquire(simCores, simA.node, float64(simA.tenant.Cores))
		defer func() {
			simTrace.End = p.Now()
			r.rec.ResourceRelease(simCores, simA.node, float64(simA.tenant.Cores))
		}()
		for step := 0; step < n; step++ {
			rec := trace.StepRecord{Index: step}
			// S: compute.
			sStart := p.Now()
			sDur := simAssess.ComputeTime * simJitter()
			r.rec.StageBegin(simTrace.Name, stageNameS, simA.node)
			if err := p.Wait(sDur); err != nil {
				r.rec.StageEnd(simTrace.Name, stageNameS, simA.node, 0)
				return r.abort(simTrace, err)
			}
			r.rec.StageEnd(simTrace.Name, stageNameS, simA.node, 0)
			counters := r.model.ComputeCounters(simA.tenant, simAssess)
			counters.Cycles = sDur * clock * float64(simA.tenant.Cores)
			rec.Stages = append(rec.Stages, trace.StageRecord{
				Stage: trace.StageS, Start: sStart, Duration: sDur, Counters: counters,
			})
			// I^S: wait for all K reads of the previous chunk.
			isStart := p.Now()
			r.rec.StageBegin(simTrace.Name, stageNameIS, simA.node)
			for t := 0; t < k; t++ {
				if _, err := writeTokens.Get(p); err != nil {
					r.rec.StageEnd(simTrace.Name, stageNameIS, simA.node, 0)
					return r.abort(simTrace, err)
				}
			}
			r.rec.StageEnd(simTrace.Name, stageNameIS, simA.node, 0)
			rec.Stages = append(rec.Stages, trace.StageRecord{
				Stage: trace.StageIS, Start: isStart, Duration: p.Now() - isStart,
			})
			// W: stage the chunk out.
			wStart := p.Now()
			r.rec.StageBegin(simTrace.Name, stageNameW, simA.node)
			if err := r.tier.Write(p, simA.node, bytes); err != nil {
				r.rec.StageEnd(simTrace.Name, stageNameW, simA.node, float64(bytes))
				simTrace.Steps = append(simTrace.Steps, rec)
				return r.abort(simTrace, err)
			}
			r.rec.StageEnd(simTrace.Name, stageNameW, simA.node, float64(bytes))
			wDur := p.Now() - wStart
			rec.Stages = append(rec.Stages, trace.StageRecord{
				Stage: trace.StageW, Start: wStart, Duration: wDur,
				Counters: r.model.IOCounters(simA.tenant, bytes, wDur),
			})
			simTrace.Steps = append(simTrace.Steps, rec)
			for j := range announce {
				announce[j].Offer(step)
			}
		}
		return nil
	})
	r.procs = append(r.procs, simProc)

	// Analysis processes.
	for j := 0; j < k; j++ {
		j := j
		anaTrace := mt.Analyses[j]
		alloc := anaA[j]
		assess := anaAssess[j]
		anaJitter := r.jitterFn(int64(i)*131 + int64(j) + 1)
		anaCores := coreLabel(alloc.node)
		proc := r.env.Go(anaTrace.Name, func(p *sim.Proc) error {
			// Lead-in: wait for the first chunk; the component's own
			// timeline starts at its first read.
			if _, err := announce[j].Get(p); err != nil {
				return r.abort(anaTrace, err)
			}
			anaTrace.Start = p.Now()
			r.rec.ResourceAcquire(anaCores, alloc.node, float64(alloc.tenant.Cores))
			defer func() {
				anaTrace.End = p.Now()
				r.rec.ResourceRelease(anaCores, alloc.node, float64(alloc.tenant.Cores))
			}()
			for step := 0; step < n; step++ {
				rec := trace.StepRecord{Index: step}
				// R: stage the chunk in.
				rStart := p.Now()
				r.rec.StageBegin(anaTrace.Name, stageNameR, alloc.node)
				if err := r.tier.Read(p, simA.node, alloc.node, bytes); err != nil {
					r.rec.StageEnd(anaTrace.Name, stageNameR, alloc.node, float64(bytes))
					anaTrace.Steps = append(anaTrace.Steps, rec)
					return r.abort(anaTrace, err)
				}
				r.rec.StageEnd(anaTrace.Name, stageNameR, alloc.node, float64(bytes))
				rDur := p.Now() - rStart
				rec.Stages = append(rec.Stages, trace.StageRecord{
					Stage: trace.StageR, Start: rStart, Duration: rDur,
					Counters: r.model.IOCounters(alloc.tenant, bytes, rDur),
				})
				// The data is consumed: permit the next write.
				writeTokens.Offer(struct{}{})
				// A: compute.
				aStart := p.Now()
				aDur := assess.ComputeTime * anaJitter()
				r.rec.StageBegin(anaTrace.Name, stageNameA, alloc.node)
				if err := p.Wait(aDur); err != nil {
					r.rec.StageEnd(anaTrace.Name, stageNameA, alloc.node, 0)
					return r.abort(anaTrace, err)
				}
				r.rec.StageEnd(anaTrace.Name, stageNameA, alloc.node, 0)
				counters := r.model.ComputeCounters(alloc.tenant, assess)
				counters.Cycles = aDur * clock * float64(alloc.tenant.Cores)
				rec.Stages = append(rec.Stages, trace.StageRecord{
					Stage: trace.StageA, Start: aStart, Duration: aDur, Counters: counters,
				})
				// I^A: wait for the next chunk (zero on the final step).
				iaStart := p.Now()
				r.rec.StageBegin(anaTrace.Name, stageNameIA, alloc.node)
				if step < n-1 {
					if _, err := announce[j].Get(p); err != nil {
						r.rec.StageEnd(anaTrace.Name, stageNameIA, alloc.node, 0)
						anaTrace.Steps = append(anaTrace.Steps, rec)
						return r.abort(anaTrace, err)
					}
				}
				r.rec.StageEnd(anaTrace.Name, stageNameIA, alloc.node, 0)
				rec.Stages = append(rec.Stages, trace.StageRecord{
					Stage: trace.StageIA, Start: iaStart, Duration: p.Now() - iaStart,
				})
				anaTrace.Steps = append(anaTrace.Steps, rec)
			}
			return nil
		})
		r.procs = append(r.procs, proc)
	}
}

// abort records a component failure in its trace. Interrupts (from a
// sibling's failure) pass through quietly; primary failures trigger the
// ensemble-wide wind-down.
func (r *simRun) abort(ct *trace.ComponentTrace, err error) error {
	ct.Err = err.Error()
	if !errors.Is(err, sim.ErrInterrupted) {
		r.fail(fmt.Errorf("%s: %w", ct.Name, err))
	}
	return nil
}
