package runtime

import (
	"errors"
	"fmt"
	"math/rand"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/dtl"
	"ensemblekit/internal/faults"
	"ensemblekit/internal/network"
	"ensemblekit/internal/obs"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/sim"
	"ensemblekit/internal/trace"
)

// Tier names accepted by SimOptions.
const (
	TierDimes       = "dimes"
	TierBurstBuffer = "burstbuffer"
	TierPFS         = "pfs"
)

// SimOptions configures the simulated backend.
type SimOptions struct {
	// Tier selects the DTL implementation: TierDimes (default),
	// TierBurstBuffer, or TierPFS.
	Tier string
	// TierBandwidth is the aggregate bandwidth of the burst buffer or PFS
	// endpoint in bytes/s (defaults: 20 GB/s burst buffer, 5 GB/s PFS).
	TierBandwidth float64
	// Jitter adds multiplicative noise to compute stages: each stage is
	// scaled by 1 + Jitter*N(0,1), clamped. Zero means deterministic.
	Jitter float64
	// Seed drives the jitter (deterministic per seed).
	Seed int64
	// Model optionally overrides the performance model (nil uses
	// cluster.NewModel of the spec).
	Model *cluster.Model
	// FailStagingAt injects a DTL failure on the n-th staging operation
	// (1-based, counting all writes and reads); 0 disables injection.
	//
	// Deprecated: use Faults with a faults.StagingFault{FailAtOp: n} rule
	// instead. A non-zero FailStagingAt is converted to exactly that rule
	// (appended to Faults when both are set), so existing specs keep
	// working unchanged.
	FailStagingAt int
	// Faults optionally injects a declarative fault plan (staging
	// failures, network-degradation windows, node crashes, stragglers;
	// see internal/faults). Same plan + same seed => identical faults and
	// byte-identical traces.
	Faults *faults.Plan
	// Resilience configures the recovery policy applied around the fault
	// plan (retries, timeouts, crash-restarts, degradation mode). The
	// zero value recovers nothing and fails fast, reproducing the
	// historical behaviour exactly.
	Resilience Resilience
	// StagingSlots is the staging buffer depth per member: the simulation
	// may run up to StagingSlots chunks ahead of the slowest analysis.
	// The paper assumes no buffering (1 slot, Section 3.1); larger values
	// explore the relaxation the paper leaves to future work. Default 1.
	StagingSlots int
	// Topology optionally adds dragonfly group structure to the
	// interconnect (nil keeps the flat fabric).
	Topology *network.Dragonfly
	// Recorder optionally attaches a live instrumentation bus: the engine,
	// the DTL, the fabric, and the stage loop emit obs events to it as the
	// run unfolds. Nil (the default) disables instrumentation; attaching a
	// recorder never changes scheduling, so results are bit-identical
	// either way.
	Recorder *obs.Recorder

	// World optionally supplies shared immutable campaign state: frozen
	// plans (machine, model, allocations, assessments) keyed by
	// configuration, plus an arena of recycled simulation environments.
	// Nil rebuilds everything per run (the historical behaviour). World
	// is an execution hint, never an input: results are bit-identical
	// with and without it, and the campaign hash ignores it.
	World *World
	// MemberParallelism selects the member-parallel execution path: 0
	// (the default) runs the whole ensemble on one event loop (the
	// historical joint path), n >= 1 simulates independent members on up
	// to n cores with a deterministic merge of their traces and obs
	// streams. Any degree >= 1 produces the same bytes as any other —
	// the merge is keyed by member index, not completion order — and the
	// same EnsembleTrace as the joint path; jobs whose members share
	// nodes or state fall back to the joint path automatically. An
	// execution hint: excluded from the campaign hash.
	MemberParallelism int
	// FastPath answers fault-free steady-state-eligible runs directly
	// from the closed-form recurrence (zero DES events), falling back to
	// the event loop whenever any eligibility condition fails. The fast
	// path reproduces the DES trace bit-for-bit (it mirrors the engine's
	// float arithmetic); an execution hint, excluded from the campaign
	// hash.
	FastPath bool
}

func (o SimOptions) tier() string {
	if o.Tier == "" {
		return TierDimes
	}
	return o.Tier
}

// EffectivePlan returns the validated fault plan the run will execute: the
// declarative Faults plan with the legacy FailStagingAt hook folded in as
// a one-rule staging fault. This is the canonical fault input of the run —
// the campaign service hashes it, and RunSimulated executes it.
func (o SimOptions) EffectivePlan() (*faults.Plan, error) {
	plan := o.Faults
	if o.FailStagingAt > 0 {
		merged := faults.Plan{}
		if plan != nil {
			merged = *plan
		}
		merged.Staging = append(append([]faults.StagingFault(nil), merged.Staging...),
			faults.StagingFault{FailAtOp: o.FailStagingAt})
		plan = &merged
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

// RunSimulated executes the ensemble on the simulated platform and returns
// its trace. Component failures (e.g. injected staging errors) abort the
// whole ensemble: sibling components are interrupted, the partial trace is
// returned alongside the error.
func RunSimulated(spec cluster.Spec, p placement.Placement, es EnsembleSpec, opts SimOptions) (*trace.EnsembleTrace, error) {
	tr, _, err := RunSimulatedInfo(spec, p, es, opts)
	return tr, err
}

// RunInfo reports how a simulated run was executed: which path served it
// and what it cost. Purely observational — the same inputs produce the
// same trace bytes regardless of what RunInfo says.
type RunInfo struct {
	// FastPath reports the run was answered by the closed-form
	// steady-state evaluator with zero DES events.
	FastPath bool
	// MemberParallelism is the effective member-parallel degree (0 when
	// the joint path ran).
	MemberParallelism int
	// PlanReused reports the frozen plan came from the World cache
	// instead of being rebuilt.
	PlanReused bool
	// DESEvents counts events dispatched by the engine(s) serving the
	// run (summed across member environments on the split path; zero on
	// the fast path).
	DESEvents int64
}

// RunSimulatedInfo is RunSimulated plus execution metadata. The World /
// MemberParallelism / FastPath hints in opts pick the serving path here;
// every path produces the same EnsembleTrace.
func RunSimulatedInfo(spec cluster.Spec, p placement.Placement, es EnsembleSpec, opts SimOptions) (*trace.EnsembleTrace, RunInfo, error) {
	var info RunInfo
	slots := normSlots(opts.StagingSlots)
	tierName := opts.tier()

	// Plan acquisition: borrow the frozen plan from the World when one is
	// attached (a model override is not content-addressable, so it always
	// builds fresh and never caches). A cache hit skips re-validation —
	// the same spec/placement/ensemble were validated when the plan was
	// built; a miss validates in the historical order first.
	var pl *simPlan
	var key [32]byte
	cacheable := opts.World != nil && opts.Model == nil
	if cacheable {
		k, err := planKey(spec, p, es, tierName, slots)
		if err != nil {
			cacheable = false
		} else {
			key = k
			pl = opts.World.cachedPlan(key)
		}
	}
	if pl != nil {
		info.PlanReused = true
	} else {
		if err := spec.Validate(); err != nil {
			return nil, info, err
		}
		if err := p.Validate(spec); err != nil {
			return nil, info, err
		}
		if err := es.Validate(p); err != nil {
			return nil, info, err
		}
	}
	if err := opts.Resilience.Validate(); err != nil {
		return nil, info, err
	}
	// The legacy FailStagingAt hook is a one-rule fault plan.
	plan, err := opts.EffectivePlan()
	if err != nil {
		return nil, info, err
	}
	inj := faults.NewInjector(plan)
	if pl == nil {
		pl, err = buildPlan(spec, p, es, tierName, slots, opts.Model)
		if err != nil {
			return nil, info, err
		}
		if cacheable {
			opts.World.storePlan(key, pl)
		}
	}

	// Fast path: closed-form evaluation when the run is fault-free and
	// steady-state-eligible. Bails (ok=false) back to the DES whenever
	// any static or dynamic assumption does not hold.
	if opts.FastPath && !inj.Enabled() {
		if tr, ok := fastRun(pl, opts); ok {
			info.FastPath = true
			return tr, info, nil
		}
	}

	// Member-parallel path: independent members on their own event loops,
	// merged deterministically. Ineligible jobs (shared nodes, faults,
	// multiple remote members) fall through to the joint path — at every
	// degree, so the produced bytes never depend on the degree.
	if opts.MemberParallelism != 0 {
		degree := opts.MemberParallelism
		if degree < 1 {
			degree = 1
		}
		if splitEligible(pl, opts, inj) {
			tr, events, err := runSplit(pl, opts, degree)
			info.MemberParallelism = degree
			info.DESEvents = events
			return tr, info, err
		}
	}

	tr, events, err := runJoint(pl, opts, inj)
	info.DESEvents = events
	return tr, info, err
}

// traceSkeleton builds the EnsembleTrace shell (component identities,
// nodes, cores) for a plan.
func traceSkeleton(pl *simPlan) *trace.EnsembleTrace {
	tr := &trace.EnsembleTrace{Backend: "simulated", Config: pl.p.Name}
	for i := range pl.p.Members {
		mt := &trace.MemberTrace{Index: i}
		mt.Simulation = &trace.ComponentTrace{
			Name: pl.sims[i].tenant.ID, Kind: trace.KindSimulation, Member: i,
			Nodes: []int{pl.sims[i].node}, Cores: pl.sims[i].tenant.Cores,
		}
		for j := range pl.anas[i] {
			mt.Analyses = append(mt.Analyses, &trace.ComponentTrace{
				Name: pl.anas[i][j].tenant.ID, Kind: trace.KindAnalysis, Member: i, Analysis: j,
				Nodes: []int{pl.anas[i][j].node}, Cores: pl.anas[i][j].tenant.Cores,
			})
		}
		tr.Members = append(tr.Members, mt)
	}
	return tr
}

// buildTier constructs the DTL tier and its fabric on an environment. The
// unknown-tier error reports the raw option string, as it always has.
func buildTier(env *sim.Env, pl *simPlan, opts SimOptions) (dtl.Tier, *network.Fabric, error) {
	var tier dtl.Tier
	var fab *network.Fabric
	var err error
	switch opts.tier() {
	case TierDimes:
		fab, err = network.NewFabric(env, network.Config{
			Nodes:        pl.spec.Nodes,
			NICBandwidth: pl.spec.NICBandwidth,
			Latency:      pl.spec.NICLatency,
			PerFlowCap:   pl.model.RemoteStageBW,
			Topology:     opts.Topology,
		})
		if err != nil {
			return nil, nil, err
		}
		tier = dtl.NewDimes(pl.model, fab)
	case TierBurstBuffer:
		bw := opts.TierBandwidth
		if bw <= 0 {
			bw = 6e9 // aggregate SSD-tier throughput
		}
		cfg := dtl.BurstBufferFabricConfig(pl.spec, bw)
		cfg.Latency = 1e-3 // device + software-stack latency
		fab, err = network.NewFabric(env, cfg)
		if err != nil {
			return nil, nil, err
		}
		tier = dtl.NewBurstBuffer(pl.model, fab, pl.spec.Nodes)
	case TierPFS:
		bw := opts.TierBandwidth
		if bw <= 0 {
			bw = 2e9 // effective per-job share of the shared file system
		}
		fab, err = network.NewFabric(env, dtl.PFSFabricConfig(pl.spec, bw))
		if err != nil {
			return nil, nil, err
		}
		tier = dtl.NewPFS(pl.model, fab, pl.spec.Nodes, 0.01)
	default:
		return nil, nil, fmt.Errorf("runtime: unknown DTL tier %q", opts.Tier)
	}
	return tier, fab, nil
}

// runJoint executes the whole ensemble on one event loop — the historical
// execution path, now borrowing the frozen plan and (when a World is
// attached) a recycled environment from the arena.
func runJoint(pl *simPlan, opts SimOptions, inj *faults.Injector) (*trace.EnsembleTrace, int64, error) {
	env := opts.World.acquireEnv()
	env.SetRecorder(opts.Recorder)
	tier, fab, err := buildTier(env, pl, opts)
	if err != nil {
		return nil, 0, err
	}
	if inj.Enabled() {
		tier = &faultedTier{Tier: tier, inj: inj, env: env}
		for _, w := range inj.NetworkWindows() {
			if err := fab.Degrade(w.Start, w.End, w.Factor); err != nil {
				return nil, 0, err
			}
		}
	}

	tr := traceSkeleton(pl)
	run := &simRun{
		env:     env,
		tier:    tier,
		model:   pl.model,
		spec:    pl.spec,
		es:      pl.es,
		opts:    opts,
		res:     opts.Resilience.normalized(),
		inj:     inj,
		rec:     env.Recorder(),
		members: tr.Members,
		crashed: make(map[string]bool),
		dropped: make(map[int]bool),
	}
	// Launch all processes; they all start at t=0 (the paper's concurrent
	// members starting simultaneously).
	run.memberProcs = make([][]*sim.Proc, len(pl.p.Members))
	for i := range pl.p.Members {
		run.launchMember(i, pl.sims[i], pl.anas[i], pl.assessSim[i], pl.assessAna[i], tr.Members[i])
	}
	// Crash schedule: at each crash instant, interrupt every component
	// still running on the node (they are all blocked in a stage wait —
	// the DES runs callbacks only between process executions).
	for _, c := range inj.Crashes() {
		c := c
		env.At(c.At, func() { run.crashNode(c.Node) })
	}
	runErr := env.Run()
	events := env.Stats().EventsDispatched
	// A component failure interrupts siblings, so the run drains cleanly;
	// any deadlock or panic is a runtime bug surfaced to the caller.
	if runErr != nil {
		return tr, events, fmt.Errorf("runtime: simulation engine: %w", runErr)
	}
	if run.failure != nil {
		return tr, events, fmt.Errorf("runtime: component failed: %w", run.failure)
	}
	if err := tr.Validate(); err != nil {
		return nil, events, fmt.Errorf("runtime: produced invalid trace: %w", err)
	}
	// Only a fully clean run returns its environment to the arena.
	opts.World.releaseEnv(env)
	return tr, events, nil
}

// faultedTier interposes the fault plan on a DTL tier: each staging
// operation first consults the injector and surfaces faults.ErrInjected
// (with an instrumentation event) before touching the real tier.
type faultedTier struct {
	dtl.Tier
	inj *faults.Injector
	env *sim.Env
}

func (t *faultedTier) Write(p *sim.Proc, producerNode int, bytes int64) error {
	if err := t.inj.StagingOp(t.Tier.Name(), p.Now()); err != nil {
		t.env.Recorder().Fault(t.Tier.Name(), "staging", producerNode, float64(bytes))
		return err
	}
	return t.Tier.Write(p, producerNode, bytes)
}

func (t *faultedTier) Read(p *sim.Proc, producerNode, consumerNode int, bytes int64) error {
	if err := t.inj.StagingOp(t.Tier.Name(), p.Now()); err != nil {
		t.env.Recorder().Fault(t.Tier.Name(), "staging", consumerNode, float64(bytes))
		return err
	}
	return t.Tier.Read(p, producerNode, consumerNode, bytes)
}

// simRun carries the shared state of one simulated execution.
type simRun struct {
	env     *sim.Env
	tier    dtl.Tier
	model   *cluster.Model
	spec    cluster.Spec
	es      EnsembleSpec
	opts    SimOptions
	res     Resilience       // normalized resilience policy
	inj     *faults.Injector // nil when no faults are injected
	rec     *obs.Recorder    // nil when instrumentation is off
	procs   []*sim.Proc
	failure error

	// members mirrors the trace skeleton for drop annotations.
	members []*trace.MemberTrace
	// memberProcs groups processes by member for drop-member interrupts.
	memberProcs [][]*sim.Proc
	// comps lists every running component for crash targeting.
	comps []runningComp
	// crashed flags components whose node crashed; the component's error
	// handler consumes the flag to tell a crash interrupt apart from a
	// sibling wind-down or a stage timeout.
	crashed map[string]bool
	// dropped flags members removed by the drop-member policy.
	dropped map[int]bool
}

// runningComp pairs a live process with its identity for crash targeting.
type runningComp struct {
	proc *sim.Proc
	name string
	node int
}

// crashNode delivers a node crash: every component still running on the
// node is flagged and interrupted. What happens next (restart, drop,
// abort) is the per-component resilience policy's decision.
func (r *simRun) crashNode(node int) {
	for _, c := range r.comps {
		if c.node != node || c.proc.Done() {
			continue
		}
		r.crashed[c.name] = true
		r.rec.Fault(c.name, "crash", node, 0)
		c.proc.Interrupt("node crash")
	}
}

// dropMember removes member i from the run: all its component traces are
// annotated with the cause and its processes are interrupted so the
// survivors keep the fabric and the DTL to themselves. The run completes
// without error; the drop is visible only in the trace and the event
// stream.
func (r *simRun) dropMember(i int, cause string) {
	if r.dropped[i] {
		return
	}
	r.dropped[i] = true
	r.rec.MemberDropped(i, cause)
	for _, c := range r.members[i].Components() {
		c.Dropped = cause
	}
	for _, p := range r.memberProcs[i] {
		if !p.Done() {
			p.Interrupt("member dropped")
		}
	}
}

// Stage taxonomy names shared with the obs event stream; precomputed so an
// emission with a nil recorder costs only the branch inside the method.
var (
	stageNameS  = trace.StageS.String()
	stageNameIS = trace.StageIS.String()
	stageNameW  = trace.StageW.String()
	stageNameR  = trace.StageR.String()
	stageNameA  = trace.StageA.String()
	stageNameIA = trace.StageIA.String()
)

// coreLabel names a node's core pool in resource events.
func coreLabel(node int) string { return fmt.Sprintf("n%d.cores", node) }

// fail records the first component failure and interrupts every other
// process so the run winds down instead of deadlocking.
func (r *simRun) fail(err error) {
	if r.failure == nil {
		r.failure = err
	}
	for _, p := range r.procs {
		if !p.Done() {
			p.Interrupt("sibling component failed")
		}
	}
}

// jitterFn returns a per-component noise source. With zero jitter it
// always returns 1.
func (r *simRun) jitterFn(componentIndex int64) func() float64 {
	if r.opts.Jitter <= 0 {
		return func() float64 { return 1 }
	}
	rng := rand.New(rand.NewSource(r.opts.Seed*7919 + componentIndex))
	j := r.opts.Jitter
	lo := 1 - 3*j
	if lo < 0.5 {
		lo = 0.5
	}
	hi := 1 + 3*j
	return func() float64 {
		f := 1 + j*rng.NormFloat64()
		if f < lo {
			f = lo
		}
		if f > hi {
			f = hi
		}
		return f
	}
}

// compAlloc pairs a component's machine tenant with its node index.
type compAlloc struct {
	tenant *cluster.Tenant
	node   int
}

// launchMember starts the simulation process and the K analysis processes
// of member i, wired together with the synchronous no-buffering protocol.
func (r *simRun) launchMember(i int, simA compAlloc, anaA []compAlloc,
	simAssess cluster.Assessment, anaAssess []cluster.Assessment, mt *trace.MemberTrace) {

	k := len(anaA)
	n := r.es.Steps
	// writeTokens carries read-completion permits: the simulation needs K
	// permits before each write; readers deposit one permit per completed
	// read. Priming with K x slots lets the simulation run `slots` chunks
	// ahead; slots = 1 is the paper's synchronous no-buffering protocol.
	slots := r.opts.StagingSlots
	if slots <= 0 {
		slots = 1
	}
	writeTokens := sim.NewStore[struct{}](r.env, -1)
	rec := r.env.Recorder()
	if rec.Enabled() {
		writeTokens.SetLabel(fmt.Sprintf("m%d.writeTokens", i))
	}
	for t := 0; t < k*slots; t++ {
		writeTokens.Offer(struct{}{})
	}
	// announce[j] tells analysis j that a chunk is staged.
	announce := make([]*sim.Store[int], k)
	for j := range announce {
		announce[j] = sim.NewStore[int](r.env, -1)
		if rec.Enabled() {
			announce[j].SetLabel(fmt.Sprintf("m%d.announce%d", i, j))
		}
	}

	bytes := r.es.Members[i].Sim.BytesPerStep
	clock := r.spec.ClockHz

	// Simulation process.
	simTrace := mt.Simulation
	simJitter := r.jitterFn(int64(i) * 131)
	simCores := coreLabel(simA.node)
	simProc := r.env.Go(simTrace.Name, func(p *sim.Proc) error {
		cc := &compCtx{r: r, p: p, ct: simTrace, node: simA.node, member: i}
		// Stage operations are hoisted out of the step loop: each is one
		// closure for the component's whole run, with per-step parameters
		// (sDur) passed through a captured local, so the loop body itself
		// allocates nothing per step.
		var sDur float64
		waitS := func() error { return p.Wait(sDur) }
		getToken := func() error {
			_, e := writeTokens.Get(p)
			return e
		}
		writeOp := func() error { return r.tier.Write(p, simA.node, bytes) }
		// Stage records for all steps share one flat backing (3 per step:
		// S, I^S, W — error paths record fewer, never more, so the backing
		// never reallocates and every rec.Stages stays valid).
		stageBuf := make([]trace.StageRecord, 0, 3*n)
		simTrace.Steps = make([]trace.StepRecord, 0, n)
		simTrace.Start = p.Now()
		r.rec.ResourceAcquire(simCores, simA.node, float64(simA.tenant.Cores))
		defer func() {
			simTrace.End = p.Now()
			r.rec.ResourceRelease(simCores, simA.node, float64(simA.tenant.Cores))
		}()
		for step := 0; step < n; step++ {
			rec := trace.StepRecord{Index: step}
			base := len(stageBuf)
			// S: compute (stragglers dilate the modeled duration).
			sStart := p.Now()
			sDur = simAssess.ComputeTime * simJitter() * r.inj.Slowdown(simTrace.Name, sStart)
			r.rec.StageBegin(simTrace.Name, stageNameS, simA.node)
			sRetries, sRecovered, err := cc.attempt(stageNameS, false, waitS)
			r.rec.StageEnd(simTrace.Name, stageNameS, simA.node, 0)
			if err != nil {
				stageBuf = append(stageBuf, trace.StageRecord{
					Stage: trace.StageS, Start: sStart, Duration: p.Now() - sStart, Retries: sRetries,
				})
				rec.Stages = stageBuf[base:len(stageBuf):len(stageBuf)]
				simTrace.Steps = append(simTrace.Steps, rec)
				return cc.fail(err)
			}
			counters := r.model.ComputeCounters(simA.tenant, simAssess)
			counters.Cycles = sDur * clock * float64(simA.tenant.Cores)
			stageBuf = append(stageBuf, trace.StageRecord{
				Stage: trace.StageS, Start: sStart, Duration: stageSpan(p, sStart, sDur, sRecovered),
				Counters: counters, Retries: sRetries,
			})
			// I^S: wait for all K reads of the previous chunk.
			isStart := p.Now()
			isRetries := 0
			r.rec.StageBegin(simTrace.Name, stageNameIS, simA.node)
			var isErr error
			for t := 0; t < k && isErr == nil; t++ {
				var ret int
				ret, _, isErr = cc.attempt(stageNameIS, false, getToken)
				isRetries += ret
			}
			r.rec.StageEnd(simTrace.Name, stageNameIS, simA.node, 0)
			stageBuf = append(stageBuf, trace.StageRecord{
				Stage: trace.StageIS, Start: isStart, Duration: p.Now() - isStart, Retries: isRetries,
			})
			if isErr != nil {
				rec.Stages = stageBuf[base:len(stageBuf):len(stageBuf)]
				simTrace.Steps = append(simTrace.Steps, rec)
				return cc.fail(isErr)
			}
			// W: stage the chunk out (each retry attempt re-stages).
			wStart := p.Now()
			r.rec.StageBegin(simTrace.Name, stageNameW, simA.node)
			wRetries, _, err := cc.attempt(stageNameW, true, writeOp)
			r.rec.StageEnd(simTrace.Name, stageNameW, simA.node, float64(bytes))
			wDur := p.Now() - wStart
			if err != nil {
				stageBuf = append(stageBuf, trace.StageRecord{
					Stage: trace.StageW, Start: wStart, Duration: wDur, Retries: wRetries,
				})
				rec.Stages = stageBuf[base:len(stageBuf):len(stageBuf)]
				simTrace.Steps = append(simTrace.Steps, rec)
				return cc.fail(err)
			}
			stageBuf = append(stageBuf, trace.StageRecord{
				Stage: trace.StageW, Start: wStart, Duration: wDur,
				Counters: r.model.IOCounters(simA.tenant, bytes, wDur), Retries: wRetries,
			})
			rec.Stages = stageBuf[base:len(stageBuf):len(stageBuf)]
			simTrace.Steps = append(simTrace.Steps, rec)
			for j := range announce {
				announce[j].Offer(step)
			}
		}
		return nil
	})
	r.procs = append(r.procs, simProc)
	r.memberProcs[i] = append(r.memberProcs[i], simProc)
	r.comps = append(r.comps, runningComp{proc: simProc, name: simTrace.Name, node: simA.node})

	// Analysis processes.
	for j := 0; j < k; j++ {
		j := j
		anaTrace := mt.Analyses[j]
		alloc := anaA[j]
		assess := anaAssess[j]
		anaJitter := r.jitterFn(int64(i)*131 + int64(j) + 1)
		anaCores := coreLabel(alloc.node)
		proc := r.env.Go(anaTrace.Name, func(p *sim.Proc) error {
			cc := &compCtx{r: r, p: p, ct: anaTrace, node: alloc.node, member: i}
			// Hoisted stage operations (see the simulation process above).
			var aDur float64
			waitA := func() error { return p.Wait(aDur) }
			getChunk := func() error {
				_, e := announce[j].Get(p)
				return e
			}
			readOp := func() error { return r.tier.Read(p, simA.node, alloc.node, bytes) }
			// Flat stage-record backing: 3 per step (R, A, I^A).
			stageBuf := make([]trace.StageRecord, 0, 3*n)
			anaTrace.Steps = make([]trace.StepRecord, 0, n)
			// Lead-in: wait for the first chunk; the component's own
			// timeline starts at its first read.
			if _, _, err := cc.attempt(stageNameR, false, getChunk); err != nil {
				return cc.fail(err)
			}
			anaTrace.Start = p.Now()
			r.rec.ResourceAcquire(anaCores, alloc.node, float64(alloc.tenant.Cores))
			defer func() {
				anaTrace.End = p.Now()
				r.rec.ResourceRelease(anaCores, alloc.node, float64(alloc.tenant.Cores))
			}()
			for step := 0; step < n; step++ {
				rec := trace.StepRecord{Index: step}
				base := len(stageBuf)
				// R: stage the chunk in (each retry attempt re-reads).
				rStart := p.Now()
				r.rec.StageBegin(anaTrace.Name, stageNameR, alloc.node)
				rRetries, _, err := cc.attempt(stageNameR, true, readOp)
				r.rec.StageEnd(anaTrace.Name, stageNameR, alloc.node, float64(bytes))
				rDur := p.Now() - rStart
				if err != nil {
					stageBuf = append(stageBuf, trace.StageRecord{
						Stage: trace.StageR, Start: rStart, Duration: rDur, Retries: rRetries,
					})
					rec.Stages = stageBuf[base:len(stageBuf):len(stageBuf)]
					anaTrace.Steps = append(anaTrace.Steps, rec)
					return cc.fail(err)
				}
				stageBuf = append(stageBuf, trace.StageRecord{
					Stage: trace.StageR, Start: rStart, Duration: rDur,
					Counters: r.model.IOCounters(alloc.tenant, bytes, rDur), Retries: rRetries,
				})
				// The data is consumed: permit the next write.
				writeTokens.Offer(struct{}{})
				// A: compute (stragglers dilate the modeled duration).
				aStart := p.Now()
				aDur = assess.ComputeTime * anaJitter() * r.inj.Slowdown(anaTrace.Name, aStart)
				r.rec.StageBegin(anaTrace.Name, stageNameA, alloc.node)
				aRetries, aRecovered, err := cc.attempt(stageNameA, false, waitA)
				r.rec.StageEnd(anaTrace.Name, stageNameA, alloc.node, 0)
				if err != nil {
					stageBuf = append(stageBuf, trace.StageRecord{
						Stage: trace.StageA, Start: aStart, Duration: p.Now() - aStart, Retries: aRetries,
					})
					rec.Stages = stageBuf[base:len(stageBuf):len(stageBuf)]
					anaTrace.Steps = append(anaTrace.Steps, rec)
					return cc.fail(err)
				}
				counters := r.model.ComputeCounters(alloc.tenant, assess)
				counters.Cycles = aDur * clock * float64(alloc.tenant.Cores)
				stageBuf = append(stageBuf, trace.StageRecord{
					Stage: trace.StageA, Start: aStart, Duration: stageSpan(p, aStart, aDur, aRecovered),
					Counters: counters, Retries: aRetries,
				})
				// I^A: wait for the next chunk (zero on the final step).
				iaStart := p.Now()
				iaRetries := 0
				r.rec.StageBegin(anaTrace.Name, stageNameIA, alloc.node)
				var iaErr error
				if step < n-1 {
					iaRetries, _, iaErr = cc.attempt(stageNameIA, false, getChunk)
				}
				r.rec.StageEnd(anaTrace.Name, stageNameIA, alloc.node, 0)
				stageBuf = append(stageBuf, trace.StageRecord{
					Stage: trace.StageIA, Start: iaStart, Duration: p.Now() - iaStart, Retries: iaRetries,
				})
				rec.Stages = stageBuf[base:len(stageBuf):len(stageBuf)]
				anaTrace.Steps = append(anaTrace.Steps, rec)
				if iaErr != nil {
					return cc.fail(iaErr)
				}
			}
			return nil
		})
		r.procs = append(r.procs, proc)
		r.memberProcs[i] = append(r.memberProcs[i], proc)
		r.comps = append(r.comps, runningComp{proc: proc, name: anaTrace.Name, node: alloc.node})
	}
}

// stageSpan returns the recorded duration of a compute stage: the modeled
// duration when the attempt was clean (preserving exact legacy trace
// bytes), the elapsed span when recovery time (retries, restarts) was
// folded in.
func stageSpan(p *sim.Proc, start, modeled float64, recovered bool) float64 {
	if !recovered {
		return modeled
	}
	return p.Now() - start
}

// compCtx carries the per-process resilience state of one running
// component: the stage-attempt loop implementing retries, timeouts, and
// crash-restarts lives here.
type compCtx struct {
	r      *simRun
	p      *sim.Proc
	ct     *trace.ComponentTrace
	node   int
	member int
	// timedOut flags that the current attempt was interrupted by its
	// stage-timeout guard (a field, not a per-attempt local, so the guard
	// closure below can be created once instead of escaping per attempt).
	timedOut bool
	// guard is the stage-timeout callback, created lazily on the first
	// guarded attempt and reused for every one after.
	guard func()
}

// attempt runs one stage operation under the resilience policy.
// Transient faults (injected staging failures, stage timeouts) consume
// the retry budget with exponential backoff elapsed on the virtual
// clock; a node crash consumes the component's restart budget, each
// restart waiting RestartDelay before resuming the interrupted stage
// (never a completed step). retries counts recovered transient attempts
// for the stage record, recovered reports whether any recovery time was
// folded into the stage, and a non-nil err is unrecoverable under the
// policy.
func (c *compCtx) attempt(stageName string, guarded bool, op func() error) (retries int, recovered bool, err error) {
	res := c.r.res
	backoff := res.RetryBackoff
	delay := 0.0 // pending recovery delay before the next attempt
	for {
		err = nil
		if delay > 0 {
			err = c.p.Wait(delay)
		}
		delay = 0
		c.timedOut = false
		if err == nil {
			var tm sim.Timer
			if guarded && res.StageTimeout > 0 {
				if c.guard == nil {
					c.guard = func() {
						c.timedOut = true
						c.p.Interrupt("stage timeout")
					}
				}
				tm = c.r.env.AtTimer(c.p.Now()+res.StageTimeout, c.guard)
			}
			err = op()
			tm.Cancel()
			if err == nil {
				return retries, recovered, nil
			}
		}
		switch {
		case c.r.crashed[c.ct.Name]:
			delete(c.r.crashed, c.ct.Name)
			if c.ct.Restarts >= res.RestartLimit {
				return retries, recovered, fmt.Errorf(
					"%s: node %d crashed (restart limit %d exhausted)", stageName, c.node, res.RestartLimit)
			}
			c.ct.Restarts++
			recovered = true
			c.r.rec.Restart(c.ct.Name, c.node, c.ct.Restarts)
			delay = res.RestartDelay
		case c.timedOut || errors.Is(err, faults.ErrInjected):
			if c.timedOut {
				c.r.rec.Fault(c.ct.Name, "timeout", c.node, res.StageTimeout)
			}
			if retries >= res.StagingRetries {
				if c.timedOut {
					return retries, recovered, fmt.Errorf(
						"%s: attempt timed out after %v s (retry budget %d exhausted)",
						stageName, res.StageTimeout, res.StagingRetries)
				}
				return retries, recovered, fmt.Errorf(
					"%s (retry budget %d exhausted): %w", stageName, res.StagingRetries, err)
			}
			retries++
			recovered = true
			c.r.rec.Retry(c.ct.Name, stageName, c.node, retries)
			delay = backoff
			backoff *= res.BackoffFactor
		default:
			return retries, recovered, err
		}
	}
}

// fail terminates the component under the degradation policy. Interrupt
// errors are a sibling wind-down, a member drop, or an engine stop: they
// pass through quietly with only the Err annotation. Anything else is a
// primary failure: FailFast aborts the ensemble, DropMember removes this
// component's member and lets the rest of the ensemble continue.
func (c *compCtx) fail(err error) error {
	c.ct.Err = err.Error()
	if errors.Is(err, sim.ErrInterrupted) {
		return nil
	}
	if c.r.res.Mode == DropMember {
		c.r.dropMember(c.member, fmt.Sprintf("%s: %v", c.ct.Name, err))
		return nil
	}
	c.r.fail(fmt.Errorf("%s: %w", c.ct.Name, err))
	return nil
}
