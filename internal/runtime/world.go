package runtime

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sync"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/sim"
)

// simPlan is the frozen, execution-independent half of a simulated run:
// everything RunSimulated derives from (spec, placement, ensemble, tier,
// staging depth) before the first event fires — the machine with its
// tenants and staging reservations, the performance model, per-component
// allocations, and the static co-location assessments. A plan carries no
// seed, jitter, fault, or resilience state, so one plan serves every job
// of a campaign that shares the configuration: the DES borrows it
// read-only instead of rebuilding it per run.
type simPlan struct {
	spec  cluster.Spec
	p     placement.Placement
	es    EnsembleSpec
	tier  string
	slots int

	model   *cluster.Model
	machine *cluster.Machine
	sims    []compAlloc
	anas    [][]compAlloc

	assessSim []cluster.Assessment
	assessAna [][]cluster.Assessment

	// membersDisjoint reports that no two members share a node — the
	// static precondition of the member-parallel execution path.
	membersDisjoint bool
	// remoteAnas[i] counts member i's analyses placed off the member's
	// simulation node (DIMES remote readers); remoteMembers counts the
	// members with at least one.
	remoteAnas    []int
	remoteMembers int
}

// normSlots applies the StagingSlots default (1, the paper's synchronous
// no-buffering protocol).
func normSlots(slots int) int {
	if slots <= 0 {
		return 1
	}
	return slots
}

// planKey content-addresses a plan by its inputs. Jobs of one campaign
// differ in seeds, jitter, faults, and resilience — none of which shape
// the plan — so a Table 2/4 sweep collapses to one key per configuration.
func planKey(spec cluster.Spec, p placement.Placement, es EnsembleSpec, tier string, slots int) ([32]byte, error) {
	b, err := json.Marshal(struct {
		Spec  cluster.Spec        `json:"spec"`
		P     placement.Placement `json:"p"`
		ES    EnsembleSpec        `json:"es"`
		Tier  string              `json:"tier"`
		Slots int                 `json:"slots"`
	}{spec, p, es, tier, slots})
	if err != nil {
		return [32]byte{}, fmt.Errorf("runtime: plan key: %w", err)
	}
	return sha256.Sum256(b), nil
}

// buildPlan performs the validation-gated construction RunSimulated
// historically did inline, preserving its exact checks, ordering, and
// error wording: allocate every component on its node, reject multi-node
// components, reserve DIMES staging memory on producers, and pre-assess
// every component against its co-location context. modelOverride, when
// non-nil, substitutes the performance model (such plans are never
// cached — the override is not content-addressable).
func buildPlan(spec cluster.Spec, p placement.Placement, es EnsembleSpec, tier string, slots int, modelOverride *cluster.Model) (*simPlan, error) {
	machine, err := cluster.NewMachine(spec)
	if err != nil {
		return nil, err
	}
	model := modelOverride
	if model == nil {
		model = cluster.NewModel(spec)
	}

	// Allocate every component on its node; reject multi-node components
	// (the paper's experiments are single-node per component, and the
	// contention model is node-local).
	sims := make([]compAlloc, len(p.Members))
	anas := make([][]compAlloc, len(p.Members))
	// analysis < 0 means "the member's simulation"; the error label is only
	// built on the failure path.
	singleNode := func(c placement.Component, member, analysis int) (int, error) {
		ns := c.NodeSet()
		if len(ns) != 1 {
			label := fmt.Sprintf("member %d simulation", member)
			if analysis >= 0 {
				label = fmt.Sprintf("member %d analysis %d", member, analysis)
			}
			return 0, fmt.Errorf("runtime: %s spans %d nodes; the simulated backend requires single-node components", label, len(ns))
		}
		return ns[0], nil
	}
	for i, m := range p.Members {
		node, err := singleNode(m.Simulation, i, -1)
		if err != nil {
			return nil, err
		}
		t, err := machine.Allocate(fmt.Sprintf("m%d.sim", i), node, m.Simulation.Cores, es.Members[i].Sim)
		if err != nil {
			return nil, err
		}
		sims[i] = compAlloc{tenant: t, node: node}
		anas[i] = make([]compAlloc, len(m.Analyses))
		for j, a := range m.Analyses {
			anode, err := singleNode(a, i, j)
			if err != nil {
				return nil, err
			}
			at, err := machine.Allocate(fmt.Sprintf("m%d.ana%d", i, j), anode, a.Cores, es.Members[i].Analyses[j])
			if err != nil {
				return nil, err
			}
			anas[i][j] = compAlloc{tenant: at, node: anode}
		}
	}
	// DIMES keeps staged data in the producer's node memory, so remote
	// readers perturb the producer node and the staged chunks (double
	// buffered: the slot being read plus the one being written, times the
	// configured slot depth) must fit in the producer's DRAM. Intermediate
	// tiers (burst buffer, PFS) hold the data off-node: neither applies.
	remoteAnas := make([]int, len(p.Members))
	if tier == TierDimes {
		for i, m := range p.Members {
			for _, a := range m.Analyses {
				if a.NodeSet()[0] != sims[i].node {
					sims[i].tenant.RemoteReaders++
				}
			}
			reserve := es.Members[i].Sim.BytesPerStep * int64(slots+1)
			if err := machine.ReserveStaging(sims[i].tenant.ID, reserve); err != nil {
				return nil, err
			}
		}
	}
	for i := range p.Members {
		for j := range anas[i] {
			if anas[i][j].node != sims[i].node {
				remoteAnas[i]++
			}
		}
	}

	// Pre-assess every component against its co-location context (static
	// contention; the DES adds the emergent synchronization and staging
	// dynamics on top).
	assessSim := make([]cluster.Assessment, len(p.Members))
	assessAna := make([][]cluster.Assessment, len(p.Members))
	for i := range p.Members {
		node, _ := machine.Node(sims[i].node)
		a, err := model.Assess(node, sims[i].tenant)
		if err != nil {
			return nil, err
		}
		assessSim[i] = a
		assessAna[i] = make([]cluster.Assessment, len(anas[i]))
		for j := range anas[i] {
			anode, _ := machine.Node(anas[i][j].node)
			aa, err := model.Assess(anode, anas[i][j].tenant)
			if err != nil {
				return nil, err
			}
			assessAna[i][j] = aa
		}
	}

	pl := &simPlan{
		spec: spec, p: p, es: es, tier: tier, slots: slots,
		model: model, machine: machine, sims: sims, anas: anas,
		assessSim: assessSim, assessAna: assessAna,
		remoteAnas: remoteAnas,
	}
	pl.membersDisjoint = disjointMembers(p)
	for _, r := range remoteAnas {
		if r > 0 {
			pl.remoteMembers++
		}
	}
	return pl, nil
}

// disjointMembers reports that no node hosts components of two different
// members.
func disjointMembers(p placement.Placement) bool {
	owner := make(map[int]int)
	for i, m := range p.Members {
		for _, n := range m.Nodes() {
			if prev, ok := owner[n]; ok && prev != i {
				return false
			}
			owner[n] = i
		}
	}
	return true
}

// World is the shared immutable state of a campaign: a content-addressed
// cache of frozen simPlans plus an arena of recycled simulation
// environments. One World serves arbitrarily many concurrent jobs — the
// plan cache is read-mostly under a mutex and the environment pool is a
// sync.Pool — so a campaign service creates exactly one and threads it
// through every execution via SimOptions.World.
//
// Correctness: a plan is keyed by everything that shapes it (cluster
// spec, placement, ensemble spec, tier, staging depth) and carries no
// per-run state; during execution it is only read. Environments are
// recycled only after sim.Env.Reset succeeds, which restores the
// NewEnv-identical starting state while keeping allocations, so a pooled
// environment replays events bit-identically to a fresh one (pinned by
// the golden determinism tests).
type World struct {
	mu    sync.Mutex
	plans map[[32]byte]*simPlan
	envs  sync.Pool

	// hits/misses instrument the plan cache (read via Stats).
	hits, misses int64
}

// NewWorld returns an empty World.
func NewWorld() *World {
	w := &World{plans: make(map[[32]byte]*simPlan)}
	w.envs.New = func() any { return sim.NewEnv() }
	return w
}

// WorldStats counts plan-cache traffic.
type WorldStats struct {
	PlanHits   int64
	PlanMisses int64
}

// Stats returns the plan-cache counters.
func (w *World) Stats() WorldStats {
	if w == nil {
		return WorldStats{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return WorldStats{PlanHits: w.hits, PlanMisses: w.misses}
}

// cachedPlan returns the frozen plan for the key, or nil on a miss.
func (w *World) cachedPlan(key [32]byte) *simPlan {
	w.mu.Lock()
	defer w.mu.Unlock()
	if pl, ok := w.plans[key]; ok {
		w.hits++
		return pl
	}
	w.misses++
	return nil
}

// storePlan publishes a freshly built plan. Concurrent builders of the
// same key race benignly: both plans are correct and identical in
// content, and the last write wins.
func (w *World) storePlan(key [32]byte, pl *simPlan) {
	w.mu.Lock()
	w.plans[key] = pl
	w.mu.Unlock()
}

// acquireEnv returns an environment from the World's arena (nil World:
// a fresh one).
func (w *World) acquireEnv() *sim.Env {
	if w == nil {
		return sim.NewEnv()
	}
	return w.envs.Get().(*sim.Env)
}

// releaseEnv recycles an environment whose run quiesced cleanly; an
// environment that fails Reset (live processes, mid-run state) is simply
// dropped for the GC.
func (w *World) releaseEnv(e *sim.Env) {
	if w == nil || e == nil {
		return
	}
	if err := e.Reset(); err != nil {
		return
	}
	w.envs.Put(e)
}
