package runtime

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ensemblekit/internal/chunk"
	"ensemblekit/internal/dtl"
	"ensemblekit/internal/kernels"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/trace"
)

// RealOptions configures the real-execution backend: actual molecular
// dynamics and eigenvalue analyses over the real in-memory staging area,
// all on the local machine. Placement still matters for the indicator
// arithmetic (node sets, CP, M) but carries no performance meaning
// locally — that is what the simulated backend is for.
type RealOptions struct {
	// Steps is the number of in situ steps.
	Steps int
	// Stride is the number of MD steps per in situ step.
	Stride int
	// FramesPerChunk is the number of frames sampled (evenly) within each
	// stride window and batched into one chunk — the paper's simulation
	// "periodically sends in-memory generated frames". Default 1.
	FramesPerChunk int
	// LJ configures the molecular-dynamics engine (zero value:
	// kernels.DefaultLJConfig).
	LJ kernels.LJConfig
	// Eigen configures the analysis kernel (zero value:
	// kernels.DefaultEigenConfig).
	Eigen kernels.EigenConfig
	// MaxCores caps the worker goroutines per component (0: GOMAXPROCS).
	MaxCores int
	// Timeout bounds the whole execution (0: no bound).
	Timeout time.Duration
}

func (o RealOptions) normalized() RealOptions {
	if o.Steps <= 0 {
		o.Steps = 5
	}
	if o.Stride <= 0 {
		o.Stride = 20
	}
	if o.LJ == (kernels.LJConfig{}) {
		o.LJ = kernels.DefaultLJConfig()
	}
	if o.Eigen == (kernels.EigenConfig{}) {
		o.Eigen = kernels.DefaultEigenConfig()
	}
	if o.FramesPerChunk <= 0 {
		o.FramesPerChunk = 1
	}
	if o.FramesPerChunk > o.Stride {
		o.FramesPerChunk = o.Stride
	}
	if o.MaxCores <= 0 {
		o.MaxCores = runtime.GOMAXPROCS(0)
	}
	return o
}

// RunReal executes the ensemble for real: one goroutine per component,
// genuine LJ dynamics, genuine chunk serialization through the in-memory
// DTL, genuine power-iteration analyses, wall-clock stage timings. The
// returned trace has the same shape as the simulated backend's (hardware
// counters are zero — documented behaviour: portable Go cannot read PMUs).
func RunReal(p placement.Placement, opts RealOptions) (*trace.EnsembleTrace, error) {
	opts = opts.normalized()
	if len(p.Members) == 0 {
		return nil, fmt.Errorf("runtime: placement %q has no members", p.Name)
	}
	for i, m := range p.Members {
		if len(m.Analyses) == 0 {
			return nil, fmt.Errorf("runtime: member %d has no analyses", i)
		}
	}
	if err := opts.LJ.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Eigen.Validate(); err != nil {
		return nil, err
	}

	ctx := context.Background()
	cancel := context.CancelFunc(func() {})
	if opts.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	store := dtl.NewMem()
	for i, m := range p.Members {
		if err := store.Register(i, len(m.Analyses)); err != nil {
			return nil, err
		}
	}

	tr := &trace.EnsembleTrace{Backend: "real", Config: p.Name}
	for i, m := range p.Members {
		mt := &trace.MemberTrace{Index: i}
		mt.Simulation = &trace.ComponentTrace{
			Name: fmt.Sprintf("m%d.sim", i), Kind: trace.KindSimulation, Member: i,
			Nodes: m.Simulation.NodeSet(), Cores: m.Simulation.Cores,
		}
		for j, a := range m.Analyses {
			mt.Analyses = append(mt.Analyses, &trace.ComponentTrace{
				Name: fmt.Sprintf("m%d.ana%d", i, j), Kind: trace.KindAnalysis,
				Member: i, Analysis: j,
				Nodes: a.NodeSet(), Cores: a.Cores,
			})
		}
		tr.Members = append(tr.Members, mt)
	}

	epoch := time.Now()
	since := func() float64 { return time.Since(epoch).Seconds() }
	cores := func(want int) int {
		if want > opts.MaxCores {
			return opts.MaxCores
		}
		if want < 1 {
			return 1
		}
		return want
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel() // wind down every component
	}

	for i := range p.Members {
		i := i
		mt := tr.Members[i]
		simCores := cores(p.Members[i].Simulation.Cores)

		wg.Add(1)
		go func() {
			defer wg.Done()
			ct := mt.Simulation
			ct.Start = since()
			defer func() {
				mu.Lock()
				ct.End = since()
				mu.Unlock()
			}()
			cfg := opts.LJ
			cfg.Seed += int64(i) // distinct trajectories per member
			sim, err := kernels.NewLJSimulator(cfg)
			if err != nil {
				fail(fmt.Errorf("%s: %w", ct.Name, err))
				return
			}
			for step := 0; step < opts.Steps; step++ {
				rec := trace.StepRecord{Index: step}
				// S: integrate one stride window, sampling frames evenly.
				sStart := since()
				frames := make([]chunk.Frame, 0, opts.FramesPerChunk)
				per := opts.Stride / opts.FramesPerChunk
				left := opts.Stride
				var advErr error
				for f := 0; f < opts.FramesPerChunk; f++ {
					n := per
					if f == opts.FramesPerChunk-1 {
						n = left // absorb the remainder in the last window
					}
					var frame chunk.Frame
					frame, advErr = sim.Advance(ctx, n, simCores)
					if advErr != nil {
						break
					}
					left -= n
					frames = append(frames, frame)
				}
				if advErr != nil {
					recordErr(&mu, ct, rec, advErr)
					fail(fmt.Errorf("%s: %w", ct.Name, advErr))
					return
				}
				rec.Stages = append(rec.Stages, trace.StageRecord{
					Stage: trace.StageS, Start: sStart, Duration: since() - sStart,
				})
				// I^S: the no-buffering protocol.
				isStart := since()
				if err := store.AwaitWritable(ctx, i); err != nil {
					recordErr(&mu, ct, rec, err)
					fail(fmt.Errorf("%s: %w", ct.Name, err))
					return
				}
				rec.Stages = append(rec.Stages, trace.StageRecord{
					Stage: trace.StageIS, Start: isStart, Duration: since() - isStart,
				})
				// W: serialize and stage.
				wStart := since()
				ck := &chunk.Chunk{
					ID:       chunk.ID{Member: i, Step: step},
					Producer: ct.Name,
					Frames:   frames,
				}
				data, err := ck.Encode()
				if err == nil {
					err = store.Put(ctx, ck.ID, data)
				}
				if err != nil {
					recordErr(&mu, ct, rec, err)
					fail(fmt.Errorf("%s: %w", ct.Name, err))
					return
				}
				rec.Stages = append(rec.Stages, trace.StageRecord{
					Stage: trace.StageW, Start: wStart, Duration: since() - wStart,
					Counters: trace.Counters{Bytes: int64(len(data))},
				})
				mu.Lock()
				ct.Steps = append(ct.Steps, rec)
				mu.Unlock()
			}
		}()

		for j := range p.Members[i].Analyses {
			j := j
			anaCores := cores(p.Members[i].Analyses[j].Cores)
			wg.Add(1)
			go func() {
				defer wg.Done()
				ct := mt.Analyses[j]
				analyzer, err := kernels.NewEigenAnalyzer(opts.Eigen)
				if err != nil {
					fail(fmt.Errorf("%s: %w", ct.Name, err))
					return
				}
				// Lead-in: the component's timeline starts at its first
				// available chunk.
				if err := store.Await(ctx, chunk.ID{Member: i, Step: 0}); err != nil {
					fail(fmt.Errorf("%s: %w", ct.Name, err))
					return
				}
				ct.Start = since()
				defer func() {
					mu.Lock()
					ct.End = since()
					mu.Unlock()
				}()
				for step := 0; step < opts.Steps; step++ {
					rec := trace.StepRecord{Index: step}
					// R: fetch and deserialize.
					rStart := since()
					id := chunk.ID{Member: i, Step: step}
					data, err := store.Get(ctx, id)
					var ck *chunk.Chunk
					if err == nil {
						ck, err = chunk.Decode(data)
					}
					if err != nil {
						recordErr(&mu, ct, rec, err)
						fail(fmt.Errorf("%s: %w", ct.Name, err))
						return
					}
					rec.Stages = append(rec.Stages, trace.StageRecord{
						Stage: trace.StageR, Start: rStart, Duration: since() - rStart,
						Counters: trace.Counters{Bytes: int64(len(data))},
					})
					// A: the eigenvalue collective variable.
					aStart := since()
					cv, err := analyzer.Analyze(ctx, ck.Frames, anaCores)
					if err != nil {
						recordErr(&mu, ct, rec, err)
						fail(fmt.Errorf("%s: %w", ct.Name, err))
						return
					}
					mu.Lock()
					ct.Outputs = append(ct.Outputs, cv)
					mu.Unlock()
					rec.Stages = append(rec.Stages, trace.StageRecord{
						Stage: trace.StageA, Start: aStart, Duration: since() - aStart,
					})
					// I^A: wait for the next chunk.
					iaStart := since()
					if step < opts.Steps-1 {
						if err := store.Await(ctx, chunk.ID{Member: i, Step: step + 1}); err != nil {
							recordErr(&mu, ct, rec, err)
							fail(fmt.Errorf("%s: %w", ct.Name, err))
							return
						}
					}
					rec.Stages = append(rec.Stages, trace.StageRecord{
						Stage: trace.StageIA, Start: iaStart, Duration: since() - iaStart,
					})
					mu.Lock()
					ct.Steps = append(ct.Steps, rec)
					mu.Unlock()
				}
			}()
		}
	}
	wg.Wait()
	if firstErr != nil {
		return tr, fmt.Errorf("runtime: real execution failed: %w", firstErr)
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("runtime: produced invalid trace: %w", err)
	}
	return tr, nil
}

// recordErr stores a failed partial step in the component trace.
func recordErr(mu *sync.Mutex, ct *trace.ComponentTrace, rec trace.StepRecord, err error) {
	mu.Lock()
	defer mu.Unlock()
	ct.Err = err.Error()
	if len(rec.Stages) > 0 {
		ct.Steps = append(ct.Steps, rec)
	}
}
