package runtime

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ensemblekit/internal/chunk"
	"ensemblekit/internal/dtl"
	"ensemblekit/internal/faults"
	"ensemblekit/internal/kernels"
	"ensemblekit/internal/obs"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/trace"
)

// RealOptions configures the real-execution backend: actual molecular
// dynamics and eigenvalue analyses over the real in-memory staging area,
// all on the local machine. Placement still matters for the indicator
// arithmetic (node sets, CP, M) but carries no performance meaning
// locally — that is what the simulated backend is for.
type RealOptions struct {
	// Steps is the number of in situ steps.
	Steps int
	// Stride is the number of MD steps per in situ step.
	Stride int
	// FramesPerChunk is the number of frames sampled (evenly) within each
	// stride window and batched into one chunk — the paper's simulation
	// "periodically sends in-memory generated frames". Default 1.
	FramesPerChunk int
	// LJ configures the molecular-dynamics engine (zero value:
	// kernels.DefaultLJConfig).
	LJ kernels.LJConfig
	// Eigen configures the analysis kernel (zero value:
	// kernels.DefaultEigenConfig).
	Eigen kernels.EigenConfig
	// MaxCores caps the worker goroutines per component (0: GOMAXPROCS).
	MaxCores int
	// Timeout bounds the whole execution (0: no bound).
	Timeout time.Duration
	// Faults optionally injects a declarative fault plan (see
	// internal/faults). The real backend honours staging-failure rules
	// (tier "mem") and node crashes (mapped to wall-clock timers that
	// kill every member with a component on the node); network windows
	// and stragglers are simulation-only and are ignored here.
	Faults *faults.Plan
	// Resilience configures recovery: staging retries with wall-clock
	// backoff, per-attempt staging timeouts, and the degradation mode.
	// Crash-restarts are simulation-only (RestartLimit is ignored): a
	// real crashed process has no virtual clock to resume on, so a crash
	// here always escalates to the degradation mode.
	Resilience Resilience
	// Recorder optionally attaches the live instrumentation bus, like
	// SimOptions.Recorder: component lifecycle and per-stage begin/end
	// events, stamped on the wall clock (seconds since the run's epoch).
	// The real backend runs components on concurrent goroutines, so the
	// recorder is serialized internally — callers pass a plain
	// *obs.Recorder here exactly as they do for the simulated backend.
	Recorder *obs.Recorder
}

func (o RealOptions) normalized() RealOptions {
	if o.Steps <= 0 {
		o.Steps = 5
	}
	if o.Stride <= 0 {
		o.Stride = 20
	}
	if o.LJ == (kernels.LJConfig{}) {
		o.LJ = kernels.DefaultLJConfig()
	}
	if o.Eigen == (kernels.EigenConfig{}) {
		o.Eigen = kernels.DefaultEigenConfig()
	}
	if o.FramesPerChunk <= 0 {
		o.FramesPerChunk = 1
	}
	if o.FramesPerChunk > o.Stride {
		o.FramesPerChunk = o.Stride
	}
	if o.MaxCores <= 0 {
		o.MaxCores = runtime.GOMAXPROCS(0)
	}
	return o
}

// RunReal executes the ensemble for real: one goroutine per component,
// genuine LJ dynamics, genuine chunk serialization through the in-memory
// DTL, genuine power-iteration analyses, wall-clock stage timings. The
// returned trace has the same shape as the simulated backend's (hardware
// counters are zero — documented behaviour: portable Go cannot read PMUs).
//
// Partial-trace contract: on timeout, cancellation, or any component
// failure, RunReal returns the partial trace recorded up to the failure
// alongside the non-nil error — every completed step and the failed
// component's Err annotation are preserved, never discarded. Under the
// DropMember degradation mode, member-scoped failures do not error the
// run at all: the run completes, dropped members carry their cause in
// the trace, and aggregation excludes them via SurvivingMembers.
func RunReal(p placement.Placement, opts RealOptions) (*trace.EnsembleTrace, error) {
	opts = opts.normalized()
	if len(p.Members) == 0 {
		return nil, fmt.Errorf("runtime: placement %q has no members", p.Name)
	}
	for i, m := range p.Members {
		if len(m.Analyses) == 0 {
			return nil, fmt.Errorf("runtime: member %d has no analyses", i)
		}
	}
	if err := opts.LJ.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Eigen.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Resilience.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Faults.Validate(); err != nil {
		return nil, err
	}
	res := opts.Resilience.normalized()
	inj := faults.NewInjector(opts.Faults)

	ctx := context.Background()
	cancel := context.CancelFunc(func() {})
	if opts.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	// Per-member contexts let the drop-member policy wind down a single
	// member while the rest of the ensemble keeps running.
	memberCtx := make([]context.Context, len(p.Members))
	memberCancel := make([]context.CancelFunc, len(p.Members))
	for i := range p.Members {
		memberCtx[i], memberCancel[i] = context.WithCancel(ctx)
	}
	defer func() {
		for _, c := range memberCancel {
			c()
		}
	}()

	store := dtl.NewMem()
	for i, m := range p.Members {
		if err := store.Register(i, len(m.Analyses)); err != nil {
			return nil, err
		}
	}

	tr := &trace.EnsembleTrace{Backend: "real", Config: p.Name}
	for i, m := range p.Members {
		mt := &trace.MemberTrace{Index: i}
		mt.Simulation = &trace.ComponentTrace{
			Name: fmt.Sprintf("m%d.sim", i), Kind: trace.KindSimulation, Member: i,
			Nodes: m.Simulation.NodeSet(), Cores: m.Simulation.Cores,
		}
		for j, a := range m.Analyses {
			mt.Analyses = append(mt.Analyses, &trace.ComponentTrace{
				Name: fmt.Sprintf("m%d.ana%d", i, j), Kind: trace.KindAnalysis,
				Member: i, Analysis: j,
				Nodes: a.NodeSet(), Cores: a.Cores,
			})
		}
		tr.Members = append(tr.Members, mt)
	}

	epoch := time.Now()
	since := func() float64 { return time.Since(epoch).Seconds() }
	orec := newSyncRecorder(opts.Recorder, since)
	cores := func(want int) int {
		if want > opts.MaxCores {
			return opts.MaxCores
		}
		if want < 1 {
			return 1
		}
		return want
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel() // wind down every component
	}
	dropped := make([]bool, len(p.Members))
	dropMember := func(i int, cause string) {
		mu.Lock()
		if dropped[i] {
			mu.Unlock()
			return
		}
		dropped[i] = true
		for _, c := range tr.Members[i].Components() {
			c.Dropped = cause
		}
		mu.Unlock()
		orec.MemberDropped(i, cause)
		memberCancel[i]() // wind down this member only
	}
	// compFail routes a member-scoped failure through the degradation
	// policy. Failures caused by the run-wide context (timeout, abort)
	// always stay global: a timed-out run must error, not silently drop
	// every member.
	compFail := func(member int, err error) {
		if res.Mode == DropMember && ctx.Err() == nil {
			dropMember(member, err.Error())
			return
		}
		fail(err)
	}

	// Node crashes map to wall-clock timers killing every member with a
	// component on the node.
	var crashTimers []*time.Timer
	for _, c := range inj.Crashes() {
		c := c
		crashTimers = append(crashTimers, time.AfterFunc(
			time.Duration(c.At*float64(time.Second)), func() {
				for i := range p.Members {
					if !memberOnNode(p.Members[i], c.Node) {
						continue
					}
					if res.Mode == DropMember {
						dropMember(i, fmt.Sprintf("node %d crashed", c.Node))
					} else {
						fail(fmt.Errorf("node %d crashed", c.Node))
					}
				}
			}))
	}
	defer func() {
		for _, t := range crashTimers {
			t.Stop()
		}
	}()

	for i := range p.Members {
		i := i
		mt := tr.Members[i]
		mctx := memberCtx[i]
		simCores := cores(p.Members[i].Simulation.Cores)

		wg.Add(1)
		go func() {
			defer wg.Done()
			ct := mt.Simulation
			node := firstNode(p.Members[i].Simulation.NodeSet())
			ct.Start = since()
			orec.ProcStart(ct.Name, node)
			defer func() {
				mu.Lock()
				ct.End = since()
				mu.Unlock()
				orec.ProcEnd(ct.Name, node)
			}()
			cfg := opts.LJ
			cfg.Seed += int64(i) // distinct trajectories per member
			sim, err := kernels.NewLJSimulator(cfg)
			if err != nil {
				compFail(i, fmt.Errorf("%s: %w", ct.Name, err))
				return
			}
			for step := 0; step < opts.Steps; step++ {
				rec := trace.StepRecord{Index: step}
				// S: integrate one stride window, sampling frames evenly.
				sStart := since()
				orec.StageBegin(ct.Name, stageNameS, node)
				frames := make([]chunk.Frame, 0, opts.FramesPerChunk)
				per := opts.Stride / opts.FramesPerChunk
				left := opts.Stride
				var advErr error
				for f := 0; f < opts.FramesPerChunk; f++ {
					n := per
					if f == opts.FramesPerChunk-1 {
						n = left // absorb the remainder in the last window
					}
					var frame chunk.Frame
					frame, advErr = sim.Advance(mctx, n, simCores)
					if advErr != nil {
						break
					}
					left -= n
					frames = append(frames, frame)
				}
				orec.StageEnd(ct.Name, stageNameS, node, 0)
				if advErr != nil {
					recordErr(&mu, ct, rec, advErr)
					compFail(i, fmt.Errorf("%s: %w", ct.Name, advErr))
					return
				}
				rec.Stages = append(rec.Stages, trace.StageRecord{
					Stage: trace.StageS, Start: sStart, Duration: since() - sStart,
				})
				// I^S: the no-buffering protocol.
				isStart := since()
				orec.StageBegin(ct.Name, stageNameIS, node)
				err := store.AwaitWritable(mctx, i)
				orec.StageEnd(ct.Name, stageNameIS, node, 0)
				if err != nil {
					recordErr(&mu, ct, rec, err)
					compFail(i, fmt.Errorf("%s: %w", ct.Name, err))
					return
				}
				rec.Stages = append(rec.Stages, trace.StageRecord{
					Stage: trace.StageIS, Start: isStart, Duration: since() - isStart,
				})
				// W: serialize and stage (injected faults retried under
				// the resilience policy).
				wStart := since()
				orec.StageBegin(ct.Name, stageNameW, node)
				ck := &chunk.Chunk{
					ID:       chunk.ID{Member: i, Step: step},
					Producer: ct.Name,
					Frames:   frames,
				}
				data, err := ck.Encode()
				wRetries := 0
				if err == nil {
					wRetries, err = stagingDo(mctx, inj, res, since, func(octx context.Context) error {
						return store.Put(octx, ck.ID, data)
					})
				}
				orec.StageEnd(ct.Name, stageNameW, node, float64(len(data)))
				if err != nil {
					recordErr(&mu, ct, rec, err)
					compFail(i, fmt.Errorf("%s: %w", ct.Name, err))
					return
				}
				rec.Stages = append(rec.Stages, trace.StageRecord{
					Stage: trace.StageW, Start: wStart, Duration: since() - wStart,
					Counters: trace.Counters{Bytes: int64(len(data))},
					Retries:  wRetries,
				})
				mu.Lock()
				ct.Steps = append(ct.Steps, rec)
				mu.Unlock()
			}
		}()

		for j := range p.Members[i].Analyses {
			j := j
			anaCores := cores(p.Members[i].Analyses[j].Cores)
			wg.Add(1)
			go func() {
				defer wg.Done()
				ct := mt.Analyses[j]
				node := firstNode(p.Members[i].Analyses[j].NodeSet())
				analyzer, err := kernels.NewEigenAnalyzer(opts.Eigen)
				if err != nil {
					compFail(i, fmt.Errorf("%s: %w", ct.Name, err))
					return
				}
				// Lead-in: the component's timeline starts at its first
				// available chunk.
				if err := store.Await(mctx, chunk.ID{Member: i, Step: 0}); err != nil {
					compFail(i, fmt.Errorf("%s: %w", ct.Name, err))
					return
				}
				ct.Start = since()
				orec.ProcStart(ct.Name, node)
				defer func() {
					mu.Lock()
					ct.End = since()
					mu.Unlock()
					orec.ProcEnd(ct.Name, node)
				}()
				for step := 0; step < opts.Steps; step++ {
					rec := trace.StepRecord{Index: step}
					// R: fetch and deserialize (injected faults retried
					// under the resilience policy).
					rStart := since()
					orec.StageBegin(ct.Name, stageNameR, node)
					id := chunk.ID{Member: i, Step: step}
					var data []byte
					rRetries, err := stagingDo(mctx, inj, res, since, func(octx context.Context) error {
						var gerr error
						data, gerr = store.Get(octx, id)
						return gerr
					})
					var ck *chunk.Chunk
					if err == nil {
						ck, err = chunk.Decode(data)
					}
					orec.StageEnd(ct.Name, stageNameR, node, float64(len(data)))
					if err != nil {
						recordErr(&mu, ct, rec, err)
						compFail(i, fmt.Errorf("%s: %w", ct.Name, err))
						return
					}
					rec.Stages = append(rec.Stages, trace.StageRecord{
						Stage: trace.StageR, Start: rStart, Duration: since() - rStart,
						Counters: trace.Counters{Bytes: int64(len(data))},
						Retries:  rRetries,
					})
					// A: the eigenvalue collective variable.
					aStart := since()
					orec.StageBegin(ct.Name, stageNameA, node)
					cv, err := analyzer.Analyze(mctx, ck.Frames, anaCores)
					orec.StageEnd(ct.Name, stageNameA, node, 0)
					if err != nil {
						recordErr(&mu, ct, rec, err)
						compFail(i, fmt.Errorf("%s: %w", ct.Name, err))
						return
					}
					mu.Lock()
					ct.Outputs = append(ct.Outputs, cv)
					mu.Unlock()
					rec.Stages = append(rec.Stages, trace.StageRecord{
						Stage: trace.StageA, Start: aStart, Duration: since() - aStart,
					})
					// I^A: wait for the next chunk.
					iaStart := since()
					orec.StageBegin(ct.Name, stageNameIA, node)
					if step < opts.Steps-1 {
						if err := store.Await(mctx, chunk.ID{Member: i, Step: step + 1}); err != nil {
							orec.StageEnd(ct.Name, stageNameIA, node, 0)
							recordErr(&mu, ct, rec, err)
							compFail(i, fmt.Errorf("%s: %w", ct.Name, err))
							return
						}
					}
					orec.StageEnd(ct.Name, stageNameIA, node, 0)
					rec.Stages = append(rec.Stages, trace.StageRecord{
						Stage: trace.StageIA, Start: iaStart, Duration: since() - iaStart,
					})
					mu.Lock()
					ct.Steps = append(ct.Steps, rec)
					mu.Unlock()
				}
			}()
		}
	}
	wg.Wait()
	if firstErr != nil {
		return tr, fmt.Errorf("runtime: real execution failed: %w", firstErr)
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("runtime: produced invalid trace: %w", err)
	}
	return tr, nil
}

// stagingDo runs one staging operation under the resilience policy:
// injected faults (tier "mem") and per-attempt timeouts consume the
// retry budget, with exponential wall-clock backoff between attempts.
// It returns the number of recovered attempts for the stage record.
func stagingDo(ctx context.Context, inj *faults.Injector, res Resilience,
	since func() float64, op func(context.Context) error) (int, error) {
	backoff := res.RetryBackoff
	retries := 0
	for {
		err := inj.StagingOp("mem", since())
		if err == nil {
			octx := ctx
			var cancel context.CancelFunc
			if res.StageTimeout > 0 {
				octx, cancel = context.WithTimeout(ctx,
					time.Duration(res.StageTimeout*float64(time.Second)))
			}
			err = op(octx)
			if cancel != nil {
				cancel()
			}
			if err == nil {
				return retries, nil
			}
			if ctx.Err() != nil {
				return retries, err // run or member wound down: not retryable
			}
		}
		transient := errors.Is(err, faults.ErrInjected) || errors.Is(err, context.DeadlineExceeded)
		if !transient || retries >= res.StagingRetries {
			return retries, err
		}
		retries++
		if backoff > 0 {
			t := time.NewTimer(time.Duration(backoff * float64(time.Second)))
			select {
			case <-ctx.Done():
				t.Stop()
				return retries, ctx.Err()
			case <-t.C:
			}
			backoff *= res.BackoffFactor
		}
	}
}

// memberOnNode reports whether any component of the member occupies the
// node (crash blast radius for the real backend).
func memberOnNode(m placement.Member, node int) bool {
	for _, n := range m.Simulation.NodeSet() {
		if n == node {
			return true
		}
	}
	for _, a := range m.Analyses {
		for _, n := range a.NodeSet() {
			if n == node {
				return true
			}
		}
	}
	return false
}

// syncRecorder serializes obs emissions from the real backend's
// concurrent component goroutines. obs.Recorder is deliberately not
// goroutine-safe — the DES engine's cooperative scheduling protects it
// in RunSimulated — so the real backend funnels every emission through
// one mutex. A nil *syncRecorder (no recorder attached) is a no-op,
// matching the nil-safety convention of the instrumentation tier.
type syncRecorder struct {
	mu  sync.Mutex
	rec *obs.Recorder
}

// newSyncRecorder wraps rec with emission serialization and binds its
// clock to the run's wall-clock epoch. Returns nil for a nil recorder.
func newSyncRecorder(rec *obs.Recorder, clock func() float64) *syncRecorder {
	if rec == nil {
		return nil
	}
	rec.SetClock(clock)
	return &syncRecorder{rec: rec}
}

func (s *syncRecorder) ProcStart(name string, node int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rec.ProcStart(name, node)
	s.mu.Unlock()
}

func (s *syncRecorder) ProcEnd(name string, node int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rec.ProcEnd(name, node)
	s.mu.Unlock()
}

func (s *syncRecorder) StageBegin(component, stage string, node int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rec.StageBegin(component, stage, node)
	s.mu.Unlock()
}

func (s *syncRecorder) StageEnd(component, stage string, node int, bytes float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rec.StageEnd(component, stage, node, bytes)
	s.mu.Unlock()
}

func (s *syncRecorder) MemberDropped(member int, cause string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rec.MemberDropped(member, cause)
	s.mu.Unlock()
}

// firstNode picks the representative node of a component's node set for
// event attribution (NoNode when the set is empty).
func firstNode(nodes []int) int {
	if len(nodes) == 0 {
		return obs.NoNode
	}
	return nodes[0]
}

// recordErr stores a failed partial step in the component trace.
func recordErr(mu *sync.Mutex, ct *trace.ComponentTrace, rec trace.StepRecord, err error) {
	mu.Lock()
	defer mu.Unlock()
	ct.Err = err.Error()
	if len(rec.Stages) > 0 {
		ct.Steps = append(ct.Steps, rec)
	}
}
