package runtime

import (
	"strings"
	"testing"
	"time"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/core"
	"ensemblekit/internal/kernels"
	"ensemblekit/internal/network"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/trace"
)

func mustRunSim(t *testing.T, cfg placement.Placement, steps int, opts SimOptions) *trace.EnsembleTrace {
	t.Helper()
	spec := cluster.Cori(3)
	es := SpecForPlacement(cfg, steps)
	tr, err := RunSimulated(spec, cfg, es, opts)
	if err != nil {
		t.Fatalf("%s: %v", cfg.Name, err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("%s: invalid trace: %v", cfg.Name, err)
	}
	return tr
}

func TestSimulatedBasicExecution(t *testing.T) {
	tr := mustRunSim(t, placement.Cf(), 10, SimOptions{})
	if tr.Backend != "simulated" || tr.Config != "C_f" {
		t.Errorf("metadata: %q %q", tr.Backend, tr.Config)
	}
	if len(tr.Members) != 1 {
		t.Fatalf("members = %d", len(tr.Members))
	}
	m := tr.Members[0]
	if len(m.Simulation.Steps) != 10 || len(m.Analyses[0].Steps) != 10 {
		t.Fatalf("steps: sim %d ana %d, want 10 each", len(m.Simulation.Steps), len(m.Analyses[0].Steps))
	}
	// The calibrated C_f member is Idle Analyzer: the simulation never
	// waits (I^S ~ 0 beyond the first step), the analysis does.
	ss, err := core.FromMemberTrace(m, core.ExtractOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ss.CouplingScenario(0)
	if err != nil {
		t.Fatal(err)
	}
	if sc != core.IdleAnalyzer {
		t.Errorf("C_f coupling scenario = %v, want IdleAnalyzer (Eq. 4 holds at 8 analysis cores)", sc)
	}
	if !ss.SatisfiesEq4() {
		t.Error("C_f should satisfy Eq. 4 with the paper's core counts")
	}
}

func TestSimulatedSynchronousProtocol(t *testing.T) {
	// W_i happens-before R_i happens-before W_{i+1} (Section 3.1).
	tr := mustRunSim(t, placement.Cf(), 8, SimOptions{})
	m := tr.Members[0]
	const tol = 1e-9
	for i := range m.Simulation.Steps {
		var wEnd, wNextStart, rStart, rEnd float64
		for _, st := range m.Simulation.Steps[i].Stages {
			if st.Stage == trace.StageW {
				wEnd = st.End()
			}
		}
		for _, st := range m.Analyses[0].Steps[i].Stages {
			if st.Stage == trace.StageR {
				rStart = st.Start
				rEnd = st.End()
			}
		}
		if rStart < wEnd-tol {
			t.Fatalf("step %d: R starts at %v before W ends at %v", i, rStart, wEnd)
		}
		if i+1 < len(m.Simulation.Steps) {
			for _, st := range m.Simulation.Steps[i+1].Stages {
				if st.Stage == trace.StageW {
					wNextStart = st.Start
				}
			}
			if wNextStart < rEnd-tol {
				t.Fatalf("step %d: W_{i+1} starts at %v before R_i ends at %v", i, wNextStart, rEnd)
			}
		}
	}
}

func TestSimulatedDeterminism(t *testing.T) {
	t1 := mustRunSim(t, placement.C15(), 6, SimOptions{})
	t2 := mustRunSim(t, placement.C15(), 6, SimOptions{})
	if t1.Makespan() != t2.Makespan() {
		t.Errorf("nondeterministic makespans: %v vs %v", t1.Makespan(), t2.Makespan())
	}
	// With jitter the trace changes but stays deterministic per seed.
	j1 := mustRunSim(t, placement.C15(), 6, SimOptions{Jitter: 0.05, Seed: 42})
	j2 := mustRunSim(t, placement.C15(), 6, SimOptions{Jitter: 0.05, Seed: 42})
	j3 := mustRunSim(t, placement.C15(), 6, SimOptions{Jitter: 0.05, Seed: 43})
	if j1.Makespan() != j2.Makespan() {
		t.Errorf("same seed differs: %v vs %v", j1.Makespan(), j2.Makespan())
	}
	if j1.Makespan() == j3.Makespan() {
		t.Error("different seeds should perturb the makespan")
	}
	if j1.Makespan() == t1.Makespan() {
		t.Error("jitter should alter the makespan")
	}
}

func TestSimulatedMakespanShapes(t *testing.T) {
	// The headline behaviour of Figures 4-5: full coupling co-location
	// (C1.5) beats both analysis-sharing (C1.4) and the co-location-free
	// baseline (C_f); C1.4 is the worst of the two-member configs.
	makespan := func(cfg placement.Placement) float64 {
		return mustRunSim(t, cfg, PaperSteps, SimOptions{}).Makespan()
	}
	cf := makespan(placement.Cf())
	c14 := makespan(placement.C14())
	c15 := makespan(placement.C15())
	c12 := makespan(placement.C12())
	if c15 >= cf {
		t.Errorf("C1.5 (%v) should beat C_f (%v): DIMES locality", c15, cf)
	}
	if c15 >= c14 {
		t.Errorf("C1.5 (%v) should beat C1.4 (%v)", c15, c14)
	}
	if c15 >= c12 {
		t.Errorf("C1.5 (%v) should beat C1.2 (%v)", c15, c12)
	}
	if c14 <= cf {
		t.Errorf("C1.4 (%v) should be worse than C_f (%v): analysis contention", c14, cf)
	}
}

func TestSimulatedModelPrediction(t *testing.T) {
	// Equation 2 must predict the simulated makespan closely: the DES and
	// the analytic model describe the same steady state.
	tr := mustRunSim(t, placement.C15(), PaperSteps, SimOptions{})
	for _, m := range tr.Members {
		rep, err := core.ValidateModel(m, core.ExtractOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.RelativeError > 0.05 {
			t.Errorf("member %d: model predicts %v, measured %v (err %.2f%%)",
				m.Index, rep.Predicted, rep.Measured, 100*rep.RelativeError)
		}
	}
}

func TestSimulatedTiers(t *testing.T) {
	// On the co-located configuration in-memory staging (DIMES) beats the
	// burst buffer, which beats the parallel file system — the in situ
	// motivation of the paper's Section 1.
	dimes := mustRunSim(t, placement.Cc(), 8, SimOptions{Tier: TierDimes})
	bb := mustRunSim(t, placement.Cc(), 8, SimOptions{Tier: TierBurstBuffer})
	pfs := mustRunSim(t, placement.Cc(), 8, SimOptions{Tier: TierPFS})
	if !(dimes.Makespan() <= bb.Makespan() && bb.Makespan() <= pfs.Makespan()) {
		t.Errorf("tier ordering violated: dimes %v, bb %v, pfs %v",
			dimes.Makespan(), bb.Makespan(), pfs.Makespan())
	}
	spec := cluster.Cori(3)
	cfg := placement.Cf()
	if _, err := RunSimulated(spec, cfg, SpecForPlacement(cfg, 4), SimOptions{Tier: "tape"}); err == nil {
		t.Error("unknown tier should fail")
	}
}

func TestSimulatedValidation(t *testing.T) {
	spec := cluster.Cori(3)
	cfg := placement.Cf()
	es := SpecForPlacement(cfg, 4)

	if _, err := RunSimulated(spec, cfg, EnsembleSpec{}, SimOptions{}); err == nil {
		t.Error("empty spec should fail")
	}
	bad := es
	bad.Steps = 0
	if _, err := RunSimulated(spec, cfg, bad, SimOptions{}); err == nil {
		t.Error("zero steps should fail")
	}
	// Mismatched member count.
	wrong := SpecForPlacement(placement.C15(), 4)
	if _, err := RunSimulated(spec, cfg, wrong, SimOptions{}); err == nil {
		t.Error("member mismatch should fail")
	}
	// Placement outside the machine.
	if _, err := RunSimulated(cluster.Cori(1), placement.Cf(), es, SimOptions{}); err == nil {
		t.Error("placement beyond machine size should fail")
	}
}

func TestSimulatedFailureInjection(t *testing.T) {
	spec := cluster.Cori(3)
	cfg := placement.Cf()
	es := SpecForPlacement(cfg, 6)
	tr, err := RunSimulated(spec, cfg, es, SimOptions{FailStagingAt: 3})
	if err == nil {
		t.Fatal("injected staging failure should surface")
	}
	if !strings.Contains(err.Error(), "injected") {
		t.Errorf("error should mention the injection: %v", err)
	}
	if tr == nil {
		t.Fatal("partial trace should be returned on failure")
	}
	// At least one component recorded the failure; siblings were
	// interrupted rather than deadlocking.
	found := false
	for _, c := range tr.Components() {
		if c.Err != "" {
			found = true
		}
	}
	if !found {
		t.Error("no component recorded an error")
	}
}

func TestSimulatedRemoteReadersSlowProducer(t *testing.T) {
	// C_f's producer serves one remote stream; C_c's serves none. The
	// producer's S stage must be longer in C_f (DIMES server
	// perturbation) while C_c pays co-location interference instead.
	cf := mustRunSim(t, placement.Cf(), 6, SimOptions{})
	spec := cluster.Cori(3)
	model := cluster.NewModel(spec)
	// Disable co-location interference to isolate the remote-reader
	// effect.
	bare := *model
	inter := *model.Inter
	inter.Dilation = map[cluster.Class]map[cluster.Class]float64{
		cluster.ClassCompute: {cluster.ClassCompute: 0, cluster.ClassMemory: 0},
		cluster.ClassMemory:  {cluster.ClassCompute: 0, cluster.ClassMemory: 0},
	}
	bare.Inter = &inter
	cfgC := placement.Cc()
	trC, err := RunSimulated(spec, cfgC, SpecForPlacement(cfgC, 6), SimOptions{Model: &bare})
	if err != nil {
		t.Fatal(err)
	}
	sCf := cf.Members[0].Simulation.Steps[2].StageDuration(trace.StageS)
	sCc := trC.Members[0].Simulation.Steps[2].StageDuration(trace.StageS)
	if sCf <= sCc {
		t.Errorf("remote reader should dilate the producer: S(C_f)=%v vs S(C_c, no interference)=%v", sCf, sCc)
	}
}

func TestSpecHelpers(t *testing.T) {
	es := PaperEnsemble("x", 2, 2, PaperSteps)
	if len(es.Members) != 2 || len(es.Members[0].Analyses) != 2 || es.Steps != 37 {
		t.Errorf("unexpected paper ensemble: %+v", es)
	}
	if err := es.Validate(placement.ConfigsTable4()[0]); err != nil {
		t.Errorf("paper ensemble should match Table 4 shapes: %v", err)
	}
	if err := es.Validate(placement.Cf()); err == nil {
		t.Error("shape mismatch should fail validation")
	}
}

// --- real backend ---

func smallRealOptions() RealOptions {
	lj := kernels.DefaultLJConfig()
	lj.Atoms = 64
	lj.Box = 5
	lj.Cutoff = 2
	eig := kernels.DefaultEigenConfig()
	eig.MaxAtomsPerSide = 32
	eig.Iterations = 10
	return RealOptions{
		Steps:   3,
		Stride:  5,
		LJ:      lj,
		Eigen:   eig,
		Timeout: 30 * time.Second,
	}
}

func TestRealBackendEndToEnd(t *testing.T) {
	cfg := placement.C15()
	tr, err := RunReal(cfg, smallRealOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Backend != "real" {
		t.Errorf("backend = %q", tr.Backend)
	}
	if len(tr.Members) != 2 {
		t.Fatalf("members = %d", len(tr.Members))
	}
	for _, m := range tr.Members {
		if len(m.Simulation.Steps) != 3 {
			t.Errorf("member %d: sim steps = %d, want 3", m.Index, len(m.Simulation.Steps))
		}
		for _, a := range m.Analyses {
			if len(a.Steps) != 3 {
				t.Errorf("member %d: analysis steps = %d, want 3", m.Index, len(a.Steps))
			}
			if a.Err != "" {
				t.Errorf("analysis error: %s", a.Err)
			}
		}
		if m.Makespan() <= 0 {
			t.Errorf("member %d: non-positive makespan", m.Index)
		}
		// The steady-state extractor must work on real traces too.
		if _, err := core.FromMemberTrace(m, core.ExtractOptions{WarmupFraction: 0.34}); err != nil {
			t.Errorf("member %d: steady-state extraction: %v", m.Index, err)
		}
	}
}

func TestRealBackendMultiAnalysis(t *testing.T) {
	cfg := placement.ConfigsTable4()[7] // C2.8: 2 members x 2 analyses
	tr, err := RunReal(cfg, smallRealOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range tr.Members {
		if len(m.Analyses) != 2 {
			t.Fatalf("member %d: %d analyses, want 2", m.Index, len(m.Analyses))
		}
	}
}

func TestRealBackendTimeout(t *testing.T) {
	opts := smallRealOptions()
	opts.Timeout = time.Nanosecond
	opts.Steps = 50
	if _, err := RunReal(placement.Cf(), opts); err == nil {
		t.Error("timeout should abort the real run")
	}
}

func TestRealBackendValidation(t *testing.T) {
	if _, err := RunReal(placement.Placement{}, smallRealOptions()); err == nil {
		t.Error("empty placement should fail")
	}
	opts := smallRealOptions()
	opts.LJ.Atoms = 1
	if _, err := RunReal(placement.Cf(), opts); err == nil {
		t.Error("invalid LJ config should fail")
	}
}

func TestBufferedStagingExtension(t *testing.T) {
	// With jitter, buffering absorbs stage-time variance: depth 2 must
	// not be slower than the paper's no-buffering protocol, and in an
	// Idle Simulation configuration (C1.4) it should help measurably.
	cfg := placement.C14()
	base := mustRunSim(t, cfg, 12, SimOptions{Jitter: 0.05, Seed: 7})
	buffered := mustRunSim(t, cfg, 12, SimOptions{Jitter: 0.05, Seed: 7, StagingSlots: 2})
	if buffered.Makespan() > base.Makespan()+1e-9 {
		t.Errorf("buffered staging (%v) should not exceed unbuffered (%v)",
			buffered.Makespan(), base.Makespan())
	}
	// The protocol relaxes to W_{i+slots} after R_i: with 2 slots the
	// write of step i+2 must still wait for the read of step i.
	m := buffered.Members[0]
	const tol = 1e-9
	for i := 0; i+2 < len(m.Simulation.Steps); i++ {
		var rEnd, wStart float64
		for _, st := range m.Analyses[0].Steps[i].Stages {
			if st.Stage == trace.StageR {
				rEnd = st.End()
			}
		}
		for _, st := range m.Simulation.Steps[i+2].Stages {
			if st.Stage == trace.StageW {
				wStart = st.Start
			}
		}
		if wStart < rEnd-tol {
			t.Fatalf("step %d: W_{i+2} at %v before R_i end %v (buffer depth violated)", i, wStart, rEnd)
		}
	}
}

func TestDragonflyTopologyInRuntime(t *testing.T) {
	// Placing the coupled components in different dragonfly groups with a
	// starved global link must slow the remote read relative to the flat
	// fabric.
	cfg := placement.Cf() // sim on node 0, analysis on node 1
	flat := mustRunSim(t, cfg, 6, SimOptions{})
	df := mustRunSim(t, cfg, 6, SimOptions{Topology: &network.Dragonfly{
		GroupSize:       1, // nodes 0 and 1 in different groups
		GlobalBandwidth: 0.2e9,
		GlobalLatency:   1e-3,
	}})
	rFlat := flat.Members[0].Analyses[0].Steps[2].StageDuration(trace.StageR)
	rDf := df.Members[0].Analyses[0].Steps[2].StageDuration(trace.StageR)
	if rDf <= rFlat {
		t.Errorf("cross-group read (%v) should exceed flat-fabric read (%v)", rDf, rFlat)
	}
}

func TestRealBackendMultiFrameChunks(t *testing.T) {
	opts := smallRealOptions()
	opts.Stride = 10
	opts.FramesPerChunk = 3
	tr, err := RunReal(placement.Cc(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Each write stage moved one chunk of 3 frames; the byte counters of
	// W and R must match (same chunk through the DTL).
	m := tr.Members[0]
	for i := range m.Simulation.Steps {
		var wBytes, rBytes int64
		for _, st := range m.Simulation.Steps[i].Stages {
			if st.Stage == trace.StageW {
				wBytes = st.Counters.Bytes
			}
		}
		for _, st := range m.Analyses[0].Steps[i].Stages {
			if st.Stage == trace.StageR {
				rBytes = st.Counters.Bytes
			}
		}
		if wBytes == 0 || wBytes != rBytes {
			t.Fatalf("step %d: W moved %d bytes, R moved %d", i, wBytes, rBytes)
		}
	}
	// A 3-frame chunk is larger than a 1-frame chunk.
	opts1 := smallRealOptions()
	opts1.Stride = 10
	tr1, err := RunReal(placement.Cc(), opts1)
	if err != nil {
		t.Fatal(err)
	}
	b3 := tr.Members[0].Simulation.Steps[0].Stages[2].Counters.Bytes
	b1 := tr1.Members[0].Simulation.Steps[0].Stages[2].Counters.Bytes
	if b3 <= b1 {
		t.Errorf("3-frame chunk (%d bytes) should exceed 1-frame chunk (%d bytes)", b3, b1)
	}
}

func TestRealBackendCollectiveVariableConsistency(t *testing.T) {
	// Both analyses of a member read the same chunks, so their collective
	// variables must agree exactly — this validates the whole staging
	// path (encode -> put -> get -> decode -> analyze) end to end.
	cfg := placement.ConfigsTable4()[7] // C2.8: 2 analyses per member
	tr, err := RunReal(cfg, smallRealOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range tr.Members {
		a0, a1 := m.Analyses[0], m.Analyses[1]
		if len(a0.Outputs) != len(a0.Steps) {
			t.Fatalf("member %d: %d outputs for %d steps", m.Index, len(a0.Outputs), len(a0.Steps))
		}
		for s := range a0.Outputs {
			cv0, cv1 := a0.Outputs[s], a1.Outputs[s]
			if cv0 != cv1 {
				t.Errorf("member %d step %d: CVs diverge: %v vs %v (staging corrupted?)",
					m.Index, s, cv0, cv1)
			}
			if cv0 <= 0 {
				t.Errorf("member %d step %d: non-positive CV %v", m.Index, s, cv0)
			}
		}
	}
	// Different members integrate different trajectories (distinct
	// seeds): their CVs should not be identical across the board.
	m0, m1 := tr.Members[0].Analyses[0].Outputs, tr.Members[1].Analyses[0].Outputs
	same := true
	for s := range m0 {
		if m0[s] != m1[s] {
			same = false
		}
	}
	if same {
		t.Error("different members should produce different trajectories")
	}
}

func TestStagingMemoryAdmission(t *testing.T) {
	// A chunk too large for node DRAM must be rejected before execution.
	spec := cluster.Cori(2)
	spec.MemBytesPerNode = 1 << 30 // 1 GiB nodes
	cfg := placement.Cf()
	es := SpecForPlacement(cfg, 4)
	es.Members[0].Sim.BytesPerStep = 600 << 20 // 600 MiB chunk -> 1.2 GiB staging
	if _, err := RunSimulated(spec, cfg, es, SimOptions{}); err == nil {
		t.Fatal("oversized staging should be rejected by memory admission")
	}
	// The same ensemble on a burst buffer stages off-node: admitted.
	if _, err := RunSimulated(spec, cfg, es, SimOptions{Tier: TierBurstBuffer}); err != nil {
		t.Fatalf("burst buffer should not need producer memory: %v", err)
	}
}

func TestSocketFidelityInRuntime(t *testing.T) {
	// With dual-socket fidelity enabled, C_c's simulation and analysis
	// land on different sockets and interfere less: the makespan drops
	// relative to the node-level model.
	cfg := placement.Cc()
	es := SpecForPlacement(cfg, 8)
	flatSpec := cluster.Cori(1)
	flat, err := RunSimulated(flatSpec, cfg, es, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sockSpec := cluster.Cori(1)
	sockSpec.SocketsPerNode = 2
	sock, err := RunSimulated(sockSpec, cfg, es, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sock.Makespan() >= flat.Makespan() {
		t.Errorf("socket fidelity should reduce C_c interference: %v vs %v",
			sock.Makespan(), flat.Makespan())
	}
}
