// Package runtime executes workflow ensembles: it is the paper's runtime
// system (Figure 2), orchestrating members — each one simulation coupled
// with K analyses — over a data transport layer with the synchronous
// no-buffering protocol of Section 2.1 (the simulation does not write step
// i+1 until every analysis has read step i).
//
// Two backends produce the same trace format:
//
//   - the simulated backend (simulated.go) runs components as
//     discrete-event processes over the cluster model, the interference
//     model, and a priced DTL tier — this is what regenerates the paper's
//     figures;
//   - the real backend (real.go) runs components as goroutines computing
//     real molecular dynamics and real eigenvalue analyses over the real
//     in-memory staging area — this validates the protocol and the public
//     API end to end.
package runtime

import (
	"errors"
	"fmt"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/kernels"
	"ensemblekit/internal/placement"
)

// MemberSpec describes the workload of one ensemble member.
type MemberSpec struct {
	// Sim is the simulation's cost profile.
	Sim cluster.Profile
	// Analyses holds one cost profile per coupled analysis.
	Analyses []cluster.Profile
}

// EnsembleSpec describes a workflow ensemble's workload: what every
// component computes, independent of where it is placed.
type EnsembleSpec struct {
	// Name labels the ensemble in traces.
	Name string
	// Steps is the number of in situ steps (the paper's n_steps: 37 for
	// 30,000 MD steps at stride 800).
	Steps int
	// Members holds the per-member workloads.
	Members []MemberSpec
}

// Validate checks the spec and its consistency with a placement.
func (es EnsembleSpec) Validate(p placement.Placement) error {
	if es.Steps <= 0 {
		return fmt.Errorf("runtime: ensemble needs positive steps, got %d", es.Steps)
	}
	if len(es.Members) == 0 {
		return errors.New("runtime: ensemble has no members")
	}
	if len(es.Members) != len(p.Members) {
		return fmt.Errorf("runtime: spec has %d members but placement %q has %d",
			len(es.Members), p.Name, len(p.Members))
	}
	for i, m := range es.Members {
		if err := m.Sim.Validate(); err != nil {
			return fmt.Errorf("runtime: member %d simulation: %w", i, err)
		}
		if len(m.Analyses) == 0 {
			return fmt.Errorf("runtime: member %d has no analyses", i)
		}
		if len(m.Analyses) != len(p.Members[i].Analyses) {
			return fmt.Errorf("runtime: member %d has %d analyses but placement has %d",
				i, len(m.Analyses), len(p.Members[i].Analyses))
		}
		for j, a := range m.Analyses {
			if err := a.Validate(); err != nil {
				return fmt.Errorf("runtime: member %d analysis %d: %w", i, j, err)
			}
		}
	}
	return nil
}

// PaperSteps is the paper's in situ step count: 30,000 MD steps at a
// stride of 800.
const PaperSteps = 30000 / 800 // 37

// PaperEnsemble builds the paper's workload: `members` identical members,
// each a GROMACS-proxy simulation at stride 800 coupled with
// `analysesPerSim` identical eigenvalue-analysis proxies, running `steps`
// in situ steps (use PaperSteps for the paper's duration).
func PaperEnsemble(name string, members, analysesPerSim, steps int) EnsembleSpec {
	es := EnsembleSpec{Name: name, Steps: steps}
	for i := 0; i < members; i++ {
		m := MemberSpec{Sim: kernels.MDProfile(kernels.ReferenceStride)}
		for j := 0; j < analysesPerSim; j++ {
			m.Analyses = append(m.Analyses, kernels.AnalysisProfile())
		}
		es.Members = append(es.Members, m)
	}
	return es
}

// SpecForPlacement builds the paper workload shaped to match a placement:
// the member count and per-member analysis counts are taken from the
// placement itself.
func SpecForPlacement(p placement.Placement, steps int) EnsembleSpec {
	es := EnsembleSpec{Name: p.Name, Steps: steps}
	for _, m := range p.Members {
		ms := MemberSpec{Sim: kernels.MDProfile(kernels.ReferenceStride)}
		for range m.Analyses {
			ms.Analyses = append(ms.Analyses, kernels.AnalysisProfile())
		}
		es.Members = append(es.Members, ms)
	}
	return es
}
